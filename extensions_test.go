package tdb

import (
	"testing"
)

func TestCoverEdgesFacade(t *testing.T) {
	g := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	r, err := CoverEdges(g, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) != 1 {
		t.Fatalf("edge cover %v", r.Edges)
	}
	// Removing the edge breaks the triangle.
	b := NewBuilder(3)
	for _, e := range g.Edges() {
		if e != r.Edges[0] {
			b.AddEdge(e.U, e.V)
		}
	}
	if HasHopConstrainedCycle(b.Build(), 5) {
		t.Fatal("cycle survives")
	}
}

func TestCoverParallelFacade(t *testing.T) {
	g := GenPlantedCycles(600, 20, 3, 5, 300, 9).Graph
	r, err := CoverParallel(g, TDBPlusPlus, 5, &Options{Order: OrderDegreeAsc}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(g, 5, 3, r.Cover, true)
	if !rep.Valid || !rep.Minimal {
		t.Fatalf("parallel cover failed verification: %+v", rep)
	}
	if len(r.Cover) < 20 {
		t.Fatalf("cover %d < 20 planted cycles", len(r.Cover))
	}
}

func TestWeightedFacade(t *testing.T) {
	g := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	res, err := Cover(g, 5, &Options{Order: OrderWeighted, Weights: []float64{100, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 1 || res.Cover[0] == 0 {
		t.Fatalf("cover %v should avoid the expensive vertex", res.Cover)
	}
}

func TestProfileGraphFacade(t *testing.T) {
	g := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	p := ProfileGraph(g, 4)
	if p.N != 3 || p.CyclesByLength[3] != 1 {
		t.Fatalf("profile wrong: %+v", p)
	}
	if p2 := ProfileGraph(g, 0); p2.CyclesByLength != nil {
		t.Fatal("cycle census must be off for cycleK=0")
	}
}

func TestMaintainerFacade(t *testing.T) {
	m := NewMaintainer(4, 5, 3)
	m.InsertEdge(0, 1)
	m.InsertEdge(1, 2)
	if v := m.InsertEdge(2, 0); v == -1 {
		t.Fatal("triangle close must cover")
	}
	rep := Verify(m.Snapshot(), 5, 3, m.Cover(), false)
	if !rep.Valid {
		t.Fatal("maintained cover invalid")
	}

	// Seed from a static solve, then churn.
	g := GenPowerLaw(200, 1200, 2.2, 0.3, 4)
	res, err := Cover(g, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MaintainerFromGraph(g, 4, 3, res.Cover)
	if err != nil {
		t.Fatal(err)
	}
	for i := VID(0); i < 100; i++ {
		m2.InsertEdge(i%200, (i*7+1)%200)
	}
	rep2 := Verify(m2.Snapshot(), 4, 3, m2.Cover(), false)
	if !rep2.Valid {
		t.Fatal("maintained cover invalid after churn")
	}

	// A stale cover (vertices beyond the graph) is an error, not a panic.
	if _, err := MaintainerFromGraph(g, 4, 3, []VID{10_000}); err == nil {
		t.Fatal("out-of-range cover must be rejected")
	}

	// The batched surface: churn applied in one batch stays valid.
	m3, err := MaintainerFromGraph(g, 4, 3, res.Cover)
	if err != nil {
		t.Fatal(err)
	}
	ups := make([]Update, 0, 120)
	for i := VID(0); i < 100; i++ {
		ups = append(ups, InsertOp(i%200, (i*7+1)%200))
	}
	for _, e := range g.Edges()[:20] {
		ups = append(ups, DeleteOp(e.U, e.V))
	}
	m3.ApplyBatch(ups)
	if rep := Verify(m3.Snapshot(), 4, 3, m3.Cover(), false); !rep.Valid {
		t.Fatal("batched cover invalid after churn")
	}
}
