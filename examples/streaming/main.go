// Streaming fraud monitoring: dynamic cover maintenance.
//
// The paper's fraud-detection motivation is inherently dynamic — new
// transfers arrive continuously (its reference [14] detects constrained
// cycles on dynamic e-commerce graphs in real time). This example seeds a
// cover on a historical snapshot, then processes a live stream of
// transfers: each insertion either lands on an already-audited account or
// triggers one bounded cycle search, keeping the audit set valid at every
// instant without ever recomputing from scratch. After a burst of account
// closures (edge deletions), one Reminimize pass sheds the audit entries
// the closures made redundant.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"tdb"
)

func main() {
	const (
		accounts = 30_000
		history  = 150_000 // transfers in the historical snapshot
		stream   = 50_000  // live transfers
		maxHops  = 5
	)
	fmt.Printf("snapshot: %d accounts, %d historical transfers\n", accounts, history)
	g := tdb.GenPowerLaw(accounts, history, 2.4, 0.3, 71)

	res, err := tdb.Cover(g, maxHops, &tdb.Options{Order: tdb.OrderDegreeAsc})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial audit set: %d accounts\n", len(res.Cover))

	m := tdb.MaintainerFromGraph(g, maxHops, 3, res.Cover)
	rng := rand.New(rand.NewPCG(72, 72))
	start := time.Now()
	grew := 0
	for i := 0; i < stream; i++ {
		u := tdb.VID(rng.IntN(accounts))
		v := tdb.VID(rng.IntN(accounts))
		if m.InsertEdge(u, v) != -1 {
			grew++
		}
	}
	elapsed := time.Since(start)
	_, _, checks, _ := m.Stats()
	fmt.Printf("streamed %d transfers in %v (%.1f µs/transfer, %d cycle checks, %d audit additions)\n",
		stream, elapsed.Round(time.Millisecond),
		float64(elapsed.Microseconds())/float64(stream), checks, grew)

	rep := tdb.Verify(m.Snapshot(), maxHops, 3, m.Cover(), false)
	fmt.Printf("audit set still intersects every ring of length 3..%d: %v\n", maxHops, rep.Valid)
	if !rep.Valid {
		log.Fatal("BUG: invariant broken")
	}

	// A compliance sweep closes suspicious accounts: drop 20% of the
	// audited accounts' outgoing transfers, then shed redundant entries.
	closed := 0
	for _, v := range m.Cover() {
		if rng.IntN(5) == 0 {
			for _, e := range m.Snapshot().Edges() {
				if e.U == v {
					m.DeleteEdge(e.U, e.V)
					closed++
				}
			}
		}
	}
	before := m.CoverSize()
	shed := m.Reminimize()
	fmt.Printf("after closing %d transfer channels: audit set %d -> %d (shed %d)\n",
		closed, before, m.CoverSize(), shed)
	rep = tdb.Verify(m.Snapshot(), maxHops, 3, m.Cover(), true)
	fmt.Printf("final audit set valid=%v minimal=%v\n", rep.Valid, rep.Minimal)
}
