// Streaming fraud monitoring: dynamic cover maintenance over real-world
// account IDs.
//
// The paper's fraud-detection motivation is inherently dynamic — new
// transfers arrive continuously (its reference [14] detects constrained
// cycles on dynamic e-commerce graphs in real time). This example seeds a
// cover on a historical snapshot, then processes a live stream of
// transfers addressed by account ID strings: each insertion either lands
// on an already-audited account or triggers one bounded cycle search,
// keeping the audit set valid at every instant without ever recomputing
// from scratch. Accounts first seen mid-stream are interned on the fly.
// After a burst of account closures (edge deletions), one Reminimize pass
// sheds the audit entries the closures made redundant.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"tdb"
)

func main() {
	const (
		accounts = 30_000
		history  = 150_000 // transfers in the historical snapshot
		stream   = 50_000  // live transfers
		maxHops  = 5
	)
	acct := func(i int) string { return fmt.Sprintf("acct-%05d", i) }

	// Relabel the generated snapshot with account IDs — exactly what an
	// ingest from a production transfer log looks like.
	fmt.Printf("snapshot: %d accounts, %d historical transfers\n", accounts, history)
	raw := tdb.GenPowerLaw(accounts, history, 2.4, 0.3, 71)
	lb := tdb.NewLabeledBuilder[string]()
	for i := 0; i < accounts; i++ {
		lb.Intern(acct(i))
	}
	for _, e := range raw.Edges() {
		lb.AddEdge(acct(int(e.U)), acct(int(e.V)))
	}
	g := lb.Build()

	res, err := g.Solve(context.Background(), maxHops, tdb.WithOrder(tdb.OrderDegreeAsc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial audit set: %d accounts [strategy: %s]\n",
		len(res.Cover), res.Stats.Strategy)

	m, err := g.Maintainer(maxHops, 3, res.Cover)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(72, 72))
	start := time.Now()
	grew := 0
	for i := 0; i < stream/2; i++ {
		// A slice of the stream involves brand-new accounts (IDs beyond the
		// snapshot), interned by the maintainer on first sight.
		u := acct(rng.IntN(accounts + accounts/10))
		v := acct(rng.IntN(accounts + accounts/10))
		if _, added := m.InsertEdge(u, v); added {
			grew++
		}
	}
	// The second half arrives the way a production ingest does: in bursts.
	// ApplyBatch defers the cycle checks of each burst and answers them 64
	// at a time with one bit-parallel BFS sweep.
	const burst = 512
	batch := make([]tdb.LabeledUpdate[string], 0, burst)
	for i := stream / 2; i < stream; i += burst {
		batch = batch[:0]
		for j := 0; j < burst && i+j < stream; j++ {
			batch = append(batch, tdb.LabeledUpdate[string]{
				Op: tdb.UpdateInsert,
				U:  acct(rng.IntN(accounts + accounts/10)),
				V:  acct(rng.IntN(accounts + accounts/10)),
			})
		}
		grew += len(m.ApplyBatch(batch))
	}
	elapsed := time.Since(start)
	_, _, checks, _ := m.Stats()
	fmt.Printf("streamed %d transfers in %v (%.1f µs/transfer, %d cycle checks, %d audit additions, %d accounts known)\n",
		stream, elapsed.Round(time.Millisecond),
		float64(elapsed.Microseconds())/float64(stream), checks, grew, m.NumVertices())

	if rep := m.Verify(false); !rep.Valid {
		log.Fatal("BUG: invariant broken")
	} else {
		fmt.Printf("audit set still intersects every ring of length 3..%d: %v\n", maxHops, rep.Valid)
	}

	// A compliance sweep closes suspicious accounts: drop 20% of the
	// audited accounts' outgoing transfers, then shed redundant entries.
	// One snapshot serves the whole sweep — deletions only remove edges,
	// so stale entries are at worst no-op deletes.
	snap := m.Snapshot()
	closed := 0
	for _, name := range m.Cover() {
		if rng.IntN(5) == 0 {
			v, _ := snap.Lookup(name)
			for _, w := range snap.Graph().Out(v) {
				if m.DeleteEdge(name, snap.Label(w)) {
					closed++
				}
			}
		}
	}
	before := m.CoverSize()
	shed := m.Reminimize()
	fmt.Printf("after closing %d transfer channels: audit set %d -> %d (shed %d)\n",
		closed, before, m.CoverSize(), shed)
	rep := m.Verify(true)
	fmt.Printf("final audit set valid=%v minimal=%v\n", rep.Valid, rep.Minimal)
}
