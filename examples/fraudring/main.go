// Fraud-ring detection: the paper's motivating e-commerce scenario.
//
// A transaction network is generated with known money-laundering rings
// (short directed cycles of transfers) implanted into realistic background
// traffic. The cycle cover then names a small set of accounts that
// intersects EVERY possible short transfer ring — the accounts a fraud team
// should audit first. The example checks that each implanted ring is hit
// and reports how concentrated the audit set is, along with the execution
// strategy the solver planned for the workload.
//
//	go run ./examples/fraudring
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tdb"
)

func main() {
	const (
		accounts = 20_000
		rings    = 40 // implanted laundering rings
		maxHops  = 6  // fraud teams ignore longer rings (paper Sec. I)
		bgEdges  = 120_000
	)
	fmt.Printf("generating %d accounts, %d background transfers, %d hidden rings...\n",
		accounts, bgEdges, rings)
	p := tdb.GenPlantedCycles(accounts, rings, 3, maxHops, bgEdges, 2024)
	g := p.Graph

	start := time.Now()
	res, err := tdb.Solve(context.Background(), g, maxHops,
		tdb.WithOrder(tdb.OrderDegreeAsc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TDB++ selected %d accounts to audit (%.1f%% of all) in %v [strategy: %s, %d workers]\n",
		len(res.Cover), 100*float64(len(res.Cover))/float64(accounts),
		time.Since(start).Round(time.Millisecond), res.Stats.Strategy, res.Stats.Workers)

	// Every implanted ring must contain an audited account.
	audited := res.CoverSet(g.NumVertices())
	missed := 0
	for _, ring := range p.Cycles {
		hit := false
		for _, acct := range ring {
			if audited[acct] {
				hit = true
				break
			}
		}
		if !hit {
			missed++
		}
	}
	fmt.Printf("implanted rings intersected: %d/%d (missed %d)\n", rings-missed, rings, missed)
	if missed > 0 {
		log.Fatal("BUG: a valid cover cannot miss a short ring")
	}

	// And not only the planted ones — the verifier proves NO short ring
	// (planted or emergent from background traffic) avoids the audit set.
	rep := tdb.Verify(g, maxHops, 3, res.Cover, false)
	fmt.Printf("all rings of length 3..%d covered: %v\n", maxHops, rep.Valid)
}
