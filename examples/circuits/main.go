// Combinational-circuit retiming: the paper's circuit-design application.
//
// In a combinational circuit graph, a directed cycle is a potential racing
// condition: a gate can see new inputs before its previous output has
// stabilized. The classic remedy is to insert a clocked register on every
// cycle; since long feedback loops are electrically negligible (paper
// Sec. I), only cycles up to a hop bound matter. Placing registers on the
// vertices of a hop-constrained cycle cover breaks every short loop with a
// near-minimal number of registers.
//
//	go run ./examples/circuits
package main

import (
	"context"
	"fmt"
	"log"

	"tdb"
)

func main() {
	const (
		gates   = 30_000
		maxHops = 5
	)
	// A circuit netlist is locally clustered with feedback chords — the
	// small-world generator models exactly that: forward signal chains
	// plus occasional feedback wires that close loops.
	g := tdb.GenSmallWorld(gates, 3, 0.35, 99)
	fmt.Printf("netlist: %v\n", g)
	ctx := context.Background()

	res, err := tdb.Solve(ctx, g, maxHops, tdb.WithOrder(tdb.OrderDegreeAsc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registers needed: %d (%.2f%% of gates)\n",
		len(res.Cover), 100*float64(len(res.Cover))/float64(gates))
	st := res.Stats
	fmt.Printf("stats: %d candidates checked, %d resolved by the BFS filter, %v total [strategy: %s]\n",
		st.Checked, st.FilterPruned, st.Duration.Round(1e6), st.Strategy)

	rep := tdb.Verify(g, maxHops, 3, res.Cover, true)
	if !rep.Valid || !rep.Minimal {
		log.Fatalf("verification failed: %+v", rep)
	}
	fmt.Println("verified: every feedback loop of length 3..5 passes a register; no register is redundant")

	// Compare against covering ALL feedback loops (classic feedback vertex
	// set): the hop bound is what keeps the register count low.
	resAll, err := tdb.Solve(ctx, g, 0,
		tdb.WithUnconstrained(), tdb.WithOrder(tdb.OrderDegreeAsc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without the hop bound, %d registers would be needed (%.1fx more)\n",
		len(resAll.Cover), float64(len(resAll.Cover))/float64(len(res.Cover)))
}
