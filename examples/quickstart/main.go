// Quickstart: build a small directed graph, compute a hop-constrained cycle
// cover with TDB++, and verify it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tdb"
)

func main() {
	// The paper's Figure 1 e-commerce network: accounts a..h, edges are
	// money transfers. Three cycles of length <= 5 run through account a.
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	b := tdb.NewBuilder(len(names))
	edges := [][2]tdb.VID{
		{0, 1}, {1, 2}, {2, 0}, // a->b->c->a
		{0, 2}, {2, 3}, {3, 4}, {4, 0}, // a->c->d->e->a
		{0, 5}, {5, 6}, {6, 7}, {7, 4}, // a->f->g->h->e->a
		{7, 3}, {1, 5}, // acyclic extras
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	fmt.Printf("graph: %v\n", g)

	// Break every cycle with at most 5 hops. BUR+ optimizes cover size.
	res, err := tdb.CoverWith(g, tdb.BURPlus, 5, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cover (%d vertices):", len(res.Cover))
	for _, v := range res.Cover {
		fmt.Printf(" %s", names[v])
	}
	fmt.Println()

	// Independently verify: no cycle of length 3..5 survives, and no cover
	// vertex is redundant.
	rep := tdb.Verify(g, 5, 3, res.Cover, true)
	fmt.Printf("valid=%v minimal=%v\n", rep.Valid, rep.Minimal)

	// Show one of the cycles the cover intersects.
	if c := tdb.FindCycle(g, 5, 0); c != nil {
		fmt.Print("example cycle through a:")
		for _, v := range c {
			fmt.Printf(" %s", names[v])
		}
		fmt.Println()
	}
}
