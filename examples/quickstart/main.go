// Quickstart: build a small directed graph addressed by real-world IDs,
// compute a hop-constrained cycle cover with the unified Solve entry point,
// and verify it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"tdb"
)

func main() {
	// The paper's Figure 1 e-commerce network: accounts a..h, edges are
	// money transfers. Three cycles of length <= 5 run through account a.
	// The labeled builder interns the account names directly — no manual
	// ID bookkeeping.
	b := tdb.NewLabeledBuilder[string]()
	for _, t := range []string{
		"a>b", "b>c", "c>a", // a->b->c->a
		"a>c", "c>d", "d>e", "e>a", // a->c->d->e->a
		"a>f", "f>g", "g>h", "h>e", // a->f->g->h->e->a
		"h>d", "b>f", // acyclic extras
	} {
		from, to, _ := strings.Cut(t, ">")
		b.AddEdge(from, to)
	}
	g := b.Build()
	fmt.Printf("graph: %v\n", g.Graph())

	// Break every cycle with at most 5 hops. BUR+ optimizes cover size;
	// the solver plans its own execution strategy and records it.
	res, err := g.Solve(context.Background(), 5, tdb.WithAlgorithm(tdb.BURPlus))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cover (%d accounts): %s\n", len(res.Cover), strings.Join(res.Cover, " "))
	fmt.Printf("plan: %s algorithm, %s strategy\n", res.Stats.Algorithm, res.Stats.Strategy)

	// Independently verify: no cycle of length 3..5 survives, and no cover
	// vertex is redundant.
	rep := tdb.Verify(g.Graph(), 5, 3, res.Raw.Cover, true)
	fmt.Printf("valid=%v minimal=%v\n", rep.Valid, rep.Minimal)

	// Show one of the cycles the cover intersects, by account name.
	if c := g.FindCycle(5, "a"); c != nil {
		fmt.Printf("example cycle through a: %s\n", strings.Join(c, " "))
	}
}
