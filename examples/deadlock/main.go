// Deadlock-potential analysis: the paper's program-analysis application.
//
// Threads acquire locks in nested orders; a lock-order graph has an edge
// L1 -> L2 when some thread holds L1 while acquiring L2. A cycle in this
// graph is a deadlock potential, and short cycles are by far the most
// likely to fire in practice. The cycle cover names a minimal set of locks
// whose acquisition discipline must be refactored (e.g. replaced by a
// single coarse lock or given a global rank) to eliminate every short
// deadlock pattern.
//
//	go run ./examples/deadlock
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"tdb"
)

func main() {
	const (
		locks   = 600
		threads = 4_000
		maxHops = 4 // deadlock patterns involving >4 locks are rare
	)
	// Simulate threads taking small nested lock sequences. A thread that
	// acquires the sequence l0, l1, l2 contributes edges l0->l1->l2.
	rng := rand.New(rand.NewPCG(7, 7))
	b := tdb.NewBuilder(locks)
	for t := 0; t < threads; t++ {
		depth := 2 + rng.IntN(3)
		prev := tdb.VID(rng.IntN(locks))
		for i := 1; i < depth; i++ {
			// Threads mostly follow a partial order (lower ID first) but a
			// bug-prone minority acquires against it, creating cycles.
			next := tdb.VID(rng.IntN(locks))
			if rng.Float64() < 0.85 && next < prev {
				prev, next = next, prev
			}
			if next != prev {
				b.AddEdge(prev, next)
				prev = next
			}
		}
	}
	g := b.Build()
	fmt.Printf("lock-order graph: %v\n", g)

	if !tdb.HasHopConstrainedCycle(g, maxHops) {
		fmt.Println("no short deadlock potentials — nothing to do")
		return
	}

	res, err := tdb.Cover(g, maxHops, &tdb.Options{Order: tdb.OrderDegreeAsc})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("locks to refactor: %d of %d\n", len(res.Cover), locks)

	// Count the deadlock patterns each refactored lock participates in, to
	// prioritize the work.
	counts := make(map[tdb.VID]int)
	inCover := res.CoverSet(locks)
	tdb.EnumerateCycles(g, maxHops, func(c []tdb.VID) bool {
		for _, v := range c {
			if inCover[v] {
				counts[v]++
			}
		}
		return true
	})
	top, topCount := tdb.VID(0), -1
	total := 0
	for v, n := range counts {
		total += n
		if n > topCount {
			top, topCount = v, n
		}
	}
	fmt.Printf("deadlock patterns hit (with multiplicity): %d; busiest lock L%d appears in %d\n",
		total, top, topCount)

	rep := tdb.Verify(g, maxHops, 3, res.Cover, true)
	fmt.Printf("verified: valid=%v minimal=%v\n", rep.Valid, rep.Minimal)
}
