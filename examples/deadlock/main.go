// Deadlock-potential analysis: the paper's program-analysis application.
//
// Threads acquire locks in nested orders; a lock-order graph has an edge
// L1 -> L2 when some thread holds L1 while acquiring L2. A cycle in this
// graph is a deadlock potential, and short cycles are by far the most
// likely to fire in practice. The cycle cover names a minimal set of locks
// whose acquisition discipline must be refactored (e.g. replaced by a
// single coarse lock or given a global rank) to eliminate every short
// deadlock pattern. Locks are addressed by name throughout — the labeled
// layer owns the name <-> vertex mapping.
//
//	go run ./examples/deadlock
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"tdb"
)

func main() {
	const (
		locks   = 600
		threads = 4_000
		maxHops = 4 // deadlock patterns involving >4 locks are rare
	)
	// Simulate threads taking small nested lock sequences. A thread that
	// acquires the sequence l0, l1, l2 contributes edges l0->l1->l2.
	lockName := func(i int) string { return fmt.Sprintf("lock-%03d", i) }
	rng := rand.New(rand.NewPCG(7, 7))
	b := tdb.NewLabeledBuilder[string]()
	for i := 0; i < locks; i++ {
		b.Intern(lockName(i)) // register even never-contended locks
	}
	for t := 0; t < threads; t++ {
		depth := 2 + rng.IntN(3)
		prev := rng.IntN(locks)
		for i := 1; i < depth; i++ {
			// Threads mostly follow a partial order (lower ID first) but a
			// bug-prone minority acquires against it, creating cycles.
			next := rng.IntN(locks)
			if rng.Float64() < 0.85 && next < prev {
				prev, next = next, prev
			}
			if next != prev {
				b.AddEdge(lockName(prev), lockName(next))
				prev = next
			}
		}
	}
	g := b.Build()
	fmt.Printf("lock-order graph: %v\n", g.Graph())

	if !tdb.HasHopConstrainedCycle(g.Graph(), maxHops) {
		fmt.Println("no short deadlock potentials — nothing to do")
		return
	}

	res, err := g.Solve(context.Background(), maxHops, tdb.WithOrder(tdb.OrderDegreeAsc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("locks to refactor: %d of %d [strategy: %s]\n",
		len(res.Cover), locks, res.Stats.Strategy)

	// Count the deadlock patterns each refactored lock participates in, to
	// prioritize the work.
	counts := make(map[string]int)
	inCover := make(map[string]bool, len(res.Cover))
	for _, name := range res.Cover {
		inCover[name] = true
	}
	g.EnumerateCycles(maxHops, func(c []string) bool {
		for _, name := range c {
			if inCover[name] {
				counts[name]++
			}
		}
		return true
	})
	top, topCount := "", -1
	total := 0
	for name, n := range counts {
		total += n
		if n > topCount {
			top, topCount = name, n
		}
	}
	fmt.Printf("deadlock patterns hit (with multiplicity): %d; busiest lock %s appears in %d\n",
		total, top, topCount)

	rep := tdb.Verify(g.Graph(), maxHops, 3, res.Raw.Cover, true)
	fmt.Printf("verified: valid=%v minimal=%v\n", rep.Valid, rep.Minimal)
}
