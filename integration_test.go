package tdb

// Integration tests exercising the public API across every workload family
// and all 16 dataset stand-ins at reduced scale, cross-checking algorithms
// against each other and the verifier.

import (
	"testing"
)

func TestIntegrationAllDatasets(t *testing.T) {
	for _, d := range Datasets() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			scale := 0.002
			if d.Large {
				scale = 3000.0 / float64(d.PaperE)
			}
			g := d.Generate(scale)
			res, err := Cover(g, 5, &Options{Order: OrderDegreeAsc})
			if err != nil {
				t.Fatal(err)
			}
			rep := Verify(g, 5, 3, res.Cover, true)
			if !rep.Valid {
				t.Fatalf("invalid cover; surviving cycle %v", rep.Witness)
			}
			if !rep.Minimal {
				t.Fatalf("redundant vertices %v", rep.Redundant)
			}
		})
	}
}

func TestIntegrationWorkloadFamilies(t *testing.T) {
	graphs := map[string]*Graph{
		"erdos-renyi": GenErdosRenyi(400, 1600, 5),
		"power-law":   GenPowerLaw(400, 2400, 2.8, 0.4, 5),
		"small-world": GenSmallWorld(400, 3, 0.5, 5),
		"planted":     GenPlantedCycles(400, 10, 3, 5, 800, 5).Graph,
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			var sizes []int
			for _, algo := range []Algorithm{BURPlus, TDBPlusPlus} {
				res, err := CoverWith(g, algo, 5, &Options{Order: OrderDegreeAsc})
				if err != nil {
					t.Fatal(err)
				}
				rep := Verify(g, 5, 3, res.Cover, true)
				if !rep.Valid || !rep.Minimal {
					t.Fatalf("%v failed verification: %+v", algo, rep)
				}
				sizes = append(sizes, len(res.Cover))
			}
			// Heuristics differ but should land in the same ballpark; a
			// 5x divergence would indicate a broken algorithm.
			lo, hi := sizes[0], sizes[1]
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo > 0 && hi > 5*lo {
				t.Fatalf("cover sizes diverge: %v", sizes)
			}
		})
	}
}

// The full pipeline: generate -> save -> load -> cover -> save cover ->
// verify, mirroring what the CLI tools do.
func TestIntegrationFilePipeline(t *testing.T) {
	dir := t.TempDir()
	g := GenPowerLaw(500, 3000, 2.4, 0.3, 11)
	gPath := dir + "/g.bin"
	if err := SaveGraph(gPath, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(gPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cover(g2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(g, 4, 3, res.Cover, true) // verify against the ORIGINAL
	if !rep.Valid || !rep.Minimal {
		t.Fatalf("cover fails on the original graph: %+v", rep)
	}
}

// MinLen=2 covers are supersets in obligation: removing them must also
// break 2-cycles.
func TestIntegrationTwoCycleVariant(t *testing.T) {
	g := GenPowerLaw(300, 2000, 2.2, 0.5, 13)
	res, err := Cover(g, 5, &Options{MinLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(g, 5, 2, res.Cover, true)
	if !rep.Valid || !rep.Minimal {
		t.Fatalf("2-cycle variant failed: %+v", rep)
	}
	res3, err := Cover(g, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) < len(res3.Cover) {
		t.Fatalf("with-2-cycles cover %d smaller than without %d",
			len(res.Cover), len(res3.Cover))
	}
}
