package tdb

import (
	"context"
	"fmt"
	"slices"
	"testing"
)

// labeledTriangle builds a labeled triangle a->b->c->a plus a pendant d.
func labeledTriangle() *LabeledGraph[string] {
	b := NewLabeledBuilder[string]()
	b.AddEdge("a", "b")
	b.AddEdge("b", "c")
	b.AddEdge("c", "a")
	b.AddEdge("c", "d")
	return b.Build()
}

// TestLabeledBuildAndLookup: interning assigns dense VIDs, lookups and
// labels round-trip, and isolated vertices can be registered.
func TestLabeledBuildAndLookup(t *testing.T) {
	b := NewLabeledBuilder[string]()
	if v := b.Intern("x"); v != 0 {
		t.Fatalf("first label got VID %d", v)
	}
	if v := b.Intern("x"); v != 0 {
		t.Fatalf("re-interning moved the label to %d", v)
	}
	b.AddEdge("x", "y")
	b.Intern("isolated")
	g := b.Build()
	if g.NumVertices() != 3 {
		t.Fatalf("n = %d, want 3", g.NumVertices())
	}
	for _, label := range []string{"x", "y", "isolated"} {
		v, ok := g.Lookup(label)
		if !ok {
			t.Fatalf("label %q lost", label)
		}
		if g.Label(v) != label {
			t.Fatalf("Label(Lookup(%q)) = %q", label, g.Label(v))
		}
	}
	if _, ok := g.Lookup("nope"); ok {
		t.Fatal("unknown label resolved")
	}
}

// TestLabeledSolveRoundTrip: a labeled solve must agree exactly with the
// dense solve on the underlying graph, label for label, and the translated
// cover must verify against the dense graph.
func TestLabeledSolveRoundTrip(t *testing.T) {
	b := NewLabeledBuilder[string]()
	raw := GenPowerLaw(300, 1500, 2.2, 0.3, 31)
	name := func(v VID) string { return fmt.Sprintf("acct-%04d", v) }
	for i := 0; i < raw.NumVertices(); i++ {
		b.Intern(name(VID(i)))
	}
	for _, e := range raw.Edges() {
		b.AddEdge(name(e.U), name(e.V))
	}
	lg := b.Build()

	dense, err := Solve(nil, lg.Graph(), 5, WithOrder(OrderDegreeAsc))
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := lg.Solve(context.Background(), 5, WithOrder(OrderDegreeAsc))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(labeled.Raw.Cover, dense.Cover) {
		t.Fatalf("labeled raw cover %v != dense cover %v", labeled.Raw.Cover, dense.Cover)
	}
	if len(labeled.Cover) != len(dense.Cover) {
		t.Fatalf("cover lengths differ: %d vs %d", len(labeled.Cover), len(dense.Cover))
	}
	back := make([]VID, len(labeled.Cover))
	for i, label := range labeled.Cover {
		v, ok := lg.Lookup(label)
		if !ok {
			t.Fatalf("cover label %q unknown", label)
		}
		back[i] = v
	}
	if !slices.Equal(back, dense.Cover) {
		t.Fatal("labels do not translate back to the dense cover")
	}
	if rep := Verify(lg.Graph(), 5, 3, back, true); !rep.Valid || !rep.Minimal {
		t.Fatalf("translated cover failed verification: %+v", rep)
	}
}

// TestLabeledEdgeCover: the edge-transversal variant translates to labeled
// edges.
func TestLabeledEdgeCover(t *testing.T) {
	lg := labeledTriangle()
	r, err := lg.Solve(nil, 5, WithEdgeCover())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) != 1 {
		t.Fatalf("edge transversal %v, want one edge", r.Edges)
	}
	e := r.Edges[0]
	u, okU := lg.Lookup(e.U)
	v, okV := lg.Lookup(e.V)
	if !okU || !okV {
		t.Fatalf("edge %v carries unknown labels", e)
	}
	if !slices.Contains(lg.Graph().Out(u), v) {
		t.Fatalf("edge %v is not an edge of the graph", e)
	}
}

// TestLabeledCyclesAndWeights: FindCycle and EnumerateCycles speak labels;
// Weights steers expensive labels out of the cover.
func TestLabeledCyclesAndWeights(t *testing.T) {
	lg := labeledTriangle()
	if c := lg.FindCycle(5, "a"); len(c) != 3 {
		t.Fatalf("FindCycle = %v", c)
	}
	if c := lg.FindCycle(5, "d"); c != nil {
		t.Fatalf("pendant vertex on a cycle? %v", c)
	}
	if c := lg.FindCycle(5, "unknown"); c != nil {
		t.Fatalf("unknown label found a cycle: %v", c)
	}
	count := 0
	lg.EnumerateCycles(5, func(c []string) bool {
		count++
		if len(c) != 3 {
			t.Fatalf("cycle %v", c)
		}
		return true
	})
	if count != 1 {
		t.Fatalf("enumerated %d cycles, want 1", count)
	}

	w := lg.Weights(map[string]float64{"a": 100, "b": 100}, 1)
	res, err := lg.Solve(nil, 5, WithWeights(w), WithOrder(OrderWeighted))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 1 || res.Cover[0] != "c" {
		t.Fatalf("cover %v should pick the cheap vertex c", res.Cover)
	}
}

// TestLabeledMaintainerFlow: external IDs round-trip through the full
// dynamic flow — seed from a solve, stream insertions (including labels
// never seen at build time), delete, reminimize — with the cover valid at
// every checkpoint.
func TestLabeledMaintainerFlow(t *testing.T) {
	b := NewLabeledBuilder[string]()
	raw := GenPowerLaw(200, 1200, 2.2, 0.3, 41)
	name := func(i int) string { return fmt.Sprintf("n%03d", i) }
	for i := 0; i < raw.NumVertices(); i++ {
		b.Intern(name(i))
	}
	for _, e := range raw.Edges() {
		b.AddEdge(name(int(e.U)), name(int(e.V)))
	}
	lg := b.Build()
	res, err := lg.Solve(nil, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	m, err := lg.Maintainer(4, 3, res.Cover)
	if err != nil {
		t.Fatal(err)
	}
	if m.CoverSize() != len(res.Cover) {
		t.Fatalf("seeded cover size %d != %d", m.CoverSize(), len(res.Cover))
	}
	for _, label := range res.Cover {
		if !m.Covered(label) {
			t.Fatalf("seeded cover lost %q", label)
		}
	}

	// Churn, including labels outside the original vertex set.
	for i := 0; i < 300; i++ {
		u := name(i % 250) // 200..249 are brand new
		v := name((i*7 + 1) % 250)
		if u != v {
			m.InsertEdge(u, v)
		}
	}
	if m.NumVertices() < 201 {
		t.Fatalf("stream labels were not interned (n=%d)", m.NumVertices())
	}
	if rep := m.Verify(false); !rep.Valid {
		t.Fatal("cover invalid after insert churn")
	}

	// A triangle of brand-new labels must force a cover addition.
	m2 := NewLabeledMaintainer[string](5, 3)
	if _, added := m2.InsertEdge("p", "q"); added {
		t.Fatal("no cycle yet")
	}
	if _, added := m2.InsertEdge("q", "r"); added {
		t.Fatal("no cycle yet")
	}
	label, added := m2.InsertEdge("r", "p")
	if !added {
		t.Fatal("triangle close must cover")
	}
	if label != "p" && label != "q" && label != "r" {
		t.Fatalf("cover label %q is not a triangle vertex", label)
	}
	if !m2.Covered(label) || m2.CoverSize() != 1 {
		t.Fatal("cover bookkeeping broken")
	}

	// Deletions keep validity; Reminimize sheds the now-redundant entry.
	if !m2.DeleteEdge("r", "p") {
		t.Fatal("edge existed")
	}
	if m2.DeleteEdge("r", "p") {
		t.Fatal("double delete")
	}
	if m2.DeleteEdge("never", "seen") {
		t.Fatal("unknown labels deleted an edge")
	}
	if shed := m2.Reminimize(); shed != 1 {
		t.Fatalf("shed %d, want 1", shed)
	}
	if rep := m2.Verify(true); !rep.Valid || !rep.Minimal {
		t.Fatalf("final state: %+v", rep)
	}

	// Snapshot round-trips labels.
	snap := m2.Snapshot()
	if snap.NumVertices() != 3 {
		t.Fatalf("snapshot n = %d", snap.NumVertices())
	}
	if _, ok := snap.Lookup("q"); !ok {
		t.Fatal("snapshot lost a label")
	}
}

// TestLabeledApplyBatch: the batched update surface by external IDs —
// insertions intern new labels, deletions of unknown labels are no-ops,
// and the returned additions are labels.
func TestLabeledApplyBatch(t *testing.T) {
	m := NewLabeledMaintainer[string](5, 3)
	added := m.ApplyBatch([]LabeledUpdate[string]{
		{Op: UpdateInsert, U: "p", V: "q"},
		{Op: UpdateInsert, U: "q", V: "r"},
		{Op: UpdateInsert, U: "r", V: "p"},
		{Op: UpdateDelete, U: "never", V: "seen"},
	})
	if len(added) != 1 {
		t.Fatalf("triangle batch added %v, want one label", added)
	}
	if added[0] != "p" && added[0] != "q" && added[0] != "r" {
		t.Fatalf("cover label %q is not a triangle vertex", added[0])
	}
	if m.NumVertices() != 3 || m.NumEdges() != 3 || m.CoverSize() != 1 {
		t.Fatalf("batch state n=%d m=%d cover=%d", m.NumVertices(), m.NumEdges(), m.CoverSize())
	}
	if rep := m.Verify(false); !rep.Valid {
		t.Fatal("cover invalid after batch")
	}
	// Deleting the closing edge in a batch keeps validity; Reminimize
	// sheds the redundant entry.
	if got := m.ApplyBatch([]LabeledUpdate[string]{{Op: UpdateDelete, U: "r", V: "p"}}); got != nil {
		t.Fatalf("delete batch added %v", got)
	}
	if shed := m.Reminimize(); shed != 1 {
		t.Fatalf("shed %d, want 1", shed)
	}
	if rep := m.Verify(true); !rep.Valid || !rep.Minimal {
		t.Fatalf("final state: %+v", rep)
	}
}

// TestLabeledMaintainerRejectsForeignCover: seeding with labels outside the
// graph is an error, not silent misattribution.
func TestLabeledMaintainerRejectsForeignCover(t *testing.T) {
	lg := labeledTriangle()
	if _, err := lg.Maintainer(5, 3, []string{"a", "not-a-vertex"}); err == nil {
		t.Fatal("expected an error for a foreign cover label")
	}
}

// TestLabeledIntTypes: the labeled layer is generic — sparse integer IDs
// (e.g. database keys) work unchanged.
func TestLabeledIntTypes(t *testing.T) {
	b := NewLabeledBuilder[int64]()
	b.AddEdge(1_000_000_007, 42)
	b.AddEdge(42, 987_654_321)
	b.AddEdge(987_654_321, 1_000_000_007)
	lg := b.Build()
	res, err := lg.Solve(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 1 {
		t.Fatalf("cover %v", res.Cover)
	}
	if _, ok := lg.Lookup(res.Cover[0]); !ok {
		t.Fatal("cover label is not a graph vertex")
	}
}
