package graphstat

import (
	"bytes"
	"strings"
	"testing"

	"tdb/internal/digraph"
	"tdb/internal/gen"
)

func TestProfileTriangle(t *testing.T) {
	g := digraph.FromEdges(3, []digraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	p := Compute(g, Options{K: 5})
	if p.N != 3 || p.M != 3 {
		t.Fatalf("sizes wrong: %+v", p)
	}
	if p.Reciprocity != 0 {
		t.Fatalf("reciprocity = %v, want 0", p.Reciprocity)
	}
	if p.SCCs != 1 || p.LargestSCC != 3 || p.CyclicVertices != 3 {
		t.Fatalf("SCC stats wrong: %+v", p)
	}
	if p.CyclesByLength[3] != 1 || len(p.CyclesByLength) != 1 {
		t.Fatalf("cycle spectrum wrong: %v", p.CyclesByLength)
	}
}

func TestProfileReciprocity(t *testing.T) {
	g := digraph.FromEdges(2, []digraph.Edge{{U: 0, V: 1}, {U: 1, V: 0}})
	p := Compute(g, Options{})
	if p.Reciprocity != 1.0 {
		t.Fatalf("reciprocity = %v, want 1", p.Reciprocity)
	}
	if p.CyclesByLength != nil {
		t.Fatal("cycle counting must be off when K = 0")
	}
}

func TestProfileSpectrum(t *testing.T) {
	// 2-cycle, triangle, 4-ring sharing no vertices.
	b := digraph.NewBuilder(9)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	b.AddEdge(7, 8)
	b.AddEdge(8, 5)
	p := Compute(b.Build(), Options{K: 4})
	want := map[int]int64{2: 1, 3: 1, 4: 1}
	for l, n := range want {
		if p.CyclesByLength[l] != n {
			t.Fatalf("spectrum[%d] = %d, want %d", l, p.CyclesByLength[l], n)
		}
	}
}

func TestProfileTruncation(t *testing.T) {
	g := gen.ErdosRenyi(60, 900, 5)
	p := Compute(g, Options{K: 5, MaxCycles: 10})
	if !p.CyclesTruncated {
		t.Fatal("expected truncation on a dense graph with MaxCycles=10")
	}
	var total int64
	for _, n := range p.CyclesByLength {
		total += n
	}
	if total != 10 {
		t.Fatalf("counted %d cycles, want exactly 10", total)
	}
}

func TestProfilePercentiles(t *testing.T) {
	// Star: hub has degree 10, leaves degree 1.
	b := digraph.NewBuilder(11)
	for i := 1; i <= 10; i++ {
		b.AddEdge(0, digraph.VID(i))
	}
	p := Compute(b.Build(), Options{})
	if p.DegreeP50 != 1 || p.DegreeP99 != 10 {
		t.Fatalf("percentiles: p50=%d p99=%d", p.DegreeP50, p.DegreeP99)
	}
	if p.MaxOutDegree != 10 || p.MaxInDegree != 1 {
		t.Fatalf("max degrees: %d/%d", p.MaxOutDegree, p.MaxInDegree)
	}
}

func TestFprint(t *testing.T) {
	g := gen.PowerLaw(200, 1000, 2.0, 0.3, 1)
	p := Compute(g, Options{K: 4})
	var buf bytes.Buffer
	p.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"vertices", "reciprocity", "SCCs", "cycles of length"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	p := Compute(digraph.NewBuilder(0).Build(), Options{K: 4})
	if p.N != 0 || p.M != 0 || p.Reciprocity != 0 {
		t.Fatalf("empty profile wrong: %+v", p)
	}
}

func TestLocality(t *testing.T) {
	g := digraph.FromEdges(100, []digraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 99}})
	l := ComputeLocality(g)
	if l.Bandwidth != 97 {
		t.Fatalf("bandwidth = %d, want 97", l.Bandwidth)
	}
	if want := (1.0 + 1.0 + 97.0) / 3.0; l.AvgNeighborDist != want {
		t.Fatalf("avg = %v, want %v", l.AvgNeighborDist, want)
	}
	var buf bytes.Buffer
	l.Fprint(&buf, "input")
	if !strings.Contains(buf.String(), "bandwidth 97") {
		t.Fatalf("render missing bandwidth: %q", buf.String())
	}
	if empty := ComputeLocality(digraph.FromEdges(3, nil)); empty.Bandwidth != 0 || empty.AvgNeighborDist != 0 {
		t.Fatalf("empty graph locality nonzero: %+v", empty)
	}
}

func TestLocalityShrinksUnderBFSRenumbering(t *testing.T) {
	// A ring numbered by a stride permutation has terrible bandwidth; the
	// Cuthill-McKee sweep must bring the average distance down near 1.
	const n = 256
	edges := make([]digraph.Edge, n)
	for i := 0; i < n; i++ {
		u, v := digraph.VID(i*37%n), digraph.VID((i+1)*37%n)
		edges[i] = digraph.Edge{U: u, V: v}
	}
	g := digraph.FromEdges(n, edges)
	before := ComputeLocality(g)
	after := ComputeLocality(g.Renumber(digraph.RenumberPerm(g, digraph.RenumberBFS)))
	if after.AvgNeighborDist >= before.AvgNeighborDist {
		t.Fatalf("BFS renumbering did not improve locality: %v -> %v",
			before.AvgNeighborDist, after.AvgNeighborDist)
	}
}
