// Package graphstat profiles directed graphs: the quantities that drive
// cycle-cover difficulty (degree skew, edge reciprocity, SCC structure,
// and the short-cycle length spectrum). Used by cmd/tdbstat and to sanity-
// check that the synthetic dataset stand-ins match their targets.
package graphstat

import (
	"fmt"
	"io"
	"math"
	"sort"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
	"tdb/internal/scc"
)

// Profile summarizes a directed graph.
type Profile struct {
	N, M int
	// AvgOutDegree is m/n; MaxOutDegree/MaxInDegree the extremes.
	AvgOutDegree              float64
	MaxOutDegree, MaxInDegree int
	// DegreeP50/P90/P99 are percentiles of the total (in+out) degree.
	DegreeP50, DegreeP90, DegreeP99 int
	// Reciprocity is the fraction of edges whose reverse edge also exists.
	Reciprocity float64
	// SelfLoops counts (u, u) edges (zero for Builder-made graphs).
	SelfLoops int
	// SCCs is the number of strongly connected components; LargestSCC its
	// maximum size; CyclicVertices the number of vertices in non-trivial
	// components (an upper bound on any cover's support).
	SCCs, LargestSCC, CyclicVertices int
	// CyclesByLength[l] counts simple cycles of length l for l <= the
	// profiled k (exact, possibly truncated by MaxCycles).
	CyclesByLength map[int]int64
	// CyclesTruncated marks that cycle counting stopped at MaxCycles.
	CyclesTruncated bool
}

// Options tunes Compute.
type Options struct {
	// K bounds the cycle-length spectrum (0 disables cycle counting).
	K int
	// MaxCycles stops the spectrum count after this many cycles
	// (default 1e6) — counting is #P-hard in general.
	MaxCycles int64
}

// Compute profiles g.
func Compute(g digraph.Adjacency, opts Options) *Profile {
	n := g.NumVertices()
	p := &Profile{N: n, M: g.NumEdges()}
	if n > 0 {
		p.AvgOutDegree = float64(p.M) / float64(n)
	}

	total := make([]int, n)
	recip := 0
	for v := 0; v < n; v++ {
		od, id := g.OutDegree(digraph.VID(v)), g.InDegree(digraph.VID(v))
		total[v] = od + id
		if od > p.MaxOutDegree {
			p.MaxOutDegree = od
		}
		if id > p.MaxInDegree {
			p.MaxInDegree = id
		}
		for _, w := range g.Out(digraph.VID(v)) {
			if w == digraph.VID(v) {
				p.SelfLoops++
			} else if digraph.HasArc(g, w, digraph.VID(v)) {
				recip++
			}
		}
	}
	if p.M > 0 {
		p.Reciprocity = float64(recip) / float64(p.M)
	}
	sort.Ints(total)
	pct := func(q float64) int {
		if n == 0 {
			return 0
		}
		// Nearest-rank percentile: ceil(q * (n-1)).
		i := int(math.Ceil(q * float64(n-1)))
		return total[i]
	}
	p.DegreeP50, p.DegreeP90, p.DegreeP99 = pct(0.50), pct(0.90), pct(0.99)

	comps := scc.Compute(g)
	p.SCCs = comps.NumComponents()
	for _, s := range comps.Size {
		if int(s) > p.LargestSCC {
			p.LargestSCC = int(s)
		}
		if s >= 2 {
			p.CyclicVertices += int(s)
		}
	}

	if opts.K >= 2 {
		maxCycles := opts.MaxCycles
		if maxCycles <= 0 {
			maxCycles = 1_000_000
		}
		p.CyclesByLength = map[int]int64{}
		var seen int64
		cycle.NewEnumerator(g, opts.K, 2, nil).Visit(func(c []digraph.VID) bool {
			p.CyclesByLength[len(c)]++
			seen++
			if seen >= maxCycles {
				p.CyclesTruncated = true
				return false
			}
			return true
		})
	}
	return p
}

// Fprint renders the profile as aligned text.
func (p *Profile) Fprint(w io.Writer) {
	fmt.Fprintf(w, "vertices            %d\n", p.N)
	fmt.Fprintf(w, "edges               %d\n", p.M)
	fmt.Fprintf(w, "avg out-degree      %.2f\n", p.AvgOutDegree)
	fmt.Fprintf(w, "max out/in degree   %d / %d\n", p.MaxOutDegree, p.MaxInDegree)
	fmt.Fprintf(w, "degree p50/p90/p99  %d / %d / %d\n", p.DegreeP50, p.DegreeP90, p.DegreeP99)
	fmt.Fprintf(w, "reciprocity         %.3f\n", p.Reciprocity)
	fmt.Fprintf(w, "self-loops          %d\n", p.SelfLoops)
	fmt.Fprintf(w, "SCCs                %d (largest %d; %d vertices on cycles)\n",
		p.SCCs, p.LargestSCC, p.CyclicVertices)
	if p.CyclesByLength != nil {
		lengths := make([]int, 0, len(p.CyclesByLength))
		for l := range p.CyclesByLength {
			lengths = append(lengths, l)
		}
		sort.Ints(lengths)
		for _, l := range lengths {
			fmt.Fprintf(w, "cycles of length %-2d %d\n", l, p.CyclesByLength[l])
		}
		if p.CyclesTruncated {
			fmt.Fprintln(w, "cycle counts truncated (MaxCycles reached)")
		}
	}
}

// Locality summarizes how the vertex NUMBERING interacts with the CSR
// layout — the quantities cache-aware renumbering (digraph.RenumberPerm)
// tries to shrink. Per directed edge (u, v) the numbering distance is
// |u - v|: following the edge jumps that far across every VID-indexed
// array (adjacency rows, marks, lane-group slabs), so small distances
// keep traversals inside cached lines. Bandwidth is the worst such jump —
// the classical adjacency-matrix bandwidth Cuthill-McKee minimizes.
type Locality struct {
	// AvgNeighborDist is the mean |u - v| over all edges.
	AvgNeighborDist float64
	// P90NeighborDist is the 90th-percentile edge distance.
	P90NeighborDist int
	// Bandwidth is the maximum edge distance.
	Bandwidth int
}

// ComputeLocality measures the numbering locality of g's current layout.
func ComputeLocality(g digraph.Adjacency) Locality {
	var l Locality
	m := g.NumEdges()
	if m == 0 {
		return l
	}
	dists := make([]int, 0, m)
	var sum float64
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Out(digraph.VID(u)) {
			d := int(v) - u
			if d < 0 {
				d = -d
			}
			dists = append(dists, d)
			sum += float64(d)
		}
	}
	sort.Ints(dists)
	l.AvgNeighborDist = sum / float64(m)
	l.P90NeighborDist = dists[int(math.Ceil(0.90*float64(m-1)))]
	l.Bandwidth = dists[m-1]
	return l
}

// Fprint renders the locality stats as aligned text; label names the
// layout (e.g. "input", "degree", "bfs").
func (l Locality) Fprint(w io.Writer, label string) {
	fmt.Fprintf(w, "locality[%s]  avg dist %.1f  p90 %d  bandwidth %d\n",
		label, l.AvgNeighborDist, l.P90NeighborDist, l.Bandwidth)
}
