package core

import (
	"math/rand/v2"
	"testing"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
)

// removeEdges rebuilds the graph without the given edges.
func removeEdges(gr *digraph.Graph, drop []digraph.Edge) *digraph.Graph {
	dropSet := map[digraph.Edge]bool{}
	for _, e := range drop {
		dropSet[e] = true
	}
	b := digraph.NewBuilder(gr.NumVertices())
	for _, e := range gr.Edges() {
		if !dropSet[e] {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

func TestTopDownEdgesTriangle(t *testing.T) {
	gr := g(3, 0, 1, 1, 2, 2, 0)
	r, err := TopDownEdges(gr, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) != 1 {
		t.Fatalf("edge cover %v, want exactly one edge", r.Edges)
	}
	if cycle.NewEnumerator(removeEdges(gr, r.Edges), 5, 3, nil).HasAny() {
		t.Fatal("cycle survives edge removal")
	}
}

func TestTopDownEdgesDAG(t *testing.T) {
	gr := g(4, 0, 1, 1, 2, 2, 3, 0, 3)
	r, err := TopDownEdges(gr, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) != 0 {
		t.Fatalf("edge cover %v on a DAG", r.Edges)
	}
}

// Validity and minimality on random graphs, for both minLen settings.
func TestTopDownEdgesRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 33))
	for iter := 0; iter < 50; iter++ {
		n := 3 + rng.IntN(12)
		b := digraph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		gr := b.Build()
		for _, minLen := range []int{2, 3} {
			k := minLen + rng.IntN(4)
			r, err := TopDownEdges(gr, Options{K: k, MinLen: minLen})
			if err != nil {
				t.Fatal(err)
			}
			reduced := removeEdges(gr, r.Edges)
			if cycle.NewEnumerator(reduced, k, minLen, nil).HasAny() {
				t.Fatalf("iter %d k=%d minLen=%d: constrained cycle survives\ngraph=%v cover=%v",
					iter, k, minLen, gr.Edges(), r.Edges)
			}
			// Minimality: restoring any single cover edge re-creates a
			// constrained cycle through it.
			for _, e := range r.Edges {
				restored := removeEdges(gr, without(r.Edges, e))
				_ = restored
				rb := digraph.NewBuilder(gr.NumVertices())
				for _, ee := range reduced.Edges() {
					rb.AddEdge(ee.U, ee.V)
				}
				rb.AddEdge(e.U, e.V)
				if !cycle.NewEnumerator(rb.Build(), k, minLen, nil).HasAny() {
					t.Fatalf("iter %d: edge %v is redundant in cover %v\ngraph=%v",
						iter, e, r.Edges, gr.Edges())
				}
			}
		}
	}
}

func without(edges []digraph.Edge, e digraph.Edge) []digraph.Edge {
	out := make([]digraph.Edge, 0, len(edges))
	for _, x := range edges {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}

// The edge transversal can never need more edges than DARC selects after
// pruning... both are minimal, so just compare against DARC for validity
// and record that both approaches solve the same instance.
func TestTopDownEdgesVsDARC(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 99))
	for iter := 0; iter < 20; iter++ {
		n := 4 + rng.IntN(8)
		b := digraph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		gr := b.Build()
		tdbE, err := TopDownEdges(gr, Options{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		darcE, complete := DARCEdges(gr, 5, 3, nil)
		if !complete {
			t.Fatal("DARC timeout on tiny graph")
		}
		// Both must break all constrained cycles.
		for name, edges := range map[string][]digraph.Edge{"TDB-E": tdbE.Edges, "DARC": darcE} {
			if cycle.NewEnumerator(removeEdges(gr, edges), 5, 3, nil).HasAny() {
				t.Fatalf("iter %d: %s edge set leaves a cycle", iter, name)
			}
		}
	}
}

func TestTopDownEdgesCancellation(t *testing.T) {
	gr := g(3, 0, 1, 1, 2, 2, 0)
	r, err := TopDownEdges(gr, Options{K: 5, Cancelled: func() bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.TimedOut {
		t.Fatal("expected TimedOut")
	}
}

func TestTopDownEdgesValidation(t *testing.T) {
	gr := g(3, 0, 1)
	if _, err := TopDownEdges(gr, Options{K: 1}); err == nil {
		t.Fatal("K < MinLen must error")
	}
}

func TestParallelMatchesSequentialValidity(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 12))
	for iter := 0; iter < 30; iter++ {
		n := 6 + rng.IntN(30)
		b := digraph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		gr := b.Build()
		for _, workers := range []int{1, 4} {
			r, err := ComputeParallel(gr, TDBPlusPlus, Options{K: 5}, workers)
			if err != nil {
				t.Fatal(err)
			}
			checkCover(t, gr, TDBPlusPlus, Options{K: 5}, r)
		}
	}
}

func TestParallelManyComponents(t *testing.T) {
	// 100 disjoint triangles: cover must pick one vertex per triangle.
	b := digraph.NewBuilder(300)
	for i := 0; i < 100; i++ {
		x, y, z := VID(3*i), VID(3*i+1), VID(3*i+2)
		b.AddEdge(x, y)
		b.AddEdge(y, z)
		b.AddEdge(z, x)
	}
	gr := b.Build()
	r, err := ComputeParallel(gr, TDBPlusPlus, Options{K: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cover) != 100 {
		t.Fatalf("cover = %d, want 100", len(r.Cover))
	}
	checkCover(t, gr, TDBPlusPlus, Options{K: 5}, r)
}

func TestParallelUnconstrainedClamp(t *testing.T) {
	// K = n (unconstrained) must be clamped per component, not break.
	b := digraph.NewBuilder(20)
	for i := 0; i < 4; i++ {
		base := VID(5 * i)
		for j := VID(0); j < 5; j++ {
			b.AddEdge(base+j, base+(j+1)%5)
		}
	}
	gr := b.Build()
	r, err := ComputeParallel(gr, TDBPlusPlus, Options{K: 20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cover) != 4 {
		t.Fatalf("cover = %v, want one vertex per 5-ring", r.Cover)
	}
}

func TestParallelSkipsTinyComponents(t *testing.T) {
	// 2-vertex SCCs hold only 2-cycles: invisible at MinLen=3, covered at 2.
	gr := g(4, 0, 1, 1, 0, 2, 3, 3, 2)
	r, err := ComputeParallel(gr, TDBPlusPlus, Options{K: 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cover) != 0 {
		t.Fatalf("cover = %v, want empty at MinLen=3", r.Cover)
	}
	r2, err := ComputeParallel(gr, TDBPlusPlus, Options{K: 5, MinLen: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Cover) != 2 {
		t.Fatalf("cover = %v, want one per 2-cycle", r2.Cover)
	}
}

func TestParallelValidation(t *testing.T) {
	gr := g(3, 0, 1)
	if _, err := ComputeParallel(gr, TDBPlusPlus, Options{K: 1}, 2); err == nil {
		t.Fatal("K < MinLen must error")
	}
}
