package core

import (
	"sort"
	"time"

	"tdb/internal/digraph"
)

// This file implements the paper's baseline: DARC, the k-cycle transversal
// of Kuhnle et al. (Alg. 1-3), which selects a set S of EDGES intersecting
// every constrained cycle, and DARC-DV, its vertex-cover adaptation that
// runs DARC on the line graph and maps each chosen line-graph edge to the
// original-graph vertex it pivots on (Sec. III-B).

// edge states for DARC
const (
	stNone uint8 = iota
	stS          // selected in the transversal
	stW          // waiting (demoted by PRUNE, reusable by AUGMENT)
)

// DARCEdges runs the edge version of DARC on g and returns the selected
// edge transversal: a set of edges intersecting every cycle of length in
// [minLen, k]. cancelled (optional) is polled between edges; on timeout the
// returned set is partial and the bool result is false.
func DARCEdges(g digraph.Adjacency, k, minLen int, cancelled func() bool) ([]digraph.Edge, bool) {
	d := newDarc(g, k, minLen)
	complete := d.run(cancelled)
	var edges []digraph.Edge
	for id, st := range d.state {
		if st == stS {
			edges = append(edges, d.edgeOf(int64(id)))
		}
	}
	return edges, complete
}

type darc struct {
	g      digraph.Adjacency
	k      int
	minLen int

	state []uint8 // per edge ID (CSR out-adjacency position)
	bases []int64 // bases[u] is the CSR offset of u's first out-edge
	queue []int64 // P: candidates for PRUNE
	inP   []bool

	// DFS scratch for the S-avoiding cycle search.
	onPath  []bool
	marked  []VID   // vertices marked in onPath during the current search
	path    []int64 // edge IDs of the current path
	pruned  int64
	checked int64

	// cancellation: a single S-avoiding search is worst-case exponential,
	// so the hook is polled inside the DFS as well as between edges. Once
	// aborted the whole run is invalid (reported via run's return value).
	cancelled func() bool
	steps     int64
	aborted   bool
}

func newDarc(g digraph.Adjacency, k, minLen int) *darc {
	return &darc{
		g: g, k: k, minLen: minLen,
		state:  make([]uint8, g.NumEdges()),
		inP:    make([]bool, g.NumEdges()),
		onPath: make([]bool, g.NumVertices()),
	}
}

// run executes DARC: AUGMENT over all edges, then PRUNE (Alg. 1).
func (d *darc) run(cancelled func() bool) bool {
	d.cancelled = cancelled
	d.initBases()
	for u := 0; u < d.g.NumVertices(); u++ {
		out := d.g.Out(VID(u))
		for i := range out {
			if d.aborted || (cancelled != nil && cancelled()) {
				return false
			}
			id := d.bases[u] + int64(i)
			if d.state[id] != stS {
				d.augment(VID(u), out[i], id)
			}
		}
	}
	if d.aborted || (cancelled != nil && cancelled()) {
		return false
	}
	d.prune(cancelled)
	return !d.aborted && !(cancelled != nil && cancelled())
}

// augment covers every currently uncovered constrained cycle through edge
// (u, v) (Alg. 2). Instead of materializing all of Delta_k(e) and filtering
// by S, it repeatedly searches for one S-avoiding constrained cycle through
// the edge and applies the W/S rules, which is equivalent (every found
// cycle receives one of its own edges into S) and avoids enumerating
// covered cycles.
func (d *darc) augment(u, v VID, id int64) {
	if d.state[id] == stW {
		d.state[id] = stS
		d.pushP(id)
		return
	}
	for d.state[id] != stS {
		// Once e itself enters S, every remaining cycle through e is
		// covered by e (Alg. 2 line 8 skips cycles meeting S, and e is on
		// all of them).
		cycEdges := d.findAvoidingCycle(u, v, id)
		if cycEdges == nil {
			return
		}
		// Move a W edge of the cycle to S if one exists; otherwise take
		// every edge of the cycle into S (Alg. 2 lines 8-13).
		moved := false
		for _, e := range cycEdges {
			if d.state[e] == stW {
				d.state[e] = stS
				d.pushP(e)
				moved = true
				break
			}
		}
		if !moved {
			for _, e := range cycEdges {
				d.state[e] = stS
				d.pushP(e)
			}
		}
	}
}

// prune tries to demote every candidate edge: e leaves S when S\{e} still
// intersects every constrained cycle, i.e. when no constrained cycle
// through e avoids S\{e} (Alg. 3).
func (d *darc) prune(cancelled func() bool) {
	for len(d.queue) > 0 {
		if d.aborted || (cancelled != nil && cancelled()) {
			return
		}
		id := d.queue[0]
		d.queue = d.queue[1:]
		d.inP[id] = false
		if d.state[id] != stS {
			continue
		}
		u, v := d.endpoints(id)
		d.state[id] = stNone // search must be free to traverse e's slot
		if d.findAvoidingCycle(u, v, id) == nil {
			d.state[id] = stW
			d.pruned++
		} else {
			d.state[id] = stS
		}
	}
}

func (d *darc) pushP(id int64) {
	if !d.inP[id] {
		d.inP[id] = true
		d.queue = append(d.queue, id)
	}
}

func (d *darc) initBases() {
	d.bases = make([]int64, d.g.NumVertices()+1)
	for u := 0; u < d.g.NumVertices(); u++ {
		d.bases[u+1] = d.bases[u] + int64(d.g.OutDegree(VID(u)))
	}
}

func (d *darc) endpoints(id int64) (VID, VID) {
	u := VID(sort.Search(d.g.NumVertices(), func(i int) bool { return d.bases[i+1] > id }))
	v := d.g.Out(u)[id-d.bases[u]]
	return u, v
}

func (d *darc) edgeOf(id int64) digraph.Edge {
	u, v := d.endpoints(id)
	return digraph.Edge{U: u, V: v}
}

// findAvoidingCycle searches for one constrained cycle through edge
// (u, v) = id whose edges (other than id itself) all avoid S. It returns
// the cycle's edge IDs (including id) or nil. The search walks simple paths
// v -> ... -> u of length <= k-1 over non-S edges.
func (d *darc) findAvoidingCycle(u, v VID, id int64) []int64 {
	d.checked++
	d.path = d.path[:0]
	d.path = append(d.path, id)
	d.marked = d.marked[:0]
	d.mark(u)
	d.mark(v)
	found := d.dfs(v, u, 1)
	// A successful DFS returns without unwinding, so clear every mark made
	// during this search wholesale.
	for _, x := range d.marked {
		d.onPath[x] = false
	}
	if !found {
		return nil
	}
	out := make([]int64, len(d.path))
	copy(out, d.path)
	return out
}

func (d *darc) mark(v VID) {
	d.onPath[v] = true
	d.marked = append(d.marked, v)
}

// dfs extends the path (currently at cur, depth edges used including the
// seed edge) toward target. Cycle length = depth when cur == target would
// close, so closing at neighbor w == target needs depth+1 in [minLen, k].
func (d *darc) dfs(cur, target VID, depth int) bool {
	base := d.bases[cur]
	for i, w := range d.g.Out(cur) {
		d.steps++
		if d.steps%4096 == 0 && d.cancelled != nil && d.cancelled() {
			d.aborted = true
			return false
		}
		if d.aborted {
			return false
		}
		eid := base + int64(i)
		if d.state[eid] == stS {
			continue
		}
		if w == target {
			if depth+1 >= d.minLen {
				d.path = append(d.path, eid)
				return true
			}
			continue
		}
		if d.onPath[w] || depth+1 > d.k-1 {
			continue
		}
		d.mark(w)
		d.path = append(d.path, eid)
		if d.dfs(w, target, depth+1) {
			return true
		}
		d.path = d.path[:len(d.path)-1]
		d.onPath[w] = false
	}
	return false
}

// darcDV implements the DARC-DV baseline: DARC's edge transversal, with
// each selected edge projected to its head vertex (deduplicated). Every
// constrained cycle contains a selected edge, and that edge's head lies on
// the cycle, so the projection is a valid vertex cover.
//
// Deviation from the paper's description (see DESIGN.md): the paper
// converts G to its line graph and runs DARC there. A line-graph cycle is a
// closed walk of G with distinct EDGES but possibly repeated VERTICES, so
// the literal construction also covers phantom walks that are not
// constrained cycles under the paper's own Definition 1 (e.g. two 2-cycles
// sharing a vertex compose into a line-graph 4-cycle), inflating both the
// cover and the memory footprint (the line graph has Sum_v din(v)*dout(v)
// edges). Running the identical AUGMENT/PRUNE machinery directly on G's
// edges with a vertex-simple cycle search covers exactly the cycles
// Definition 1 demands, at the same O(n^k) worst case.
func darcDV(g digraph.Adjacency, opts Options) (*Result, error) {
	start := time.Now()
	r := &Result{}

	d := newDarc(g, opts.K, opts.MinLen)
	complete := d.run(opts.stop())
	r.Stats.TimedOut = !complete
	r.Stats.PruneRemoved = d.pruned
	r.Stats.Checked = d.checked

	inCover := make([]bool, g.NumVertices())
	for id, st := range d.state {
		if st != stS {
			continue
		}
		_, head := d.endpoints(int64(id))
		if !inCover[head] {
			inCover[head] = true
			r.Cover = append(r.Cover, head)
		}
	}
	finishStats(r, g, DARCDV, opts, start)
	return r, nil
}
