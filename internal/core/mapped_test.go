package core

import (
	"path/filepath"
	"slices"
	"testing"

	"tdb/internal/digraph"
	"tdb/internal/gen"
)

// TestSolversOnMappedBackend runs every cover algorithm over the mapped
// backend and asserts the covers are bit-identical to the in-memory runs —
// the storage seam must be invisible to the algorithm layer.
func TestSolversOnMappedBackend(t *testing.T) {
	g := gen.PowerLaw(250, 1200, 2.2, 0.3, 51)
	path := filepath.Join(t.TempDir(), "g.tdbcsr")
	if err := digraph.WriteMapped(path, g); err != nil {
		t.Fatal(err)
	}
	mg, err := digraph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()

	for _, algo := range []Algorithm{TDB, TDBPlus, TDBPlusPlus, BUR, BURPlus} {
		mem, err := Compute(g, algo, Options{K: 5})
		if err != nil {
			t.Fatalf("%v memory: %v", algo, err)
		}
		mapped, err := Compute(mg, algo, Options{K: 5})
		if err != nil {
			t.Fatalf("%v mapped: %v", algo, err)
		}
		if !slices.Equal(mem.Cover, mapped.Cover) {
			t.Fatalf("%v covers diverge:\nmemory: %v\nmapped: %v", algo, mem.Cover, mapped.Cover)
		}
		if mem.Stats.Storage != "memory" || mapped.Stats.Storage != "mapped" {
			t.Fatalf("%v Stats.Storage stamped %q/%q, want memory/mapped",
				algo, mem.Stats.Storage, mapped.Stats.Storage)
		}
	}
}
