package core

import (
	"context"
	"math"
	"sync"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
	"tdb/internal/scc"
)

// rankExcluded marks vertices outside the batched in-loop filter graph
// (cover vertices, unreached candidates); working-graph members rank 0 and
// the current filter window counts up from 1 (see topDown).
const rankExcluded = math.MaxInt32

// Engine computes covers over one fixed graph while pooling all working
// state — the detectors' epoch-mark/stamp tables, the BFS-filter queues,
// the active-adjacency working graph (and its mask fallback), the
// candidate-order buffer — across runs.
// A one-shot Compute allocates that state afresh every call; under repeated
// traffic over the same graph (the service setting, not the paper's
// one-shot experiments) the engine brings steady-state allocations per
// cover down to the result itself. It is safe for concurrent use: each run
// borrows a private scratch set from an internal sync.Pool.
//
// The engine mirrors the package-level entry points: Compute, and
// ComputeParallel for the SCC-partitioned solver. Context is accepted
// explicitly and takes precedence over Options.Context.
type Engine struct {
	g digraph.Adjacency
	// run-level scratch (mask + order buffer + detector scratch), one per
	// concurrent sequential run.
	runPool sync.Pool
	// detector-level scratch for prepass and parallel workers, which need
	// many scratches per run.
	cycPool *cycle.ScratchPool
	// Strategy planning inspects the SCC condensation; the graph is fixed,
	// so the engine computes the decomposition and its non-trivial
	// component count once, and also hands the decomposition to the
	// partitioned solver, which would otherwise recompute it per run.
	planOnce   sync.Once
	comps      *scc.Result
	nontrivial int
}

// NewEngine creates a reusable compute engine over g.
func NewEngine(g digraph.Adjacency) *Engine {
	e := &Engine{g: g, cycPool: cycle.NewScratchPool(g.NumVertices())}
	e.runPool.New = func() any { return newRunScratch(g.NumVertices()) }
	return e
}

// Graph returns the adjacency backend the engine computes over.
func (e *Engine) Graph() digraph.Adjacency { return e.g }

// Compute runs the selected algorithm with pooled scratch state. A nil ctx
// falls back to opts.Context; a non-nil ctx supersedes it.
func (e *Engine) Compute(ctx context.Context, algo Algorithm, opts Options) (*Result, error) {
	if ctx != nil {
		opts.Context = ctx
	}
	opts = opts.withDefaults()
	if err := opts.validate(e.g); err != nil {
		return nil, err
	}
	rs := e.runPool.Get().(*runScratch)
	rs.cycPool = e.cycPool
	// Deliberately NOT a deferred Put: if compute panics out of this frame
	// (caller-supplied callbacks, or a bug the pool recovery above this layer
	// contains), the scratch was abandoned mid-traversal and may hold
	// poisoned marks — quarantine it to the GC instead of ever handing it to
	// a later, unrelated run.
	r, err := compute(e.g, algo, opts, rs)
	e.runPool.Put(rs)
	return r, err
}

// condensation returns the engine's cached SCC decomposition.
func (e *Engine) condensation() *scc.Result {
	e.planOnce.Do(func() {
		e.comps = scc.Compute(e.g)
		e.nontrivial = countNontrivial(e.comps)
	})
	return e.comps
}

// nontrivialSCCs returns the cached non-trivial component count, the
// planner's condensation-splits signal, in O(1) steady state.
func (e *Engine) nontrivialSCCs() int {
	e.condensation()
	return e.nontrivial
}

// FindCycle returns one cycle of length in [minLen, k] through vertex s,
// or nil, using the block-based detector on scratch borrowed from the
// engine's pool — the allocation-free counterpart of the one-shot package
// query for serving repeated traffic.
func (e *Engine) FindCycle(k, minLen int, s VID) []VID {
	sc := e.cycPool.Get()
	// Non-deferred Put: a panicking query quarantines its scratch (see
	// Compute) rather than pooling possibly-poisoned marks.
	c := cycle.NewBlockDetectorWith(e.g, k, minLen, nil, sc).FindFrom(s)
	e.cycPool.Put(sc)
	return c
}

// HasHopConstrainedCycle reports whether the engine's graph contains any
// cycle of length in [minLen, k], with pooled scratch shared between the
// batched BFS-filter (up to 512 pruning queries per sweep, width picked
// from the graph size) and the detector run on the survivors.
func (e *Engine) HasHopConstrainedCycle(k, minLen int) bool {
	sc := e.cycPool.Get()
	det := cycle.NewBlockDetectorWith(e.g, k, minLen, nil, sc)
	filter := cycle.NewBatchBFSFilterWith(e.g, k, nil, sc)
	filter.SetLanes(e.g.NumVertices())
	found := !filter.VisitUnpruned(e.g.NumVertices(), func(v VID) bool {
		return !det.HasCycleThrough(v) // a found cycle stops the sweep
	})
	// Non-deferred Put: a panicking query quarantines its scratch (see
	// Compute) rather than pooling possibly-poisoned marks.
	e.cycPool.Put(sc)
	return found
}

// ComputeParallel runs the SCC-partitioned parallel solver (see the
// package-level ComputeParallel) under the engine's graph and context
// plumbing. The engine's scratch pools do NOT apply here: each component
// runs on its own induced subgraph, whose size differs from the engine's
// graph, so per-component state is allocated per run as in the
// package-level function.
func (e *Engine) ComputeParallel(ctx context.Context, algo Algorithm, opts Options, workers int) (*Result, error) {
	if ctx != nil {
		opts.Context = ctx
	}
	return ComputeParallel(e.g, algo, opts, workers)
}

// runScratch bundles the per-run O(n) buffers of the sequential cover
// algorithms. The zero state of every buffer is re-established by the
// borrowing algorithm (mask fill, counter clear), not at release time, so a
// pooled scratch carries no information between runs.
type runScratch struct {
	cyc    *cycle.Scratch      // detector + filter buffers (disjoint groups)
	active *digraph.VertexMask // working-graph overlay (mask fallback; lazy)
	// view is the compacted active-adjacency working graph (lazy; pooled
	// across runs so steady-state engine covers stay allocation-free).
	view     *digraph.ActiveAdjacency
	ids      []VID   // candidate-order buffer
	h        []int64 // BUR hit counters (lazy)
	resolved []bool  // prepass/batch-filter result buffer (lazy)
	pos      []int32 // prepass order-position index (lazy)
	frank    []int32 // batched in-loop filter rank array (lazy)
	// bpf is the pooled batched in-loop filter, re-targeted per run so the
	// steady-state engine cover does not allocate it.
	bpf cycle.BatchPrefixFilter
	// loopLadder and prepassLadder persist the filters' lane-width verdicts
	// across runs: a width trial costs real sweeps (one wide group can be
	// several milliseconds on a large graph), so a pooled scratch pays it
	// once and serves every later run at the settled width. The hop
	// constraint shapes the sweeps, so a changed k retrains both.
	loopLadder    *cycle.WidthLadder
	prepassLadder *cycle.WidthLadder
	ladderK       int
	// cycPool, when non-nil, supplies per-worker detector scratch for the
	// prepass (set by Engine; nil on the one-shot path).
	cycPool *cycle.ScratchPool
}

func newRunScratch(n int) *runScratch {
	return &runScratch{
		cyc: cycle.NewScratch(n),
		ids: make([]VID, n),
	}
}

// viewMinAvgDegree gates the active-adjacency view on graph density: below
// an average degree of 2 the graph is forest/DAG-like, detector queries are
// already near-free (most vertices have no active in-neighbor to even start
// a walk from), and the view's O(m) build plus O(deg) activation swaps
// cannot be recouped — measured ~1.7x slower on a 30k-vertex planted-cycles
// graph with davg 1.4, while power-law graphs win with the view from davg 2
// up (BenchmarkCoverWorkingGraph, DESIGN.md §7).
const viewMinAvgDegree = 2

// workingGraph returns the run's working-graph representation reset to the
// given initial state. The default is the compacted active-adjacency view
// (first return non-nil): detector scans then touch exactly the live edges.
// The []bool VertexMask is the fallback for graphs beyond the view's int32
// edge limit, for near-acyclic graphs below the view's density cutoff, and
// for the maskWorkingGraph opt-out (equivalence tests, comparison
// benchmarks).
func (rs *runScratch) workingGraph(g digraph.Adjacency, opts Options, allActive bool) (*digraph.ActiveAdjacency, working) {
	if opts.maskWorkingGraph || !digraph.FitsActiveAdjacency(g) ||
		g.NumEdges() < viewMinAvgDegree*g.NumVertices() {
		if rs.active == nil {
			rs.active = digraph.NewVertexMask(g.NumVertices(), false)
		}
		rs.active.Fill(allActive)
		return nil, rs.active
	}
	if rs.view == nil || rs.view.Base() != g {
		rs.view = digraph.NewActiveAdjacency(g, allActive)
	} else if allActive {
		// The bottom-up cover's results depend on the order the DFS scans
		// live neighbors, so a pooled view must look exactly like a fresh
		// one; the top-down family only asks order-independent questions
		// and gets the cheap O(n) reset.
		rs.view.ResetCanonical(allActive)
	} else {
		rs.view.Reset(allActive)
	}
	return rs.view, rs.view
}

// hitCounters returns the zeroed BUR hit-counter buffer.
func (rs *runScratch) hitCounters(n int) []int64 {
	if rs.h == nil {
		rs.h = make([]int64, n)
	} else {
		clear(rs.h)
	}
	return rs.h
}

// resolvedBuf returns the zeroed prepass result buffer.
func (rs *runScratch) resolvedBuf(n int) []bool {
	if rs.resolved == nil {
		rs.resolved = make([]bool, n)
	} else {
		clear(rs.resolved)
	}
	return rs.resolved
}

// posBuf returns the prepass position buffer (fully overwritten by the
// caller, so no clearing is needed).
func (rs *runScratch) posBuf(n int) []int32 {
	if rs.pos == nil {
		rs.pos = make([]int32, n)
	}
	return rs.pos
}

// widthLadders returns the run's persistent lane-width ladders (in-loop
// windows capped by the order length, prepass groups by the claim chunk),
// retraining both when the hop constraint changed since they were trained.
func (rs *runScratch) widthLadders(k, n int) (loop, pre *cycle.WidthLadder) {
	if rs.loopLadder == nil || rs.ladderK != k {
		rs.loopLadder = cycle.NewWidthLadder(n)
		rs.prepassLadder = cycle.NewWidthLadder(prepassChunk)
		rs.ladderK = k
	}
	return rs.loopLadder, rs.prepassLadder
}

// filterRankBuf returns the rank array of the batched in-loop BFS filter,
// reset to all-excluded. It is deliberately separate from the run's
// working-graph representation: the filter queries a window of candidates
// AHEAD of the per-candidate loop, and admitting the window through these
// O(1)-toggle ranks keeps the view — and with it every detector query —
// bit-exactly on the sequential working graph (see topDown).
func (rs *runScratch) filterRankBuf(n int) []int32 {
	if rs.frank == nil {
		rs.frank = make([]int32, n)
	}
	for i := range rs.frank {
		rs.frank[i] = rankExcluded
	}
	return rs.frank
}
