package core

import (
	"runtime"
	"sync"
	"time"

	"tdb/internal/digraph"
	"tdb/internal/scc"
)

// ComputeParallel computes the same cover problem as Compute by
// decomposing the graph into strongly connected components and covering
// each non-trivial component independently in a worker pool. Every directed
// cycle lies inside one SCC, so the union of per-component covers is a
// valid cover of the whole graph, and since restoring a vertex can only
// expose cycles inside its own component, minimality is preserved
// per-component and therefore globally.
//
// This is an extension over the paper (which is single-threaded): it helps
// exactly when the cyclic part of the graph splits into many components
// (program-analysis and circuit workloads often do); a graph that is one
// giant SCC gains nothing. workers <= 0 selects GOMAXPROCS.
//
// The per-component computation inherits algo and opts (Cancelled is polled
// by every worker; a timeout marks the whole result).
func ComputeParallel(g *digraph.Graph, algo Algorithm, opts Options, workers int) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	r := &Result{}

	comps := scc.Compute(g)
	r.Stats.SCCSkipped = int64(g.NumVertices())

	// Collect vertices of each non-trivial component.
	members := make(map[int32][]VID)
	for v := 0; v < g.NumVertices(); v++ {
		c := comps.Comp[v]
		if comps.Size[c] >= 2 {
			members[c] = append(members[c], VID(v))
		}
	}
	type job struct {
		verts []VID
	}
	jobs := make(chan job)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				keep := make([]bool, g.NumVertices())
				for _, v := range j.verts {
					keep[v] = true
				}
				sub, oldID := g.InducedSubgraph(keep)
				subOpts := opts
				subOpts.SCCPrefilter = false // already decomposed
				if sub.NumVertices() < subOpts.MinLen {
					// Too small to hold any constrained cycle (e.g. a
					// 2-vertex SCC when 2-cycles are excluded).
					continue
				}
				if subOpts.K > sub.NumVertices() {
					// No simple cycle exceeds the component size; clamping
					// keeps the unconstrained case (K = n) cheap.
					subOpts.K = sub.NumVertices()
				}
				res, err := Compute(sub, algo, subOpts)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					for _, v := range res.Cover {
						r.Cover = append(r.Cover, oldID[v])
					}
					r.Stats.Checked += res.Stats.Checked
					r.Stats.FilterPruned += res.Stats.FilterPruned
					r.Stats.CyclesHit += res.Stats.CyclesHit
					r.Stats.PruneRemoved += res.Stats.PruneRemoved
					r.Stats.Detector.Add(res.Stats.Detector)
					r.Stats.SCCSkipped -= int64(sub.NumVertices())
					if res.Stats.TimedOut {
						r.Stats.TimedOut = true
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, verts := range members {
		jobs <- job{verts: verts}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	finishStats(r, g, algo, opts, start)
	return r, nil
}
