package core

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"tdb/internal/digraph"
	"tdb/internal/fault"
	"tdb/internal/scc"
)

// ComputeParallel computes the same cover problem as Compute by
// decomposing the graph into strongly connected components and covering
// each non-trivial component independently in a worker pool. Every directed
// cycle lies inside one SCC, so the union of per-component covers is a
// valid cover of the whole graph, and since restoring a vertex can only
// expose cycles inside its own component, minimality is preserved
// per-component and therefore globally.
//
// This is an extension over the paper (which is single-threaded): it helps
// exactly when the cyclic part of the graph splits into many components
// (program-analysis and circuit workloads often do). A graph that is one
// giant SCC gains nothing from the decomposition — for that shape, enable
// the intra-SCC BFS-filter prepass (Options.PrepassWorkers) instead; the
// two compose, each component run inheriting the caller's options.
//
// Cancellation (Options.Context or the deprecated Options.Cancelled) is
// polled by every worker; a timeout marks the whole result. workers <= 0
// selects GOMAXPROCS.
func ComputeParallel(g digraph.Adjacency, algo Algorithm, opts Options, workers int) (*Result, error) {
	return computeParallelWith(g, algo, opts, workers, nil)
}

// computeParallelWith is ComputeParallel reusing a precomputed SCC
// decomposition when the caller (the planning layer, which inspected the
// condensation to choose this strategy) already has one; nil computes it
// here.
func computeParallelWith(g digraph.Adjacency, algo Algorithm, opts Options, workers int, comps *scc.Result) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	if err := checkPartialSupport(algo, opts); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	stop := opts.stop()
	r := &Result{}

	if comps == nil {
		comps = scc.Compute(g)
	}
	r.Stats.SCCSkipped = int64(g.NumVertices())

	// Collect vertices of each non-trivial component.
	members := make(map[int32][]VID)
	for v := 0; v < g.NumVertices(); v++ {
		c := comps.Comp[v]
		if comps.Size[c] >= 2 {
			members[c] = append(members[c], VID(v))
		}
	}
	// An explicit candidate order induces per-component orders: position
	// index once, each job sorts its component's dense IDs by it.
	var orderPos []int32
	if opts.CandidateOrder != nil {
		orderPos = make([]int32, g.NumVertices())
		for i, v := range opts.CandidateOrder {
			orderPos[v] = int32(i)
		}
	}
	type job struct {
		verts []VID
	}
	jobs := make(chan job)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		trap     panicTrap
	)
	// runJob covers one component on the worker's own state and is the
	// panic-isolation boundary: a panic anywhere in the per-component
	// computation is recovered HERE — outside the merge mutex, so siblings
	// can never deadlock on a lock the dying worker held — and surfaced as
	// a PanicError with the original stack.
	runJob := func(keep []bool, verts []VID) (res *Result, oldID []VID, err error) {
		defer func() {
			if p := recover(); p != nil {
				trap.capture(p)
				res, err = nil, trap.Err()
			}
		}()
		fault.Inject(fault.SiteCoreParallelWorker)
		for _, v := range verts {
			keep[v] = true
		}
		sub, old := digraph.Induced(g, keep)
		for _, v := range verts {
			keep[v] = false
		}
		oldID = old
		subOpts := opts
		subOpts.SCCPrefilter = false // already decomposed
		if orderPos != nil {
			// InducedSubgraph relabels monotonically, so dense ID i
			// is oldID[i]; sorting the dense IDs by the global
			// order's positions replays it inside the component.
			so := make([]VID, len(oldID))
			for i := range so {
				so[i] = VID(i)
			}
			sort.Slice(so, func(a, b int) bool {
				return orderPos[oldID[so[a]]] < orderPos[oldID[so[b]]]
			})
			subOpts.CandidateOrder = so
		}
		if opts.Weights != nil {
			// Remap the cost vector to the component's dense IDs.
			sw := make([]float64, sub.NumVertices())
			for i, old := range oldID {
				sw[i] = opts.Weights[old]
			}
			subOpts.Weights = sw
		}
		if sub.NumVertices() < subOpts.MinLen {
			// Too small to hold any constrained cycle (e.g. a
			// 2-vertex SCC when 2-cycles are excluded).
			return nil, oldID, nil
		}
		if subOpts.K > sub.NumVertices() {
			// No simple cycle exceeds the component size; clamping
			// keeps the unconstrained case (K = n) cheap.
			subOpts.K = sub.NumVertices()
		}
		res, err = Compute(sub, algo, subOpts)
		return res, oldID, err
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One O(n) membership mask per worker, cleared after each job
			// in O(|component|) instead of reallocated.
			keep := make([]bool, g.NumVertices())
			for j := range jobs {
				if trap.tripped() {
					continue // a sibling panicked: drain the channel
				}
				if stop != nil && stop() {
					// Stay on the safe side, as the sequential loop does:
					// every vertex of an unprocessed component joins the
					// (partial, non-minimal) cover, so all its cycles stay
					// covered.
					mu.Lock()
					r.Stats.TimedOut = true
					r.Cover = append(r.Cover, j.verts...)
					r.Stats.SCCSkipped -= int64(len(j.verts))
					mu.Unlock()
					continue // drain the channel
				}
				res, oldID, err := runJob(keep, j.verts)
				mu.Lock()
				switch {
				case err != nil:
					if firstErr == nil {
						firstErr = err
					}
				case res == nil:
					// Component too small for any constrained cycle; it stays
					// counted in SCCSkipped.
				default:
					for _, v := range res.Cover {
						r.Cover = append(r.Cover, oldID[v])
					}
					r.Stats.Checked += res.Stats.Checked
					r.Stats.FilterPruned += res.Stats.FilterPruned
					if res.Stats.FilterBatchWidth > r.Stats.FilterBatchWidth {
						r.Stats.FilterBatchWidth = res.Stats.FilterBatchWidth
					}
					r.Stats.PrepassResolved += res.Stats.PrepassResolved
					r.Stats.CyclesHit += res.Stats.CyclesHit
					r.Stats.PruneRemoved += res.Stats.PruneRemoved
					r.Stats.Detector.Add(res.Stats.Detector)
					r.Stats.SCCSkipped -= int64(res.Stats.N)
					if res.Stats.TimedOut {
						r.Stats.TimedOut = true
					}
					if res.Stats.Degraded {
						r.Stats.Degraded = true
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, verts := range members {
		jobs <- job{verts: verts}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if r.Stats.TimedOut && opts.PartialOnDeadline {
		// Skipped components joined the cover wholesale, and every
		// per-component result was itself degraded-valid, so the merged
		// cover is a valid conservative cover of the whole graph.
		r.Stats.TimedOut = false
		r.Stats.Degraded = true
	}
	finishStats(r, g, algo, opts, start)
	stampStopReason(r, opts)
	return r, nil
}
