package core

import (
	"time"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
)

// bottomUp implements the paper's bottom-up cover (Alg. 4, BUR) and, when
// minimal is set, the extra minimal-pruning pass (Alg. 7, BUR+).
//
// The process: scan start vertices in order; as long as a constrained cycle
// through the current start vertex exists, increment the hit counter H of
// every vertex on the found cycle, move the cycle vertex with the largest H
// into the cover (FindCoverNode, Alg. 6), and delete its edges. H
// accumulates across the whole run, implementing the paper's "vertices hit
// often before are likely to cover more cycles" heuristic.
func bottomUp(g digraph.Adjacency, opts Options, minimal bool, rs *runScratch) *Result {
	start := time.Now()
	stop := opts.stop()
	algo := BUR
	if minimal {
		algo = BURPlus
	}
	r := &Result{}
	n := g.NumVertices()
	candidates := cycleCandidates(g, opts, &r.Stats)

	view, active := rs.workingGraph(g, opts, true)
	var det *cycle.PlainDetector
	if view != nil {
		det = cycle.NewPlainDetectorView(view, opts.K, opts.MinLen, rs.cyc)
	} else {
		det = cycle.NewPlainDetectorWith(g, opts.K, opts.MinLen, rs.active.Raw(), rs.cyc)
	}
	det.Cancelled = stop // aborts even mid-search (worst case O(n^k))
	h := rs.hitCounters(n)

	var coverOrder []VID // insertion order, needed by the minimal pass
	for _, s := range vertexOrderBuf(g, opts, rs.ids) {
		if stop != nil && stop() {
			r.Stats.TimedOut = true
			break
		}
		if candidates != nil && !candidates[s] {
			continue
		}
		r.Stats.Checked++
		for c := det.FindFrom(s); c != nil; c = det.FindFrom(s) {
			r.Stats.CyclesHit++
			for _, v := range c {
				h[v]++
			}
			u := findCoverNode(h, c)
			coverOrder = append(coverOrder, u)
			active.Deactivate(u) // removes all in- and out-edges of u
			if stop != nil && stop() {
				r.Stats.TimedOut = true
				break
			}
		}
		if det.WasAborted() {
			r.Stats.TimedOut = true
		}
		if r.Stats.TimedOut {
			break
		}
	}

	if minimal && !r.Stats.TimedOut {
		// With weights, try shedding the most expensive vertices first.
		coverOrder = minimalPass(det, active, pruneOrder(coverOrder, opts), &r.Stats, stop)
	}
	r.Cover = coverOrder
	r.Stats.Detector = det.Stats
	finishStats(r, g, algo, opts, start)
	return r
}

// findCoverNode picks the cycle vertex with the maximum hit count; ties go
// to the earliest vertex on the cycle (Alg. 6 starts with c[0]).
func findCoverNode(h []int64, c []VID) VID {
	best := c[0]
	for _, v := range c[1:] {
		if h[v] > h[best] {
			best = v
		}
	}
	return best
}

// minimalPass implements Alg. 7: for each cover vertex v (in insertion
// order), restore v into the reduced graph; if no constrained cycle passes
// through v there, v is redundant and is removed from the cover for good
// (staying restored). Otherwise v is deactivated again. The surviving set is
// a minimal cover (paper Theorem 4).
func minimalPass(det *cycle.PlainDetector, active working, cover []VID, st *Stats, stop func() bool) []VID {
	kept := cover[:0]
	for _, v := range cover {
		if stop != nil && stop() {
			st.TimedOut = true
			// Keep v and the rest: a partial prune is still a valid cover.
			kept = append(kept, v)
			continue
		}
		active.Activate(v)
		if det.HasCycleThrough(v) || det.WasAborted() {
			// Keeping a vertex is always safe; an aborted (inconclusive)
			// check therefore keeps it and flags the timeout.
			if det.WasAborted() {
				st.TimedOut = true
			}
			active.Deactivate(v)
			kept = append(kept, v)
		} else {
			st.PruneRemoved++
		}
	}
	return kept
}
