package core

import (
	"context"
	"fmt"
	"runtime"

	"tdb/internal/digraph"
	"tdb/internal/scc"
)

// This file is the planning layer of the unified solve surface: one entry
// point (Solve / Engine.Solve) accepts the full option set plus a worker
// budget, inspects the graph's SCC condensation, and picks the execution
// strategy — the decision the five legacy entry points used to push onto
// the caller. The rules mirror where each strategy actually wins:
//
//   - the cyclic part splits into several non-trivial SCCs -> the
//     SCC-partitioned parallel solver (parallel.go) covers them
//     concurrently;
//   - one giant SCC, more than one worker, and the TDB++ algorithm -> the
//     intra-SCC BFS-filter prepass (prepass.go);
//   - otherwise (one worker, non-TDB++ algorithm, or an acyclic graph) ->
//     the paper's sequential loop.
//
// A pinned Strategy bypasses the inspection entirely, and the chosen plan
// is recorded in Stats so callers can see which path served them.

// Strategy identifies the execution strategy of a solve.
type Strategy int

const (
	// StrategyAuto lets the planner choose from the graph's SCC structure
	// and the worker budget.
	StrategyAuto Strategy = iota
	// StrategySequential runs the paper's single-threaded cover loop.
	StrategySequential
	// StrategyParallelSCC decomposes the graph into strongly connected
	// components and covers them concurrently (ComputeParallel).
	StrategyParallelSCC
	// StrategyPrepass runs TDB++ with the parallel BFS-filter prepass in
	// front of the sequential loop (Options.PrepassWorkers).
	StrategyPrepass
)

var strategyNames = map[Strategy]string{
	StrategyAuto:        "auto",
	StrategySequential:  "sequential",
	StrategyParallelSCC: "scc-parallel",
	StrategyPrepass:     "prepass",
}

// String returns the strategy's name as recorded in Stats.Strategy.
func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy resolves a strategy name ("auto", "sequential",
// "scc-parallel", "prepass").
func ParseStrategy(s string) (Strategy, error) {
	for st, name := range strategyNames {
		if s == name {
			return st, nil
		}
	}
	return 0, fmt.Errorf("core: unknown strategy %q (want auto, sequential, scc-parallel or prepass)", s)
}

// SolveSpec is the full request a unified solve executes: the algorithm and
// options of a legacy Compute call plus the strategy-selection inputs.
type SolveSpec struct {
	// Algorithm selects the cover algorithm (default BUR, the zero value;
	// callers normally set TDBPlusPlus).
	Algorithm Algorithm
	// Opts carries the computation options. Opts.PrepassWorkers != 0 pins
	// the prepass strategy with exactly that worker count.
	Opts Options
	// Workers is the worker budget for strategy selection and parallel
	// execution; <= 0 selects GOMAXPROCS.
	Workers int
	// Strategy pins the execution strategy; StrategyAuto (the zero value)
	// lets the planner choose.
	Strategy Strategy
	// NoAutoPrepass stops the planner from selecting StrategyPrepass on its
	// own (set when the caller explicitly disabled the prepass). Pinned
	// strategies are unaffected.
	NoAutoPrepass bool
}

// Plan is the executable outcome of strategy selection.
type Plan struct {
	// Strategy is the selected execution strategy (never StrategyAuto).
	Strategy Strategy
	// Workers is the effective worker count the strategy runs with
	// (1 for sequential plans).
	Workers int
	// Pinned reports that the caller fixed the strategy rather than the
	// planner choosing it.
	Pinned bool
}

// countNontrivial returns the number of strongly connected components with
// at least two vertices — the components that can hold cycles. The
// condensation "splits" (making SCC-partitioned parallelism worthwhile)
// when there are at least two.
func countNontrivial(comps *scc.Result) int {
	nontrivial := 0
	for _, size := range comps.Size {
		if size >= 2 {
			nontrivial++
		}
	}
	return nontrivial
}

// minAutoPrepassVertices is the smallest graph the auto-planner selects
// the prepass for: below two worker chunks the atomic chunk claiming
// degenerates to one worker doing everything — the single-effective-worker
// regime that is slower than the plain sequential loop (DESIGN.md §6). An
// explicit pin is still honored.
const minAutoPrepassVertices = 2 * prepassChunk

// planFor selects the execution plan for a spec over a graph with n
// vertices. nontrivial lazily counts the non-trivial SCCs (an O(n+m)
// inspection); it is only invoked when the decision actually depends on
// the condensation, and engines cache it across calls.
//
// Stats must record what actually runs, so degenerate prepass requests are
// demoted to the sequential plan here rather than silently skipped later:
// the prepass exists only for TDBPlusPlus, and at one effective worker it
// is strictly slower than the loop it fronts (DESIGN.md §6).
func planFor(spec SolveSpec, n int, nontrivial func() int) Plan {
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if spec.Strategy != StrategyAuto {
		s := spec.Strategy
		if s == StrategyPrepass {
			// An explicit prepass worker count overrides the general
			// budget — it is the more specific request.
			if w := spec.Opts.PrepassWorkers; w != 0 {
				if w < 0 {
					w = runtime.GOMAXPROCS(0)
				}
				workers = w
			}
			if spec.Algorithm != TDBPlusPlus || workers <= 1 {
				s = StrategySequential
			}
		}
		p := Plan{Strategy: s, Workers: workers, Pinned: true}
		if s == StrategySequential {
			p.Workers = 1
		}
		return p
	}
	if spec.Opts.PrepassWorkers != 0 && spec.Algorithm == TDBPlusPlus {
		// An explicit prepass worker count is a pin: the caller asked for
		// the prepass configuration, not for strategy selection. (For any
		// other algorithm the field has no meaning and planning proceeds.)
		w := spec.Opts.PrepassWorkers
		if w < 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w <= 1 {
			return Plan{Strategy: StrategySequential, Workers: 1, Pinned: true}
		}
		return Plan{Strategy: StrategyPrepass, Workers: w, Pinned: true}
	}
	if workers <= 1 {
		return Plan{Strategy: StrategySequential, Workers: 1}
	}
	switch nc := nontrivial(); {
	case nc >= 2:
		return Plan{Strategy: StrategyParallelSCC, Workers: workers}
	case nc == 1 && spec.Algorithm == TDBPlusPlus && !spec.NoAutoPrepass &&
		n >= minAutoPrepassVertices:
		return Plan{Strategy: StrategyPrepass, Workers: workers}
	default:
		return Plan{Strategy: StrategySequential, Workers: 1}
	}
}

// Solve plans and runs a cover computation one-shot. For repeated solves
// over one graph use Engine.Solve, which additionally caches the
// condensation inspection.
func Solve(g digraph.Adjacency, spec SolveSpec) (*Result, error) {
	var comps *scc.Result // planner's decomposition, reused by the executor
	plan := planFor(spec, g.NumVertices(), func() int {
		comps = scc.Compute(g)
		return countNontrivial(comps)
	})
	return runPlan(nil, g, spec, plan, comps)
}

// Solve is the engine counterpart of the package-level Solve: the same
// planning step, but sequential and prepass plans run on the engine's
// pooled scratch, and the condensation is computed once per engine. ctx
// supersedes spec.Opts.Context when non-nil.
func (e *Engine) Solve(ctx context.Context, spec SolveSpec) (*Result, error) {
	if ctx != nil {
		spec.Opts.Context = ctx
	}
	plan := planFor(spec, e.g.NumVertices(), e.nontrivialSCCs)
	var comps *scc.Result
	if plan.Strategy == StrategyParallelSCC {
		comps = e.condensation()
	}
	return runPlan(e, e.g, spec, plan, comps)
}

// runPlan executes a planned solve on the one-shot path (e == nil) or the
// engine path, and stamps the plan into the result's statistics. comps,
// when non-nil, is the planner's SCC decomposition, handed to the
// partitioned solver so it is not recomputed.
func runPlan(e *Engine, g digraph.Adjacency, spec SolveSpec, plan Plan, comps *scc.Result) (*Result, error) {
	opts := spec.Opts
	var (
		r   *Result
		err error
	)
	switch plan.Strategy {
	case StrategyParallelSCC:
		r, err = computeParallelWith(g, spec.Algorithm, opts, plan.Workers, comps)
	case StrategyPrepass:
		// plan.Workers is the reconciled prepass worker count (>= 2 by
		// construction in planFor), so the topDown gate never silently
		// skips a prepass the plan promised.
		opts.PrepassWorkers = plan.Workers
		fallthrough
	default: // StrategySequential and the prepass fallthrough
		if plan.Strategy == StrategySequential {
			// A sequential plan means sequential: a leftover prepass request
			// (e.g. pinned sequential combined with WithPrepassWorkers) must
			// not spawn workers behind the recorded plan.
			opts.PrepassWorkers = 0
		}
		if e != nil {
			r, err = e.Compute(nil, spec.Algorithm, opts)
		} else {
			r, err = Compute(g, spec.Algorithm, opts)
		}
	}
	if err != nil {
		return nil, err
	}
	r.Stats.Strategy = plan.Strategy.String()
	r.Stats.StrategyPinned = plan.Pinned
	r.Stats.Workers = plan.Workers
	return r, nil
}
