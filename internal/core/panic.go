package core

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered from a solver worker goroutine, carrying
// the original panic value and the panicking goroutine's stack. Before this
// isolation a worker panic either took the whole process down or, worse,
// left sibling workers blocked on the merge; now the pool cancels its
// siblings, drains, and surfaces the failure as an ordinary error the
// caller (e.g. a serving layer) can contain per-request.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at the recovery
	// point inside the worker.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: worker panicked: %v\n%s", e.Value, e.Stack)
}

// panicTrap collects the first panic of a worker pool and tells the
// siblings to stand down. Zero value is ready.
type panicTrap struct {
	aborted atomic.Bool
	mu      sync.Mutex
	err     *PanicError
}

// capture records a recovered panic value (the first wins) and aborts the
// pool. The caller has already recover()ed; the stack is captured here, so
// call it directly from the deferred recovery to keep the panic frames.
func (t *panicTrap) capture(p any) {
	t.mu.Lock()
	if t.err == nil {
		t.err = &PanicError{Value: p, Stack: debug.Stack()}
	}
	t.mu.Unlock()
	t.aborted.Store(true)
}

// tripped reports whether a worker panicked; sibling workers poll it to
// drain instead of starting new work.
func (t *panicTrap) tripped() bool { return t.aborted.Load() }

// Err returns the first captured panic as an error, or nil.
func (t *panicTrap) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		return nil
	}
	return t.err
}
