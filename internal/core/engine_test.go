package core

import (
	"context"
	"slices"
	"testing"

	"tdb/internal/gen"
	"tdb/internal/verify"
)

// TestEngineMatchesCompute: the pooled-scratch engine must return the same
// cover as the one-shot path, for every algorithm, across repeated runs
// (the second and later runs exercise recycled scratch).
func TestEngineMatchesCompute(t *testing.T) {
	gr := randomGraph(150, 450, 21)
	e := NewEngine(gr)
	for _, a := range allAlgorithms() {
		opts := Options{K: 5}
		want, err := Compute(gr, a, opts)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		for round := 0; round < 3; round++ {
			got, err := e.Compute(context.Background(), a, opts)
			if err != nil {
				t.Fatalf("%v round %d: %v", a, round, err)
			}
			if !slices.Equal(got.Cover, want.Cover) {
				t.Fatalf("%v round %d: engine cover %v != compute cover %v", a, round, got.Cover, want.Cover)
			}
		}
	}
}

// TestEngineAllocsSteadyState: after warm-up, an engine cover must allocate
// far less than the one-shot path — the point of the pooled scratch arena.
func TestEngineAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		// The race runtime randomizes sync.Pool caching (Get may drop the
		// pooled scratch on purpose), so the engine-vs-one-shot allocation
		// gap this test asserts does not exist under -race.
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	gr := gen.SmallWorld(2000, 2, 0.2, 7)
	e := NewEngine(gr)
	run := func() {
		if _, err := e.Compute(nil, TDBPlusPlus, Options{K: 5}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pool
	engineAllocs := testing.AllocsPerRun(5, run)
	oneShotAllocs := testing.AllocsPerRun(5, func() {
		if _, err := Compute(gr, TDBPlusPlus, Options{K: 5}); err != nil {
			t.Fatal(err)
		}
	})
	// The one-shot path allocates the mask, order buffer, and all detector
	// tables every run; the engine only the result. Require a decisive gap
	// rather than exact counts to stay robust to runtime changes.
	if engineAllocs >= oneShotAllocs {
		t.Fatalf("engine allocs/run = %.0f, want below one-shot %.0f", engineAllocs, oneShotAllocs)
	}
}

// TestCancellationContext: a pre-cancelled context must stop every
// algorithm family and mark the result TimedOut.
func TestCancellationContext(t *testing.T) {
	gr := gen.SmallWorld(300, 2, 0.3, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, a := range allAlgorithms() {
		r, err := Compute(gr, a, Options{K: 5, Context: ctx})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !r.Stats.TimedOut {
			t.Fatalf("%v: cancelled context did not mark TimedOut", a)
		}
	}
	// The edge-transversal variant takes the same options.
	er, err := TopDownEdges(gr, Options{K: 5, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !er.Stats.TimedOut {
		t.Fatal("TopDownEdges: cancelled context did not mark TimedOut")
	}
	// And the SCC-partitioned parallel solver.
	pr, err := ComputeParallel(gr, TDBPlusPlus, Options{K: 5, Context: ctx}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Stats.TimedOut {
		t.Fatal("ComputeParallel: cancelled context did not mark TimedOut")
	}
}

// TestCancellationDeprecatedShim: the legacy Options.Cancelled hook must
// keep stopping runs, alone and combined with a live context.
func TestCancellationDeprecatedShim(t *testing.T) {
	gr := gen.SmallWorld(300, 2, 0.3, 13)
	for _, a := range allAlgorithms() {
		r, err := Compute(gr, a, Options{K: 5, Cancelled: func() bool { return true }})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !r.Stats.TimedOut {
			t.Fatalf("%v: Cancelled hook did not mark TimedOut", a)
		}
	}
	// Both paths set: the hook fires even though the context is live.
	r, err := Compute(gr, TDBPlusPlus, Options{
		K:         5,
		Context:   context.Background(),
		Cancelled: func() bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.TimedOut {
		t.Fatal("live context suppressed the deprecated Cancelled hook")
	}
}

// TestComputeParallelWeighted: per-component runs must remap the cost
// vector to subgraph IDs (regression: forwarding the full-length Weights
// slice used to fail validation on every component smaller than n).
func TestComputeParallelWeighted(t *testing.T) {
	// Two disjoint triangles; expensive vertices 0 and 3 must stay out.
	gr := g(6, 0, 1, 1, 2, 2, 0, 3, 4, 4, 5, 5, 3)
	w := []float64{100, 1, 1, 100, 1, 1}
	r, err := ComputeParallel(gr, TDBPlusPlus, Options{K: 5, Order: OrderWeighted, Weights: w}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cover) != 2 {
		t.Fatalf("cover %v, want one vertex per triangle", r.Cover)
	}
	for _, v := range r.Cover {
		if v == 0 || v == 3 {
			t.Fatalf("cover %v contains an expensive vertex", r.Cover)
		}
	}
}

// TestComputeParallelTimeoutCoverStillValid: a timed-out parallel run must
// keep unprocessed components in the cover (the sequential loop's safe
// side), so the partial result still intersects every constrained cycle.
func TestComputeParallelTimeoutCoverStillValid(t *testing.T) {
	gr := gen.PlantedCycles(400, 30, 3, 5, 600, 3).Graph
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := ComputeParallel(gr, TDBPlusPlus, Options{K: 5, Context: ctx}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.TimedOut {
		t.Fatal("cancelled run did not mark TimedOut")
	}
	if ok, witness := verify.IsValid(gr, 5, 3, r.Cover); !ok {
		t.Fatalf("timed-out parallel cover leaves cycle %v uncovered", witness)
	}
}

// TestCancellationPrepass: cancellation observed during the prepass leaves
// a sound (TimedOut-marked) partial result rather than hanging workers.
func TestCancellationPrepass(t *testing.T) {
	gr := gen.SmallWorld(500, 2, 0.3, 17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := Compute(gr, TDBPlusPlus, Options{K: 5, PrepassWorkers: 4, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.TimedOut {
		t.Fatal("cancelled prepass run did not mark TimedOut")
	}
}
