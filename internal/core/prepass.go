package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
	"tdb/internal/fault"
)

// This file implements the parallel BFS-filter prepass for TDB++, the first
// intra-SCC parallelization in the repository: the SCC-partitioned solver
// (parallel.go) gains nothing on a graph that is one giant strongly
// connected component, while the prepass parallelizes inside it.
//
// Soundness rests on subgraph inheritance: the BFS-filter (Alg. 11) proves
// "no constrained cycle through v" on whatever graph it runs on, and the
// property survives taking subgraphs — removing vertices only destroys
// cycles. When the sequential loop reaches candidate v, its working graph
// G0+v holds the candidates ordered before v MINUS the cover collected so
// far. The prepass queries v on its PREFIX graph — all candidates ordered
// before v, cover vertices conservatively included — which is a superset
// of G0+v, so a prefix-graph prune can never turn out wrong in the loop. (The full graph G would be sound by
// the same lemma, but strictly wasteful: each of its queries costs as much
// as the LAST loop query, roughly twice the average prefix query, which
// would make the single-worker prepass slower than the plain sequential
// loop it replaces.)
//
// Queries run bit-parallel: each worker packs up to cycle.MaxBatchWidth
// consecutive candidates into one lane group and answers them with a
// single level-synchronous sweep (cycle.BatchPrefixFilter), each lane
// confined to its own source's prefix, so the resolution mask is
// bit-identical to per-vertex scalar queries — the in-loop filter, running
// on the even smaller G0+v, would have pruned every prepass-pruned vertex
// too, and TDB++ with the prepass returns the identical cover, only
// redistributing (and parallelizing) filter work. Workers claim position
// chunks from an atomic counter; prefix membership is a read-only shared
// position array, so a worker's whole private state is one detector
// Scratch — no locks and no O(n) setup on the query path. Wall-clock
// speedup therefore tracks GOMAXPROCS; with a single CPU the pass degrades
// gracefully to the sequential filter cost.

// prepassChunk is the number of order positions a worker claims per atomic
// increment: large enough to amortize the atomic (and to fill one
// MaxBatchWidth lane group per claim), small enough to balance the
// position-dependent query costs.
const prepassChunk = 512

// prunedGroup queries one lane group of candidates (ascending position
// order) and marks the pruned lanes in resolved, returning how many it
// marked.
func prunedGroup(f *cycle.BatchPrefixFilter, batch []VID, prunedBuf []bool, resolved []bool) int64 {
	f.CanPruneBatch(batch, prunedBuf)
	var pruned int64
	for i, v := range batch {
		if prunedBuf[i] {
			resolved[v] = true
			pruned++
		}
	}
	return pruned
}

// prepass runs the prefix-graph BFS filter over all candidates with
// opts.PrepassWorkers workers (<0 selects GOMAXPROCS) and returns the
// resolution mask: resolved[v] reports that v provably lies on no
// constrained cycle of any graph the sequential loop can query it on.
// order is the exact candidate order the loop will use; candidates
// (optional) skips vertices the SCC prefilter already exempted. stop
// aborts the pass early; an aborted pass is still sound (resolved is only
// ever set on proof).
//
// A panic in one worker no longer takes the process down: the worker
// recovers, its siblings drain, its borrowed scratch is quarantined (never
// returned to the pool), and the pass reports a PanicError carrying the
// original stack.
func prepass(g digraph.Adjacency, opts Options, order []VID, candidates []bool, stop func() bool, st *Stats, rs *runScratch) ([]bool, error) {
	workers := opts.PrepassWorkers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	resolved := rs.resolvedBuf(n)
	pos := rs.posBuf(n)
	for i, v := range order {
		pos[v] = int32(i)
	}

	// The run's persistent WidthLadder (see cycle.WidthLadder and
	// runScratch.widthLadders) adapts group widths — but only on the
	// single-worker path. With workers oversubscribing the CPUs, a group's
	// wall time mostly measures how often the scheduler preempted its
	// goroutine, and verdicts from that noise are coin flips; parallel
	// passes therefore run untimed at the ladder's committed width, and
	// single-worker traffic (or the in-loop ladder) supplies the evidence.
	_, ladder := rs.widthLadders(opts.K, n)
	ladder.NewStream()
	nextWidth := func() (int, bool) { return ladder.Next(), ladder.Adapting() }
	observe := func(w int, d time.Duration, cands int) { ladder.Observe(w, d, cands) }
	if workers > 1 {
		w := ladder.Width()
		nextWidth = func() (int, bool) { return w, false }
		observe = nil
	}

	// scan resolves order positions [lo, hi) on one worker's filter, one
	// lane group at a time; scanning by position yields the ascending order
	// the per-lane prefixes require. Group widths follow the ladder: timed
	// full groups at the committed width race groups at a neighboring one,
	// and the sweep changes width only on a measured win, so the chunk size
	// caps the width without dictating it.
	scan := func(f *cycle.BatchPrefixFilter, lo, hi int) int64 {
		var pruned int64
		var batchBuf [cycle.MaxBatchWidth]VID
		var prunedBuf [cycle.MaxBatchWidth]bool
		width, adapting := nextWidth()
		nb := 0
		flush := func() {
			if adapting {
				t0 := time.Now()
				pruned += prunedGroup(f, batchBuf[:nb], prunedBuf[:nb], resolved)
				observe(width, time.Since(t0), nb)
			} else {
				pruned += prunedGroup(f, batchBuf[:nb], prunedBuf[:nb], resolved)
			}
			nb = 0
			width, adapting = nextWidth()
		}
		for p := lo; p < hi; p++ {
			v := order[p]
			if candidates != nil && !candidates[v] {
				continue
			}
			batchBuf[nb] = v
			nb++
			if nb == width {
				flush()
			}
		}
		if nb > 0 {
			flush()
		}
		return pruned
	}

	if workers <= 1 {
		// Single worker runs inline on the run's own scratch: no
		// goroutines, no atomics — the cost is the filter queries the
		// sequential loop is about to skip. A panic here propagates on the
		// calling goroutine as any sequential panic would.
		f := cycle.NewBatchPrefixFilterWith(g, opts.K, pos, rs.cyc)
		f.SetLanes(prepassChunk) // cap: one claim chunk fills one widest group
		var pruned int64
		for lo := 0; lo < n; lo += prepassChunk {
			if stop != nil && stop() {
				break
			}
			pruned += scan(f, lo, min(lo+prepassChunk, n))
		}
		st.PrepassResolved += pruned
		st.Detector.Add(f.Stats)
		return resolved, nil
	}

	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		trap panicTrap
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc *cycle.Scratch
			if rs.cycPool != nil {
				sc = rs.cycPool.Get()
			}
			defer func() {
				if p := recover(); p != nil {
					// Record the panic and stand the siblings down. sc is
					// deliberately NOT returned: a scratch abandoned
					// mid-traversal may hold poisoned marks, and a pooled
					// poisoned scratch would corrupt a later, unrelated run.
					trap.capture(p)
				} else if sc != nil {
					rs.cycPool.Put(sc)
				}
			}()
			f := cycle.NewBatchPrefixFilterWith(g, opts.K, pos, sc)
			f.SetLanes(prepassChunk) // cap: one claim chunk fills one widest group
			var pruned int64
			for {
				lo := int(next.Add(prepassChunk)) - prepassChunk
				if lo >= n || trap.tripped() || (stop != nil && stop()) {
					break
				}
				fault.Inject(fault.SiteCorePrepassWorker)
				pruned += scan(f, lo, min(lo+prepassChunk, n))
			}
			mu.Lock()
			st.PrepassResolved += pruned
			st.Detector.Add(f.Stats)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if err := trap.Err(); err != nil {
		return nil, err
	}
	return resolved, nil
}
