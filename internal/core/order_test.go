package core

import (
	"testing"
	"testing/quick"

	"tdb/internal/digraph"
	"tdb/internal/verify"
)

func TestVertexOrderNatural(t *testing.T) {
	gr := g(4, 0, 1, 1, 2)
	ids := vertexOrder(gr, Options{Order: OrderNatural, Seed: 0})
	for i, v := range ids {
		if int(v) != i {
			t.Fatalf("natural order broken at %d: %v", i, ids)
		}
	}
}

func TestVertexOrderDegree(t *testing.T) {
	// Degrees (in+out): 0 -> 3; 1, 2, 3 -> 1 each.
	gr := g(4, 0, 1, 0, 2, 3, 0)
	asc := vertexOrder(gr, Options{Order: OrderDegreeAsc, Seed: 0})
	// Ties keep ID order (stable sort), the hub comes last.
	if asc[0] != 1 || asc[1] != 2 || asc[2] != 3 || asc[3] != 0 {
		t.Fatalf("degree-asc = %v", asc)
	}
	desc := vertexOrder(gr, Options{Order: OrderDegreeDesc, Seed: 0})
	if desc[0] != 0 || desc[len(desc)-1] != 3 {
		t.Fatalf("degree-desc = %v", desc)
	}
}

func TestVertexOrderRandomIsPermutation(t *testing.T) {
	gr := g(50, 0, 1)
	ids := vertexOrder(gr, Options{Order: OrderRandom, Seed: 42})
	seen := make([]bool, 50)
	for _, v := range ids {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	// Deterministic per seed, different across seeds.
	again := vertexOrder(gr, Options{Order: OrderRandom, Seed: 42})
	other := vertexOrder(gr, Options{Order: OrderRandom, Seed: 43})
	same, diff := true, false
	for i := range ids {
		if again[i] != ids[i] {
			same = false
		}
		if other[i] != ids[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed must give same order")
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestVertexOrderUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	vertexOrder(g(2, 0, 1), Options{Order: Order(77)})
}

// Property-based: for arbitrary byte-derived graphs, TDB++ returns a valid,
// minimal cover and never includes a vertex outside a non-trivial SCC.
func TestQuickTDBPlusPlusInvariants(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		n := 12
		b := digraph.NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(VID(raw[i]%uint8(n)), VID(raw[i+1]%uint8(n)))
		}
		gr := b.Build()
		k := 3 + int(kRaw%5)
		r, err := Compute(gr, TDBPlusPlus, Options{K: k})
		if err != nil {
			return false
		}
		if ok, _ := verify.IsValid(gr, k, 3, r.Cover); !ok {
			return false
		}
		if ok, _ := verify.IsMinimal(gr, k, 3, r.Cover); !ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: BUR+ covers are subsets of BUR covers for the same input.
func TestQuickBURPlusSubsetOfBUR(t *testing.T) {
	f := func(raw []uint8) bool {
		n := 10
		b := digraph.NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(VID(raw[i]%uint8(n)), VID(raw[i+1]%uint8(n)))
		}
		gr := b.Build()
		bur, err1 := Compute(gr, BUR, Options{K: 5})
		burP, err2 := Compute(gr, BURPlus, Options{K: 5})
		if err1 != nil || err2 != nil {
			return false
		}
		inBUR := bur.CoverSet(n)
		for _, v := range burP.Cover {
			if !inBUR[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
