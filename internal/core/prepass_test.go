package core

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"

	"tdb/internal/digraph"
	"tdb/internal/gen"
	"tdb/internal/verify"
)

// randomGraph builds a random digraph with n vertices and ~m edges.
func randomGraph(n, m int, seed uint64) *digraph.Graph {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	b := digraph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := VID(rng.IntN(n))
		v := VID(rng.IntN(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// TestPrepassPropertyRandom is the property test for the parallel BFS-filter
// prepass: on random graphs, across k and worker counts, TDB++ with the
// prepass must produce a cover that verifies valid AND minimal — and, since
// the prepass only pre-resolves candidates whose in-loop check would reach
// the same decision, the cover must equal the sequential TDB++ cover
// vertex-for-vertex.
func TestPrepassPropertyRandom(t *testing.T) {
	graphs := []struct {
		name string
		g    *digraph.Graph
	}{
		{"sparse-200", randomGraph(200, 400, 1)},
		{"dense-80", randomGraph(80, 640, 2)},
		{"sparse-500", randomGraph(500, 900, 3)},
		{"smallworld-300", gen.SmallWorld(300, 2, 0.3, 4)},
		{"powerlaw-250", gen.PowerLaw(250, 1000, 2.0, 0.2, 5)},
	}
	for _, tc := range graphs {
		for _, k := range []int{3, 5, 8} {
			seq, err := Compute(tc.g, TDBPlusPlus, Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/k=%d/workers=%d", tc.name, k, workers), func(t *testing.T) {
					r, err := Compute(tc.g, TDBPlusPlus, Options{K: k, PrepassWorkers: workers})
					if err != nil {
						t.Fatal(err)
					}
					rep := verify.Check(tc.g, k, 3, r.Cover, true)
					if !rep.Valid {
						t.Fatalf("invalid cover %v: surviving cycle %v", r.Cover, rep.Witness)
					}
					if !rep.Minimal {
						t.Fatalf("non-minimal cover %v: redundant %v", r.Cover, rep.Redundant)
					}
					if !slices.Equal(r.Cover, seq.Cover) {
						t.Fatalf("prepass cover %v differs from sequential %v", r.Cover, seq.Cover)
					}
					if got := r.Stats.PrepassResolved + r.Stats.FilterPruned + r.Stats.Detector.Queries; got == 0 && len(seq.Cover) > 0 {
						t.Fatal("prepass run did no work at all")
					}
				})
			}
		}
	}
}

// TestPrepassThroughEngine exercises the prepass on the pooled-scratch
// engine path, twice, to catch scratch-reuse contamination.
func TestPrepassThroughEngine(t *testing.T) {
	gr := gen.SmallWorld(400, 2, 0.25, 9)
	e := NewEngine(gr)
	seq, err := Compute(gr, TDBPlusPlus, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		r, err := e.Compute(nil, TDBPlusPlus, Options{K: 5, PrepassWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(r.Cover, seq.Cover) {
			t.Fatalf("round %d: engine prepass cover %v != sequential %v", round, r.Cover, seq.Cover)
		}
	}
}

// TestPrepassStatsAccounting: the prepass actually resolves candidates on a
// sparse random graph, every vertex is still counted as checked, and
// resolved candidates never exceed the candidate pool.
func TestPrepassStatsAccounting(t *testing.T) {
	gr := randomGraph(300, 700, 11)
	r, err := Compute(gr, TDBPlusPlus, Options{K: 5, PrepassWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.PrepassResolved == 0 {
		t.Fatal("expected the prepass to resolve at least one candidate on a sparse random graph")
	}
	if r.Stats.Checked != int64(gr.NumVertices()) {
		t.Fatalf("checked %d candidates, want all %d", r.Stats.Checked, gr.NumVertices())
	}
	if r.Stats.PrepassResolved+r.Stats.FilterPruned > r.Stats.Checked {
		t.Fatalf("resolved %d + filter-pruned %d exceed checked %d",
			r.Stats.PrepassResolved, r.Stats.FilterPruned, r.Stats.Checked)
	}
}
