//go:build race

package core

// raceEnabled reports that this test binary was built with the race
// detector, which randomizes sync.Pool caching and instruments
// allocations — both invalidate allocation-count assertions.
const raceEnabled = true
