package core

import (
	"math/rand/v2"
	"testing"

	"tdb/internal/digraph"
	"tdb/internal/verify"
)

func coverWeight(cover []VID, w []float64) float64 {
	var sum float64
	for _, v := range cover {
		sum += w[v]
	}
	return sum
}

func TestWeightedOrderSortsDescending(t *testing.T) {
	gr := g(4, 0, 1, 1, 2)
	ids := vertexOrder(gr, Options{Order: OrderWeighted, Weights: []float64{1, 9, 3, 9}})
	// 9s first (ties by ID), then 3, then 1.
	want := []VID{1, 3, 2, 0}
	for i, v := range want {
		if ids[i] != v {
			t.Fatalf("weighted order = %v, want %v", ids, want)
		}
	}
}

func TestWeightedValidation(t *testing.T) {
	gr := g(3, 0, 1, 1, 2, 2, 0)
	if _, err := Compute(gr, TDBPlusPlus, Options{K: 5, Order: OrderWeighted}); err == nil {
		t.Fatal("OrderWeighted without Weights must error")
	}
	if _, err := Compute(gr, TDBPlusPlus, Options{K: 5, Weights: []float64{1}}); err == nil {
		t.Fatal("wrong Weights length must error")
	}
}

// On a triangle with one expensive vertex, the weighted top-down cover must
// avoid the expensive vertex.
func TestWeightedAvoidsExpensiveVertex(t *testing.T) {
	gr := g(3, 0, 1, 1, 2, 2, 0)
	w := []float64{100, 1, 1}
	r, err := Compute(gr, TDBPlusPlus, Options{K: 5, Order: OrderWeighted, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cover) != 1 || r.Cover[0] == 0 {
		t.Fatalf("cover %v should avoid expensive vertex 0", r.Cover)
	}
}

// Weighted runs stay valid and minimal, and on average cost no more than
// natural-order runs.
func TestWeightedCoversValidAndCheaper(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 88))
	var naturalCost, weightedCost float64
	for iter := 0; iter < 30; iter++ {
		n := 6 + rng.IntN(20)
		b := digraph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		gr := b.Build()
		w := make([]float64, n)
		for i := range w {
			w[i] = 1 + 99*rng.Float64()
		}
		for _, algo := range []Algorithm{TDBPlusPlus, BURPlus} {
			nat, err := Compute(gr, algo, Options{K: 5})
			if err != nil {
				t.Fatal(err)
			}
			wtd, err := Compute(gr, algo, Options{K: 5, Order: OrderWeighted, Weights: w})
			if err != nil {
				t.Fatal(err)
			}
			if ok, witness := verify.IsValid(gr, 5, 3, wtd.Cover); !ok {
				t.Fatalf("iter %d %v: weighted cover invalid, witness %v", iter, algo, witness)
			}
			if ok, red := verify.IsMinimal(gr, 5, 3, wtd.Cover); !ok {
				t.Fatalf("iter %d %v: weighted cover not minimal: %v", iter, algo, red)
			}
			if algo == TDBPlusPlus {
				naturalCost += coverWeight(nat.Cover, w)
				weightedCost += coverWeight(wtd.Cover, w)
			}
		}
	}
	if weightedCost >= naturalCost {
		t.Fatalf("weighted heuristic did not help: weighted=%.1f natural=%.1f",
			weightedCost, naturalCost)
	}
}

// The weighted minimal pass of BUR+ sheds expensive vertices first: cover
// cost never exceeds that of the unweighted prune on the same BUR cover.
func TestWeightedPruneOrder(t *testing.T) {
	cover := []VID{2, 0, 1}
	out := pruneOrder(cover, Options{Weights: []float64{5, 9, 5}})
	// 1 (weight 9) first, then 0 and 2 (ties by ID).
	want := []VID{1, 0, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("pruneOrder = %v, want %v", out, want)
		}
	}
	// Without weights the order is untouched (and the same slice).
	same := pruneOrder(cover, Options{})
	for i := range cover {
		if same[i] != cover[i] {
			t.Fatal("unweighted pruneOrder must preserve insertion order")
		}
	}
}
