package core

import (
	"fmt"
	"time"

	"tdb/internal/digraph"
)

// This file applies the paper's top-down process to the EDGE version of the
// problem — Definition 5's k-cycle transversal, the problem DARC natively
// solves: find a small edge set S such that every constrained cycle
// contains an edge of S. The same inversion works: start from an empty
// graph, insert one candidate edge at a time, and keep the edge in the
// transversal exactly when inserting it would close a constrained cycle
// through it. The working graph stays free of constrained cycles, so the
// result is feasible, and every kept edge witnesses a cycle in the final
// reduced graph plus itself, so it is minimal — the argument of Theorem 7
// verbatim. This "TDB-E" variant is an extension over the paper (which
// treats only the vertex version) and is benchmarked against DARC in
// bench_test.go.

// EdgeCoverResult is the outcome of TopDownEdges.
type EdgeCoverResult struct {
	// Edges is the minimal transversal: removing these edges from the
	// graph destroys every cycle of length in [MinLen, K].
	Edges []digraph.Edge
	Stats Stats
}

// TopDownEdges computes a minimal constrained-cycle edge transversal with
// the top-down process. Options are interpreted as for Compute; Order
// orders candidate edges by their tail vertex.
func TopDownEdges(g digraph.Adjacency, opts Options) (*EdgeCoverResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	if opts.PartialOnDeadline {
		// The vertex-side degradation contract (Options.PartialOnDeadline)
		// rests on the top-down VERTEX process keeping every undecided
		// candidate in the cover; the edge transversal's timeout path breaks
		// off mid-vertex without conservatively keeping the remaining edges,
		// so a timed-out edge result is NOT a valid transversal.
		return nil, fmt.Errorf("core: PartialOnDeadline is not supported for the edge transversal")
	}
	start := time.Now()
	stop := opts.stop()
	r := &EdgeCoverResult{}

	d := newEdgeDetector(g, opts.K, opts.MinLen)
	d.cancelled = stop
	// Candidate edges grouped by tail vertex in the configured order.
	for _, u := range vertexOrder(g, opts) {
		base := d.bases[u]
		for i, v := range g.Out(u) {
			if d.aborted || (stop != nil && stop()) {
				r.Stats.TimedOut = true
				break
			}
			r.Stats.Checked++
			id := base + int64(i)
			d.active[id] = true
			if d.cycleThroughEdge(u, v) || d.aborted {
				// Inconclusive checks keep the edge in the transversal
				// (always safe) and the abort flag stops the run above.
				d.active[id] = false
				r.Edges = append(r.Edges, digraph.Edge{U: u, V: v})
			}
		}
		if r.Stats.TimedOut {
			break
		}
	}
	if d.aborted {
		r.Stats.TimedOut = true
	}

	r.Stats.Algorithm = "TDB-E"
	r.Stats.K = opts.K
	r.Stats.MinLen = opts.MinLen
	r.Stats.N = g.NumVertices()
	r.Stats.M = g.NumEdges()
	r.Stats.CoverSize = len(r.Edges)
	r.Stats.Storage = digraph.StorageName(g)
	r.Stats.Duration = time.Since(start)
	return r, nil
}

// edgeDetector answers "does the active edge set contain a constrained
// cycle through edge (u, v)?" — i.e. is there a vertex-simple path
// v -> ... -> u of length in [MinLen-1, K-1] over active edges. A bounded
// BFS over active edges first upper-bounds reachability (if u is not within
// K-1 hops of v, no cycle exists — the analog of the paper's BFS filter);
// only then does the exact DFS run.
type edgeDetector struct {
	g      digraph.Adjacency
	k      int
	minLen int
	bases  []int64
	active []bool

	onPath  []bool
	marked  []VID
	visited []uint32
	epoch   uint32
	queue   []VID
	nextQ   []VID

	// cancellation, polled inside the exponential-worst-case DFS
	cancelled func() bool
	steps     int64
	aborted   bool
}

func newEdgeDetector(g digraph.Adjacency, k, minLen int) *edgeDetector {
	n := g.NumVertices()
	d := &edgeDetector{
		g: g, k: k, minLen: minLen,
		bases:   make([]int64, n+1),
		active:  make([]bool, g.NumEdges()),
		onPath:  make([]bool, n),
		visited: make([]uint32, n),
	}
	for u := 0; u < n; u++ {
		d.bases[u+1] = d.bases[u] + int64(g.OutDegree(VID(u)))
	}
	return d
}

// reachableWithin reports whether target is within maxHops of from over
// active edges (breadth-first, early exit).
func (d *edgeDetector) reachableWithin(from, target VID, maxHops int) bool {
	if maxHops <= 0 {
		return false
	}
	d.epoch++
	if d.epoch == 0 {
		for i := range d.visited {
			d.visited[i] = 0
		}
		d.epoch = 1
	}
	d.visited[from] = d.epoch
	d.queue = append(d.queue[:0], from)
	for hop := 1; hop <= maxHops && len(d.queue) > 0; hop++ {
		d.nextQ = d.nextQ[:0]
		for _, x := range d.queue {
			base := d.bases[x]
			for i, w := range d.g.Out(x) {
				if !d.active[base+int64(i)] || d.visited[w] == d.epoch {
					continue
				}
				if w == target {
					return true
				}
				d.visited[w] = d.epoch
				d.nextQ = append(d.nextQ, w)
			}
		}
		d.queue, d.nextQ = d.nextQ, d.queue
	}
	return false
}

// cycleThroughEdge assumes edge (u, v) is active and checks for a
// constrained cycle through it.
func (d *edgeDetector) cycleThroughEdge(u, v VID) bool {
	if u == v {
		return false
	}
	if !d.reachableWithin(v, u, d.k-1) {
		return false
	}
	d.marked = d.marked[:0]
	d.mark(u)
	d.mark(v)
	found := d.dfs(v, u, 1)
	for _, x := range d.marked {
		d.onPath[x] = false
	}
	return found
}

func (d *edgeDetector) mark(x VID) {
	d.onPath[x] = true
	d.marked = append(d.marked, x)
}

// dfs extends the path (ending at cur, depth edges used including the seed
// edge) toward target over active edges.
func (d *edgeDetector) dfs(cur, target VID, depth int) bool {
	base := d.bases[cur]
	for i, w := range d.g.Out(cur) {
		d.steps++
		if d.steps%4096 == 0 && d.cancelled != nil && d.cancelled() {
			d.aborted = true
			return false
		}
		if d.aborted {
			return false
		}
		if !d.active[base+int64(i)] {
			continue
		}
		if w == target {
			if depth+1 >= d.minLen {
				return true
			}
			continue
		}
		if d.onPath[w] || depth+1 > d.k-1 {
			continue
		}
		d.mark(w)
		if d.dfs(w, target, depth+1) {
			return true
		}
		// onPath[w] stays set until cycleThroughEdge unwinds; clearing it
		// here would be wrong only for the success path, but clearing
		// eagerly also lets other branches reuse w:
		d.onPath[w] = false
	}
	return false
}
