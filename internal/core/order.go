package core

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"tdb/internal/digraph"
)

// orderNames maps the CLI/option-surface names to orders.
var orderNames = map[string]Order{
	"natural":     OrderNatural,
	"degree-asc":  OrderDegreeAsc,
	"degree-desc": OrderDegreeDesc,
	"random":      OrderRandom,
	"weighted":    OrderWeighted,
}

// ParseOrder resolves a candidate-order name ("natural", "degree-asc",
// "degree-desc", "random", "weighted").
func ParseOrder(s string) (Order, error) {
	if o, ok := orderNames[s]; ok {
		return o, nil
	}
	return 0, fmt.Errorf("core: unknown order %q (want natural, degree-asc, degree-desc, random or weighted)", s)
}

// vertexOrder materializes the candidate processing order for the graph.
func vertexOrder(g digraph.Adjacency, opts Options) []VID {
	return vertexOrderBuf(g, opts, nil)
}

// VertexOrder materializes the candidate processing order the given
// options produce on g — the sequence the sequential loop would follow.
// The solve-level renumbering support uses it to compute the order on the
// ORIGINAL graph and replay it, mapped, on the renumbered one (see
// Options.CandidateOrder).
func VertexOrder(g digraph.Adjacency, opts Options) []VID {
	return vertexOrder(g, opts)
}

// vertexOrderBuf is vertexOrder writing into buf when it has the right
// length (a pooled engine buffer), allocating otherwise.
func vertexOrderBuf(g digraph.Adjacency, opts Options, buf []VID) []VID {
	n := g.NumVertices()
	ids := buf
	if len(ids) != n {
		ids = make([]VID, n)
	}
	if opts.CandidateOrder != nil {
		copy(ids, opts.CandidateOrder) // validated: a length-n sequence
		return ids
	}
	for i := range ids {
		ids[i] = VID(i)
	}
	switch opts.Order {
	case OrderNatural:
		// IDs are already ascending.
	case OrderDegreeAsc, OrderDegreeDesc:
		deg := make([]int, n)
		for v := 0; v < n; v++ {
			deg[v] = g.OutDegree(VID(v)) + g.InDegree(VID(v))
		}
		asc := opts.Order == OrderDegreeAsc
		sort.SliceStable(ids, func(i, j int) bool {
			di, dj := deg[ids[i]], deg[ids[j]]
			if di != dj {
				if asc {
					return di < dj
				}
				return di > dj
			}
			return ids[i] < ids[j] // deterministic tie-break
		})
	case OrderRandom:
		rng := rand.New(rand.NewPCG(opts.Seed, opts.Seed^0xda3e39cb94b95bdb))
		rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	case OrderWeighted:
		w := opts.Weights // validated non-nil by Options.validate
		sort.SliceStable(ids, func(i, j int) bool {
			if w[ids[i]] != w[ids[j]] {
				return w[ids[i]] > w[ids[j]] // expensive first
			}
			return ids[i] < ids[j]
		})
	default:
		panic("core: unknown Order")
	}
	return ids
}

// pruneOrder returns the order in which a minimal pass should try to shed
// cover vertices: insertion order normally, most-expensive-first when
// weights are present.
func pruneOrder(cover []VID, opts Options) []VID {
	if opts.Weights == nil {
		return cover
	}
	out := make([]VID, len(cover))
	copy(out, cover)
	w := opts.Weights
	sort.SliceStable(out, func(i, j int) bool {
		if w[out[i]] != w[out[j]] {
			return w[out[i]] > w[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
