// Package core implements the paper's hop-constrained cycle cover
// algorithms: the bottom-up family (BUR, BUR+), the top-down family (TDB,
// TDB+, TDB++), and the DARC / DARC-DV baseline it compares against.
//
// All algorithms produce a set of vertices that intersects every simple
// directed cycle of length in [MinLen, K] of the input graph; BUR+ and the
// whole top-down family additionally guarantee minimality (no cover vertex
// can be dropped). The core cover loops are sequential, as in the paper;
// the SCC-partitioned solver (parallel.go) and the TDB++ BFS-filter
// prepass (prepass.go) parallelize around them without changing covers.
package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"time"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
	"tdb/internal/fault"
	"tdb/internal/scc"
)

// VID aliases digraph.VID.
type VID = digraph.VID

// Algorithm selects a cover algorithm.
type Algorithm int

const (
	// BUR is the bottom-up cover with the hit-count heuristic (Alg. 4).
	BUR Algorithm = iota
	// BURPlus is BUR followed by the minimal pruning pass (Alg. 7).
	BURPlus
	// TDB is the top-down cover with the plain DFS detector (Alg. 8).
	TDB
	// TDBPlus is TDB with the block-based detector (Alg. 9-10).
	TDBPlus
	// TDBPlusPlus is TDBPlus with the BFS-filter (Alg. 11) — the paper's
	// headline algorithm.
	TDBPlusPlus
	// DARCDV is the state-of-the-art baseline: the DARC edge transversal
	// run on the line graph and mapped back to vertices (Sec. III-B).
	DARCDV
)

var algoNames = map[Algorithm]string{
	BUR: "BUR", BURPlus: "BUR+", TDB: "TDB", TDBPlus: "TDB+",
	TDBPlusPlus: "TDB++", DARCDV: "DARC-DV",
}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	if s, ok := algoNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm resolves the paper's algorithm names (case-sensitive,
// e.g. "TDB++", "BUR+", "DARC-DV").
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range algoNames {
		if s == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (want BUR, BUR+, TDB, TDB+, TDB++ or DARC-DV)", s)
}

// Algorithms lists all algorithms in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{DARCDV, BUR, BURPlus, TDB, TDBPlus, TDBPlusPlus}
}

// Order selects the order in which candidate vertices are processed.
// The paper uses natural order; the alternatives are ablation knobs
// (experiment "order" in DESIGN.md).
type Order int

const (
	// OrderNatural processes vertices by increasing ID (the paper's order).
	OrderNatural Order = iota
	// OrderDegreeAsc processes low-degree vertices first, which tends to
	// keep hubs in the cover.
	OrderDegreeAsc
	// OrderDegreeDesc processes hubs first.
	OrderDegreeDesc
	// OrderRandom processes vertices in a seeded random order.
	OrderRandom
	// OrderWeighted processes vertices by descending Options.Weights,
	// steering expensive vertices out of the cover (see Options.Weights).
	OrderWeighted
)

// Options configures a cover computation.
type Options struct {
	// K is the hop constraint: cycles of length up to K are covered.
	// Use cycle.Unconstrained(g) to cover cycles of every length
	// (the paper's Sec. VI-C variant). Must be >= MinLen.
	K int
	// MinLen is the minimum cycle length: 3 by default (self-loops and
	// 2-cycles are not cycles, per the paper); 2 switches to the
	// with-2-cycles variant of Table IV.
	MinLen int
	// Order is the candidate processing order (default natural).
	Order Order
	// Seed feeds OrderRandom.
	Seed uint64
	// Weights, when non-nil (length n), makes covers cost-aware: vertex v
	// costs Weights[v] and the algorithms try to keep expensive vertices
	// OUT of the cover. OrderWeighted processes candidates by descending
	// weight — the top-down process excludes a candidate whenever it can,
	// and early candidates see a smaller working graph, so expensive
	// vertices get the best exclusion odds; the minimal pruning passes
	// likewise try to shed the most expensive cover vertices first. This
	// is a best-effort heuristic (the weighted problem inherits the
	// unweighted NP-hardness), extension over the paper.
	Weights []float64
	// CandidateOrder, when non-nil, is the exact candidate processing
	// sequence (a permutation of [0, n)) and overrides Order. The
	// renumbering layer uses it to replay the ORIGINAL graph's candidate
	// order on the locality-renumbered graph: the top-down family's cover
	// is a function of the candidate sequence alone (its detector queries
	// are yes/no questions with representation-independent answers), so
	// replaying the order makes the renumbered cover map back exactly onto
	// the unrenumbered one. BUR also honors the sequence, but its cover
	// additionally depends on WHICH cycle the DFS finds per hit — an
	// adjacency-order artifact no candidate sequence can pin down.
	CandidateOrder []VID
	// SCCPrefilter, when set, first computes strongly connected components
	// and exempts every vertex outside non-trivial SCCs from cover
	// candidacy (such vertices lie on no cycle of any length). This is an
	// extension over the paper; see DESIGN.md.
	SCCPrefilter bool
	// PrepassWorkers enables the parallel BFS-filter prepass for
	// TDBPlusPlus: before the sequential top-down loop, that many workers
	// (each with its own scratch and prefix mask) run the BFS-filter over
	// all candidates and pre-resolve every one it prunes, producing the
	// identical cover. Soundness: each candidate is queried on a superset
	// of the working graph the loop would query it on, and "no constrained
	// cycle through v" is inherited by subgraphs (see prepass.go). This is
	// the speedup for graphs that are one giant SCC, where ComputeParallel
	// gains nothing. 0 disables the prepass (the paper's sequential
	// behavior); a negative value selects GOMAXPROCS. Ignored by every
	// other algorithm.
	PrepassWorkers int
	// Context, when non-nil, carries cancellation and deadline for the
	// run: it is polled between candidate steps — and additionally inside
	// the exponential-worst-case DFS of the plain detector (TDB, BUR) and
	// DARC; the block detector's O(k*m) queries (TDB+, TDB++) run to
	// completion — and a done context stops the algorithm and marks the
	// result TimedOut (or Degraded, see PartialOnDeadline).
	Context context.Context
	// PartialOnDeadline switches the deadline contract of the top-down
	// family (TDB, TDB+, TDB++) from fail to degrade: instead of marking a
	// stopped run TimedOut (result unusable), the run finishes its
	// conservative completion — every candidate not yet decided joins the
	// cover, minus vertices already PROVEN to lie on no constrained cycle —
	// and returns it as a VALID (merely non-minimal) cover with
	// Stats.Degraded set and TimedOut clear. Runs that finish in time are
	// byte-for-byte unaffected. The bottom-up family and DARC grow their
	// covers from the empty set, so no conservative completion exists
	// mid-run; requesting the option with them is an error.
	PartialOnDeadline bool
	// Cancelled, when non-nil, is polled between candidate steps; when it
	// returns true the algorithm stops and marks the result TimedOut. With
	// PrepassWorkers != 0 (or under ComputeParallel) the hook is also
	// polled concurrently from worker goroutines and must be safe for
	// concurrent use.
	//
	// Deprecated: set Context instead (e.g. via context.WithTimeout).
	// Cancelled is still honored — both hooks stop the run — but new code
	// should use Context.
	Cancelled func() bool

	// maskWorkingGraph forces the []bool VertexMask working-graph
	// representation instead of the compacted digraph.ActiveAdjacency view.
	// Unexported: the view is strictly a performance representation (see
	// DESIGN.md §7); the mask path exists as the fallback for graphs beyond
	// the view's int32 edge limit and for equivalence tests and comparison
	// benchmarks, which reach it from inside this package.
	maskWorkingGraph bool
}

// stop returns the unified cancellation poll combining Options.Context and
// the deprecated Options.Cancelled hook, or nil when neither is set.
func (o Options) stop() func() bool {
	switch {
	case o.Context != nil && o.Cancelled != nil:
		ctx, fn := o.Context, o.Cancelled
		return func() bool { return ctx.Err() != nil || fn() }
	case o.Context != nil:
		ctx := o.Context
		return func() bool { return ctx.Err() != nil }
	default:
		return o.Cancelled // possibly nil
	}
}

func (o Options) withDefaults() Options {
	if o.MinLen == 0 {
		o.MinLen = cycle.DefaultMinLen
	}
	return o
}

func (o Options) validate(g digraph.Adjacency) error {
	if o.MinLen < 2 {
		return fmt.Errorf("core: MinLen %d < 2", o.MinLen)
	}
	if o.K < o.MinLen {
		return fmt.Errorf("core: K=%d < MinLen=%d", o.K, o.MinLen)
	}
	if o.Weights != nil && len(o.Weights) != g.NumVertices() {
		return fmt.Errorf("core: Weights length %d != n %d", len(o.Weights), g.NumVertices())
	}
	if o.Order == OrderWeighted && o.Weights == nil {
		return fmt.Errorf("core: OrderWeighted requires Options.Weights")
	}
	if o.CandidateOrder != nil && len(o.CandidateOrder) != g.NumVertices() {
		return fmt.Errorf("core: CandidateOrder length %d != n %d", len(o.CandidateOrder), g.NumVertices())
	}
	return nil
}

// Stats records the work a cover computation performed.
type Stats struct {
	Algorithm string
	K, MinLen int
	N, M      int
	CoverSize int
	Duration  time.Duration
	// Checked counts candidate vertices (or, for DARC, edges) evaluated.
	Checked int64
	// SCCSkipped counts candidates exempted by the SCC prefilter.
	SCCSkipped int64
	// FilterPruned counts candidates the BFS-filter resolved inside the
	// sequential loop (TDB++). Since the batched filter these prunes are
	// proven in word-wide sweeps ahead of the per-candidate steps;
	// Detector.Batches counts the sweeps.
	FilterPruned int64
	// FilterBatchWidth is the lane-group capacity the bit-parallel batched
	// BFS filter was configured with (64, 256 or 512 — the widest group
	// the run's chunk sizes could fill; 0 on runs without the batched
	// filter): each of the run's Detector.Batches sweeps answered up to
	// this many per-vertex pruning queries at once.
	FilterBatchWidth int
	// PrepassResolved counts candidates the parallel full-graph BFS-filter
	// prepass resolved before the sequential loop (TDB++ with
	// Options.PrepassWorkers != 0).
	PrepassResolved int64
	// CyclesHit counts cycles discovered while building the cover (BUR).
	CyclesHit int64
	// PruneRemoved counts vertices removed by the minimal pass (BUR+) or
	// edges demoted by PRUNE (DARC).
	PruneRemoved int64
	// Detector aggregates detector-level counters.
	Detector cycle.Stats
	// TimedOut marks a cancelled run; the cover is then incomplete.
	TimedOut bool
	// Degraded marks a run that hit its deadline under
	// Options.PartialOnDeadline and answered with the conservative
	// completion: the cover is VALID (it intersects every constrained
	// cycle) but not minimal. Mutually exclusive with TimedOut.
	Degraded bool
	// StopReason records why a TimedOut or Degraded run stopped:
	// "deadline" (context.DeadlineExceeded), "canceled" (context.Canceled
	// or another cause), or "hook" (the deprecated Cancelled func). Empty
	// on runs that finished on their own.
	StopReason string

	// Renumbering names the cache-aware vertex renumbering mode the solve
	// layer applied before the computation ("degree", "bfs"); empty when
	// the graph ran in its input numbering.
	Renumbering string
	// Strategy names the execution strategy the planning layer selected
	// for this run ("sequential", "scc-parallel", "prepass"); empty when a
	// legacy entry point invoked the computation directly, below the
	// planner.
	Strategy string
	// StrategyPinned reports that the caller pinned the strategy rather
	// than the planner choosing it from the SCC condensation.
	StrategyPinned bool
	// Workers is the effective worker count of the plan (1 for sequential
	// plans); 0 when no planning step ran.
	Workers int
	// Storage names the adjacency backend the computation ran over
	// ("memory" for the in-memory CSR, "mapped" for the mmap-backed
	// segmented CSR) — the per-solve dimension tdbserve's metrics slice by.
	Storage string
}

// Result is a computed cover plus its statistics.
type Result struct {
	// Cover is the vertex cover, sorted by ID. When Stats.TimedOut is set
	// the cover is partial and NOT a valid cycle cover; when Stats.Degraded
	// is set instead (Options.PartialOnDeadline) the cover is valid but not
	// minimal.
	Cover []VID
	// Edges is the edge transversal of an edge-cover solve (Definition 5's
	// k-cycle transversal); nil for vertex-cover runs, where Cover carries
	// the result instead.
	Edges []digraph.Edge
	Stats Stats
}

// CoverSet returns the cover as a membership mask of length n.
func (r *Result) CoverSet(n int) []bool {
	mask := make([]bool, n)
	for _, v := range r.Cover {
		mask[v] = true
	}
	return mask
}

// Compute runs the selected algorithm one-shot, allocating fresh scratch
// state. For repeated covers over the same graph use an Engine, which pools
// the O(n) scratch across runs. Compute returns an error only for invalid
// options or (for DARC-DV) an infeasible line-graph blow-up; timeouts and
// cancellation (Options.Context) are reported through Stats.TimedOut.
func Compute(g digraph.Adjacency, algo Algorithm, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	return compute(g, algo, opts, nil)
}

// compute dispatches a validated computation; rs supplies reusable scratch
// (nil allocates fresh, the one-shot path).
func compute(g digraph.Adjacency, algo Algorithm, opts Options, rs *runScratch) (*Result, error) {
	if err := checkPartialSupport(algo, opts); err != nil {
		return nil, err
	}
	// Chaos hook: a panic injected here unwinds through the caller exactly
	// like a solver bug on the request goroutine would (see internal/fault).
	fault.Inject(fault.SiteCoreCompute)
	if rs == nil {
		rs = newRunScratch(g.NumVertices())
	}
	var (
		r   *Result
		err error
	)
	switch algo {
	case BUR:
		r = bottomUp(g, opts, false, rs)
	case BURPlus:
		r = bottomUp(g, opts, true, rs)
	case TDB, TDBPlus, TDBPlusPlus:
		r, err = topDown(g, algo, opts, rs)
	case DARCDV:
		r, err = darcDV(g, opts)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", algo)
	}
	if err != nil {
		return nil, err
	}
	stampStopReason(r, opts)
	return r, nil
}

// checkPartialSupport rejects PartialOnDeadline for algorithms without a
// conservative mid-run completion (their covers grow from the empty set, so
// a stopped run has no valid cover to degrade to).
func checkPartialSupport(algo Algorithm, opts Options) error {
	if !opts.PartialOnDeadline {
		return nil
	}
	switch algo {
	case TDB, TDBPlus, TDBPlusPlus:
		return nil
	default:
		return fmt.Errorf("core: PartialOnDeadline supports the top-down family only, not %v", algo)
	}
}

// stampStopReason records why a stopped run stopped, from the context's
// error (or its absence, implicating the deprecated Cancelled hook).
func stampStopReason(r *Result, opts Options) {
	if r == nil || (!r.Stats.TimedOut && !r.Stats.Degraded) || r.Stats.StopReason != "" {
		return
	}
	switch {
	case opts.Context == nil:
		r.Stats.StopReason = "hook"
	case errors.Is(context.Cause(opts.Context), context.DeadlineExceeded):
		r.Stats.StopReason = "deadline"
	case opts.Context.Err() != nil:
		r.Stats.StopReason = "canceled"
	default:
		r.Stats.StopReason = "hook"
	}
}

// finishStats fills the common fields of a result's statistics.
func finishStats(r *Result, g digraph.Adjacency, algo Algorithm, opts Options, start time.Time) {
	slices.Sort(r.Cover)
	r.Stats.Algorithm = algo.String()
	r.Stats.K = opts.K
	r.Stats.MinLen = opts.MinLen
	r.Stats.N = g.NumVertices()
	r.Stats.M = g.NumEdges()
	r.Stats.CoverSize = len(r.Cover)
	r.Stats.Storage = digraph.StorageName(g)
	r.Stats.Duration = time.Since(start)
}

// cycleCandidates returns the SCC prefilter mask (nil when disabled):
// mask[v] is false for vertices provably on no cycle.
func cycleCandidates(g digraph.Adjacency, opts Options, st *Stats) []bool {
	if !opts.SCCPrefilter {
		return nil
	}
	mask := scc.Compute(g).CycleCandidates()
	for _, ok := range mask {
		if !ok {
			st.SCCSkipped++
		}
	}
	return mask
}
