package core

import (
	"math/rand/v2"
	"slices"
	"sync/atomic"
	"testing"

	"tdb/internal/digraph"
	"tdb/internal/gen"
	"tdb/internal/verify"
)

// The top-down family only asks order-independent questions of the working
// graph (cycle existence, shortest-closed-walk length), so switching the
// representation from the []bool mask to the compacted active-adjacency
// view must leave its covers bit-identical — across k, the SCC prefilter,
// and the parallel prepass. See DESIGN.md §7.
func TestViewMatchesMaskTopDown(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 7))
	for trial := 0; trial < 4; trial++ {
		gr := gen.PowerLaw(80+rng.IntN(80), 500+rng.IntN(500), 2.2, 0.3, rng.Uint64())
		for _, k := range []int{3, 5, 8} {
			for _, sccPre := range []bool{false, true} {
				for _, a := range []Algorithm{TDB, TDBPlus, TDBPlusPlus} {
					workers := []int{0}
					if a == TDBPlusPlus {
						workers = []int{0, 4}
					}
					for _, w := range workers {
						opts := Options{K: k, SCCPrefilter: sccPre, PrepassWorkers: w}
						maskOpts := opts
						maskOpts.maskWorkingGraph = true
						rv := mustCompute(t, gr, a, opts)
						rm := mustCompute(t, gr, a, maskOpts)
						if !slices.Equal(rv.Cover, rm.Cover) {
							t.Fatalf("%v k=%d scc=%v workers=%d: view cover %v != mask cover %v",
								a, k, sccPre, w, rv.Cover, rm.Cover)
						}
						checkCover(t, gr, a, opts, rv)
					}
				}
			}
		}
	}
}

// The bottom-up family materializes cycles, and WHICH cycle a DFS finds
// first depends on the order live neighbors are scanned — the compacted
// view permutes that order, so its covers may legitimately differ from the
// mask path's (DESIGN.md §7). Both must still be valid, BUR+'s minimal, and
// a fixed input must produce the same cover on every run (determinism).
func TestViewBottomUpValidAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 19))
	for trial := 0; trial < 4; trial++ {
		gr := gen.PowerLaw(60+rng.IntN(60), 400+rng.IntN(400), 2.2, 0.3, rng.Uint64())
		for _, k := range []int{3, 5, 8} {
			for _, a := range []Algorithm{BUR, BURPlus} {
				opts := Options{K: k}
				rv := mustCompute(t, gr, a, opts)
				checkCover(t, gr, a, opts, rv)
				maskOpts := opts
				maskOpts.maskWorkingGraph = true
				rm := mustCompute(t, gr, a, maskOpts)
				checkCover(t, gr, a, maskOpts, rm)
				if again := mustCompute(t, gr, a, opts); !slices.Equal(again.Cover, rv.Cover) {
					t.Fatalf("%v k=%d: nondeterministic view cover: %v then %v",
						a, k, rv.Cover, again.Cover)
				}
			}
		}
	}
}

// An engine's pooled view is scrambled by each run; covers must
// nevertheless match the one-shot path run for run, including the
// order-sensitive bottom-up family (ResetCanonical).
func TestEngineViewStableAcrossRuns(t *testing.T) {
	gr := gen.PowerLaw(150, 900, 2.2, 0.3, 77)
	e := NewEngine(gr)
	for _, a := range []Algorithm{BUR, BURPlus, TDB, TDBPlus, TDBPlusPlus} {
		opts := Options{K: 5}
		want := mustCompute(t, gr, a, opts)
		for round := 0; round < 3; round++ {
			got, err := e.Compute(nil, a, opts)
			if err != nil {
				t.Fatalf("%v round %d: %v", a, round, err)
			}
			if !slices.Equal(got.Cover, want.Cover) {
				t.Fatalf("%v round %d: engine cover %v != one-shot %v",
					a, round, got.Cover, want.Cover)
			}
		}
	}
}

// On the view path detectors scan only live edges, so a top-down run's
// EdgeScans counter must not exceed the mask path's, which filters the full
// CSR degree per scan.
func TestViewReducesEdgeScans(t *testing.T) {
	gr := gen.PowerLaw(300, 2500, 2.2, 0.3, 5)
	for _, a := range []Algorithm{TDBPlus, TDBPlusPlus} {
		opts := Options{K: 5}
		rv := mustCompute(t, gr, a, opts)
		maskOpts := opts
		maskOpts.maskWorkingGraph = true
		rm := mustCompute(t, gr, a, maskOpts)
		if rv.Stats.Detector.EdgeScans > rm.Stats.Detector.EdgeScans {
			t.Fatalf("%v: view EdgeScans %d > mask %d",
				a, rv.Stats.Detector.EdgeScans, rm.Stats.Detector.EdgeScans)
		}
		if rv.Stats.Detector.EdgeScans == 0 {
			t.Fatalf("%v: view EdgeScans is 0, counters not wired", a)
		}
	}
}

// On timeout the partial cover keeps every unprocessed CANDIDATE, but must
// not be inflated with vertices the SCC prefilter already proved to lie on
// no cycle.
func TestTimedOutCoverSkipsNonCandidates(t *testing.T) {
	// A triangle (the only candidates under the SCC prefilter) plus an
	// acyclic tail of 7 vertices.
	gr := g(10, 0, 1, 1, 2, 2, 0, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9)
	for _, a := range []Algorithm{TDB, TDBPlus, TDBPlusPlus} {
		opts := Options{
			K:            5,
			SCCPrefilter: true,
			Cancelled:    func() bool { return true }, // expired before the first step
		}
		r := mustComputeTimedOut(t, gr, a, opts)
		for _, v := range r.Cover {
			if v > 2 {
				t.Fatalf("%v: timed-out cover %v contains non-candidate %d", a, r.Cover, v)
			}
		}
		// The top-down timeout contract: every unprocessed candidate joins
		// the cover, so the partial cover still intersects every cycle.
		if ok, witness := verify.IsValid(gr, 5, 3, r.Cover); !ok {
			t.Fatalf("%v: timed-out cover %v invalid, surviving cycle %v", a, r.Cover, witness)
		}
	}
}

// The same soundness argument covers prepass-resolved vertices: a cycle
// through one would lie inside its prefix graph (refuted by the prepass) or
// pass through a later unprocessed candidate kept in the cover. A timeout
// firing after the prepass must not re-add resolved vertices.
func TestTimedOutCoverSkipsPrepassResolved(t *testing.T) {
	// Triangle 0-1-2 plus an acyclic tail. With natural order, the prepass
	// resolves every vertex except 2 (the first whose prefix graph closes
	// the triangle). Two workers: a single-worker request skips the prepass
	// entirely (it cannot beat the sequential loop; see topDown).
	gr := g(10, 0, 1, 1, 2, 2, 0, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9)
	var calls atomic.Int64
	opts := Options{
		K:              5,
		PrepassWorkers: 2,
		// The prepass polls once (one chunk covers all 10 vertices, and the
		// worker whose claim is beyond n breaks before polling); every later
		// poll — the sequential loop — times out.
		Cancelled: func() bool { return calls.Add(1) > 1 },
	}
	r := mustComputeTimedOut(t, gr, TDBPlusPlus, opts)
	if r.Stats.PrepassResolved == 0 {
		t.Fatal("prepass resolved nothing; the test graph no longer exercises the resolved branch")
	}
	if len(r.Cover) != 1 || r.Cover[0] != 2 {
		t.Fatalf("timed-out cover %v, want only the unresolved vertex [2]", r.Cover)
	}
	if ok, witness := verify.IsValid(gr, 5, 3, r.Cover); !ok {
		t.Fatalf("timed-out cover %v invalid, surviving cycle %v", r.Cover, witness)
	}
}

func mustComputeTimedOut(t *testing.T, gr *digraph.Graph, a Algorithm, opts Options) *Result {
	t.Helper()
	r, err := Compute(gr, a, opts)
	if err != nil {
		t.Fatalf("%v: %v", a, err)
	}
	if !r.Stats.TimedOut {
		t.Fatalf("%v: expected TimedOut", a)
	}
	return r
}

// BenchmarkCoverWorkingGraph runs the same end-to-end covers on both
// working-graph representations: Mask filters the full CSR degree at every
// scan, View traverses only live edges. The ratio is the tentpole win of
// the active-adjacency refactor; allocs differ by the one-shot view build.
func BenchmarkCoverWorkingGraph(b *testing.B) {
	gr := gen.PowerLaw(1400, 20000, 2.2, 0.3, 9)
	for _, a := range []Algorithm{TDB, TDBPlus, TDBPlusPlus, BUR, BURPlus} {
		for _, mask := range []bool{true, false} {
			name := a.String() + "/View"
			if mask {
				name = a.String() + "/Mask"
			}
			b.Run(name, func(b *testing.B) {
				opts := Options{K: 5, maskWorkingGraph: mask}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					r, err := Compute(gr, a, opts)
					if err != nil {
						b.Fatal(err)
					}
					if r.Stats.TimedOut {
						b.Fatal("unexpected timeout")
					}
				}
			})
		}
	}
}
