package core

import (
	"math/rand/v2"
	"testing"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
	"tdb/internal/gen"
	"tdb/internal/verify"
)

func g(n int, pairs ...VID) *digraph.Graph {
	b := digraph.NewBuilder(n)
	for i := 0; i+1 < len(pairs); i += 2 {
		b.AddEdge(pairs[i], pairs[i+1])
	}
	return b.Build()
}

func mustCompute(t *testing.T, gr *digraph.Graph, a Algorithm, opts Options) *Result {
	t.Helper()
	r, err := Compute(gr, a, opts)
	if err != nil {
		t.Fatalf("%v: %v", a, err)
	}
	if r.Stats.TimedOut {
		t.Fatalf("%v: unexpected timeout", a)
	}
	return r
}

// checkCover asserts validity (always) and minimality (for the algorithms
// that promise it).
func checkCover(t *testing.T, gr *digraph.Graph, a Algorithm, opts Options, r *Result) {
	t.Helper()
	k, minLen := opts.K, opts.MinLen
	if minLen == 0 {
		minLen = 3
	}
	if ok, witness := verify.IsValid(gr, k, minLen, r.Cover); !ok {
		t.Fatalf("%v: invalid cover %v, surviving cycle %v\ngraph=%v",
			a, r.Cover, witness, gr.Edges())
	}
	minimalAlgos := map[Algorithm]bool{BURPlus: true, TDB: true, TDBPlus: true, TDBPlusPlus: true}
	if minimalAlgos[a] {
		if ok, redundant := verify.IsMinimal(gr, k, minLen, r.Cover); !ok {
			t.Fatalf("%v: non-minimal cover %v, redundant %v\ngraph=%v",
				a, r.Cover, redundant, gr.Edges())
		}
	}
}

func allAlgorithms() []Algorithm {
	return []Algorithm{BUR, BURPlus, TDB, TDBPlus, TDBPlusPlus, DARCDV}
}

func TestTriangleAllAlgorithms(t *testing.T) {
	gr := g(3, 0, 1, 1, 2, 2, 0)
	for _, a := range allAlgorithms() {
		opts := Options{K: 5}
		r := mustCompute(t, gr, a, opts)
		if len(r.Cover) != 1 {
			t.Fatalf("%v: cover %v, want exactly 1 vertex for a lone triangle", a, r.Cover)
		}
		checkCover(t, gr, a, opts, r)
	}
}

func TestAcyclicGraphEmptyCover(t *testing.T) {
	gr := g(5, 0, 1, 1, 2, 2, 3, 3, 4, 0, 4)
	for _, a := range allAlgorithms() {
		r := mustCompute(t, gr, a, Options{K: 5})
		if len(r.Cover) != 0 {
			t.Fatalf("%v: cover %v on a DAG, want empty", a, r.Cover)
		}
	}
}

func TestTwoCyclesOnlyGraph(t *testing.T) {
	// Only 2-cycles: default problem sees no cycles; MinLen=2 must cover.
	gr := g(4, 0, 1, 1, 0, 2, 3, 3, 2)
	for _, a := range allAlgorithms() {
		r := mustCompute(t, gr, a, Options{K: 5})
		if len(r.Cover) != 0 {
			t.Fatalf("%v: cover %v, want empty with MinLen=3", a, r.Cover)
		}
		r2 := mustCompute(t, gr, a, Options{K: 5, MinLen: 2})
		if len(r2.Cover) != 2 {
			t.Fatalf("%v: cover %v with MinLen=2, want 2 (one per 2-cycle)", a, r2.Cover)
		}
	}
}

// The paper's Figure 1 scenario: an e-commerce network whose three simple
// cycles (hop <= 5) all pass through account a, so {a} is a minimum cover.
func TestPaperFigure1(t *testing.T) {
	// a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7
	// cycles: a->b->c->a (3), a->c->d->e->a (4), a->f->g->h->e->a (5);
	// extra acyclic edges: h->d, b->f.
	gr := g(8,
		0, 1, 1, 2, 2, 0,
		2, 3, 3, 4, 4, 0,
		0, 2, // a->c, part of the 4-cycle
		0, 5, 5, 6, 6, 7, 7, 4,
		7, 3, 1, 5,
	)
	for _, a := range allAlgorithms() {
		opts := Options{K: 5}
		r := mustCompute(t, gr, a, opts)
		checkCover(t, gr, a, opts, r)
	}
	// BUR's hit-count heuristic discovers all three cycles from a, so BUR+
	// lands on the minimum cover {a}.
	r := mustCompute(t, gr, BURPlus, Options{K: 5})
	if len(r.Cover) != 1 || r.Cover[0] != 0 {
		t.Fatalf("BUR+: cover %v, want {a}=[0]", r.Cover)
	}
	// The top-down variants are minimal but need not hit the minimum (a is
	// processed first, when the working graph is empty, so it is excluded).
	for _, a := range []Algorithm{TDB, TDBPlus, TDBPlusPlus} {
		r := mustCompute(t, gr, a, Options{K: 5})
		if len(r.Cover) > 2 {
			t.Fatalf("%v: minimal cover %v unexpectedly large", a, r.Cover)
		}
	}
	// And the optimum is indeed 1.
	if opt := verify.BruteForceOptimal(gr, 5, 3); len(opt) != 1 {
		t.Fatalf("brute force optimum %v, want size 1", opt)
	}
}

func TestHopConstraintRespected(t *testing.T) {
	// A 6-cycle: with k=5 it needs no cover, with k=6 it needs one vertex.
	gr := g(6, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0)
	for _, a := range allAlgorithms() {
		r5 := mustCompute(t, gr, a, Options{K: 5})
		if len(r5.Cover) != 0 {
			t.Fatalf("%v: k=5 cover %v, want empty", a, r5.Cover)
		}
		r6 := mustCompute(t, gr, a, Options{K: 6})
		if len(r6.Cover) != 1 {
			t.Fatalf("%v: k=6 cover %v, want 1 vertex", a, r6.Cover)
		}
	}
}

// Every algorithm on every random graph: valid covers; minimal where
// promised; identical covers across TDB variants (the paper reports the
// three top-down variants return identical result sets).
func TestRandomGraphsAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	for iter := 0; iter < 60; iter++ {
		n := 3 + rng.IntN(16)
		m := rng.IntN(3*n + 1)
		b := digraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		gr := b.Build()
		for _, minLen := range []int{2, 3} {
			for _, k := range []int{minLen, 4, 6} {
				if k < minLen {
					continue
				}
				opts := Options{K: k, MinLen: minLen}
				var tdbCovers [][]VID
				for _, a := range allAlgorithms() {
					r := mustCompute(t, gr, a, opts)
					checkCover(t, gr, a, opts, r)
					switch a {
					case TDB, TDBPlus, TDBPlusPlus:
						tdbCovers = append(tdbCovers, r.Cover)
					}
				}
				for i := 1; i < len(tdbCovers); i++ {
					if len(tdbCovers[i]) != len(tdbCovers[0]) {
						t.Fatalf("iter=%d k=%d minLen=%d: TDB variants disagree: %v vs %v\ngraph=%v",
							iter, k, minLen, tdbCovers[0], tdbCovers[i], gr.Edges())
					}
					for j := range tdbCovers[i] {
						if tdbCovers[i][j] != tdbCovers[0][j] {
							t.Fatalf("iter=%d k=%d minLen=%d: TDB variants disagree: %v vs %v",
								iter, k, minLen, tdbCovers[0], tdbCovers[i])
						}
					}
				}
			}
		}
	}
}

// BUR+ prunes BUR's cover, never grows it; both remain valid.
func TestMinimalPassShrinks(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 61))
	for iter := 0; iter < 30; iter++ {
		n := 5 + rng.IntN(20)
		b := digraph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		gr := b.Build()
		opts := Options{K: 5}
		bur := mustCompute(t, gr, BUR, opts)
		burP := mustCompute(t, gr, BURPlus, opts)
		if len(burP.Cover) > len(bur.Cover) {
			t.Fatalf("iter %d: BUR+ cover %d > BUR cover %d", iter, len(burP.Cover), len(bur.Cover))
		}
		if burP.Stats.PruneRemoved != int64(len(bur.Cover)-len(burP.Cover)) {
			t.Fatalf("iter %d: PruneRemoved=%d, want %d",
				iter, burP.Stats.PruneRemoved, len(bur.Cover)-len(burP.Cover))
		}
	}
}

// Against the brute-force optimum on tiny graphs: minimal covers are within
// a small factor, and never smaller than the optimum (sanity).
func TestAgainstBruteForceOptimum(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 81))
	for iter := 0; iter < 25; iter++ {
		n := 4 + rng.IntN(6)
		b := digraph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		gr := b.Build()
		opt := verify.BruteForceOptimal(gr, 4, 3)
		for _, a := range []Algorithm{BURPlus, TDBPlusPlus} {
			r := mustCompute(t, gr, a, Options{K: 4})
			if len(r.Cover) < len(opt) {
				t.Fatalf("iter %d %v: cover %v smaller than optimum %v (verifier broken)",
					iter, a, r.Cover, opt)
			}
		}
	}
}

// The NP-hardness gadget (paper Fig. 2 / Theorem 2): the optimal k=3 cover
// of the gadget has the same size as the minimum vertex cover of the
// original undirected graph.
func TestGadgetMatchesVertexCover(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	for iter := 0; iter < 15; iter++ {
		n := 3 + rng.IntN(4)
		var edges []gen.UndirectedEdge
		seen := map[[2]VID]bool{}
		for i := 0; i < n; i++ {
			u, v := VID(rng.IntN(n)), VID(rng.IntN(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]VID{u, v}] {
				continue
			}
			seen[[2]VID{u, v}] = true
			edges = append(edges, gen.UndirectedEdge{U: u, V: v})
		}
		if len(edges) == 0 {
			continue
		}
		gad := gen.VertexCoverGadget(n, edges)
		opt := verify.BruteForceOptimal(gad.Graph, 3, 3)
		want := bruteForceVC(n, edges)
		if len(opt) != want {
			t.Fatalf("iter %d: gadget optimum %d != vertex cover %d (edges %v)",
				iter, len(opt), want, edges)
		}
		// And our minimal heuristics produce valid covers of the gadget.
		for _, a := range []Algorithm{BURPlus, TDBPlusPlus} {
			r := mustCompute(t, gad.Graph, a, Options{K: 3})
			checkCover(t, gad.Graph, a, Options{K: 3}, r)
		}
	}
}

// bruteForceVC returns the minimum vertex cover size of an undirected graph.
func bruteForceVC(n int, edges []gen.UndirectedEdge) int {
	best := n
	for mask := uint32(0); mask < 1<<n; mask++ {
		size := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				size++
			}
		}
		if size >= best {
			continue
		}
		ok := true
		for _, e := range edges {
			if mask&(1<<e.U) == 0 && mask&(1<<e.V) == 0 {
				ok = false
				break
			}
		}
		if ok {
			best = size
		}
	}
	return best
}

func TestVertexOrders(t *testing.T) {
	gr := gen.PowerLaw(300, 1500, 2.2, 0.3, 5)
	for _, ord := range []Order{OrderNatural, OrderDegreeAsc, OrderDegreeDesc, OrderRandom} {
		opts := Options{K: 4, Order: ord, Seed: 9}
		r := mustCompute(t, gr, TDBPlusPlus, opts)
		checkCover(t, gr, TDBPlusPlus, opts, r)
	}
	// Random order is seed-deterministic.
	a := mustCompute(t, gr, TDBPlusPlus, Options{K: 4, Order: OrderRandom, Seed: 7})
	b := mustCompute(t, gr, TDBPlusPlus, Options{K: 4, Order: OrderRandom, Seed: 7})
	if len(a.Cover) != len(b.Cover) {
		t.Fatal("random order not deterministic under fixed seed")
	}
}

func TestSCCPrefilter(t *testing.T) {
	// A cycle plus a long acyclic tail: the prefilter must skip the tail.
	b := digraph.NewBuilder(50)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	for v := 3; v < 49; v++ {
		b.AddEdge(VID(v), VID(v+1))
	}
	gr := b.Build()
	plain := mustCompute(t, gr, TDBPlusPlus, Options{K: 5})
	filt := mustCompute(t, gr, TDBPlusPlus, Options{K: 5, SCCPrefilter: true})
	if len(plain.Cover) != len(filt.Cover) {
		t.Fatalf("prefilter changed cover size: %d vs %d", len(plain.Cover), len(filt.Cover))
	}
	if filt.Stats.SCCSkipped < 40 {
		t.Fatalf("SCCSkipped = %d, want >= 40", filt.Stats.SCCSkipped)
	}
	if filt.Stats.Checked >= plain.Stats.Checked {
		t.Fatal("prefilter did not reduce checked candidates")
	}
	// Covers must agree with and without the prefilter on random graphs.
	rng := rand.New(rand.NewPCG(11, 13))
	for iter := 0; iter < 20; iter++ {
		n := 5 + rng.IntN(15)
		bb := digraph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			bb.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		grr := bb.Build()
		for _, a := range []Algorithm{BURPlus, TDBPlusPlus} {
			r1 := mustCompute(t, grr, a, Options{K: 4})
			r2 := mustCompute(t, grr, a, Options{K: 4, SCCPrefilter: true})
			if len(r1.Cover) != len(r2.Cover) {
				t.Fatalf("iter %d %v: prefilter changed cover: %v vs %v", iter, a, r1.Cover, r2.Cover)
			}
		}
	}
}

func TestUnconstrainedVariant(t *testing.T) {
	// 12-cycle: invisible at k=5, covered by the unconstrained variant.
	b := digraph.NewBuilder(12)
	for v := 0; v < 12; v++ {
		b.AddEdge(VID(v), VID((v+1)%12))
	}
	gr := b.Build()
	r5 := mustCompute(t, gr, TDBPlusPlus, Options{K: 5})
	if len(r5.Cover) != 0 {
		t.Fatalf("k=5 cover %v, want empty", r5.Cover)
	}
	r, err := Unconstrained(gr, TDBPlusPlus, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cover) != 1 {
		t.Fatalf("unconstrained cover %v, want 1 vertex", r.Cover)
	}
	if ok, _ := verify.IsValid(gr, cycle.Unconstrained(gr), 3, r.Cover); !ok {
		t.Fatal("unconstrained cover invalid")
	}
}

func TestPlantedCyclesLowerBound(t *testing.T) {
	p := gen.PlantedCycles(400, 12, 3, 5, 600, 33)
	for _, a := range []Algorithm{BURPlus, TDBPlusPlus} {
		opts := Options{K: 5}
		r := mustCompute(t, p.Graph, a, opts)
		checkCover(t, p.Graph, a, opts, r)
		if len(r.Cover) < 12 {
			t.Fatalf("%v: cover %d < 12 vertex-disjoint planted cycles", a, len(r.Cover))
		}
	}
}

func TestCancellation(t *testing.T) {
	gr := gen.PowerLaw(2000, 12000, 2.2, 0.4, 3)
	calls := 0
	opts := Options{K: 5, Cancelled: func() bool {
		calls++
		return calls > 10
	}}
	for _, a := range []Algorithm{BUR, BURPlus, TDBPlusPlus, DARCDV} {
		calls = 0
		r, err := Compute(gr, a, opts)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !r.Stats.TimedOut {
			t.Fatalf("%v: expected TimedOut", a)
		}
	}
}

func TestDARCEdgesDirect(t *testing.T) {
	// Two triangles sharing vertex 0.
	gr := g(5, 0, 1, 1, 2, 2, 0, 0, 3, 3, 4, 4, 0)
	edges, complete := DARCEdges(gr, 5, 3, nil)
	if !complete {
		t.Fatal("DARC timed out on a tiny graph")
	}
	if len(edges) == 0 {
		t.Fatal("DARC selected no edges")
	}
	// Removing the selected edges must leave no constrained cycle: rebuild.
	drop := map[digraph.Edge]bool{}
	for _, e := range edges {
		drop[e] = true
	}
	b := digraph.NewBuilder(gr.NumVertices())
	for _, e := range gr.Edges() {
		if !drop[e] {
			b.AddEdge(e.U, e.V)
		}
	}
	if cycle.NewEnumerator(b.Build(), 5, 3, nil).HasAny() {
		t.Fatal("DARC edge set does not break all constrained cycles")
	}
}

// Property: DARC's edge transversal breaks all constrained cycles on random
// graphs, for both minLen settings.
func TestDARCEdgesRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for iter := 0; iter < 40; iter++ {
		n := 3 + rng.IntN(10)
		b := digraph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		gr := b.Build()
		for _, minLen := range []int{2, 3} {
			edges, complete := DARCEdges(gr, 5, minLen, nil)
			if !complete {
				t.Fatalf("iter %d: unexpected timeout", iter)
			}
			drop := map[digraph.Edge]bool{}
			for _, e := range edges {
				drop[e] = true
			}
			bb := digraph.NewBuilder(gr.NumVertices())
			for _, e := range gr.Edges() {
				if !drop[e] {
					bb.AddEdge(e.U, e.V)
				}
			}
			if cycle.NewEnumerator(bb.Build(), 5, minLen, nil).HasAny() {
				t.Fatalf("iter %d minLen=%d: surviving constrained cycle", iter, minLen)
			}
		}
	}
}

func TestDARCDVStarGraph(t *testing.T) {
	// A high-degree in/out star is acyclic: DARC-DV must select nothing,
	// and the run must stay cheap despite the hub's din*dout = 360000
	// two-paths (the line-graph formulation would materialize all of them).
	b := digraph.NewBuilder(1201)
	for i := 1; i <= 600; i++ {
		b.AddEdge(VID(i), 0)
		b.AddEdge(0, VID(600+i))
	}
	gr := b.Build()
	r, err := Compute(gr, DARCDV, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cover) != 0 {
		t.Fatalf("star is acyclic; cover %v", r.Cover)
	}
}

// DARC-DV covers only vertex-simple cycles: two 2-cycles sharing a vertex
// form a phantom line-graph 4-cycle that must NOT force selections when
// minLen=3.
func TestDARCDVNoPhantomWalks(t *testing.T) {
	gr := g(3, 0, 1, 1, 0, 0, 2, 2, 0)
	r := mustCompute(t, gr, DARCDV, Options{K: 5})
	if len(r.Cover) != 0 {
		t.Fatalf("cover %v, want empty: the only closed walks repeat vertex 0", r.Cover)
	}
}

func TestOptionsValidation(t *testing.T) {
	gr := g(3, 0, 1)
	if _, err := Compute(gr, TDBPlusPlus, Options{K: 2}); err == nil {
		t.Fatal("K < MinLen must error")
	}
	if _, err := Compute(gr, TDBPlusPlus, Options{K: 5, MinLen: 1}); err == nil {
		t.Fatal("MinLen < 2 must error")
	}
	if _, err := Compute(gr, Algorithm(99), Options{K: 5}); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range allAlgorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip failed for %v: %v %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm String should not be empty")
	}
}

func TestStatsPopulated(t *testing.T) {
	gr := gen.PowerLaw(500, 3000, 2.2, 0.3, 21)
	r := mustCompute(t, gr, TDBPlusPlus, Options{K: 5})
	st := r.Stats
	if st.Algorithm != "TDB++" || st.K != 5 || st.MinLen != 3 {
		t.Fatalf("stats header wrong: %+v", st)
	}
	if st.N != 500 || st.M != gr.NumEdges() {
		t.Fatalf("graph sizes wrong: %+v", st)
	}
	if st.CoverSize != len(r.Cover) {
		t.Fatalf("CoverSize %d != len(Cover) %d", st.CoverSize, len(r.Cover))
	}
	if st.Checked == 0 || st.Duration <= 0 {
		t.Fatalf("work counters empty: %+v", st)
	}
	if st.FilterPruned == 0 {
		t.Fatalf("BFS filter never pruned on a sparse graph: %+v", st)
	}
	if st.Detector.Queries == 0 {
		t.Fatalf("detector stats missing: %+v", st)
	}
}

func TestCoverSet(t *testing.T) {
	r := &Result{Cover: []VID{1, 3}}
	mask := r.CoverSet(5)
	want := []bool{false, true, false, true, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("CoverSet = %v", mask)
		}
	}
}
