package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"tdb/internal/fault"
	"tdb/internal/gen"
	"tdb/internal/verify"
)

// expiredContext returns a context whose deadline already passed.
func expiredContext(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	t.Cleanup(cancel)
	return ctx
}

func TestPartialOnDeadlineDegradesValid(t *testing.T) {
	gr := gen.ErdosRenyi(400, 1600, 7)
	for _, a := range []Algorithm{TDB, TDBPlus, TDBPlusPlus} {
		opts := Options{K: 8, Context: expiredContext(t), PartialOnDeadline: true}
		r, err := Compute(gr, a, opts)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !r.Stats.Degraded || r.Stats.TimedOut {
			t.Fatalf("%v: Degraded=%v TimedOut=%v, want degraded-only",
				a, r.Stats.Degraded, r.Stats.TimedOut)
		}
		if r.Stats.StopReason != "deadline" {
			t.Fatalf("%v: StopReason=%q, want deadline", a, r.Stats.StopReason)
		}
		if ok, witness := verify.IsValid(gr, opts.K, 3, r.Cover); !ok {
			t.Fatalf("%v: degraded cover invalid, surviving cycle %v", a, witness)
		}
	}
}

func TestPartialOnDeadlineMidRun(t *testing.T) {
	// A hook that trips mid-loop (not before it) exercises the interesting
	// path: part minimal cover, part conservative completion.
	gr := gen.ErdosRenyi(600, 3000, 11)
	var calls atomic.Int64
	opts := Options{
		K:                 8,
		PartialOnDeadline: true,
		Cancelled:         func() bool { return calls.Add(1) > 50 },
	}
	r, err := Compute(gr, TDBPlusPlus, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.Degraded {
		t.Fatal("hook tripped mid-run but result not degraded")
	}
	if r.Stats.StopReason != "hook" {
		t.Fatalf("StopReason=%q, want hook", r.Stats.StopReason)
	}
	if ok, witness := verify.IsValid(gr, opts.K, 3, r.Cover); !ok {
		t.Fatalf("degraded cover invalid, surviving cycle %v", witness)
	}
	// The degraded cover must be a superset of the in-time minimal one.
	full, err := Compute(gr, TDBPlusPlus, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cover) < len(full.Cover) {
		t.Fatalf("degraded cover smaller (%d) than the minimal one (%d)",
			len(r.Cover), len(full.Cover))
	}
}

func TestPartialOnDeadlineInTimeNoOp(t *testing.T) {
	gr := gen.ErdosRenyi(300, 1200, 3)
	for _, a := range []Algorithm{TDB, TDBPlus, TDBPlusPlus} {
		plain := mustCompute(t, gr, a, Options{K: 8})
		flagged := mustCompute(t, gr, a, Options{K: 8, PartialOnDeadline: true})
		if flagged.Stats.Degraded {
			t.Fatalf("%v: in-time solve reported Degraded", a)
		}
		if flagged.Stats.StopReason != "" {
			t.Fatalf("%v: in-time solve reported StopReason=%q", a, flagged.Stats.StopReason)
		}
		if len(plain.Cover) != len(flagged.Cover) {
			t.Fatalf("%v: cover changed under the flag: %d vs %d vertices",
				a, len(plain.Cover), len(flagged.Cover))
		}
		for i := range plain.Cover {
			if plain.Cover[i] != flagged.Cover[i] {
				t.Fatalf("%v: cover changed under the flag at %d", a, i)
			}
		}
	}
}

func TestPartialOnDeadlineUnsupported(t *testing.T) {
	gr := g(3, 0, 1, 1, 2, 2, 0)
	opts := Options{K: 5, PartialOnDeadline: true}
	for _, a := range []Algorithm{BUR, BURPlus, DARCDV} {
		if _, err := Compute(gr, a, opts); err == nil {
			t.Fatalf("%v: PartialOnDeadline accepted, want error", a)
		}
	}
	if _, err := ComputeParallel(gr, BUR, opts, 2); err == nil {
		t.Fatal("ComputeParallel(BUR): PartialOnDeadline accepted, want error")
	}
	if _, err := TopDownEdges(gr, opts); err == nil {
		t.Fatal("TopDownEdges: PartialOnDeadline accepted, want error")
	}
}

func TestPartialOnDeadlineParallelSCC(t *testing.T) {
	gr := gen.Communities(8, 40, 0.15, 0.002, 5)
	opts := Options{K: 8, Context: expiredContext(t), PartialOnDeadline: true}
	r, err := ComputeParallel(gr, TDBPlusPlus, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.Degraded || r.Stats.TimedOut {
		t.Fatalf("Degraded=%v TimedOut=%v, want degraded-only", r.Stats.Degraded, r.Stats.TimedOut)
	}
	if ok, witness := verify.IsValid(gr, opts.K, 3, r.Cover); !ok {
		t.Fatalf("degraded parallel cover invalid, surviving cycle %v", witness)
	}
}

func TestStopReasonCanceled(t *testing.T) {
	gr := gen.ErdosRenyi(300, 1200, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := Compute(gr, TDBPlusPlus, Options{K: 8, Context: ctx, PartialOnDeadline: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.Degraded || r.Stats.StopReason != "canceled" {
		t.Fatalf("Degraded=%v StopReason=%q, want degraded/canceled",
			r.Stats.Degraded, r.Stats.StopReason)
	}
}

// panicOnce returns a hook that panics with v on its first call only.
func panicOnce(v any) func() {
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			panic(v)
		}
	}
}

func TestPrepassWorkerPanicIsolated(t *testing.T) {
	gr := gen.ErdosRenyi(3000, 12000, 13)
	disarm := fault.Arm("core/prepass-worker", panicOnce("injected prepass panic"))
	defer disarm()
	_, err := Compute(gr, TDBPlusPlus, Options{K: 6, PrepassWorkers: 4})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err=%v, want a *PanicError", err)
	}
	if pe.Value != "injected prepass panic" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError lost the original panic: value=%v stackLen=%d", pe.Value, len(pe.Stack))
	}
	disarm()
	// The pool must be healthy afterwards: same solve, correct cover.
	r := mustCompute(t, gr, TDBPlusPlus, Options{K: 6, PrepassWorkers: 4})
	checkCover(t, gr, TDBPlusPlus, Options{K: 6}, r)
}

func TestParallelWorkerPanicIsolated(t *testing.T) {
	gr := gen.Communities(12, 30, 0.2, 0.002, 9)
	disarm := fault.Arm("core/parallel-worker", panicOnce("injected component panic"))
	defer disarm()
	_, err := ComputeParallel(gr, TDBPlusPlus, Options{K: 6}, 4)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err=%v, want a *PanicError", err)
	}
	disarm()
	r, err := ComputeParallel(gr, TDBPlusPlus, Options{K: 6}, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, gr, TDBPlusPlus, Options{K: 6}, r)
}

func TestEnginePanicQuarantinesScratch(t *testing.T) {
	gr := gen.ErdosRenyi(500, 2000, 17)
	e := NewEngine(gr)
	want, err := e.Compute(nil, TDBPlusPlus, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}

	// Panic out of Engine.Compute mid-solve: the borrowed runScratch must be
	// quarantined (never returned to the pool), and later engine runs must
	// still produce the exact same cover.
	disarm := fault.Arm("core/compute", panicOnce("injected engine panic"))
	defer disarm()
	func() {
		defer func() {
			if p := recover(); p == nil {
				t.Fatal("injected panic did not propagate out of Engine.Compute")
			}
		}()
		e.Compute(nil, TDBPlusPlus, Options{K: 6})
	}()
	disarm()

	for i := 0; i < 4; i++ {
		r, err := e.Compute(nil, TDBPlusPlus, Options{K: 6})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Cover) != len(want.Cover) {
			t.Fatalf("post-panic cover diverged: %d vs %d vertices", len(r.Cover), len(want.Cover))
		}
		for j := range r.Cover {
			if r.Cover[j] != want.Cover[j] {
				t.Fatalf("post-panic cover diverged at %d", j)
			}
		}
	}
}
