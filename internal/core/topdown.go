package core

import (
	"runtime"
	"time"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
)

// detector is the common surface of the plain and block-based detectors.
type detector interface {
	HasCycleThrough(s VID) bool
}

// working is the mutable working-graph surface the cover loops drive. Both
// representations implement it: digraph.VertexMask (O(1) toggles, detectors
// filter every scanned edge) and digraph.ActiveAdjacency (O(deg) toggles,
// detectors traverse only live edges). See runScratch.workingGraph.
type working interface {
	Activate(v VID) bool
	Deactivate(v VID) bool
}

// topDown implements the paper's top-down cover (Alg. 8) in its three
// variants:
//
//	TDB   — plain bounded-DFS detector;
//	TDB+  — block-based detector (Alg. 9-10);
//	TDB++ — block-based detector behind the BFS-filter (Alg. 11).
//
// The cover starts conceptually as all of V and the working graph G0 as
// empty. Each candidate v is activated (all its edges join G0); if no
// constrained cycle passes through v, the working graph is still acyclic
// and v is dropped from the cover for good; otherwise v is kept in the
// cover and deactivated again. The invariant — G0 holds no constrained
// cycle — makes every kept vertex a witness of its own necessity, so the
// result is minimal (paper Theorem 7).
//
// For TDB++ with Options.PrepassWorkers != 0, a parallel BFS-filter
// prepass (see prepass.go) resolves candidates on their prefix graphs
// before the sequential loop; resolved vertices join the working graph
// without any per-vertex check.
func topDown(g *digraph.Graph, algo Algorithm, opts Options, rs *runScratch) *Result {
	start := time.Now()
	stop := opts.stop()
	r := &Result{}
	candidates := cycleCandidates(g, opts, &r.Stats)

	view, active := rs.workingGraph(g, opts, false)

	var det detector
	var plainDet *cycle.PlainDetector
	var blockDet *cycle.BlockDetector
	if algo == TDB {
		if view != nil {
			plainDet = cycle.NewPlainDetectorView(view, opts.K, opts.MinLen, rs.cyc)
		} else {
			plainDet = cycle.NewPlainDetectorWith(g, opts.K, opts.MinLen, rs.active.Raw(), rs.cyc)
		}
		plainDet.Cancelled = stop // the plain DFS is worst-case O(n^k)
		det = plainDet
	} else {
		if view != nil {
			blockDet = cycle.NewBlockDetectorView(view, opts.K, opts.MinLen, rs.cyc)
		} else {
			blockDet = cycle.NewBlockDetectorWith(g, opts.K, opts.MinLen, rs.active.Raw(), rs.cyc)
		}
		det = blockDet
	}
	order := vertexOrderBuf(g, opts, rs.ids)
	var filter *cycle.BFSFilter
	var resolved []bool
	if algo == TDBPlusPlus {
		if view != nil {
			filter = cycle.NewBFSFilterView(view, opts.K, rs.cyc)
		} else {
			filter = cycle.NewBFSFilterWith(g, opts.K, rs.active.Raw(), rs.cyc)
		}
		// The prepass only pays off with real parallelism: at one effective
		// worker it re-runs the filter queries the loop would run anyway,
		// minus the view's live-edge advantage, and measures ~10-15% slower
		// than the plain sequential loop (DESIGN.md §6). Since the cover is
		// identical either way, a single-worker request is downgraded to the
		// sequential path instead of honored.
		if w := opts.PrepassWorkers; w > 1 || (w < 0 && runtime.GOMAXPROCS(0) > 1) {
			resolved = prepass(g, opts, order, candidates, stop, &r.Stats, rs)
		}
	}

	for _, v := range order {
		if stop != nil && stop() {
			// Everything not yet processed stays in the (partial) cover —
			// except vertices the SCC/candidate prefilter or the prepass
			// already proved to lie on no constrained cycle, which can
			// never be needed: a surviving cycle through a resolved vertex
			// would have to lie inside its prefix graph (refuted by the
			// prepass) or pass through a later unprocessed candidate, which
			// is itself kept in the cover.
			r.Stats.TimedOut = true
			if (candidates == nil || candidates[v]) && (resolved == nil || !resolved[v]) {
				r.Cover = append(r.Cover, v)
			}
			continue
		}
		if candidates != nil && !candidates[v] {
			active.Activate(v) // provably on no cycle: never in the cover
			continue
		}
		r.Stats.Checked++
		if resolved != nil && resolved[v] {
			// Pre-resolved by the prepass: no constrained cycle through v
			// in its prefix graph, hence none in the working graph G0+v,
			// which is a subgraph of it.
			active.Activate(v)
			continue
		}
		active.Activate(v)
		necessary := false
		if filter != nil && filter.CanPrune(v) {
			// Proven: no constrained cycle through v in G0. Not necessary.
			r.Stats.FilterPruned++
		} else {
			necessary = det.HasCycleThrough(v)
			if plainDet != nil && plainDet.WasAborted() {
				// Inconclusive: keep v in the cover (always safe) and
				// flag the timeout.
				necessary = true
				r.Stats.TimedOut = true
			}
		}
		if necessary {
			r.Cover = append(r.Cover, v)
			active.Deactivate(v)
		}
	}

	// The prepass accumulated its filter counters into r.Stats.Detector
	// already; fold the loop-level detector and filter on top.
	if plainDet != nil {
		r.Stats.Detector.Add(plainDet.Stats)
	} else {
		r.Stats.Detector.Add(blockDet.Stats)
	}
	if filter != nil {
		r.Stats.Detector.Add(filter.Stats)
	}
	finishStats(r, g, algo, opts, start)
	return r
}

// Unconstrained computes a minimal cover of cycles of every length (the
// paper's Sec. VI-C variant) by running the requested top-down variant with
// the hop constraint lifted to n.
func Unconstrained(g *digraph.Graph, algo Algorithm, opts Options) (*Result, error) {
	opts.K = cycle.Unconstrained(g)
	return Compute(g, algo, opts)
}
