package core

import (
	"runtime"
	"time"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
)

// detector is the common surface of the plain and block-based detectors.
type detector interface {
	HasCycleThrough(s VID) bool
}

// working is the mutable working-graph surface the cover loops drive. Both
// representations implement it: digraph.VertexMask (O(1) toggles, detectors
// filter every scanned edge) and digraph.ActiveAdjacency (O(deg) toggles,
// detectors traverse only live edges). See runScratch.workingGraph.
type working interface {
	Activate(v VID) bool
	Deactivate(v VID) bool
}

// Tier-probe tuning. A probe round charges alternating stretches to the two
// tiers until each has decided tierProbeCands candidates (stretches differ
// in size across tiers — a batch window can be MaxBatchWidth wide while a
// scalar stretch is one word — so rounds are sized in candidates, not
// stretches). The committed span starts at tierCommitStretches and doubles
// every time a re-probe confirms the standing winner, capped at
// tierCommitMax: on stable workloads — fast-hit graphs where the scalar
// filter keeps winning — the loop stops paying for speculative batched
// probe sweeps almost entirely, while a flipped winner resets the span so
// the probe still tracks the crossover as the working graph fills.
const (
	tierProbeCands      = 3 * cycle.BatchWidth
	tierCommitStretches = 26
	tierCommitMax       = 8 * tierCommitStretches
)

// tierProbe picks, by measurement, which filter tier answers a stretch of
// candidates: the batched look-ahead or the scalar per-candidate filter.
// Filter edge-scans per decided candidate are the signal — the detector's
// work is identical under either tier (the decisions are the same), so
// scans are the whole mode-dependent cost, and normalizing by candidates
// lets a 512-wide batch stretch be compared against one-word scalar
// stretches directly. Each probe round alternates stretches between the
// tiers until both have decided tierProbeCands candidates, commits to the
// cheaper one for an escalating span of stretches, then re-probes.
type tierProbe struct {
	started    bool
	lastScans  int64
	lastCands  int64
	prevBatch  bool
	scansB     int64 // probe-round scan totals per tier
	scansS     int64
	candsB     int64 // probe-round decided-candidate totals per tier
	candsS     int64
	commitLeft int
	commitSpan int  // current span length; escalates while the winner repeats
	lastWin    bool // winner of the previous completed probe round
	haveWin    bool
	useBatch   bool
}

// nextStretch closes the previous stretch (attributing its scans and
// candidates) and reports whether the next stretch should use the batched
// tier. scansSoFar is the running total of both filters' EdgeScans;
// candsSoFar the running total of candidates assigned to stretches.
func (p *tierProbe) nextStretch(scansSoFar, candsSoFar int64) bool {
	if p.started {
		ds := scansSoFar - p.lastScans
		dc := candsSoFar - p.lastCands
		if p.commitLeft > 0 {
			p.commitLeft--
			if p.commitLeft == 0 { // committed span over: fresh probe round
				p.scansB, p.scansS, p.candsB, p.candsS = 0, 0, 0, 0
			}
		} else if p.prevBatch {
			p.scansB += ds
			p.candsB += dc
		} else {
			p.scansS += ds
			p.candsS += dc
		}
	}
	p.started = true
	p.lastScans = scansSoFar
	p.lastCands = candsSoFar
	switch {
	case p.commitLeft > 0:
		// keep the committed tier
	case p.candsB < tierProbeCands && p.candsS < tierProbeCands:
		p.useBatch = !p.prevBatch // alternate while probing (batch first)
	case p.candsB < tierProbeCands:
		p.useBatch = true // only the batch sample is still short
	case p.candsS < tierProbeCands:
		p.useBatch = false
	default:
		// A batched edge-scan costs ~4/3 of a scalar one (word merges and
		// consolidation ride on it), so the batch tier must win on scans
		// per decided candidate by at least that margin before it is worth
		// committing to.
		win := p.scansB*4*p.candsS <= p.scansS*3*p.candsB
		if p.haveWin && win == p.lastWin {
			p.commitSpan = min(2*p.commitSpan, tierCommitMax)
		} else {
			p.commitSpan = tierCommitStretches
		}
		p.haveWin, p.lastWin = true, win
		p.useBatch = win
		p.commitLeft = p.commitSpan
	}
	p.prevBatch = p.useBatch
	return p.useBatch
}

// topDown implements the paper's top-down cover (Alg. 8) in its three
// variants:
//
//	TDB   — plain bounded-DFS detector;
//	TDB+  — block-based detector (Alg. 9-10);
//	TDB++ — block-based detector behind the BFS-filter (Alg. 11).
//
// The cover starts conceptually as all of V and the working graph G0 as
// empty. Each candidate v is activated (all its edges join G0); if no
// constrained cycle passes through v, the working graph is still acyclic
// and v is dropped from the cover for good; otherwise v is kept in the
// cover and deactivated again. The invariant — G0 holds no constrained
// cycle — makes every kept vertex a witness of its own necessity, so the
// result is minimal (paper Theorem 7).
//
// For TDB++ with Options.PrepassWorkers != 0, a parallel BFS-filter
// prepass (see prepass.go) resolves candidates on their prefix graphs
// before the sequential loop; resolved vertices join the working graph
// without any per-vertex check.
//
// The only error is a recovered prepass-worker panic (a PanicError).
func topDown(g digraph.Adjacency, algo Algorithm, opts Options, rs *runScratch) (*Result, error) {
	start := time.Now()
	stop := opts.stop()
	r := &Result{}
	candidates := cycleCandidates(g, opts, &r.Stats)

	view, active := rs.workingGraph(g, opts, false)

	var det detector
	var plainDet *cycle.PlainDetector
	var blockDet *cycle.BlockDetector
	if algo == TDB {
		if view != nil {
			plainDet = cycle.NewPlainDetectorView(view, opts.K, opts.MinLen, rs.cyc)
		} else {
			plainDet = cycle.NewPlainDetectorWith(g, opts.K, opts.MinLen, rs.active.Raw(), rs.cyc)
		}
		plainDet.Cancelled = stop // the plain DFS is worst-case O(n^k)
		det = plainDet
	} else {
		if view != nil {
			blockDet = cycle.NewBlockDetectorView(view, opts.K, opts.MinLen, rs.cyc)
		} else {
			blockDet = cycle.NewBlockDetectorWith(g, opts.K, opts.MinLen, rs.active.Raw(), rs.cyc)
		}
		det = blockDet
	}
	order := vertexOrderBuf(g, opts, rs.ids)
	var filter *cycle.BatchPrefixFilter
	var scalarFilter *cycle.BFSFilter
	var frank []int32
	var resolved []bool
	if algo == TDBPlusPlus {
		// The scalar filter is tier two of the pruning path: it re-checks,
		// on the exact working graph G0+v, every candidate the batched
		// look-ahead could not prune (and every candidate once the
		// look-ahead switches itself off), so the set of candidates that
		// reach the detector is bit-identical to the paper's sequential
		// loop.
		if view != nil {
			scalarFilter = cycle.NewBFSFilterView(view, opts.K, rs.cyc)
		} else {
			scalarFilter = cycle.NewBFSFilterWith(g, opts.K, rs.active.Raw(), rs.cyc)
		}
		// The batched look-ahead tier runs only on pooled (engine) scratch:
		// its lane buffers cost six words per vertex, which the engine
		// amortizes across runs while a one-shot cover would reallocate —
		// and GC — them every call for a constant-factor gamble. One-shot
		// runs therefore keep the paper's scalar loop; the legacy shims and
		// Solve share this single code path either way, the tier choice
		// being a per-run resource decision.
		//
		// The batched filter runs on its OWN membership ranks rather than
		// on the run's working-graph representation: admitting a whole
		// window of candidates to the filter graph costs one int write per
		// vertex instead of O(deg) view swaps, and the view — hence every
		// detector query — stays bit-exactly on the sequential working
		// graph. Ranks are 0 for working-graph members, 1+offset for the
		// current window's vertices in scan order, and rankExcluded for
		// everything else, so lane i of a batch — querying at its own rank
		// — sees G0 plus only the window vertices UP TO its member, a
		// tight superset of its sequential working graph G0+v (tight
		// matters: every candidate the filter misses costs an exhaustive
		// detector query). The filter records its prunes in the same
		// resolved mask the prepass fills, so the loop below has a single
		// "proved unnecessary" path.
		if rs.cycPool != nil {
			frank = rs.filterRankBuf(g.NumVertices())
			filter = &rs.bpf
			filter.Reinit(g, opts.K, frank, rs.cyc)
			r.Stats.FilterBatchWidth = cycle.PickLanes(len(order))
		}
		// The prepass only pays off with real parallelism: at one effective
		// worker it re-runs the filter queries the loop would run anyway,
		// minus the view's live-edge advantage, and measures ~10-15% slower
		// than the plain sequential loop (DESIGN.md §6). Since the cover is
		// identical either way, a single-worker request is downgraded to the
		// sequential path instead of honored.
		if w := opts.PrepassWorkers; w > 1 || (w < 0 && runtime.GOMAXPROCS(0) > 1) {
			var err error
			resolved, err = prepass(g, opts, order, candidates, stop, &r.Stats, rs)
			if err != nil {
				return nil, err
			}
			// The prepass answers its queries through the batched prefix
			// filter on any path, one-shot included.
			r.Stats.FilterBatchWidth = cycle.PickLanes(prepassChunk)
		} else if filter != nil {
			resolved = rs.resolvedBuf(g.NumVertices())
		}
	}

	// Batched in-loop pruning (TDB++), tier one of the filter: candidates
	// are pruned in lane groups of up to cycle.MaxBatchWidth ahead of
	// processing.
	// Lane i's filter graph — G0 plus the window scanned up to its member —
	// is a superset of the member's sequential working graph (it
	// conservatively includes earlier window vertices the loop will move to
	// the cover), so a batch prune is sound for the loop by subgraph
	// inheritance; batch misses fall through to the tier-two scalar filter
	// and the detector, which decide on the exact working graph — keep/drop
	// decisions, hence covers, stay bit-identical to the scalar loop's,
	// preserving Theorem 7's minimality argument unchanged.
	//
	// Whether the look-ahead PAYS depends on the workload, not on any
	// static property this code can see: word-wide sweeps win when lanes
	// share frontiers (hub-heavy graphs, deep queries), and lose to the
	// scalar filter's early exits when queries die in a handful of scans
	// (scattered sparse graphs, saturated working graphs). So the loop
	// measures instead of guessing: it alternates probe stretches of
	// batched and scalar-only filtering, compares filter edge-scans per
	// decided candidate — detector work is identical either way, so scans
	// are the whole mode-dependent cost — and commits to the cheaper tier,
	// re-probing periodically in case the answer changes as the working
	// graph fills.
	var (
		batchBuf     [cycle.MaxBatchWidth]VID
		prunedBuf    [cycle.MaxBatchWidth]bool
		batchedUpTo  int // order positions < batchedUpTo have been tier-assigned
		stretchCands int64
		probe        tierProbe
	)
	// stretchEnd returns the order position just past the next
	// cycle.BatchWidth unresolved candidates — one scalar-tier stretch —
	// counting them into stretchCands for the probe's normalization.
	stretchEnd := func(start int) int {
		seen := 0
		j := start
		for ; j < len(order) && seen < cycle.BatchWidth; j++ {
			v := order[j]
			if (candidates == nil || candidates[v]) && !resolved[v] {
				seen++
			}
		}
		stretchCands += int64(seen)
		return j
	}
	// Window widths climb a WidthLadder capped by the order length: wide
	// lane groups amortize each edge scan over up to cycle.MaxBatchWidth
	// queries, but whether that beats narrow groups' tighter inner loop
	// and smaller lane slabs is machine- and workload-dependent, so the
	// ladder times the widths against each other and widens only on a
	// measured win (see cycle.WidthLadder). The ladder persists in the
	// pooled scratch: repeated engine runs start at the settled width.
	var ladder *cycle.WidthLadder
	if filter != nil {
		ladder, _ = rs.widthLadders(opts.K, len(order))
		ladder.NewStream()
	}
	batchWindow := func(start int) {
		width := ladder.Next()
		filter.SetLanes(width)
		batch := batchBuf[:0]
		j := start
		for ; j < len(order) && len(batch) < width; j++ {
			v := order[j]
			// Rank everything scanned by window offset — non-candidates
			// and resolved vertices join the working graph when the loop
			// reaches them, so lanes ordered after them must see them.
			frank[v] = int32(j-start) + 1
			if (candidates == nil || candidates[v]) && !resolved[v] {
				batch = append(batch, v)
			}
		}
		batchedUpTo = j
		stretchCands += int64(len(batch))
		if len(batch) == 0 {
			return
		}
		pruned := prunedBuf[:len(batch)]
		if ladder.Adapting() {
			t0 := time.Now()
			filter.CanPruneBatch(batch, pruned)
			ladder.Observe(width, time.Since(t0), len(batch))
		} else {
			filter.CanPruneBatch(batch, pruned)
		}
		for i, v := range batch {
			if pruned[i] {
				// Proven: no constrained cycle through v in lane i's filter
				// graph, hence in any subgraph the loop could query it on.
				// v stays in the filter graph; its rank collapses to 0 when
				// the loop admits it to the working graph.
				resolved[v] = true
				r.Stats.FilterPruned++
			} else {
				// Inconclusive: withdraw v and hand it back to the
				// per-candidate loop, which decides it on its exact
				// working graph.
				frank[v] = rankExcluded
			}
		}
	}

	for idx, v := range order {
		if stop != nil && stop() {
			// Everything not yet processed stays in the (partial) cover —
			// except vertices the SCC/candidate prefilter, the prepass, or
			// the batched in-loop filter already proved to lie on no
			// constrained cycle, which can never be needed: a surviving
			// cycle through a resolved vertex would have to lie inside the
			// graph it was pruned on (refuted by that proof) or pass
			// through a later unprocessed candidate, which is itself kept
			// in the cover.
			r.Stats.TimedOut = true
			if (candidates == nil || candidates[v]) && (resolved == nil || !resolved[v]) {
				r.Cover = append(r.Cover, v)
			}
			continue
		}
		if filter != nil && idx >= batchedUpTo {
			if probe.nextStretch(filter.Stats.EdgeScans+scalarFilter.Stats.EdgeScans, stretchCands) {
				batchWindow(idx)
			} else {
				batchedUpTo = stretchEnd(idx)
			}
		}
		if candidates != nil && !candidates[v] {
			active.Activate(v) // provably on no cycle: never in the cover
			if frank != nil {
				frank[v] = 0 // the filter graph tracks the working graph
			}
			continue
		}
		r.Stats.Checked++
		if resolved != nil && resolved[v] {
			// Pre-resolved by the prepass or the batched filter: no
			// constrained cycle through v in a superset of the working
			// graph G0+v, hence none in G0+v itself.
			active.Activate(v)
			if frank != nil {
				frank[v] = 0
			}
			continue
		}
		active.Activate(v)
		if frank != nil {
			frank[v] = 0
		}
		necessary := false
		if scalarFilter != nil && scalarFilter.CanPrune(v) {
			// Proven on the exact working graph: no constrained cycle
			// through v in G0. Not necessary.
			r.Stats.FilterPruned++
		} else {
			necessary = det.HasCycleThrough(v)
			if plainDet != nil && plainDet.WasAborted() {
				// Inconclusive: keep v in the cover (always safe) and flag
				// the timeout.
				necessary = true
				r.Stats.TimedOut = true
			}
		}
		if necessary {
			r.Cover = append(r.Cover, v)
			active.Deactivate(v)
			if frank != nil {
				frank[v] = rankExcluded
			}
		}
	}

	// The prepass accumulated its filter counters into r.Stats.Detector
	// already; fold the loop-level detector and filter on top.
	if plainDet != nil {
		r.Stats.Detector.Add(plainDet.Stats)
	} else {
		r.Stats.Detector.Add(blockDet.Stats)
	}
	if filter != nil {
		r.Stats.Detector.Add(filter.Stats)
	}
	if scalarFilter != nil {
		r.Stats.Detector.Add(scalarFilter.Stats)
	}
	if r.Stats.TimedOut && opts.PartialOnDeadline {
		// The stop path above completed the cover conservatively (every
		// undecided candidate is in it), so the result is a valid —
		// merely non-minimal — cover: degrade instead of failing.
		r.Stats.TimedOut = false
		r.Stats.Degraded = true
	}
	finishStats(r, g, algo, opts, start)
	return r, nil
}

// Unconstrained computes a minimal cover of cycles of every length (the
// paper's Sec. VI-C variant) by running the requested top-down variant with
// the hop constraint lifted to n.
func Unconstrained(g digraph.Adjacency, algo Algorithm, opts Options) (*Result, error) {
	opts.K = cycle.Unconstrained(g)
	return Compute(g, algo, opts)
}
