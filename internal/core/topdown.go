package core

import (
	"time"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
)

// detector is the common surface of the plain and block-based detectors.
type detector interface {
	HasCycleThrough(s VID) bool
}

// topDown implements the paper's top-down cover (Alg. 8) in its three
// variants:
//
//	TDB   — plain bounded-DFS detector;
//	TDB+  — block-based detector (Alg. 9-10);
//	TDB++ — block-based detector behind the BFS-filter (Alg. 11).
//
// The cover starts conceptually as all of V and the working graph G0 as
// empty. Each candidate v is activated (all its edges join G0); if no
// constrained cycle passes through v, the working graph is still acyclic
// and v is dropped from the cover for good; otherwise v is kept in the
// cover and deactivated again. The invariant — G0 holds no constrained
// cycle — makes every kept vertex a witness of its own necessity, so the
// result is minimal (paper Theorem 7).
func topDown(g *digraph.Graph, algo Algorithm, opts Options) *Result {
	start := time.Now()
	r := &Result{}
	n := g.NumVertices()
	candidates := cycleCandidates(g, opts, &r.Stats)

	active := digraph.NewVertexMask(n, false)

	var det detector
	var plainDet *cycle.PlainDetector
	var blockDet *cycle.BlockDetector
	if algo == TDB {
		plainDet = cycle.NewPlainDetector(g, opts.K, opts.MinLen, active.Raw())
		plainDet.Cancelled = opts.Cancelled // the plain DFS is worst-case O(n^k)
		det = plainDet
	} else {
		blockDet = cycle.NewBlockDetector(g, opts.K, opts.MinLen, active.Raw())
		det = blockDet
	}
	var filter *cycle.BFSFilter
	if algo == TDBPlusPlus {
		filter = cycle.NewBFSFilter(g, opts.K, active.Raw())
	}

	for _, v := range vertexOrder(g, opts) {
		if opts.Cancelled != nil && opts.Cancelled() {
			// Everything not yet processed stays in the (partial) cover.
			r.Stats.TimedOut = true
			r.Cover = append(r.Cover, v)
			continue
		}
		if candidates != nil && !candidates[v] {
			active.Activate(v) // provably on no cycle: never in the cover
			continue
		}
		r.Stats.Checked++
		active.Activate(v)
		necessary := false
		if filter != nil && filter.CanPrune(v) {
			// Proven: no constrained cycle through v in G0. Not necessary.
			r.Stats.FilterPruned++
		} else {
			necessary = det.HasCycleThrough(v)
			if plainDet != nil && plainDet.WasAborted() {
				// Inconclusive: keep v in the cover (always safe) and
				// flag the timeout.
				necessary = true
				r.Stats.TimedOut = true
			}
		}
		if necessary {
			r.Cover = append(r.Cover, v)
			active.Deactivate(v)
		}
	}

	if plainDet != nil {
		r.Stats.Detector = plainDet.Stats
	} else {
		r.Stats.Detector = blockDet.Stats
	}
	if filter != nil {
		r.Stats.Detector.Add(filter.Stats)
	}
	finishStats(r, g, algo, opts, start)
	return r
}

// Unconstrained computes a minimal cover of cycles of every length (the
// paper's Sec. VI-C variant) by running the requested top-down variant with
// the hop constraint lifted to n.
func Unconstrained(g *digraph.Graph, algo Algorithm, opts Options) (*Result, error) {
	opts.K = cycle.Unconstrained(g)
	return Compute(g, algo, opts)
}
