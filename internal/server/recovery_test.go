package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tdb/internal/dynamic"
	"tdb/internal/fault"
	"tdb/internal/verify"
	"tdb/internal/wal"
)

// Durability and crash-recovery tests. The in-process crash model: under
// fsync=always with no shutdown-time checkpoint, the data directory after
// Shutdown is byte-equivalent (for recovery purposes) to the directory after
// a kill -9 — every acknowledged record is synced, nothing else is in the
// log. Torn tails and corruption are then simulated by tampering with the
// files between rounds; the real kill -9 path is exercised end-to-end by the
// CI crash smoke on the built binary.

const (
	soakK      = 6
	soakMinLen = 3
	soakBaseN  = 32
)

// ackedBatch is one write the client got a 200 for, with its WAL sequence.
type ackedBatch struct {
	seq    uint64
	growTo int
	ups    []dynamic.Update
}

// replayAcked rebuilds the reference state: every acknowledged batch with
// sequence <= upTo, applied in acknowledgement order.
func replayAcked(t *testing.T, acked []ackedBatch, upTo uint64) *dynamic.Maintainer {
	t.Helper()
	m := dynamic.New(soakBaseN, soakK, soakMinLen)
	for _, b := range acked {
		if b.seq > upTo {
			continue
		}
		if b.growTo > m.NumVertices() {
			m.Grow(b.growTo)
		}
		if _, err := m.ApplyBatchChecked(b.ups); err != nil {
			t.Fatalf("reference replay of acked batch %d: %v", b.seq, err)
		}
	}
	return m
}

// epochFingerprint hashes the server's current published epoch.
func epochFingerprint(s *Server) uint64 {
	e := s.ring.Acquire()
	defer e.Release()
	return dynamic.StateFingerprint(e.Graph(), e.Cover(), soakK, soakMinLen)
}

// updateBody builds the JSON for one batch.
func updateBody(growTo int, ups []dynamic.Update) string {
	type op struct {
		Op string `json:"op"`
		U  VID    `json:"u"`
		V  VID    `json:"v"`
	}
	ops := make([]op, len(ups))
	for i, u := range ups {
		ops[i] = op{Op: "insert", U: u.U, V: u.V}
		if u.Op == dynamic.OpDelete {
			ops[i].Op = "delete"
		}
	}
	req := map[string]any{"updates": ops, "wait": true}
	if growTo > 0 {
		req["grow_to"] = growTo
	}
	body, _ := json.Marshal(req)
	return string(body)
}

// newestSegment returns the path of the highest-numbered wal segment.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	best := ""
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") && name > best {
			best = name
		}
	}
	if best == "" {
		t.Fatal("no wal segment in data dir")
	}
	return filepath.Join(dir, best)
}

// armOnce arms a one-shot panic at site, returning the disarm func.
func armOnce(site fault.Site) func() {
	var fired atomic.Bool
	return fault.Arm(site, func() {
		if fired.CompareAndSwap(false, true) {
			panic(fmt.Sprintf("injected %s failure", site))
		}
	})
}

// soakRecord encodes one raw WAL record for tamper payloads. A record with
// a valid CRC but an out-of-sequence number is indistinguishable from real
// bytes, which is exactly what the seq-break tamper needs.
func soakRecord(seq uint64, payload []byte) []byte {
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], seq)
	table := crc32.MakeTable(crc32.Castagnoli)
	crc := crc32.Update(crc32.Update(0, table, sb[:]), table, payload)
	rec := make([]byte, 16+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[4:12], seq)
	binary.LittleEndian.PutUint32(rec[12:16], crc)
	copy(rec[16:], payload)
	return rec
}

// shutdownServer drains s and fails the test on error.
func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func appendFile(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoverySoak is the crash-recovery soak: >= 60 rounds of
// start -> verify recovered state -> write (some rounds with injected
// panics on the WAL, apply and checkpoint paths) -> stop -> tamper
// (garbage tails, corrupt records, byte-level truncation). The invariant:
// after every restart the recovered state fingerprint equals a reference
// replay of exactly the acknowledged batches (bounded only by explicit
// byte-truncation loss, where the surviving prefix must still be exact),
// and the recovered cover is valid for the recovered graph.
func TestCrashRecoverySoak(t *testing.T) {
	const rounds = 60
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(20260808))

	var acked []ackedBatch // survives rounds, pruned on truncation loss
	maxAcked := uint64(0)
	lossRound := false // previous round ended in byte-truncation tampering

	for round := 0; round < rounds; round++ {
		s, err := New(Config{
			K: soakK, MinLen: soakMinLen, NumVertices: soakBaseN,
			DataDir: dir, Fsync: wal.FsyncAlways,
			CheckpointEvery: 25, PublishEvery: 16,
		})
		if err != nil {
			t.Fatalf("round %d: restart: %v", round, err)
		}

		var stats StatsResponse
		if code := get(t, s, "/v1/stats", &stats); code != 200 || !stats.WALEnabled {
			t.Fatalf("round %d: stats code=%d wal_enabled=%v", round, code, stats.WALEnabled)
		}
		if lossRound {
			// Truncation may have discarded an acked suffix; the durable
			// prefix the server reports is the new truth. Loss must be
			// suffix-only: everything at or below WALLastSeq survives.
			for len(acked) > 0 && acked[len(acked)-1].seq > stats.WALLastSeq {
				acked = acked[:len(acked)-1]
			}
			maxAcked = stats.WALLastSeq
		} else if stats.WALLastSeq != maxAcked {
			t.Fatalf("round %d: recovered last seq %d, want %d (no tampering lost records)",
				round, stats.WALLastSeq, maxAcked)
		}

		ref := replayAcked(t, acked, maxAcked)
		if got, want := epochFingerprint(s), ref.Fingerprint(); got != want {
			t.Fatalf("round %d: recovered fingerprint %x != reference %x (%d acked batches, last seq %d)",
				round, got, want, len(acked), maxAcked)
		}
		e := s.ring.Acquire()
		ok, witness := verify.IsValid(e.Graph(), soakK, soakMinLen, e.Cover())
		e.Release()
		if !ok {
			t.Fatalf("round %d: recovered cover invalid, witness %v", round, witness)
		}

		// Some rounds arm a one-shot panic on a write-path probe; the
		// panicking batch must be answered 500 and appear in NEITHER the
		// reference nor the recovered state.
		armed := func() {}
		faultRound := round%4 == 1
		if faultRound {
			sites := []fault.Site{
				fault.SiteWALAppend, fault.SiteWALFsync,
				fault.SiteDynamicApplyBatch, fault.SiteWALCheckpoint,
			}
			armed = armOnce(sites[rng.Intn(len(sites))])
		}

		curN := ref.NumVertices()
		for b, nBatches := 0, 1+rng.Intn(6); b < nBatches; b++ {
			growTo := 0
			if !faultRound && rng.Intn(8) == 0 {
				growTo = curN + 1 + rng.Intn(3)
			}
			ups := make([]dynamic.Update, 1+rng.Intn(5))
			span := curN
			if growTo > span {
				span = growTo
			}
			for i := range ups {
				u, v := VID(rng.Intn(span)), VID(rng.Intn(span))
				if rng.Intn(5) == 0 {
					ups[i] = dynamic.DeleteOp(u, v)
				} else {
					ups[i] = dynamic.InsertOp(u, v)
				}
			}
			var resp UpdateResponse
			code := post(t, s, "/v1/update", updateBody(growTo, ups), &resp)
			switch code {
			case 200:
				if resp.WALSeq == 0 {
					t.Fatalf("round %d: acked durable write without a wal_seq: %+v", round, resp)
				}
				acked = append(acked, ackedBatch{seq: resp.WALSeq, growTo: growTo, ups: ups})
				maxAcked = resp.WALSeq
				if growTo > curN {
					curN = growTo
				}
			case 500:
				// Injected failure: the batch must be gone from everywhere.
			default:
				t.Fatalf("round %d: update code %d", round, code)
			}
		}
		armed()

		// Crash: shutdown without a checkpoint leaves the directory exactly
		// as a kill -9 would under fsync=always.
		shutdownServer(t, s)

		// Tamper with the tail between rounds.
		lossRound = false
		seg := newestSegment(t, dir)
		switch round % 5 {
		case 2: // garbage tail
			appendFile(t, seg, []byte{0xba, 0xdd, 0xad, 0x00, 0x01})
		case 3: // checksum-valid record with a broken sequence, then garbage
			appendFile(t, seg, soakRecord(maxAcked+7, []byte("time traveler")))
		case 4: // byte-level truncation: torn tail, possibly mid-record
			info, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if info.Size() > 8 {
				cut := 8 + rng.Int63n(info.Size()-8)
				if err := os.Truncate(seg, cut); err != nil {
					t.Fatal(err)
				}
				lossRound = true
			}
		}
	}

	// Final restart after the last round's tampering must still come up.
	s, err := New(Config{
		K: soakK, MinLen: soakMinLen, NumVertices: soakBaseN,
		DataDir: dir, Fsync: wal.FsyncAlways,
	})
	if err != nil {
		t.Fatalf("final restart: %v", err)
	}
	e := s.ring.Acquire()
	ok, witness := verify.IsValid(e.Graph(), soakK, soakMinLen, e.Cover())
	e.Release()
	if !ok {
		t.Fatalf("final recovered cover invalid, witness %v", witness)
	}
	shutdownServer(t, s)
}

// TestRecoverReplayPanicFailsStartupCleanly: a panic while replaying a WAL
// record (chaos probe server/recover-replay) must surface as an error from
// New — diagnosable and restartable — not crash the process, and a retry
// without the fault recovers everything.
func TestRecoverReplayPanic(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{K: soakK, MinLen: soakMinLen, NumVertices: soakBaseN,
		DataDir: dir, Fsync: wal.FsyncAlways,
		// Never checkpoint mid-round so the records stay in the log for
		// replay on restart.
		CheckpointEvery: 1 << 30,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var resp UpdateResponse
	code := post(t, s, "/v1/update",
		`{"updates":[{"op":"insert","u":0,"v":1},{"op":"insert","u":1,"v":0}],"wait":true,"publish":true}`, &resp)
	if code != 200 || resp.WALSeq == 0 {
		t.Fatalf("durable write: code=%d resp=%+v", code, resp)
	}
	want := epochFingerprint(s)
	shutdownServer(t, s)

	disarm := fault.Arm(fault.SiteServerRecoverReplay, func() { panic("injected replay failure") })
	if _, err := New(cfg); err == nil {
		disarm()
		t.Fatal("New succeeded with a panicking replay")
	}
	disarm()

	s, err = New(cfg)
	if err != nil {
		t.Fatalf("restart after the fault cleared: %v", err)
	}
	if got := epochFingerprint(s); got != want {
		t.Fatalf("state after failed-then-clean recovery: %x, want %x", got, want)
	}
	shutdownServer(t, s)
}

// TestGracefulShutdownDurability: even under fsync=never, SIGTERM-style
// drain (Shutdown) must flush and fsync the WAL tail before returning, so a
// graceful stop loses nothing.
func TestGracefulShutdownDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{K: soakK, MinLen: soakMinLen, NumVertices: soakBaseN,
		DataDir: dir, Fsync: wal.FsyncNever, CheckpointEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	for i := 0; i < 5; i++ {
		var resp UpdateResponse
		body := fmt.Sprintf(`{"updates":[{"op":"insert","u":%d,"v":%d}],"wait":true}`, i, i+1)
		if code := post(t, s, "/v1/update", body, &resp); code != 200 {
			t.Fatalf("write %d: code %d", i, code)
		}
		lastSeq = resp.WALSeq
	}
	if got := s.wal.Fsyncs(); got != 0 {
		t.Fatalf("fsync=never synced %d times before shutdown", got)
	}
	shutdownServer(t, s)
	if got := s.wal.Fsyncs(); got < 1 {
		t.Fatal("graceful shutdown did not fsync the WAL tail")
	}
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != lastSeq || rec.Truncated {
		t.Fatalf("after graceful shutdown: LastSeq=%d truncated=%v, want %d acknowledged records intact",
			rec.LastSeq, rec.Truncated, lastSeq)
	}
}

// TestDurableConfigMismatch: a data dir created under one (k, minLen) must
// refuse to open under another, and records without any checkpoint must
// refuse to replay.
func TestDurableConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{K: soakK, MinLen: soakMinLen, NumVertices: soakBaseN,
		DataDir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: 1 << 30}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	post(t, s, "/v1/update", `{"updates":[{"op":"insert","u":0,"v":1}],"wait":true}`, nil)
	shutdownServer(t, s)

	bad := cfg
	bad.K = soakK + 1
	if _, err := New(bad); err == nil {
		t.Fatal("k mismatch accepted")
	}

	// Destroy every checkpoint: replaying records against an empty state
	// would fabricate history, so startup must refuse.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "ckpt-") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("records without a checkpoint accepted")
	}
}

// TestMetricsEndpoint checks the Prometheus text exposition.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{K: soakK, MinLen: soakMinLen, NumVertices: soakBaseN,
		DataDir: dir, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s)
	post(t, s, "/v1/update", `{"updates":[{"op":"insert","u":0,"v":1}],"wait":true}`, nil)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	body := w.Body.String()
	for _, series := range []string{
		"tdbserve_requests_total ",
		"tdbserve_wal_enabled 1",
		"tdbserve_wal_appends_total 1",
		"tdbserve_wal_fsyncs_total 1",
		"tdbserve_wal_last_seq 1",
		"tdbserve_wal_recovery_replayed_total 0",
		"# TYPE tdbserve_wal_appends_total counter",
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("metrics output missing %q:\n%s", series, body)
		}
	}
}
