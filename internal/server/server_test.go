package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tdb/internal/core"
	"tdb/internal/fault"
	"tdb/internal/gen"
	"tdb/internal/verify"
)

// newTestServer builds a server and registers a drained shutdown.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// seededTestServer builds a server over a generated graph with a solved
// initial cover.
func seededTestServer(t *testing.T, n, m, k int, seed uint64) *Server {
	t.Helper()
	g := gen.ErdosRenyi(n, m, seed)
	res, err := core.Compute(g, core.TDBPlusPlus, core.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return newTestServer(t, Config{K: k, Seed: g, SeedCover: res.Cover})
}

// post sends a JSON request directly through the handler and decodes the
// response into out (when non-nil).
func post(t *testing.T, s *Server, path, body string, out any) int {
	t.Helper()
	return request(t, s, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)), out)
}

func get(t *testing.T, s *Server, path string, out any) int {
	t.Helper()
	return request(t, s, httptest.NewRequest(http.MethodGet, path, nil), out)
}

func request(t *testing.T, s *Server, r *http.Request, out any) int {
	t.Helper()
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if out != nil && w.Code < 300 {
		if err := json.NewDecoder(w.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding %q: %v", r.URL.Path, w.Body.String(), err)
		}
	}
	return w.Code
}

func TestServeBasicFlow(t *testing.T) {
	s := newTestServer(t, Config{K: 5, NumVertices: 10})

	var health map[string]any
	if code := get(t, s, "/healthz", &health); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if health["epoch"].(float64) != 1 {
		t.Fatalf("fresh server epoch %v, want 1", health["epoch"])
	}

	// Insert a triangle, wait for application and a fresh epoch.
	var up UpdateResponse
	code := post(t, s, "/v1/update",
		`{"updates":[{"op":"insert","u":0,"v":1},{"op":"insert","u":1,"v":2},{"op":"insert","u":2,"v":0}],"publish":true,"wait":true}`, &up)
	if code != 200 || !up.Applied || up.Epoch != 2 {
		t.Fatalf("update: code=%d resp=%+v", code, up)
	}
	if len(up.CoverAdded) != 1 {
		t.Fatalf("triangle insertion added %v to the cover, want one vertex", up.CoverAdded)
	}

	var solve SolveResponse
	if code := post(t, s, "/v1/solve", `{}`, &solve); code != 200 {
		t.Fatalf("solve: %d", code)
	}
	if solve.Epoch != 2 || solve.CoverSize != 1 || solve.Degraded {
		t.Fatalf("solve: %+v, want 1 cover vertex at epoch 2", solve)
	}

	var cyc CycleResponse
	if code := post(t, s, "/v1/cycle", `{"source":0}`, &cyc); code != 200 || !cyc.Found {
		t.Fatalf("cycle: code=%d resp=%+v", code, cyc)
	}
	if len(cyc.Cycle) != 3 {
		t.Fatalf("cycle through 0: %v, want the triangle", cyc.Cycle)
	}

	var has HasCycleResponse
	if code := post(t, s, "/v1/hascycle", `{}`, &has); code != 200 || !has.Found {
		t.Fatalf("hascycle: code=%d resp=%+v", code, has)
	}

	var cov CoverResponse
	if code := post(t, s, "/v1/cover", `{}`, &cov); code != 200 || cov.CoverSize != 1 {
		t.Fatalf("cover: code=%d resp=%+v", code, cov)
	}

	// Deleting one triangle edge leaves an acyclic graph.
	code = post(t, s, "/v1/update",
		`{"updates":[{"op":"delete","u":2,"v":0}],"publish":true,"wait":true}`, &up)
	if code != 200 {
		t.Fatalf("delete: %d", code)
	}
	if code := post(t, s, "/v1/hascycle", `{}`, &has); code != 200 || has.Found {
		t.Fatalf("hascycle after delete: code=%d found=%v, want none", code, has.Found)
	}
}

func TestSolveDeadlineAndDegradation(t *testing.T) {
	s := seededTestServer(t, 500, 2500, 6, 21)

	// An unmeetable deadline without degradation is a 504 naming the reason.
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(`{"deadline_ms":1}`))
	ctx, cancel := context.WithDeadline(r.Context(), time.Now().Add(-time.Second))
	defer cancel()
	s.Handler().ServeHTTP(w, r.WithContext(ctx))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: %d %s", w.Code, w.Body.String())
	}

	// With partial_on_deadline the same request degrades to a valid cover.
	w = httptest.NewRecorder()
	r = httptest.NewRequest(http.MethodPost, "/v1/solve",
		strings.NewReader(`{"deadline_ms":1,"partial_on_deadline":true}`))
	s.Handler().ServeHTTP(w, r.WithContext(ctx))
	if w.Code != 200 {
		t.Fatalf("degraded solve: %d %s", w.Code, w.Body.String())
	}
	var resp SolveResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.StopReason != "deadline" {
		t.Fatalf("degraded=%v stop_reason=%q, want true/deadline", resp.Degraded, resp.StopReason)
	}
	e := s.Ring().Acquire()
	defer e.Release()
	if ok, witness := verify.IsValid(e.Graph(), 6, 3, resp.Cover); !ok {
		t.Fatalf("degraded cover invalid, surviving cycle %v", witness)
	}

	// An in-time solve under the same flag is not degraded.
	var ok SolveResponse
	if code := post(t, s, "/v1/solve", `{"partial_on_deadline":true}`, &ok); code != 200 {
		t.Fatalf("in-time solve: %d", code)
	}
	if ok.Degraded {
		t.Fatal("in-time solve reported degraded")
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{K: 5, NumVertices: 4})
	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/solve", `{bad json`, 400},
		{"/v1/solve", `{"unknown_field":1}`, 400},
		{"/v1/solve", `{"algorithm":"NOPE"}`, 400},
		{"/v1/solve", `{"k":99}`, 400}, // beyond the server constraint
		{"/v1/solve", `{"k":4,"min_len":5}`, 400},
		{"/v1/solve", `{"deadline_ms":-5}`, 400},
		{"/v1/cycle", `{"source":100}`, 400},
		{"/v1/update", `{}`, 400},
		{"/v1/update", `{"updates":[{"op":"upsert","u":0,"v":1}]}`, 400},
		{"/v1/update", `{"updates":[{"op":"insert","u":0,"v":200}],"wait":true}`, 400},
		{"/v1/update", `{"grow_to":-1}`, 400},
	}
	for _, c := range cases {
		if code := post(t, s, c.path, c.body, nil); code != c.want {
			t.Errorf("%s %s: code %d, want %d", c.path, c.body, code, c.want)
		}
	}
	if code := get(t, s, "/v1/solve", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET solve: %d, want 405", code)
	}
}

func TestReaderAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{K: 5, NumVertices: 4, MaxConcurrent: 1})

	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	disarm := fault.Arm(fault.SiteServerReader, func() {
		entered <- struct{}{}
		<-hold
	})
	defer disarm()

	done := make(chan int, 1)
	go func() { done <- post(t, s, "/v1/cover", `{}`, nil) }()
	<-entered // the slow request holds the only token

	if code := post(t, s, "/v1/cover", `{}`, nil); code != http.StatusTooManyRequests {
		t.Fatalf("second concurrent reader: %d, want 429", code)
	}
	// Writes use a separate pool: they proceed while readers are saturated.
	if code := post(t, s, "/v1/update",
		`{"updates":[{"op":"insert","u":0,"v":1}],"wait":true}`, nil); code != 200 {
		t.Fatalf("write during reader saturation: %d, want 200", code)
	}
	close(hold)
	if code := <-done; code != 200 {
		t.Fatalf("slow reader: %d, want 200", code)
	}
	if code := post(t, s, "/v1/cover", `{}`, nil); code != 200 {
		t.Fatalf("reader after release: %d, want 200", code)
	}
}

func TestWriterBackpressure(t *testing.T) {
	s := newTestServer(t, Config{K: 5, NumVertices: 4, WriteQueue: 1})

	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	disarm := fault.Arm("dynamic/apply-batch", func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-hold
	})
	defer disarm()

	// First write occupies the writer, second fills the queue, third sheds.
	if code := post(t, s, "/v1/update", `{"updates":[{"op":"insert","u":0,"v":1}]}`, nil); code != 202 {
		t.Fatalf("first write: %d, want 202", code)
	}
	<-entered
	if code := post(t, s, "/v1/update", `{"updates":[{"op":"insert","u":1,"v":2}]}`, nil); code != 202 {
		t.Fatalf("second write: %d, want 202", code)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/update",
		strings.NewReader(`{"updates":[{"op":"insert","u":2,"v":3}]}`)))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("third write: %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed write carried no Retry-After")
	}
	// Readers are unaffected by writer saturation.
	if code := post(t, s, "/v1/cover", `{}`, nil); code != 200 {
		t.Fatalf("reader during writer saturation: %d, want 200", code)
	}
	close(hold)
}

func TestReaderPanicIsolated(t *testing.T) {
	s := newTestServer(t, Config{K: 5, NumVertices: 4})
	disarm := fault.Arm(fault.SiteServerReader, func() { panic("injected reader panic") })
	if code := post(t, s, "/v1/cover", `{}`, nil); code != http.StatusInternalServerError {
		t.Fatalf("panicking request: %d, want 500", code)
	}
	disarm()
	if code := post(t, s, "/v1/cover", `{}`, nil); code != 200 {
		t.Fatalf("request after panic: %d, want 200", code)
	}
	if got := s.panicCount.Load(); got != 1 {
		t.Fatalf("panic counter %d, want 1", got)
	}
	// The panicking request's epoch reference was released on unwind.
	if live := s.Ring().Live(); live != 1 {
		t.Fatalf("Live=%d after reader panic, want 1", live)
	}
}

func TestWriterPanicRestoresAcknowledgedWrites(t *testing.T) {
	s := newTestServer(t, Config{K: 5, NumVertices: 10, PublishEvery: 1 << 30})

	// Acknowledge a triangle WITHOUT publishing: it lives only in the
	// writer's unpublished tail.
	if code := post(t, s, "/v1/update",
		`{"updates":[{"op":"insert","u":0,"v":1},{"op":"insert","u":1,"v":2},{"op":"insert","u":2,"v":0}],"wait":true}`, nil); code != 200 {
		t.Fatalf("triangle write: %d", code)
	}

	// Panic exactly once: the restore replays the acknowledged batches
	// through ApplyBatch again, and a real poison batch (excluded from the
	// log) would not poison the replay.
	var poisoned atomic.Bool
	disarm := fault.Arm("dynamic/apply-batch", func() {
		if poisoned.CompareAndSwap(false, true) {
			panic("injected writer panic")
		}
	})
	var up UpdateResponse
	code := post(t, s, "/v1/update", `{"updates":[{"op":"insert","u":3,"v":4}],"wait":true}`, &up)
	disarm()
	if code != http.StatusInternalServerError {
		t.Fatalf("poisoned batch: %d, want 500", code)
	}
	if s.writerPanics.Load() != 1 || s.writerRestores.Load() != 1 {
		t.Fatalf("writerPanics=%d writerRestores=%d, want 1/1",
			s.writerPanics.Load(), s.writerRestores.Load())
	}

	// The writer restored the acknowledged triangle; a publish makes it
	// visible and the triangle still has a cycle through it.
	if code := post(t, s, "/v1/update", `{"publish":true,"wait":true}`, nil); code != 200 {
		t.Fatalf("publish after restore: %d", code)
	}
	var has HasCycleResponse
	if code := post(t, s, "/v1/hascycle", `{}`, &has); code != 200 || !has.Found {
		t.Fatalf("acknowledged triangle lost after writer panic: code=%d found=%v", code, has.Found)
	}
}

func TestShutdownDrainsAndRefuses(t *testing.T) {
	s, err := New(Config{K: 5, NumVertices: 10, PublishEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// Queue fire-and-forget writes, then drain: the final epoch must carry
	// them even though nothing asked for a publish.
	for i := 0; i < 3; i++ {
		if code := post(t, s, "/v1/update",
			`{"updates":[{"op":"insert","u":0,"v":1},{"op":"insert","u":1,"v":2},{"op":"insert","u":2,"v":0}]}`, nil); code != 202 {
			t.Fatalf("queued write: %d", code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if code := post(t, s, "/v1/cover", `{}`, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("request after shutdown: %d, want 503", code)
	}
	e := s.Ring().Acquire()
	defer e.Release()
	if e.ID() < 2 || e.Graph().NumEdges() != 3 {
		t.Fatalf("final epoch %d with %d edges; queued writes were dropped",
			e.ID(), e.Graph().NumEdges())
	}
	if live := s.Ring().Live(); live != 1 {
		t.Fatalf("Live=%d after drain, want 1", live)
	}
}

func TestGrowTo(t *testing.T) {
	s := newTestServer(t, Config{K: 5, NumVertices: 2})
	// Vertex 5 is out of range until grow_to raises the count.
	if code := post(t, s, "/v1/update",
		`{"updates":[{"op":"insert","u":0,"v":5}],"wait":true}`, nil); code != 400 {
		t.Fatalf("out-of-range insert: %d, want 400", code)
	}
	var up UpdateResponse
	if code := post(t, s, "/v1/update",
		`{"updates":[{"op":"insert","u":0,"v":5}],"grow_to":6,"wait":true,"publish":true}`, &up); code != 200 {
		t.Fatalf("grown insert: %d", code)
	}
	var cov CoverResponse
	if code := post(t, s, "/v1/cover", `{}`, &cov); code != 200 || cov.N != 6 {
		t.Fatalf("cover after grow: code=%d n=%d, want 6 vertices", code, cov.N)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{K: 5, NumVertices: 4})
	post(t, s, "/v1/cover", `{}`, nil)
	var st StatsResponse
	if code := get(t, s, "/v1/stats", &st); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if st.Epoch != 1 || st.EpochsLive != 1 || st.Served < 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDeadlineCapped: a huge requested deadline is capped by MaxDeadline —
// observable through the context the solve runs under.
func TestDeadlineCapped(t *testing.T) {
	s := newTestServer(t, Config{K: 5, NumVertices: 4, MaxDeadline: 50 * time.Millisecond})
	r := httptest.NewRequest(http.MethodPost, "/v1/solve", nil)
	ctx, cancel, err := s.requestContext(r, 3600_000)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok || time.Until(dl) > 60*time.Millisecond {
		t.Fatalf("deadline %v (ok=%v), want capped at ~50ms", time.Until(dl), ok)
	}
}
