package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"time"

	"tdb/internal/dynamic"
	"tdb/internal/fault"
	"tdb/internal/wal"
)

// The durability layer (DESIGN.md §14). With Config.DataDir set, every
// acknowledged write batch is appended to a write-ahead log before the
// client hears "applied", and the maintainer's state is periodically
// checkpointed so the log stays short. Startup recovers: newest valid
// checkpoint, replay the record suffix (torn tail already truncated by
// wal.Recover), publish the recovered epoch before admitting traffic.
//
// Ordering on the write path is apply -> append -> acknowledge. A batch the
// WAL rejects is rolled back out of memory (the same epoch-plus-log rebuild
// that contains writer panics) and answered 500, so a failed batch exists in
// NEITHER memory nor the log — at-most-once, never half-durable. The
// reverse order (log first) would resurrect batches that never made it into
// memory.

// WAL record payload: one write batch.
//
//	growTo  u64
//	count   u32
//	count × (op u8, u u32, v u32)
const walRecordHeader = 12

func encodeWALRecord(growTo int, ups []dynamic.Update) []byte {
	buf := make([]byte, walRecordHeader, walRecordHeader+9*len(ups))
	binary.LittleEndian.PutUint64(buf[0:8], uint64(growTo))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(ups)))
	var b4 [4]byte
	for _, u := range ups {
		buf = append(buf, byte(u.Op))
		binary.LittleEndian.PutUint32(b4[:], uint32(u.U))
		buf = append(buf, b4[:]...)
		binary.LittleEndian.PutUint32(b4[:], uint32(u.V))
		buf = append(buf, b4[:]...)
	}
	return buf
}

func decodeWALRecord(payload []byte) (growTo int, ups []dynamic.Update, err error) {
	if len(payload) < walRecordHeader {
		return 0, nil, fmt.Errorf("record too short (%d bytes)", len(payload))
	}
	g := binary.LittleEndian.Uint64(payload[0:8])
	count := binary.LittleEndian.Uint32(payload[8:12])
	if g > uint64(1)<<31 {
		return 0, nil, fmt.Errorf("grow_to %d out of range", g)
	}
	if uint64(len(payload)-walRecordHeader) != uint64(count)*9 {
		return 0, nil, fmt.Errorf("record length %d does not match %d updates", len(payload), count)
	}
	ups = make([]dynamic.Update, count)
	off := walRecordHeader
	for i := range ups {
		op := dynamic.Op(payload[off])
		if op != dynamic.OpInsert && op != dynamic.OpDelete {
			return 0, nil, fmt.Errorf("update %d: unknown op byte %d", i, payload[off])
		}
		ups[i] = dynamic.Update{
			Op: op,
			U:  VID(binary.LittleEndian.Uint32(payload[off+1 : off+5])),
			V:  VID(binary.LittleEndian.Uint32(payload[off+5 : off+9])),
		}
		off += 9
	}
	return int(g), ups, nil
}

// openDurable recovers the maintainer from c.DataDir and opens the log for
// appending. Called by New before the first publish, so the recovered state
// is what readers see from the first request on. The order of durable steps
// matters: the post-recovery checkpoint is written BEFORE the new segment is
// created, preserving the invariant that records on disk always have a
// checkpoint at or below them to replay from.
func (s *Server) openDurable(c *Config) (*dynamic.Maintainer, error) {
	rec, err := wal.Recover(c.DataDir)
	if err != nil {
		return nil, err
	}
	var m *dynamic.Maintainer
	switch {
	case rec.Checkpoint != nil:
		m, err = dynamic.ReadState(bytes.NewReader(rec.Checkpoint))
		if err != nil {
			return nil, fmt.Errorf("server: loading checkpoint %d: %w", rec.CheckpointSeq, err)
		}
		if m.K() != c.K || m.MinLen() != c.MinLen {
			// Replaying k=5 history under k=7 would silently maintain a
			// different problem's cover; make the operator say what they mean.
			return nil, fmt.Errorf("server: data dir holds k=%d min_len=%d state, config asks for k=%d min_len=%d",
				m.K(), m.MinLen(), c.K, c.MinLen)
		}
	case len(rec.Records) > 0:
		// The server always writes a checkpoint before its first append, so
		// records without any loadable checkpoint mean the checkpoints were
		// destroyed — replaying from an empty graph would fabricate state.
		return nil, fmt.Errorf("server: data dir has %d WAL records but no valid checkpoint", len(rec.Records))
	case c.Seed != nil:
		m, err = dynamic.FromGraph(c.Seed, c.K, c.MinLen, c.SeedCover)
		if err != nil {
			return nil, err
		}
	default:
		m = dynamic.New(c.NumVertices, c.K, c.MinLen)
	}
	for _, r := range rec.Records {
		if err := replayRecord(m, r); err != nil {
			return nil, err
		}
	}
	s.walRecovered.Store(int64(len(rec.Records)))

	// Durable barrier: checkpoint the recovered state, then start the new
	// segment, then garbage-collect. A crash between any two steps leaves a
	// directory the same recovery handles.
	var state bytes.Buffer
	if err := m.WriteState(&state); err != nil {
		return nil, fmt.Errorf("server: serializing recovered state: %w", err)
	}
	if err := wal.WriteCheckpoint(c.DataDir, rec.LastSeq, state.Bytes()); err != nil {
		return nil, err
	}
	l, err := wal.Create(c.DataDir, rec.LastSeq+1, wal.Options{Fsync: c.Fsync, Interval: c.FsyncInterval})
	if err != nil {
		return nil, err
	}
	wal.RemoveObsolete(c.DataDir, l.SegmentStart(), rec.LastSeq)
	s.wal = l
	return m, nil
}

// replayRecord applies one recovered WAL record. A panic out of the
// maintenance code (or the chaos probe) is converted into an error so a
// poisoned record fails startup diagnosably instead of crashing it — the
// directory is untouched and a fixed binary can retry.
func replayRecord(m *dynamic.Maintainer, r wal.Record) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("server: replaying WAL record %d: panic: %v", r.Seq, p)
		}
	}()
	fault.Inject(fault.SiteServerRecoverReplay)
	growTo, ups, err := decodeWALRecord(r.Payload)
	if err != nil {
		return fmt.Errorf("server: WAL record %d: %w", r.Seq, err)
	}
	if growTo > m.NumVertices() {
		m.Grow(growTo)
	}
	if _, err := m.ApplyBatchChecked(ups); err != nil {
		// Unreachable for records this server wrote (batches are validated
		// before they are applied or logged), so this is corruption that
		// happened to pass the CRC — refuse it.
		return fmt.Errorf("server: WAL record %d does not apply: %w", r.Seq, err)
	}
	return nil
}

// maybeCheckpoint writes a snapshot checkpoint once enough updates have
// accumulated since the last one. Writer goroutine only.
func (s *Server) maybeCheckpoint() {
	if s.wal == nil || s.sinceCheckpoint < s.cfg.CheckpointEvery {
		return
	}
	s.checkpoint()
}

// checkpoint snapshots the maintainer, makes the snapshot durable, rotates
// the log and deletes what the snapshot made obsolete. Failure (or a panic
// out of the chaos probe) is contained: the server keeps serving on the
// previous checkpoint plus a longer log, and the failure counter surfaces
// the problem in /metrics. sinceCheckpoint is only reset on success, so the
// next batch retries.
func (s *Server) checkpoint() {
	defer func() {
		if p := recover(); p != nil {
			s.walCheckpointFails.Add(1)
		}
	}()
	start := time.Now()
	var buf bytes.Buffer
	if err := s.m.WriteState(&buf); err != nil {
		s.walCheckpointFails.Add(1)
		return
	}
	seq := s.wal.LastSeq() // every record <= seq is applied: same goroutine
	if err := wal.WriteCheckpoint(s.cfg.DataDir, seq, buf.Bytes()); err != nil {
		s.walCheckpointFails.Add(1)
		return
	}
	if err := s.wal.Rotate(); err != nil {
		// The checkpoint is durable but the fresh segment is not writable;
		// the log is sticky-failed and subsequent writes will be refused.
		s.walCheckpointFails.Add(1)
		return
	}
	wal.RemoveObsolete(s.cfg.DataDir, s.wal.SegmentStart(), seq)
	s.sinceCheckpoint = 0
	s.walCheckpoints.Add(1)
	s.walCheckpointNS.Store(time.Since(start).Nanoseconds())
}
