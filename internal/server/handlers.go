package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"tdb/internal/core"
	"tdb/internal/dynamic"
	"tdb/internal/fault"
)

// maxBodyBytes bounds request bodies; oversized batches are a client error,
// not an OOM.
const maxBodyBytes = 8 << 20

// Wire types. All endpoints speak JSON; vertex IDs are uint32.

// SolveRequest asks for a fresh minimal cover of the current epoch.
type SolveRequest struct {
	// K overrides the hop constraint (default: server K; capped by it).
	K int `json:"k,omitempty"`
	// MinLen overrides the minimum cycle length (default: server MinLen).
	MinLen int `json:"min_len,omitempty"`
	// Algorithm names a core algorithm ("TDB++", "BUR+", ...; default TDB++).
	Algorithm string `json:"algorithm,omitempty"`
	// DeadlineMS overrides the server's default deadline, capped by its
	// maximum. 0 means the default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// PartialOnDeadline switches this solve to degrade-instead-of-fail:
	// on deadline expiry a VALID conservative (non-minimal) cover is
	// returned with degraded=true instead of a 504. Unset defers to the
	// server's DegradeOnDeadline default.
	PartialOnDeadline *bool `json:"partial_on_deadline,omitempty"`
}

// SolveResponse is a solve outcome.
type SolveResponse struct {
	Epoch     uint64 `json:"epoch"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Cover     []VID  `json:"cover"`
	CoverSize int    `json:"cover_size"`
	// Degraded reports a deadline-degraded solve: Cover is valid but not
	// minimal (core.Stats.Degraded).
	Degraded   bool   `json:"degraded,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
	Algorithm  string `json:"algorithm"`
	DurationMS int64  `json:"duration_ms"`
}

// CycleRequest asks for one constrained cycle through a vertex.
type CycleRequest struct {
	Source     VID   `json:"source"`
	K          int   `json:"k,omitempty"`
	MinLen     int   `json:"min_len,omitempty"`
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// CycleResponse reports the found cycle, if any.
type CycleResponse struct {
	Epoch uint64 `json:"epoch"`
	Found bool   `json:"found"`
	Cycle []VID  `json:"cycle,omitempty"`
}

// HasCycleRequest asks whether any constrained cycle exists.
type HasCycleRequest struct {
	K          int   `json:"k,omitempty"`
	MinLen     int   `json:"min_len,omitempty"`
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// HasCycleResponse reports existence.
type HasCycleResponse struct {
	Epoch uint64 `json:"epoch"`
	Found bool   `json:"found"`
}

// CoverResponse is the maintained cover of the current epoch.
type CoverResponse struct {
	Epoch     uint64 `json:"epoch"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Cover     []VID  `json:"cover"`
	CoverSize int    `json:"cover_size"`
}

// UpdateOp is one edge operation on the wire.
type UpdateOp struct {
	// Op is "insert" or "delete".
	Op string `json:"op"`
	U  VID    `json:"u"`
	V  VID    `json:"v"`
}

// UpdateRequest submits a batch of edge updates to the writer.
type UpdateRequest struct {
	Updates []UpdateOp `json:"updates"`
	// GrowTo raises the vertex count before applying (0 = keep).
	GrowTo int `json:"grow_to,omitempty"`
	// Publish forces a fresh epoch after this batch.
	Publish bool `json:"publish,omitempty"`
	// Wait blocks the request until the batch is applied and reports the
	// outcome; otherwise the batch is acknowledged as queued (202).
	Wait bool `json:"wait,omitempty"`
}

// UpdateResponse reports a write outcome.
type UpdateResponse struct {
	Accepted bool `json:"accepted"`
	// Applied is set on waited requests.
	Applied    bool   `json:"applied,omitempty"`
	CoverAdded []VID  `json:"cover_added,omitempty"`
	Epoch      uint64 `json:"epoch,omitempty"`
	// WALSeq is the batch's write-ahead-log sequence number: under
	// fsync=always the batch is on stable storage when this is returned.
	// Zero when the server runs without a data dir.
	WALSeq uint64 `json:"wal_seq,omitempty"`
}

// StatsResponse is the server's counters.
type StatsResponse struct {
	Epoch           uint64 `json:"epoch"`
	EpochsLive      int64  `json:"epochs_live"`
	EpochsReclaimed int64  `json:"epochs_reclaimed"`
	Served          int64  `json:"served"`
	Shed            int64  `json:"shed"`
	Degraded        int64  `json:"degraded"`
	Deadlines       int64  `json:"deadlines"`
	Panics          int64  `json:"panics"`
	WriterPanics    int64  `json:"writer_panics"`
	WriterRestores  int64  `json:"writer_restores"`
	Draining        bool   `json:"draining"`

	// Durability counters, present when the server runs with a data dir.
	WALEnabled         bool   `json:"wal_enabled,omitempty"`
	WALLastSeq         uint64 `json:"wal_last_seq,omitempty"`
	WALAppends         int64  `json:"wal_appends,omitempty"`
	WALFsyncs          int64  `json:"wal_fsyncs,omitempty"`
	WALRecovered       int64  `json:"wal_recovered,omitempty"`
	WALCheckpoints     int64  `json:"wal_checkpoints,omitempty"`
	WALCheckpointFails int64  `json:"wal_checkpoint_failures,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // a broken client connection is not a server error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeJSON decodes a bounded request body strictly (unknown fields and
// trailing garbage are client errors).
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.wrap(http.MethodGet, false, s.handleHealthz))
	s.mux.HandleFunc("/v1/stats", s.wrap(http.MethodGet, false, s.handleStats))
	s.mux.HandleFunc("/metrics", s.wrap(http.MethodGet, false, s.handleMetrics))
	s.mux.HandleFunc("/v1/solve", s.wrap(http.MethodPost, true, s.handleSolve))
	s.mux.HandleFunc("/v1/cycle", s.wrap(http.MethodPost, true, s.handleCycle))
	s.mux.HandleFunc("/v1/hascycle", s.wrap(http.MethodPost, true, s.handleHasCycle))
	s.mux.HandleFunc("/v1/cover", s.wrap(http.MethodPost, true, s.handleCover))
	s.mux.HandleFunc("/v1/update", s.wrap(http.MethodPost, false, s.handleUpdate))
}

// wrap is the per-request robustness boundary: method check, admission
// (drain + reader tokens), fault-injection site, and panic recovery. A
// panicking handler is answered with 500 and the next request proceeds on a
// healthy server — pooled solver scratch is quarantined by the core layer,
// and the request's epoch reference is released by the handler's own defer
// during the unwind.
func (s *Server) wrap(method string, readerToken bool, fn func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, "use %s", method)
			return
		}
		release, status := s.admit(readerToken)
		if release == nil {
			if status == http.StatusServiceUnavailable {
				writeError(w, status, "draining")
			} else {
				writeError(w, status, "over capacity")
			}
			return
		}
		defer release()
		defer func() {
			if p := recover(); p != nil {
				s.panicCount.Add(1)
				writeError(w, http.StatusInternalServerError, "internal error: %v", p)
			}
		}()
		s.served.Add(1)
		if readerToken {
			fault.Inject(fault.SiteServerReader)
		}
		fn(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "epoch": s.ring.Current(), "draining": draining,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	resp := StatsResponse{
		Epoch:           s.ring.Current(),
		EpochsLive:      s.ring.Live(),
		EpochsReclaimed: s.ring.Reclaimed(),
		Served:          s.served.Load(),
		Shed:            s.shed.Load(),
		Degraded:        s.degradedCount.Load(),
		Deadlines:       s.deadlineCount.Load(),
		Panics:          s.panicCount.Load(),
		WriterPanics:    s.writerPanics.Load(),
		WriterRestores:  s.writerRestores.Load(),
		Draining:        draining,
	}
	if s.wal != nil {
		resp.WALEnabled = true
		resp.WALLastSeq = s.wal.LastSeq()
		resp.WALAppends = s.wal.Appends()
		resp.WALFsyncs = s.wal.Fsyncs()
		resp.WALRecovered = s.walRecovered.Load()
		resp.WALCheckpoints = s.walCheckpoints.Load()
		resp.WALCheckpointFails = s.walCheckpointFails.Load()
	}
	writeJSON(w, http.StatusOK, resp)
}

// solveParams validates and defaults the (k, minLen) pair against the
// server's constraint and the epoch graph.
func (s *Server) solveParams(k, minLen, n int) (int, int, error) {
	if minLen == 0 {
		minLen = s.cfg.MinLen
	}
	if k == 0 {
		k = s.cfg.K
	}
	if k < 0 || minLen < 2 {
		return 0, 0, fmt.Errorf("invalid constraint k=%d min_len=%d", k, minLen)
	}
	if k > s.cfg.K {
		// The maintained cover only guarantees [MinLen, K]; a longer-range
		// solve would silently answer a different problem per epoch.
		return 0, 0, fmt.Errorf("k=%d exceeds the server constraint K=%d", k, s.cfg.K)
	}
	if k < minLen {
		return 0, 0, fmt.Errorf("k=%d < min_len=%d", k, minLen)
	}
	// No simple cycle exceeds the vertex count; clamping keeps huge-k
	// requests cheap without changing answers.
	if k > n && n >= minLen {
		k = n
	}
	return k, minLen, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	algo := core.TDBPlusPlus
	if req.Algorithm != "" {
		var err error
		if algo, err = core.ParseAlgorithm(req.Algorithm); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	partial := s.cfg.DegradeOnDeadline
	if req.PartialOnDeadline != nil {
		partial = *req.PartialOnDeadline
	}
	ctx, cancel, err := s.requestContext(r, req.DeadlineMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()

	e := s.ring.Acquire()
	if e == nil {
		writeError(w, http.StatusServiceUnavailable, "no epoch published")
		return
	}
	defer e.Release()
	g := e.Graph()
	k, minLen, err := s.solveParams(req.K, req.MinLen, g.NumVertices())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	eng := e.Payload().(*core.Engine)
	start := time.Now()
	// Workers: 1 keeps execution on the sequential path Compute used to
	// take, but through the planning layer so Stats carries the full
	// execution profile (strategy, filter tier, storage) for the per-solve
	// metrics series.
	res, err := eng.Solve(ctx, core.SolveSpec{
		Algorithm: algo,
		Opts:      core.Options{K: k, MinLen: minLen, PartialOnDeadline: partial},
		Workers:   1,
	})
	if err != nil {
		var pe *core.PanicError
		if errors.As(err, &pe) {
			panic(pe) // solver worker died: surface through the 500 boundary
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if res.Stats.TimedOut {
		s.deadlineCount.Add(1)
		status := http.StatusGatewayTimeout
		if res.Stats.StopReason == "canceled" {
			// The client went away; the status is for the log's benefit.
			status = 499
		}
		writeError(w, status, "solve stopped (%s) before completion; retry with a longer deadline_ms or partial_on_deadline", res.Stats.StopReason)
		return
	}
	if res.Stats.Degraded {
		s.degradedCount.Add(1)
	}
	s.solves.observe(&res.Stats)
	writeJSON(w, http.StatusOK, SolveResponse{
		Epoch:      e.ID(),
		N:          g.NumVertices(),
		M:          g.NumEdges(),
		Cover:      res.Cover,
		CoverSize:  len(res.Cover),
		Degraded:   res.Stats.Degraded,
		StopReason: res.Stats.StopReason,
		Algorithm:  res.Stats.Algorithm,
		DurationMS: time.Since(start).Milliseconds(),
	})
}

func (s *Server) handleCycle(w http.ResponseWriter, r *http.Request) {
	var req CycleRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	ctx, cancel, err := s.requestContext(r, req.DeadlineMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	e := s.ring.Acquire()
	if e == nil {
		writeError(w, http.StatusServiceUnavailable, "no epoch published")
		return
	}
	defer e.Release()
	g := e.Graph()
	if int(req.Source) >= g.NumVertices() {
		writeError(w, http.StatusBadRequest, "source %d out of range (epoch has %d vertices)",
			req.Source, g.NumVertices())
		return
	}
	k, minLen, err := s.solveParams(req.K, req.MinLen, g.NumVertices())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if ctx.Err() != nil {
		s.deadlineCount.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline expired before the query ran")
		return
	}
	cyc := e.Payload().(*core.Engine).FindCycle(k, minLen, req.Source)
	writeJSON(w, http.StatusOK, CycleResponse{Epoch: e.ID(), Found: cyc != nil, Cycle: cyc})
}

func (s *Server) handleHasCycle(w http.ResponseWriter, r *http.Request) {
	var req HasCycleRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	ctx, cancel, err := s.requestContext(r, req.DeadlineMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	e := s.ring.Acquire()
	if e == nil {
		writeError(w, http.StatusServiceUnavailable, "no epoch published")
		return
	}
	defer e.Release()
	k, minLen, err := s.solveParams(req.K, req.MinLen, e.Graph().NumVertices())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if ctx.Err() != nil {
		s.deadlineCount.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline expired before the query ran")
		return
	}
	found := e.Payload().(*core.Engine).HasHopConstrainedCycle(k, minLen)
	writeJSON(w, http.StatusOK, HasCycleResponse{Epoch: e.ID(), Found: found})
}

func (s *Server) handleCover(w http.ResponseWriter, r *http.Request) {
	e := s.ring.Acquire()
	if e == nil {
		writeError(w, http.StatusServiceUnavailable, "no epoch published")
		return
	}
	defer e.Release()
	writeJSON(w, http.StatusOK, CoverResponse{
		Epoch:     e.ID(),
		N:         e.Graph().NumVertices(),
		M:         e.Graph().NumEdges(),
		Cover:     e.Cover(),
		CoverSize: len(e.Cover()),
	})
}

// parseUpdates converts wire updates, rejecting unknown ops up front so the
// writer only ever sees well-formed batches.
func parseUpdates(ops []UpdateOp) ([]dynamic.Update, error) {
	ups := make([]dynamic.Update, 0, len(ops))
	for i, op := range ops {
		switch op.Op {
		case "insert":
			ups = append(ups, dynamic.InsertOp(op.U, op.V))
		case "delete":
			ups = append(ups, dynamic.DeleteOp(op.U, op.V))
		default:
			return nil, fmt.Errorf("update %d: unknown op %q (want insert or delete)", i, op.Op)
		}
	}
	return ups, nil
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if len(req.Updates) == 0 && !req.Publish && req.GrowTo == 0 {
		writeError(w, http.StatusBadRequest, "empty update")
		return
	}
	if req.GrowTo < 0 || req.GrowTo > s.cfg.MaxVertices {
		writeError(w, http.StatusBadRequest, "grow_to %d out of range", req.GrowTo)
		return
	}
	ups, err := parseUpdates(req.Updates)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wr := &writeReq{updates: ups, growTo: req.GrowTo, publish: req.Publish}
	if req.Wait {
		wr.resp = make(chan writeResp, 1)
	}
	if !s.enqueueWrite(wr) {
		writeError(w, http.StatusTooManyRequests,
			"write queue full (%d pending)", cap(s.writeQ))
		return
	}
	if wr.resp == nil {
		writeJSON(w, http.StatusAccepted, UpdateResponse{Accepted: true})
		return
	}
	// The writer always answers every queued request — including during
	// shutdown, which closes the queue only after this handler returns — so
	// waiting here cannot deadlock.
	resp := <-wr.resp
	if resp.err != nil {
		// A batch the writer panicked on is a server fault; a batch the
		// validator rejected is a client fault.
		status := http.StatusBadRequest
		if resp.panicked {
			status = http.StatusInternalServerError
		}
		writeError(w, status, "%v", resp.err)
		return
	}
	writeJSON(w, http.StatusOK, UpdateResponse{
		Accepted: true, Applied: true, CoverAdded: resp.added,
		Epoch: resp.epoch, WALSeq: resp.walSeq,
	})
}
