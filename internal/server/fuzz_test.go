package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fuzzServer is shared across fuzz iterations: decoding robustness must not
// depend on a pristine server, and accepted updates deliberately accumulate
// so later iterations decode against a mutated maintainer. MaxVertices is
// tiny so a lucky grow_to cannot balloon memory.
var fuzzServer = sync.OnceValue(func() *Server {
	s, err := New(Config{
		NumVertices:     64,
		K:               5,
		MaxVertices:     1024,
		WriteQueue:      1024,
		DefaultDeadline: time.Second,
	})
	if err != nil {
		panic(err)
	}
	return s
})

// fuzzPost drives one raw body through a handler and fails the iteration if
// the request tripped the panic-recovery boundary (the server turns handler
// panics into 500s, which would otherwise mask a decode crash from the
// fuzzer) or produced a status outside the endpoint's contract.
func fuzzPost(t *testing.T, path string, body []byte, allowed ...int) {
	t.Helper()
	s := fuzzServer()
	before := s.panicCount.Load()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(body)))
	s.Handler().ServeHTTP(rec, req)
	if got := s.panicCount.Load(); got != before {
		t.Fatalf("%s body %q tripped the panic boundary", path, body)
	}
	for _, a := range allowed {
		if rec.Code == a {
			return
		}
	}
	t.Fatalf("%s body %q: status %d outside contract %v", path, body, rec.Code, allowed)
}

// FuzzSolveDecode throws arbitrary bytes at the solve endpoint: the decoder
// and parameter validation must reject garbage with 400 (or answer 200/504
// for inputs that happen to parse), never panic, never 500.
func FuzzSolveDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"k":3,"deadline_ms":10}`))
	f.Add([]byte(`{"k":-1}`))
	f.Add([]byte(`{"k":999999999}`))
	f.Add([]byte(`{"deadline_ms":-5}`))
	f.Add([]byte(`{"partial_on_deadline":true,"deadline_ms":1}`))
	f.Add([]byte(`{"k":1e309}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"k":3}{"k":4}`))
	f.Add([]byte("\x00\xff garbage"))
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzPost(t, "/v1/solve", body, 200, 400, 504)
	})
}

// FuzzUpdateDecode throws arbitrary bytes at the update endpoint: malformed
// JSON, unknown ops, out-of-range vertices and absurd grow_to must all be
// rejected with 400, never crash the writer or the decoder. (429 is allowed:
// fire-and-forget inputs that parse can legitimately fill the write queue.)
func FuzzUpdateDecode(f *testing.F) {
	f.Add([]byte(`{"updates":[{"op":"insert","u":0,"v":1}],"wait":true}`))
	f.Add([]byte(`{"updates":[{"op":"drop","u":0,"v":1}]}`))
	f.Add([]byte(`{"updates":[{"op":"insert","u":-1,"v":1}],"wait":true}`))
	f.Add([]byte(`{"updates":[{"op":"insert","u":4294967295,"v":0}],"wait":true}`))
	f.Add([]byte(`{"grow_to":2147483647}`))
	f.Add([]byte(`{"grow_to":-3}`))
	f.Add([]byte(`{"updates":[],"publish":false}`))
	f.Add([]byte(`{"updates":[{"op":"delete","u":0,"v":0}],"publish":true,"wait":true}`))
	f.Add([]byte(`nonsense`))
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzPost(t, "/v1/update", body, 200, 202, 400, 429)
	})
}
