package server

import (
	"fmt"
	"net/http"
	"strings"
)

// GET /metrics: the server's counters in the Prometheus text exposition
// format (version 0.0.4), hand-rolled — the format is a few lines of
// HELP/TYPE plus `name value`, not worth a client-library dependency. The
// series mirror /v1/stats; the WAL series appear only on durable servers so
// dashboards can alert on absence vs zero.

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()

	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	b01 := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}

	gauge("tdbserve_epoch", "Current published epoch ID.", float64(s.ring.Current()))
	gauge("tdbserve_epochs_live", "Snapshot epochs currently referenced.", float64(s.ring.Live()))
	counter("tdbserve_epochs_reclaimed_total", "Snapshot epochs reclaimed.", s.ring.Reclaimed())
	counter("tdbserve_requests_total", "Requests answered, any status.", s.served.Load())
	counter("tdbserve_shed_total", "Requests shed with 429 (readers and writers).", s.shed.Load())
	counter("tdbserve_degraded_total", "Solves answered with a degraded (valid, non-minimal) cover.", s.degradedCount.Load())
	counter("tdbserve_deadline_total", "Solves stopped by their deadline.", s.deadlineCount.Load())
	counter("tdbserve_panics_total", "Reader panics answered with 500.", s.panicCount.Load())
	counter("tdbserve_writer_panics_total", "Writer batches that panicked.", s.writerPanics.Load())
	counter("tdbserve_writer_restores_total", "Maintainer rebuilds after writer panics.", s.writerRestores.Load())
	gauge("tdbserve_draining", "1 while shutdown is draining requests.", b01(draining))
	gauge("tdbserve_wal_enabled", "1 when writes are durable (a data dir is configured).", b01(s.wal != nil))
	if s.wal != nil {
		counter("tdbserve_wal_appends_total", "Write batches appended to the WAL.", s.wal.Appends())
		counter("tdbserve_wal_fsyncs_total", "WAL fsyncs issued.", s.wal.Fsyncs())
		gauge("tdbserve_wal_last_seq", "Sequence number of the last logged batch.", float64(s.wal.LastSeq()))
		counter("tdbserve_wal_recovery_replayed_total", "WAL records replayed during startup recovery.", s.walRecovered.Load())
		counter("tdbserve_wal_checkpoints_total", "Snapshot checkpoints written.", s.walCheckpoints.Load())
		counter("tdbserve_wal_checkpoint_failures_total", "Checkpoint attempts that failed (server kept serving).", s.walCheckpointFails.Load())
		gauge("tdbserve_wal_last_checkpoint_duration_seconds", "Duration of the last successful checkpoint.", float64(s.walCheckpointNS.Load())/1e9)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
