package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"tdb/internal/core"
)

// solveLabels is one per-solve execution profile: the dimensions a
// dashboard slices solve traffic by. All values come out of core.Stats, so
// the cardinality is tiny and bounded (a handful of strategies × two
// filter tiers × three batch widths × the storage backends in use).
type solveLabels struct {
	strategy   string // execution strategy the planner selected
	filterTier string // "batched" (bit-parallel sweeps ran) or "scalar"
	batchWidth int    // lane-group capacity of the batched filter (0 scalar)
	storage    string // adjacency backend ("memory", "mapped", ...)
}

// solveSeries accumulates per-profile solve counts. A mutex-guarded map
// beats per-label atomics here: the observation is one map increment per
// completed solve, far off any hot path, and the label set is dynamic.
type solveSeries struct {
	mu     sync.Mutex
	counts map[solveLabels]int64
}

// observe records one completed solve's execution profile.
func (ss *solveSeries) observe(st *core.Stats) {
	l := solveLabels{
		strategy:   st.Strategy,
		filterTier: "scalar",
		batchWidth: st.FilterBatchWidth,
		storage:    st.Storage,
	}
	if st.FilterBatchWidth > 0 {
		l.filterTier = "batched"
	}
	ss.mu.Lock()
	if ss.counts == nil {
		ss.counts = make(map[solveLabels]int64)
	}
	ss.counts[l]++
	ss.mu.Unlock()
}

// write emits the series in the text exposition format, label sets sorted
// so consecutive scrapes are byte-stable.
func (ss *solveSeries) write(b *strings.Builder) {
	const name = "tdbserve_solves_total"
	fmt.Fprintf(b, "# HELP %s Completed solves by strategy, filter tier, batch width and storage backend.\n# TYPE %s counter\n", name, name)
	ss.mu.Lock()
	lines := make([]string, 0, len(ss.counts))
	for l, v := range ss.counts {
		lines = append(lines, fmt.Sprintf("%s{strategy=%q,filter_tier=%q,batch_width=%q,storage=%q} %d",
			name, l.strategy, l.filterTier, strconv.Itoa(l.batchWidth), l.storage, v))
	}
	ss.mu.Unlock()
	sort.Strings(lines)
	for _, ln := range lines {
		b.WriteString(ln)
		b.WriteByte('\n')
	}
}

// GET /metrics: the server's counters in the Prometheus text exposition
// format (version 0.0.4), hand-rolled — the format is a few lines of
// HELP/TYPE plus `name value`, not worth a client-library dependency. The
// series mirror /v1/stats; the WAL series appear only on durable servers so
// dashboards can alert on absence vs zero.

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()

	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	b01 := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}

	gauge("tdbserve_epoch", "Current published epoch ID.", float64(s.ring.Current()))
	gauge("tdbserve_epochs_live", "Snapshot epochs currently referenced.", float64(s.ring.Live()))
	counter("tdbserve_epochs_reclaimed_total", "Snapshot epochs reclaimed.", s.ring.Reclaimed())
	counter("tdbserve_requests_total", "Requests answered, any status.", s.served.Load())
	counter("tdbserve_shed_total", "Requests shed with 429 (readers and writers).", s.shed.Load())
	counter("tdbserve_degraded_total", "Solves answered with a degraded (valid, non-minimal) cover.", s.degradedCount.Load())
	counter("tdbserve_deadline_total", "Solves stopped by their deadline.", s.deadlineCount.Load())
	counter("tdbserve_panics_total", "Reader panics answered with 500.", s.panicCount.Load())
	counter("tdbserve_writer_panics_total", "Writer batches that panicked.", s.writerPanics.Load())
	counter("tdbserve_writer_restores_total", "Maintainer rebuilds after writer panics.", s.writerRestores.Load())
	gauge("tdbserve_draining", "1 while shutdown is draining requests.", b01(draining))
	s.solves.write(&b)
	gauge("tdbserve_wal_enabled", "1 when writes are durable (a data dir is configured).", b01(s.wal != nil))
	if s.wal != nil {
		counter("tdbserve_wal_appends_total", "Write batches appended to the WAL.", s.wal.Appends())
		counter("tdbserve_wal_fsyncs_total", "WAL fsyncs issued.", s.wal.Fsyncs())
		gauge("tdbserve_wal_last_seq", "Sequence number of the last logged batch.", float64(s.wal.LastSeq()))
		counter("tdbserve_wal_recovery_replayed_total", "WAL records replayed during startup recovery.", s.walRecovered.Load())
		counter("tdbserve_wal_checkpoints_total", "Snapshot checkpoints written.", s.walCheckpoints.Load())
		counter("tdbserve_wal_checkpoint_failures_total", "Checkpoint attempts that failed (server kept serving).", s.walCheckpointFails.Load())
		gauge("tdbserve_wal_last_checkpoint_duration_seconds", "Duration of the last successful checkpoint.", float64(s.walCheckpointNS.Load())/1e9)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
