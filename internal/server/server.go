// Package server implements tdbserve: a fault-tolerant concurrent query
// server over MVCC snapshots of a dynamic hop-constrained cycle cover.
//
// Architecture (DESIGN.md §12): ONE writer goroutine owns a
// dynamic.Maintainer and applies batched edge updates from a bounded queue;
// it periodically publishes immutable (graph, cover, engine) snapshots into
// a dynamic.EpochRing. Any number of reader requests acquire the current
// epoch, answer Solve / FindCycle / HasHopConstrainedCycle against it on a
// pooled core.Engine, and release it; per-epoch reference counts reclaim an
// epoch when the last reader lets go. Readers never lock against the writer
// and never observe a half-applied batch.
//
// Robustness layer:
//   - Admission control: a reader token bucket (MaxConcurrent) and a
//     bounded write queue (WriteQueue) shed excess load with 429 +
//     Retry-After instead of queueing unboundedly; the two pools are
//     separate so a write burst cannot starve readers or vice versa.
//   - Deadline propagation: every request runs under a context deadline
//     (server default, per-request override, hard cap), and solves can opt
//     into degrade-instead-of-fail (core.Options.PartialOnDeadline).
//   - Panic isolation: a panicking request is answered with 500 and the
//     process keeps serving; pooled solver scratch is quarantined by the
//     core layer, never returned poisoned. A panicking WRITER batch is
//     contained too: the maintainer is rebuilt from the last published
//     epoch plus the log of acknowledged-but-unpublished batches.
//   - Graceful shutdown: Shutdown stops admissions, waits for in-flight
//     requests, flushes and publishes the write queue, and only then
//     returns, so SIGTERM never drops acknowledged work.
package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tdb/internal/core"
	"tdb/internal/digraph"
	"tdb/internal/dynamic"
	"tdb/internal/wal"
)

// VID aliases digraph.VID.
type VID = digraph.VID

// Config configures a Server. Zero fields take the documented defaults.
type Config struct {
	// NumVertices is the initial vertex count of an empty server (ignored
	// when Seed is set). Vertices can be added later via the update
	// endpoint's grow_to field.
	NumVertices int
	// K is the server's hop constraint (required, >= MinLen): the
	// maintained cover covers cycles of length in [MinLen, K], and it is
	// the default (and maximum) k for per-request solves.
	K int
	// MinLen is the minimum covered cycle length (default 3).
	MinLen int
	// Seed, when non-nil, is the initial graph; SeedCover must then be a
	// valid cover of it (e.g. from core.Compute).
	Seed      digraph.Adjacency
	SeedCover []VID

	// DefaultDeadline bounds requests that do not ask for a deadline
	// (default 5s; negative disables the default).
	DefaultDeadline time.Duration
	// MaxDeadline caps per-request deadline overrides (default 30s).
	MaxDeadline time.Duration
	// MaxConcurrent is the reader admission limit (default 2*GOMAXPROCS).
	MaxConcurrent int
	// WriteQueue is the writer queue depth; a full queue sheds writes with
	// 429 (default 256).
	WriteQueue int
	// PublishEvery publishes a fresh epoch after this many applied updates
	// even without an explicit publish request (default 512).
	PublishEvery int
	// DegradeOnDeadline is the server-wide default for solve requests that
	// do not set partial_on_deadline: degraded valid cover instead of 504
	// when the deadline expires mid-solve.
	DegradeOnDeadline bool
	// MaxVertices caps grow_to requests (default 1<<31) so a single bad
	// update cannot balloon the maintainer's per-vertex state.
	MaxVertices int

	// DataDir, when non-empty, enables durable writes: acknowledged batches
	// are appended to a write-ahead log in this directory, snapshot
	// checkpoints truncate the log, and startup recovers the state found
	// there (a checkpoint in the directory wins over Seed; its k/min_len
	// must match the config).
	DataDir string
	// Fsync is the WAL sync policy (default wal.FsyncAlways: an
	// acknowledged write survives any crash).
	Fsync wal.Policy
	// FsyncInterval is the background sync cadence under wal.FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// CheckpointEvery writes a snapshot checkpoint after this many logged
	// updates (default 1024).
	CheckpointEvery int
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.MinLen == 0 {
		cfg.MinLen = 3
	}
	if cfg.K < cfg.MinLen {
		return cfg, fmt.Errorf("server: K=%d < MinLen=%d", cfg.K, cfg.MinLen)
	}
	if cfg.Seed != nil {
		cfg.NumVertices = cfg.Seed.NumVertices()
	}
	if cfg.NumVertices < 0 {
		return cfg, fmt.Errorf("server: negative NumVertices")
	}
	if cfg.DefaultDeadline == 0 {
		cfg.DefaultDeadline = 5 * time.Second
	}
	if cfg.MaxDeadline == 0 {
		cfg.MaxDeadline = 30 * time.Second
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.WriteQueue <= 0 {
		cfg.WriteQueue = 256
	}
	if cfg.PublishEvery <= 0 {
		cfg.PublishEvery = 512
	}
	if cfg.MaxVertices <= 0 {
		cfg.MaxVertices = 1 << 31
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1024
	}
	return cfg, nil
}

// writeReq is one queued write batch.
type writeReq struct {
	updates []dynamic.Update
	growTo  int
	publish bool
	// resp, when non-nil, receives the outcome (buffered, writer never
	// blocks); nil for fire-and-forget requests.
	resp chan writeResp
}

type writeResp struct {
	added []VID
	epoch uint64
	err   error
	// walSeq is the batch's WAL sequence number (0 when the server is not
	// durable or the batch changed nothing).
	walSeq uint64
	// panicked marks errors the writer recovered from (server faults, 500)
	// as opposed to validation rejections (client faults, 400).
	panicked bool
}

// Server is the query server. Create with New, mount Handler, stop with
// Shutdown.
type Server struct {
	cfg  Config
	ring *dynamic.EpochRing
	mux  *http.ServeMux

	// Reader admission tokens; acquiring is non-blocking (shed, don't queue).
	tokens chan struct{}

	// mu guards draining and pairs it with inflight.Add: a handler is
	// admitted (and counted) only while not draining, so inflight.Wait in
	// Shutdown races with no Add.
	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	writeQ     chan *writeReq
	writerDone chan struct{}

	// Writer-goroutine state (touched only by New before the writer starts,
	// then by the writer goroutine alone).
	m            *dynamic.Maintainer
	sincePublish int
	// appliedLog records acknowledged batches since the last publish so a
	// writer panic can rebuild the maintainer without losing them.
	appliedLog []dynamic.Update

	// Durability (nil wal when Config.DataDir is empty). The log handle is
	// written once by New; sinceCheckpoint belongs to the writer goroutine.
	wal             *wal.Log
	sinceCheckpoint int

	// counters
	served         atomic.Int64 // requests answered (any status)
	shed           atomic.Int64 // 429s (readers + writers)
	degradedCount  atomic.Int64 // solves answered degraded
	deadlineCount  atomic.Int64 // solves that hit their deadline (504s)
	panicCount     atomic.Int64 // reader panics answered with 500
	writerPanics   atomic.Int64 // writer batches that panicked
	writerRestores atomic.Int64 // maintainer rebuilds after writer panics

	walRecovered       atomic.Int64 // WAL records replayed at startup
	walCheckpoints     atomic.Int64 // checkpoints written since start
	walCheckpointFails atomic.Int64 // checkpoints that failed (server kept serving)
	walCheckpointNS    atomic.Int64 // duration of the last successful checkpoint

	// solves counts completed /v1/solve requests by execution profile
	// (strategy, filter tier, batch width, storage backend).
	solves solveSeries
}

// New validates cfg, seeds or recovers the maintainer (recovery when
// cfg.DataDir holds durable state), publishes the first epoch and starts the
// writer goroutine. Recovery completes — checkpoint loaded, record suffix
// replayed, fresh checkpoint durable — before the handler exists, so no
// request ever observes pre-recovery state.
func New(cfg Config) (*Server, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        c,
		ring:       dynamic.NewEpochRing(),
		tokens:     make(chan struct{}, c.MaxConcurrent),
		writeQ:     make(chan *writeReq, c.WriteQueue),
		writerDone: make(chan struct{}),
	}
	var m *dynamic.Maintainer
	switch {
	case c.DataDir != "":
		m, err = s.openDurable(&c)
		if err != nil {
			return nil, err
		}
	case c.Seed != nil:
		m, err = dynamic.FromGraph(c.Seed, c.K, c.MinLen, c.SeedCover)
		if err != nil {
			return nil, err
		}
	default:
		m = dynamic.New(c.NumVertices, c.K, c.MinLen)
	}
	s.m = m
	s.publish() // readers always find an epoch
	s.routes()
	go s.writerLoop()
	return s, nil
}

// Ring exposes the epoch ring (lifecycle hooks, leak audits in tests).
func (s *Server) Ring() *dynamic.EpochRing { return s.ring }

// Handler returns the HTTP handler serving the tdbserve API.
func (s *Server) Handler() http.Handler { return s.mux }

// publish snapshots the maintainer into a new epoch whose payload is a
// pooled solver engine over the snapshot. Writer goroutine only.
func (s *Server) publish() {
	s.m.PublishSnapshot(s.ring, func(g digraph.Adjacency, _ []VID) any {
		return core.NewEngine(g)
	})
	s.sincePublish = 0
	s.appliedLog = s.appliedLog[:0]
}

// writerLoop drains the write queue until Shutdown closes it, then takes a
// final snapshot so every acknowledged write is visible in the last epoch,
// and finally closes the WAL — Close fsyncs the tail regardless of policy,
// so a graceful shutdown never loses acknowledged records even under
// fsync=never.
func (s *Server) writerLoop() {
	defer close(s.writerDone)
	for req := range s.writeQ {
		resp := s.applyOne(req)
		if req.resp != nil {
			req.resp <- resp
		}
	}
	if s.sincePublish > 0 {
		s.publish()
	}
	if s.wal != nil {
		_ = s.wal.Close() // sticky error already surfaced on the write path
	}
}

// applyOne applies one batch with writer-panic containment: a panic
// anywhere in the maintenance code rolls the maintainer back to the last
// published epoch, replays the acknowledged-but-unpublished batches, and
// answers the poisoned batch with an error instead of dying.
func (s *Server) applyOne(req *writeReq) (resp writeResp) {
	defer func() {
		if p := recover(); p != nil {
			s.writerPanics.Add(1)
			s.restoreMaintainer()
			resp = writeResp{epoch: s.ring.Current(), panicked: true,
				err: fmt.Errorf("server: write batch failed: %v", p)}
		}
	}()
	if req.growTo > s.m.NumVertices() {
		s.m.Grow(req.growTo)
	}
	added, err := s.m.ApplyBatchChecked(req.updates)
	if err != nil {
		return writeResp{epoch: s.ring.Current(), err: err}
	}
	// Durability point: the batch is in memory but not yet acknowledged.
	// Log it before anything downstream can observe it as committed; if the
	// log refuses, roll memory back too (epoch + appliedLog rebuild, which
	// does not yet contain this batch) so the failed batch exists nowhere.
	var walSeq uint64
	if s.wal != nil && (len(req.updates) > 0 || req.growTo > 0) {
		// The record carries the maintainer's current vertex count, not the
		// request's grow_to: growth is monotone, so this makes every record
		// self-sufficient even when an earlier grow rode a batch that was
		// never acknowledged (and therefore never logged).
		walSeq, err = s.wal.Append(encodeWALRecord(s.m.NumVertices(), req.updates))
		if err != nil {
			s.restoreMaintainer()
			return writeResp{epoch: s.ring.Current(), panicked: true,
				err: fmt.Errorf("server: write not durable: %w", err)}
		}
		s.sinceCheckpoint += len(req.updates) + 1
	}
	s.appliedLog = append(s.appliedLog, req.updates...)
	s.sincePublish += len(req.updates)
	if req.publish || s.sincePublish >= s.cfg.PublishEvery {
		s.publish()
	}
	s.maybeCheckpoint()
	return writeResp{added: added, epoch: s.ring.Current(), walSeq: walSeq}
}

// restoreMaintainer rebuilds the writer's maintainer from the last
// published epoch and replays the acknowledged batches since. Replay is
// best-effort: if the log itself panics (it contains whatever poisoned the
// writer), the maintainer falls back to the bare epoch — still a valid
// (graph, cover) pair, just missing the unpublished tail.
func (s *Server) restoreMaintainer() {
	s.writerRestores.Add(1)
	e := s.ring.Acquire()
	var m *dynamic.Maintainer
	if e == nil {
		m = dynamic.New(s.cfg.NumVertices, s.cfg.K, s.cfg.MinLen)
	} else {
		var err error
		// The epoch graph is adopted as the immutable CSR base without
		// copying — safe to share with readers, the maintainer only overlays
		// deltas on it.
		m, err = dynamic.FromGraph(e.Graph(), s.cfg.K, s.cfg.MinLen, e.Cover())
		e.Release()
		if err != nil { // unreachable: the epoch's cover came from this graph
			m = dynamic.New(s.cfg.NumVertices, s.cfg.K, s.cfg.MinLen)
		}
	}
	grow := s.m.NumVertices()
	log := s.appliedLog
	s.m = m
	if grow > m.NumVertices() {
		m.Grow(grow)
	}
	s.sincePublish = 0
	s.appliedLog = nil
	if len(log) == 0 {
		return
	}
	func() {
		defer func() { recover() }() // drop the log if it re-panics
		if _, err := m.ApplyBatchChecked(log); err == nil {
			s.appliedLog = log
			s.sincePublish = len(log)
		}
	}()
}

// admit counts the request against shutdown draining and, for reader
// endpoints, the token bucket. It returns a non-nil release func on
// success, or an HTTP status to shed with.
func (s *Server) admit(readerToken bool) (release func(), status int) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, http.StatusServiceUnavailable
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	if !readerToken {
		return func() { s.inflight.Done() }, 0
	}
	select {
	case s.tokens <- struct{}{}:
		return func() { <-s.tokens; s.inflight.Done() }, 0
	default:
		s.inflight.Done()
		s.shed.Add(1)
		return nil, http.StatusTooManyRequests
	}
}

// requestContext derives the per-request deadline: the request's own
// deadline_ms when given, the server default otherwise, both capped by
// MaxDeadline.
func (s *Server) requestContext(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc, error) {
	if deadlineMS < 0 {
		return nil, nil, fmt.Errorf("negative deadline_ms %d", deadlineMS)
	}
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	if d <= 0 {
		ctx, cancel := context.WithCancel(r.Context())
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// Shutdown drains the server: stop admitting, wait for in-flight requests,
// close and flush the write queue (final epoch publish included), then
// return. Safe to call once; ctx bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		select {
		case <-s.writerDone:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	drained := make(chan struct{})
	go func() {
		// No Add can race this Wait: admission checks draining under mu.
		s.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return ctx.Err()
	}
	// No handler can be mid-send on writeQ anymore: sends happen inside the
	// inflight window.
	close(s.writeQ)
	select {
	case <-s.writerDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enqueueWrite submits a batch to the writer with back-pressure: a full
// queue sheds instead of blocking the handler.
func (s *Server) enqueueWrite(req *writeReq) bool {
	select {
	case s.writeQ <- req:
		return true
	default:
		s.shed.Add(1)
		return false
	}
}
