package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdb/internal/core"
	"tdb/internal/digraph"
	"tdb/internal/dynamic"
	"tdb/internal/fault"
	"tdb/internal/gen"
	"tdb/internal/verify"
)

// TestChaosSoak is the fault-injection soak for the whole serving stack:
// concurrent readers with randomized tight deadlines and mid-request
// cancels, writer bursts racing epoch publication, injected panics at the
// reader, solver and writer layers, and a slow reader pinning old epochs —
// all at once. The invariants that must hold regardless:
//
//   - every 200 solve response carries a cover that is VALID for the exact
//     epoch graph it was computed on (degraded or not);
//   - every published epoch is reclaimed exactly once, except the final
//     current one (no epoch leaks, no double reclaims);
//   - the process never dies, and shutdown drains cleanly;
//   - no goroutines leak.
func TestChaosSoak(t *testing.T) {
	// The soak runs once per storage backend: the mapped variant serves the
	// seed epoch's CSR out of a read-only memory mapping, so the whole
	// reader stack (and the writer's delta compaction) runs against a
	// non-Graph Adjacency.
	t.Run("memory", func(t *testing.T) { chaosSoak(t, false) })
	t.Run("mapped", func(t *testing.T) { chaosSoak(t, true) })
}

func chaosSoak(t *testing.T, mapped bool) {
	const (
		nVerts  = 250
		k       = 6
		readers = 6
		writers = 2
		readOps = 250 // per reader
		batches = 150 // per writer
	)
	g := gen.ErdosRenyi(nVerts, 4*nVerts, 77)
	var seed digraph.Adjacency = g
	if mapped {
		path := filepath.Join(t.TempDir(), "seed.tdbcsr")
		if err := digraph.WriteMapped(path, g); err != nil {
			t.Fatal(err)
		}
		mg, err := digraph.OpenMapped(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mg.Close() })
		seed = mg
	}
	res, err := core.Compute(seed, core.TDBPlusPlus, core.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	s, err := New(Config{
		K: k, Seed: seed, SeedCover: res.Cover,
		MaxConcurrent:   readers - 2, // fewer tokens than readers: shedding under full load
		WriteQueue:      16,          // some write shedding under bursts
		PublishEvery:    120,
		DefaultDeadline: 100 * time.Millisecond,
		MaxDeadline:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Epoch lifecycle audit. The hooks are installed before any traffic
	// (the writer is idle until the first update request), and epoch 1 —
	// published inside New — is recorded by hand.
	var epochs sync.Map // id -> *dynamic.Epoch
	var reclaims sync.Map
	e1 := s.Ring().Acquire()
	epochs.Store(e1.ID(), e1)
	e1.Release()
	s.Ring().OnPublish = func(e *dynamic.Epoch) { epochs.Store(e.ID(), e) }
	s.Ring().OnReclaim = func(e *dynamic.Epoch) {
		c, _ := reclaims.LoadOrStore(e.ID(), new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
	}

	// Injected faults: readers, the solver compute path, and writer batches
	// all panic with some probability. math/rand/v2's global functions are
	// safe for concurrent use.
	disarms := []func(){
		fault.Arm(fault.SiteServerReader, func() {
			switch {
			case rand.IntN(100) < 4:
				panic("chaos: reader")
			case rand.IntN(100) < 10:
				// Stall while holding an admission token so that the load
				// shedder actually trips under the concurrent readers.
				time.Sleep(time.Duration(rand.IntN(2000)) * time.Microsecond)
			}
		}),
		fault.Arm("core/compute", func() {
			if rand.IntN(100) < 3 {
				panic("chaos: solver")
			}
		}),
		fault.Arm("dynamic/apply-batch", func() {
			if rand.IntN(100) < 5 {
				panic("chaos: writer")
			}
		}),
	}
	defer func() {
		for _, d := range disarms {
			d()
		}
	}()

	type solveOutcome struct {
		epoch    uint64
		cover    []VID
		degraded bool
	}
	var (
		mu       sync.Mutex
		outcomes []solveOutcome
	)
	checkCode := func(kind string, code int, allowed ...int) {
		for _, a := range allowed {
			if code == a {
				return
			}
		}
		t.Errorf("%s: unexpected status %d", kind, code)
	}

	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id), 99))
			for i := 0; i < readOps; i++ {
				var body string
				path := "/v1/solve"
				switch rng.IntN(5) {
				case 0:
					path = "/v1/cycle"
					body = fmt.Sprintf(`{"source":%d}`, rng.IntN(nVerts))
				case 1:
					path = "/v1/hascycle"
					body = `{}`
				case 2:
					path = "/v1/cover"
					body = `{}`
				default:
					body = fmt.Sprintf(`{"deadline_ms":%d,"partial_on_deadline":%v}`,
						1+rng.IntN(30), rng.IntN(2) == 0)
				}
				req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
				ctx, cancel := context.WithCancel(req.Context())
				if rng.IntN(4) == 0 { // mid-request cancel storm
					tm := time.AfterFunc(time.Duration(rng.IntN(3000))*time.Microsecond, cancel)
					defer tm.Stop()
				}
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req.WithContext(ctx))
				cancel()
				checkCode("reader "+path, rec.Code, 200, 429, 499, 500, 504)
				if path == "/v1/solve" && rec.Code == 200 {
					var sr SolveResponse
					if err := json.NewDecoder(rec.Body).Decode(&sr); err != nil {
						t.Errorf("decoding solve response: %v", err)
						continue
					}
					mu.Lock()
					outcomes = append(outcomes, solveOutcome{sr.Epoch, sr.Cover, sr.Degraded})
					mu.Unlock()
				}
			}
		}(w)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id), 1234))
			for i := 0; i < batches; i++ {
				var ops []string
				for j := 0; j < 30; j++ {
					op := "insert"
					if rng.IntN(3) == 0 {
						op = "delete"
					}
					ops = append(ops, fmt.Sprintf(`{"op":%q,"u":%d,"v":%d}`,
						op, rng.IntN(nVerts), rng.IntN(nVerts)))
				}
				body := fmt.Sprintf(`{"updates":[%s],"publish":%v,"wait":%v}`,
					strings.Join(ops, ","), rng.IntN(3) == 0, rng.IntN(2) == 0)
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/update", strings.NewReader(body)))
				checkCode("writer", rec.Code, 200, 202, 429, 500)
			}
		}(w)
	}
	// A slow reader pinning epochs across many publishes: its pinned graph
	// must stay frozen while it holds the reference.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			e := s.Ring().Acquire()
			m0 := e.Graph().NumEdges()
			time.Sleep(2 * time.Millisecond)
			if e.Graph().NumEdges() != m0 {
				t.Error("pinned epoch graph changed size under churn")
			}
			if ok, witness := verify.IsValid(e.Graph(), k, 3, e.Cover()); !ok {
				t.Errorf("pinned epoch %d maintained cover invalid: surviving cycle %v", e.ID(), witness)
			}
			e.Release()
		}
	}()
	wg.Wait()

	// Drain; must always succeed.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under chaos: %v", err)
	}

	// Invariant: every 200 solve was a VALID cover of its epoch's graph.
	validated := 0
	for _, o := range outcomes {
		ev, ok := epochs.Load(o.epoch)
		if !ok {
			t.Fatalf("solve answered from unrecorded epoch %d", o.epoch)
		}
		eg := ev.(*dynamic.Epoch).Graph()
		if ok, witness := verify.IsValid(eg, k, 3, o.cover); !ok {
			t.Fatalf("epoch %d solve (degraded=%v) returned INVALID cover: surviving cycle %v",
				o.epoch, o.degraded, witness)
		}
		validated++
	}
	if validated == 0 {
		t.Fatal("soak produced no successful solves; chaos rates are drowning the test")
	}
	t.Logf("validated %d solve covers across %d epochs (stats: served=%d shed=%d degraded=%d deadlines=%d panics=%d writerPanics=%d restores=%d)",
		validated, s.Ring().Current(), s.served.Load(), s.shed.Load(), s.degradedCount.Load(),
		s.deadlineCount.Load(), s.panicCount.Load(), s.writerPanics.Load(), s.writerRestores.Load())

	// Invariant: no epoch leaks — everything but the final epoch reclaimed
	// exactly once.
	cur := s.Ring().Current()
	epochs.Range(func(key, _ any) bool {
		id := key.(uint64)
		c, ok := reclaims.Load(id)
		switch {
		case id == cur:
			if ok {
				t.Errorf("current epoch %d was reclaimed", id)
			}
		case !ok:
			t.Errorf("epoch %d leaked (never reclaimed)", id)
		default:
			if n := c.(*atomic.Int64).Load(); n != 1 {
				t.Errorf("epoch %d reclaimed %d times", id, n)
			}
		}
		return true
	})
	if live := s.Ring().Live(); live != 1 {
		t.Errorf("Live=%d after drain, want 1", live)
	}

	// Invariant: no goroutine leaks (pool workers exit with their runs; the
	// writer exited at drain).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d > baseline %d\n%s", got, baseline, buf[:runtime.Stack(buf, true)])
	}
}
