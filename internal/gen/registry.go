package gen

import (
	"fmt"
	"strings"

	"tdb/internal/digraph"
)

// Dataset is a named synthetic stand-in for one of the paper's Table II
// graphs. PaperV/PaperE/PaperAvgDeg record the sizes the paper reports;
// Generate produces a seeded graph with those sizes multiplied by a scale
// factor, matching the original's average degree and an approximate degree
// skew / edge reciprocity for its graph family (web, social, communication,
// p2p, ...). Reciprocity is the share of edges whose reverse also exists; it
// governs 2-cycle density, the quantity behind the paper's Table IV ratios.
type Dataset struct {
	Name        string
	Description string
	PaperV      int64
	PaperE      int64
	PaperAvgDeg float64
	Skew        float64 // PowerLaw skew parameter (1 = uniform)
	Reciprocity float64
	Seed        uint64
	// Large marks the four graphs (FLK, LJ, WKP, TW) that only TDB++
	// completes in the paper; the harness scales them down further.
	Large bool
}

// Generate builds the stand-in graph at the given scale factor
// (0 < scale <= 1; 1 reproduces the paper-reported sizes).
func (d Dataset) Generate(scale float64) *digraph.Graph {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("gen: dataset %s scale %v out of (0,1]", d.Name, scale))
	}
	n := int(float64(d.PaperV) * scale)
	if n < 16 {
		n = 16
	}
	m := int(float64(d.PaperE) * scale)
	if m < 4*n {
		// Preserve the average out-degree even at tiny scales; the degree
		// is what shapes cycle density. (Table II's davg counts in+out
		// degree, i.e. 2m/n; we preserve m/n.)
		m = int(float64(n) * float64(d.PaperE) / float64(d.PaperV))
	}
	if m < n {
		m = n
	}
	return PowerLaw(n, m, d.Skew, d.Reciprocity, d.Seed)
}

// datasets lists the paper's Table II in its original order. Skew and
// reciprocity are chosen per graph family:
//   - votes/endorsements (WKV): skewed, weakly reciprocal;
//   - internet topology (ASC): peering is mutual — high reciprocity, which
//     matches its extreme Table IV ratio (8.64);
//   - p2p overlays (GNU): near-random, almost no reciprocity (ratio 1.15);
//   - email/communication (EU, WIT): skewed, moderate reciprocity;
//   - social (SAD, FLK, LJ, TW): heavy hubs, high reciprocity;
//   - web (WND, WST, WGO, WBS): heavy hubs, moderate reciprocity;
//   - citation (CT): low reciprocity (citations rarely go both ways);
//   - loans (LOAN): dense transactional, low reciprocity.
var datasets = []Dataset{
	{Name: "WKV", Description: "Wiki-Vote", PaperV: 7_000, PaperE: 104_000, PaperAvgDeg: 29.1, Skew: 2.4, Reciprocity: 0.08, Seed: 1},
	{Name: "ASC", Description: "as-caida", PaperV: 26_000, PaperE: 107_000, PaperAvgDeg: 8.1, Skew: 2.8, Reciprocity: 0.55, Seed: 2},
	{Name: "GNU", Description: "Gnutella31", PaperV: 63_000, PaperE: 148_000, PaperAvgDeg: 4.7, Skew: 1.3, Reciprocity: 0.01, Seed: 3},
	{Name: "EU", Description: "Email-Euall", PaperV: 265_000, PaperE: 420_000, PaperAvgDeg: 3.2, Skew: 2.6, Reciprocity: 0.20, Seed: 4},
	{Name: "SAD", Description: "Slashdot0902", PaperV: 82_000, PaperE: 948_000, PaperAvgDeg: 23.1, Skew: 2.2, Reciprocity: 0.55, Seed: 5},
	{Name: "WND", Description: "web-NotreDame", PaperV: 325_000, PaperE: 1_500_000, PaperAvgDeg: 9.2, Skew: 3.0, Reciprocity: 0.30, Seed: 6},
	{Name: "CT", Description: "citeseer", PaperV: 384_000, PaperE: 1_700_000, PaperAvgDeg: 9.1, Skew: 1.8, Reciprocity: 0.05, Seed: 7},
	{Name: "WST", Description: "webStanford", PaperV: 281_000, PaperE: 2_300_000, PaperAvgDeg: 16.4, Skew: 2.8, Reciprocity: 0.28, Seed: 8},
	{Name: "LOAN", Description: "prosper-loans", PaperV: 89_000, PaperE: 3_400_000, PaperAvgDeg: 76.1, Skew: 2.0, Reciprocity: 0.03, Seed: 9},
	{Name: "WIT", Description: "Wiki-Talk", PaperV: 2_400_000, PaperE: 5_000_000, PaperAvgDeg: 4.2, Skew: 3.2, Reciprocity: 0.18, Seed: 10},
	{Name: "WGO", Description: "webGoogle", PaperV: 875_000, PaperE: 5_100_000, PaperAvgDeg: 11.7, Skew: 2.6, Reciprocity: 0.22, Seed: 11},
	{Name: "WBS", Description: "webBerkStan", PaperV: 685_000, PaperE: 7_600_000, PaperAvgDeg: 22.2, Skew: 3.0, Reciprocity: 0.28, Seed: 12},
	{Name: "FLK", Description: "Flickr", PaperV: 2_300_000, PaperE: 33_100_000, PaperAvgDeg: 28.8, Skew: 2.6, Reciprocity: 0.45, Seed: 13, Large: true},
	{Name: "LJ", Description: "LiveJournal", PaperV: 10_600_000, PaperE: 112_000_000, PaperAvgDeg: 21.0, Skew: 2.6, Reciprocity: 0.55, Seed: 14, Large: true},
	{Name: "WKP", Description: "Wikipedia", PaperV: 18_200_000, PaperE: 172_000_000, PaperAvgDeg: 18.85, Skew: 2.8, Reciprocity: 0.10, Seed: 15, Large: true},
	{Name: "TW", Description: "Twitter(WWW)", PaperV: 41_600_000, PaperE: 1_470_000_000, PaperAvgDeg: 70.5, Skew: 3.2, Reciprocity: 0.25, Seed: 16, Large: true},
}

// Datasets returns the 16 Table II stand-ins in paper order.
func Datasets() []Dataset {
	out := make([]Dataset, len(datasets))
	copy(out, datasets)
	return out
}

// StandardDatasets returns the 12 non-large datasets the paper uses for its
// k-sweep figures (Fig. 6 and 7).
func StandardDatasets() []Dataset {
	var out []Dataset
	for _, d := range datasets {
		if !d.Large {
			out = append(out, d)
		}
	}
	return out
}

// DatasetByName finds a dataset case-insensitively.
func DatasetByName(name string) (Dataset, bool) {
	for _, d := range datasets {
		if strings.EqualFold(d.Name, name) {
			return d, true
		}
	}
	return Dataset{}, false
}
