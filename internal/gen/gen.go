// Package gen produces the synthetic workloads for tests, examples, and the
// experiment harness.
//
// The paper evaluates on 16 real SNAP/KONECT graphs (its Table II). Those
// datasets are not available offline, so this repository substitutes seeded
// synthetic stand-ins with matched vertex count, edge count, degree skew and
// edge reciprocity (see registry.go and DESIGN.md section 4). The generators
// here are deliberately simple, fast and deterministic: every function is a
// pure function of its parameters and seed.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"tdb/internal/digraph"
)

// VID aliases digraph.VID.
type VID = digraph.VID

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// ErdosRenyi generates a directed G(n, m) graph: m distinct uniformly random
// directed edges, no self-loops. It panics if m exceeds n*(n-1).
func ErdosRenyi(n, m int, seed uint64) *digraph.Graph {
	if n < 2 && m > 0 {
		panic("gen: ErdosRenyi needs n >= 2 to place edges")
	}
	maxM := int64(n) * int64(n-1)
	if int64(m) > maxM {
		panic(fmt.Sprintf("gen: ErdosRenyi m=%d exceeds n(n-1)=%d", m, maxM))
	}
	rng := newRNG(seed)
	b := digraph.NewBuilder(n)
	seen := make(map[uint64]struct{}, m)
	for len(seen) < m {
		u := VID(rng.IntN(n))
		v := VID(rng.IntN(n))
		if u == v {
			continue
		}
		key := uint64(u)<<32 | uint64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// PowerLaw generates a directed graph with approximately m edges whose
// degree distribution is right-skewed, Chung–Lu style. Endpoints are drawn
// as floor(n * u^skew) for uniform u, which concentrates probability mass on
// low vertex IDs; skew = 1 is uniform, larger values produce heavier hubs
// (density ~ i^(1/skew - 1)). With probability reciprocity the reverse edge
// is also inserted, which controls the number of 2-cycles — the knob behind
// the paper's Table IV. Duplicates are merged, so the final edge count is
// slightly below the target on dense settings.
func PowerLaw(n, m int, skew, reciprocity float64, seed uint64) *digraph.Graph {
	if n < 2 {
		panic("gen: PowerLaw needs n >= 2")
	}
	if skew < 1 {
		panic("gen: PowerLaw skew must be >= 1")
	}
	rng := newRNG(seed)
	b := digraph.NewBuilder(n)
	// Relabel through a random permutation: without it, vertex ID would
	// correlate with degree (hubs at low IDs), which real datasets do not
	// exhibit and which would bias every order-sensitive algorithm.
	relabel := rng.Perm(n)
	draw := func() VID {
		x := math.Pow(rng.Float64(), skew)
		v := int(x * float64(n))
		if v >= n {
			v = n - 1
		}
		return VID(relabel[v])
	}
	// The reverse edges count toward the target, so issue forward draws
	// until the pending total reaches m.
	for b.NumPendingEdges() < m {
		u, v := draw(), draw()
		if u == v {
			continue
		}
		b.AddEdge(u, v)
		if reciprocity > 0 && rng.Float64() < reciprocity {
			b.AddEdge(v, u)
		}
	}
	return b.Build()
}

// SmallWorld generates a directed ring lattice with long-range chords: each
// vertex points at its next fwd successors, and with probability chordProb
// each vertex also receives one random backward chord (v -> v-j for a random
// j), which closes short cycles with the forward ring. This produces graphs
// rich in hop-constrained cycles of many lengths, the regime where the
// detectors' pruning matters most.
func SmallWorld(n, fwd int, chordProb float64, seed uint64) *digraph.Graph {
	if n < 3 {
		panic("gen: SmallWorld needs n >= 3")
	}
	if fwd < 1 || fwd >= n {
		panic("gen: SmallWorld fwd out of range")
	}
	rng := newRNG(seed)
	b := digraph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for d := 1; d <= fwd; d++ {
			b.AddEdge(VID(v), VID((v+d)%n))
		}
		if rng.Float64() < chordProb {
			j := 1 + rng.IntN(n-2)
			b.AddEdge(VID(v), VID((v-j+n)%n))
		}
	}
	return b.Build()
}

// Communities generates a planted-partition (SBM-style) digraph: numComm
// communities of size commSize; every ordered intra-community pair gets an
// edge with probability pIn, inter-community pairs with probability pOut.
// Intended for modest sizes (it enumerates ordered pairs).
func Communities(numComm, commSize int, pIn, pOut float64, seed uint64) *digraph.Graph {
	if numComm < 1 || commSize < 1 {
		panic("gen: Communities needs positive sizes")
	}
	n := numComm * commSize
	rng := newRNG(seed)
	b := digraph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			p := pOut
			if u/commSize == v/commSize {
				p = pIn
			}
			if rng.Float64() < p {
				b.AddEdge(VID(u), VID(v))
			}
		}
	}
	return b.Build()
}

// Planted is the output of PlantedCycles: the graph plus the ground-truth
// cycles that were implanted.
type Planted struct {
	Graph *digraph.Graph
	// Cycles lists each implanted cycle as its vertex sequence.
	Cycles [][]VID
}

// PlantedCycles implants numCycles vertex-disjoint directed cycles, with
// lengths drawn uniformly from [minLen, maxLen], into a sparse random
// background of bgEdges edges over n vertices. Background edges never run
// between two vertices of the same planted cycle, so every planted cycle is
// recoverable and, being vertex-disjoint, any valid cover has size >=
// numCycles when maxLen <= k. Panics if the cycles do not fit in n vertices.
func PlantedCycles(n, numCycles, minLen, maxLen, bgEdges int, seed uint64) *Planted {
	if minLen < 2 || maxLen < minLen {
		panic("gen: PlantedCycles bad length range")
	}
	if numCycles*maxLen > n {
		panic("gen: PlantedCycles cycles do not fit")
	}
	rng := newRNG(seed)
	perm := rng.Perm(n)
	b := digraph.NewBuilder(n)
	cycleOf := make([]int, n)
	for i := range cycleOf {
		cycleOf[i] = -1
	}
	p := &Planted{}
	next := 0
	for c := 0; c < numCycles; c++ {
		length := minLen + rng.IntN(maxLen-minLen+1)
		cyc := make([]VID, length)
		for i := 0; i < length; i++ {
			cyc[i] = VID(perm[next])
			cycleOf[perm[next]] = c
			next++
		}
		for i := 0; i < length; i++ {
			b.AddEdge(cyc[i], cyc[(i+1)%length])
		}
		p.Cycles = append(p.Cycles, cyc)
	}
	for e := 0; e < bgEdges; e++ {
		u := rng.IntN(n)
		v := rng.IntN(n)
		if u == v {
			continue
		}
		if cycleOf[u] != -1 && cycleOf[u] == cycleOf[v] {
			continue // keep planted cycles exactly as planted
		}
		b.AddEdge(VID(u), VID(v))
	}
	p.Graph = b.Build()
	return p
}

// UndirectedEdge is an undirected edge of a vertex-cover instance.
type UndirectedEdge struct {
	U, V VID
}

// Gadget is the output of VertexCoverGadget.
type Gadget struct {
	Graph *digraph.Graph
	// Virtual[i] is the ID of the helper vertex added for input edge i.
	Virtual []VID
	// N is the number of original vertices (IDs [0, N) are originals).
	N int
}

// VertexCoverGadget builds the paper's NP-hardness construction (Fig. 2,
// Theorem 2): for every undirected edge {u, v} it adds the bidirectional
// pair u<->v, a fresh virtual vertex u', and bidirectional pairs u<->u' and
// v<->u'. With k = 3 and 2-cycles excluded, the constrained cycles of the
// gadget are exactly the two orientations of each triangle {u, v, u'}, and a
// minimum hop-constrained cycle cover corresponds to a minimum vertex cover
// of the input. Used as a test oracle for optimality experiments.
func VertexCoverGadget(n int, edges []UndirectedEdge) *Gadget {
	b := digraph.NewBuilder(n + len(edges))
	g := &Gadget{N: n}
	for i, e := range edges {
		if int(e.U) >= n || int(e.V) >= n || e.U == e.V {
			panic(fmt.Sprintf("gen: bad undirected edge %v for n=%d", e, n))
		}
		virt := VID(n + i)
		g.Virtual = append(g.Virtual, virt)
		b.AddEdge(e.U, e.V)
		b.AddEdge(e.V, e.U)
		b.AddEdge(e.U, virt)
		b.AddEdge(virt, e.U)
		b.AddEdge(e.V, virt)
		b.AddEdge(virt, e.V)
	}
	g.Graph = b.Build()
	return g
}
