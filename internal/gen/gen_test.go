package gen

import (
	"reflect"
	"sort"
	"testing"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
)

func TestErdosRenyiExactM(t *testing.T) {
	g := ErdosRenyi(100, 500, 42)
	if g.NumVertices() != 100 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 500 {
		t.Fatalf("m = %d, want exactly 500", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.U == e.V {
			t.Fatalf("self-loop %v", e)
		}
	}
}

func TestErdosRenyiDense(t *testing.T) {
	// Full tournament-ish density must still terminate.
	g := ErdosRenyi(10, 90, 7)
	if g.NumEdges() != 90 {
		t.Fatalf("m = %d, want 90", g.NumEdges())
	}
}

func TestErdosRenyiPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m > n(n-1)")
		}
	}()
	ErdosRenyi(3, 7, 1)
}

func TestDeterminism(t *testing.T) {
	builders := []func() *digraph.Graph{
		func() *digraph.Graph { return ErdosRenyi(80, 300, 9) },
		func() *digraph.Graph { return PowerLaw(200, 1000, 2.5, 0.3, 9) },
		func() *digraph.Graph { return SmallWorld(120, 3, 0.4, 9) },
		func() *digraph.Graph { return Communities(4, 20, 0.2, 0.01, 9) },
		func() *digraph.Graph { return PlantedCycles(100, 5, 3, 6, 150, 9).Graph },
	}
	for i, f := range builders {
		a, b := f(), f()
		if !reflect.DeepEqual(a.Edges(), b.Edges()) {
			t.Fatalf("generator %d is not deterministic", i)
		}
	}
	// Different seeds should give different graphs.
	a := PowerLaw(200, 1000, 2.5, 0.3, 9)
	b := PowerLaw(200, 1000, 2.5, 0.3, 10)
	if reflect.DeepEqual(a.Edges(), b.Edges()) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func countTwoCycles(g *digraph.Graph) int {
	c := 0
	for _, e := range g.Edges() {
		if e.U < e.V && g.HasEdge(e.V, e.U) {
			c++
		}
	}
	return c
}

func TestPowerLawShape(t *testing.T) {
	g := PowerLaw(2000, 20000, 2.5, 0.0, 5)
	if got := g.NumEdges(); got < 18000 || got > 20000 {
		t.Fatalf("m = %d, want near 20000", got)
	}
	// Skewed draws concentrate degree on hubs: the top 10% of vertices by
	// out-degree must hold well over 10% of the edges. (IDs are shuffled,
	// so sort the degree sequence first.)
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.OutDegree(digraph.VID(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	var top int
	for _, d := range degs[:200] {
		top += d
	}
	if frac := float64(top) / float64(g.NumEdges()); frac < 0.3 {
		t.Fatalf("top-decile vertices hold only %.2f of out-edges; not skewed", frac)
	}
	// And IDs must NOT correlate with degree: the low-ID tenth should hold
	// roughly a tenth of the edges.
	var lowID int
	for v := 0; v < 200; v++ {
		lowID += g.OutDegree(digraph.VID(v))
	}
	if frac := float64(lowID) / float64(g.NumEdges()); frac > 0.2 {
		t.Fatalf("low-ID vertices hold %.2f of out-edges; IDs correlate with degree", frac)
	}
}

func TestPowerLawReciprocityControlsTwoCycles(t *testing.T) {
	lo := countTwoCycles(PowerLaw(1000, 8000, 2.0, 0.0, 3))
	hi := countTwoCycles(PowerLaw(1000, 8000, 2.0, 0.6, 3))
	if hi <= 4*lo+10 {
		t.Fatalf("reciprocity knob ineffective: lo=%d hi=%d", lo, hi)
	}
}

func TestSmallWorldHasShortCycles(t *testing.T) {
	g := SmallWorld(300, 2, 0.5, 11)
	found := 0
	det := cycle.NewPlainDetector(g, 6, 3, nil)
	for v := 0; v < g.NumVertices(); v++ {
		if det.HasCycleThrough(digraph.VID(v)) {
			found++
		}
	}
	if found < 20 {
		t.Fatalf("only %d vertices on short cycles; small-world generator too acyclic", found)
	}
}

func TestCommunitiesDensity(t *testing.T) {
	g := Communities(3, 30, 0.3, 0.005, 13)
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		if int(e.U)/30 == int(e.V)/30 {
			intra++
		} else {
			inter++
		}
	}
	// 3*30*29 = 2610 intra pairs at 0.3 ≈ 780; 5400 inter pairs at 0.005 ≈ 27.
	if intra < 500 || inter > 120 {
		t.Fatalf("intra=%d inter=%d; block structure missing", intra, inter)
	}
}

func TestPlantedCyclesRecoverable(t *testing.T) {
	p := PlantedCycles(200, 8, 3, 6, 300, 17)
	if len(p.Cycles) != 8 {
		t.Fatalf("planted %d cycles, want 8", len(p.Cycles))
	}
	seen := map[VID]bool{}
	for _, cyc := range p.Cycles {
		if len(cyc) < 3 || len(cyc) > 6 {
			t.Fatalf("cycle length %d outside [3,6]", len(cyc))
		}
		for i, v := range cyc {
			if seen[v] {
				t.Fatalf("cycles not vertex-disjoint at %d", v)
			}
			seen[v] = true
			if !p.Graph.HasEdge(v, cyc[(i+1)%len(cyc)]) {
				t.Fatalf("planted edge %d->%d missing", v, cyc[(i+1)%len(cyc)])
			}
		}
	}
}

func TestPlantedCyclesPanicsWhenTooMany(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when cycles do not fit")
		}
	}()
	PlantedCycles(10, 4, 3, 3, 0, 1)
}

func TestVertexCoverGadget(t *testing.T) {
	// Path a-b-c (two undirected edges).
	gad := VertexCoverGadget(3, []UndirectedEdge{{0, 1}, {1, 2}})
	g := gad.Graph
	if g.NumVertices() != 5 {
		t.Fatalf("n = %d, want 3 originals + 2 virtual", g.NumVertices())
	}
	if len(gad.Virtual) != 2 {
		t.Fatalf("virtual = %v", gad.Virtual)
	}
	// Constrained cycles at k=3 are exactly the two orientations of each
	// triangle {u, v, virtual}.
	cnt := cycle.NewEnumerator(g, 3, 3, nil).Count()
	if cnt != 4 {
		t.Fatalf("triangle-orientation count = %d, want 4", cnt)
	}
	// No constrained cycle survives removing vertex b=1 (the min vertex
	// cover of the path): b participates in every triangle.
	active := []bool{true, false, true, true, true}
	if cycle.NewEnumerator(g, 3, 3, active).HasAny() {
		t.Fatal("removing the vertex-cover vertex must break all triangles")
	}
}

func TestVertexCoverGadgetBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	VertexCoverGadget(2, []UndirectedEdge{{0, 5}})
}

func TestRegistry(t *testing.T) {
	all := Datasets()
	if len(all) != 16 {
		t.Fatalf("registry has %d datasets, want 16", len(all))
	}
	std := StandardDatasets()
	if len(std) != 12 {
		t.Fatalf("standard datasets = %d, want 12", len(std))
	}
	names := map[string]bool{}
	for _, d := range all {
		if names[d.Name] {
			t.Fatalf("duplicate dataset %s", d.Name)
		}
		names[d.Name] = true
		if d.PaperV <= 0 || d.PaperE <= 0 {
			t.Fatalf("%s: missing paper sizes", d.Name)
		}
	}
	for _, want := range []string{"WKV", "TW", "WGO"} {
		if _, ok := DatasetByName(want); !ok {
			t.Fatalf("dataset %s missing", want)
		}
	}
	if _, ok := DatasetByName("wkv"); !ok {
		t.Fatal("lookup should be case-insensitive")
	}
	if _, ok := DatasetByName("NOPE"); ok {
		t.Fatal("unknown dataset should not resolve")
	}
}

func TestRegistryGenerateScales(t *testing.T) {
	d, _ := DatasetByName("WKV")
	g := d.Generate(0.2)
	wantN := int(float64(d.PaperV) * 0.2)
	if g.NumVertices() != wantN {
		t.Fatalf("n = %d, want %d", g.NumVertices(), wantN)
	}
	// Average out-degree should be in the ballpark of the paper's m/n
	// (Table II's davg is total degree 2m/n).
	paperOut := float64(d.PaperE) / float64(d.PaperV)
	if got := g.AvgDegree(); got < paperOut*0.5 || got > paperOut*1.2 {
		t.Fatalf("avg out-degree %.1f, paper m/n %.1f", got, paperOut)
	}
	// Determinism across calls.
	g2 := d.Generate(0.2)
	if g.NumEdges() != g2.NumEdges() {
		t.Fatal("dataset generation not deterministic")
	}
	// Tiny scale keeps a sane floor.
	tiny := d.Generate(0.0001)
	if tiny.NumVertices() < 16 {
		t.Fatalf("tiny scale collapsed to n=%d", tiny.NumVertices())
	}
}

func TestRegistryGenerateBadScale(t *testing.T) {
	d, _ := DatasetByName("GNU")
	for _, s := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("scale %v: expected panic", s)
				}
			}()
			d.Generate(s)
		}()
	}
}
