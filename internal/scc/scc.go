// Package scc computes strongly connected components of a directed graph
// with an iterative Tarjan algorithm.
//
// SCCs are used as an optional prefilter for the cycle-cover algorithms:
// every directed cycle lies entirely inside one SCC, so a vertex whose SCC is
// trivial (a single vertex without a self-loop) can never appear on any
// cycle, hop-constrained or not, and is excluded from cover candidacy up
// front. The paper does not use this filter; it is ablated in the experiment
// harness (experiment "scc" in DESIGN.md).
package scc

import (
	"tdb/internal/digraph"
)

// Result describes an SCC decomposition.
type Result struct {
	// Comp[v] is the component ID of vertex v. IDs are dense in
	// [0, NumComponents) and assigned in reverse topological order of the
	// condensation (Tarjan's emission order).
	Comp []int32
	// Size[c] is the number of vertices in component c.
	Size []int32
}

// NumComponents returns the number of strongly connected components.
func (r *Result) NumComponents() int {
	return len(r.Size)
}

// InNontrivial reports whether v belongs to an SCC with at least two
// vertices, i.e. whether v can lie on a simple directed cycle of length >= 2.
func (r *Result) InNontrivial(v digraph.VID) bool {
	return r.Size[r.Comp[v]] >= 2
}

// CycleCandidates returns a mask with true for every vertex that lies in a
// non-trivial SCC. Only these vertices can participate in cycles.
func (r *Result) CycleCandidates() []bool {
	mask := make([]bool, len(r.Comp))
	for v := range r.Comp {
		mask[v] = r.Size[r.Comp[v]] >= 2
	}
	return mask
}

// Compute runs Tarjan's algorithm over the whole graph.
func Compute(g digraph.Adjacency) *Result {
	return ComputeMasked(g, nil)
}

// ComputeMasked runs Tarjan's algorithm over the subgraph induced by the
// active vertices. A nil mask means all vertices are active. Inactive
// vertices receive component -1.
func ComputeMasked(g digraph.Adjacency, active []bool) *Result {
	n := g.NumVertices()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onStack := make([]bool, n)
	for v := range index {
		index[v] = unvisited
		comp[v] = -1
	}

	var (
		next     int32
		stack    []digraph.VID // Tarjan's SCC stack
		sizes    []int32
		callV    []digraph.VID // explicit DFS call stack: vertex
		callEdge []int32       // and the next out-edge offset to resume at
	)

	for root := 0; root < n; root++ {
		if index[root] != unvisited || (active != nil && !active[root]) {
			continue
		}
		callV = append(callV[:0], digraph.VID(root))
		callEdge = append(callEdge[:0], 0)
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, digraph.VID(root))
		onStack[root] = true

		for len(callV) > 0 {
			v := callV[len(callV)-1]
			out := g.Out(v)
			advanced := false
			for ei := callEdge[len(callEdge)-1]; int(ei) < len(out); ei++ {
				w := out[ei]
				if active != nil && !active[w] {
					continue
				}
				if index[w] == unvisited {
					callEdge[len(callEdge)-1] = ei + 1
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callV = append(callV, w)
					callEdge = append(callEdge, 0)
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished: pop the call stack, maybe emit a component.
			callV = callV[:len(callV)-1]
			callEdge = callEdge[:len(callEdge)-1]
			if low[v] == index[v] {
				id := int32(len(sizes))
				var size int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = id
					size++
					if w == v {
						break
					}
				}
				sizes = append(sizes, size)
			}
			if len(callV) > 0 {
				parent := callV[len(callV)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return &Result{Comp: comp, Size: sizes}
}
