package scc

import (
	"math/rand/v2"
	"testing"

	"tdb/internal/digraph"
)

func edges(pairs ...[2]digraph.VID) []digraph.Edge {
	es := make([]digraph.Edge, len(pairs))
	for i, p := range pairs {
		es[i] = digraph.Edge{U: p[0], V: p[1]}
	}
	return es
}

func TestSingleCycle(t *testing.T) {
	g := digraph.FromEdges(3, edges([2]digraph.VID{0, 1}, [2]digraph.VID{1, 2}, [2]digraph.VID{2, 0}))
	r := Compute(g)
	if r.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", r.NumComponents())
	}
	for v := digraph.VID(0); v < 3; v++ {
		if !r.InNontrivial(v) {
			t.Fatalf("vertex %d should be in non-trivial SCC", v)
		}
	}
}

func TestDAG(t *testing.T) {
	g := digraph.FromEdges(4, edges([2]digraph.VID{0, 1}, [2]digraph.VID{1, 2}, [2]digraph.VID{2, 3}, [2]digraph.VID{0, 3}))
	r := Compute(g)
	if r.NumComponents() != 4 {
		t.Fatalf("components = %d, want 4", r.NumComponents())
	}
	for v := digraph.VID(0); v < 4; v++ {
		if r.InNontrivial(v) {
			t.Fatalf("vertex %d in a DAG should be trivial", v)
		}
	}
}

func TestTwoComponentsPlusBridge(t *testing.T) {
	// cycle {0,1,2}, cycle {3,4}, bridge 2->3, isolated 5
	g := digraph.FromEdges(6, edges(
		[2]digraph.VID{0, 1}, [2]digraph.VID{1, 2}, [2]digraph.VID{2, 0},
		[2]digraph.VID{3, 4}, [2]digraph.VID{4, 3},
		[2]digraph.VID{2, 3},
	))
	r := Compute(g)
	if r.NumComponents() != 3 {
		t.Fatalf("components = %d, want 3", r.NumComponents())
	}
	if r.Comp[0] != r.Comp[1] || r.Comp[1] != r.Comp[2] {
		t.Fatal("cycle {0,1,2} split")
	}
	if r.Comp[3] != r.Comp[4] {
		t.Fatal("cycle {3,4} split")
	}
	if r.Comp[0] == r.Comp[3] {
		t.Fatal("distinct cycles merged")
	}
	mask := r.CycleCandidates()
	want := []bool{true, true, true, true, true, false}
	for v, w := range want {
		if mask[v] != w {
			t.Fatalf("CycleCandidates[%d] = %v, want %v", v, mask[v], w)
		}
	}
}

func TestReverseTopologicalOrder(t *testing.T) {
	// 0 -> 1 -> 2 (three trivial SCCs). Tarjan emits sinks first, so
	// comp IDs should be a reverse topological order: comp[2] < comp[1] < comp[0].
	g := digraph.FromEdges(3, edges([2]digraph.VID{0, 1}, [2]digraph.VID{1, 2}))
	r := Compute(g)
	if !(r.Comp[2] < r.Comp[1] && r.Comp[1] < r.Comp[0]) {
		t.Fatalf("comp IDs not reverse topological: %v", r.Comp)
	}
}

func TestMasked(t *testing.T) {
	// cycle 0->1->2->0; deactivating 1 destroys it.
	g := digraph.FromEdges(3, edges([2]digraph.VID{0, 1}, [2]digraph.VID{1, 2}, [2]digraph.VID{2, 0}))
	r := ComputeMasked(g, []bool{true, false, true})
	if r.Comp[1] != -1 {
		t.Fatalf("inactive vertex got component %d", r.Comp[1])
	}
	if r.InNontrivial(0) || r.InNontrivial(2) {
		t.Fatal("masked cycle should be broken")
	}
}

// naiveSCC computes components by pairwise reachability.
func naiveSCC(g *digraph.Graph) [][]bool {
	n := g.NumVertices()
	reach := make([][]bool, n)
	for s := 0; s < n; s++ {
		reach[s] = make([]bool, n)
		reach[s][s] = true
		queue := []digraph.VID{digraph.VID(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Out(v) {
				if !reach[s][w] {
					reach[s][w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	same := make([][]bool, n)
	for u := 0; u < n; u++ {
		same[u] = make([]bool, n)
		for v := 0; v < n; v++ {
			same[u][v] = reach[u][v] && reach[v][u]
		}
	}
	return same
}

func TestAgainstNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for iter := 0; iter < 60; iter++ {
		n := 2 + rng.IntN(25)
		b := digraph.NewBuilder(n)
		m := rng.IntN(3 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(digraph.VID(rng.IntN(n)), digraph.VID(rng.IntN(n)))
		}
		g := b.Build()
		r := Compute(g)
		same := naiveSCC(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				got := r.Comp[u] == r.Comp[v]
				if got != same[u][v] {
					t.Fatalf("iter %d: vertices %d,%d same-component mismatch (tarjan=%v naive=%v)",
						iter, u, v, got, same[u][v])
				}
			}
		}
		// Size bookkeeping.
		counts := make([]int32, r.NumComponents())
		for _, c := range r.Comp {
			counts[c]++
		}
		for c, want := range counts {
			if r.Size[c] != want {
				t.Fatalf("iter %d: Size[%d] = %d, want %d", iter, c, r.Size[c], want)
			}
		}
	}
}

func TestDeepChainNoStackOverflow(t *testing.T) {
	// A 200k-vertex path plus a closing edge exercises the iterative DFS.
	n := 200_000
	b := digraph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(digraph.VID(v), digraph.VID(v+1))
	}
	b.AddEdge(digraph.VID(n-1), 0)
	g := b.Build()
	r := Compute(g)
	if r.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", r.NumComponents())
	}
	if int(r.Size[0]) != n {
		t.Fatalf("size = %d, want %d", r.Size[0], n)
	}
}
