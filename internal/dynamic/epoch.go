package dynamic

import (
	"sync/atomic"

	"tdb/internal/digraph"
)

// This file adds MVCC-style epoch publication on top of the Maintainer: a
// single writer periodically publishes immutable (graph, cover) snapshots
// into an EpochRing, and any number of readers acquire the current epoch,
// answer queries against it for as long as they like, and release it. An
// epoch stays alive — its graph and cover unreachable by neither writer nor
// GC — until the last reader releases it AND a newer epoch has been
// published, at which point it is reclaimed exactly once.
//
// The scheme is deliberately minimal: one atomic pointer for the current
// epoch and one reference counter per epoch. The only subtlety is the
// acquire/reclaim race — a reader may load the current-epoch pointer just
// as the writer swaps it out and the epoch's count falls to zero. Acquire
// therefore increments through a CAS loop that refuses counts <= 0 (an
// epoch at zero is already reclaimed and must never be revived) and
// re-loads the pointer on refusal; the retry terminates because the freshly
// published epoch carries the publisher's own reference and cannot hit zero
// while it is current.

// Epoch is one immutable published snapshot: a compacted CSR graph, a valid
// hop-constrained cycle cover of it, and an optional caller payload
// (tdbserve stores the per-epoch core.Engine). Safe for concurrent use; all
// accessors are read-only.
type Epoch struct {
	id      uint64
	graph   digraph.Adjacency
	cover   []VID
	payload any
	refs    atomic.Int64
	ring    *EpochRing
}

// ID returns the epoch's sequence number (1 for the ring's first epoch).
func (e *Epoch) ID() uint64 { return e.id }

// Graph returns the epoch's immutable compacted graph.
func (e *Epoch) Graph() digraph.Adjacency { return e.graph }

// Cover returns the epoch's cover. The slice is shared — callers must not
// modify it.
func (e *Epoch) Cover() []VID { return e.cover }

// Payload returns the value the publisher attached to this epoch.
func (e *Epoch) Payload() any { return e.payload }

// tryRef acquires one reference unless the epoch is already at zero
// (reclaimed or mid-reclaim) — a reclaimed epoch must never be revived.
func (e *Epoch) tryRef() bool {
	for {
		r := e.refs.Load()
		if r <= 0 {
			return false
		}
		if e.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release drops one reference. The reference that hits zero reclaims the
// epoch: it leaves the ring's live set and the OnReclaim hook (if any) runs
// on the releasing goroutine. Releasing more than acquired panics — the
// double release would otherwise silently reclaim an epoch other readers
// still hold.
func (e *Epoch) Release() {
	switch n := e.refs.Add(-1); {
	case n == 0:
		e.ring.live.Add(-1)
		e.ring.reclaimed.Add(1)
		if f := e.ring.OnReclaim; f != nil {
			f(e)
		}
	case n < 0:
		panic("dynamic: Epoch.Release without a matching reference")
	}
}

// EpochRing tracks the current epoch and the live set. The zero value is
// NOT ready; use NewEpochRing. Publish must be called from one goroutine at
// a time (the writer); Acquire/Release are safe from any number of
// goroutines.
type EpochRing struct {
	cur       atomic.Pointer[Epoch]
	nextID    atomic.Uint64
	live      atomic.Int64
	reclaimed atomic.Int64

	// OnPublish and OnReclaim, when non-nil, observe epoch lifecycle:
	// OnPublish runs on the publishing goroutine right after the new epoch
	// becomes current (before the previous epoch's publisher reference is
	// dropped), OnReclaim on whichever goroutine dropped an epoch's last
	// reference. Set them before the first Publish; they are read without
	// synchronization afterwards. The chaos suite uses them to audit that
	// every published epoch is reclaimed exactly once.
	OnPublish func(*Epoch)
	OnReclaim func(*Epoch)
}

// NewEpochRing creates an empty ring (no current epoch; Acquire returns
// nil until the first Publish).
func NewEpochRing() *EpochRing { return &EpochRing{} }

// Publish makes (g, cover, payload) the current epoch and returns it. The
// new epoch carries the publisher's reference — it cannot be reclaimed
// while current — and the previous epoch loses that reference, so it is
// reclaimed as soon as its last reader releases it (immediately, when it
// has none). The caller must not modify g or cover afterwards.
func (r *EpochRing) Publish(g digraph.Adjacency, cover []VID, payload any) *Epoch {
	e := &Epoch{id: r.nextID.Add(1), graph: g, cover: cover, payload: payload, ring: r}
	e.refs.Store(1) // the ring's own pin while the epoch is current
	r.live.Add(1)
	old := r.cur.Swap(e)
	if f := r.OnPublish; f != nil {
		f(e)
	}
	if old != nil {
		old.Release()
	}
	return e
}

// Acquire returns the current epoch with one reference held, or nil when
// nothing has been published yet. The caller must Release exactly once.
func (r *EpochRing) Acquire() *Epoch {
	for {
		e := r.cur.Load()
		if e == nil || e.tryRef() {
			return e
		}
		// The epoch was swapped out and reclaimed between the load and the
		// tryRef; the pointer has necessarily moved on, so reload.
	}
}

// Current returns the current epoch's ID, 0 when nothing is published.
func (r *EpochRing) Current() uint64 {
	if e := r.cur.Load(); e != nil {
		return e.id
	}
	return 0
}

// Live returns the number of published epochs not yet reclaimed (the
// current one plus epochs pinned by slow readers). A drained, idle ring
// holds exactly 1.
func (r *EpochRing) Live() int64 { return r.live.Load() }

// Reclaimed returns the total number of epochs reclaimed so far.
func (r *EpochRing) Reclaimed() int64 { return r.reclaimed.Load() }

// PublishSnapshot compacts the maintainer's current graph and cover and
// publishes them as a new epoch on ring. payload, when non-nil, builds the
// epoch's payload from the snapshot (e.g. a core.Engine over the compacted
// graph). Must be called from the maintainer's single writer.
func (m *Maintainer) PublishSnapshot(ring *EpochRing, payload func(g digraph.Adjacency, cover []VID) any) *Epoch {
	g := m.Snapshot()
	cover := m.Cover()
	var p any
	if payload != nil {
		p = payload(g, cover)
	}
	return ring.Publish(g, cover, p)
}
