package dynamic

// Bounded cycle-existence queries over the hybrid CSR+delta adjacency.
//
// The insertion-time question is: does the just-inserted edge (u, v) lie
// on a cycle of length in [minLen, k] whose other vertices are all
// uncovered? Equivalently, is there a simple uncovered path v -> ... -> u
// of length in [minLen-1, k-1]?
//
// Two tiers answer it:
//
//  1. A bounded BFS from v (the paper's BFS-filter traversal with the
//     covered vertices as the mask) computes d0, the shortest uncovered
//     path length to u. Shortest paths are simple, so d0 in
//     [minLen-1, k-1] certifies YES outright, and d0 > k-1 (or
//     unreachable) certifies NO — both in O(min(m, k-hop frontier)).
//  2. Only d0 < minLen-1 is ambiguous (a shorter-than-minLen walk exists,
//     e.g. the 2-cycle of the paper's Example 2 under minLen=3); that
//     remainder runs an iterative DFS pruned by exact backward BFS
//     distances (a state survives only if it can still close within the
//     hop budget), with explored states capped. On cap the answer is
//     conservatively YES: the caller covers an endpoint that may not be
//     necessary, keeping validity unconditional and leaving minimality to
//     the next Reminimize.
//
// All scratch is epoch-stamped: every traversal bumps its epoch, so marks
// abandoned by early returns are invalidated structurally — there is no
// unmark bookkeeping to get wrong (the seed maintainer leaked an on-path
// bit on exactly such a path).

// maxDFSStates caps the states the ambiguous-regime DFS may explore before
// giving a conservative answer. Bounded simple-path existence is NP-hard
// in general; the cap keeps the worst case linear while real workloads
// (shallow k, sparse uncovered regions) never come near it.
const maxDFSStates = 1 << 17

// pathFrame is one level of the iterative DFS stack; the frame's neighbor
// row lives in rows[depth].
type pathFrame struct {
	v   VID
	idx int
}

// edgeCreatesCycle reports whether a cycle of length in [minLen, k]
// through the edge (u, v) exists in the subgraph of uncovered vertices
// (both endpoints are uncovered by contract).
func (m *Maintainer) edgeCreatesCycle(u, v VID) bool {
	lo, hi := m.minLen-1, m.k-1
	d0 := m.shortestLivePath(v, u, hi)
	if d0 < 0 {
		return false // every return path is longer than k-1
	}
	if d0 >= lo {
		return true // the shortest path is simple: a certificate
	}
	return m.boundedPathDFS(v, u, lo, hi)
}

// shortestLivePath returns the length of the shortest path src -> dst over
// uncovered vertices (dst is touched only as the endpoint, never
// expanded), or -1 when every such path is longer than maxLen. Self-loops
// fall to the visited check.
func (m *Maintainer) shortestLivePath(src, dst VID, maxLen int) int {
	m.ensureScratch()
	mk := m.nextMark()
	m.mark[src] = mk
	q := append(m.queue[:0], src)
	next := m.nextQ[:0]
	found := -1
	for dist := 0; dist < maxLen && len(q) > 0 && found < 0; dist++ {
		next = next[:0]
		for _, u := range q {
			m.rowBuf = m.outInto(u, m.rowBuf[:0])
			for _, w := range m.rowBuf {
				if w == dst {
					found = dist + 1
					break
				}
				if m.covered[w] || m.mark[w] == mk {
					continue
				}
				m.mark[w] = mk
				next = append(next, w)
			}
			if found >= 0 {
				break
			}
		}
		q, next = next, q
	}
	m.queue, m.nextQ = q[:0], next[:0]
	return found
}

// boundedPathDFS reports whether a simple uncovered path src -> dst with
// length in [lo, hi] exists. Called only in the ambiguous regime (the
// shortest path is below lo). A backward BFS from dst first computes
// distB, the exact shortest uncovered completion x -> dst; the DFS then
// expands a state only if depth+1+distB <= hi, and returns a conservative
// true once maxDFSStates states were explored.
func (m *Maintainer) boundedPathDFS(src, dst VID, lo, hi int) bool {
	m.ensureScratch()

	// Backward distances up to hi-1 (every useful intermediate state needs
	// a completion of at most hi-1 hops).
	bk := m.nextBmark()
	m.bmark[dst] = bk
	m.distB[dst] = 0
	q := append(m.queue[:0], dst)
	next := m.nextQ[:0]
	for dist := 0; dist < hi-1 && len(q) > 0; dist++ {
		next = next[:0]
		for _, u := range q {
			m.rowBuf = m.inInto(u, m.rowBuf[:0])
			for _, w := range m.rowBuf {
				if m.covered[w] || m.bmark[w] == bk {
					continue
				}
				m.bmark[w] = bk
				m.distB[w] = int32(dist + 1)
				next = append(next, w)
			}
		}
		q, next = next, q
	}
	m.queue, m.nextQ = q[:0], next[:0]

	// Iterative bounded DFS. On-path marking uses the current mark epoch;
	// popping writes 0, which can never equal a live epoch.
	if len(m.rows) <= hi {
		m.rows = append(m.rows, make([][]VID, hi+1-len(m.rows))...)
	}
	mk := m.nextMark()
	m.mark[src] = mk
	m.rows[0] = m.outInto(src, m.rows[0][:0])
	m.stack = append(m.stack[:0], pathFrame{v: src})
	states := 0
	for len(m.stack) > 0 {
		depth := len(m.stack) - 1
		fr := &m.stack[depth]
		row := m.rows[depth]
		if fr.idx >= len(row) {
			m.mark[fr.v] = 0
			m.stack = m.stack[:depth]
			continue
		}
		w := row[fr.idx]
		fr.idx++
		if w == dst {
			if d := depth + 1; d >= lo && d <= hi {
				return true
			}
			continue // too short to close; dst never joins the path
		}
		if m.covered[w] || m.mark[w] == mk {
			continue
		}
		if m.bmark[w] != bk || depth+1+int(m.distB[w]) > hi {
			continue // cannot close within the hop budget
		}
		states++
		if states > maxDFSStates {
			return true // conservative: cover rather than keep searching
		}
		m.mark[w] = mk
		m.rows[depth+1] = m.outInto(w, m.rows[depth+1][:0])
		m.stack = append(m.stack, pathFrame{v: w})
	}
	return false
}

// outInto appends u's live out-neighbors to buf and returns it: the base
// CSR row minus tombstones, then the inserted delta row. After a
// compaction this is exactly the flat CSR row.
func (m *Maintainer) outInto(u VID, buf []VID) []VID {
	if int(u) < m.base.NumVertices() {
		buf = appendLive(buf, m.base.Out(u), m.delOut[u])
	}
	return append(buf, m.addOut[u]...)
}

// inInto is the backward counterpart of outInto.
func (m *Maintainer) inInto(u VID, buf []VID) []VID {
	if int(u) < m.base.NumVertices() {
		buf = appendLive(buf, m.base.In(u), m.delIn[u])
	}
	return append(buf, m.addIn[u]...)
}

// appendLive appends row minus dels to buf — a two-pointer merge over the
// two sorted lists.
func appendLive(buf, row, dels []VID) []VID {
	if len(dels) == 0 {
		return append(buf, row...)
	}
	j := 0
	for _, w := range row {
		for j < len(dels) && dels[j] < w {
			j++
		}
		if j < len(dels) && dels[j] == w {
			continue
		}
		buf = append(buf, w)
	}
	return buf
}

// ensureScratch sizes the traversal scratch to the current vertex count.
// Fresh arrays carry stamp 0, which no live epoch ever equals.
func (m *Maintainer) ensureScratch() {
	if len(m.mark) >= m.n {
		return
	}
	m.mark = make([]uint32, m.n)
	m.bmark = make([]uint32, m.n)
	m.distB = make([]int32, m.n)
}

// nextMark advances the forward/on-path epoch, clearing the stamps on the
// (once per 2^32 traversals) wraparound.
func (m *Maintainer) nextMark() uint32 {
	m.mepoch++
	if m.mepoch == 0 {
		clear(m.mark)
		m.mepoch = 1
	}
	return m.mepoch
}

// nextBmark advances the backward-distance epoch under the same rules.
func (m *Maintainer) nextBmark() uint32 {
	m.bepoch++
	if m.bepoch == 0 {
		clear(m.bmark)
		m.bepoch = 1
	}
	return m.bepoch
}
