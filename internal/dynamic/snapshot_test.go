package dynamic

import (
	"bytes"
	"math/rand"
	"testing"

	"tdb/internal/digraph"
	"tdb/internal/verify"
)

func randomMaintainer(t *testing.T, rng *rand.Rand, n, batches int) *Maintainer {
	t.Helper()
	m := New(n, 6, 3)
	for b := 0; b < batches; b++ {
		ups := make([]Update, 0, 8)
		for i := 0; i < 8; i++ {
			u := digraph.VID(rng.Intn(n))
			v := digraph.VID(rng.Intn(n))
			if rng.Intn(5) == 0 {
				ups = append(ups, DeleteOp(u, v))
			} else {
				ups = append(ups, InsertOp(u, v))
			}
		}
		if _, err := m.ApplyBatchChecked(ups); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestSnapshotRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomMaintainer(t, rng, 64, 40)

	var buf bytes.Buffer
	if err := m.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != m.K() || got.MinLen() != m.MinLen() || got.NumVertices() != m.NumVertices() {
		t.Fatalf("parameters: got (%d,%d,%d), want (%d,%d,%d)",
			got.K(), got.MinLen(), got.NumVertices(), m.K(), m.MinLen(), m.NumVertices())
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatalf("fingerprint mismatch after roundtrip: %x vs %x", got.Fingerprint(), m.Fingerprint())
	}
	if ok, bad := verify.IsValid(got.Snapshot(), got.K(), got.MinLen(), got.Cover()); !ok {
		t.Fatalf("restored cover is not valid for the restored graph (witness %v)", bad)
	}
	// The restored maintainer must evolve identically: apply the same batch
	// to both and re-compare.
	ups := []Update{InsertOp(1, 2), InsertOp(2, 3), InsertOp(3, 1), DeleteOp(0, 1)}
	if _, err := m.ApplyBatchChecked(ups); err != nil {
		t.Fatal(err)
	}
	if _, err := got.ApplyBatchChecked(ups); err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatal("fingerprints diverge after identical post-restore batch")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	m := randomMaintainer(t, rand.New(rand.NewSource(11)), 32, 10)
	var buf bytes.Buffer
	if err := m.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()

	cases := []struct {
		name string
		mod  func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0xab) }},
		{"k below minLen", func(b []byte) []byte { b[8] = 1; b[9] = 0; b[10] = 0; b[11] = 0; return b }},
		{"minLen below 2", func(b []byte) []byte { b[12] = 1; b[13] = 0; b[14] = 0; b[15] = 0; return b }},
		{"edge out of range", func(b []byte) []byte {
			// First edge endpoint lives right after magic+k+minLen+n+edges.
			off := 8 + 4 + 4 + 8 + 8
			for i := 0; i < 4; i++ {
				b[off+i] = 0xff
			}
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mod(append([]byte(nil), base...))
			if _, err := ReadState(bytes.NewReader(b)); err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
		})
	}
}

func TestSnapshotEmptyMaintainer(t *testing.T) {
	m := New(10, 4, 2)
	var buf bytes.Buffer
	if err := m.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 10 || got.NumEdges() != 0 || got.CoverSize() != 0 {
		t.Fatalf("empty roundtrip: n=%d m=%d cover=%d", got.NumVertices(), got.NumEdges(), got.CoverSize())
	}
}

func TestStateFingerprintSensitivity(t *testing.T) {
	m1 := New(8, 4, 2)
	m2 := New(8, 4, 2)
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Fatal("identical empty states hash differently")
	}
	if _, err := m1.ApplyBatchChecked([]Update{InsertOp(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if m1.Fingerprint() == m2.Fingerprint() {
		t.Fatal("edge insert did not change fingerprint")
	}
	m3 := New(8, 5, 2)
	if m3.Fingerprint() == m2.Fingerprint() {
		t.Fatal("k change did not change fingerprint")
	}
}
