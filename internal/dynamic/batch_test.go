package dynamic

import (
	"math/rand/v2"
	"testing"

	"tdb/internal/core"
	"tdb/internal/digraph"
	"tdb/internal/gen"
	"tdb/internal/verify"
)

// The headline regression: the seed maintainer's cycleThroughVertex marked
// s on-path and then skipped a self-loop neighbor without unmarking, so a
// cover vertex carrying a self-loop leaked onPath[s] = true out of
// Reminimize — every later search silently treated s as excluded and
// missed cycles through it. The scenario is deterministic: s's out-row
// holds only the self-loop and a covered neighbor (the old code never
// reset its mark list on either), Reminimize legitimately drops the
// cover, and the next closing insertion needs s as an INTERIOR vertex.
func TestSelfLoopCoverScratchLeak(t *testing.T) {
	b := digraph.NewBuilder(3)
	b.KeepSelfLoops = true
	b.AddEdge(0, 0) // the self-loop on the cover vertex
	b.AddEdge(0, 2)
	b.AddEdge(1, 0)
	g := b.Build()

	m, err := FromGraph(g, 5, 3, []VID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// No constrained cycle exists, so both cover vertices are redundant.
	if removed := m.Reminimize(); removed != 2 {
		t.Fatalf("Reminimize removed %d, want 2", removed)
	}
	if ok, w := verify.IsValid(m.Snapshot(), 5, 3, m.Cover()); !ok {
		t.Fatalf("cover invalid after reminimize, witness %v", w)
	}
	// Closing 0 -> 2 -> 1 -> 0 routes THROUGH vertex 0: a leaked on-path
	// bit on 0 makes the search skip it and miss the cycle.
	added := m.InsertEdge(2, 1)
	if added == -1 {
		t.Fatal("insertion closing a triangle through the self-looped vertex went undetected")
	}
	if ok, w := verify.IsValid(m.Snapshot(), 5, 3, m.Cover()); !ok {
		t.Fatalf("cover invalid after insertion, witness %v", w)
	}
}

// FromGraph must reject covers naming vertices the graph does not have
// instead of index-panicking later.
func TestFromGraphCoverOutOfRange(t *testing.T) {
	g := digraph.FromEdges(3, []digraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	if _, err := FromGraph(g, 5, 3, []VID{1, 99}); err == nil {
		t.Fatal("out-of-range cover vertex must be an error")
	}
	if _, err := FromGraph(g, 5, 3, []VID{1}); err != nil {
		t.Fatalf("in-range cover rejected: %v", err)
	}
}

// Deep hop constraint over a dense core: the seed maintainer's recursive
// simple-path DFS was exponential here; the rebuilt search must answer
// from the BFS certificate (or the capped, distance-pruned DFS) and keep
// the cover valid.
func TestDenseCoreDeepK(t *testing.T) {
	const n, core_, k = 80, 40, 8
	rng := rand.New(rand.NewPCG(9, 99))
	m := New(n, k, 3)
	for i := 0; i < 1200; i++ {
		u := VID(rng.IntN(core_))
		v := VID(rng.IntN(core_))
		if rng.IntN(4) == 0 { // a sparse halo around the dense core
			u, v = VID(core_+rng.IntN(n-core_)), VID(rng.IntN(core_))
		}
		m.InsertEdge(u, v)
	}
	if ok, w := verify.IsValid(m.Snapshot(), k, 3, m.Cover()); !ok {
		t.Fatalf("cover invalid on dense core, witness %v", w)
	}
	m.Reminimize()
	snap := digraph.Materialize(m.Snapshot())
	if ok, w := verify.IsValid(snap, k, 3, m.Cover()); !ok {
		t.Fatalf("cover invalid after reminimize, witness %v", w)
	}
	if ok, red := verify.IsMinimal(snap, k, 3, m.Cover()); !ok {
		t.Fatalf("cover not minimal after reminimize: %v", red)
	}
}

// ApplyBatch and the one-at-a-time surface must agree on the graph and
// both maintain valid covers (the covers themselves may differ: deferral
// reorders the queries).
func TestApplyBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 33))
	for iter := 0; iter < 10; iter++ {
		n := 8 + rng.IntN(20)
		k := 3 + rng.IntN(4)
		seq := New(n, k, 3)
		bat := New(n, k, 3)
		var updates []Update
		for step := 0; step < 300; step++ {
			u, v := VID(rng.IntN(n)), VID(rng.IntN(n))
			if rng.IntN(5) == 0 {
				updates = append(updates, DeleteOp(u, v))
			} else {
				updates = append(updates, InsertOp(u, v))
			}
		}
		for _, up := range updates {
			if up.Op == OpInsert {
				seq.InsertEdge(up.U, up.V)
			} else {
				seq.DeleteEdge(up.U, up.V)
			}
		}
		bat.ApplyBatch(updates)
		gs, gb := digraph.Materialize(seq.Snapshot()), digraph.Materialize(bat.Snapshot())
		if gs.NumEdges() != gb.NumEdges() || gs.String() != gb.String() {
			t.Fatalf("iter %d: graphs diverge: %v vs %v", iter, gs, gb)
		}
		for _, e := range gs.Edges() {
			if !gb.HasEdge(e.U, e.V) {
				t.Fatalf("iter %d: batch graph missing edge %v", iter, e)
			}
		}
		if ok, w := verify.IsValid(gs, k, 3, seq.Cover()); !ok {
			t.Fatalf("iter %d: sequential cover invalid, witness %v", iter, w)
		}
		if ok, w := verify.IsValid(gb, k, 3, bat.Cover()); !ok {
			t.Fatalf("iter %d: batch cover invalid, witness %v", iter, w)
		}
	}
}

// A batch wide enough to exercise multiple 64-lane filter words and the
// scalar re-check of every miss: 200 disjoint triangles closed in one
// ApplyBatch must yield exactly one cover vertex per triangle.
func TestApplyBatchManyTriangles(t *testing.T) {
	const tris = 200
	m := New(3*tris, 5, 3)
	var closing []Update
	for i := 0; i < tris; i++ {
		a, b, c := VID(3*i), VID(3*i+1), VID(3*i+2)
		m.InsertEdge(a, b)
		m.InsertEdge(b, c)
		closing = append(closing, InsertOp(c, a))
	}
	if m.CoverSize() != 0 {
		t.Fatalf("no cycles yet, cover size %d", m.CoverSize())
	}
	added := m.ApplyBatch(closing)
	if len(added) != tris || m.CoverSize() != tris {
		t.Fatalf("closed %d triangles, got %d additions (cover %d)", tris, len(added), m.CoverSize())
	}
	if ok, w := verify.IsValid(m.Snapshot(), 5, 3, m.Cover()); !ok {
		t.Fatalf("cover invalid, witness %v", w)
	}
}

// Deleting a base edge, re-inserting it, and compacting must round-trip
// through the tombstone layer without losing or duplicating edges.
func TestDeltaTombstoneRoundTrip(t *testing.T) {
	g := digraph.FromEdges(4, []digraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}})
	m, err := FromGraph(g, 5, 3, []VID{0})
	if err != nil {
		t.Fatal(err)
	}
	if !m.DeleteEdge(1, 2) || m.HasEdge(1, 2) || m.NumEdges() != 3 {
		t.Fatal("tombstone delete failed")
	}
	if m.DeleteEdge(1, 2) {
		t.Fatal("double delete must report false")
	}
	// Re-inserting cancels the tombstone. The re-closed triangle runs
	// through the covered vertex 0, so the search must find no uncovered
	// cycle and leave the cover alone.
	if m.InsertEdge(1, 2) != -1 {
		t.Fatal("re-insert must not grow the cover: the only cycle runs through the covered vertex")
	}
	if !m.HasEdge(1, 2) || m.NumEdges() != 4 {
		t.Fatal("tombstone cancel failed")
	}
	snap := digraph.Materialize(m.Snapshot())
	if snap.NumEdges() != 4 || !snap.HasEdge(1, 2) {
		t.Fatalf("compaction lost edges: %v", snap)
	}
	// And dropping a delta-inserted edge before compaction.
	m.InsertEdge(3, 0)
	if !m.DeleteEdge(3, 0) || m.HasEdge(3, 0) {
		t.Fatal("delta delete failed")
	}
	if got := m.Snapshot().NumEdges(); got != 4 {
		t.Fatalf("edge count after delta round trip = %d, want 4", got)
	}
}

// The central streaming property: a maintainer driven by a random
// insert/delete/Reminimize stream — self-loops, batches and mid-stream
// Grow included — keeps a cover that verify accepts after every batch,
// cross-checked against a fresh static solve on the final snapshot.
func TestBatchChurnPropertyStream(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 111))
	for iter := 0; iter < 8; iter++ {
		n := 10 + rng.IntN(20)
		k := 3 + rng.IntN(5)
		// Seed with a graph that carries self-loops, as real snapshots do.
		b := digraph.NewBuilder(n)
		b.KeepSelfLoops = true
		for i := 0; i < n; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		g := b.Build()
		res, err := core.Compute(g, core.TDBPlusPlus, core.Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		m, err := FromGraph(g, k, 3, res.Cover)
		if err != nil {
			t.Fatal(err)
		}
		var present []digraph.Edge
		for _, e := range g.Edges() {
			present = append(present, e)
		}
		for batch := 0; batch < 12; batch++ {
			var ups []Update
			for step := 0; step < 40; step++ {
				switch {
				case len(present) > 0 && rng.IntN(4) == 0:
					i := rng.IntN(len(present))
					e := present[i]
					ups = append(ups, DeleteOp(e.U, e.V))
					present[i] = present[len(present)-1]
					present = present[:len(present)-1]
				case rng.IntN(20) == 0: // self-loop insert attempts are no-ops
					v := VID(rng.IntN(m.NumVertices()))
					ups = append(ups, InsertOp(v, v))
				default:
					u := VID(rng.IntN(m.NumVertices()))
					v := VID(rng.IntN(m.NumVertices()))
					ups = append(ups, InsertOp(u, v))
					if u != v {
						present = append(present, digraph.Edge{U: u, V: v})
					}
				}
			}
			if batch == 5 { // mid-stream growth
				m.Grow(m.NumVertices() + 5)
			}
			m.ApplyBatch(ups)
			// present may hold duplicates/stale entries; that only makes
			// some updates no-ops, which is part of the property.
			if ok, w := verify.IsValid(m.Snapshot(), k, 3, m.Cover()); !ok {
				t.Fatalf("iter %d batch %d: cover invalid, witness %v", iter, batch, w)
			}
			if batch%4 == 3 {
				m.Reminimize()
				snap := digraph.Materialize(m.Snapshot())
				if ok, w := verify.IsValid(snap, k, 3, m.Cover()); !ok {
					t.Fatalf("iter %d batch %d: invalid after reminimize, witness %v", iter, batch, w)
				}
				if ok, red := verify.IsMinimal(snap, k, 3, m.Cover()); !ok {
					t.Fatalf("iter %d batch %d: not minimal after reminimize: %v", iter, batch, red)
				}
			}
		}
		// Cross-check against the static solver on the final snapshot.
		snap := digraph.Materialize(m.Snapshot())
		res2, err := core.Compute(snap, core.TDBPlusPlus, core.Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if ok, w := verify.IsValid(snap, k, 3, res2.Cover); !ok {
			t.Fatalf("iter %d: static cover invalid on maintained snapshot, witness %v", iter, w)
		}
		if ok, w := verify.IsValid(snap, k, 3, m.Cover()); !ok {
			t.Fatalf("iter %d: maintained cover invalid on final snapshot, witness %v", iter, w)
		}
	}
}

// Reminimize after deletions must only re-test the dirty region, and the
// result must match what a full pass would produce on a power-law graph.
func TestDirtyRegionReminimize(t *testing.T) {
	g := gen.PowerLaw(400, 2400, 2.2, 0.3, 21)
	res, err := core.Compute(g, core.TDBPlusPlus, core.Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromGraph(g, 5, 3, res.Cover)
	if err != nil {
		t.Fatal(err)
	}
	m.Reminimize() // first pass is full; arms dirty-region tracking

	rng := rand.New(rand.NewPCG(8, 88))
	for round := 0; round < 6; round++ {
		// Delete a slice of edges, then insert a few fresh ones.
		for _, e := range g.Edges() {
			if rng.IntN(10) == 0 {
				m.DeleteEdge(e.U, e.V)
			}
		}
		for i := 0; i < 30; i++ {
			m.InsertEdge(VID(rng.IntN(400)), VID(rng.IntN(400)))
		}
		m.Reminimize()
		snap := digraph.Materialize(m.Snapshot())
		if ok, w := verify.IsValid(snap, 5, 3, m.Cover()); !ok {
			t.Fatalf("round %d: invalid after dirty reminimize, witness %v", round, w)
		}
		if ok, red := verify.IsMinimal(snap, 5, 3, m.Cover()); !ok {
			t.Fatalf("round %d: dirty reminimize missed redundant vertices %v", round, red)
		}
	}
}

// A second Reminimize with no intervening updates must be a no-op that
// skips the pass entirely (the dirty set is empty).
func TestReminimizeIdempotentFast(t *testing.T) {
	m := New(3, 5, 3)
	m.InsertEdge(0, 1)
	m.InsertEdge(1, 2)
	m.InsertEdge(2, 0)
	m.Reminimize()
	_, _, checksBefore, _ := m.Stats()
	if removed := m.Reminimize(); removed != 0 {
		t.Fatalf("idle reminimize removed %d", removed)
	}
	if _, _, checksAfter, _ := m.Stats(); checksAfter != checksBefore {
		t.Fatalf("idle reminimize ran %d cycle checks", checksAfter-checksBefore)
	}
}
