package dynamic

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"tdb/internal/core"
	"tdb/internal/digraph"
	"tdb/internal/gen"
	"tdb/internal/verify"
)

func ringGraph(n int) *digraph.Graph {
	b := digraph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(VID(i), VID((i+1)%n))
	}
	return b.Build()
}

func TestEpochPublishAcquireRelease(t *testing.T) {
	r := NewEpochRing()
	if e := r.Acquire(); e != nil {
		t.Fatalf("empty ring acquired epoch %d", e.ID())
	}
	if r.Current() != 0 || r.Live() != 0 {
		t.Fatalf("empty ring: Current=%d Live=%d", r.Current(), r.Live())
	}

	g1 := ringGraph(4)
	e1 := r.Publish(g1, []VID{0}, "p1")
	if e1.ID() != 1 || r.Current() != 1 || r.Live() != 1 {
		t.Fatalf("after first publish: id=%d Current=%d Live=%d", e1.ID(), r.Current(), r.Live())
	}
	got := r.Acquire()
	if got != e1 || got.Graph() != g1 || got.Payload() != "p1" {
		t.Fatal("Acquire did not return the published epoch")
	}

	// A second publish drops the ring's pin on e1; the reader's reference
	// keeps it alive until released.
	r.Publish(ringGraph(5), []VID{1}, "p2")
	if r.Live() != 2 || r.Reclaimed() != 0 {
		t.Fatalf("pinned old epoch: Live=%d Reclaimed=%d, want 2/0", r.Live(), r.Reclaimed())
	}
	got.Release()
	if r.Live() != 1 || r.Reclaimed() != 1 {
		t.Fatalf("after release: Live=%d Reclaimed=%d, want 1/1", r.Live(), r.Reclaimed())
	}
}

func TestEpochUnpinnedPredecessorReclaimedOnPublish(t *testing.T) {
	r := NewEpochRing()
	var reclaimed []uint64
	r.OnReclaim = func(e *Epoch) { reclaimed = append(reclaimed, e.ID()) }
	r.Publish(ringGraph(3), []VID{0}, nil)
	r.Publish(ringGraph(3), []VID{0}, nil)
	r.Publish(ringGraph(3), []VID{0}, nil)
	if r.Live() != 1 {
		t.Fatalf("Live=%d after three reader-less publishes, want 1", r.Live())
	}
	if len(reclaimed) != 2 || reclaimed[0] != 1 || reclaimed[1] != 2 {
		t.Fatalf("reclaim order %v, want [1 2]", reclaimed)
	}
}

func TestEpochDoubleReleasePanics(t *testing.T) {
	r := NewEpochRing()
	r.Publish(ringGraph(3), []VID{0}, nil)
	e := r.Acquire()
	e.Release()
	r.Publish(ringGraph(3), []VID{0}, nil) // e fully reclaimed here
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	e.Release()
}

// TestEpochAcquireReclaimRace hammers the acquire/reclaim window: a writer
// publishing in a tight loop against many readers acquiring and releasing.
// Every published epoch must be reclaimed exactly once (audited through the
// lifecycle hooks), except the final current one.
func TestEpochAcquireReclaimRace(t *testing.T) {
	r := NewEpochRing()
	var published, reclaims sync.Map // id -> *atomic.Int64 (reclaim count)
	r.OnPublish = func(e *Epoch) { published.Store(e.ID(), struct{}{}) }
	r.OnReclaim = func(e *Epoch) {
		c, _ := reclaims.LoadOrStore(e.ID(), new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
	}
	g := ringGraph(6)

	const rounds = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := r.Acquire()
				if e == nil {
					continue
				}
				if e.Graph() == nil || len(e.Cover()) != 1 {
					t.Error("acquired epoch with missing state")
				}
				e.Release()
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		r.Publish(g, []VID{0}, nil)
	}
	close(stop)
	wg.Wait()

	cur := r.Current()
	published.Range(func(k, _ any) bool {
		id := k.(uint64)
		c, ok := reclaims.Load(id)
		if id == cur {
			if ok {
				t.Errorf("current epoch %d was reclaimed", id)
			}
			return true
		}
		if !ok {
			t.Errorf("epoch %d leaked (never reclaimed)", id)
			return true
		}
		if n := c.(*atomic.Int64).Load(); n != 1 {
			t.Errorf("epoch %d reclaimed %d times", id, n)
		}
		return true
	})
	if r.Live() != 1 {
		t.Fatalf("Live=%d after drain, want 1", r.Live())
	}
}

// edgeFingerprint summarizes a graph's exact edge set, order-sensitively.
func edgeFingerprint(g digraph.Adjacency) uint64 {
	var h uint64 = 1469598103934665603
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Out(VID(v)) {
			h ^= uint64(v)<<32 | uint64(w)
			h *= 1099511628211
		}
	}
	return h
}

// TestSnapshotIsolationUnderChurn is the MVCC property test: readers pin
// epochs and hold them across update batches and compaction storms; a
// pinned epoch's graph must stay bit-identical and its cover must stay a
// valid cover OF THAT GRAPH, no matter what the writer does meanwhile.
func TestSnapshotIsolationUnderChurn(t *testing.T) {
	const (
		n      = 200
		k      = 6
		rounds = 60
	)
	seed := gen.ErdosRenyi(n, 2*n, 41)
	res, err := core.Compute(seed, core.TDBPlusPlus, core.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromGraph(seed, k, 3, res.Cover)
	if err != nil {
		t.Fatal(err)
	}
	ring := NewEpochRing()
	m.PublishSnapshot(ring, nil)

	batches := make(chan struct{})  // writer -> readers: one batch applied
	holders := make(chan struct{})  // readers -> writer: pinned, go churn
	released := make(chan struct{}) // readers done with the pinned epoch

	const readers = 4
	var wg sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				e := ring.Acquire()
				if e == nil {
					t.Error("reader found no epoch")
					return
				}
				fp := edgeFingerprint(e.Graph())
				cov := append([]VID(nil), e.Cover()...)
				holders <- struct{}{}
				// Hold the pin across a full churn round (several batches
				// and, with these sizes, multiple compactions).
				if _, ok := <-batches; !ok {
					e.Release()
					return
				}
				if got := edgeFingerprint(e.Graph()); got != fp {
					t.Errorf("pinned epoch %d mutated under churn", e.ID())
				}
				if ok, witness := verify.IsValid(e.Graph(), k, 3, cov); !ok {
					t.Errorf("pinned epoch %d cover invalid, surviving cycle %v", e.ID(), witness)
				}
				e.Release()
				released <- struct{}{}
			}
		}()
	}

	rng := rand.New(rand.NewPCG(7, 9))
	for round := 0; round < rounds; round++ {
		for i := 0; i < readers; i++ {
			<-holders
		}
		// Churn: heavy insert/delete batches, enough per round to trip the
		// compaction policy repeatedly.
		for b := 0; b < 4; b++ {
			ups := make([]Update, 0, 300)
			for j := 0; j < 300; j++ {
				u, v := VID(rng.IntN(n)), VID(rng.IntN(n))
				if rng.IntN(3) == 0 {
					ups = append(ups, DeleteOp(u, v))
				} else {
					ups = append(ups, InsertOp(u, v))
				}
			}
			if _, err := m.ApplyBatchChecked(ups); err != nil {
				t.Fatal(err)
			}
		}
		m.PublishSnapshot(ring, nil)
		for i := 0; i < readers; i++ {
			batches <- struct{}{}
		}
		for i := 0; i < readers; i++ {
			<-released
		}
	}
	for i := 0; i < readers; i++ {
		<-holders
	}
	close(batches)
	wg.Wait()

	if live := ring.Live(); live != 1 {
		t.Fatalf("Live=%d after all readers released, want 1", live)
	}
	// The final epoch's cover must be valid for its graph — and the
	// maintainer's own state must agree with what it published.
	e := ring.Acquire()
	defer e.Release()
	if ok, witness := verify.IsValid(e.Graph(), k, 3, e.Cover()); !ok {
		t.Fatalf("final epoch cover invalid, surviving cycle %v", witness)
	}
	if e.Graph().NumEdges() != m.NumEdges() {
		t.Fatalf("final epoch has %d edges, maintainer %d", e.Graph().NumEdges(), m.NumEdges())
	}
}

func TestValidateUpdates(t *testing.T) {
	m := New(8, 5, 3)
	good := []Update{InsertOp(0, 1), DeleteOp(7, 3)}
	if err := m.ValidateUpdates(good); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	cases := [][]Update{
		{InsertOp(0, 8)},
		{InsertOp(8, 0)},
		{DeleteOp(0, 200)},
		{{Op: Op(7), U: 0, V: 1}},
	}
	for i, ups := range cases {
		if err := m.ValidateUpdates(ups); err == nil {
			t.Errorf("case %d: invalid batch accepted", i)
		}
		if _, err := m.ApplyBatchChecked(ups); err == nil {
			t.Errorf("case %d: ApplyBatchChecked accepted invalid batch", i)
		}
	}
	if m.NumEdges() != 0 {
		t.Fatal("rejected batches mutated the graph")
	}
}

// FuzzApplyBatchChecked feeds arbitrary byte-derived batches to the checked
// application path: whatever the bytes decode to, the maintainer must
// either reject the batch (leaving the graph untouched) or apply it and
// keep a valid cover — and never panic.
func FuzzApplyBatchChecked(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 1, 2, 1, 0, 1})
	f.Add([]byte{0, 200, 1})        // out-of-range vertex
	f.Add([]byte{9, 0, 1})          // unknown op
	f.Add([]byte{0, 3, 3, 0, 5, 5}) // self-loops
	f.Add([]byte{0, 1, 2, 0, 1, 2}) // duplicate insert
	f.Fuzz(func(t *testing.T, data []byte) {
		const n, k = 16, 5
		m := New(n, k, 3)
		var ups []Update
		for i := 0; i+2 < len(data); i += 3 {
			ups = append(ups, Update{Op: Op(data[i] % 3), U: VID(data[i+1]), V: VID(data[i+2])})
		}
		added, err := m.ApplyBatchChecked(ups)
		if err != nil {
			if m.NumEdges() != 0 || m.CoverSize() != 0 {
				t.Fatal("rejected batch mutated the maintainer")
			}
			return
		}
		if len(added) != m.CoverSize() {
			t.Fatalf("added %d cover vertices but CoverSize=%d", len(added), m.CoverSize())
		}
		if ok, witness := verify.IsValid(m.Snapshot(), k, 3, m.Cover()); !ok {
			t.Fatalf("cover invalid after batch, surviving cycle %v", witness)
		}
	})
}
