package dynamic

import (
	"math/rand/v2"
	"testing"

	"tdb/internal/core"
	"tdb/internal/digraph"
	"tdb/internal/verify"
)

func TestInsertTriangle(t *testing.T) {
	m := New(3, 5, 3)
	if m.InsertEdge(0, 1) != -1 || m.InsertEdge(1, 2) != -1 {
		t.Fatal("no cycle yet, no cover needed")
	}
	added := m.InsertEdge(2, 0)
	if added == -1 {
		t.Fatal("closing the triangle must add a cover vertex")
	}
	if m.CoverSize() != 1 {
		t.Fatalf("cover size = %d", m.CoverSize())
	}
	ok, _ := verify.IsValid(m.Snapshot(), 5, 3, m.Cover())
	if !ok {
		t.Fatal("cover invalid after insertion")
	}
}

func TestSelfLoopAndDuplicateIgnored(t *testing.T) {
	m := New(2, 5, 3)
	if m.InsertEdge(0, 0) != -1 {
		t.Fatal("self-loop must be ignored")
	}
	if m.NumEdges() != 0 {
		t.Fatal("self-loop stored")
	}
	m.InsertEdge(0, 1)
	if m.InsertEdge(0, 1) != -1 || m.NumEdges() != 1 {
		t.Fatal("duplicate must be ignored")
	}
}

func TestTwoCyclesRespectMinLen(t *testing.T) {
	m := New(2, 5, 3)
	m.InsertEdge(0, 1)
	if m.InsertEdge(1, 0) != -1 {
		t.Fatal("2-cycle must not trigger cover growth at minLen=3")
	}
	m2 := New(2, 5, 2)
	m2.InsertEdge(0, 1)
	if m2.InsertEdge(1, 0) == -1 {
		t.Fatal("2-cycle must trigger cover growth at minLen=2")
	}
}

func TestHopConstraintRespected(t *testing.T) {
	m := New(6, 5, 3)
	for v := VID(0); v < 5; v++ {
		m.InsertEdge(v, (v+1)%6)
	}
	if m.InsertEdge(5, 0) != -1 {
		t.Fatal("6-cycle with k=5 must not need covering")
	}
}

func TestDeleteAndReminimize(t *testing.T) {
	m := New(3, 5, 3)
	m.InsertEdge(0, 1)
	m.InsertEdge(1, 2)
	m.InsertEdge(2, 0)
	if m.CoverSize() != 1 {
		t.Fatal("setup failed")
	}
	if !m.DeleteEdge(1, 2) {
		t.Fatal("edge existed")
	}
	if m.DeleteEdge(1, 2) {
		t.Fatal("double delete must report false")
	}
	// Cover still valid but now redundant.
	if removed := m.Reminimize(); removed != 1 {
		t.Fatalf("Reminimize removed %d, want 1", removed)
	}
	if m.CoverSize() != 0 {
		t.Fatalf("cover size = %d after reminimize", m.CoverSize())
	}
	// Re-closing the triangle must re-cover.
	if m.InsertEdge(1, 2) == -1 {
		t.Fatal("re-closing the triangle must add a cover vertex")
	}
}

func TestFromGraphSeed(t *testing.T) {
	g := digraph.FromEdges(3, []digraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	res, err := core.Compute(g, core.TDBPlusPlus, core.Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromGraph(g, 5, 3, res.Cover)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != 3 || m.CoverSize() != len(res.Cover) {
		t.Fatal("seeding lost state")
	}
	// Extending with a second triangle through a fresh vertex... vertex
	// count is fixed, so reuse vertex 1 and 2: add 2->1 creating 2-cycle
	// (ignored) and a 3-cycle 1->2->0->... already covered.
	if !m.Covered(m.Cover()[0]) {
		t.Fatal("Covered() inconsistent with Cover()")
	}
}

// The central property: after any interleaving of inserts and deletes, the
// maintained cover is valid; after Reminimize it is also minimal.
func TestRandomChurnMaintainsInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 55))
	for iter := 0; iter < 25; iter++ {
		n := 5 + rng.IntN(12)
		k := 3 + rng.IntN(4)
		m := New(n, k, 3)
		var present [][2]VID
		for step := 0; step < 120; step++ {
			if len(present) > 0 && rng.IntN(4) == 0 {
				i := rng.IntN(len(present))
				e := present[i]
				m.DeleteEdge(e[0], e[1])
				present[i] = present[len(present)-1]
				present = present[:len(present)-1]
			} else {
				u, v := VID(rng.IntN(n)), VID(rng.IntN(n))
				if u != v && !m.HasEdge(u, v) {
					m.InsertEdge(u, v)
					present = append(present, [2]VID{u, v})
				}
			}
			if step%30 == 29 {
				snap := m.Snapshot()
				if ok, w := verify.IsValid(snap, k, 3, m.Cover()); !ok {
					t.Fatalf("iter %d step %d: cover invalid, witness %v", iter, step, w)
				}
			}
		}
		m.Reminimize()
		snap := m.Snapshot()
		if ok, w := verify.IsValid(snap, k, 3, m.Cover()); !ok {
			t.Fatalf("iter %d: cover invalid after reminimize, witness %v", iter, w)
		}
		if ok, red := verify.IsMinimal(snap, k, 3, m.Cover()); !ok {
			t.Fatalf("iter %d: cover not minimal after reminimize: %v", iter, red)
		}
	}
}

// Incremental maintenance must track the same problem the static solver
// answers: seeding from a static cover and churning keeps validity.
func TestStaticSeedThenChurn(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 7))
	b := digraph.NewBuilder(40)
	for i := 0; i < 120; i++ {
		b.AddEdge(VID(rng.IntN(40)), VID(rng.IntN(40)))
	}
	g := b.Build()
	res, err := core.Compute(g, core.TDBPlusPlus, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromGraph(g, 4, 3, res.Cover)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		m.InsertEdge(VID(rng.IntN(40)), VID(rng.IntN(40)))
	}
	if ok, w := verify.IsValid(m.Snapshot(), 4, 3, m.Cover()); !ok {
		t.Fatalf("invalid after churn: witness %v", w)
	}
	ins, dels, checks, adds := m.Stats()
	if ins == 0 || checks == 0 {
		t.Fatalf("stats not tracked: %d %d %d %d", ins, dels, checks, adds)
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range [][2]int{{2, 3}, {5, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v) should panic", bad)
				}
			}()
			New(3, bad[0], bad[1])
		}()
	}
}
