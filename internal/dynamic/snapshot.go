package dynamic

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"tdb/internal/digraph"
)

// State snapshot serialization. A snapshot captures everything a Maintainer
// needs to resume: the solve parameters, the compacted graph, and the cover.
// The server's WAL checkpoints use this format, so it is written defensively
// (fixed-width little-endian fields behind a magic, every bound re-validated
// on read) — a checkpoint file that passed its CRC can still be a snapshot
// from a different build, and ReadState must reject rather than build an
// inconsistent Maintainer.
//
// Layout (all integers little-endian):
//
//	magic   "TDBSNAP1"  (8 bytes)
//	k       u32
//	minLen  u32
//	n       u64        vertex count
//	edges   u64        edge count
//	edges × (u32 from, u32 to)   in (u, v) lexicographic CSR order
//	cover   u64        cover size
//	cover × u32        cover vertices, ascending
const snapMagic = "TDBSNAP1"

// WriteState serializes the maintainer's full logical state to w. It compacts
// first (Snapshot), so the written graph is the delta-free CSR — the same
// compaction the live maintainer keeps, which keeps a restored replica's
// compaction schedule aligned with the original's.
func (m *Maintainer) WriteState(w io.Writer) error {
	g := m.Snapshot()
	cover := m.Cover()

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(snapMagic); err != nil {
		return err
	}
	var b8 [8]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(b8[:4], v)
		_, err := bw.Write(b8[:4])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(b8[:], v)
		_, err := bw.Write(b8[:])
		return err
	}
	if err := put32(uint32(m.k)); err != nil {
		return err
	}
	if err := put32(uint32(m.minLen)); err != nil {
		return err
	}
	if err := put64(uint64(m.n)); err != nil {
		return err
	}
	if err := put64(uint64(g.NumEdges())); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Out(digraph.VID(v)) {
			if err := put32(uint32(v)); err != nil {
				return err
			}
			if err := put32(uint32(w)); err != nil {
				return err
			}
		}
	}
	if err := put64(uint64(len(cover))); err != nil {
		return err
	}
	for _, v := range cover {
		if err := put32(uint32(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadState deserializes a snapshot written by WriteState and rebuilds a
// Maintainer from it. Every field is validated: parameter bounds, edge
// endpoints, and cover vertices in range. The error messages name the field
// so a corrupt checkpoint is diagnosable.
func ReadState(r io.Reader) (*Maintainer, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dynamic: reading snapshot magic: %w", err)
	}
	if string(magic) != snapMagic {
		return nil, fmt.Errorf("dynamic: not a state snapshot (magic %q)", magic)
	}
	var b8 [8]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, b8[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b8[:4]), nil
	}
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b8[:]), nil
	}
	k32, err := get32()
	if err != nil {
		return nil, fmt.Errorf("dynamic: reading snapshot k: %w", err)
	}
	minLen32, err := get32()
	if err != nil {
		return nil, fmt.Errorf("dynamic: reading snapshot minLen: %w", err)
	}
	k, minLen := int(k32), int(minLen32)
	if minLen < 2 || k < minLen || k32 > 1<<20 {
		return nil, fmt.Errorf("dynamic: snapshot has invalid parameters k=%d minLen=%d", k32, minLen32)
	}
	n64, err := get64()
	if err != nil {
		return nil, fmt.Errorf("dynamic: reading snapshot n: %w", err)
	}
	if n64 > 1<<32 {
		return nil, fmt.Errorf("dynamic: snapshot vertex count %d out of range", n64)
	}
	n := int(n64)
	edges, err := get64()
	if err != nil {
		return nil, fmt.Errorf("dynamic: reading snapshot edge count: %w", err)
	}
	if n64 > 0 && edges > n64*n64 {
		return nil, fmt.Errorf("dynamic: snapshot edge count %d exceeds n^2", edges)
	}
	b := digraph.NewBuilder(n)
	b.KeepSelfLoops = true
	for i := uint64(0); i < edges; i++ {
		u, err := get32()
		if err != nil {
			return nil, fmt.Errorf("dynamic: reading snapshot edge %d: %w", i, err)
		}
		v, err := get32()
		if err != nil {
			return nil, fmt.Errorf("dynamic: reading snapshot edge %d: %w", i, err)
		}
		if uint64(u) >= n64 || uint64(v) >= n64 {
			return nil, fmt.Errorf("dynamic: snapshot edge %d (%d -> %d) out of range n=%d", i, u, v, n)
		}
		b.AddEdge(digraph.VID(u), digraph.VID(v))
	}
	coverLen, err := get64()
	if err != nil {
		return nil, fmt.Errorf("dynamic: reading snapshot cover size: %w", err)
	}
	if coverLen > n64 {
		return nil, fmt.Errorf("dynamic: snapshot cover size %d exceeds n=%d", coverLen, n)
	}
	cover := make([]digraph.VID, coverLen)
	for i := range cover {
		v, err := get32()
		if err != nil {
			return nil, fmt.Errorf("dynamic: reading snapshot cover vertex %d: %w", i, err)
		}
		cover[i] = digraph.VID(v)
	}
	// Trailing garbage means the reader and writer disagree about the
	// format; refuse rather than silently ignore.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("dynamic: snapshot has trailing bytes")
	}
	m, err := FromGraph(b.Build(), k, minLen, cover)
	if err != nil {
		return nil, fmt.Errorf("dynamic: rebuilding from snapshot: %w", err)
	}
	return m, nil
}

// Fingerprint returns a digest of the maintainer's logical state — the
// (graph, cover, k, minLen) tuple after compaction. Two maintainers with
// equal fingerprints answer every query identically. Used by the crash
// recovery soak to compare a recovered server against a reference replay.
func (m *Maintainer) Fingerprint() uint64 {
	return StateFingerprint(m.Snapshot(), m.Cover(), m.k, m.minLen)
}

// StateFingerprint hashes the canonical serialization of a solve state:
// FNV-1a 64 over k, minLen, n, the edge list in CSR order, and the cover
// ascending. The graph's CSR order is canonical (sorted adjacency), so equal
// logical states hash equal regardless of insertion order.
func StateFingerprint(g digraph.Adjacency, cover []digraph.VID, k, minLen int) uint64 {
	h := fnv.New64a()
	var b8 [8]byte
	w32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b8[:4], v)
		h.Write(b8[:4])
	}
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		h.Write(b8[:])
	}
	w32(uint32(k))
	w32(uint32(minLen))
	w64(uint64(g.NumVertices()))
	w64(uint64(g.NumEdges()))
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Out(digraph.VID(v)) {
			w32(uint32(v))
			w32(uint32(w))
		}
	}
	w64(uint64(len(cover)))
	for _, v := range cover {
		w32(uint32(v))
	}
	return h.Sum64()
}
