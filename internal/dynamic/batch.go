package dynamic

import (
	"fmt"
	"time"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
	"tdb/internal/fault"
)

// The batched update path. A batch applies all structural changes first
// and defers the cycle-existence queries of insertions between uncovered
// endpoints to the end; the deferred queries are then answered up to
// cycle.MaxBatchWidth at a time by ONE bit-parallel bidirectional BFS
// sweep (cycle.BatchBFSFilter, lane per edge, covered vertices as the
// mask, lane-group width picked from the deferred-queue length), with the
// few lanes the filter cannot prune re-checked by the exact scalar search
// — the same two-tier pattern the top-down solver uses.
//
// Deferral is sound because the cover only grows during resolution: a
// query answered "no cycle" under an earlier (smaller) cover stays "no
// cycle" under the final one, and every surviving cycle must pass through
// some batch edge whose query then found it. The deferred schedule can
// pick a different (never larger in expectation, occasionally different)
// set of cover vertices than the same updates applied one by one; both
// are valid covers.

// Op selects the kind of an Update.
type Op uint8

const (
	// OpInsert adds an edge (self-loops and duplicates are ignored).
	OpInsert Op = iota
	// OpDelete removes an edge (absent edges are ignored).
	OpDelete
)

// Update is one edge operation of a batch.
type Update struct {
	Op   Op
	U, V VID
}

// InsertOp returns an insertion Update.
func InsertOp(u, v VID) Update { return Update{Op: OpInsert, U: u, V: v} }

// DeleteOp returns a deletion Update.
func DeleteOp(u, v VID) Update { return Update{Op: OpDelete, U: u, V: v} }

// The bit-parallel sweep needs flat CSR arrays, so it costs one delta
// compaction up front. Per query the sweep is ~3x cheaper than a scalar
// BFS (shared word-wide edge expansions), but an O(m) rebuild bought for
// one batch rarely amortizes: the batch goes bit-parallel only when it
// has at least batchScalarCutoff deferred queries and either a compaction
// is due anyway under the standard delta policy (the sweep then rides a
// rebuild already paid for) or the burst is large relative to the base
// (one query per batchSweepEdgesPerQuery base edges). Otherwise scalar
// resolution on the hybrid adjacency wins — the same measure-then-commit
// discipline as the solver's adaptive filter tiers.
const (
	batchScalarCutoff       = 16
	batchSweepEdgesPerQuery = 32
)

// ValidateUpdates checks a batch against the maintainer without applying
// anything: every update must name an op the maintainer knows and vertices
// inside the current vertex range. ApplyBatch assumes validated input (an
// out-of-range vertex is an index panic deep in the adjacency code);
// boundary layers decoding untrusted batches (tdbserve) call this — or
// ApplyBatchChecked — to turn malformed input into an error instead.
func (m *Maintainer) ValidateUpdates(updates []Update) error {
	for i, up := range updates {
		if up.Op != OpInsert && up.Op != OpDelete {
			return fmt.Errorf("dynamic: update %d: unknown op %d", i, up.Op)
		}
		if int(up.U) >= m.n || int(up.V) >= m.n {
			return fmt.Errorf("dynamic: update %d: edge (%d, %d) out of range (graph has %d vertices)",
				i, up.U, up.V, m.n)
		}
	}
	return nil
}

// ApplyBatchChecked is ApplyBatch behind ValidateUpdates: malformed batches
// are rejected as an error with the graph untouched (validation completes
// before the first structural change).
func (m *Maintainer) ApplyBatchChecked(updates []Update) ([]VID, error) {
	if err := m.ValidateUpdates(updates); err != nil {
		return nil, err
	}
	return m.ApplyBatch(updates), nil
}

// ApplyBatch applies the updates in order and returns the vertices added
// to the cover, in the order they were added (nil when none). The cover is
// valid for the post-batch graph; as with DeleteEdge, deletions may leave
// redundant cover vertices behind until the next Reminimize. Updates must
// be in range (see ValidateUpdates / ApplyBatchChecked for untrusted input).
func (m *Maintainer) ApplyBatch(updates []Update) []VID {
	// Chaos hook: a panic injected here fails the batch mid-write exactly
	// like a maintenance bug would; tdbserve's writer must contain it
	// (see internal/fault and the server chaos suite).
	fault.Inject(fault.SiteDynamicApplyBatch)
	var pending []digraph.Edge
	for _, up := range updates {
		switch up.Op {
		case OpInsert:
			u, v := up.U, up.V
			if u == v || m.HasEdge(u, v) {
				continue
			}
			m.inserts++
			m.addEdgeRaw(u, v)
			if !m.covered[u] && !m.covered[v] {
				pending = append(pending, digraph.Edge{U: u, V: v})
			}
		case OpDelete:
			if !m.HasEdge(up.U, up.V) {
				continue
			}
			m.deletes++
			m.deleteEdgeRaw(up.U, up.V)
		}
	}

	// Requalify: an edge deleted later in the same batch carries no cycle
	// of the final graph, and covered endpoints need no query at all. An
	// insert-delete-reinsert toggle defers the same edge twice; dedupe so
	// its query runs once.
	var seen map[uint64]struct{}
	if len(pending) > 1 {
		seen = make(map[uint64]struct{}, len(pending))
	}
	live := pending[:0]
	for _, e := range pending {
		if !m.HasEdge(e.U, e.V) || m.covered[e.U] || m.covered[e.V] {
			continue
		}
		if seen != nil {
			key := uint64(e.U)<<32 | uint64(e.V)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
		}
		live = append(live, e)
	}
	pending = live
	if len(pending) == 0 {
		m.maybeCompact()
		return nil
	}

	var added []VID
	sweep := len(pending) >= batchScalarCutoff &&
		(m.compactionDue() || len(pending)*batchSweepEdgesPerQuery >= m.base.NumEdges())
	if !sweep {
		m.maybeCompact()
		for _, e := range pending {
			if m.covered[e.U] || m.covered[e.V] {
				continue // an earlier addition resolved this edge
			}
			m.cycleChecks++
			if m.edgeCreatesCycle(e.U, e.V) {
				added = append(added, m.coverEndpoint(e.U, e.V))
			}
		}
		return added
	}

	// Bit-parallel path: compact so both the lane sweep and the scalar
	// re-checks run on flat CSR arrays.
	g := m.compact()
	n := g.NumVertices()
	active := m.remActiveBuf(n)
	for v := 0; v < n; v++ {
		active[v] = !m.covered[v]
	}
	bf := cycle.NewBatchBFSFilterWith(g, m.k, active, m.remScratchFor(n))
	bf.SetLanes(len(pending)) // width cap from the deferred-queue length
	ladder := cycle.NewWidthLadder(len(pending))
	var (
		word   [cycle.MaxBatchWidth]digraph.Edge
		srcs   [cycle.MaxBatchWidth]VID
		pruned [cycle.MaxBatchWidth]bool
	)
	for len(pending) > 0 {
		// Fill one lane group, skipping edges an earlier group resolved.
		// Lane i asks about e.U: every cycle through the edge passes
		// through it, so "no closed walk <= k through e.U" retires the
		// query. Group widths climb the queue-capped WidthLadder, so
		// bursts deep enough to amortize the timed trials can widen while
		// ordinary batches keep the one-word sweep.
		width := ladder.Next()
		w := 0
		for w < width && len(pending) > 0 {
			e := pending[0]
			pending = pending[1:]
			if m.covered[e.U] || m.covered[e.V] {
				continue
			}
			word[w] = e
			srcs[w] = e.U
			w++
		}
		if w == 0 {
			break
		}
		m.cycleChecks += int64(w)
		if ladder.Adapting() {
			t0 := time.Now()
			bf.CanPruneBatch(srcs[:w], pruned[:w])
			ladder.Observe(width, time.Since(t0), w)
		} else {
			bf.CanPruneBatch(srcs[:w], pruned[:w])
		}
		for i := 0; i < w; i++ {
			e := word[i]
			if pruned[i] || m.covered[e.U] || m.covered[e.V] {
				continue
			}
			// The lane answer is conservative (the short closed walk may be
			// non-simple or below minLen); the scalar search is exact.
			if m.edgeCreatesCycle(e.U, e.V) {
				pick := m.coverEndpoint(e.U, e.V)
				active[pick] = false // tighten later words' mask
				added = append(added, pick)
			}
		}
	}
	return added
}
