// Package dynamic maintains a hop-constrained cycle cover over a stream of
// edge insertions and deletions.
//
// The paper's motivating fraud workload is inherently dynamic — its
// reference [14] (Qiu et al., VLDB 2018) detects constrained cycles on
// dynamic e-commerce graphs in real time — but the paper itself only
// treats the static problem. This package extends it with the natural
// incremental scheme built from the same primitives:
//
//   - Invariant: the current graph minus the cover contains no constrained
//     cycle.
//   - InsertEdge(u, v): if u or v is already covered, every new cycle
//     (which necessarily passes through the new edge, hence through both u
//     and v) is covered; otherwise search for one constrained cycle through
//     the new edge in the uncovered graph and, if found, add one endpoint
//     to the cover — covering ALL cycles the insertion created.
//   - DeleteEdge(u, v): the invariant survives edge removal untouched, but
//     cover vertices may become redundant; Reminimize runs the paper's
//     minimal pruning pass (Alg. 7) on demand, restricted to the cover
//     vertices a deletion (or cover growth) can actually have affected.
//   - ApplyBatch: the batched form, which defers the cycle-existence
//     queries of a whole batch and answers them 64 at a time with one
//     bit-parallel BFS sweep (cycle.BatchBFSFilter).
//
// Storage is a CSR base + delta-buffer hybrid: a compacted immutable
// digraph.Graph carries the bulk of the edges, per-vertex sorted slices
// carry the insertions and deletions since the last compaction, and the
// deltas fold into a fresh CSR once they exceed a fraction of the base
// (and on Snapshot/Reminimize, which therefore run on flat arrays).
//
// Cost model: an insertion between uncovered endpoints runs one bounded
// BFS over the uncovered region — O(min(m, edges within k-1 hops)), the
// same bound as the paper's BFS filter — whose shortest path, being
// simple, certifies the answer outright in all but the short-walk regime
// (a walk shorter than minLen-1, e.g. a 2-cycle under minLen=3). Only
// that ambiguous remainder falls through to an iterative, distance-pruned
// DFS whose explored states are capped; on cap the endpoint is covered
// conservatively, so validity never depends on the exponential tail.
// Reminimize is polynomial outright: it runs the paper's exact O(k·m)
// block-based detector per candidate on the compacted CSR.
package dynamic

import (
	"fmt"
	"slices"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
)

// VID aliases digraph.VID.
type VID = digraph.VID

// Compaction policy: fold the deltas into a fresh CSR once they hold at
// least compactMinDelta edges AND at least 1/compactFraction of the base.
// The second condition makes compactions geometrically spaced, so the
// total compaction work over a stream of N insertions is O(N + n·log N).
const (
	compactMinDelta = 1024
	compactFraction = 4
)

// Maintainer holds a dynamic directed graph and a valid hop-constrained
// cycle cover of it. It is not safe for concurrent use.
type Maintainer struct {
	k      int
	minLen int

	// CSR base + sorted per-vertex delta buffers. The live adjacency of u
	// is (base.Out(u) minus delOut[u]) union addOut[u]; the three sources
	// are individually sorted, so membership is a pair of binary searches
	// and traversal is a two-pointer merge.
	base   digraph.Adjacency
	n      int     // current vertex count, >= base.NumVertices()
	addOut [][]VID // edges inserted since compaction, absent from base
	addIn  [][]VID
	delOut [][]VID // tombstones over base edges
	delIn  [][]VID
	delta  int // adds + tombstones: compaction pressure
	m      int // live edge count

	covered []bool
	cover   int

	// Dirty-region tracking for Reminimize: a cover vertex can only have
	// become redundant if its witness cycle was destroyed, i.e. one of the
	// witness's edges was deleted or one of its vertices entered the
	// cover. Both event sites are recorded here; Reminimize then re-tests
	// only cover vertices within k hops of a recorded site. needFull
	// forces a whole-cover pass (fresh maintainers, seeded covers).
	dirty    []VID
	needFull bool

	// Scratch for the bounded searches (see search.go). Epoch-stamped
	// marks make stale state structurally impossible: every traversal
	// bumps its epoch, so nothing a previous search left behind — early
	// returns included — can leak into the next one.
	mark   []uint32 // forward-visited / DFS on-path stamps
	mepoch uint32
	bmark  []uint32 // backward-distance validity stamps
	bepoch uint32
	distB  []int32
	queue  []VID
	nextQ  []VID
	rowBuf []VID
	rows   [][]VID
	stack  []pathFrame

	// Compacted-CSR scratch, cached across Reminimize/ApplyBatch calls.
	remScratch *cycle.Scratch
	remActive  []bool

	// counters
	inserts, deletes, cycleChecks, coverAdds int64
	compactions                              int64
}

// New creates a Maintainer for cycles of length in [minLen, k] over an
// initially empty graph with n vertices.
func New(n, k, minLen int) *Maintainer {
	if minLen < 2 {
		panic(fmt.Sprintf("dynamic: minLen %d < 2", minLen))
	}
	if k < minLen {
		panic(fmt.Sprintf("dynamic: k=%d < minLen=%d", k, minLen))
	}
	return &Maintainer{
		k: k, minLen: minLen,
		base: new(digraph.Graph), n: n,
		addOut: make([][]VID, n), addIn: make([][]VID, n),
		delOut: make([][]VID, n), delIn: make([][]VID, n),
		covered:  make([]bool, n),
		needFull: true,
	}
}

// FromGraph creates a Maintainer seeded with an existing graph and an
// existing valid cover of it (e.g. computed by core.Compute). The graph is
// adopted as the CSR base without copying; the cover is trusted to be
// valid (use Verify from package verify to check it first if unsure) but
// is validated against the vertex range — a cover naming vertices the
// graph does not have cannot have come from it, and is reported as an
// error rather than a later index panic.
func FromGraph(g digraph.Adjacency, k, minLen int, cover []VID) (*Maintainer, error) {
	n := g.NumVertices()
	for _, v := range cover {
		if int(v) >= n {
			return nil, fmt.Errorf("dynamic: cover vertex %d out of range (graph has %d vertices)", v, n)
		}
	}
	m := New(n, k, minLen)
	m.base = g
	m.m = g.NumEdges()
	for _, v := range cover {
		if !m.covered[v] {
			m.covered[v] = true
			m.cover++
		}
	}
	return m, nil
}

// K returns the hop constraint the maintainer covers up to.
func (m *Maintainer) K() int { return m.k }

// MinLen returns the minimum covered cycle length.
func (m *Maintainer) MinLen() int { return m.minLen }

// NumVertices returns the vertex count.
func (m *Maintainer) NumVertices() int { return m.n }

// Grow extends the vertex set to n (a no-op when the maintainer is already
// that large). New vertices start isolated and uncovered, so the cover
// invariant is untouched. This is what lets ID-labeled front ends intern
// vertices first seen mid-stream.
func (m *Maintainer) Grow(n int) {
	if n <= m.n {
		return
	}
	grow := n - m.n
	m.addOut = append(m.addOut, make([][]VID, grow)...)
	m.addIn = append(m.addIn, make([][]VID, grow)...)
	m.delOut = append(m.delOut, make([][]VID, grow)...)
	m.delIn = append(m.delIn, make([][]VID, grow)...)
	m.covered = append(m.covered, make([]bool, grow)...)
	m.n = n
}

// NumEdges returns the current edge count.
func (m *Maintainer) NumEdges() int { return m.m }

// CoverSize returns the current cover size.
func (m *Maintainer) CoverSize() int { return m.cover }

// Cover returns the current cover, ascending.
func (m *Maintainer) Cover() []VID {
	out := make([]VID, 0, m.cover)
	for v, c := range m.covered {
		if c {
			out = append(out, VID(v))
		}
	}
	return out
}

// Covered reports whether v is currently in the cover.
func (m *Maintainer) Covered(v VID) bool { return m.covered[v] }

// HasEdge reports whether the edge currently exists.
func (m *Maintainer) HasEdge(u, v VID) bool {
	if containsSorted(m.addOut[u], v) {
		return true
	}
	return m.inBase(u, v) && !containsSorted(m.delOut[u], v)
}

// inBase reports whether the edge exists in the compacted base (live or
// tombstoned).
func (m *Maintainer) inBase(u, v VID) bool {
	return int(u) < m.base.NumVertices() && digraph.HasArc(m.base, u, v)
}

// InsertEdge adds the edge (u, v), updating the cover if the insertion
// created uncovered constrained cycles. It returns the vertex added to the
// cover, or -1 when none was needed. Self-loops and duplicates are ignored
// (returning -1). Both endpoints must be < NumVertices (see Grow).
func (m *Maintainer) InsertEdge(u, v VID) int {
	if u == v || m.HasEdge(u, v) {
		return -1
	}
	m.inserts++
	m.addEdgeRaw(u, v)
	m.maybeCompact()

	// Every cycle created by this insertion passes through (u, v). If an
	// endpoint is covered, all of them already are.
	if m.covered[u] || m.covered[v] {
		return -1
	}
	m.cycleChecks++
	if !m.edgeCreatesCycle(u, v) {
		return -1
	}
	return int(m.coverEndpoint(u, v))
}

// DeleteEdge removes the edge (u, v) if present, reporting whether it
// existed. The cover stays valid; call Reminimize to shed vertices that the
// deletion made redundant.
func (m *Maintainer) DeleteEdge(u, v VID) bool {
	if !m.HasEdge(u, v) {
		return false
	}
	m.deletes++
	m.deleteEdgeRaw(u, v)
	m.maybeCompact()
	return true
}

// addEdgeRaw records the absent edge (u, v) in the delta layer: either by
// cancelling a base tombstone or by growing the add buffers.
func (m *Maintainer) addEdgeRaw(u, v VID) {
	if m.inBase(u, v) {
		m.delOut[u] = removeSorted(m.delOut[u], v)
		m.delIn[v] = removeSorted(m.delIn[v], u)
		m.delta--
	} else {
		m.addOut[u] = insertSorted(m.addOut[u], v)
		m.addIn[v] = insertSorted(m.addIn[v], u)
		m.delta++
	}
	m.m++
}

// deleteEdgeRaw removes the present edge (u, v): either by shrinking the
// add buffers or by tombstoning a base edge. The endpoints become dirty
// sites for the next Reminimize.
func (m *Maintainer) deleteEdgeRaw(u, v VID) {
	if containsSorted(m.addOut[u], v) {
		m.addOut[u] = removeSorted(m.addOut[u], v)
		m.addIn[v] = removeSorted(m.addIn[v], u)
		m.delta--
	} else {
		m.delOut[u] = insertSorted(m.delOut[u], v)
		m.delIn[v] = insertSorted(m.delIn[v], u)
		m.delta++
	}
	m.m--
	m.markDirty(u, v)
}

// markDirty records witness-destroying event sites for the next
// Reminimize. Once the set rivals the vertex count a full pass is cheaper
// than region tracking, so it collapses into the needFull flag instead of
// growing without bound on streams that never reminimize.
func (m *Maintainer) markDirty(sites ...VID) {
	if m.needFull {
		return
	}
	if len(m.dirty)+len(sites) > m.n {
		m.needFull = true
		m.dirty = m.dirty[:0]
		return
	}
	m.dirty = append(m.dirty, sites...)
}

// coverEndpoint covers the endpoint of (u, v) with the larger total
// degree — hubs tend to cover more future cycles (the bottom-up
// heuristic's insight) — and returns it.
func (m *Maintainer) coverEndpoint(u, v VID) VID {
	pick := u
	if m.degree(v) > m.degree(u) {
		pick = v
	}
	m.addCover(pick)
	return pick
}

// addCover puts v into the cover and records it as a dirty site: covering
// v may strip other cover vertices of their last witness cycle.
func (m *Maintainer) addCover(v VID) {
	m.covered[v] = true
	m.cover++
	m.coverAdds++
	m.markDirty(v)
}

// degree returns the live total degree of v.
func (m *Maintainer) degree(v VID) int {
	d := len(m.addOut[v]) + len(m.addIn[v]) - len(m.delOut[v]) - len(m.delIn[v])
	if int(v) < m.base.NumVertices() {
		d += m.base.OutDegree(v) + m.base.InDegree(v)
	}
	return d
}

// compactionDue reports whether the deltas have grown past the compaction
// policy's thresholds.
func (m *Maintainer) compactionDue() bool {
	return m.delta >= compactMinDelta && m.delta*compactFraction >= m.base.NumEdges()
}

// maybeCompact folds the deltas into a fresh CSR when a compaction is due.
func (m *Maintainer) maybeCompact() {
	if m.compactionDue() {
		m.compact()
	}
}

// compact rebuilds the CSR base from the surviving base edges plus the add
// buffers and clears the deltas. With empty deltas (and no Grow since) it
// returns the base as-is, which is what makes Snapshot cheap on a quiet
// maintainer.
func (m *Maintainer) compact() digraph.Adjacency {
	if m.delta == 0 && m.base.NumVertices() == m.n {
		return m.base
	}
	m.compactions++
	b := digraph.NewBuilder(m.n)
	// Base self-loops (possible when FromGraph adopted a KeepSelfLoops
	// graph) are preserved; they are never cycles (minLen >= 2) and every
	// traversal skips them structurally.
	b.KeepSelfLoops = true
	for u := 0; u < m.n; u++ {
		m.rowBuf = m.outInto(VID(u), m.rowBuf[:0])
		for _, w := range m.rowBuf {
			b.AddEdge(VID(u), w)
		}
		m.addOut[u] = m.addOut[u][:0]
		m.addIn[u] = m.addIn[u][:0]
		m.delOut[u] = m.delOut[u][:0]
		m.delIn[u] = m.delIn[u][:0]
	}
	m.delta = 0
	m.base = b.Build()
	return m.base
}

// Reminimize runs the paper's minimal pruning pass over the current cover:
// each candidate vertex is restored and dropped for good when no
// constrained cycle passes through it in the uncovered graph, decided by
// the scalar BFS filter (cheap sound prune) and the exact O(k·m)
// block-based detector on the compacted CSR. After the first full pass
// only DIRTY candidates are re-tested: cover vertices within k hops of a
// deleted edge or a vertex covered since — the only vertices whose witness
// cycle can have been destroyed. It returns the number of vertices
// removed.
func (m *Maintainer) Reminimize() int {
	defer func() {
		m.dirty = m.dirty[:0]
		m.needFull = false
	}()
	if m.cover == 0 || (!m.needFull && len(m.dirty) == 0) {
		return 0
	}
	g := m.compact()
	n := g.NumVertices()
	candidates := m.reminimizeCandidates(g)
	if len(candidates) == 0 {
		return 0
	}
	active := m.remActiveBuf(n)
	for v := 0; v < n; v++ {
		active[v] = !m.covered[v]
	}
	scr := m.remScratchFor(n)
	det := cycle.NewBlockDetectorWith(g, m.k, m.minLen, active, scr)
	filter := cycle.NewBFSFilterWith(g, m.k, active, scr)
	removed := 0
	for _, v := range candidates {
		m.cycleChecks++
		active[v] = true
		if filter.CanPrune(v) || !det.HasCycleThrough(v) {
			m.covered[v] = false
			m.cover--
			removed++
			continue // v leaves the cover, so it stays active
		}
		active[v] = false
	}
	return removed
}

// reminimizeCandidates returns the cover vertices to re-test, ascending:
// the whole cover on a full pass, otherwise the cover vertices within k
// hops (forward or backward) of a dirty site. When the dirty set rivals
// the graph the region BFS cannot pay for itself, so the pass goes full.
func (m *Maintainer) reminimizeCandidates(g digraph.Adjacency) []VID {
	n := g.NumVertices()
	out := make([]VID, 0, m.cover)
	if m.needFull || len(m.dirty)*4 >= n {
		for v := 0; v < n; v++ {
			if m.covered[v] {
				out = append(out, VID(v))
			}
		}
		return out
	}
	reach := make([]bool, n)
	m.markReachable(g, reach)
	for v := 0; v < n; v++ {
		if m.covered[v] && reach[v] {
			out = append(out, VID(v))
		}
	}
	return out
}

// markReachable marks every vertex within k hops of a dirty site, once
// following out-edges and once in-edges. A destroyed witness cycle leaves
// its surviving arc intact in the current graph, so the affected cover
// vertex is reachable from some dirty site along it within k-1 hops; the
// backward pass is kept for symmetry (it is cheap and strictly widens the
// candidate set, which is always sound).
func (m *Maintainer) markReachable(g digraph.Adjacency, reach []bool) {
	m.ensureScratch()
	for pass := 0; pass < 2; pass++ {
		mk := m.nextMark()
		q := m.queue[:0]
		for _, s := range m.dirty {
			if m.mark[s] != mk {
				m.mark[s] = mk
				reach[s] = true
				q = append(q, s)
			}
		}
		next := m.nextQ[:0]
		for d := 0; d < m.k && len(q) > 0; d++ {
			next = next[:0]
			for _, u := range q {
				row := g.Out(u)
				if pass == 1 {
					row = g.In(u)
				}
				for _, w := range row {
					if m.mark[w] != mk {
						m.mark[w] = mk
						reach[w] = true
						next = append(next, w)
					}
				}
			}
			q, next = next, q
		}
		m.queue, m.nextQ = q, next
	}
}

// remActiveBuf returns the cached n-sized mask buffer for compacted-CSR
// passes, reallocating only on growth.
func (m *Maintainer) remActiveBuf(n int) []bool {
	if cap(m.remActive) < n {
		m.remActive = make([]bool, n)
	}
	return m.remActive[:n]
}

// remScratchFor returns the cached cycle.Scratch for compacted-CSR passes,
// reallocating only when the vertex count changed.
func (m *Maintainer) remScratchFor(n int) *cycle.Scratch {
	if m.remScratch == nil || m.remScratch.Len() != n {
		m.remScratch = cycle.NewScratch(n)
	}
	return m.remScratch
}

// Snapshot freezes the current graph into an immutable digraph.Graph by
// compacting the deltas; with no changes since the last compaction it is
// free. The returned graph is shared with the maintainer but immutable:
// later updates accumulate in fresh deltas and never mutate it.
func (m *Maintainer) Snapshot() digraph.Adjacency {
	return m.compact()
}

// Stats returns operation counters: edge inserts, deletes, bounded cycle
// searches, and cover additions.
func (m *Maintainer) Stats() (inserts, deletes, cycleChecks, coverAdds int64) {
	return m.inserts, m.deletes, m.cycleChecks, m.coverAdds
}

// Compactions returns how many times the delta buffers were folded into a
// fresh CSR base.
func (m *Maintainer) Compactions() int64 { return m.compactions }

// sorted-slice primitives for the delta buffers.

func containsSorted(s []VID, v VID) bool {
	_, ok := slices.BinarySearch(s, v)
	return ok
}

func insertSorted(s []VID, v VID) []VID {
	i, ok := slices.BinarySearch(s, v)
	if ok {
		return s
	}
	return slices.Insert(s, i, v)
}

func removeSorted(s []VID, v VID) []VID {
	i, ok := slices.BinarySearch(s, v)
	if !ok {
		return s
	}
	return slices.Delete(s, i, i+1)
}
