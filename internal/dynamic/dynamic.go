// Package dynamic maintains a hop-constrained cycle cover over a stream of
// edge insertions and deletions.
//
// The paper's motivating fraud workload is inherently dynamic — its
// reference [14] (Qiu et al., VLDB 2018) detects constrained cycles on
// dynamic e-commerce graphs in real time — but the paper itself only
// treats the static problem. This package extends it with the natural
// incremental scheme built from the same primitives:
//
//   - Invariant: the current graph minus the cover contains no constrained
//     cycle.
//   - InsertEdge(u, v): if u or v is already covered, every new cycle
//     (which necessarily passes through the new edge, hence through both u
//     and v) is covered; otherwise search for one constrained cycle through
//     the new edge in the uncovered graph and, if found, add one endpoint
//     to the cover — covering ALL cycles the insertion created.
//   - DeleteEdge(u, v): the invariant survives edge removal untouched, but
//     cover vertices may become redundant; Reminimize runs the paper's
//     minimal pruning pass (Alg. 7) on demand.
//
// Amortized, insertions cost one bounded cycle search (O(k·m) worst case,
// usually far less because the uncovered graph is sparse) instead of the
// full O(k·m·n) recompute.
package dynamic

import (
	"fmt"

	"tdb/internal/digraph"
)

// VID aliases digraph.VID.
type VID = digraph.VID

// Maintainer holds a dynamic directed graph and a valid hop-constrained
// cycle cover of it.
type Maintainer struct {
	k      int
	minLen int

	out []map[VID]struct{}
	in  []map[VID]struct{}
	m   int

	covered []bool
	cover   int

	// scratch for the bounded DFS
	onPath []bool
	marked []VID

	// counters
	inserts, deletes, cycleChecks, coverAdds int64
}

// New creates a Maintainer for cycles of length in [minLen, k] over an
// initially empty graph with n vertices.
func New(n, k, minLen int) *Maintainer {
	if minLen < 2 {
		panic(fmt.Sprintf("dynamic: minLen %d < 2", minLen))
	}
	if k < minLen {
		panic(fmt.Sprintf("dynamic: k=%d < minLen=%d", k, minLen))
	}
	m := &Maintainer{
		k: k, minLen: minLen,
		out:     make([]map[VID]struct{}, n),
		in:      make([]map[VID]struct{}, n),
		covered: make([]bool, n),
		onPath:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		m.out[i] = make(map[VID]struct{})
		m.in[i] = make(map[VID]struct{})
	}
	return m
}

// FromGraph creates a Maintainer seeded with an existing graph and an
// existing valid cover of it (e.g. computed by core.Compute). The cover is
// trusted; use Verify from package verify to check it first if unsure.
func FromGraph(g *digraph.Graph, k, minLen int, cover []VID) *Maintainer {
	m := New(g.NumVertices(), k, minLen)
	for _, e := range g.Edges() {
		m.out[e.U][e.V] = struct{}{}
		m.in[e.V][e.U] = struct{}{}
		m.m++
	}
	for _, v := range cover {
		if !m.covered[v] {
			m.covered[v] = true
			m.cover++
		}
	}
	return m
}

// K returns the hop constraint the maintainer covers up to.
func (m *Maintainer) K() int { return m.k }

// MinLen returns the minimum covered cycle length.
func (m *Maintainer) MinLen() int { return m.minLen }

// NumVertices returns the vertex count.
func (m *Maintainer) NumVertices() int { return len(m.out) }

// Grow extends the vertex set to n (a no-op when the maintainer is already
// that large). New vertices start isolated and uncovered, so the cover
// invariant is untouched. This is what lets ID-labeled front ends intern
// vertices first seen mid-stream.
func (m *Maintainer) Grow(n int) {
	for len(m.out) < n {
		m.out = append(m.out, make(map[VID]struct{}))
		m.in = append(m.in, make(map[VID]struct{}))
		m.covered = append(m.covered, false)
		m.onPath = append(m.onPath, false)
	}
}

// NumEdges returns the current edge count.
func (m *Maintainer) NumEdges() int { return m.m }

// CoverSize returns the current cover size.
func (m *Maintainer) CoverSize() int { return m.cover }

// Cover returns the current cover, ascending.
func (m *Maintainer) Cover() []VID {
	out := make([]VID, 0, m.cover)
	for v, c := range m.covered {
		if c {
			out = append(out, VID(v))
		}
	}
	return out
}

// Covered reports whether v is currently in the cover.
func (m *Maintainer) Covered(v VID) bool { return m.covered[v] }

// HasEdge reports whether the edge currently exists.
func (m *Maintainer) HasEdge(u, v VID) bool {
	_, ok := m.out[u][v]
	return ok
}

// InsertEdge adds the edge (u, v), updating the cover if the insertion
// created uncovered constrained cycles. It returns the vertex added to the
// cover, or -1 when none was needed. Self-loops and duplicates are ignored
// (returning -1).
func (m *Maintainer) InsertEdge(u, v VID) int {
	if u == v || m.HasEdge(u, v) {
		return -1
	}
	m.inserts++
	m.out[u][v] = struct{}{}
	m.in[v][u] = struct{}{}
	m.m++

	// Every cycle created by this insertion passes through (u, v). If an
	// endpoint is covered, all of them already are.
	if m.covered[u] || m.covered[v] {
		return -1
	}
	m.cycleChecks++
	if !m.cycleThroughEdge(u, v) {
		return -1
	}
	// Cover the endpoint with the larger total degree: hubs tend to cover
	// more future cycles (the bottom-up heuristic's insight).
	pick := u
	if len(m.out[v])+len(m.in[v]) > len(m.out[u])+len(m.in[u]) {
		pick = v
	}
	m.covered[pick] = true
	m.cover++
	m.coverAdds++
	return int(pick)
}

// DeleteEdge removes the edge (u, v) if present, reporting whether it
// existed. The cover stays valid; call Reminimize to shed vertices that the
// deletion made redundant.
func (m *Maintainer) DeleteEdge(u, v VID) bool {
	if !m.HasEdge(u, v) {
		return false
	}
	m.deletes++
	delete(m.out[u], v)
	delete(m.in[v], u)
	m.m--
	return true
}

// Reminimize runs the paper's minimal pruning pass over the current cover:
// each cover vertex is restored and dropped for good when no constrained
// cycle passes through it in the uncovered graph. It returns the number of
// vertices removed.
func (m *Maintainer) Reminimize() int {
	removed := 0
	for v := range m.covered {
		if !m.covered[v] {
			continue
		}
		m.covered[v] = false
		m.cycleChecks++
		if m.cycleThroughVertex(VID(v)) {
			m.covered[v] = true
		} else {
			m.cover--
			removed++
		}
	}
	return removed
}

// Snapshot freezes the current graph into an immutable digraph.Graph.
func (m *Maintainer) Snapshot() *digraph.Graph {
	b := digraph.NewBuilder(len(m.out))
	for u := range m.out {
		for v := range m.out[u] {
			b.AddEdge(VID(u), v)
		}
	}
	return b.Build()
}

// Stats returns operation counters: edge inserts, deletes, bounded cycle
// searches, and cover additions.
func (m *Maintainer) Stats() (inserts, deletes, cycleChecks, coverAdds int64) {
	return m.inserts, m.deletes, m.cycleChecks, m.coverAdds
}

// cycleThroughEdge searches for a constrained cycle through edge (u, v)
// avoiding covered vertices: a path v -> ... -> u of length in
// [minLen-1, k-1] over uncovered vertices.
func (m *Maintainer) cycleThroughEdge(u, v VID) bool {
	m.marked = m.marked[:0]
	m.mark(u)
	m.mark(v)
	found := m.dfs(v, u, 1)
	for _, x := range m.marked {
		m.onPath[x] = false
	}
	return found
}

// cycleThroughVertex searches for a constrained cycle through s over
// uncovered vertices (s itself is temporarily uncovered by the caller).
func (m *Maintainer) cycleThroughVertex(s VID) bool {
	for v := range m.out[s] {
		if m.covered[v] {
			continue
		}
		m.marked = m.marked[:0]
		m.mark(s)
		if v == s {
			continue
		}
		m.mark(v)
		found := m.dfs(v, s, 1)
		for _, x := range m.marked {
			m.onPath[x] = false
		}
		if found {
			return true
		}
	}
	return false
}

func (m *Maintainer) mark(x VID) {
	m.onPath[x] = true
	m.marked = append(m.marked, x)
}

func (m *Maintainer) dfs(cur, target VID, depth int) bool {
	for w := range m.out[cur] {
		if w == target {
			if depth+1 >= m.minLen {
				return true
			}
			continue
		}
		if m.covered[w] || m.onPath[w] || depth+1 > m.k-1 {
			continue
		}
		m.mark(w)
		if m.dfs(w, target, depth+1) {
			return true
		}
		m.onPath[w] = false
	}
	return false
}
