package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"tdb/internal/fault"
)

// Checkpoint files. A checkpoint holds an opaque snapshot of the full state
// after applying every record with sequence number <= seq; once one is
// durable, all earlier segments and checkpoints are dead weight
// (RemoveObsolete). The file is written to a temp name, fsynced, and
// renamed into place, with a trailing CRC32-C over the body — so a crash at
// any point leaves either the previous checkpoint authoritative or a new
// fully-valid one, never a half state.

const ckptMagic = "TDBCKPT1"

func ckptPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x.snap", seq))
}

// WriteCheckpoint durably writes a checkpoint covering records <= seq.
func WriteCheckpoint(dir string, seq uint64, payload []byte) error {
	// Chaos hook: a panic here simulates dying at the start of a
	// checkpoint; the previous checkpoint must remain authoritative.
	fault.Inject(fault.SiteWALCheckpoint)
	path := ckptPath(dir, seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint temp: %w", err)
	}
	hdr := make([]byte, len(ckptMagic)+16)
	copy(hdr, ckptMagic)
	binary.LittleEndian.PutUint64(hdr[len(ckptMagic):], seq)
	binary.LittleEndian.PutUint64(hdr[len(ckptMagic)+8:], uint64(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[len(ckptMagic):])
	crc = crc32.Update(crc, castagnoli, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)

	werr := writeAll(f, hdr, payload, tail[:])
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: writing checkpoint: %w", werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: publishing checkpoint: %w", err)
	}
	return syncDir(dir)
}

func writeAll(f *os.File, chunks ...[]byte) error {
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			return err
		}
	}
	return nil
}

// readCheckpoint loads and validates one checkpoint file: magic, the seq
// embedded in the body matching the file name, a sane length, and the
// trailing CRC32-C. Any violation is an error (the caller falls back to an
// older checkpoint).
func readCheckpoint(path string, wantSeq uint64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(ckptMagic)+16+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("wal: checkpoint %s: bad header", path)
	}
	body := data[len(ckptMagic) : len(data)-4]
	seq := binary.LittleEndian.Uint64(body[0:8])
	plen := binary.LittleEndian.Uint64(body[8:16])
	if seq != wantSeq || plen != uint64(len(body)-16) {
		return nil, fmt.Errorf("wal: checkpoint %s: inconsistent header", path)
	}
	crc := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, fmt.Errorf("wal: checkpoint %s: checksum mismatch", path)
	}
	payload := body[16:]
	return payload, nil
}
