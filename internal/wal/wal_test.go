package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tdb/internal/fault"
)

func mustCreate(t *testing.T, dir string, next uint64, opts Options) *Log {
	t.Helper()
	l, err := Create(dir, next, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func appendN(t *testing.T, l *Log, payloads ...string) []uint64 {
	t.Helper()
	seqs := make([]uint64, 0, len(payloads))
	for _, p := range payloads {
		seq, err := l.Append([]byte(p))
		if err != nil {
			t.Fatalf("append %q: %v", p, err)
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

func recoverDir(t *testing.T, dir string) *Recovery {
	t.Helper()
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, 1, Options{Fsync: FsyncAlways})
	seqs := appendN(t, l, "alpha", "beta", "", "gamma")
	if got := l.LastSeq(); got != 4 {
		t.Fatalf("LastSeq=%d, want 4", got)
	}
	if l.Appends() != 4 || l.Fsyncs() != 4 {
		t.Fatalf("appends=%d fsyncs=%d, want 4/4 under FsyncAlways", l.Appends(), l.Fsyncs())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec := recoverDir(t, dir)
	if rec.Truncated || rec.Checkpoint != nil || rec.LastSeq != 4 {
		t.Fatalf("recovery: %+v", rec)
	}
	want := []string{"alpha", "beta", "", "gamma"}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i, r := range rec.Records {
		if r.Seq != seqs[i] || string(r.Payload) != want[i] {
			t.Fatalf("record %d: seq=%d payload=%q, want seq=%d payload=%q",
				i, r.Seq, r.Payload, seqs[i], want[i])
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	tamper := []struct {
		name string
		mod  func(t *testing.T, path string)
	}{
		{"garbage bytes", func(t *testing.T, path string) {
			appendBytes(t, path, []byte{0xde, 0xad, 0xbe, 0xef, 0x01})
		}},
		{"torn header", func(t *testing.T, path string) {
			appendBytes(t, path, []byte{7, 0, 0})
		}},
		{"torn payload", func(t *testing.T, path string) {
			rec := buildRecord(4, []byte("last-record"))
			appendBytes(t, path, rec[:len(rec)-5])
		}},
		{"checksum flip", func(t *testing.T, path string) {
			rec := buildRecord(4, []byte("flipped"))
			rec[len(rec)-1] ^= 0x40
			appendBytes(t, path, rec)
		}},
		{"sequence break", func(t *testing.T, path string) {
			appendBytes(t, path, buildRecord(9, []byte("from the future")))
		}},
		{"absurd length", func(t *testing.T, path string) {
			var hdr [recordHeaderLen]byte
			binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
			binary.LittleEndian.PutUint64(hdr[4:12], 4)
			appendBytes(t, path, hdr[:])
		}},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustCreate(t, dir, 1, Options{Fsync: FsyncAlways})
			appendN(t, l, "a", "b", "c")
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			tc.mod(t, segPath(dir, 1))

			rec := recoverDir(t, dir)
			if !rec.Truncated {
				t.Fatal("tampered tail not reported as truncated")
			}
			if rec.LastSeq != 3 || len(rec.Records) != 3 {
				t.Fatalf("after tamper: LastSeq=%d records=%d, want the 3 intact records", rec.LastSeq, len(rec.Records))
			}
			// The torn tail was physically removed: a second recovery is
			// clean and byte-identical.
			rec2 := recoverDir(t, dir)
			if rec2.Truncated || rec2.LastSeq != 3 || len(rec2.Records) != 3 {
				t.Fatalf("second recovery not clean: %+v", rec2)
			}
		})
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, 1, Options{Fsync: FsyncAlways})
	appendN(t, l, "a", "b")
	if err := WriteCheckpoint(dir, 2, []byte("state-after-2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	RemoveObsolete(dir, l.SegmentStart(), 2)
	appendN(t, l, "c")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(segPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("pre-checkpoint segment survived RemoveObsolete: %v", err)
	}
	rec := recoverDir(t, dir)
	if string(rec.Checkpoint) != "state-after-2" || rec.CheckpointSeq != 2 {
		t.Fatalf("checkpoint: seq=%d payload=%q", rec.CheckpointSeq, rec.Checkpoint)
	}
	if len(rec.Records) != 1 || rec.Records[0].Seq != 3 || string(rec.Records[0].Payload) != "c" {
		t.Fatalf("suffix records: %+v", rec.Records)
	}
	if rec.LastSeq != 3 {
		t.Fatalf("LastSeq=%d, want 3", rec.LastSeq)
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, 1, Options{Fsync: FsyncAlways})
	appendN(t, l, "a")
	if err := WriteCheckpoint(dir, 1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, "b")
	if err := WriteCheckpoint(dir, 2, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint: recovery must fall back to seq 1 and
	// replay record 2 from the (still present) segment.
	flipByte(t, ckptPath(dir, 2), -1)
	rec := recoverDir(t, dir)
	if rec.CheckpointSeq != 1 || string(rec.Checkpoint) != "good" {
		t.Fatalf("fallback checkpoint: seq=%d payload=%q", rec.CheckpointSeq, rec.Checkpoint)
	}
	if len(rec.Records) != 1 || rec.Records[0].Seq != 2 {
		t.Fatalf("suffix after fallback: %+v", rec.Records)
	}
}

func TestRecordsWithoutCoveringSegmentIsGap(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, 1, Options{Fsync: FsyncAlways})
	appendN(t, l, "a", "b", "c")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A checkpoint at 1 plus a segment starting at 3 leaves record 2
	// unaccounted for: recovery must refuse rather than silently skip it.
	if err := WriteCheckpoint(dir, 1, []byte("s1")); err != nil {
		t.Fatal(err)
	}
	seg, err := os.ReadFile(segPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild a segment holding only record 3.
	rest := append([]byte(segMagic), buildRecord(3, []byte("c"))...)
	if err := os.WriteFile(segPath(dir, 3), rest, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(segPath(dir, 1)); err != nil {
		t.Fatal(err)
	}
	_ = seg
	if _, err := Recover(dir); err == nil {
		t.Fatal("gap after checkpoint not detected")
	}
}

func TestAppendRollbackOnFsyncPanic(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, 1, Options{Fsync: FsyncAlways})
	appendN(t, l, "kept")

	disarm := fault.Arm(fault.SiteWALFsync, func() { panic("injected fsync failure") })
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected fsync panic did not propagate")
			}
		}()
		_, _ = l.Append([]byte("must-not-survive"))
	}()
	disarm()

	// The aborted record was truncated back out; the next append reuses its
	// sequence number and the log replays to exactly the acknowledged set.
	seq, err := l.Append([]byte("second"))
	if err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if seq != 2 {
		t.Fatalf("sequence after rollback=%d, want 2", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec := recoverDir(t, dir)
	if rec.Truncated || len(rec.Records) != 2 ||
		string(rec.Records[0].Payload) != "kept" || string(rec.Records[1].Payload) != "second" {
		t.Fatalf("log after rollback: truncated=%v records=%v", rec.Truncated, rec.Records)
	}
}

func TestCloseSyncsTailUnderFsyncNever(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, 1, Options{Fsync: FsyncNever})
	appendN(t, l, "a", "b")
	if l.Fsyncs() != 0 {
		t.Fatalf("FsyncNever synced %d times before Close", l.Fsyncs())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Fsyncs() != 1 {
		t.Fatalf("Close issued %d fsyncs, want exactly the tail flush", l.Fsyncs())
	}
	if rec := recoverDir(t, dir); len(rec.Records) != 2 {
		t.Fatalf("records after graceful close: %d, want 2", len(rec.Records))
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"always", FsyncAlways}, {"interval", FsyncInterval}, {"never", FsyncNever}} {
		p, err := ParsePolicy(tc.in)
		if err != nil || p != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, p, err)
		}
		if p.String() != tc.in {
			t.Errorf("Policy(%q).String() = %q", tc.in, p.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

func TestVirginDirAndMissingDir(t *testing.T) {
	rec := recoverDir(t, filepath.Join(t.TempDir(), "does-not-exist"))
	if rec.Checkpoint != nil || rec.LastSeq != 0 || len(rec.Records) != 0 {
		t.Fatalf("missing dir recovery: %+v", rec)
	}
}

// buildRecord encodes one wire-format record for tamper tests.
func buildRecord(seq uint64, payload []byte) []byte {
	rec := make([]byte, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[4:12], seq)
	binary.LittleEndian.PutUint32(rec[12:16], recordCRC(seq, payload))
	copy(rec[recordHeaderLen:], payload)
	return rec
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := off
	if i < 0 {
		i = len(data) + i
	}
	data[i] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRotationChain: multiple checkpoint/rotate cycles keep recovery exact.
func TestRotationChain(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, 1, Options{Fsync: FsyncAlways})
	var all []string
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			p := fmt.Sprintf("r%d-%d", round, i)
			appendN(t, l, p)
			all = append(all, p)
		}
		state := fmt.Sprintf("state@%d", l.LastSeq())
		if err := WriteCheckpoint(dir, l.LastSeq(), []byte(state)); err != nil {
			t.Fatal(err)
		}
		if err := l.Rotate(); err != nil {
			t.Fatal(err)
		}
		RemoveObsolete(dir, l.SegmentStart(), l.LastSeq())
	}
	appendN(t, l, "tail")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec := recoverDir(t, dir)
	if rec.CheckpointSeq != 15 || !bytes.Equal(rec.Checkpoint, []byte("state@15")) {
		t.Fatalf("checkpoint after chain: seq=%d payload=%q", rec.CheckpointSeq, rec.Checkpoint)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Payload) != "tail" || rec.LastSeq != 16 {
		t.Fatalf("suffix after chain: %+v (LastSeq=%d)", rec.Records, rec.LastSeq)
	}
	_ = all
}
