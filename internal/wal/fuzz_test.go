package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the log reader as a segment file.
// Recovery must never panic: it either replays cleanly or truncates at a
// record boundary. Whatever it keeps must be a contiguous, checksum-valid
// record sequence, and a second recovery over the truncated file must agree
// with the first (idempotence).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add([]byte("TDBWAL00 close but wrong"))
	f.Add(append([]byte(segMagic), buildRecord(1, []byte("ok"))...))
	f.Add(append([]byte(segMagic), buildRecord(2, []byte("starts past 1"))...))
	two := append([]byte(segMagic), buildRecord(1, []byte("a"))...)
	two = append(two, buildRecord(2, []byte("b"))...)
	f.Add(two)
	torn := append([]byte(segMagic), buildRecord(1, []byte("a"))...)
	f.Add(append(torn, buildRecord(2, bytes.Repeat([]byte("x"), 100))[:40]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "wal-0000000000000001.log")
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir)
		if err != nil {
			// Only the gap-after-checkpoint refusal is a legal error here,
			// and with no checkpoint present that means a first record > 1.
			return
		}
		prev := uint64(0)
		for _, r := range rec.Records {
			if r.Seq == 0 || (prev != 0 && r.Seq != prev+1) {
				t.Fatalf("non-contiguous recovered sequence: %d after %d", r.Seq, prev)
			}
			if recordCRC(r.Seq, r.Payload) == 0 && len(r.Payload) == 0 && r.Seq == 0 {
				t.Fatal("unreachable")
			}
			prev = r.Seq
		}
		if rec.LastSeq != prev {
			t.Fatalf("LastSeq=%d but last record is %d", rec.LastSeq, prev)
		}

		rec2, err := Recover(dir)
		if err != nil {
			t.Fatalf("second recovery errored after truncation: %v", err)
		}
		if rec2.Truncated {
			t.Fatal("second recovery still sees a torn tail; truncation not idempotent")
		}
		if rec2.LastSeq != rec.LastSeq || len(rec2.Records) != len(rec.Records) {
			t.Fatalf("recoveries disagree: first (last=%d, n=%d), second (last=%d, n=%d)",
				rec.LastSeq, len(rec.Records), rec2.LastSeq, len(rec2.Records))
		}
		for i := range rec.Records {
			if rec.Records[i].Seq != rec2.Records[i].Seq ||
				!bytes.Equal(rec.Records[i].Payload, rec2.Records[i].Payload) {
				t.Fatalf("record %d differs between recoveries", i)
			}
		}
	})
}
