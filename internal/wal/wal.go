// Package wal implements the durability layer under tdbserve: a
// write-ahead log of checksummed, length-prefixed records plus snapshot
// checkpoint files that let the log be truncated (DESIGN.md §14).
//
// The log is a sequence of segment files (wal-<firstSeq>.log). Every record
// carries a CRC32-C (Castagnoli) checksum and a monotonically increasing
// sequence number, so recovery can detect a torn tail — a record the
// process was mid-write on when it died — and discard it at a record
// boundary instead of refusing to start. Checkpoint files
// (ckpt-<seq>.snap) hold an opaque state snapshot covering every record up
// to <seq>; recovery loads the newest valid checkpoint and replays only the
// suffix, and segments at or below a durable checkpoint are deleted.
//
// Durability is governed by the fsync Policy:
//
//   - FsyncAlways — every Append syncs before returning; an acknowledged
//     record survives any crash.
//   - FsyncInterval — a background goroutine syncs every Interval; a crash
//     loses at most the records acknowledged inside the last window.
//   - FsyncNever — the OS flushes on its own schedule; a crash may lose
//     any records the kernel had not written back (Close still syncs, so a
//     graceful shutdown loses nothing).
//
// The append path guarantees the log never holds bytes for a write the
// caller did not get a success for: a failed or panicking Append (including
// a failed synchronous fsync) truncates the partial record back out before
// the error propagates, so under FsyncAlways the on-disk record sequence is
// exactly the acknowledged sequence.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tdb/internal/fault"
)

// Policy selects when appended records are fsynced to stable storage.
type Policy uint8

const (
	// FsyncAlways syncs inside every Append, before the record is
	// acknowledged. The default.
	FsyncAlways Policy = iota
	// FsyncInterval syncs on a background timer (Options.Interval).
	FsyncInterval
	// FsyncNever leaves write-back to the operating system.
	FsyncNever
)

// ParsePolicy parses "always", "interval" or "never".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// String returns the flag spelling of p.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Options configures a Log.
type Options struct {
	// Fsync is the sync policy (default FsyncAlways).
	Fsync Policy
	// Interval is the background sync cadence under FsyncInterval
	// (default 100ms).
	Interval time.Duration
}

const (
	segMagic = "TDBWAL01"
	// recordHeaderLen is payload length (4) + sequence (8) + CRC32-C (4).
	recordHeaderLen = 16
	// maxRecordBytes bounds one record's payload; a length field beyond it
	// is treated as corruption, never as an allocation request.
	maxRecordBytes = 1 << 26
)

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64), the same checksum most production WALs use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recordCRC covers the sequence number and the payload, so a record copied
// to the wrong position (or a stale record exposed by a short tail
// truncate) fails its checksum even when its bytes are individually intact.
func recordCRC(seq uint64, payload []byte) uint32 {
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], seq)
	c := crc32.Update(0, castagnoli, sb[:])
	return crc32.Update(c, castagnoli, payload)
}

func segPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", firstSeq))
}

// Log is an append-only write-ahead log. Append/Sync/Rotate/Close are safe
// for concurrent use, though tdbserve drives them from its single writer
// goroutine (plus the background sync timer under FsyncInterval).
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	segStart uint64 // first sequence number of the active segment
	next     uint64 // sequence number the next Append will use
	size     int64  // committed byte length of the active segment
	dirty    bool   // bytes written since the last sync
	failed   error  // sticky: a failed log never silently half-works

	stop chan struct{} // interval syncer shutdown
	done chan struct{}

	appends atomic.Int64
	fsyncs  atomic.Int64

	recBuf []byte
}

// Create opens dir for appending with nextSeq as the first sequence number,
// starting a fresh segment (an existing file with the same name — an orphan
// from a truncated timeline — is clobbered). Call Recover first to learn
// nextSeq; Create never reads existing records.
func Create(dir string, nextSeq uint64, opts Options) (*Log, error) {
	if nextSeq == 0 {
		return nil, fmt.Errorf("wal: sequence numbers start at 1")
	}
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating data dir: %w", err)
	}
	l := &Log{dir: dir, opts: opts, next: nextSeq}
	if err := l.openSegmentLocked(nextSeq); err != nil {
		return nil, err
	}
	if opts.Fsync == FsyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// openSegmentLocked starts the segment whose first record will be firstSeq:
// create/truncate, write the magic, sync the file and the directory so the
// segment itself survives a crash.
func (l *Log) openSegmentLocked(firstSeq uint64) error {
	f, err := os.OpenFile(segPath(l.dir, firstSeq), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment magic: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing new segment: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segStart = firstSeq
	l.size = int64(len(segMagic))
	l.dirty = false
	return nil
}

// syncDir makes directory-entry changes (new segments, checkpoint renames)
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing dir: %w", err)
	}
	return nil
}

// Append writes one record and returns its sequence number. Under
// FsyncAlways the record is on stable storage when Append returns. On any
// failure — a short write, a failed fsync, or a panic out of the fault
// probes — the partial record is truncated back out of the file before the
// error (or panic) propagates, so an unacknowledged batch never survives
// into recovery.
func (l *Log) Append(payload []byte) (seq uint64, err error) {
	// Chaos hook: a panic here simulates the writer dying on the append
	// path before any bytes are written; the log must stay byte-identical.
	fault.Inject(fault.SiteWALAppend)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return 0, l.failed
	}
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record payload %d bytes exceeds the %d byte cap", len(payload), maxRecordBytes)
	}

	need := recordHeaderLen + len(payload)
	if cap(l.recBuf) < need {
		l.recBuf = make([]byte, need)
	}
	rec := l.recBuf[:need]
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[4:12], l.next)
	binary.LittleEndian.PutUint32(rec[12:16], recordCRC(l.next, payload))
	copy(rec[recordHeaderLen:], payload)

	// Roll back on every non-committed exit, panics included: the bytes of
	// a record the caller never got a success for must not linger in the
	// file, or recovery would replay a batch the client was told failed.
	committed := false
	defer func() {
		if !committed {
			if terr := l.f.Truncate(l.size); terr != nil && l.failed == nil {
				l.failed = fmt.Errorf("wal: truncating aborted record: %w", terr)
			}
			l.dirty = true // the truncate itself needs a sync eventually
		}
	}()

	if _, werr := l.f.WriteAt(rec, l.size); werr != nil {
		l.failed = fmt.Errorf("wal: appending record: %w", werr)
		return 0, l.failed
	}
	l.dirty = true
	if l.opts.Fsync == FsyncAlways {
		if serr := l.syncLocked(); serr != nil {
			return 0, serr
		}
	}
	committed = true
	l.size += int64(need)
	seq = l.next
	l.next++
	l.appends.Add(1)
	return seq, nil
}

// syncLocked fsyncs the active segment if it has unsynced bytes.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	// Chaos hook: a panic here simulates an fsync failure with the record
	// bytes already in the file; Append's rollback must remove them.
	fault.Inject(fault.SiteWALFsync)
	if err := l.f.Sync(); err != nil {
		l.failed = fmt.Errorf("wal: fsync: %w", err)
		return l.failed
	}
	l.dirty = false
	l.fsyncs.Add(1)
	return nil
}

// Sync flushes unsynced records to stable storage (a no-op when clean).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	return l.syncLocked()
}

// syncLoop is the FsyncInterval background syncer.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync() // a failure is sticky; the next Append reports it
		case <-l.stop:
			return
		}
	}
}

// Rotate syncs and closes the active segment and starts a fresh one at the
// next sequence number. Called after a checkpoint so the old segments can
// be deleted.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.failed = fmt.Errorf("wal: closing segment: %w", err)
		return l.failed
	}
	if err := l.openSegmentLocked(l.next); err != nil {
		l.failed = err
		return err
	}
	return nil
}

// Close stops the background syncer (if any), flushes and fsyncs the tail
// regardless of policy — a graceful shutdown must not leave acknowledged
// records in the page cache — and closes the segment.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
		l.stop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.failed
	}
	err := l.failed
	if err == nil {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: closing segment: %w", cerr)
	}
	l.f = nil
	if l.failed == nil {
		l.failed = fmt.Errorf("wal: log closed")
	}
	return err
}

// LastSeq returns the sequence number of the last appended record, or one
// less than the starting sequence when nothing was appended.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// SegmentStart returns the first sequence number of the active segment.
func (l *Log) SegmentStart() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segStart
}

// Appends returns the number of records appended over the log's lifetime.
func (l *Log) Appends() int64 { return l.appends.Load() }

// Fsyncs returns the number of fsyncs issued over the log's lifetime.
func (l *Log) Fsyncs() int64 { return l.fsyncs.Load() }
