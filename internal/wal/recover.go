package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Record is one recovered log record.
type Record struct {
	Seq     uint64
	Payload []byte
}

// Recovery is the durable state found in a data directory.
type Recovery struct {
	// CheckpointSeq is the sequence number the newest valid checkpoint
	// covers (0 when Checkpoint is nil).
	CheckpointSeq uint64
	// Checkpoint is the newest valid checkpoint's payload, nil when the
	// directory holds no valid checkpoint.
	Checkpoint []byte
	// Records are the replayable records after the checkpoint: contiguous
	// sequence numbers starting at CheckpointSeq+1.
	Records []Record
	// LastSeq is the highest durable sequence number:
	// max(CheckpointSeq, last record). The next Append belongs at LastSeq+1.
	LastSeq uint64
	// Truncated reports that a torn or corrupt tail was found and
	// discarded at a record boundary (the torn file was physically
	// truncated so the next scan is clean).
	Truncated bool
}

// Recover scans dir and returns everything needed to rebuild state: the
// newest valid checkpoint plus the contiguous record suffix after it.
//
// The torn-tail rule: scanning stops at the first invalid record — a short
// header, a length beyond the record cap, a checksum mismatch, or a
// sequence break — and everything from there on (including later segment
// files) is discarded. A partial final record is the expected signature of
// a crash mid-append and is never fatal; only I/O errors are. The torn file
// is truncated back to the last good record boundary so the discard is
// idempotent. Records at or below the checkpoint are parsed (their
// checksums still guard the scan) but not returned.
//
// A missing or empty directory is a valid empty log.
func Recover(dir string) (*Recovery, error) {
	rec := &Recovery{}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return rec, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: reading data dir: %w", err)
	}

	var segs []uint64
	var ckpts []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeqName(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, seq)
		}
		if seq, ok := parseSeqName(e.Name(), "ckpt-", ".snap"); ok {
			ckpts = append(ckpts, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })

	// Newest checkpoint that passes its checksum wins; a torn checkpoint
	// (crash mid-write before the atomic rename would normally hide it, or
	// bit rot after) falls back to the previous one.
	for _, seq := range ckpts {
		payload, err := readCheckpoint(ckptPath(dir, seq), seq)
		if err != nil {
			continue
		}
		rec.CheckpointSeq = seq
		rec.Checkpoint = payload
		break
	}
	rec.LastSeq = rec.CheckpointSeq

	// Segments are named by their first sequence number, so the expectation
	// is never open-ended: a segment's first record must be the seq in its
	// name, and each later record the successor of the previous. A
	// checksum-valid record at the wrong position (say, stray bytes appended
	// to a freshly rotated, still-empty segment) is torn tail, not history.
	expect := uint64(0)
	for _, start := range segs {
		if expect != 0 && start != expect {
			// This segment does not continue the previous one's timeline
			// (its predecessor lost records to truncation); past the break
			// nothing is trustworthy.
			rec.Truncated = true
			break
		}
		expect = start
		ok, err := scanSegment(segPath(dir, start), rec, &expect)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Torn or broken tail inside this segment: later segments are
			// past the break and cannot be contiguous.
			break
		}
	}
	if len(rec.Records) > 0 && rec.Records[0].Seq != rec.CheckpointSeq+1 {
		// The records do not connect to the checkpoint (a segment covering
		// the gap is missing). Replaying them would skip acknowledged
		// writes silently; refuse instead.
		return nil, fmt.Errorf("wal: record gap after checkpoint %d (first surviving record is %d)",
			rec.CheckpointSeq, rec.Records[0].Seq)
	}
	return rec, nil
}

// scanSegment appends path's valid records to rec. It returns ok=false when
// the scan hit a torn/corrupt record (the file is truncated to the last
// good boundary and later segments must be ignored); errors are real I/O
// failures only.
func scanSegment(path string, rec *Recovery, expect *uint64) (ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != segMagic {
		if err == io.EOF {
			// Zero-length segment: what truncating an unusable file leaves
			// behind. Clean and empty, not torn — keeps recovery idempotent.
			return true, nil
		}
		if err != nil && err != io.ErrUnexpectedEOF {
			return false, fmt.Errorf("wal: reading segment magic: %w", err)
		}
		// A segment without its magic is a file the crash caught before the
		// first durable write; nothing in it is trustworthy.
		rec.Truncated = true
		return false, truncateAt(f, path, 0)
	}

	good := int64(len(segMagic)) // last known-good record boundary
	hdr := make([]byte, recordHeaderLen)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return true, nil // clean end of segment
			}
			if err == io.ErrUnexpectedEOF {
				rec.Truncated = true // torn header
				return false, truncateAt(f, path, good)
			}
			return false, fmt.Errorf("wal: reading record header: %w", err)
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		seq := binary.LittleEndian.Uint64(hdr[4:12])
		crc := binary.LittleEndian.Uint32(hdr[12:16])
		if plen > maxRecordBytes || seq == 0 {
			rec.Truncated = true
			return false, truncateAt(f, path, good)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				rec.Truncated = true // torn payload
				return false, truncateAt(f, path, good)
			}
			return false, fmt.Errorf("wal: reading record payload: %w", err)
		}
		if recordCRC(seq, payload) != crc {
			rec.Truncated = true
			return false, truncateAt(f, path, good)
		}
		if seq != *expect {
			// A checksum-valid record out of sequence: the log's timeline is
			// broken here; everything from this point on is unusable.
			rec.Truncated = true
			return false, truncateAt(f, path, good)
		}
		*expect = seq + 1
		good += recordHeaderLen + int64(plen)
		if seq > rec.CheckpointSeq {
			rec.Records = append(rec.Records, Record{Seq: seq, Payload: payload})
		}
		if seq > rec.LastSeq {
			rec.LastSeq = seq
		}
	}
}

// truncateAt discards the torn tail of path past off so re-running recovery
// sees a clean boundary. Truncation failure is not fatal — the same scan
// will make the same decision next time.
func truncateAt(f *os.File, path string, off int64) error {
	_ = f.Close()
	w, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil
	}
	_ = w.Truncate(off)
	_ = w.Sync()
	_ = w.Close()
	return nil
}

// parseSeqName extracts the hex sequence number from prefix<seq>suffix.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexPart := name[len(prefix) : len(name)-len(suffix)]
	if len(hexPart) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// RemoveObsolete deletes files a fresh checkpoint made redundant: segments
// other than the active one (their records are all covered by the
// checkpoint), checkpoints older than keepCkpt, and stray temp files from
// interrupted checkpoint writes. Call it only after the covering checkpoint
// is durably on disk. Removal failures are ignored — obsolete files are
// garbage, not state, and the next checkpoint retries.
func RemoveObsolete(dir string, activeSeg, keepCkpt uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if seq, ok := parseSeqName(name, "wal-", ".log"); ok && seq != activeSeg {
			_ = os.Remove(filepath.Join(dir, name))
		}
		if seq, ok := parseSeqName(name, "ckpt-", ".snap"); ok && seq < keepCkpt {
			_ = os.Remove(filepath.Join(dir, name))
		}
		if strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}
