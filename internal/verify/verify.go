// Package verify checks hop-constrained cycle covers: validity (no
// constrained cycle survives removal of the cover) and minimality (every
// cover vertex is necessary). It also provides a brute-force optimal cover
// for tiny graphs, used as a test oracle, and a parallel validity checker
// for large instances.
package verify

import (
	"fmt"
	"runtime"
	"sync"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
)

// VID aliases digraph.VID.
type VID = digraph.VID

// Report is the outcome of Check.
type Report struct {
	Valid   bool
	Minimal bool
	// Witness explains a failure: for an invalid cover, one surviving
	// constrained cycle; for a non-minimal cover, nil (see Redundant).
	Witness []VID
	// Redundant lists cover vertices that could be removed (only populated
	// when minimality was requested and failed).
	Redundant []VID
}

func activeWithout(n int, cover []VID) []bool {
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	for _, v := range cover {
		if int(v) >= n {
			panic(fmt.Sprintf("verify: cover vertex %d out of range (n=%d)", v, n))
		}
		active[v] = false
	}
	return active
}

// IsValid reports whether cover intersects every cycle of length in
// [minLen, k]: the graph minus the cover must contain no such cycle.
// It returns a surviving cycle as a witness when the cover is invalid.
func IsValid(g digraph.Adjacency, k, minLen int, cover []VID) (bool, []VID) {
	active := activeWithout(g.NumVertices(), cover)
	det := cycle.NewBlockDetector(g, k, minLen, active)
	filter := cycle.NewBFSFilter(g, k, active)
	for v := 0; v < g.NumVertices(); v++ {
		if !active[v] {
			continue
		}
		if filter.CanPrune(VID(v)) {
			continue
		}
		if c := det.FindFrom(VID(v)); c != nil {
			return false, c
		}
	}
	return true, nil
}

// IsValidParallel is IsValid fanned out over worker goroutines. Each worker
// owns its detector state; the shared active mask is read-only. workers <= 0
// selects GOMAXPROCS. Note the witness from a parallel run is whichever
// surviving cycle a worker found first.
func IsValidParallel(g digraph.Adjacency, k, minLen int, cover []VID, workers int) (bool, []VID) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	active := activeWithout(n, cover)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		witness []VID
		next    int64
	)
	var nextMu sync.Mutex
	const chunk = 1024
	grab := func() (int, int) {
		nextMu.Lock()
		defer nextMu.Unlock()
		lo := int(next)
		if lo >= n {
			return n, n
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		next = int64(hi)
		return lo, hi
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return witness != nil
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			det := cycle.NewBlockDetector(g, k, minLen, active)
			filter := cycle.NewBFSFilter(g, k, active)
			for {
				lo, hi := grab()
				if lo >= hi || failed() {
					return
				}
				for v := lo; v < hi; v++ {
					if !active[v] || filter.CanPrune(VID(v)) {
						continue
					}
					if c := det.FindFrom(VID(v)); c != nil {
						mu.Lock()
						if witness == nil {
							witness = c
						}
						mu.Unlock()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return witness == nil, witness
}

// IsMinimal reports whether every cover vertex is necessary: restoring any
// single cover vertex into the reduced graph must expose a constrained
// cycle through it. It returns the redundant vertices otherwise. The cover
// is assumed valid.
func IsMinimal(g digraph.Adjacency, k, minLen int, cover []VID) (bool, []VID) {
	active := activeWithout(g.NumVertices(), cover)
	det := cycle.NewBlockDetector(g, k, minLen, active)
	var redundant []VID
	for _, v := range cover {
		active[v] = true
		if !det.HasCycleThrough(v) {
			redundant = append(redundant, v)
		}
		active[v] = false
	}
	return len(redundant) == 0, redundant
}

// Check runs both validity and (optionally) minimality.
func Check(g digraph.Adjacency, k, minLen int, cover []VID, wantMinimal bool) Report {
	rep := Report{}
	rep.Valid, rep.Witness = IsValid(g, k, minLen, cover)
	if !rep.Valid {
		return rep
	}
	if wantMinimal {
		rep.Minimal, rep.Redundant = IsMinimal(g, k, minLen, cover)
	} else {
		rep.Minimal = true
	}
	return rep
}

// BruteForceOptimal returns a minimum-size cover by exhaustive subset
// search over the vertices that appear on at least one constrained cycle.
// It is exponential and intended for graphs with at most ~20 on-cycle
// vertices (the test oracle for optimality-gap measurements).
func BruteForceOptimal(g digraph.Adjacency, k, minLen int) []VID {
	cycles := cycle.NewEnumerator(g, k, minLen, nil).All()
	if len(cycles) == 0 {
		return nil
	}
	// Compress to on-cycle vertices.
	idOf := map[VID]int{}
	var verts []VID
	for _, c := range cycles {
		for _, v := range c {
			if _, ok := idOf[v]; !ok {
				idOf[v] = len(verts)
				verts = append(verts, v)
			}
		}
	}
	if len(verts) > 30 {
		panic(fmt.Sprintf("verify: BruteForceOptimal on %d on-cycle vertices is infeasible", len(verts)))
	}
	masks := make([]uint64, len(cycles))
	for i, c := range cycles {
		for _, v := range c {
			masks[i] |= 1 << idOf[v]
		}
	}
	// Iterate subsets by increasing popcount via size-bounded DFS.
	for size := 1; size <= len(verts); size++ {
		if sel := searchSubset(masks, len(verts), size, 0, 0); sel != 0 {
			var cover []VID
			for i, v := range verts {
				if sel&(1<<i) != 0 {
					cover = append(cover, v)
				}
			}
			return cover
		}
	}
	return nil // unreachable: the full vertex set always covers
}

// searchSubset finds a subset of exactly `size` vertices (from position
// `from` upward, already-selected bits in `sel`) hitting all masks, and
// returns it, or 0.
func searchSubset(masks []uint64, nverts, size, from int, sel uint64) uint64 {
	if size == 0 {
		for _, m := range masks {
			if m&sel == 0 {
				return 0
			}
		}
		return sel
	}
	for i := from; i+size <= nverts; i++ {
		if got := searchSubset(masks, nverts, size-1, i+1, sel|1<<i); got != 0 {
			return got
		}
	}
	return 0
}
