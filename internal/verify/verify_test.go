package verify

import (
	"math/rand/v2"
	"testing"

	"tdb/internal/cycle"
	"tdb/internal/digraph"
)

func g(n int, pairs ...VID) *digraph.Graph {
	b := digraph.NewBuilder(n)
	for i := 0; i+1 < len(pairs); i += 2 {
		b.AddEdge(pairs[i], pairs[i+1])
	}
	return b.Build()
}

func TestIsValidBasic(t *testing.T) {
	tri := g(3, 0, 1, 1, 2, 2, 0)
	if ok, _ := IsValid(tri, 5, 3, nil); ok {
		t.Fatal("empty cover of a triangle should be invalid")
	}
	ok, witness := IsValid(tri, 5, 3, []VID{0})
	if !ok {
		t.Fatalf("cover {0} should be valid, witness %v", witness)
	}
	// A witness is returned for the invalid case.
	if ok, witness := IsValid(tri, 5, 3, []VID{}); ok || len(witness) != 3 {
		t.Fatalf("want a 3-cycle witness, got ok=%v witness=%v", ok, witness)
	}
}

func TestIsValidRespectsKAndMinLen(t *testing.T) {
	ring6 := g(6, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0)
	if ok, _ := IsValid(ring6, 5, 3, nil); !ok {
		t.Fatal("6-ring has no cycle of length <= 5; empty cover is valid")
	}
	if ok, _ := IsValid(ring6, 6, 3, nil); ok {
		t.Fatal("k=6 must see the 6-ring")
	}
	two := g(2, 0, 1, 1, 0)
	if ok, _ := IsValid(two, 5, 3, nil); !ok {
		t.Fatal("2-cycle invisible at minLen=3")
	}
	if ok, _ := IsValid(two, 5, 2, nil); ok {
		t.Fatal("2-cycle must be seen at minLen=2")
	}
}

func TestIsMinimal(t *testing.T) {
	tri := g(3, 0, 1, 1, 2, 2, 0)
	if ok, _ := IsMinimal(tri, 5, 3, []VID{0}); !ok {
		t.Fatal("{0} is minimal for a triangle")
	}
	ok, redundant := IsMinimal(tri, 5, 3, []VID{0, 1})
	if ok {
		t.Fatal("{0,1} is not minimal")
	}
	if len(redundant) != 2 {
		// Restoring either vertex alone exposes no cycle (the other is
		// still removed), so both are flagged.
		t.Fatalf("redundant = %v, want both vertices", redundant)
	}
}

func TestCheck(t *testing.T) {
	tri := g(3, 0, 1, 1, 2, 2, 0)
	rep := Check(tri, 5, 3, []VID{0}, true)
	if !rep.Valid || !rep.Minimal {
		t.Fatalf("report %+v, want valid+minimal", rep)
	}
	rep = Check(tri, 5, 3, nil, true)
	if rep.Valid || rep.Witness == nil {
		t.Fatalf("report %+v, want invalid with witness", rep)
	}
	rep = Check(tri, 5, 3, []VID{0, 1}, false)
	if !rep.Valid || !rep.Minimal {
		t.Fatal("minimality must be vacuously true when not requested")
	}
}

func TestIsValidParallelAgreesWithSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	for iter := 0; iter < 30; iter++ {
		n := 4 + rng.IntN(40)
		b := digraph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		gr := b.Build()
		var cover []VID
		for v := 0; v < n; v++ {
			if rng.IntN(3) == 0 {
				cover = append(cover, VID(v))
			}
		}
		seq, _ := IsValid(gr, 4, 3, cover)
		par, _ := IsValidParallel(gr, 4, 3, cover, 4)
		if seq != par {
			t.Fatalf("iter %d: sequential=%v parallel=%v", iter, seq, par)
		}
		// Default worker count path.
		par2, _ := IsValidParallel(gr, 4, 3, cover, 0)
		if seq != par2 {
			t.Fatalf("iter %d: parallel default workers disagrees", iter)
		}
	}
}

func TestBruteForceOptimal(t *testing.T) {
	// Two vertex-disjoint triangles: optimum 2.
	gr := g(6, 0, 1, 1, 2, 2, 0, 3, 4, 4, 5, 5, 3)
	opt := BruteForceOptimal(gr, 5, 3)
	if len(opt) != 2 {
		t.Fatalf("optimum %v, want size 2", opt)
	}
	if ok, _ := IsValid(gr, 5, 3, opt); !ok {
		t.Fatal("brute-force result is not even valid")
	}
	// Two triangles sharing vertex 0: optimum 1.
	shared := g(5, 0, 1, 1, 2, 2, 0, 0, 3, 3, 4, 4, 0)
	opt = BruteForceOptimal(shared, 5, 3)
	if len(opt) != 1 || opt[0] != 0 {
		t.Fatalf("optimum %v, want [0]", opt)
	}
	// Acyclic: empty optimum.
	if opt := BruteForceOptimal(g(3, 0, 1, 1, 2), 5, 3); opt != nil {
		t.Fatalf("optimum %v on a DAG, want nil", opt)
	}
}

// Property: brute force is never larger than any valid cover found by
// removing one vertex at a time greedily.
func TestBruteForceIsOptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	for iter := 0; iter < 25; iter++ {
		n := 4 + rng.IntN(5)
		b := digraph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		gr := b.Build()
		opt := BruteForceOptimal(gr, 4, 3)
		if ok, _ := IsValid(gr, 4, 3, opt); !ok {
			t.Fatalf("iter %d: optimum invalid", iter)
		}
		// Every subset smaller than opt must be invalid — spot-check the
		// empty set and all singletons when |opt| >= 2.
		if len(opt) >= 1 {
			if ok, _ := IsValid(gr, 4, 3, nil); ok {
				t.Fatalf("iter %d: empty cover valid but optimum nonempty", iter)
			}
		}
		if len(opt) >= 2 {
			for v := 0; v < n; v++ {
				if ok, _ := IsValid(gr, 4, 3, []VID{VID(v)}); ok {
					t.Fatalf("iter %d: singleton {%d} valid but optimum %v", iter, v, opt)
				}
			}
		}
	}
}

func TestIsValidOutOfRangeCoverPanics(t *testing.T) {
	gr := g(3, 0, 1, 1, 2, 2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range cover vertex")
		}
	}()
	IsValid(gr, 5, 3, []VID{7})
}

func TestWitnessIsARealCycle(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	for iter := 0; iter < 20; iter++ {
		n := 4 + rng.IntN(10)
		b := digraph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		gr := b.Build()
		ok, witness := IsValid(gr, 5, 3, nil)
		if ok {
			continue
		}
		if len(witness) < 3 || len(witness) > 5 {
			t.Fatalf("iter %d: witness %v has bad length", iter, witness)
		}
		for i, v := range witness {
			if !gr.HasEdge(v, witness[(i+1)%len(witness)]) {
				t.Fatalf("iter %d: witness %v is not a cycle", iter, witness)
			}
		}
	}
}

func TestLargeInstanceParallel(t *testing.T) {
	// A ring of triangles: cover must pick one vertex per triangle.
	n := 3000
	b := digraph.NewBuilder(3 * n)
	var cover []VID
	for i := 0; i < n; i++ {
		a, c, d := VID(3*i), VID(3*i+1), VID(3*i+2)
		b.AddEdge(a, c)
		b.AddEdge(c, d)
		b.AddEdge(d, a)
		b.AddEdge(a, VID((3*(i+1))%(3*n)))
		cover = append(cover, a)
	}
	gr := b.Build()
	if ok, _ := IsValidParallel(gr, 5, 3, cover, 0); !ok {
		t.Fatal("per-triangle cover should be valid")
	}
	if ok, _ := IsValidParallel(gr, 5, 3, cover[:n-1], 0); ok {
		t.Fatal("dropping one triangle's vertex must be caught")
	}
	if ok, _ := IsMinimal(gr, 5, 3, cover); !ok {
		t.Fatal("per-triangle cover is minimal")
	}
	_ = cycle.DefaultMinLen
}
