package fault

import (
	"strings"
	"testing"
)

// TestSiteRegistry pins the registry invariants the faultsite analyzer
// leans on: every registered site is non-empty, unique, and follows the
// <package>/<path> naming convention.
func TestSiteRegistry(t *testing.T) {
	seen := map[Site]bool{}
	for _, s := range Sites() {
		if s == "" {
			t.Fatal("empty site name in registry")
		}
		if seen[s] {
			t.Fatalf("duplicate site %q", s)
		}
		seen[s] = true
		if !strings.Contains(string(s), "/") {
			t.Errorf("site %q does not follow the <package>/<path> convention", s)
		}
	}
	if len(seen) == 0 {
		t.Fatal("registry is empty")
	}
}

// TestArmInjectDisarm exercises the arm/inject/disarm lifecycle against a
// registered site without leaking arming into other tests.
func TestArmInjectDisarm(t *testing.T) {
	var fired int
	disarm := Arm(SiteCoreCompute, func() { fired++ })
	Inject(SiteCoreCompute)
	Inject(SiteServerReader) // not armed: must not fire the hook
	disarm()
	disarm() // idempotent
	Inject(SiteCoreCompute)
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed count %d after disarm, want 0", got)
	}
}
