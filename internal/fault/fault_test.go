package fault

import (
	"strings"
	"testing"
)

// TestSiteRegistry pins the registry invariants the faultsite analyzer
// leans on: every registered site is non-empty, unique, and follows the
// <package>/<path> naming convention.
func TestSiteRegistry(t *testing.T) {
	seen := map[Site]bool{}
	for _, s := range Sites() {
		if s == "" {
			t.Fatal("empty site name in registry")
		}
		if seen[s] {
			t.Fatalf("duplicate site %q", s)
		}
		seen[s] = true
		if !strings.Contains(string(s), "/") {
			t.Errorf("site %q does not follow the <package>/<path> convention", s)
		}
	}
	if len(seen) == 0 {
		t.Fatal("registry is empty")
	}
}

// TestArmInjectDisarm exercises the arm/inject/disarm lifecycle —
// multiple hooks in arming order, idempotent disarm, and the armed
// counter returning to its disarmed baseline. (Moved here from
// internal/core's robust suite: the plumbing under test is this
// package's, and the faultsite analyzer bans Inject calls in other
// packages' test files.)
func TestArmInjectDisarm(t *testing.T) {
	var hits int
	d1 := Arm(SiteCoreCompute, func() { hits++ })
	d2 := Arm(SiteCoreCompute, func() { hits += 10 })
	Inject(SiteCoreCompute)
	Inject(SiteServerReader) // not armed: must not fire the hooks
	if hits != 11 {
		t.Fatalf("hits=%d, want 11 (both hooks, in arming order)", hits)
	}
	d1()
	d1() // idempotent
	Inject(SiteCoreCompute)
	if hits != 21 {
		t.Fatalf("hits=%d, want 21 (second hook only)", hits)
	}
	d2()
	Inject(SiteCoreCompute)
	if hits != 21 {
		t.Fatalf("hits=%d, want 21 (all disarmed)", hits)
	}
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed count %d after disarm, want 0", got)
	}
}
