// Package fault provides build-tag-free fault-injection hooks for the
// robustness test suites (worker panic isolation, server chaos soak).
//
// Production code marks interesting failure points with Inject(site); tests
// Arm a site with an arbitrary hook — typically one that panics, sleeps, or
// panics with some probability — and the hook runs inline at the site on
// whatever goroutine reaches it. Sites are compiled into release binaries
// on purpose (no build tag): the disarmed fast path is a single atomic load
// of a package-level counter, cheap enough for the per-chunk/per-request
// granularity the sites sit at, and keeping the test binary identical to the
// production one means the chaos suite exercises the exact scheduling the
// deployment runs.
package fault

import (
	"sync"
	"sync/atomic"
)

// armed counts currently armed hooks across all sites; Inject returns
// immediately while it is zero, so disarmed programs pay one atomic load per
// site visit.
var armed atomic.Int64

type hook struct {
	id int64
	fn func()
}

var (
	mu     sync.Mutex
	nextID int64
	sites  = map[Site][]hook{}
)

// Inject runs the hooks armed at site, in arming order, on the calling
// goroutine. A hook that panics panics the caller — that is the point: the
// site's surrounding recovery (or lack of it) is what the test observes.
// No-op (one atomic load) when nothing is armed anywhere.
func Inject(site Site) {
	if armed.Load() == 0 {
		return
	}
	mu.Lock()
	hooks := sites[site]
	// Hook slices are copy-on-write (Arm/disarm replace, never mutate), so
	// the snapshot may be iterated outside the lock and hooks are free to
	// call Arm or their own disarm.
	mu.Unlock()
	for _, h := range hooks {
		h.fn()
	}
}

// Arm installs fn at site and returns its disarm function. Multiple hooks
// may be armed at one site (they run in arming order); disarm removes only
// its own hook and is idempotent. Tests should defer the disarm.
func Arm(site Site, fn func()) (disarm func()) {
	mu.Lock()
	nextID++
	id := nextID
	old := sites[site]
	replaced := make([]hook, 0, len(old)+1)
	replaced = append(replaced, old...)
	sites[site] = append(replaced, hook{id: id, fn: fn})
	mu.Unlock()
	armed.Add(1)

	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			old := sites[site]
			replaced := make([]hook, 0, len(old))
			for _, h := range old {
				if h.id != id {
					replaced = append(replaced, h)
				}
			}
			if len(replaced) == 0 {
				delete(sites, site)
			} else {
				sites[site] = replaced
			}
			mu.Unlock()
			armed.Add(-1)
		})
	}
}
