package fault

// Site names one fault-injection probe point. Production code passes a Site
// constant declared in THIS file to Inject; the const block below therefore
// doubles as the registry of every probe compiled into the binary, and the
// faultsite analyzer (internal/analyzers) rejects Inject calls whose site is
// an ad-hoc string or a constant declared anywhere else. Keeping the surface
// in one block is what makes the build-tag-free injection auditable: the
// chaos suites arm against these names, and a renamed or drive-by site would
// otherwise silently decouple the tests from the probes.
type Site string

// The registered probe sites. Naming convention: <package>/<path through the
// code>, matching the package that calls Inject.
const (
	// SiteCoreCompute fires at the top of every sequential cover
	// computation, inside the panic boundary that quarantines pooled
	// scratch (core/core.go).
	SiteCoreCompute Site = "core/compute"

	// SiteCoreParallelWorker fires in each SCC-partitioned cover worker
	// before it builds its induced subgraph, inside runJob's recover
	// (core/parallel.go).
	SiteCoreParallelWorker Site = "core/parallel-worker"

	// SiteCorePrepassWorker fires per claimed chunk in the TDB++ prepass
	// worker pool, inside the defer that quarantines the worker's scratch
	// on panic (core/prepass.go).
	SiteCorePrepassWorker Site = "core/prepass-worker"

	// SiteDynamicApplyBatch fires at the head of Maintainer.ApplyBatch,
	// under the server writer's rollback-and-replay containment
	// (dynamic/batch.go).
	SiteDynamicApplyBatch Site = "dynamic/apply-batch"

	// SiteServerReader fires on every admitted reader request, inside the
	// per-request recovery that turns a panic into a 500
	// (server/handlers.go).
	SiteServerReader Site = "server/reader"

	// SiteWALAppend fires at the top of every write-ahead-log append,
	// before any bytes reach the segment file; a panic here must leave the
	// log byte-identical and the batch unacknowledged (wal/wal.go).
	SiteWALAppend Site = "wal/append"

	// SiteWALFsync fires before the log's fsync, after the record's bytes
	// are in the file; a panic here simulates a sync failure and must roll
	// the unsynced record back out of the log (wal/wal.go).
	SiteWALFsync Site = "wal/fsync"

	// SiteWALCheckpoint fires at the head of a snapshot checkpoint write;
	// a panic here must leave the previous checkpoint authoritative and
	// the log un-rotated (wal/checkpoint.go).
	SiteWALCheckpoint Site = "wal/checkpoint"

	// SiteServerRecoverReplay fires once per WAL record replayed during
	// tdbserve startup recovery, before the record is applied; a panic
	// here simulates a crash mid-recovery, which must stay restartable
	// (server/durability.go).
	SiteServerRecoverReplay Site = "server/recover-replay"
)

// Sites returns every registered probe site, for audit tests and tooling.
func Sites() []Site {
	return []Site{
		SiteCoreCompute,
		SiteCoreParallelWorker,
		SiteCorePrepassWorker,
		SiteDynamicApplyBatch,
		SiteServerReader,
		SiteWALAppend,
		SiteWALFsync,
		SiteWALCheckpoint,
		SiteServerRecoverReplay,
	}
}
