package fault

// Site names one fault-injection probe point. Production code passes a Site
// constant declared in THIS file to Inject; the const block below therefore
// doubles as the registry of every probe compiled into the binary, and the
// faultsite analyzer (internal/analyzers) rejects Inject calls whose site is
// an ad-hoc string or a constant declared anywhere else. Keeping the surface
// in one block is what makes the build-tag-free injection auditable: the
// chaos suites arm against these names, and a renamed or drive-by site would
// otherwise silently decouple the tests from the probes.
type Site string

// The registered probe sites. Naming convention: <package>/<path through the
// code>, matching the package that calls Inject.
const (
	// SiteCoreCompute fires at the top of every sequential cover
	// computation, inside the panic boundary that quarantines pooled
	// scratch (core/core.go).
	SiteCoreCompute Site = "core/compute"

	// SiteCoreParallelWorker fires in each SCC-partitioned cover worker
	// before it builds its induced subgraph, inside runJob's recover
	// (core/parallel.go).
	SiteCoreParallelWorker Site = "core/parallel-worker"

	// SiteCorePrepassWorker fires per claimed chunk in the TDB++ prepass
	// worker pool, inside the defer that quarantines the worker's scratch
	// on panic (core/prepass.go).
	SiteCorePrepassWorker Site = "core/prepass-worker"

	// SiteDynamicApplyBatch fires at the head of Maintainer.ApplyBatch,
	// under the server writer's rollback-and-replay containment
	// (dynamic/batch.go).
	SiteDynamicApplyBatch Site = "dynamic/apply-batch"

	// SiteServerReader fires on every admitted reader request, inside the
	// per-request recovery that turns a panic into a 500
	// (server/handlers.go).
	SiteServerReader Site = "server/reader"
)

// Sites returns every registered probe site, for audit tests and tooling.
func Sites() []Site {
	return []Site{
		SiteCoreCompute,
		SiteCoreParallelWorker,
		SiteCorePrepassWorker,
		SiteDynamicApplyBatch,
		SiteServerReader,
	}
}
