package digraph

import (
	"bytes"
	"compress/gzip"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
% konect-style comment

0 1
1 2   extra columns ignored
2	0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(2, 0) {
		t.Fatal("tab-separated edge missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",                      // missing target
		"a b\n",                    // non-numeric
		"0 99999999999999999999\n", // overflow
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	g := randomGraph(rng, 50, 300)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("text round trip changed edges")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	g := randomGraph(rng, 80, 500)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() {
		t.Fatalf("n mismatch: %d vs %d", g2.NumVertices(), g.NumVertices())
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("binary round trip changed edges")
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOTMAGIC stuff"))); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{3, len(binaryMagic) + 4, len(raw) - 3} {
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d: expected error", cut)
		}
	}
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewPCG(15, 16))
	g := randomGraph(rng, 40, 200)

	for _, name := range []string{"g.txt", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		g2, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
			t.Fatalf("%s: round trip changed edges", name)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.txt")); !os.IsNotExist(err) {
		t.Fatalf("want not-exist error, got %v", err)
	}
}

// SNAP distributes edge lists gzipped; LoadFile must decompress ".gz"
// transparently for both text and binary payloads.
func TestLoadFileGzip(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	g := randomGraph(rng, 40, 200)

	for _, stem := range []string{"g.txt", "g.bin"} {
		path := filepath.Join(t.TempDir(), stem+".gz")
		var raw bytes.Buffer
		var err error
		if strings.HasSuffix(stem, ".bin") {
			err = WriteBinary(&raw, g)
		} else {
			err = WriteEdgeList(&raw, g)
		}
		if err != nil {
			t.Fatal(err)
		}
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		if _, err := zw.Write(raw.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, zbuf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		g2, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", path, err)
		}
		if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
			t.Fatalf("%s: gzip round trip changed edges", stem)
		}
	}

	// A .gz path whose payload is not gzip must error cleanly.
	bad := filepath.Join(t.TempDir(), "bad.txt.gz")
	if err := os.WriteFile(bad, []byte("0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("LoadFile accepted a non-gzip .gz file")
	}
}
