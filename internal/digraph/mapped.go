package digraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"slices"
	"unsafe"
)

// This file implements the mmap-backed segmented CSR backend: an on-disk
// graph format (TDBCSR1) holding the same four CSR arrays Graph holds in
// memory, and MappedGraph, which serves them zero-copy out of a memory
// mapping so graphs larger than RAM can be traversed with the OS paging
// adjacency in and out on demand.
//
// On-disk layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "TDBCSR1\x00"
//	8       8     n (vertex count, uint64)
//	16      8     m (edge count, uint64)
//	24      64    section table: 4 x (offset uint64, length uint64) for
//	              outIdx, outAdj, inIdx, inAdj, in that order
//	88      4     reserved (0)
//	92      4     CRC32-C (Castagnoli) of bytes [0, 92)
//	96...         sections, each 64-byte aligned:
//	              outIdx  (n+1) x int64   row boundaries, outIdx[0] = 0
//	              outAdj  m x uint32      out-neighbors, sorted per row
//	              inIdx   (n+1) x int64
//	              inAdj   m x uint32      in-neighbors; row w sorted (it is
//	                                      filled by a stable counting pass
//	                                      over (U, V)-sorted edges)
//
// The header CRC makes header corruption (and format confusion) a clean
// error instead of absurd slice bounds. Section payloads are NOT
// checksummed — they can be tens of gigabytes and are re-validated
// structurally at open: OpenMapped walks both index arrays (monotone,
// bounded) and both adjacency arrays (in-range, sorted, and the in-CSR
// exactly the transpose of the out-CSR), so arbitrary file bytes are
// rejected with an error, never a panic deeper in an algorithm. That scan
// is O(n + m) sequential reads — the price of admission paid once per
// open, not per traversal.
const (
	mappedMagic   = "TDBCSR1\x00"
	mappedHdrSize = 96
	mappedAlign   = 64
)

var mappedCRC = crc32.MakeTable(crc32.Castagnoli)

// MappedGraph is an immutable directed graph in CSR form whose arrays live
// in a read-only memory mapping of a TDBCSR1 file (or, on platforms
// without mmap and on big-endian hosts, in heap buffers read from it — the
// portable fallback). It satisfies Adjacency with the same zero-copy,
// sorted-row semantics as Graph, so every detector, filter and solver runs
// over it unchanged.
//
// MappedGraph is safe for concurrent readers. Close unmaps the file;
// accessing adjacency slices after Close faults, so close only after every
// consumer (engines, views, servers) is done.
type MappedGraph struct {
	n int
	m int

	outIdx []int64
	outAdj []VID
	inIdx  []int64
	inAdj  []VID

	data []byte   // mmap region; nil on the heap fallback
	f    *os.File // kept open for the mapping's lifetime
	path string
}

// NumVertices returns the number of vertices, n.
func (g *MappedGraph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges, m.
func (g *MappedGraph) NumEdges() int { return g.m }

// Out returns the out-neighbors of v in increasing order. The slice
// aliases the mapping and must not be modified.
func (g *MappedGraph) Out(v VID) []VID {
	return g.outAdj[g.outIdx[v]:g.outIdx[v+1]]
}

// In returns the in-neighbors of v in increasing order, aliasing the
// mapping.
func (g *MappedGraph) In(v VID) []VID {
	return g.inAdj[g.inIdx[v]:g.inIdx[v+1]]
}

// OutDegree returns the number of out-neighbors of v.
func (g *MappedGraph) OutDegree(v VID) int { return int(g.outIdx[v+1] - g.outIdx[v]) }

// InDegree returns the number of in-neighbors of v.
func (g *MappedGraph) InDegree(v VID) int { return int(g.inIdx[v+1] - g.inIdx[v]) }

// HasEdge reports whether the directed edge (u, v) exists, by binary
// search over u's sorted out-row.
func (g *MappedGraph) HasEdge(u, v VID) bool {
	_, found := slices.BinarySearch(g.Out(u), v)
	return found
}

// AvgDegree returns the average out-degree m/n (0 for an empty graph).
func (g *MappedGraph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// StorageName identifies the backend for observability.
func (g *MappedGraph) StorageName() string { return "mapped" }

// Path returns the backing file's path.
func (g *MappedGraph) Path() string { return g.path }

// Mapped reports whether the arrays are served from a memory mapping
// (false on the portable read-at fallback, where they live on the heap).
func (g *MappedGraph) Mapped() bool { return g.data != nil }

// String summarizes the graph ("mapped-digraph(n=7115, m=103689)").
func (g *MappedGraph) String() string {
	return fmt.Sprintf("mapped-digraph(n=%d, m=%d)", g.n, g.m)
}

func (g *MappedGraph) csr() ([]int64, []VID, []int64, []VID) {
	return g.outIdx, g.outAdj, g.inIdx, g.inAdj
}

// Close releases the mapping and the file handle. The graph and every
// slice obtained from it are invalid afterwards.
func (g *MappedGraph) Close() error {
	var err error
	if g.data != nil {
		err = munmapFile(g.data)
		g.data = nil
	}
	g.outIdx, g.outAdj, g.inIdx, g.inAdj = nil, nil, nil, nil
	if g.f != nil {
		if cerr := g.f.Close(); err == nil {
			err = cerr
		}
		g.f = nil
	}
	return err
}

// disableMmap forces the portable read-at path. Tests flip it directly;
// the TDB_NO_MMAP environment variable flips it process-wide so CI can
// run whole suites against the fallback decoder on hosts where the
// mapping would otherwise win.
var disableMmap = os.Getenv("TDB_NO_MMAP") != ""

// nativeLittle reports whether the host is little-endian; only then may
// file bytes be reinterpreted as integer slices in place.
var nativeLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// mappedHeader is the decoded fixed-size file header.
type mappedHeader struct {
	n, m     uint64
	sections [4]struct{ off, length uint64 } // outIdx, outAdj, inIdx, inAdj
}

func decodeMappedHeader(hdr []byte, fileSize int64) (mappedHeader, error) {
	var h mappedHeader
	if len(hdr) < mappedHdrSize {
		return h, fmt.Errorf("digraph: mapped file too short for header (%d bytes)", len(hdr))
	}
	if string(hdr[:8]) != mappedMagic {
		return h, fmt.Errorf("digraph: bad magic %q (want TDBCSR1)", hdr[:8])
	}
	sum := crc32.Checksum(hdr[:mappedHdrSize-4], mappedCRC)
	if got := binary.LittleEndian.Uint32(hdr[mappedHdrSize-4:]); got != sum {
		return h, fmt.Errorf("digraph: mapped header CRC mismatch (file %08x, computed %08x)", got, sum)
	}
	h.n = binary.LittleEndian.Uint64(hdr[8:])
	h.m = binary.LittleEndian.Uint64(hdr[16:])
	if h.n > math.MaxUint32 {
		return h, fmt.Errorf("digraph: vertex count %d exceeds 32-bit ID space", h.n)
	}
	const maxInt = uint64(math.MaxInt)
	if h.n+1 > maxInt/8 || h.m > maxInt/8 {
		return h, fmt.Errorf("digraph: graph dimensions n=%d m=%d exceed the address space", h.n, h.m)
	}
	wantLen := [4]uint64{(h.n + 1) * 8, h.m * 4, (h.n + 1) * 8, h.m * 4}
	names := [4]string{"outIdx", "outAdj", "inIdx", "inAdj"}
	for i := range h.sections {
		off := binary.LittleEndian.Uint64(hdr[24+16*i:])
		length := binary.LittleEndian.Uint64(hdr[32+16*i:])
		if length != wantLen[i] {
			return h, fmt.Errorf("digraph: section %s length %d inconsistent with n=%d m=%d (want %d)",
				names[i], length, h.n, h.m, wantLen[i])
		}
		if off%8 != 0 {
			return h, fmt.Errorf("digraph: section %s offset %d not 8-byte aligned", names[i], off)
		}
		if off < mappedHdrSize || off > uint64(fileSize) || length > uint64(fileSize)-off {
			return h, fmt.Errorf("digraph: section %s [%d, %d+%d) outside file of %d bytes",
				names[i], off, off, length, fileSize)
		}
		h.sections[i].off, h.sections[i].length = off, length
	}
	return h, nil
}

// validateMapped structurally verifies the decoded arrays so no later
// traversal can index out of bounds: both index arrays monotone from 0 to
// m, every neighbor in [0, n), rows strictly ascending (sorted, no
// duplicates), and the in-CSR exactly the transpose of the out-CSR (the
// counting-pass layout Build produces). Cost: O(n + m) sequential reads
// plus an O(n) fill array.
func validateMapped(n int, m int, outIdx, inIdx []int64, outAdj, inAdj []VID) error {
	for dir, idx := range [2][]int64{outIdx, inIdx} {
		name := [2]string{"outIdx", "inIdx"}[dir]
		if idx[0] != 0 {
			return fmt.Errorf("digraph: %s[0] = %d, want 0", name, idx[0])
		}
		if idx[n] != int64(m) {
			return fmt.Errorf("digraph: %s[n] = %d, want m = %d", name, idx[n], m)
		}
		for v := 0; v < n; v++ {
			if idx[v+1] < idx[v] {
				return fmt.Errorf("digraph: %s not monotone at vertex %d", name, v)
			}
		}
	}
	for dir, adj := range [2][]VID{outAdj, inAdj} {
		idx := [2][]int64{outIdx, inIdx}[dir]
		name := [2]string{"outAdj", "inAdj"}[dir]
		for v := 0; v < n; v++ {
			row := adj[idx[v]:idx[v+1]]
			for i, w := range row {
				if int(w) >= n {
					return fmt.Errorf("digraph: %s row %d references vertex %d >= n", name, v, w)
				}
				if i > 0 && row[i-1] >= w {
					return fmt.Errorf("digraph: %s row %d not strictly ascending", name, v)
				}
			}
		}
	}
	// Transpose check: replaying the counting pass that lays out the
	// in-CSR over (U, V)-ordered edges must reproduce inAdj exactly.
	fill := make([]int64, n)
	copy(fill, inIdx[:n])
	for u := 0; u < n; u++ {
		for _, w := range outAdj[outIdx[u]:outIdx[u+1]] {
			p := fill[w]
			if p >= inIdx[w+1] || inAdj[p] != VID(u) {
				return fmt.Errorf("digraph: in-CSR is not the transpose of the out-CSR at edge (%d, %d)", u, w)
			}
			fill[w] = p + 1
		}
	}
	for w := 0; w < n; w++ {
		if fill[w] != inIdx[w+1] {
			return fmt.Errorf("digraph: in-CSR row %d has entries the out-CSR does not", w)
		}
	}
	return nil
}

// OpenMapped opens a TDBCSR1 file as a MappedGraph. On little-endian
// platforms with mmap support the four CSR arrays are served zero-copy out
// of a shared read-only mapping — opening a 100 GB graph costs a header
// read plus the O(n + m) validation scan, and resident memory follows the
// traversal's working set, not the file size. Elsewhere (and whenever
// mapping fails) the arrays are read into heap buffers: same semantics, no
// beyond-RAM capability.
//
// The file is validated before the graph is returned: header CRC and
// bounds, both index arrays, adjacency ranges and sortedness, and
// out/in-CSR transpose consistency. Arbitrary or corrupted bytes yield an
// error; they can never panic a later traversal.
func OpenMapped(path string) (*MappedGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	g, err := openMappedFile(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return g, nil
}

func openMappedFile(f *os.File, path string) (*MappedGraph, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, mappedHdrSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("digraph: reading mapped header: %w", err)
	}
	h, err := decodeMappedHeader(hdr, st.Size())
	if err != nil {
		return nil, err
	}
	g := &MappedGraph{n: int(h.n), m: int(h.m), f: f, path: path}

	if nativeLittle && !disableMmap {
		if data, err := mmapFile(f, st.Size()); err == nil {
			g.data = data
			g.outIdx = bytesToInt64s(data[h.sections[0].off : h.sections[0].off+h.sections[0].length])
			g.outAdj = bytesToVIDs(data[h.sections[1].off : h.sections[1].off+h.sections[1].length])
			g.inIdx = bytesToInt64s(data[h.sections[2].off : h.sections[2].off+h.sections[2].length])
			g.inAdj = bytesToVIDs(data[h.sections[3].off : h.sections[3].off+h.sections[3].length])
		}
	}
	if g.data == nil {
		// Portable read-at fallback: heap buffers, explicit little-endian
		// decoding (correct on big-endian hosts too).
		if g.outIdx, err = readInt64Section(f, h.sections[0].off, h.n+1); err != nil {
			return nil, err
		}
		if g.outAdj, err = readVIDSection(f, h.sections[1].off, h.m); err != nil {
			return nil, err
		}
		if g.inIdx, err = readInt64Section(f, h.sections[2].off, h.n+1); err != nil {
			return nil, err
		}
		if g.inAdj, err = readVIDSection(f, h.sections[3].off, h.m); err != nil {
			return nil, err
		}
	}
	if err := validateMapped(g.n, g.m, g.outIdx, g.inIdx, g.outAdj, g.inAdj); err != nil {
		if g.data != nil {
			_ = munmapFile(g.data)
			g.data = nil
		}
		return nil, err
	}
	return g, nil
}

// bytesToInt64s reinterprets a little-endian byte section as []int64 in
// place. Callers guarantee 8-byte alignment (section offsets are 8-aligned
// and mmap regions are page-aligned) and a little-endian host.
func bytesToInt64s(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// bytesToVIDs reinterprets a little-endian byte section as []VID in place.
func bytesToVIDs(b []byte) []VID {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*VID)(unsafe.Pointer(&b[0])), len(b)/4)
}

func readInt64Section(f *os.File, off uint64, count uint64) ([]int64, error) {
	buf := make([]byte, 8*count)
	if _, err := f.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("digraph: reading mapped section: %w", err)
	}
	out := make([]int64, count)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

func readVIDSection(f *os.File, off uint64, count uint64) ([]VID, error) {
	buf := make([]byte, 4*count)
	if _, err := f.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("digraph: reading mapped section: %w", err)
	}
	out := make([]VID, count)
	for i := range out {
		out[i] = VID(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

// mappedLayout computes the section table for a graph of n vertices and m
// edges, each section 64-byte aligned.
func mappedLayout(n, m uint64) (h mappedHeader) {
	h.n, h.m = n, m
	off := uint64(mappedHdrSize)
	lens := [4]uint64{(n + 1) * 8, m * 4, (n + 1) * 8, m * 4}
	for i, l := range lens {
		off = (off + mappedAlign - 1) / mappedAlign * mappedAlign
		h.sections[i].off, h.sections[i].length = off, l
		off += l
	}
	return h
}

func encodeMappedHeader(h mappedHeader) []byte {
	hdr := make([]byte, mappedHdrSize)
	copy(hdr, mappedMagic)
	binary.LittleEndian.PutUint64(hdr[8:], h.n)
	binary.LittleEndian.PutUint64(hdr[16:], h.m)
	for i, s := range h.sections {
		binary.LittleEndian.PutUint64(hdr[24+16*i:], s.off)
		binary.LittleEndian.PutUint64(hdr[32+16*i:], s.length)
	}
	binary.LittleEndian.PutUint32(hdr[mappedHdrSize-4:],
		crc32.Checksum(hdr[:mappedHdrSize-4], mappedCRC))
	return hdr
}

// sectionWriter streams section payloads at their aligned offsets through
// one buffered writer, tracking position and inserting alignment padding.
type sectionWriter struct {
	w   *bufio.Writer
	pos uint64
	err error
}

func (s *sectionWriter) padTo(off uint64) {
	for s.err == nil && s.pos < off {
		s.err = s.w.WriteByte(0)
		s.pos++
	}
}

func (s *sectionWriter) putUint64(x uint64) {
	if s.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	_, s.err = s.w.Write(b[:])
	s.pos += 8
}

func (s *sectionWriter) putUint32(x uint32) {
	if s.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], x)
	_, s.err = s.w.Write(b[:])
	s.pos += 4
}

// WriteMapped writes a as a TDBCSR1 file at path, streaming the sections
// through a buffered writer (no in-memory copy of the arrays beyond the
// source itself), fsyncing before rename-free completion. The source rows
// are trusted sorted and duplicate-free, as every backend in this package
// guarantees.
func WriteMapped(path string, a Adjacency) error {
	n, m := uint64(a.NumVertices()), uint64(a.NumEdges())
	h := mappedLayout(n, m)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sw := &sectionWriter{w: bufio.NewWriterSize(f, 1<<20), pos: 0}
	hdr := encodeMappedHeader(h)
	if _, err := sw.w.Write(hdr); err != nil {
		f.Close()
		return err
	}
	sw.pos = mappedHdrSize

	// outIdx, outAdj.
	sw.padTo(h.sections[0].off)
	cum := uint64(0)
	sw.putUint64(0)
	for v := 0; v < int(n); v++ {
		cum += uint64(a.OutDegree(VID(v)))
		sw.putUint64(cum)
	}
	sw.padTo(h.sections[1].off)
	for v := 0; v < int(n); v++ {
		for _, w := range a.Out(VID(v)) {
			sw.putUint32(uint32(w))
		}
	}
	// inIdx, inAdj.
	sw.padTo(h.sections[2].off)
	cum = 0
	sw.putUint64(0)
	for v := 0; v < int(n); v++ {
		cum += uint64(a.InDegree(VID(v)))
		sw.putUint64(cum)
	}
	sw.padTo(h.sections[3].off)
	for v := 0; v < int(n); v++ {
		for _, w := range a.In(VID(v)) {
			sw.putUint32(uint32(w))
		}
	}
	if sw.err == nil {
		sw.err = sw.w.Flush()
	}
	if sw.err == nil {
		sw.err = f.Sync()
	}
	if cerr := f.Close(); sw.err == nil {
		sw.err = cerr
	}
	return sw.err
}

// BuildMapped freezes the accumulated edges straight into a TDBCSR1 file
// at path and opens it as a MappedGraph. It is the spill-capable
// counterpart of Build: the four CSR arrays are streamed to disk section
// by section and never materialized in memory, so peak heap is the 8-byte
// packed key per pending edge (the sort buffer Build needs anyway) — half
// of what Build's CSR output would add on top. The in-CSR is produced by
// re-packing the keys as (V, U) and re-sorting, trading a second
// O(m log m) sort for the counting pass's O(n) bucket array and O(m)
// output buffer.
//
// The Builder must not be reused afterwards.
func (b *Builder) BuildMapped(path string) (*MappedGraph, error) {
	if b.built {
		panic("digraph: Builder.BuildMapped called after Build")
	}
	b.built = true

	keys := make([]uint64, len(b.edges))
	for i, e := range b.edges {
		keys[i] = uint64(e.U)<<32 | uint64(e.V)
	}
	b.edges = nil
	slices.Sort(keys)
	m := 0
	for i, k := range keys {
		if i > 0 && k == keys[i-1] {
			continue
		}
		keys[m] = k
		m++
	}
	keys = keys[:m]

	n := uint64(b.n)
	h := mappedLayout(n, uint64(m))
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	sw := &sectionWriter{w: bufio.NewWriterSize(f, 1<<20)}
	if _, err := sw.w.Write(encodeMappedHeader(h)); err != nil {
		f.Close()
		return nil, err
	}
	sw.pos = mappedHdrSize

	// Out-CSR: keys are sorted by (U, V); stream boundaries then targets.
	writeIdxAndAdj := func(idxOff, adjOff uint64) {
		sw.padTo(idxOff)
		sw.putUint64(0)
		p := 0
		for v := uint64(0); v < n; v++ {
			for p < m && keys[p]>>32 == v {
				p++
			}
			sw.putUint64(uint64(p))
		}
		sw.padTo(adjOff)
		for _, k := range keys {
			sw.putUint32(uint32(k))
		}
	}
	writeIdxAndAdj(h.sections[0].off, h.sections[1].off)

	// In-CSR: re-pack every key as (V, U) and re-sort; rows then come out
	// keyed by V with sources ascending — the same layout the counting
	// pass produces.
	for i, k := range keys {
		keys[i] = k<<32 | k>>32
	}
	slices.Sort(keys)
	writeIdxAndAdj(h.sections[2].off, h.sections[3].off)

	if sw.err == nil {
		sw.err = sw.w.Flush()
	}
	if sw.err == nil {
		sw.err = f.Sync()
	}
	if cerr := f.Close(); sw.err == nil {
		sw.err = cerr
	}
	if sw.err != nil {
		return nil, sw.err
	}
	return OpenMapped(path)
}

// IsMappedFile sniffs whether path begins with the TDBCSR1 magic.
func IsMappedFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return string(magic[:]) == mappedMagic
}

// OpenStorage opens path as an adjacency backend, picking the backend by
// content: TDBCSR1 files open as a zero-copy MappedGraph, anything else
// loads in memory via LoadFile (text edge lists, optionally gzipped, or
// the binary edge format). The returned closer releases mapped resources
// (a no-op closer for in-memory graphs).
func OpenStorage(path string) (Adjacency, func() error, error) {
	if IsMappedFile(path) {
		g, err := OpenMapped(path)
		if err != nil {
			return nil, nil, err
		}
		return g, g.Close, nil
	}
	g, err := LoadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return g, func() error { return nil }, nil
}
