//go:build !linux && !darwin

package digraph

import (
	"errors"
	"os"
)

// errNoMmap makes OpenMapped fall through to the portable read-at path on
// platforms without a wired-up memory-mapping syscall.
var errNoMmap = errors.New("digraph: mmap not supported on this platform")

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errNoMmap
}

func munmapFile(data []byte) error { return nil }
