package digraph

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
)

// Text edge-list format (SNAP style): one "u v" pair per line, '#' or '%'
// comment lines ignored, whitespace-separated, vertex IDs are non-negative
// integers. Binary format: a fixed little-endian header followed by the edge
// array, for fast reloads of generated datasets.

// ReadEdgeList parses a SNAP-style text edge list. Vertex IDs may be sparse;
// the resulting graph has max(ID)+1 vertices.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		u, v, err := parseEdgeLine(line)
		if err != nil {
			return nil, fmt.Errorf("digraph: line %d: %w", lineNo, err)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("digraph: reading edge list: %w", err)
	}
	return b.Build(), nil
}

func parseEdgeLine(line string) (VID, VID, error) {
	// Hand-rolled split: strings.Fields allocates a slice per line, which
	// dominates load time on multi-million-edge files.
	i := 0
	u, i, err := parseUint(line, i)
	if err != nil {
		return 0, 0, err
	}
	v, i, err := parseUint(line, i)
	if err != nil {
		return 0, 0, err
	}
	// Trailing columns (weights, timestamps) are permitted and ignored.
	_ = i
	return VID(u), VID(v), nil
}

func parseUint(s string, i int) (uint64, int, error) {
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == ',') {
		i++
	}
	start := i
	var x uint64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		d := uint64(s[i] - '0')
		if x > (1<<32)/10 {
			return 0, i, fmt.Errorf("vertex ID overflows 32 bits in %q", s)
		}
		x = x*10 + d
		i++
	}
	if i == start {
		return 0, i, fmt.Errorf("expected integer in %q at column %d", s, i)
	}
	return x, i, nil
}

// WriteEdgeList writes the graph as a SNAP-style text edge list with a
// summary comment header.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# directed graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Out(VID(v)) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

const binaryMagic = "TDBG0001"

// WriteBinary writes the graph in the repository's binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := [2]uint64{uint64(g.NumVertices()), uint64(g.NumEdges())}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Out(VID(v)) {
			var rec [2]VID
			rec[0], rec[1] = VID(v), u
			if err := binary.Write(bw, binary.LittleEndian, rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("digraph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("digraph: bad magic %q (want %q)", magic, binaryMagic)
	}
	var hdr [2]uint64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("digraph: reading header: %w", err)
	}
	n, m := hdr[0], hdr[1]
	if n > 1<<32 {
		return nil, fmt.Errorf("digraph: vertex count %d exceeds 32-bit ID space", n)
	}
	b := NewBuilder(int(n))
	buf := make([]VID, 2*4096)
	remaining := 2 * m
	for remaining > 0 {
		chunk := uint64(len(buf))
		if remaining < chunk {
			chunk = remaining
		}
		if err := binary.Read(br, binary.LittleEndian, buf[:chunk]); err != nil {
			return nil, fmt.Errorf("digraph: reading edges: %w", err)
		}
		for i := uint64(0); i+1 < chunk; i += 2 {
			b.AddEdge(buf[i], buf[i+1])
		}
		remaining -= chunk
	}
	return b.Build(), nil
}

// LoadFile loads a graph from path, choosing the format by extension:
// ".bin" uses the binary format, anything else the text edge list. A
// trailing ".gz" on either transparently decompresses (SNAP distributes
// edge lists gzipped), so "web-Google.txt.gz" loads directly.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	stem := path
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("digraph: opening gzip stream: %w", err)
		}
		defer zr.Close()
		r = zr
		stem = strings.TrimSuffix(path, ".gz")
	}
	if strings.HasSuffix(stem, ".bin") {
		return ReadBinary(r)
	}
	return ReadEdgeList(r)
}

// SaveFile writes a graph to path, choosing the format by extension as in
// LoadFile.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".bin") {
		err = WriteBinary(f, g)
	} else {
		err = WriteEdgeList(f, g)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
