package digraph

import "slices"

// Adjacency is the read-side contract every cycle-cover algorithm in this
// repository consumes: a directed graph exposing per-vertex neighbor lists
// as slices. It decouples the algorithms from WHERE the bytes live — the
// in-memory CSR (Graph), the mmap-backed segmented CSR for graphs larger
// than RAM (MappedGraph), or the compacted working-graph view
// (ActiveAdjacency) — so detectors, filters and solvers compile against
// this interface only and backends decide the storage.
//
// Contract:
//   - Vertices are dense integers in [0, NumVertices()).
//   - Out(v) and In(v) return the out-/in-neighbors of v. The slices alias
//     backend storage and must not be modified; callers may hold them only
//     until the next mutation of the backend (immutable backends never
//     invalidate them). Slice-returning accessors keep hot traversal loops
//     zero-copy: scanning a row is a bounds-checked range over backend
//     memory, never an iterator allocation or a per-edge virtual call.
//   - Out(v) of the immutable backends is sorted ascending (the Builder
//     freezes rows sorted and deduplicated); working-graph views may
//     permute rows, so order-sensitive callers must not rely on it there.
//   - NumEdges() is the total directed edge count of the backend (for
//     views: of the underlying graph — the view's capacity).
//
// The dynamic package's Maintainer intentionally does NOT satisfy
// Adjacency: its live adjacency is a CSR base plus delta buffers, and
// materializing rows would allocate. Snapshots of it (Epoch.Graph) do.
type Adjacency interface {
	// NumVertices returns the number of vertices, n.
	NumVertices() int
	// NumEdges returns the number of directed edges, m.
	NumEdges() int
	// Out returns the out-neighbors of v. The slice aliases backend
	// storage and must not be modified.
	Out(v VID) []VID
	// In returns the in-neighbors of v under the same rules as Out.
	In(v VID) []VID
	// OutDegree returns len(Out(v)) without materializing the slice header.
	OutDegree(v VID) int
	// InDegree returns len(In(v)).
	InDegree(v VID) int
}

// Storager is optionally implemented by Adjacency backends to name their
// storage backend ("memory", "mapped") for observability; see StorageName.
type Storager interface {
	StorageName() string
}

// Compile-time interface checks for the package's backends.
var (
	_ Adjacency = (*Graph)(nil)
	_ Adjacency = (*MappedGraph)(nil)
	_ Adjacency = (*ActiveAdjacency)(nil)
	_ Storager  = (*Graph)(nil)
	_ Storager  = (*MappedGraph)(nil)
)

// StorageName names the storage backend of a: the backend's own name when
// it implements Storager, "view" for working-graph views, "custom"
// otherwise. The solve layers stamp it into core.Stats.Storage so serving
// metrics can slice per-solve series by backend.
func StorageName(a Adjacency) string {
	switch b := a.(type) {
	case Storager:
		return b.StorageName()
	case *ActiveAdjacency:
		return "view"
	default:
		return "custom"
	}
}

// csrArrays is implemented by backends whose adjacency physically IS a
// compressed-sparse-row quadruple, letting layered representations
// (ActiveAdjacency) and bulk operations alias the arrays zero-copy instead
// of re-materializing them row by row. Backends outside this package go
// through the generic Adjacency path.
type csrArrays interface {
	csr() (outIdx []int64, outAdj []VID, inIdx []int64, inAdj []VID)
}

func (g *Graph) csr() ([]int64, []VID, []int64, []VID) {
	return g.outIdx, g.outAdj, g.inIdx, g.inAdj
}

// HasArc reports whether the directed edge (u, v) exists in a, by binary
// search over u's sorted out-row — O(log outdeg(u)). It requires the
// backend's rows sorted ascending (true for the immutable backends; do not
// use over a working-graph view, whose rows are permuted).
func HasArc(a Adjacency, u, v VID) bool {
	if h, ok := a.(interface{ HasEdge(u, v VID) bool }); ok {
		return h.HasEdge(u, v)
	}
	_, found := slices.BinarySearch(a.Out(u), v)
	return found
}

// Induced builds an in-memory subgraph of a containing only the vertices
// for which keep[v] is true, re-labelling them densely while preserving
// relative order. It returns the subgraph and the mapping newID -> oldID.
// Self-loops are dropped, matching the default Builder policy.
//
// The sub-CSR is constructed directly with counting passes instead of
// re-feeding edges through a Builder: the source rows are already sorted
// and duplicate-free, and the dense relabelling is monotone, so the kept
// edges are already in CSR order — no re-sort, no dedup. This is on the
// per-SCC path of the parallel solver, which carves one subgraph per
// component; the result is always an in-memory Graph regardless of the
// source backend (components are cover-sized, not storage-sized).
//
// It panics if len(keep) != a.NumVertices().
func Induced(a Adjacency, keep []bool) (*Graph, []VID) {
	n := a.NumVertices()
	if len(keep) != n {
		panic("digraph: keep mask length mismatch")
	}
	newID := make([]int64, n)
	oldID := make([]VID, 0)
	for v := 0; v < n; v++ {
		if keep[v] {
			newID[v] = int64(len(oldID))
			oldID = append(oldID, VID(v))
		} else {
			newID[v] = -1
		}
	}
	n2 := len(oldID)
	sub := &Graph{
		n:      n2,
		outIdx: make([]int64, n2+1),
		inIdx:  make([]int64, n2+1),
	}
	// Pass 1: count kept out- and in-edges per new vertex.
	for newU, old := range oldID {
		for _, w := range a.Out(old) {
			if keep[w] && w != old {
				sub.outIdx[newU+1]++
				sub.inIdx[newID[w]+1]++
			}
		}
	}
	for v := 0; v < n2; v++ {
		sub.outIdx[v+1] += sub.outIdx[v]
		sub.inIdx[v+1] += sub.inIdx[v]
	}
	m2 := sub.outIdx[n2]
	sub.outAdj = make([]VID, m2)
	sub.inAdj = make([]VID, m2)
	// Pass 2: fill. Scanning kept edges in old (U, V) order emits them in
	// new (U, V) order (the relabelling is monotone), so out-lists fill
	// sequentially sorted and in-lists come out sorted by U as in Build.
	fill := make([]int64, n2)
	copy(fill, sub.inIdx[:n2])
	p := int64(0)
	for _, old := range oldID {
		for _, w := range a.Out(old) {
			if keep[w] && w != old {
				nw := newID[w]
				sub.outAdj[p] = VID(nw)
				p++
				sub.inAdj[fill[nw]] = VID(newID[old])
				fill[nw]++
			}
		}
	}
	return sub, oldID
}

// Materialize copies a into a fresh in-memory Graph. The source rows are
// trusted sorted and duplicate-free (every backend in this package freezes
// them that way), so the CSR arrays are filled directly without the
// Builder's re-sort. A *Graph source is returned as-is: Graph is immutable,
// so sharing is safe and the copy would be pure waste.
func Materialize(a Adjacency) *Graph {
	if g, ok := a.(*Graph); ok {
		return g
	}
	n, m := a.NumVertices(), a.NumEdges()
	g := &Graph{
		n:      n,
		outIdx: make([]int64, n+1),
		outAdj: make([]VID, 0, m),
		inIdx:  make([]int64, n+1),
		inAdj:  make([]VID, m),
	}
	for v := 0; v < n; v++ {
		g.outAdj = append(g.outAdj, a.Out(VID(v))...)
		g.outIdx[v+1] = int64(len(g.outAdj))
		g.inIdx[v+1] = g.inIdx[v] + int64(a.InDegree(VID(v)))
	}
	fill := make([]int64, n)
	copy(fill, g.inIdx[:n])
	for u := 0; u < n; u++ {
		for _, w := range a.Out(VID(u)) {
			g.inAdj[fill[w]] = VID(u)
			fill[w]++
		}
	}
	return g
}
