package digraph

import (
	"fmt"
	"testing"
)

func TestLaneBitsClearList(t *testing.T) {
	for _, nw := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("nw=%d", nw), func(t *testing.T) {
			b := NewLaneBits(8, nw)
			if b.Len() != 8 || b.WordsPerGroup() != nw {
				t.Fatalf("Len/WordsPerGroup = %d/%d, want 8/%d", b.Len(), b.WordsPerGroup(), nw)
			}
			b.Group(2)[0] |= 0b101
			b.Group(5)[nw-1] |= 1 << 63
			b.ClearList([]VID{2, 5, 3}) // clearing an untouched vertex is a no-op
			for i, w := range b.Words {
				if w != 0 {
					t.Fatalf("word %d = %b after ClearList, want 0", i, w)
				}
			}
		})
	}
}

func TestLaneBitsClearListBulkCutover(t *testing.T) {
	// A touched list past the crossover takes the bulk clear() path. Owners
	// guarantee the list covers every nonzero group, so the observable
	// contract is the same on both paths: every group is zero afterwards.
	b := NewLaneBits(16, 4)
	verts := make([]VID, 0, 16)
	for v := range 16 {
		b.Group(VID(v))[v%4] = 1 << uint(v)
		verts = append(verts, VID(v))
	}
	b.ClearList(verts) // 16*4*8 >= 64: bulk path
	for i, w := range b.Words {
		if w != 0 {
			t.Fatalf("word %d nonzero after bulk ClearList", i)
		}
	}
}

func TestLaneFrontierPushDedupe(t *testing.T) {
	f := NewLaneFrontier(6, 1)
	f.Push(3, 0b01)
	f.Push(3, 0b10) // second push merges, no duplicate list entry
	f.Push(1, 0b100)
	f.Push(2, 0) // empty lane word: no-op
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (vertex 3 deduplicated, empty push dropped)", f.Len())
	}
	if got := f.Bits.Words[3]; got != 0b11 {
		t.Fatalf("lanes of vertex 3 = %b, want 11", got)
	}
	f.Clear()
	if f.Len() != 0 || f.Bits.Words[3] != 0 || f.Bits.Words[1] != 0 {
		t.Fatal("Clear left state behind")
	}
	// Reusable after Clear.
	f.Push(3, 0b1000)
	if f.Len() != 1 || f.Bits.Words[3] != 0b1000 {
		t.Fatal("frontier not reusable after Clear")
	}
}

func TestLaneFrontierPushGroupWide(t *testing.T) {
	f := NewLaneFrontier(4, 8)
	lanes := make([]uint64, 8)
	lanes[4] = 1 << 44 // lane 300
	f.PushGroup(1, lanes)
	lanes[4] = 0
	lanes[7] = 1 << 63 // lane 511: merges, no duplicate entry
	f.PushGroup(1, lanes)
	f.PushGroup(2, make([]uint64, 8)) // all-zero group: no-op
	if f.Len() != 1 {
		t.Fatalf("Len = %d, want 1", f.Len())
	}
	if g := f.Bits.Group(1); g[4] != 1<<44 || g[7] != 1<<63 {
		t.Fatalf("merged group wrong: %v", g)
	}
	f.Clear()
	for _, w := range f.Bits.Group(1) {
		if w != 0 {
			t.Fatal("Clear left wide state behind")
		}
	}
}

// BenchmarkLaneBitsClear measures the ClearList crossover between the
// touched-list path and the bulk clear() path that clearListDivisor pins.
// List sizes are swept as fractions of n; the "hot" variants first write
// every listed entry — the filters' actual pattern, where ClearList runs
// right after a sweep that populated those exact lines — while the "cold"
// variants clear with no prior writes in the measured loop. Cold scattered
// clears lose to memclr from about n/8; hot ones break even there and only
// clearly lose near n. The production divisor sits at the conservative end
// of that range because in situ the memclr additionally evicts the sweep's
// other hot state, which no isolated micro-bench can price (see
// clearListDivisor).
func BenchmarkLaneBitsClear(b *testing.B) {
	const n = 1 << 16
	fracs := []struct {
		name string
		den  int
	}{{"n_64", 64}, {"n_16", 16}, {"n_8", 8}, {"n_4", 4}, {"n_1", 1}}
	for _, f := range fracs {
		verts := make([]VID, n/f.den)
		for i := range verts {
			// Spread the touched vertices across the slab the way a BFS
			// frontier would, not as one dense prefix.
			verts[i] = VID((i * 2654435761) % n)
		}
		b.Run("cold-list/"+f.name, func(b *testing.B) {
			bs := NewLaneBits(n, 1)
			for b.Loop() {
				for _, v := range verts {
					bs.Words[v] = 0
				}
			}
		})
		b.Run("hot-list/"+f.name, func(b *testing.B) {
			bs := NewLaneBits(n, 1)
			for b.Loop() {
				for _, v := range verts {
					bs.Words[v] = 1
				}
				for _, v := range verts {
					bs.Words[v] = 0
				}
			}
		})
		b.Run("hot-bulk/"+f.name, func(b *testing.B) {
			bs := NewLaneBits(n, 1)
			for b.Loop() {
				for _, v := range verts {
					bs.Words[v] = 1
				}
				clear(bs.Words)
			}
		})
	}
}
