package digraph

import "testing"

func TestBitset64ClearList(t *testing.T) {
	b := NewBitset64(8)
	if b.Len() != 8 {
		t.Fatalf("Len = %d, want 8", b.Len())
	}
	b.Words[2] |= 0b101
	b.Words[5] |= 1 << 63
	b.ClearList([]VID{2, 5, 3}) // clearing an untouched vertex is a no-op
	for v, w := range b.Words {
		if w != 0 {
			t.Fatalf("word %d = %b after ClearList, want 0", v, w)
		}
	}
}

func TestLaneFrontierPushDedupe(t *testing.T) {
	f := NewLaneFrontier(6)
	f.Push(3, 0b01)
	f.Push(3, 0b10) // second push merges, no duplicate list entry
	f.Push(1, 0b100)
	f.Push(2, 0) // empty lane word: no-op
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (vertex 3 deduplicated, empty push dropped)", f.Len())
	}
	if got := f.Bits.Words[3]; got != 0b11 {
		t.Fatalf("lanes of vertex 3 = %b, want 11", got)
	}
	f.Clear()
	if f.Len() != 0 || f.Bits.Words[3] != 0 || f.Bits.Words[1] != 0 {
		t.Fatal("Clear left state behind")
	}
	// Reusable after Clear.
	f.Push(3, 0b1000)
	if f.Len() != 1 || f.Bits.Words[3] != 0b1000 {
		t.Fatal("frontier not reusable after Clear")
	}
}
