package digraph

// VertexMask is a dynamic active/inactive overlay on an immutable Graph.
//
// Deactivating a vertex hides the vertex and every edge incident to it, which
// is exactly the mutation both cover processes need:
//
//   - the bottom-up cover (BUR) starts from the full graph and removes the
//     in- and out-edges of each chosen cover vertex (Alg. 4 line 10);
//   - the top-down cover (TDB) starts from the empty graph and inserts the
//     edges of one candidate vertex at a time (Alg. 8 line 3), removing them
//     again when the candidate is kept in the cover (line 8).
//
// Using a mask instead of physically editing CSR arrays makes both
// activation and deactivation O(1) and keeps the underlying graph shared.
type VertexMask struct {
	active []bool
	count  int
}

// NewVertexMask returns a mask over n vertices, all active if allActive is
// true and all inactive otherwise.
func NewVertexMask(n int, allActive bool) *VertexMask {
	m := &VertexMask{active: make([]bool, n)}
	if allActive {
		for i := range m.active {
			m.active[i] = true
		}
		m.count = n
	}
	return m
}

// Active reports whether v is active.
func (m *VertexMask) Active(v VID) bool {
	return m.active[v]
}

// Activate makes v active. It reports whether the state changed.
func (m *VertexMask) Activate(v VID) bool {
	if m.active[v] {
		return false
	}
	m.active[v] = true
	m.count++
	return true
}

// Deactivate makes v inactive. It reports whether the state changed.
func (m *VertexMask) Deactivate(v VID) bool {
	if !m.active[v] {
		return false
	}
	m.active[v] = false
	m.count--
	return true
}

// Fill sets every vertex to the given state in one pass. It lets a pooled
// mask be reused across cover runs without reallocating.
func (m *VertexMask) Fill(active bool) {
	for i := range m.active {
		m.active[i] = active
	}
	if active {
		m.count = len(m.active)
	} else {
		m.count = 0
	}
}

// NumActive returns the number of active vertices.
func (m *VertexMask) NumActive() int {
	return m.count
}

// Len returns the number of vertices covered by the mask.
func (m *VertexMask) Len() int {
	return len(m.active)
}

// Raw exposes the underlying active slice for hot loops. Callers must treat
// it as read-only; use Activate/Deactivate for changes so the count stays
// consistent.
func (m *VertexMask) Raw() []bool {
	return m.active
}

// Clone returns an independent copy of the mask.
func (m *VertexMask) Clone() *VertexMask {
	c := &VertexMask{active: make([]bool, len(m.active)), count: m.count}
	copy(c.active, m.active)
	return c
}
