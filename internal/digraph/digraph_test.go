package digraph

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.AvgDegree() != 0 {
		t.Fatalf("empty graph AvgDegree = %v, want 0", g.AvgDegree())
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.Build()
	if g.NumVertices() != 3 {
		t.Fatalf("n = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 0) {
		t.Fatal("missing expected edges")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("unexpected reverse edge")
	}
}

func TestBuilderDropsSelfLoops(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1 (self-loop dropped)", g.NumEdges())
	}
}

func TestBuilderKeepSelfLoops(t *testing.T) {
	b := NewBuilder(1)
	b.KeepSelfLoops = true
	b.AddEdge(0, 0)
	g := b.Build()
	if g.NumEdges() != 1 || !g.HasEdge(0, 0) {
		t.Fatal("self-loop should be kept when KeepSelfLoops is set")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(2)
	for i := 0; i < 5; i++ {
		b.AddEdge(0, 1)
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1 after dedup", g.NumEdges())
	}
}

func TestBuilderGrowsVertexCount(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.NumVertices() != 10 {
		t.Fatalf("n = %d, want 10", g.NumVertices())
	}
	if d := g.OutDegree(5); d != 1 {
		t.Fatalf("outdeg(5) = %d, want 1", d)
	}
	if d := g.InDegree(9); d != 1 {
		t.Fatalf("indeg(9) = %d, want 1", d)
	}
	if d := g.OutDegree(0); d != 0 {
		t.Fatalf("outdeg(0) = %d, want 0", d)
	}
}

func TestBuildTwicePanics(t *testing.T) {
	b := NewBuilder(1)
	b.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("second Build should panic")
		}
	}()
	b.Build()
}

func TestEnsureVertices(t *testing.T) {
	b := NewBuilder(2)
	b.EnsureVertices(7)
	b.EnsureVertices(3) // no shrink
	if g := b.Build(); g.NumVertices() != 7 {
		t.Fatalf("n = %d, want 7", g.NumVertices())
	}
}

func randomGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
	}
	return b.Build()
}

// The out-CSR and in-CSR must describe the same edge set.
func TestInOutDuality(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.IntN(40)
		g := randomGraph(rng, n, rng.IntN(4*n))
		fromOut := map[Edge]bool{}
		for v := 0; v < n; v++ {
			for _, w := range g.Out(VID(v)) {
				fromOut[Edge{VID(v), w}] = true
			}
		}
		fromIn := map[Edge]bool{}
		for v := 0; v < n; v++ {
			for _, u := range g.In(VID(v)) {
				fromIn[Edge{u, VID(v)}] = true
			}
		}
		if !reflect.DeepEqual(fromOut, fromIn) {
			t.Fatalf("iter %d: out-CSR and in-CSR disagree", iter)
		}
		if len(fromOut) != g.NumEdges() {
			t.Fatalf("iter %d: NumEdges=%d but %d distinct edges", iter, g.NumEdges(), len(fromOut))
		}
	}
}

func TestAdjacencySorted(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	g := randomGraph(rng, 60, 400)
	for v := 0; v < g.NumVertices(); v++ {
		out := g.Out(VID(v))
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
			t.Fatalf("out-adjacency of %d not sorted: %v", v, out)
		}
		in := g.In(VID(v))
		if !sort.SliceIsSorted(in, func(i, j int) bool { return in[i] < in[j] }) {
			t.Fatalf("in-adjacency of %d not sorted: %v", v, in)
		}
	}
}

func TestHasEdgeAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	n := 30
	g := randomGraph(rng, n, 150)
	want := map[Edge]bool{}
	for _, e := range g.Edges() {
		want[e] = true
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if g.HasEdge(VID(u), VID(v)) != want[Edge{VID(u), VID(v)}] {
				t.Fatalf("HasEdge(%d,%d) mismatch", u, v)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	g := randomGraph(rng, 25, 120)
	tr := g.Transpose()
	if tr.NumVertices() != g.NumVertices() || tr.NumEdges() != g.NumEdges() {
		t.Fatal("transpose changed counts")
	}
	for _, e := range g.Edges() {
		if !tr.HasEdge(e.V, e.U) {
			t.Fatalf("transpose missing reversed edge %v", e)
		}
	}
	// Double transpose restores the original edge set.
	trtr := tr.Transpose()
	if !reflect.DeepEqual(trtr.Edges(), g.Edges()) {
		t.Fatal("double transpose != original")
	}
}

func TestInducedSubgraph(t *testing.T) {
	//    0 -> 1 -> 2 -> 0 ;  2 -> 3
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	sub, oldID := g.InducedSubgraph([]bool{true, false, true, true})
	if sub.NumVertices() != 3 {
		t.Fatalf("sub n = %d, want 3", sub.NumVertices())
	}
	// Kept vertices 0,2,3 become 0,1,2. Surviving edges: 2->0 and 2->3.
	if !reflect.DeepEqual(oldID, []VID{0, 2, 3}) {
		t.Fatalf("oldID = %v", oldID)
	}
	wantEdges := []Edge{{1, 0}, {1, 2}}
	if !reflect.DeepEqual(sub.Edges(), wantEdges) {
		t.Fatalf("sub edges = %v, want %v", sub.Edges(), wantEdges)
	}
}

func TestInducedSubgraphBadMaskPanics(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong mask length")
		}
	}()
	g.InducedSubgraph([]bool{true})
}

func TestEdgesLexOrder(t *testing.T) {
	g := FromEdges(4, []Edge{{3, 0}, {1, 2}, {1, 0}, {0, 3}})
	edges := g.Edges()
	if !sort.SliceIsSorted(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	}) {
		t.Fatalf("edges not in lex order: %v", edges)
	}
}

// Property: building from any edge list yields degree sums equal to m.
func TestDegreeSumsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		b := NewBuilder(0)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(VID(raw[i]%97), VID(raw[i+1]%97))
		}
		g := b.Build()
		var outSum, inSum int
		for v := 0; v < g.NumVertices(); v++ {
			outSum += g.OutDegree(VID(v))
			inSum += g.InDegree(VID(v))
		}
		return outSum == g.NumEdges() && inSum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexMask(t *testing.T) {
	m := NewVertexMask(4, false)
	if m.NumActive() != 0 || m.Len() != 4 {
		t.Fatal("fresh inactive mask wrong")
	}
	if !m.Activate(2) || m.Activate(2) {
		t.Fatal("Activate change-reporting wrong")
	}
	if m.NumActive() != 1 || !m.Active(2) {
		t.Fatal("activation not recorded")
	}
	if !m.Deactivate(2) || m.Deactivate(2) {
		t.Fatal("Deactivate change-reporting wrong")
	}
	if m.NumActive() != 0 {
		t.Fatal("deactivation not recorded")
	}

	all := NewVertexMask(3, true)
	if all.NumActive() != 3 {
		t.Fatal("all-active mask wrong")
	}
	c := all.Clone()
	c.Deactivate(0)
	if !all.Active(0) || c.Active(0) {
		t.Fatal("Clone is not independent")
	}
	if len(all.Raw()) != 3 {
		t.Fatal("Raw length wrong")
	}
}

// Property: the packed-key Build matches a reference construction that
// sorts (U, V) pairs and dedups them directly.
func TestBuildMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(60)
		edges := make([]Edge, rng.IntN(8*n))
		for i := range edges {
			edges[i] = Edge{VID(rng.IntN(n)), VID(rng.IntN(n))}
		}
		g := FromEdges(n, edges)

		want := make(map[Edge]bool)
		for _, e := range edges {
			if e.U != e.V {
				want[e] = true
			}
		}
		got := g.Edges()
		if len(got) != len(want) {
			t.Fatalf("m = %d, want %d", len(got), len(want))
		}
		for _, e := range got {
			if !want[e] {
				t.Fatalf("unexpected edge %v", e)
			}
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].U != got[j].U {
				return got[i].U < got[j].U
			}
			return got[i].V < got[j].V
		}) {
			t.Fatalf("edges not sorted: %v", got)
		}
	}
}

// Property: the direct sub-CSR construction matches the reference
// re-build-through-a-Builder implementation it replaced.
func TestInducedSubgraphMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 15))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(50)
		g := randomGraph(rng, n, rng.IntN(6*n))
		keep := make([]bool, n)
		for v := range keep {
			keep[v] = rng.IntN(3) > 0
		}
		sub, oldID := g.InducedSubgraph(keep)

		// Reference: relabel and re-feed through a Builder.
		newID := make(map[VID]VID)
		var wantOld []VID
		for v := 0; v < n; v++ {
			if keep[v] {
				newID[VID(v)] = VID(len(wantOld))
				wantOld = append(wantOld, VID(v))
			}
		}
		rb := NewBuilder(len(wantOld))
		for _, u := range wantOld {
			for _, w := range g.Out(u) {
				if keep[w] {
					rb.AddEdge(newID[u], newID[w])
				}
			}
		}
		want := rb.Build()

		if !reflect.DeepEqual(append([]VID{}, oldID...), append([]VID{}, wantOld...)) {
			t.Fatalf("oldID = %v, want %v", oldID, wantOld)
		}
		if sub.NumVertices() != want.NumVertices() || sub.NumEdges() != want.NumEdges() {
			t.Fatalf("sub %v, want %v", sub, want)
		}
		if !reflect.DeepEqual(sub.Edges(), want.Edges()) {
			t.Fatalf("sub edges %v, want %v", sub.Edges(), want.Edges())
		}
		for v := 0; v < sub.NumVertices(); v++ {
			if !reflect.DeepEqual(sub.In(VID(v)), want.In(VID(v))) {
				t.Fatalf("In(%d) = %v, want %v", v, sub.In(VID(v)), want.In(VID(v)))
			}
		}
	}
}
