package digraph

import (
	"fmt"
	"math"
)

// ActiveAdjacency is a working-graph view over an immutable Adjacency
// backend that keeps, for every vertex, its live (active-endpoint) out- and
// in-neighbors physically contiguous, so traversals touch exactly the live
// edges.
//
// The VertexMask overlay makes Activate/Deactivate O(1) but leaves every
// traversal O(full degree): detectors iterate the whole CSR adjacency and
// filter each entry through a []bool lookup — a branchy, cache-hostile inner
// loop that dominates the top-down cover, whose working graph is near-empty
// for most of its life. ActiveAdjacency inverts the trade: Activate(v) and
// Deactivate(v) cost O(deg(v)), and ActiveOut(v)/ActiveIn(v) return a
// branch-free slice containing exactly the live neighbors.
//
// Representation: each vertex's adjacency segment (a mutable copy of the
// backend's rows) is partitioned by a prefix swap — the first live[u]
// entries of u's segment are precisely u's active neighbors, in unspecified
// order. A position index keyed by original CSR slot locates any edge's
// current position in O(1), so moving a vertex into or out of a neighbor's
// active prefix is a single swap. Cross-reference arrays link the out- and
// in-copy of each edge, letting Activate(v) reach v's entry in every
// neighbor list without searching.
//
// The view layers over any Adjacency: CSR-backed backends (Graph,
// MappedGraph) hand it their index and adjacency arrays zero-copy, while a
// generic backend has its rows materialized once at construction. Note that
// building a view over a MappedGraph pages the whole adjacency in and
// copies it to heap — the view is a working-graph representation, not an
// out-of-core one; beyond-RAM graphs run on the VertexMask fallback.
//
// The view costs 32 bytes per edge plus 12 bytes per vertex on top of the
// backend, and positions are int32, so it supports graphs with at most
// MaxInt32 edges (FitsActiveAdjacency); callers fall back to a VertexMask
// beyond that.
//
// ActiveAdjacency satisfies Adjacency itself — Out/In return the LIVE
// slices — so read-only consumers can take the working graph where they
// take any other backend. NumEdges reports the underlying backend's edge
// count (the view's capacity), not the live count.
//
// ActiveAdjacency is not safe for concurrent use.
type ActiveAdjacency struct {
	base   Adjacency
	n      int
	active []bool
	count  int

	// Segment boundaries and the canonical (sorted) row contents — aliased
	// from CSR-backed backends, materialized once otherwise.
	outIdx, inIdx []int64
	outRef, inRef []VID

	out halfAdj
	in  halfAdj
}

// halfAdj is one direction (out or in) of the partitioned adjacency;
// segment boundaries come from the view's index arrays.
type halfAdj struct {
	adj   []VID   // mutable copy of the canonical adjacency, permuted per segment
	slot  []int32 // slot[p]: original CSR slot of the edge now at position p
	pos   []int32 // pos[i]: current position of the edge at original slot i
	live  []int32 // live[v]: length of v's active prefix
	cross []int32 // cross[i]: slot of the same edge in the other direction
}

// swap exchanges the entries at positions p and q of one segment, keeping
// the slot/pos index consistent.
func (h *halfAdj) swap(p, q int64) {
	if p == q {
		return
	}
	h.adj[p], h.adj[q] = h.adj[q], h.adj[p]
	ip, iq := h.slot[p], h.slot[q]
	h.slot[p], h.slot[q] = iq, ip
	h.pos[ip], h.pos[iq] = int32(q), int32(p)
}

// FitsActiveAdjacency reports whether a is small enough for the view's
// int32 position index.
func FitsActiveAdjacency(a Adjacency) bool {
	return a.NumEdges() <= math.MaxInt32
}

// refArrays returns the canonical CSR quadruple of a: aliased zero-copy
// when the backend physically stores CSR arrays, materialized row by row
// otherwise.
func refArrays(a Adjacency) (outIdx []int64, outAdj []VID, inIdx []int64, inAdj []VID) {
	if c, ok := a.(csrArrays); ok {
		return c.csr()
	}
	n, m := a.NumVertices(), a.NumEdges()
	outIdx = make([]int64, n+1)
	inIdx = make([]int64, n+1)
	outAdj = make([]VID, 0, m)
	inAdj = make([]VID, 0, m)
	for v := 0; v < n; v++ {
		outAdj = append(outAdj, a.Out(VID(v))...)
		outIdx[v+1] = int64(len(outAdj))
		inAdj = append(inAdj, a.In(VID(v))...)
		inIdx[v+1] = int64(len(inAdj))
	}
	return outIdx, outAdj, inIdx, inAdj
}

// NewActiveAdjacency builds a view over a with every vertex active
// (allActive) or every vertex inactive. Construction is O(n + m); the view
// retains a.
func NewActiveAdjacency(base Adjacency, allActive bool) *ActiveAdjacency {
	if !FitsActiveAdjacency(base) {
		panic(fmt.Sprintf("digraph: graph with m=%d exceeds the active-adjacency limit", base.NumEdges()))
	}
	n, m := base.NumVertices(), base.NumEdges()
	a := &ActiveAdjacency{
		base:   base,
		n:      n,
		active: make([]bool, n),
		out: halfAdj{
			adj: make([]VID, m), slot: make([]int32, m),
			pos: make([]int32, m), live: make([]int32, n), cross: make([]int32, m),
		},
		in: halfAdj{
			adj: make([]VID, m), slot: make([]int32, m),
			pos: make([]int32, m), live: make([]int32, n), cross: make([]int32, m),
		},
	}
	a.outIdx, a.outRef, a.inIdx, a.inRef = refArrays(base)
	copy(a.out.adj, a.outRef)
	copy(a.in.adj, a.inRef)
	for i := 0; i < m; i++ {
		a.out.slot[i], a.out.pos[i] = int32(i), int32(i)
		a.in.slot[i], a.in.pos[i] = int32(i), int32(i)
	}
	// Cross-link the two copies of every edge by replaying the counting pass
	// that built the in-CSR: scanning edges in (U, V) order fills each
	// in-list front to back.
	fill := make([]int64, n)
	copy(fill, a.inIdx[:n])
	for u := 0; u < n; u++ {
		for i := a.outIdx[u]; i < a.outIdx[u+1]; i++ {
			j := fill[a.outRef[i]]
			fill[a.outRef[i]]++
			a.out.cross[i] = int32(j)
			a.in.cross[j] = int32(i)
		}
	}
	a.Reset(allActive)
	return a
}

// Base returns the underlying immutable adjacency backend.
func (a *ActiveAdjacency) Base() Adjacency { return a.base }

// Len returns the number of vertices of the underlying backend.
func (a *ActiveAdjacency) Len() int { return a.n }

// NumVertices returns the number of vertices (Adjacency).
func (a *ActiveAdjacency) NumVertices() int { return a.n }

// NumEdges returns the edge count of the UNDERLYING backend — the view's
// capacity, not the live count (Adjacency; see the type comment).
func (a *ActiveAdjacency) NumEdges() int { return a.base.NumEdges() }

// Out returns the live out-neighbors of v (Adjacency; equals ActiveOut).
func (a *ActiveAdjacency) Out(v VID) []VID { return a.ActiveOut(v) }

// In returns the live in-neighbors of v (Adjacency; equals ActiveIn).
func (a *ActiveAdjacency) In(v VID) []VID { return a.ActiveIn(v) }

// OutDegree returns the live out-degree of v (Adjacency).
func (a *ActiveAdjacency) OutDegree(v VID) int { return int(a.out.live[v]) }

// InDegree returns the live in-degree of v (Adjacency).
func (a *ActiveAdjacency) InDegree(v VID) int { return int(a.in.live[v]) }

// Active reports whether v is active.
func (a *ActiveAdjacency) Active(v VID) bool { return a.active[v] }

// NumActive returns the number of active vertices.
func (a *ActiveAdjacency) NumActive() int { return a.count }

// ActiveOut returns the active out-neighbors of v in unspecified order. The
// slice aliases internal storage and is invalidated by the next
// Activate/Deactivate/Reset; it must not be modified.
func (a *ActiveAdjacency) ActiveOut(v VID) []VID {
	s := a.outIdx[v]
	return a.out.adj[s : s+int64(a.out.live[v])]
}

// ActiveIn returns the active in-neighbors of v under the same rules as
// ActiveOut.
func (a *ActiveAdjacency) ActiveIn(v VID) []VID {
	s := a.inIdx[v]
	return a.in.adj[s : s+int64(a.in.live[v])]
}

// ActiveOutDegree returns the number of active out-neighbors of v.
func (a *ActiveAdjacency) ActiveOutDegree(v VID) int { return int(a.out.live[v]) }

// ActiveInDegree returns the number of active in-neighbors of v.
func (a *ActiveAdjacency) ActiveInDegree(v VID) int { return int(a.in.live[v]) }

// Activate makes v active, moving it into the active prefix of each
// neighbor's list in O(deg(v)). It reports whether the state changed.
func (a *ActiveAdjacency) Activate(v VID) bool {
	if a.active[v] {
		return false
	}
	a.active[v] = true
	a.count++
	// v enters the active prefix of every in-neighbor's out-list...
	for j := a.inIdx[v]; j < a.inIdx[v+1]; j++ {
		u := a.inRef[j]
		i := a.in.cross[j] // out-slot of the edge (u, v)
		a.out.swap(int64(a.out.pos[i]), a.outIdx[u]+int64(a.out.live[u]))
		a.out.live[u]++
	}
	// ...and the active prefix of every out-neighbor's in-list.
	for i := a.outIdx[v]; i < a.outIdx[v+1]; i++ {
		w := a.outRef[i]
		j := a.out.cross[i] // in-slot of the edge (v, w)
		a.in.swap(int64(a.in.pos[j]), a.inIdx[w]+int64(a.in.live[w]))
		a.in.live[w]++
	}
	return true
}

// Deactivate makes v inactive, removing it from the active prefix of each
// neighbor's list in O(deg(v)). It reports whether the state changed.
func (a *ActiveAdjacency) Deactivate(v VID) bool {
	if !a.active[v] {
		return false
	}
	a.active[v] = false
	a.count--
	for j := a.inIdx[v]; j < a.inIdx[v+1]; j++ {
		u := a.inRef[j]
		i := a.in.cross[j]
		a.out.live[u]--
		a.out.swap(int64(a.out.pos[i]), a.outIdx[u]+int64(a.out.live[u]))
	}
	for i := a.outIdx[v]; i < a.outIdx[v+1]; i++ {
		w := a.outRef[i]
		j := a.out.cross[i]
		a.in.live[w]--
		a.in.swap(int64(a.in.pos[j]), a.inIdx[w]+int64(a.in.live[w]))
	}
	return true
}

// ResetCanonical is Reset restoring, in addition, the canonical (sorted)
// adjacency permutation in O(n + m), still allocation-free. A plain Reset
// leaves each segment in whatever order earlier swaps produced, which is
// invisible to order-independent queries (existence, shortest walk — the
// whole top-down family) but changes which cycle a DFS materializes first.
// Callers whose results depend on iteration order (the bottom-up cover)
// reset canonically so a pooled view behaves exactly like a fresh one.
func (a *ActiveAdjacency) ResetCanonical(allActive bool) {
	copy(a.out.adj, a.outRef)
	copy(a.in.adj, a.inRef)
	for i := range a.out.slot {
		a.out.slot[i], a.out.pos[i] = int32(i), int32(i)
		a.in.slot[i], a.in.pos[i] = int32(i), int32(i)
	}
	a.Reset(allActive)
}

// Reset sets every vertex to the given state in O(n), without touching the
// per-edge arrays: an all-active prefix is the whole segment and an
// all-inactive prefix is empty under ANY internal permutation, so only the
// live counters and flags need rewriting. A pooled view is thereby reusable
// across cover runs without reallocation. See ResetCanonical when iteration
// order must match a freshly built view.
func (a *ActiveAdjacency) Reset(allActive bool) {
	if allActive {
		for v := 0; v < a.n; v++ {
			a.out.live[v] = int32(a.outIdx[v+1] - a.outIdx[v])
			a.in.live[v] = int32(a.inIdx[v+1] - a.inIdx[v])
			a.active[v] = true
		}
		a.count = a.n
	} else {
		clear(a.out.live)
		clear(a.in.live)
		clear(a.active)
		a.count = 0
	}
}
