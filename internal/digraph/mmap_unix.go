//go:build linux || darwin

package digraph

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared: pages are backed by
// the file and faulted in on demand, so resident memory tracks the
// traversal's working set rather than the graph size.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return []byte{}, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
