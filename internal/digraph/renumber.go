package digraph

import (
	"fmt"
	"slices"
	"sort"
)

// Cache-aware vertex renumbering. The CSR arrays are laid out by VID, so
// the cost of a traversal is shaped by which vertices share cache lines:
// with arbitrary input numbering, following an edge is a random jump
// across the adjacency slab and a random bit/byte in every per-vertex
// array (marks, lane groups, masks). A locality permutation renames
// vertices so that the IDs an algorithm touches together lie together:
//
//   - RenumberDegree packs the high-degree core at the low end. Hot rows
//     — the hubs every traversal keeps crossing — then share a compact
//     prefix of the adjacency slab and of every per-vertex array, the
//     part that actually fits in cache; the long cold tail stops being
//     interleaved with it.
//   - RenumberBFS is a Cuthill-McKee-style sweep: vertices are numbered
//     in breadth-first discovery order (undirected neighborhoods,
//     low-degree seeds first, frontier neighbors by ascending degree), so
//     edge endpoints get nearby IDs and the adjacency matrix's bandwidth
//     shrinks — following an edge lands near the current position instead
//     of anywhere in the slab.
//
// The permutation is applied at build time (Graph.Renumber rebuilds the
// CSR in the new order); everything downstream — detectors, filters,
// covers — runs on renumbered IDs without knowing it. Callers that must
// preserve their external IDs keep the permutation and translate at the
// boundary, which is what the solve-level WithRenumbering option does.

// Renumbering selects a vertex renumbering mode.
type Renumbering int

const (
	// RenumberNone keeps the input numbering.
	RenumberNone Renumbering = iota
	// RenumberDegree renames vertices by descending total degree.
	RenumberDegree
	// RenumberBFS renames vertices in a Cuthill-McKee-style breadth-first
	// sweep over undirected neighborhoods.
	RenumberBFS
)

var renumberingNames = map[Renumbering]string{
	RenumberNone: "none", RenumberDegree: "degree", RenumberBFS: "bfs",
}

// String returns the option-surface name of the mode.
func (r Renumbering) String() string {
	if s, ok := renumberingNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Renumbering(%d)", int(r))
}

// ParseRenumbering resolves a renumbering name ("none", "degree", "bfs").
func ParseRenumbering(s string) (Renumbering, error) {
	for r, name := range renumberingNames {
		if s == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("digraph: unknown renumbering %q (want none, degree or bfs)", s)
}

// RenumberPerm computes the locality permutation of g under the given
// mode: perm[old] = new, deterministic for a given graph. RenumberNone
// returns the identity.
func RenumberPerm(g *Graph, mode Renumbering) []VID {
	n := g.NumVertices()
	perm := make([]VID, n)
	switch mode {
	case RenumberNone:
		for v := range perm {
			perm[v] = VID(v)
		}
	case RenumberDegree:
		ids := make([]VID, n)
		for v := range ids {
			ids[v] = VID(v)
		}
		deg := func(v VID) int { return g.OutDegree(v) + g.InDegree(v) }
		sort.SliceStable(ids, func(i, j int) bool {
			di, dj := deg(ids[i]), deg(ids[j])
			if di != dj {
				return di > dj
			}
			return ids[i] < ids[j] // deterministic tie-break
		})
		for newID, old := range ids {
			perm[old] = VID(newID)
		}
	case RenumberBFS:
		bfsPerm(g, perm)
	default:
		panic(fmt.Sprintf("digraph: unknown renumbering mode %v", mode))
	}
	return perm
}

// bfsPerm fills perm with a Cuthill-McKee-style numbering: seeds in
// ascending-degree order, breadth-first over the union of out- and
// in-neighborhoods, each vertex's unvisited neighbors enqueued by
// ascending degree (ID as tie-break).
func bfsPerm(g *Graph, perm []VID) {
	n := g.NumVertices()
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.OutDegree(VID(v)) + g.InDegree(VID(v)))
	}
	seeds := make([]VID, n)
	for v := range seeds {
		seeds[v] = VID(v)
	}
	sort.SliceStable(seeds, func(i, j int) bool {
		if deg[seeds[i]] != deg[seeds[j]] {
			return deg[seeds[i]] < deg[seeds[j]]
		}
		return seeds[i] < seeds[j]
	})

	visited := make([]bool, n)
	queue := make([]VID, 0, n)
	nbrs := make([]VID, 0, 64)
	next := 0
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			perm[v] = VID(next)
			next++
			// Merge the two sorted neighbor lists; duplicates (edges in
			// both directions) are filtered by the visited mark.
			nbrs = nbrs[:0]
			for _, w := range g.Out(v) {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			for _, w := range g.In(v) {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			slices.SortStableFunc(nbrs, func(a, b VID) int {
				if deg[a] != deg[b] {
					return int(deg[a] - deg[b])
				}
				return int(int64(a) - int64(b))
			})
			queue = append(queue, nbrs...)
		}
	}
}

// Renumber returns a new graph with vertex v renamed to perm[v]; perm
// must be a permutation of [0, n). The CSR is rebuilt in the new order —
// per-vertex adjacency stays sorted (by NEW IDs), so the result is
// indistinguishable from building the renamed edge list from scratch.
func (g *Graph) Renumber(perm []VID) *Graph {
	n := g.NumVertices()
	if len(perm) != n {
		panic(fmt.Sprintf("digraph: perm length %d != n %d", len(perm), n))
	}
	inv := InversePerm(perm)
	ng := &Graph{
		n:      n,
		outIdx: make([]int64, n+1),
		outAdj: make([]VID, g.NumEdges()),
		inIdx:  make([]int64, n+1),
		inAdj:  make([]VID, g.NumEdges()),
	}
	for nu := 0; nu < n; nu++ {
		old := inv[nu]
		ng.outIdx[nu+1] = ng.outIdx[nu] + int64(g.OutDegree(old))
		ng.inIdx[nu+1] = ng.inIdx[nu] + int64(g.InDegree(old))
	}
	for nu := 0; nu < n; nu++ {
		old := inv[nu]
		row := ng.outAdj[ng.outIdx[nu]:ng.outIdx[nu+1]]
		for i, w := range g.Out(old) {
			row[i] = perm[w]
		}
		slices.Sort(row)
		row = ng.inAdj[ng.inIdx[nu]:ng.inIdx[nu+1]]
		for i, w := range g.In(old) {
			row[i] = perm[w]
		}
		slices.Sort(row)
	}
	return ng
}

// InversePerm inverts a permutation: inv[perm[v]] = v.
func InversePerm(perm []VID) []VID {
	inv := make([]VID, len(perm))
	for old, nw := range perm {
		inv[nw] = VID(old)
	}
	return inv
}

// BuildRenumbered is Build followed by a locality renumbering: it freezes
// the edge set, computes the mode's permutation, and returns the graph
// rebuilt in permuted order together with the permutation (perm[old] =
// new; identity under RenumberNone). Callers keep perm to translate
// between their edge-list IDs and the graph's.
func (b *Builder) BuildRenumbered(mode Renumbering) (*Graph, []VID) {
	g := b.Build()
	perm := RenumberPerm(g, mode)
	if mode == RenumberNone {
		return g, perm
	}
	return g.Renumber(perm), perm
}
