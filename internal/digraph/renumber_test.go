package digraph

import (
	"math/rand/v2"
	"testing"
)

func randomRenumberGraph(n, m int, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
	}
	return b.Build()
}

// edgeSet canonicalizes a graph's edges mapped through a permutation.
func edgeSet(g *Graph, perm []VID) map[Edge]bool {
	set := make(map[Edge]bool, g.NumEdges())
	for _, e := range g.Edges() {
		set[Edge{perm[e.U], perm[e.V]}] = true
	}
	return set
}

func checkPermutation(t *testing.T, perm []VID) {
	t.Helper()
	seen := make([]bool, len(perm))
	for old, nw := range perm {
		if int(nw) >= len(perm) || seen[nw] {
			t.Fatalf("perm[%d] = %d is out of range or duplicated", old, nw)
		}
		seen[nw] = true
	}
}

func TestRenumberPreservesStructure(t *testing.T) {
	g := randomRenumberGraph(300, 1800, 7)
	idPerm := RenumberPerm(g, RenumberNone)
	for v, p := range idPerm {
		if p != VID(v) {
			t.Fatalf("RenumberNone perm[%d] = %d, want identity", v, p)
		}
	}
	for _, mode := range []Renumbering{RenumberDegree, RenumberBFS} {
		perm := RenumberPerm(g, mode)
		checkPermutation(t, perm)
		ng := g.Renumber(perm)
		if ng.NumVertices() != g.NumVertices() || ng.NumEdges() != g.NumEdges() {
			t.Fatalf("%v: size changed: %v -> %v", mode, g, ng)
		}
		want := edgeSet(g, perm)
		id := RenumberPerm(ng, RenumberNone)
		got := edgeSet(ng, id)
		for e := range want {
			if !got[e] {
				t.Fatalf("%v: renumbered graph lost edge %v", mode, e)
			}
		}
		// Adjacency must come out sorted, as Graph guarantees.
		for v := 0; v < ng.NumVertices(); v++ {
			for _, adj := range [][]VID{ng.Out(VID(v)), ng.In(VID(v))} {
				for i := 1; i < len(adj); i++ {
					if adj[i-1] >= adj[i] {
						t.Fatalf("%v: adjacency of %d not strictly sorted: %v", mode, v, adj)
					}
				}
			}
		}
	}
}

func TestRenumberDegreeOrdersHubsFirst(t *testing.T) {
	g := randomRenumberGraph(200, 2000, 11)
	perm := RenumberPerm(g, RenumberDegree)
	inv := InversePerm(perm)
	ng := g.Renumber(perm)
	for nu := 1; nu < ng.NumVertices(); nu++ {
		prev := g.OutDegree(inv[nu-1]) + g.InDegree(inv[nu-1])
		cur := g.OutDegree(inv[nu]) + g.InDegree(inv[nu])
		if prev < cur {
			t.Fatalf("degree order violated at new IDs %d,%d: %d < %d", nu-1, nu, prev, cur)
		}
	}
}

func TestRenumberBFSCoversAllComponents(t *testing.T) {
	// Two disjoint cycles plus isolated vertices: the sweep must number
	// every vertex exactly once.
	b := NewBuilder(10)
	b.AddEdges([]Edge{{0, 1}, {1, 2}, {2, 0}, {5, 6}, {6, 5}})
	g := b.Build()
	perm := RenumberPerm(g, RenumberBFS)
	checkPermutation(t, perm)
}

func TestInversePerm(t *testing.T) {
	perm := []VID{2, 0, 3, 1}
	inv := InversePerm(perm)
	for old, nw := range perm {
		if inv[nw] != VID(old) {
			t.Fatalf("inv[perm[%d]] = %d", old, inv[nw])
		}
	}
}

func TestBuildRenumbered(t *testing.T) {
	b := NewBuilder(0)
	edges := []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 2}, {1, 0}}
	b.AddEdges(edges)
	g, perm := b.BuildRenumbered(RenumberDegree)
	checkPermutation(t, perm)
	for _, e := range edges {
		if !g.HasEdge(perm[e.U], perm[e.V]) {
			t.Fatalf("edge %v missing after renumbered build", e)
		}
	}
}

func TestParseRenumbering(t *testing.T) {
	for _, mode := range []Renumbering{RenumberNone, RenumberDegree, RenumberBFS} {
		got, err := ParseRenumbering(mode.String())
		if err != nil || got != mode {
			t.Fatalf("ParseRenumbering(%q) = %v, %v", mode.String(), got, err)
		}
	}
	if _, err := ParseRenumbering("zorder"); err == nil {
		t.Fatal("ParseRenumbering accepted an unknown mode")
	}
}
