package digraph

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
)

// dupGraph builds a deterministic pseudo-random graph with self-loops
// and duplicate insertions, the shapes Build has to normalize away.
func dupGraph(n, m int, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 17))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := VID(rng.IntN(n)), VID(rng.IntN(n))
		b.AddEdge(u, v)
		if rng.IntN(8) == 0 {
			b.AddEdge(u, v) // duplicate; must dedup
		}
	}
	return b.Build()
}

// writeTempMapped round-trips g through the TDBCSR1 format in a temp dir.
func writeTempMapped(t *testing.T, g Adjacency) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.tdbcsr")
	if err := WriteMapped(path, g); err != nil {
		t.Fatalf("WriteMapped: %v", err)
	}
	return path
}

// assertSameAdjacency fails unless a and b expose identical CSRs.
func assertSameAdjacency(t *testing.T, a, b Adjacency) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		id := VID(v)
		if got, want := a.Out(id), b.Out(id); !equalVIDs(got, want) {
			t.Fatalf("Out(%d) = %v, want %v", v, got, want)
		}
		if got, want := a.In(id), b.In(id); !equalVIDs(got, want) {
			t.Fatalf("In(%d) = %v, want %v", v, got, want)
		}
		if a.OutDegree(id) != b.OutDegree(id) || a.InDegree(id) != b.InDegree(id) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

func equalVIDs(a, b []VID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMappedRoundTrip(t *testing.T) {
	for _, fallback := range []bool{false, true} {
		name := "mmap"
		if fallback {
			name = "fallback"
		}
		t.Run(name, func(t *testing.T) {
			defer func(v bool) { disableMmap = v }(disableMmap)
			disableMmap = fallback

			g := dupGraph(300, 2000, 1)
			mg, err := OpenMapped(writeTempMapped(t, g))
			if err != nil {
				t.Fatalf("OpenMapped: %v", err)
			}
			defer mg.Close()

			if fallback == mg.Mapped() {
				t.Errorf("Mapped() = %v with fallback=%v", mg.Mapped(), fallback)
			}
			if mg.StorageName() != "mapped" {
				t.Errorf("StorageName() = %q", mg.StorageName())
			}
			assertSameAdjacency(t, mg, g)
			for v := 0; v < g.NumVertices(); v++ {
				for _, w := range g.Out(VID(v)) {
					if !mg.HasEdge(VID(v), w) {
						t.Fatalf("HasEdge(%d,%d) = false for a present edge", v, w)
					}
				}
			}
			if mg.HasEdge(0, VID(g.NumVertices()-1)) != g.HasEdge(0, VID(g.NumVertices()-1)) {
				t.Error("HasEdge disagrees on a probe pair")
			}
		})
	}
}

func TestMappedEmptyAndEdgeless(t *testing.T) {
	for _, g := range []*Graph{NewBuilder(0).Build(), NewBuilder(5).Build()} {
		mg, err := OpenMapped(writeTempMapped(t, g))
		if err != nil {
			t.Fatalf("OpenMapped(n=%d): %v", g.NumVertices(), err)
		}
		assertSameAdjacency(t, mg, g)
		mg.Close()
	}
}

func TestBuildMappedMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	edges := make([]Edge, 0, 5000)
	for i := 0; i < 5000; i++ {
		edges = append(edges, Edge{U: VID(rng.IntN(400)), V: VID(rng.IntN(400))})
	}
	edges = append(edges, edges[:100]...) // duplicates

	mem := NewBuilder(400)
	mem.AddEdges(edges)
	g := mem.Build()

	spill := NewBuilder(400)
	spill.AddEdges(edges)
	mg, err := spill.BuildMapped(filepath.Join(t.TempDir(), "b.tdbcsr"))
	if err != nil {
		t.Fatalf("BuildMapped: %v", err)
	}
	defer mg.Close()
	assertSameAdjacency(t, mg, g)
}

func TestMappedClose(t *testing.T) {
	mg, err := OpenMapped(writeTempMapped(t, dupGraph(10, 30, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := mg.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestOpenMappedRejectsCorruption feeds targeted corruptions of a valid
// file through OpenMapped: every one must come back as an error, never a
// panic and never a silently wrong graph.
func TestOpenMappedRejectsCorruption(t *testing.T) {
	g := dupGraph(50, 400, 2)
	valid, err := os.ReadFile(writeTempMapped(t, g))
	if err != nil {
		t.Fatal(err)
	}

	// Section offsets from the layout, to aim mutations precisely.
	h := mappedLayout(uint64(g.NumVertices()), uint64(g.NumEdges()))

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-header", func(b []byte) []byte { return b[:40] }},
		{"truncated-body", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad-crc", func(b []byte) []byte { b[88] ^= 0x01; return b }}, // reserved word: only the CRC notices
		{"n-overflow", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 1<<40)
			return b
		}},
		{"m-mismatch", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], uint64(g.NumEdges()+1))
			return b
		}},
		{"section-out-of-bounds", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:], uint64(len(b)))
			return b
		}},
		{"idx-not-monotone", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[h.sections[0].off+8:], 1<<60)
			return b
		}},
		{"adj-vertex-out-of-range", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[h.sections[1].off:], uint32(g.NumVertices()))
			return b
		}},
		{"row-not-ascending", func(b []byte) []byte {
			// Overwrite a whole out-row with a descending pair.
			var u VID
			for v := 0; v < g.NumVertices(); v++ {
				if g.OutDegree(VID(v)) >= 2 {
					u = VID(v)
					break
				}
			}
			off := h.sections[1].off + uint64(4*g.outIdx[u])
			binary.LittleEndian.PutUint32(b[off:], 9)
			binary.LittleEndian.PutUint32(b[off+4:], 9)
			return b
		}},
		{"transpose-broken", func(b []byte) []byte {
			// Swap two inAdj entries from different rows: out stays valid,
			// the transpose replay must notice.
			off := h.sections[3].off
			a := binary.LittleEndian.Uint32(b[off:])
			z := binary.LittleEndian.Uint32(b[off+uint64(4*(g.NumEdges()-1)):])
			binary.LittleEndian.PutUint32(b[off:], z)
			binary.LittleEndian.PutUint32(b[off+uint64(4*(g.NumEdges()-1)):], a)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(bytes.Clone(valid))
			path := filepath.Join(t.TempDir(), "corrupt.tdbcsr")
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			mg, err := OpenMapped(path)
			if err == nil {
				// A mutation may cancel out (e.g. swapping equal values);
				// then the graph must still be internally consistent.
				if tc.name == "transpose-broken" || tc.name == "row-not-ascending" {
					assertSameAdjacency(t, mg, g)
					mg.Close()
					t.Skip("mutation was a no-op on this graph")
				}
				t.Fatalf("OpenMapped accepted %s corruption", tc.name)
			}
		})
	}
}

func TestIsMappedFile(t *testing.T) {
	g := dupGraph(20, 60, 4)
	mapped := writeTempMapped(t, g)
	if !IsMappedFile(mapped) {
		t.Error("IsMappedFile = false on a TDBCSR1 file")
	}
	text := filepath.Join(t.TempDir(), "g.txt")
	if err := SaveFile(text, g); err != nil {
		t.Fatal(err)
	}
	if IsMappedFile(text) {
		t.Error("IsMappedFile = true on a text edge list")
	}
	if IsMappedFile(filepath.Join(t.TempDir(), "missing")) {
		t.Error("IsMappedFile = true on a missing file")
	}
}

func TestOpenStorage(t *testing.T) {
	g := dupGraph(30, 120, 5)

	mapped := writeTempMapped(t, g)
	a, closer, err := OpenStorage(mapped)
	if err != nil {
		t.Fatalf("OpenStorage(mapped): %v", err)
	}
	if StorageName(a) != "mapped" {
		t.Errorf("mapped file opened as %q backend", StorageName(a))
	}
	assertSameAdjacency(t, a, g)
	if err := closer(); err != nil {
		t.Errorf("mapped closer: %v", err)
	}

	text := filepath.Join(t.TempDir(), "g.txt")
	if err := SaveFile(text, g); err != nil {
		t.Fatal(err)
	}
	a, closer, err = OpenStorage(text)
	if err != nil {
		t.Fatalf("OpenStorage(text): %v", err)
	}
	if StorageName(a) != "memory" {
		t.Errorf("text file opened as %q backend", StorageName(a))
	}
	assertSameAdjacency(t, a, g)
	if err := closer(); err != nil {
		t.Errorf("memory closer: %v", err)
	}
}

// FuzzMappedGraph is the crash-safety contract for the on-disk format:
// OpenMapped over arbitrary bytes either succeeds with an internally
// consistent graph or returns an error — it must never panic.
func FuzzMappedGraph(f *testing.F) {
	valid, err := os.ReadFile(writeTempMappedFuzz(f, dupGraph(12, 40, 6)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:mappedHdrSize])
	f.Add([]byte{})
	f.Add([]byte("TDBCSR1\x00garbage"))
	long := bytes.Clone(valid)
	long[9] = 0xff // huge n against a short file
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.tdbcsr")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		mg, err := OpenMapped(path)
		if err != nil {
			return
		}
		// Accepted: every access in the contract must be in-bounds.
		defer mg.Close()
		for v := 0; v < mg.NumVertices(); v++ {
			id := VID(v)
			_, _ = mg.Out(id), mg.In(id)
			_, _ = mg.OutDegree(id), mg.InDegree(id)
		}
		if mg.NumVertices() > 0 {
			mg.HasEdge(0, VID(mg.NumVertices()-1))
		}
	})
}

func writeTempMappedFuzz(f *testing.F, g Adjacency) string {
	f.Helper()
	path := filepath.Join(f.TempDir(), "g.tdbcsr")
	if err := WriteMapped(path, g); err != nil {
		f.Fatalf("WriteMapped: %v", err)
	}
	return path
}

// BenchmarkHasEdge measures the binary-search membership probe on both
// backends; rows are sorted so slices.BinarySearch is the whole cost.
func BenchmarkHasEdge(b *testing.B) {
	g := dupGraph(10_000, 200_000, 8)
	path := filepath.Join(b.TempDir(), "g.tdbcsr")
	if err := WriteMapped(path, g); err != nil {
		b.Fatal(err)
	}
	mg, err := OpenMapped(path)
	if err != nil {
		b.Fatal(err)
	}
	defer mg.Close()

	rng := rand.New(rand.NewPCG(9, 9))
	probes := make([][2]VID, 1024)
	for i := range probes {
		probes[i] = [2]VID{VID(rng.IntN(10_000)), VID(rng.IntN(10_000))}
	}

	b.Run("memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := probes[i&1023]
			g.HasEdge(p[0], p[1])
		}
	})
	b.Run("mapped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := probes[i&1023]
			mg.HasEdge(p[0], p[1])
		}
	})
}
