package digraph

// This file holds the word-packed primitives behind bit-parallel multi-source
// BFS (cycle.BatchBFSFilter): a lane GROUP packs 1, 4 or 8 consecutive
// 64-bit words, so one group carries 64, 256 or 512 concurrent traversals.
// LaneBits maps every vertex to such a group, and LaneFrontier is one BFS
// level whose members each carry one.
//
// The representation is a flat []uint64 slab with a fixed per-vertex STRIDE
// (WordsPerGroup), not a generic array-element type: the group operations
// sit in the innermost edge-expansion loop of the batched filters, and Go's
// shape-based generics leave constraint-method calls behind a dictionary
// there (measured ~2x on the filter benchmarks), while a stride the sweep
// bodies read once lets the one-word path index Words[v] directly — codegen
// identical to the historical Bitset64 — and the wide paths run short
// counted loops whose overhead is amortized over 4-8 words per group.
//
// LaneBits and LaneFrontier are FLAT arrays, not epoch-stamped maps: the
// lane group of a vertex is read and written per scanned edge, where a stamp
// check is measurable, so a plain load wins — the owner zeroes exactly the
// entries it touched afterwards (the filters track their touched vertices
// anyway: frontier lists and seed lists). Exported fields keep those hot
// accesses free of call overhead; treat them as the representation they are.

// clearListDivisor is the bulk-clear cutover of LaneBits.ClearList: once the
// touched list covers 1/clearListDivisor of the slab, one sequential
// clear() replaces the scattered per-entry stores. The divisor is 1 — bulk
// only from list size >= group count, i.e. duplicate-heavy or superset
// lists. BenchmarkLaneBitsClear shows why the isolated crossover is not the
// right setting: cold scattered clears lose to memclr from ~n/8, and even
// cache-hot ones (the filters' pattern — the list enumerates groups the
// sweep just wrote) only break even there. But in situ the memclr also
// evicts the sweep's OTHER hot state — CSR rows, the opposite direction's
// lane slabs — which the next word pays for: an n/8 cutover cost the
// power-law filter sweep 25%. Bulk is therefore reserved for lists no
// shorter than the slab itself, where it cannot lose.
const clearListDivisor = 1

// LaneBits maps each vertex to one lane group of WordsPerGroup consecutive
// uint64 words (the multi-word generalization of the old one-word Bitset64).
// The group of vertex v occupies Words[v*nw : (v+1)*nw]; sweep bodies read
// the stride once and index the slab directly. The zero group means "no
// lane": owners must return every touched group to zero (ClearList) before
// reuse.
type LaneBits struct {
	nw    int // words per group
	Words []uint64
}

// NewLaneBits returns a lane map of nw-word groups over n vertices, all
// groups zero. nw is typically 1, 4 or 8 (cycle.BatchWidth/8 lanes per
// word).
func NewLaneBits(n, nw int) *LaneBits {
	return &LaneBits{nw: nw, Words: make([]uint64, n*nw)}
}

// Len returns the number of vertices the map covers.
func (b *LaneBits) Len() int { return len(b.Words) / b.nw }

// WordsPerGroup returns the per-vertex stride in words.
func (b *LaneBits) WordsPerGroup() int { return b.nw }

// Group returns vertex v's lane group as a slice of the underlying slab.
// Convenience for cold paths and tests; sweep bodies index Words directly.
func (b *LaneBits) Group(v VID) []uint64 {
	return b.Words[int(v)*b.nw : (int(v)+1)*b.nw]
}

// ClearList zeroes the groups of the given vertices — O(len(verts)) scattered
// stores for short lists, one bulk clear of the whole slab once the list
// passes the measured crossover (see clearListDivisor). Callers may
// therefore pass any superset list of the touched vertices without
// quadratic risk.
func (b *LaneBits) ClearList(verts []VID) {
	nw := b.nw
	if len(verts)*nw*clearListDivisor >= len(b.Words) {
		clear(b.Words)
		return
	}
	if nw == 1 {
		for _, v := range verts {
			b.Words[v] = 0
		}
		return
	}
	for _, v := range verts {
		base := int(v) * nw
		clear(b.Words[base : base+nw])
	}
}

// LaneFrontier is one level of a bit-parallel BFS: a set of vertices, each
// carrying the group of lanes that arrived at it on this level. The push
// helpers deduplicate vertices through the group itself (first lanes in =
// list entry), so a level's edge expansion appends each vertex once no
// matter how many lanes arrive.
type LaneFrontier struct {
	Verts []VID
	Bits  LaneBits
}

// NewLaneFrontier returns an empty frontier of nw-word lane groups over n
// vertices.
func NewLaneFrontier(n, nw int) *LaneFrontier {
	return &LaneFrontier{Bits: LaneBits{nw: nw, Words: make([]uint64, n*nw)}}
}

// Push merges a one-word lane set into v's group — the stride-1 fast path
// (the frontier must have been built with nw == 1). Pushing 0 is a no-op.
func (f *LaneFrontier) Push(v VID, lanes uint64) {
	if lanes == 0 {
		return
	}
	if f.Bits.Words[v] == 0 {
		f.Verts = append(f.Verts, v)
	}
	f.Bits.Words[v] |= lanes
}

// PushGroup merges an nw-word lane group into v's group; len(lanes) must
// equal the frontier's WordsPerGroup. Pushing an all-zero group is a no-op.
func (f *LaneFrontier) PushGroup(v VID, lanes []uint64) {
	var any, had uint64
	base := int(v) * f.Bits.nw
	dst := f.Bits.Words[base : base+len(lanes)]
	for j, l := range lanes {
		any |= l
		had |= dst[j]
	}
	if any == 0 {
		return
	}
	if had == 0 {
		f.Verts = append(f.Verts, v)
	}
	for j, l := range lanes {
		dst[j] |= l
	}
}

// Len returns the number of distinct vertices on the frontier.
func (f *LaneFrontier) Len() int { return len(f.Verts) }

// Clear zeroes the listed vertices' groups and empties the list, leaving the
// frontier ready for reuse in O(frontier size).
func (f *LaneFrontier) Clear() {
	f.Bits.ClearList(f.Verts)
	f.Verts = f.Verts[:0]
}
