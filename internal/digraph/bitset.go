package digraph

// This file holds the word-packed primitives behind bit-parallel multi-source
// BFS (cycle.BatchBFSFilter): Bitset64 maps every vertex to a 64-lane word,
// and LaneFrontier is one BFS level whose members each carry such a word.
//
// Both are FLAT arrays, not epoch-stamped maps: the lane word of a vertex is
// read and written in the innermost loop of the batched filters, where a
// stamp check per access is measurable, so a plain load wins — the owner
// zeroes exactly the entries it touched afterwards (the filters track their
// touched vertices anyway: frontier lists and seed lists). Exported fields
// keep those hot accesses free of call overhead; treat them as the
// representation they are.

// Bitset64 maps each vertex to a 64-bit lane word. The zero word means "no
// lane": owners must return every touched entry to zero (ClearList) before
// reuse.
type Bitset64 struct {
	Words []uint64
}

// NewBitset64 returns a lane map over n vertices, all words zero.
func NewBitset64(n int) *Bitset64 {
	return &Bitset64{Words: make([]uint64, n)}
}

// Len returns the number of vertices the map covers.
func (b *Bitset64) Len() int { return len(b.Words) }

// ClearList zeroes the words of the given vertices — O(len(verts)), the
// owner's touched set, instead of O(n).
func (b *Bitset64) ClearList(verts []VID) {
	for _, v := range verts {
		b.Words[v] = 0
	}
}

// LaneFrontier is one level of a bit-parallel BFS: a set of vertices, each
// carrying the word of lanes that arrived at it on this level. Push
// deduplicates vertices through the word itself (first lanes in = list
// entry), so a level's edge expansion appends each vertex once no matter
// how many lanes arrive.
type LaneFrontier struct {
	Verts []VID
	Bits  Bitset64
}

// NewLaneFrontier returns an empty frontier over n vertices.
func NewLaneFrontier(n int) *LaneFrontier {
	return &LaneFrontier{Bits: Bitset64{Words: make([]uint64, n)}}
}

// Push merges lanes into v's word, adding v to the vertex list on first
// contact. Pushing an empty lane word is a no-op.
func (f *LaneFrontier) Push(v VID, lanes uint64) {
	if lanes == 0 {
		return
	}
	if f.Bits.Words[v] == 0 {
		f.Verts = append(f.Verts, v)
	}
	f.Bits.Words[v] |= lanes
}

// Len returns the number of distinct vertices on the frontier.
func (f *LaneFrontier) Len() int { return len(f.Verts) }

// Clear zeroes the listed vertices' words and empties the list, leaving the
// frontier ready for reuse in O(frontier size).
func (f *LaneFrontier) Clear() {
	f.Bits.ClearList(f.Verts)
	f.Verts = f.Verts[:0]
}
