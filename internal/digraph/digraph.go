// Package digraph provides a compact directed-graph substrate used by every
// algorithm in this repository.
//
// The central type is Graph, an immutable compressed-sparse-row (CSR)
// representation storing both out- and in-adjacency so that forward DFS/BFS
// (cycle search) and backward propagation (the Unblock step of the barrier
// technique) are both cache-friendly. Graphs are constructed through a
// Builder, which applies the paper's edge policies (self-loops dropped,
// duplicates merged) and then freezes the edge set.
//
// Algorithms that need a mutating view (the bottom-up cover removes a chosen
// vertex's edges; the top-down cover grows an initially empty graph) layer a
// working-graph representation over the immutable Graph instead of
// physically editing adjacency lists: either a VertexMask (O(1) toggles,
// traversals filter the full degree) or an ActiveAdjacency view (O(deg)
// toggles, traversals touch exactly the live edges) — see DESIGN.md §7 for
// the trade-off.
package digraph

import (
	"fmt"
	"slices"
)

// VID identifies a vertex. Vertices are dense integers in [0, NumVertices).
// 32-bit IDs keep the CSR arrays half the size of int64 IDs, which matters
// for the billion-edge regime the paper targets.
type VID = uint32

// Edge is a directed edge from U to V.
type Edge struct {
	U, V VID
}

// Graph is an immutable directed graph in CSR form.
//
// The zero value is an empty graph with no vertices. Use a Builder to create
// non-trivial graphs.
type Graph struct {
	n int

	outIdx []int64 // len n+1; outAdj[outIdx[v]:outIdx[v+1]] are v's out-neighbors
	outAdj []VID   // sorted per vertex
	inIdx  []int64 // len n+1; inAdj[inIdx[v]:inIdx[v+1]] are v's in-neighbors
	inAdj  []VID   // sorted per vertex
}

// NumVertices returns the number of vertices, n.
func (g *Graph) NumVertices() int {
	return g.n
}

// NumEdges returns the number of directed edges, m.
func (g *Graph) NumEdges() int {
	return len(g.outAdj)
}

// Out returns the out-neighbors of v in increasing order.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) Out(v VID) []VID {
	return g.outAdj[g.outIdx[v]:g.outIdx[v+1]]
}

// In returns the in-neighbors of v in increasing order.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) In(v VID) []VID {
	return g.inAdj[g.inIdx[v]:g.inIdx[v+1]]
}

// OutDegree returns the number of out-neighbors of v.
func (g *Graph) OutDegree(v VID) int {
	return int(g.outIdx[v+1] - g.outIdx[v])
}

// InDegree returns the number of in-neighbors of v.
func (g *Graph) InDegree(v VID) int {
	return int(g.inIdx[v+1] - g.inIdx[v])
}

// HasEdge reports whether the directed edge (u, v) exists.
// It binary-searches u's sorted out-adjacency, so it costs O(log outdeg(u)).
// slices.BinarySearch compiles to a direct comparison loop over the VID
// slice — no per-probe closure call as with sort.Search
// (BenchmarkHasEdge).
func (g *Graph) HasEdge(u, v VID) bool {
	_, found := slices.BinarySearch(g.Out(u), v)
	return found
}

// StorageName identifies the backend for observability: the in-memory CSR.
func (g *Graph) StorageName() string { return "memory" }

// Edges returns all edges in (u, v) lexicographic order. It allocates a fresh
// slice of length NumEdges.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.n; v++ {
		for _, w := range g.Out(VID(v)) {
			edges = append(edges, Edge{VID(v), w})
		}
	}
	return edges
}

// AvgDegree returns the average out-degree m/n, the davg column of the
// paper's Table II. It returns 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.n)
}

// String summarizes the graph ("digraph(n=7115, m=103689)").
func (g *Graph) String() string {
	return fmt.Sprintf("digraph(n=%d, m=%d)", g.n, g.NumEdges())
}

// Transpose returns a new Graph with every edge reversed. The in/out CSR
// arrays are swapped, so this is O(1) in time and memory beyond the struct
// itself.
func (g *Graph) Transpose() *Graph {
	return &Graph{
		n:      g.n,
		outIdx: g.inIdx, outAdj: g.inAdj,
		inIdx: g.outIdx, inAdj: g.outAdj,
	}
}

// InducedSubgraph builds a new graph containing only the vertices for which
// keep[v] is true, re-labelling them densely while preserving relative order.
// It returns the subgraph and the mapping newID -> oldID. See Induced, the
// backend-generic form this delegates to.
//
// It panics if len(keep) != NumVertices.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []VID) {
	if len(keep) != g.n {
		panic(fmt.Sprintf("digraph: keep mask length %d != n %d", len(keep), g.n))
	}
	return Induced(g, keep)
}

// Builder accumulates edges and produces an immutable Graph.
//
// Policies (matching the paper's preliminaries):
//   - self-loops are dropped unless KeepSelfLoops is set (the paper never
//     treats them as cycles);
//   - duplicate edges are merged;
//   - bidirectional edges (2-cycles) are kept in the graph — whether they
//     count as cycles is an algorithm option, not a storage policy.
type Builder struct {
	n             int
	edges         []Edge
	KeepSelfLoops bool
	built         bool
}

// NewBuilder returns a Builder for a graph with n vertices. AddVertex or
// AddEdge may grow the vertex count later.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("digraph: negative vertex count")
	}
	return &Builder{n: n}
}

// EnsureVertices grows the vertex count to at least n.
func (b *Builder) EnsureVertices(n int) {
	if n > b.n {
		b.n = n
	}
}

// AddEdge records the directed edge (u, v), growing the vertex count as
// needed. Self-loops are silently dropped unless KeepSelfLoops is set.
func (b *Builder) AddEdge(u, v VID) {
	if u == v && !b.KeepSelfLoops {
		return
	}
	if int(u) >= b.n {
		b.n = int(u) + 1
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	b.edges = append(b.edges, Edge{u, v})
}

// AddEdges records a batch of edges under the same policies as AddEdge.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
}

// NumPendingEdges returns the number of edges recorded so far, before
// deduplication.
func (b *Builder) NumPendingEdges() int {
	return len(b.edges)
}

// Build freezes the accumulated edges into an immutable Graph, merging
// duplicates. The Builder must not be reused afterwards.
//
// Each edge is packed into one uint64 key (U in the high half, V in the
// low half) so that sorting and deduplication run over a flat integer
// slice — slices.Sort's specialized pdqsort, no reflection-based
// comparator — which dominates construction time on large edge lists.
func (b *Builder) Build() *Graph {
	if b.built {
		panic("digraph: Builder.Build called twice")
	}
	b.built = true

	keys := make([]uint64, len(b.edges))
	for i, e := range b.edges {
		keys[i] = uint64(e.U)<<32 | uint64(e.V)
	}
	b.edges = nil
	slices.Sort(keys)
	// Merge duplicates in place; uint64 order equals (U, V) lexicographic
	// order.
	m := 0
	for i, k := range keys {
		if i > 0 && k == keys[i-1] {
			continue
		}
		keys[m] = k
		m++
	}
	keys = keys[:m]

	g := &Graph{
		n:      b.n,
		outIdx: make([]int64, b.n+1),
		outAdj: make([]VID, m),
		inIdx:  make([]int64, b.n+1),
		inAdj:  make([]VID, m),
	}
	// Out-CSR: keys are already sorted by (U, V).
	for _, k := range keys {
		g.outIdx[k>>32+1]++
	}
	for v := 0; v < b.n; v++ {
		g.outIdx[v+1] += g.outIdx[v]
	}
	for i, k := range keys {
		g.outAdj[i] = VID(k)
	}
	// In-CSR via counting sort on V; per-vertex in-lists come out sorted by U
	// because we scan edges in (U, V) order.
	for _, k := range keys {
		g.inIdx[VID(k)+1]++
	}
	for v := 0; v < b.n; v++ {
		g.inIdx[v+1] += g.inIdx[v]
	}
	fill := make([]int64, b.n)
	copy(fill, g.inIdx[:b.n])
	for _, k := range keys {
		g.inAdj[fill[VID(k)]] = VID(k >> 32)
		fill[VID(k)]++
	}
	return g
}

// FromEdges is a convenience constructor: it builds a graph with n vertices
// from the given edge list under default Builder policies.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	b.AddEdges(edges)
	return b.Build()
}
