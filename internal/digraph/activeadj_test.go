package digraph

import (
	"math/rand/v2"
	"slices"
	"testing"
)

// refView is the trivially-correct reference: a bool set filtered against
// the immutable adjacency.
type refView struct {
	g      *Graph
	active []bool
}

func (r *refView) activeAdj(vs []VID) []VID {
	out := []VID{}
	for _, w := range vs {
		if r.active[w] {
			out = append(out, w)
		}
	}
	return out
}

func sortedCopy(vs []VID) []VID {
	c := slices.Clone(vs)
	slices.Sort(c)
	return c
}

// checkAgainstRef asserts that the view agrees with the reference on every
// vertex: same active flags, and ActiveOut/ActiveIn equal as sets to the
// filtered immutable adjacency.
func checkAgainstRef(t *testing.T, a *ActiveAdjacency, ref *refView) {
	t.Helper()
	g := ref.g
	count := 0
	for v := 0; v < g.NumVertices(); v++ {
		if ref.active[v] {
			count++
		}
		if a.Active(VID(v)) != ref.active[v] {
			t.Fatalf("Active(%d) = %v, want %v", v, a.Active(VID(v)), ref.active[v])
		}
		wantOut := sortedCopy(ref.activeAdj(g.Out(VID(v))))
		gotOut := sortedCopy(a.ActiveOut(VID(v)))
		if !slices.Equal(gotOut, wantOut) {
			t.Fatalf("ActiveOut(%d) = %v, want %v", v, gotOut, wantOut)
		}
		wantIn := sortedCopy(ref.activeAdj(g.In(VID(v))))
		gotIn := sortedCopy(a.ActiveIn(VID(v)))
		if !slices.Equal(gotIn, wantIn) {
			t.Fatalf("ActiveIn(%d) = %v, want %v", v, gotIn, wantIn)
		}
		if a.ActiveOutDegree(VID(v)) != len(wantOut) || a.ActiveInDegree(VID(v)) != len(wantIn) {
			t.Fatalf("degrees of %d: out %d in %d, want %d %d",
				v, a.ActiveOutDegree(VID(v)), a.ActiveInDegree(VID(v)), len(wantOut), len(wantIn))
		}
	}
	if a.NumActive() != count {
		t.Fatalf("NumActive = %d, want %d", a.NumActive(), count)
	}
}

func TestActiveAdjacencyRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 13))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.IntN(40)
		g := randomGraph(rng, n, rng.IntN(6*n))
		startFull := trial%2 == 0
		a := NewActiveAdjacency(g, startFull)
		ref := &refView{g: g, active: make([]bool, n)}
		for i := range ref.active {
			ref.active[i] = startFull
		}
		checkAgainstRef(t, a, ref)
		for step := 0; step < 120; step++ {
			v := VID(rng.IntN(n))
			if rng.IntN(2) == 0 {
				changed := a.Activate(v)
				if changed == ref.active[v] {
					t.Fatalf("Activate(%d) changed=%v with ref active=%v", v, changed, ref.active[v])
				}
				ref.active[v] = true
			} else {
				changed := a.Deactivate(v)
				if changed != ref.active[v] {
					t.Fatalf("Deactivate(%d) changed=%v with ref active=%v", v, changed, ref.active[v])
				}
				ref.active[v] = false
			}
			checkAgainstRef(t, a, ref)
		}
	}
}

func TestActiveAdjacencyReset(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	g := randomGraph(rng, 30, 150)
	a := NewActiveAdjacency(g, false)
	ref := &refView{g: g, active: make([]bool, 30)}
	// Scramble the internal permutation, then reset both ways.
	for i := 0; i < 60; i++ {
		v := VID(rng.IntN(30))
		if rng.IntN(2) == 0 {
			a.Activate(v)
			ref.active[v] = true
		} else {
			a.Deactivate(v)
			ref.active[v] = false
		}
	}
	a.Reset(true)
	for i := range ref.active {
		ref.active[i] = true
	}
	checkAgainstRef(t, a, ref)
	a.Reset(false)
	for i := range ref.active {
		ref.active[i] = false
	}
	checkAgainstRef(t, a, ref)
	// The view must remain fully functional after resets.
	for i := 0; i < 60; i++ {
		v := VID(rng.IntN(30))
		a.Activate(v)
		ref.active[v] = true
	}
	checkAgainstRef(t, a, ref)
	// A canonical reset must behave exactly like a freshly built view:
	// identical slices (including order), not just identical sets.
	a.ResetCanonical(true)
	fresh := NewActiveAdjacency(g, true)
	for v := 0; v < g.NumVertices(); v++ {
		if !slices.Equal(a.ActiveOut(VID(v)), fresh.ActiveOut(VID(v))) ||
			!slices.Equal(a.ActiveIn(VID(v)), fresh.ActiveIn(VID(v))) {
			t.Fatalf("ResetCanonical: vertex %d differs from a fresh view", v)
		}
	}
}

func TestActiveAdjacencySelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.KeepSelfLoops = true
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.Build()
	a := NewActiveAdjacency(g, false)
	ref := &refView{g: g, active: make([]bool, 3)}
	for _, v := range []VID{0, 1, 2, 0, 1} { // re-activation is a no-op
		a.Activate(v)
		ref.active[v] = true
		checkAgainstRef(t, a, ref)
	}
	a.Deactivate(0)
	ref.active[0] = false
	checkAgainstRef(t, a, ref)
}

func TestActiveAdjacencyEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	a := NewActiveAdjacency(g, true)
	if a.NumActive() != 0 || a.Len() != 0 {
		t.Fatalf("empty graph view: NumActive=%d Len=%d", a.NumActive(), a.Len())
	}
}
