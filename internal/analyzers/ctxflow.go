package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces end-to-end context propagation in the serving-path
// packages (internal/core, internal/dynamic, internal/server): cancellation
// and deadlines must flow from the HTTP boundary down to every cover
// computation, so no function on that path may mint its own root context,
// and exported functions that take a context must take it first (callers
// grep for the ctx-first shape; a buried context parameter is how a
// Background() quietly sneaks in at the call site).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "check context discipline on serving-path packages: no " +
		"context.Background/TODO outside main and tests, context.Context first",
	Run: runCtxFlow,
}

// ctxScoped reports whether the package is on the serving path the rule
// covers. Matched by path segment so the testdata corpus (and a future
// module rename) scope identically to the real tree.
func ctxScoped(importPath string) bool {
	p := importPath + "/"
	return strings.Contains(p, "internal/core/") ||
		strings.Contains(p, "internal/dynamic/") ||
		strings.Contains(p, "internal/server/")
}

func runCtxFlow(pass *Pass) error {
	if !ctxScoped(pass.ImportPath) || pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, name := range [2]string{"Background", "TODO"} {
					if pkgFuncCall(pass.TypesInfo, n, "context", name, false) {
						pass.Reportf(n.Pos(), "context.%s() severs the caller's cancellation and deadline: thread the request context through instead", name)
					}
				}
			case *ast.FuncDecl:
				checkCtxFirst(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCtxFirst flags exported functions (and methods on exported types)
// whose context.Context parameter is not the first.
func checkCtxFirst(pass *Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() {
		return
	}
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		if named := namedOf(pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)); named != nil && !named.Obj().Exported() {
			return // method on an unexported type: not part of the package surface
		}
	}
	idx := 0
	for _, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) && idx > 0 {
			pass.Reportf(field.Pos(), "context.Context should be the first parameter of exported %s", fn.Name.Name)
			return
		}
		idx += n
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
