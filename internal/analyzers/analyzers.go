// Package analyzers hosts tdbvet: static analyzers that mechanically
// enforce the invariants this codebase otherwise maintains by hand and
// reviewer vigilance — epoch refcounts that must Release on every path,
// pooled scratch that must never be repooled after a panic, contexts that
// must flow end-to-end, fields that are either always-atomic or
// never-atomic, and an auditable fault-injection surface.
//
// The suite is deliberately self-contained: it mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Reportf, testdata with
// "// want" expectations) but is built on the standard library only —
// packages are loaded through `go list -export` and type-checked with the
// stdlib gc importer — so the checker builds and runs offline with no
// dependencies beyond the toolchain. If x/tools ever lands in the module,
// each analyzer ports mechanically: the Run functions only consume
// *ast.File + *types.Info.
//
// Findings are suppressed, one at a time and with a recorded reason, by a
// comment on the flagged line or the line directly above it:
//
//	//tdbvet:ignore <analyzer> <reason>
//
// A directive with a missing or unknown analyzer name, an empty reason, or
// one that suppresses nothing is itself a finding — dead suppressions rot
// into lies about which invariants the code actually honors.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File // parsed + type-checked non-test files
	TestFiles  []*ast.File // parsed, syntax-only (no type info)
	Pkg        *types.Package
	TypesInfo  *types.Info
	ImportPath string

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// All returns the tdbvet suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		EpochRef,
		ScratchPool,
		CtxFlow,
		AtomicField,
		FaultSite,
	}
}

// Run applies analyzers to pkgs, applies the //tdbvet:ignore directives,
// and returns the surviving findings sorted by position. Analyzer Run
// errors (not findings) abort the whole run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				TestFiles:  pkg.TestFiles,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				ImportPath: pkg.ImportPath,
				diags:      &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		diags = append(diags, applySuppressions(pkg, known, ran, pkgDiags)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
