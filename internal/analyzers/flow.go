package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// resourceRule parameterizes the shared acquire/discharge path walker:
// epochref tracks EpochRing.Acquire -> Epoch.Release, scratchpool tracks
// ScratchPool.Get -> ScratchPool.Put. The walker is a pragmatic syntactic
// path analysis in the spirit of vet's lostcancel, not a full CFG: it
// reports an acquire whose result can reach a return statement or the end
// of the function with no discharge, deferred discharge, or escape on that
// path. It prefers precision to soundness — borderline shapes (discharge
// inside a loop, goto) are given the benefit of the doubt, and genuine
// exceptions carry a //tdbvet:ignore with the reason.
type resourceRule struct {
	analyzer string
	recvType string // named type owning the acquire method
	acquire  string // acquire method name
	release  string // discharge method name
	// releaseOnOwner: discharge is owner.Put(res) rather than res.Release().
	releaseOnOwner bool
	// nilable: acquire may return nil, so paths under `if res == nil` need
	// no discharge.
	nilable bool
	// argEscapes: passing res as a bare call argument transfers ownership
	// (epochs move into carriers); when false an argument is a borrow
	// (detectors borrow scratch) and the caller still owes the discharge.
	argEscapes bool
	what       string // human-readable resource name for messages
	past       string // past tense of the discharge for messages ("Released", "Put back")
}

// runResource applies rule to every function in the pass.
func runResource(pass *Pass, rule resourceRule) {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkBody(pass, rule, body)
		})
	}
}

// acquireOf matches `res := owner.Acquire()` shapes and returns the bound
// object, or reports immediately when the result is discarded.
func checkBody(pass *Pass, rule resourceRule, body *ast.BlockStmt) {
	info := pass.TypesInfo
	// Collect the acquire statements directly contained in this function
	// body (nested function literals are separate functions).
	type acquisition struct {
		stmt ast.Stmt
		obj  types.Object
		pos  token.Pos
	}
	var acqs []acquisition
	var visitStmts func(list []ast.Stmt)
	visitStmt := func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return
			}
			call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return
			}
			if _, ok := methodCall(info, call, rule.recvType, rule.acquire); !ok {
				return
			}
			if len(s.Lhs) != 1 {
				return
			}
			switch lhs := s.Lhs[0].(type) {
			case *ast.Ident:
				if lhs.Name == "_" {
					pass.Reportf(call.Pos(), "result of %s.%s is discarded: the %s can never be %s",
						rule.recvType, rule.acquire, rule.what, rule.past)
					return
				}
				obj := info.Defs[lhs]
				if obj == nil {
					obj = info.Uses[lhs] // plain `=` assignment to an existing var
				}
				if obj != nil {
					acqs = append(acqs, acquisition{stmt: s, obj: obj, pos: call.Pos()})
				}
			default:
				// Acquired straight into a field or element: an immediate
				// escape into a carrier; ownership is the carrier's.
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if _, ok := methodCall(info, call, rule.recvType, rule.acquire); ok {
					pass.Reportf(call.Pos(), "result of %s.%s is discarded: the %s can never be %s",
						rule.recvType, rule.acquire, rule.what, rule.past)
				}
			}
		}
	}
	visitStmts = func(list []ast.Stmt) {
		for _, s := range list {
			visitStmt(s)
			switch s := s.(type) {
			case *ast.BlockStmt:
				visitStmts(s.List)
			case *ast.IfStmt:
				if s.Init != nil {
					visitStmt(s.Init)
				}
				visitStmts(s.Body.List)
				if s.Else != nil {
					visitStmts([]ast.Stmt{s.Else})
				}
			case *ast.ForStmt:
				if s.Init != nil {
					visitStmt(s.Init)
				}
				visitStmts(s.Body.List)
			case *ast.RangeStmt:
				visitStmts(s.Body.List)
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				var bodies []*ast.BlockStmt
				switch s := s.(type) {
				case *ast.SwitchStmt:
					bodies = append(bodies, s.Body)
				case *ast.TypeSwitchStmt:
					bodies = append(bodies, s.Body)
				case *ast.SelectStmt:
					bodies = append(bodies, s.Body)
				}
				for _, b := range bodies {
					for _, clause := range b.List {
						switch c := clause.(type) {
						case *ast.CaseClause:
							visitStmts(c.Body)
						case *ast.CommClause:
							visitStmts(c.Body)
						}
					}
				}
			case *ast.LabeledStmt:
				visitStmts([]ast.Stmt{s.Stmt})
			}
		}
	}
	visitStmts(body.List)

	for _, acq := range acqs {
		t := &rtracker{pass: pass, rule: rule, obj: acq.obj, acquire: acq.stmt, acqPos: acq.pos}
		t.check(body)
	}
}

// rtracker walks one function body tracking one acquired resource.
type rtracker struct {
	pass    *Pass
	rule    resourceRule
	obj     types.Object
	acquire ast.Stmt
	acqPos  token.Pos

	doneForever bool // a deferred discharge covers every later exit
	bailed      bool // goto encountered: give up on this function
	reported    bool
}

type rstate struct {
	active bool // the acquire statement has executed on this path
	done   bool // no live, undischarged resource on this path
}

func (t *rtracker) check(body *ast.BlockStmt) {
	// Fast path: a resource that is never discharged or escaped anywhere
	// in the function gets one report at the acquire site instead of one
	// per return.
	any := false
	ast.Inspect(body, func(n ast.Node) bool {
		if any {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if t.isDischarge(n) {
				any = true
			}
		}
		if n != nil && t.isEscapeNode(n) {
			any = true
		}
		return !any
	})
	if !any {
		t.pass.Reportf(t.acqPos, "%s acquired here is never %s and never escapes: it leaks on every path",
			t.rule.what, t.rule.past)
		return
	}

	// A deferred discharge registered BEFORE the acquire covers it too
	// (`var e *E; defer func() { e.Release() }(); e = ring.Acquire()`);
	// the positional walk below only sees defers after the acquire.
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Pos() < t.acqPos && t.deferDischarges(d) {
			t.doneForever = true
		}
		return !t.doneForever
	})

	st, terminated := t.walkStmts(body.List, rstate{done: true})
	if t.bailed || t.reported {
		return
	}
	if !terminated && st.active && !st.done && !t.doneForever {
		t.pass.Reportf(t.acqPos, "%s acquired here may not be %s when the function falls off the end",
			t.rule.what, t.rule.past)
	}
}

// isDischarge reports whether call discharges the tracked resource:
// res.Release() (method on the resource) or owner.Put(res) (method on the
// owner taking the resource).
func (t *rtracker) isDischarge(call *ast.CallExpr) bool {
	info := t.pass.TypesInfo
	if t.rule.releaseOnOwner {
		if _, ok := methodCall(info, call, t.rule.recvType, t.rule.release); !ok {
			return false
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == t.obj {
				return true
			}
		}
		return false
	}
	recv, ok := methodCall(info, call, t.resourceTypeName(), t.rule.release)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(recv).(*ast.Ident)
	return ok && info.Uses[id] == t.obj
}

// resourceTypeName derives the tracked resource's named type from the
// acquired object (so fakes in testdata match without hardcoding).
func (t *rtracker) resourceTypeName() string {
	if named := namedOf(t.obj.Type()); named != nil {
		return named.Obj().Name()
	}
	return ""
}

// isEscapeNode reports whether n on its own transfers ownership of the
// resource out of the function: returning it, storing it into a field,
// element or channel, wrapping it in a composite literal, handing it to a
// goroutine or a closure that outlives the frame, or (for rules with
// argEscapes) passing it to any call.
func (t *rtracker) isEscapeNode(n ast.Node) bool {
	info := t.pass.TypesInfo
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if mentionsBeyondReceiver(info, r, t.obj) {
				return true
			}
		}
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			if i < len(n.Rhs) && mentionsBeyondReceiver(info, n.Rhs[i], t.obj) {
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					return true
				}
			}
		}
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 && mentionsBeyondReceiver(info, n.Rhs[0], t.obj) {
			return true // multi-assign from one call mentioning the resource
		}
	case *ast.SendStmt:
		if mentionsBeyondReceiver(info, n.Value, t.obj) {
			return true
		}
	case *ast.CompositeLit:
		for _, e := range n.Elts {
			v := e
			if kv, ok := e.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if id, ok := ast.Unparen(v).(*ast.Ident); ok && info.Uses[id] == t.obj {
				return true
			}
		}
	case *ast.GoStmt:
		if usesObject(info, n.Call, t.obj) {
			return true
		}
	case *ast.FuncLit:
		// A closure mentioning the resource may store or discharge it
		// later; treated as an escape to keep the walker precise. The
		// deferred-closure case is handled by walkStmt's DeferStmt arm
		// before descending here.
		if usesObject(info, n.Body, t.obj) {
			return true
		}
	case *ast.CallExpr:
		if t.isDischarge(n) {
			return false
		}
		if !t.rule.argEscapes {
			return false
		}
		for _, arg := range n.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == t.obj {
				return true
			}
		}
	}
	return false
}

// scanEvents inspects one statement (not descending into nested statements
// or function literals handled elsewhere) and updates st for discharges
// and escapes.
func (t *rtracker) scanEvents(n ast.Node, st *rstate) {
	if n == nil || !st.active {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && t.isDischarge(call) {
			st.done = true
			return true
		}
		if t.isEscapeNode(n) {
			st.done = true
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
		}
		return true
	})
}

// nilGuard classifies cond as a nil test of the tracked resource.
// Returns +1 for `res == nil`, -1 for `res != nil`, 0 otherwise.
func (t *rtracker) nilGuard(cond ast.Expr) int {
	if !t.rule.nilable {
		return 0
	}
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return 0
	}
	isRes := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && t.pass.TypesInfo.Uses[id] == t.obj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (isRes(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRes(bin.Y)) {
		if bin.Op == token.EQL {
			return 1
		}
		return -1
	}
	return 0
}

// walkStmts walks a statement list, returning the fall-through state and
// whether every path through the list terminates (returns or panics).
func (t *rtracker) walkStmts(list []ast.Stmt, st rstate) (rstate, bool) {
	for _, s := range list {
		var term bool
		st, term = t.walkStmt(s, st)
		if term || t.bailed {
			return st, term
		}
	}
	return st, false
}

func (t *rtracker) walkStmt(s ast.Stmt, st rstate) (rstate, bool) {
	if t.bailed {
		return st, false
	}
	if s == t.acquire {
		st.active = true
		st.done = false
		return st, false
	}
	switch s := s.(type) {
	case *ast.AssignStmt, *ast.ExprStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		if call, ok := panicCall(s); ok {
			_ = call
			return st, true // panic terminates the path; defers own cleanup
		}
		t.scanEvents(s, &st)
		return st, false
	case *ast.DeferStmt:
		if !st.active {
			return st, false
		}
		if t.deferDischarges(s) {
			t.doneForever = true
			st.done = true
			return st, false
		}
		t.scanEvents(s, &st)
		return st, false
	case *ast.GoStmt:
		t.scanEvents(s, &st)
		return st, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if mentionsBeyondReceiver(t.pass.TypesInfo, r, t.obj) {
				return st, true // escapes via the return value
			}
		}
		t.scanEvents(s, &st) // a call in the results may discharge
		if st.active && !st.done && !t.doneForever {
			t.reported = true
			t.pass.Reportf(s.Pos(), "%s acquired on line %d may not be %s on this return path",
				t.rule.what, t.pass.Fset.Position(t.acqPos).Line, t.rule.past)
		}
		return st, true
	case *ast.BlockStmt:
		return t.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = t.walkStmt(s.Init, st)
		}
		t.scanEvents(s.Cond, &st)
		thenSt, elseSt := st, st
		switch t.nilGuard(s.Cond) {
		case 1: // res == nil
			if st.active {
				thenSt.done = true
			}
		case -1: // res != nil
			if st.active {
				elseSt.done = true
			}
		}
		thenOut, thenTerm := t.walkStmts(s.Body.List, thenSt)
		elseOut, elseTerm := elseSt, false
		if s.Else != nil {
			elseOut, elseTerm = t.walkStmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			merged := rstate{
				active: thenOut.active || elseOut.active,
				done:   thenOut.done && elseOut.done,
			}
			return merged, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = t.walkStmt(s.Init, st)
		}
		t.scanEvents(s.Cond, &st)
		bodyOut, _ := t.walkStmts(s.Body.List, st)
		return rstate{
			active: st.active || bodyOut.active,
			done:   st.done && bodyOut.done,
		}, false
	case *ast.RangeStmt:
		t.scanEvents(s.X, &st)
		bodyOut, _ := t.walkStmts(s.Body.List, st)
		return rstate{
			active: st.active || bodyOut.active,
			done:   st.done && bodyOut.done,
		}, false
	case *ast.SwitchStmt:
		return t.walkCases(s.Init, s.Tag, s.Body, st)
	case *ast.TypeSwitchStmt:
		return t.walkCases(s.Init, nil, s.Body, st)
	case *ast.SelectStmt:
		return t.walkCases(nil, nil, s.Body, st)
	case *ast.LabeledStmt:
		return t.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			t.bailed = true
		}
		return st, false
	}
	return st, false
}

// walkCases handles switch/type-switch/select clause bodies.
func (t *rtracker) walkCases(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, st rstate) (rstate, bool) {
	if init != nil {
		st, _ = t.walkStmt(init, st)
	}
	if tag != nil {
		t.scanEvents(tag, &st)
	}
	hasDefault := false
	out := st
	first := true
	allTerm := true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				t.scanEvents(c.Comm, &st)
			}
			stmts = c.Body
		}
		cOut, cTerm := t.walkStmts(stmts, st)
		if !cTerm {
			allTerm = false
			if first {
				out = cOut
				first = false
			} else {
				out = rstate{active: out.active || cOut.active, done: out.done && cOut.done}
			}
		}
	}
	if hasDefault && allTerm && len(body.List) > 0 {
		return st, true
	}
	if !hasDefault {
		// The zero-case path falls through untouched.
		out = rstate{active: out.active || st.active, done: out.done && st.done}
	}
	return out, false
}

// deferDischarges reports whether the deferred call discharges the
// resource, directly (`defer e.Release()`) or anywhere inside a deferred
// closure (`defer func() { ... pool.Put(sc) ... }()`).
func (t *rtracker) deferDischarges(d *ast.DeferStmt) bool {
	if t.isDischarge(d.Call) {
		return true
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && t.isDischarge(call) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// panicCall matches a statement that is a bare panic(...) call.
func panicCall(s ast.Stmt) (*ast.CallExpr, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return nil, false
	}
	return call, true
}
