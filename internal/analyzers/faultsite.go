package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// FaultSite keeps the build-tag-free fault-injection surface auditable
// (DESIGN §12): probe sites ship in release binaries, so every one of them
// must be deliberate, named, and findable. Concretely:
//
//   - fault.Inject may only be called from non-test files in packages
//     under internal/ — a probe in cmd/ or the public API would leak the
//     chaos surface to users, and a probe in a test file is pointless
//     (tests ARM hooks; production code hosts the sites);
//   - the site argument must be a Site constant declared in the fault
//     package itself — the const block in internal/fault/sites.go IS the
//     registry, and an ad-hoc string (or a constant squirreled away in
//     another package) silently decouples the chaos suites from the probe;
//   - fault.Arm belongs in tests: arming a hook from production code would
//     turn an inert probe into live behavior.
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc: "check that fault.Inject sites live under internal/, outside " +
		"test files, with a registered fault.Site constant",
	Run: runFaultSite,
}

func runFaultSite(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case pkgFuncCall(info, call, "fault", "Inject", true):
				if !strings.Contains(pass.ImportPath+"/", "internal/") {
					pass.Reportf(call.Pos(), "fault probe site outside internal/: injection points must not leak into the public surface")
				}
				if len(call.Args) == 1 && !isFaultSiteConst(info, call.Args[0]) {
					pass.Reportf(call.Pos(), "fault site must be a registered Site constant from the fault package (internal/fault/sites.go), not an ad-hoc name")
				}
			case pkgFuncCall(info, call, "fault", "Arm", true):
				if pass.Pkg.Name() != "fault" {
					pass.Reportf(call.Pos(), "fault.Arm outside a test arms a chaos hook in production code; only tests arm probes")
				}
			}
			return true
		})
	}
	// Test files are parsed without type information, so the test-file rule
	// is syntactic: any fault.Inject call in a _test.go file plants a probe
	// where no chaos suite will ever look for it. The fault package's own
	// tests are exempt — they exercise the injection plumbing itself.
	if pass.Pkg.Name() == "fault" {
		return nil
	}
	for _, f := range pass.TestFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Inject" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fault" {
				pass.Reportf(call.Pos(), "fault.Inject in a test file: tests arm hooks on registered sites (fault.Arm); probe sites live in production code")
			}
			return true
		})
	}
	return nil
}

// isFaultSiteConst reports whether e resolves to a constant declared in a
// package named fault.
func isFaultSiteConst(info *types.Info, e ast.Expr) bool {
	c, ok := objOf(info, e).(*types.Const)
	return ok && c.Pkg() != nil && c.Pkg().Name() == "fault"
}
