package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// namedOf returns the named type beneath pointers and aliases, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// objOf resolves an identifier or selector to its object.
func objOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// methodCall reports whether call invokes method on a receiver whose named
// type is typeName (in any package — the testdata corpora declare fakes),
// returning the receiver expression.
func methodCall(info *types.Info, call *ast.CallExpr, typeName, method string) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return nil, false
	}
	named := namedOf(recv.Type())
	if named == nil || named.Obj().Name() != typeName {
		return nil, false
	}
	return sel.X, true
}

// pkgFuncCall reports whether call invokes the package-level function
// pkg.name, with pkg matched by exact import path or, when byName is set,
// by package name (for testdata fakes of internal packages).
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, name string, byName bool) bool {
	fn, ok := objOf(info, call.Fun).(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if fn.Signature().Recv() != nil {
		return false
	}
	if byName {
		return fn.Pkg().Name() == pkgPath
	}
	return fn.Pkg().Path() == pkgPath
}

// mentionsBeyondReceiver reports whether the subtree rooted at n uses obj
// other than as the base of a selector (method call or field read on the
// resource is a borrow, not an ownership transfer: `return e.Graph()` does
// not return e).
func mentionsBeyondReceiver(info *types.Info, n ast.Node, obj types.Object) bool {
	if n == nil {
		return false
	}
	receiverIdents := map[*ast.Ident]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		if sel, ok := m.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				receiverIdents[id] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj && !receiverIdents[id] {
			found = true
		}
		return !found
	})
	return found
}

// usesObject reports whether the subtree rooted at n mentions obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isTestFilename reports whether the position's file is a _test.go file.
func isTestFilename(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}

// funcBodies yields every function body in f — declarations and literals —
// with the enclosing declaration's name for messages.
func funcBodies(f *ast.File, visit func(name string, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Name.Name, n.Body)
			}
		case *ast.FuncLit:
			visit("func literal", n.Body)
		}
		return true
	})
}
