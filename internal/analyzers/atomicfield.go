package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
)

// AtomicField enforces all-or-nothing atomicity per field: a struct field
// whose address is ever passed to a sync/atomic operation must be accessed
// through sync/atomic everywhere in the package. A single plain load mixed
// in (the classic fast-path shortcut) is a data race the race detector
// only catches when the interleaving happens to fire; the fault-probe fast
// path and the server counters are exactly the places where it won't.
// Typed atomics (atomic.Int64 & co.) are immune by construction — this
// analyzer covers the function-style residue. Initialization through a
// composite literal is exempt: it happens before the value is shared.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "check that fields accessed via sync/atomic are accessed " +
		"atomically everywhere",
	Run: runAtomicField,
}

// atomicFuncRE matches the function-style sync/atomic operations whose
// first argument is the address of the shared word.
var atomicFuncRE = regexp.MustCompile(`^(Load|Store|Add|Swap|CompareAndSwap|Or|And)(Int|Uint|Pointer)?(32|64|ptr)?$`)

func runAtomicField(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1: fields used atomically, and the selector nodes sanctioned by
	// appearing as &x.f inside a sync/atomic call.
	tracked := map[*types.Var]ast.Node{} // field -> one atomic use (for the message)
	sanctioned := map[*ast.SelectorExpr]bool{}
	fieldOf := func(e ast.Expr) (*ast.SelectorExpr, *types.Var) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return nil, nil
		}
		v, _ := s.Obj().(*types.Var)
		return sel, v
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := objOf(info, call.Fun).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicFuncRE.MatchString(fn.Name()) {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			if sel, v := fieldOf(addr.X); v != nil {
				sanctioned[sel] = true
				if _, seen := tracked[v]; !seen {
					tracked[v] = call
				}
			}
			return true
		})
	}
	if len(tracked) == 0 {
		return nil
	}

	// Pass 2: every other access to a tracked field is a plain (racy)
	// access, except composite-literal initialization.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			_, v := fieldOf(sel)
			if v == nil {
				return true
			}
			if at, ok := tracked[v]; ok {
				atomicPos := pass.Fset.Position(at.Pos())
				pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic at %s:%d: this plain access races with it",
					v.Name(), shortPath(atomicPos.Filename), atomicPos.Line)
			}
			return true
		})
	}
	return nil
}

// shortPath trims a filename to its last two path segments for messages.
func shortPath(p string) string {
	slash := 0
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			slash++
			if slash == 2 {
				return p[i+1:]
			}
		}
	}
	return p
}
