package analyzers

// EpochRef enforces the MVCC snapshot refcount discipline from DESIGN §12:
// every *Epoch obtained from EpochRing.Acquire must reach Release on every
// path out of the acquiring function, or escape into a carrier that takes
// over the obligation (returned, stored in a struct/map/channel, or passed
// to a callee — epochs move across function boundaries by design, unlike
// pooled scratch). A leaked reference pins the epoch's graph, cover and
// payload engine forever: the ring's Live() count never returns to
// baseline and the chaos suite's leak audit fails long after the guilty
// request is gone.
var EpochRef = &Analyzer{
	Name: "epochref",
	Doc: "check that every EpochRing.Acquire result is Released on all " +
		"paths or escapes via a carrier",
	Run: func(pass *Pass) error {
		runResource(pass, resourceRule{
			analyzer:       "epochref",
			recvType:       "EpochRing",
			acquire:        "Acquire",
			release:        "Release",
			releaseOnOwner: false,
			nilable:        true, // Acquire returns nil before the first Publish
			argEscapes:     true,
			what:           "epoch",
			past:           "Released",
		})
		return nil
	},
}
