package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ScratchPool enforces the pooled-scratch discipline from DESIGN §12 (the
// PR 7 quarantine rule, born from the PR 5 leaked-mark bug):
//
//  1. every *Scratch from ScratchPool.Get must reach ScratchPool.Put on
//     every non-panicking path (or escape into an owning struct); passing
//     scratch to a detector/filter constructor is a borrow, not a
//     discharge, so the getter still owes the Put;
//  2. Put must never execute on a panic path — a scratch abandoned
//     mid-traversal may hold poisoned epoch marks, and repooling it hands
//     the poison to a later, unrelated run. Quarantining is simply NOT
//     calling Put (the GC reclaims the buffer), so the analyzer flags any
//     Put reachable from the non-nil branch of a recover() test.
var ScratchPool = &Analyzer{
	Name: "scratchpool",
	Doc: "check that pooled scratch is Put back on all non-panic paths " +
		"and never repooled from a recover block",
	Run: runScratchPool,
}

func runScratchPool(pass *Pass) error {
	runResource(pass, resourceRule{
		analyzer:       "scratchpool",
		recvType:       "ScratchPool",
		acquire:        "Get",
		release:        "Put",
		releaseOnOwner: true,
		nilable:        false,
		argEscapes:     false, // detectors borrow scratch; Get's frame still owes the Put
		what:           "scratch",
		past:           "Put back",
	})
	for _, f := range pass.Files {
		checkRecoverPut(pass, f)
	}
	return nil
}

// checkRecoverPut flags ScratchPool.Put calls lexically inside the panic
// branch of a recover() test:
//
//	if p := recover(); p != nil { ...pool.Put(sc)... }   // flagged
//	if r := recover(); r == nil { ... } else { Put }     // flagged
//	if p := recover(); p != nil { quarantine } else { pool.Put(sc) } // ok
//
// root is a whole file: one inspection covers every function and closure in
// it, and the recovered-object map stays correct across functions because
// each scope's variables are distinct objects.
func checkRecoverPut(pass *Pass, root ast.Node) {
	info := pass.TypesInfo
	// Objects holding a recover() result.
	recovered := map[types.Object]bool{}
	var record func(s ast.Stmt)
	record = func(s ast.Stmt) {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return
		}
		if !isRecoverCall(ast.Unparen(as.Rhs[0])) {
			return
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				recovered[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				recovered[obj] = true
			}
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if s, ok := n.(ast.Stmt); ok {
			record(s)
			if ifs, ok := s.(*ast.IfStmt); ok && ifs.Init != nil {
				record(ifs.Init)
			}
		}
		return true
	})

	// testsRecover classifies cond: +1 when true means "panicking"
	// (recover result != nil), -1 when true means "not panicking".
	testsRecover := func(cond ast.Expr) int {
		bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return 0
		}
		isRec := func(e ast.Expr) bool {
			e = ast.Unparen(e)
			if isRecoverCall(e) {
				return true
			}
			id, ok := e.(*ast.Ident)
			return ok && recovered[info.Uses[id]]
		}
		isNil := func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			return ok && id.Name == "nil"
		}
		switch {
		case isRec(bin.X) && isNil(bin.Y), isNil(bin.X) && isRec(bin.Y):
			if bin.Op == token.NEQ {
				return 1
			}
			return -1
		}
		return 0
	}

	flagPuts := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := methodCall(info, call, "ScratchPool", "Put"); ok {
				pass.Reportf(call.Pos(), "pooled scratch repooled on a panic path: a scratch abandoned mid-traversal may hold poisoned marks; quarantine it (skip the Put) instead")
			}
			return true
		})
	}
	ast.Inspect(root, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		switch testsRecover(ifs.Cond) {
		case 1: // body runs when panicking
			flagPuts(ifs.Body)
		case -1: // else runs when panicking
			flagPuts(ifs.Else)
		}
		return true
	})
}

// isRecoverCall matches a call to the recover builtin.
func isRecoverCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "recover"
}
