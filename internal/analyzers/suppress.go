package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full grammar is
//
//	//tdbvet:ignore <analyzer> <reason>
//
// placed either on the line being flagged or alone on the line directly
// above it. One directive silences exactly one analyzer on exactly one
// line; the reason is mandatory and free-form.
const ignorePrefix = "tdbvet:ignore"

// directive is one parsed //tdbvet:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string // "" when malformed
	reason   string
	used     bool
}

// applySuppressions drops findings covered by a well-formed directive on
// the same or the preceding line, and adds "tdbvet" findings for malformed
// or unused directives. known maps every valid analyzer name (the whole
// suite, so a -run filter does not turn valid directives into malformed
// ones); ran maps the analyzers of this run (a directive is only "unused"
// when its analyzer actually ran and produced nothing to suppress).
func applySuppressions(pkg *Package, known, ran map[string]bool, diags []Diagnostic) []Diagnostic {
	// file -> line -> directive on that line.
	byLine := map[string]map[int]*directive{}
	var all []*directive
	collect := func(f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				d := &directive{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(text)
				if len(fields) >= 1 {
					d.analyzer = fields[0]
				}
				if len(fields) >= 2 {
					d.reason = strings.Join(fields[1:], " ")
				}
				all = append(all, d)
				m := byLine[d.pos.Filename]
				if m == nil {
					m = map[int]*directive{}
					byLine[d.pos.Filename] = m
				}
				m[d.pos.Line] = d
			}
		}
	}
	for _, f := range pkg.Files {
		collect(f)
	}
	for _, f := range pkg.TestFiles {
		collect(f)
	}
	if len(all) == 0 {
		return diags
	}

	wellFormed := func(d *directive) bool {
		return known[d.analyzer] && d.reason != ""
	}
	var out []Diagnostic
	for _, diag := range diags {
		m := byLine[diag.Position.Filename]
		suppressed := false
		for _, line := range [2]int{diag.Position.Line, diag.Position.Line - 1} {
			if d := m[line]; d != nil && wellFormed(d) && d.analyzer == diag.Analyzer {
				d.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	for _, d := range all {
		switch {
		case !wellFormed(d):
			out = append(out, Diagnostic{
				Position: d.pos,
				Analyzer: "tdbvet",
				Message:  "malformed //" + ignorePrefix + " directive: want \"//" + ignorePrefix + " <analyzer> <reason>\" with a known analyzer and a non-empty reason",
			})
		case !d.used && ran[d.analyzer]:
			out = append(out, Diagnostic{
				Position: d.pos,
				Analyzer: "tdbvet",
				Message:  "unused //" + ignorePrefix + " " + d.analyzer + " directive suppresses nothing; delete it",
			})
		}
	}
	return out
}
