package analyzers

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden corpus mirrors x/tools' analysistest: each analyzer owns a
// GOPATH-style tree under testdata/src/<analyzer>/, and every line that
// must produce a finding carries a trailing
//
//	// want "regexp" ["regexp" ...]
//
// comment. The test fails on findings with no matching want on their line
// and on wants no finding matched — so the corpus pins both the positives
// AND the false-positive set (files with no want comments at all).

// wantRE extracts the quoted patterns of one want comment; patterns are
// double-quoted or backquoted (backquotes keep regexp escapes readable).
var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)$")

// wantPatRE matches one quoted pattern inside a want comment.
var wantPatRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseWants harvests want comments from every file of pkgs.
func parseWants(t *testing.T, pkgs []*Package) []*want {
	t.Helper()
	var wants []*want
	harvest := func(pkg *Package, f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantPatRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			harvest(pkg, f)
		}
		for _, f := range pkg.TestFiles {
			harvest(pkg, f)
		}
	}
	return wants
}

// runGolden loads testdata/src/<name> and checks analyzer a against its
// want comments.
func runGolden(t *testing.T, a *Analyzer) {
	t.Helper()
	pkgs, err := LoadTree("../..", "testdata/src/"+a.Name)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, pkgs)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Position.Filename && w.line == d.Position.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.pattern)
		}
	}
}

func TestEpochRefGolden(t *testing.T)    { runGolden(t, EpochRef) }
func TestScratchPoolGolden(t *testing.T) { runGolden(t, ScratchPool) }
func TestCtxFlowGolden(t *testing.T)     { runGolden(t, CtxFlow) }
func TestAtomicFieldGolden(t *testing.T) { runGolden(t, AtomicField) }
func TestFaultSiteGolden(t *testing.T)   { runGolden(t, FaultSite) }

// TestRepoClean runs the full suite over the real module — the same gate
// CI applies through cmd/tdbvet. The repo must stay tdbvet-clean: a
// finding here means either a genuine invariant violation or a missing
// //tdbvet:ignore with its reason.
func TestRepoClean(t *testing.T) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; the module sweep looks truncated", len(pkgs))
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestSuppressionMalformedAndUnused pins the directive contract on a
// synthetic corpus: a well-formed directive swallows exactly its finding,
// a malformed or unused one is itself a finding.
func TestSuppressionContract(t *testing.T) {
	pkgs, err := LoadTree("../..", "testdata/src/suppress")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d: %s [%s]", d.Position.Line, d.Message, d.Analyzer))
	}
	checks := []struct {
		substr string
		want   bool
	}{
		{"is never Released", false},        // suppressed by a well-formed directive
		{"malformed //tdbvet:ignore", true}, // reason missing
		{"unused //tdbvet:ignore", true},    // suppresses nothing
		{"may not be Released", true},       // directive names the wrong analyzer
	}
	joined := strings.Join(got, "\n")
	for _, c := range checks {
		if strings.Contains(joined, c.substr) != c.want {
			t.Errorf("diagnostics %q: substring %q presence = %v, want %v", joined, c.substr, !c.want, c.want)
		}
	}
}
