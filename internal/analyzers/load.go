package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // non-test files, type-checked
	TestFiles  []*ast.File // _test.go files, parsed only (syntax checks)
	Types      *types.Package
	TypesInfo  *types.Info
}

// newInfo allocates the types.Info maps every analyzer consumes.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// listedPkg is the subset of `go list -json` output the loaders consume.
type listedPkg struct {
	ImportPath  string
	Dir         string
	GoFiles     []string
	TestGoFiles []string
	Export      string
	DepOnly     bool
	Standard    bool
	Incomplete  bool
	Error       *struct{ Err string }
}

// goList runs `go list -e -deps -export -json` for patterns in dir and
// decodes the package stream.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,TestGoFiles,Export,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a gc-export-data importer over path -> export
// file, as produced by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Load loads and type-checks the packages matching patterns, resolved from
// dir (a directory inside the module). Dependencies come from compiler
// export data via `go list -export`, so loading works offline on a warm
// build cache; test files are parsed for the syntax-only checks but are not
// type-checked.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Incomplete {
			return nil, fmt.Errorf("go list: %s: incomplete package", p.ImportPath)
		}
		targets = append(targets, p)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages match %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		pkg := &Package{ImportPath: t.ImportPath, Dir: t.Dir, Fset: fset}
		var astFiles []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			astFiles = append(astFiles, f)
		}
		for _, name := range t.TestGoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			pkg.TestFiles = append(pkg.TestFiles, f)
		}
		if len(astFiles) == 0 {
			continue
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, astFiles, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkg.Files = astFiles
		pkg.Types = tpkg
		pkg.TypesInfo = info
		out = append(out, pkg)
	}
	return out, nil
}

// treeLoader type-checks a GOPATH-style source tree (testdata/src/...):
// import paths resolve to directories under root, and anything else is
// treated as a standard-library import satisfied from export data.
type treeLoader struct {
	root    string
	fset    *token.FileSet
	std     types.Importer
	checked map[string]*Package
	parsing map[string]bool
}

func (l *treeLoader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *treeLoader) load(path string) (*Package, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	if l.parsing[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.parsing[path] = true
	defer delete(l.parsing, path)

	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{ImportPath: path, Dir: dir, Fset: l.fset}
	var astFiles []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			astFiles = append(astFiles, f)
		}
	}
	if len(astFiles) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg.Files = astFiles
	pkg.Types = tpkg
	pkg.TypesInfo = info
	l.checked[path] = pkg
	return pkg, nil
}

// LoadTree loads every package in the GOPATH-style tree rooted at root
// (each directory with Go files is a package whose import path is its
// path relative to root). Standard-library imports are resolved from
// export data; moduleDir anchors the `go list` that produces it.
func LoadTree(moduleDir, root string) ([]*Package, error) {
	var dirs []string
	stdImports := map[string]bool{}
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
			dirs = append(dirs, dir)
		}
		// Pre-scan imports so one `go list` call fetches every stdlib
		// dependency's export data up front.
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if _, statErr := os.Stat(filepath.Join(root, filepath.FromSlash(p))); statErr != nil {
				stdImports[p] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	exports := map[string]string{}
	if len(stdImports) > 0 {
		var paths []string
		for p := range stdImports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(moduleDir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	loader := &treeLoader{
		root:    root,
		fset:    fset,
		std:     exportImporter(fset, exports),
		checked: map[string]*Package{},
		parsing: map[string]bool{},
	}
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkg, err := loader.load(filepath.ToSlash(rel))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
