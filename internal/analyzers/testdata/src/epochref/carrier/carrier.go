// False-positive corpus: carriers that legitimately own an Epoch across a
// function boundary. None of these may be flagged — the acquiring function
// hands the release obligation to the carrier.
package carrier

import "ring"

// pinned is a carrier struct: whoever holds it calls Close, which releases.
type pinned struct {
	e *ring.Epoch
}

func (p *pinned) Close() {
	if p.e != nil {
		p.e.Release()
	}
}

// pinViaField stores the epoch in a carrier field.
func pinViaField(r *ring.EpochRing) *pinned {
	p := &pinned{}
	e := r.Acquire()
	p.e = e
	return p
}

// pinViaLiteral wraps the epoch in a composite literal.
func pinViaLiteral(r *ring.EpochRing) *pinned {
	e := r.Acquire()
	return &pinned{e: e}
}

// returnRaw returns the acquired epoch itself; the caller owes Release.
func returnRaw(r *ring.EpochRing) *ring.Epoch {
	e := r.Acquire()
	return e
}

// sendToOwner hands the epoch to an owning goroutine over a channel.
func sendToOwner(r *ring.EpochRing, ch chan *ring.Epoch) {
	e := r.Acquire()
	ch <- e
}

// passToCallee transfers ownership through a call (epochs move between
// functions by design; the callee or its carrier releases).
func passToCallee(r *ring.EpochRing) {
	e := r.Acquire()
	adopt(e)
}

func adopt(e *ring.Epoch) {
	if e != nil {
		e.Release()
	}
}

// goroutineHandoff releases on a different goroutine.
func goroutineHandoff(r *ring.EpochRing) {
	e := r.Acquire()
	go func() {
		if e != nil {
			e.Release()
		}
	}()
}

// storeInMap parks epochs in a registry keyed by id.
func storeInMap(r *ring.EpochRing, reg map[int]*ring.Epoch) {
	e := r.Acquire()
	reg[0] = e
}

// appendToSlice accumulates pinned epochs for a batch release.
func appendToSlice(r *ring.EpochRing, pins []*ring.Epoch) []*ring.Epoch {
	e := r.Acquire()
	pins = append(pins, e)
	return pins
}
