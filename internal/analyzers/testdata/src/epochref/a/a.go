// Violation corpus for epochref: every flagged line carries a want.
package a

import "ring"

var cond bool

// leakNever: acquired, used, never released anywhere.
func leakNever(r *ring.EpochRing) int {
	e := r.Acquire() // want `epoch acquired here is never Released`
	if e == nil {
		return 0
	}
	return e.Graph()
}

// discardStmt: result dropped on the floor.
func discardStmt(r *ring.EpochRing) {
	r.Acquire() // want `result of EpochRing.Acquire is discarded`
}

// discardBlank: result assigned to blank.
func discardBlank(r *ring.EpochRing) {
	_ = r.Acquire() // want `result of EpochRing.Acquire is discarded`
}

// earlyReturn: a return path between Acquire and the non-deferred Release.
func earlyReturn(r *ring.EpochRing) int {
	e := r.Acquire()
	if e == nil {
		return 0
	}
	if cond {
		return 1 // want `epoch acquired on line \d+ may not be Released on this return path`
	}
	e.Release()
	return 2
}

// fallsOffEnd: released on one branch only, then the function ends.
func fallsOffEnd(r *ring.EpochRing) {
	e := r.Acquire() // want `epoch acquired here may not be Released when the function falls off the end`
	if e == nil {
		return
	}
	if cond {
		e.Release()
	}
}

// releaseOneOfTwoBranches: the else branch leaks through its return.
func releaseOneOfTwoBranches(r *ring.EpochRing) int {
	e := r.Acquire()
	if e == nil {
		return 0
	}
	if cond {
		e.Release()
		return 1
	}
	return 2 // want `epoch acquired on line \d+ may not be Released on this return path`
}
