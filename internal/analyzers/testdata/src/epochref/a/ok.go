// Negative corpus for epochref: none of these may be flagged.
package a

import "ring"

// deferRelease: the canonical reader shape (handlers.go).
func deferRelease(r *ring.EpochRing) int {
	e := r.Acquire()
	if e == nil {
		return 0
	}
	defer e.Release()
	if cond {
		return 1
	}
	return e.Graph()
}

// inlineRelease: non-deferred release on the single exit (restoreMaintainer).
func inlineRelease(r *ring.EpochRing) {
	e := r.Acquire()
	if e == nil {
		return
	}
	g := e.Graph()
	e.Release()
	_ = g
}

// nilGuardInit: acquire in the if-init with a nil guard.
func nilGuardInit(r *ring.EpochRing) int {
	if e := r.Acquire(); e != nil {
		defer e.Release()
		return e.Graph()
	}
	return 0
}

// releaseBothBranches: released on every path, no defer.
func releaseBothBranches(r *ring.EpochRing) int {
	e := r.Acquire()
	if e == nil {
		return 0
	}
	if cond {
		e.Release()
		return 1
	}
	e.Release()
	return 2
}

// deferBeforeAcquire: the closure is registered first and releases later.
func deferBeforeAcquire(r *ring.EpochRing) {
	var e *ring.Epoch
	defer func() {
		if e != nil {
			e.Release()
		}
	}()
	e = r.Acquire()
	_ = e
}

// deferredClosureRelease: release from inside a deferred closure.
func deferredClosureRelease(r *ring.EpochRing) {
	e := r.Acquire()
	defer func() {
		if e != nil {
			e.Release()
		}
	}()
}

// panicPathIsNotALeak: panic exits are owned by deferred recovery above.
func panicPathIsNotALeak(r *ring.EpochRing) {
	e := r.Acquire()
	if e == nil {
		panic("no epoch")
	}
	e.Release()
}
