// Package ring fakes the dynamic.EpochRing surface for the epochref
// corpus: the analyzer matches by type and method name, so the fake
// exercises the same shapes as the real package without importing it.
package ring

type Epoch struct{ n int }

func (e *Epoch) Release()   {}
func (e *Epoch) Graph() int { return e.n }

type EpochRing struct{}

func (r *EpochRing) Acquire() *Epoch { return &Epoch{} }
