// Package ring fakes the dynamic.EpochRing surface for the suppression
// corpus.
package ring

type Epoch struct{ n int }

func (e *Epoch) Release()   {}
func (e *Epoch) Graph() int { return e.n }

type EpochRing struct{}

func (r *EpochRing) Acquire() *Epoch { return &Epoch{} }
