// Corpus for the //tdbvet:ignore contract, exercised by
// TestSuppressionContract (no want comments here — the test asserts on the
// surviving diagnostic set directly).
package s

import "ring"

var cond bool

// leakSuppressedSameLine: the epochref leak finding lands on the Acquire
// line; a well-formed directive there swallows it.
func leakSuppressedSameLine(r *ring.EpochRing) int {
	e := r.Acquire() //tdbvet:ignore epochref epoch pinned for the process lifetime by design
	if e == nil {
		return 0
	}
	return e.Graph()
}

// leakSuppressedLineAbove: the directive may also sit alone on the line
// directly above the finding.
func leakSuppressedLineAbove(r *ring.EpochRing) int {
	//tdbvet:ignore epochref epoch pinned for the process lifetime by design
	e := r.Acquire()
	if e == nil {
		return 0
	}
	return e.Graph()
}

// malformed: the reason is mandatory; this directive is itself a finding.
// It sits on a clean line so the only diagnostic here is the malformed one.
func malformed() {
	//tdbvet:ignore epochref
	_ = cond
}

// unused: well-formed, but scratchpool has nothing to suppress on this
// line — dead suppressions are findings too.
func unused(r *ring.EpochRing) {
	e := r.Acquire()
	//tdbvet:ignore scratchpool stale directive left behind by a refactor
	if e != nil {
		e.Release()
	}
}

// wrongAnalyzer: the directive names ctxflow, so the epochref return-path
// finding stays live AND the directive is reported as unused.
func wrongAnalyzer(r *ring.EpochRing) int {
	e := r.Acquire()
	if e == nil {
		return 0
	}
	if cond {
		return 1 //tdbvet:ignore ctxflow wrong analyzer for this finding
	}
	e.Release()
	return 2
}
