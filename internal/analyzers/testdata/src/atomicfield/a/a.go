// Corpus for atomicfield: counter.n is accessed via sync/atomic, so every
// other access to it must be atomic too.
package a

import "sync/atomic"

type counter struct {
	n    int64
	hits int64 // never touched atomically: plain access is fine
}

// newCounter initializes through a composite literal — exempt, the value
// is not yet shared.
func newCounter() *counter {
	return &counter{n: 1, hits: 0}
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) load() int64 {
	return atomic.LoadInt64(&c.n)
}

// fastRead is the classic shortcut the analyzer exists to catch.
func (c *counter) fastRead() int64 {
	return c.n // want `field n is accessed with sync/atomic at`
}

// reset's plain store races with inc.
func (c *counter) reset() {
	c.n = 0 // want `field n is accessed with sync/atomic at`
}

// bump touches only the untracked field.
func (c *counter) bump() {
	c.hits++
}

// gauge has a field spelled n too; it is a different field object, so the
// tracking must not bleed across types.
type gauge struct {
	n int64
}

func (g *gauge) set(v int64) {
	g.n = v
}
