// Violation corpus: unregistered site names and production-code arming.
package bad

import "fault"

// local compiles fine — Site is just a string type — but it is invisible
// to the registry, so chaos suites will never exercise this probe.
const local fault.Site = "bad/local"

func stringLit() {
	fault.Inject("bad/adhoc") // want `fault site must be a registered Site constant`
}

func localConst() {
	fault.Inject(local) // want `fault site must be a registered Site constant`
}

func armed() {
	fault.Arm(fault.SiteGood, func() {}) // want `fault\.Arm outside a test arms a chaos hook`
}
