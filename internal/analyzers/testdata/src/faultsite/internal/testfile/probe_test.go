// A probe planted in a test file is invisible to the chaos suites, which
// only arm sites hosted in production code.
package testfile

import "fault"

func testProbe() {
	fault.Inject(fault.SiteGood) // want `fault\.Inject in a test file`
}
