// Package testfile exists to host a _test.go with an Inject call; the
// production file is deliberately empty of probes.
package testfile
