// Negative corpus: a probe in production code under internal/, named by a
// registered Site constant.
package good

import "fault"

func Probe() {
	fault.Inject(fault.SiteGood)
}
