// Arming a hook from a test is the intended use; no finding.
package good

import "fault"

func testArm() {
	fault.Arm(fault.SiteGood, func() {})
}
