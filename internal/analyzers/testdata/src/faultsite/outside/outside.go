// A probe outside internal/ leaks the chaos surface into code users can
// import.
package outside

import "fault"

func Probe() {
	fault.Inject(fault.SiteGood) // want `fault probe site outside internal/`
}
