// Package fault fakes the internal/fault surface: the const block below
// plays the role of the site registry in internal/fault/sites.go.
package fault

type Site string

const (
	SiteGood  Site = "good/site"
	SiteOther Site = "other/site"
)

func Inject(site Site)         {}
func Arm(site Site, fn func()) {}
