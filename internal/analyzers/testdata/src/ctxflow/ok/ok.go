// A package off the serving path: ctxflow does not apply here, so root
// contexts and buried context parameters are not findings.
package ok

import "context"

func Boot(n int, ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}
