// A main package inside a scoped path: roots are minted in main, so the
// Background here is legal.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
