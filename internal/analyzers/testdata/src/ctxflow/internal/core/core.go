// Violation corpus for ctxflow: this package's import path puts it on the
// serving path (internal/core), so context discipline applies.
package core

import "context"

// Compute takes ctx first — fine — but mints a root context inside.
func Compute(ctx context.Context, n int) int {
	sub := context.Background() // want `context.Background\(\) severs the caller's cancellation`
	_ = sub
	return n
}

// helper shows the rule applies to unexported functions too: a TODO deep
// in a helper severs cancellation just as thoroughly.
func helper() {
	ctx := context.TODO() // want `context.TODO\(\) severs the caller's cancellation`
	_ = ctx
}

// Lookup buries its context parameter behind the name.
func Lookup(name string, ctx context.Context) error { // want `context.Context should be the first parameter of exported Lookup`
	_ = ctx
	return nil
}

// Engine is exported, so its exported methods are part of the surface.
type Engine struct{}

func (e *Engine) Run(n int, ctx context.Context) error { // want `context.Context should be the first parameter of exported Run`
	_ = ctx
	return nil
}

// engine is unexported: its method set is not part of the package surface,
// so parameter order is the implementer's business.
type engine struct{}

func (e *engine) Run(n int, ctx context.Context) error {
	_ = ctx
	return nil
}

// ThreadedThrough is the shape the rule wants everywhere.
func ThreadedThrough(ctx context.Context, n int) int {
	if err := ctx.Err(); err != nil {
		return 0
	}
	return n
}
