// Violation corpus for scratchpool.
package a

import "pool"

var cond bool

// leakNever: borrowed, lent to a detector, never Put — passing scratch to
// a constructor is a borrow, so the obligation stays here (this is the
// shape of the PR 5 leaked-scratch bug).
func leakNever(p *pool.ScratchPool) int {
	sc := p.Get() // want `scratch acquired here is never Put back and never escapes`
	d := pool.NewDetector(8, sc)
	return d.Find()
}

// discard: pooled scratch dropped on the floor.
func discard(p *pool.ScratchPool) {
	p.Get() // want `result of ScratchPool.Get is discarded`
}

// earlyReturn: a return path skips the Put.
func earlyReturn(p *pool.ScratchPool) int {
	sc := p.Get()
	d := pool.NewDetector(8, sc)
	if cond {
		return 0 // want `scratch acquired on line \d+ may not be Put back on this return path`
	}
	n := d.Find()
	p.Put(sc)
	return n
}

// putInRecoverBlock: repooling from the panic branch hands poisoned marks
// to the next run (the PR 7 quarantine rule).
func putInRecoverBlock(p *pool.ScratchPool) {
	sc := p.Get()
	defer func() {
		if r := recover(); r != nil {
			p.Put(sc) // want `pooled scratch repooled on a panic path`
		}
	}()
	d := pool.NewDetector(8, sc)
	d.Find()
	p.Put(sc)
}

// putInRecoverElse: same violation with the branches flipped.
func putInRecoverElse(p *pool.ScratchPool) {
	sc := p.Get()
	defer func() {
		r := recover()
		if r == nil {
			_ = sc
		} else {
			p.Put(sc) // want `pooled scratch repooled on a panic path`
		}
	}()
	d := pool.NewDetector(8, sc)
	d.Find()
	p.Put(sc)
}
