// Negative corpus for scratchpool: none of these may be flagged.
package a

import "pool"

// quarantineOnPanic is the canonical worker shape (core/prepass.go): the
// deferred closure Puts only on the non-panic branch; the panic branch
// quarantines by NOT repooling.
func quarantineOnPanic(p *pool.ScratchPool) {
	sc := p.Get()
	defer func() {
		if r := recover(); r != nil {
			// quarantine: the scratch may hold poisoned marks
		} else if sc != nil {
			p.Put(sc)
		}
	}()
	d := pool.NewDetector(8, sc)
	d.Find()
}

// inlinePut is the engine shape (core/engine.go): deliberately NOT
// deferred, so a panicking compute quarantines the scratch.
func inlinePut(p *pool.ScratchPool) int {
	sc := p.Get()
	d := pool.NewDetector(8, sc)
	n := d.Find()
	p.Put(sc)
	return n
}

// putBothBranches Puts on every return path without a defer.
func putBothBranches(p *pool.ScratchPool, cond2 bool) int {
	sc := p.Get()
	d := pool.NewDetector(8, sc)
	if cond2 {
		p.Put(sc)
		return 0
	}
	n := d.Find()
	p.Put(sc)
	return n
}

// escapeToOwner hands the scratch to an owning struct; the owner Puts.
type owner struct {
	p  *pool.ScratchPool
	sc *pool.Scratch
}

func (o *owner) Close() {
	if o.sc != nil {
		o.p.Put(o.sc)
	}
}

func escapeToOwner(p *pool.ScratchPool) *owner {
	sc := p.Get()
	return &owner{p: p, sc: sc}
}
