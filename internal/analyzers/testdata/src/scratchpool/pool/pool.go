// Package pool fakes the cycle.ScratchPool surface for the scratchpool
// corpus.
package pool

type Scratch struct{ n int }

func (s *Scratch) Len() int { return s.n }

type ScratchPool struct{}

func (p *ScratchPool) Get() *Scratch  { return &Scratch{} }
func (p *ScratchPool) Put(s *Scratch) {}

// Detector borrows scratch the way cycle detectors do: taking it as a
// constructor argument does NOT discharge the getter's Put obligation.
type Detector struct{ sc *Scratch }

func NewDetector(n int, sc *Scratch) *Detector { return &Detector{sc: sc} }

func (d *Detector) Find() int { return d.sc.Len() }
