// Package cycle implements the constrained-cycle detection primitives the
// cover algorithms are built on:
//
//   - PlainDetector: the paper's FindCycle (Alg. 5), a bounded DFS that
//     returns one constrained cycle through a start vertex, used by the
//     bottom-up cover and by the unoptimized top-down cover (TDB).
//   - BlockDetector: the paper's NodeNecessary + Unblock (Alg. 9-10), the
//     block/barrier-based detector with O(k*m) worst-case time per query,
//     used by TDB+ and TDB++.
//   - BFSFilter: the paper's BFS-filter (Alg. 11), a linear-time test that
//     soundly proves the absence of any constrained cycle through a vertex.
//   - BatchBFSFilter / BatchPrefixFilter: the bit-parallel batched form of
//     the BFS-filter — up to 64 sources packed into one uint64 lane word,
//     answered by a single level-synchronous sweep (the cover algorithms'
//     default pruning path).
//   - Enumerator: a bounded enumeration of all constrained cycles, used as a
//     test oracle and by the DARC baseline.
//
// All detectors operate on an immutable digraph.Graph plus either an
// optional active-vertex mask (O(1) activation, O(full degree) scans) or a
// digraph.ActiveAdjacency working-graph view (O(deg) activation, scans
// proportional to the LIVE degree) — the cover algorithms use the view by
// default and fall back to the mask; see DESIGN.md §7. Their O(n) working
// state lives in a Scratch that can be borrowed from a per-graph
// ScratchPool, making repeated covers over the same graph allocation-free
// (see Scratch).
//
// Cycle-length conventions follow the paper: a cycle's length is its number
// of vertices (= edges); self-loops never count (the graph builder drops
// them); cycles of length 2 (bidirectional edges) are excluded by default
// (MinLen = 3) and included when MinLen = 2 (the paper's Table IV variant).
package cycle

import (
	"fmt"

	"tdb/internal/digraph"
)

// VID aliases digraph.VID for brevity.
type VID = digraph.VID

// DefaultMinLen is the minimum cycle length of the paper's core problem:
// self-loops and 2-cycles are not considered cycles.
const DefaultMinLen = 3

// Stats aggregates work counters across detector queries. Counters are
// plain ints — NOT atomics — under a single-writer discipline: each
// detector or filter instance is owned by one goroutine and counts into its
// own Stats, and parallel callers (the TDB++ prepass, the SCC-partitioned
// solver) merge the per-worker values into the run's aggregate with Add
// under their own synchronization (a mutex around the merge, or a
// post-Wait fold). Never share one Stats value between concurrently
// querying instances.
type Stats struct {
	Queries     int64 // detector invocations (per lane, for batched filters)
	Pushes      int64 // DFS stack pushes
	EdgeScans   int64 // adjacency entries examined
	Unblocks    int64 // Unblock propagation steps (block detector only)
	CyclesFound int64 // queries that found a constrained cycle
	BFSVisited  int64 // vertices settled by the BFS filter (per lane)
	BFSPruned   int64 // queries the BFS filter pruned (per lane)
	Batches     int64 // word-wide sweeps of the batched BFS filters
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.Pushes += o.Pushes
	s.EdgeScans += o.EdgeScans
	s.Unblocks += o.Unblocks
	s.CyclesFound += o.CyclesFound
	s.BFSVisited += o.BFSVisited
	s.BFSPruned += o.BFSPruned
	s.Batches += o.Batches
}

func validate(g digraph.Adjacency, k, minLen int, active []bool) {
	if minLen < 2 {
		panic(fmt.Sprintf("cycle: minLen %d < 2", minLen))
	}
	if k < minLen {
		panic(fmt.Sprintf("cycle: hop constraint k=%d < minLen=%d", k, minLen))
	}
	if active != nil && len(active) != g.NumVertices() {
		panic(fmt.Sprintf("cycle: active mask length %d != n %d", len(active), g.NumVertices()))
	}
}

// Unconstrained returns the hop bound that makes a detector equivalent to
// the paper's "cycle cover without constraints" variant (Sec. VI-C): no
// simple cycle can be longer than n, so k = n removes the constraint.
func Unconstrained(g digraph.Adjacency) int {
	n := g.NumVertices()
	if n < DefaultMinLen {
		return DefaultMinLen
	}
	return n
}

// epochMark implements O(1)-reset boolean/integer maps over vertices.
// A slot is valid only when its stamp equals the current epoch.
type epochMark struct {
	stamp []uint32
	cur   uint32
}

func newEpochMark(n int) epochMark {
	return epochMark{stamp: make([]uint32, n), cur: 0}
}

// nextEpoch invalidates all marks in O(1) (amortized; a wraparound clears).
func (e *epochMark) nextEpoch() {
	e.cur++
	if e.cur == 0 { // wrapped: clear and restart
		for i := range e.stamp {
			e.stamp[i] = 0
		}
		e.cur = 1
	}
}

func (e *epochMark) set(v VID)      { e.stamp[v] = e.cur }
func (e *epochMark) unset(v VID)    { e.stamp[v] = e.cur - 1 }
func (e *epochMark) get(v VID) bool { return e.stamp[v] == e.cur }

// PlainDetector finds one constrained cycle through a start vertex with a
// bounded DFS (the paper's Alg. 5). Worst case O(n^k) per query; in practice
// it terminates at the first cycle found.
type PlainDetector struct {
	adjacency
	k      int
	minLen int

	s *Scratch // DFS group: onPath, path

	// Cancelled, when non-nil, is polled periodically inside the DFS; a
	// true return aborts the current query (FindFrom then returns nil and
	// WasAborted reports true). Without it a single worst-case O(n^k)
	// query could outlive any caller-side timeout.
	Cancelled func() bool
	aborted   bool

	Stats Stats
}

// WasAborted reports whether the most recent query was cut short by the
// Cancelled hook; its nil result is then inconclusive.
func (d *PlainDetector) WasAborted() bool {
	return d.aborted
}

// NewPlainDetector creates a detector for cycles of length in [minLen, k]
// over the subgraph induced by active (nil = whole graph). The active slice
// is retained, not copied, so mask updates are visible to later queries.
func NewPlainDetector(g digraph.Adjacency, k, minLen int, active []bool) *PlainDetector {
	return NewPlainDetectorWith(g, k, minLen, active, nil)
}

// NewPlainDetectorWith is NewPlainDetector borrowing the DFS buffers from s
// (nil allocates fresh scratch). See Scratch for the sharing rules.
func NewPlainDetectorWith(g digraph.Adjacency, k, minLen int, active []bool, s *Scratch) *PlainDetector {
	validate(g, k, minLen, active)
	return &PlainDetector{
		adjacency: maskAdjacency(g, active), k: k, minLen: minLen,
		s: checkScratch(s, g.NumVertices()),
	}
}

// NewPlainDetectorView is NewPlainDetectorWith over an active-adjacency
// working-graph view instead of a mask: the DFS then iterates exactly the
// live edges (see digraph.ActiveAdjacency). The view is retained, so
// Activate/Deactivate calls between queries are visible to later queries.
func NewPlainDetectorView(view *digraph.ActiveAdjacency, k, minLen int, s *Scratch) *PlainDetector {
	validate(view.Base(), k, minLen, nil)
	return &PlainDetector{
		adjacency: viewAdjacency(view), k: k, minLen: minLen,
		s: checkScratch(s, view.Len()),
	}
}

// FindFrom returns one constrained cycle through s as a vertex sequence
// (start vertex first, no repetition of the start at the end), or nil if no
// constrained cycle through s exists in the active subgraph.
func (d *PlainDetector) FindFrom(s VID) []VID {
	if !d.query(s) {
		return nil
	}
	cyc := make([]VID, len(d.s.path))
	copy(cyc, d.s.path)
	return cyc
}

// HasCycleThrough reports whether any constrained cycle passes through s.
// Unlike FindFrom it does not materialize the found cycle, so repeated
// cover runs stay allocation-free.
func (d *PlainDetector) HasCycleThrough(s VID) bool {
	return d.query(s)
}

// query runs the detector, leaving a found cycle in d.s.path.
func (d *PlainDetector) query(s VID) bool {
	d.Stats.Queries++
	d.aborted = false
	if !d.startActive(s) {
		return false
	}
	d.s.onPath.nextEpoch()
	d.s.path = d.s.path[:0]
	d.s.path = append(d.s.path, s)
	d.s.onPath.set(s)
	d.Stats.Pushes++
	if d.search(s, s, 0) {
		d.Stats.CyclesFound++
		return true
	}
	return false
}

// search extends the current path (ending at u, with depth edges) by one
// vertex. It returns true as soon as a constrained cycle is found, leaving
// the cycle in d.s.path.
func (d *PlainDetector) search(s, u VID, depth int) bool {
	for _, w := range d.out(u) {
		d.Stats.EdgeScans++
		if d.Stats.EdgeScans%4096 == 0 && d.Cancelled != nil && d.Cancelled() {
			d.aborted = true
			return false
		}
		if w == s {
			if depth+1 >= d.minLen { // depth+1 <= k holds by the push bound
				return true
			}
			continue // cycle shorter than minLen (a 2-cycle): rejected
		}
		// On the view path every scanned w is live; only the mask filters.
		if (d.active != nil && !d.active[w]) || d.s.onPath.get(w) {
			continue
		}
		// A cycle through w would have length >= depth+2, so only descend
		// while depth+1 <= k-1.
		if depth+1 > d.k-1 {
			continue
		}
		d.s.path = append(d.s.path, w)
		d.s.onPath.set(w)
		d.Stats.Pushes++
		if d.search(s, w, depth+1) {
			return true
		}
		d.s.path = d.s.path[:len(d.s.path)-1]
		d.s.onPath.unset(w)
		if d.aborted {
			return false
		}
	}
	return false
}
