package cycle

import "tdb/internal/digraph"

// BFSFilter implements the paper's BFS-filter technique (Alg. 11): a
// linear-time test that can prove no constrained cycle passes through a
// vertex, so the (more expensive) block-based DFS can be skipped.
//
// For a start vertex s it computes U, the length of the shortest closed walk
// through s: a bounded BFS from s assigns forward distances, and U is the
// minimum dist(x)+1 over in-neighbors x of s reached by the BFS. Every
// simple cycle through s is in particular a closed walk through s, so U > k
// soundly proves that no cycle of length <= k through s exists and s can be
// pruned. U <= k proves nothing (the short walk may be non-simple, or may be
// a 2-cycle while the problem excludes 2-cycles — the paper's Example 2), so
// the caller must fall through to a full detector.
//
// The BFS stops as soon as it settles any in-neighbor of s, so it touches at
// most min(m, frontier within k-1 hops) edges.
type BFSFilter struct {
	adjacency
	k int

	s *Scratch // BFS group: visited, inNbr, queue, nextQ

	Stats Stats
}

// NewBFSFilter creates a filter for hop constraint k over the subgraph
// induced by active (nil = whole graph). The active slice is retained.
func NewBFSFilter(g digraph.Adjacency, k int, active []bool) *BFSFilter {
	return NewBFSFilterWith(g, k, active, nil)
}

// NewBFSFilterWith is NewBFSFilter borrowing the BFS buffers from s (nil
// allocates fresh scratch). See Scratch for the sharing rules.
func NewBFSFilterWith(g digraph.Adjacency, k int, active []bool, s *Scratch) *BFSFilter {
	if active != nil && len(active) != g.NumVertices() {
		panic("cycle: BFSFilter active mask length mismatch")
	}
	if k < 2 {
		panic("cycle: BFSFilter needs k >= 2")
	}
	return &BFSFilter{
		adjacency: maskAdjacency(g, active), k: k,
		s: checkScratch(s, g.NumVertices()),
	}
}

// NewBFSFilterView is NewBFSFilterWith over an active-adjacency
// working-graph view instead of a mask: the BFS then expands exactly the
// live edges (see digraph.ActiveAdjacency). The view is retained, so
// Activate/Deactivate calls between queries are visible to later queries.
func NewBFSFilterView(view *digraph.ActiveAdjacency, k int, s *Scratch) *BFSFilter {
	if k < 2 {
		panic("cycle: BFSFilter needs k >= 2")
	}
	return &BFSFilter{
		adjacency: viewAdjacency(view), k: k,
		s: checkScratch(s, view.Len()),
	}
}

// ShortestClosedWalk returns the length of the shortest closed walk through
// s in the active subgraph, or k+1 if every closed walk is longer than k
// (including the no-walk case). Values <= k are exact.
func (f *BFSFilter) ShortestClosedWalk(s VID) int {
	f.Stats.Queries++
	if !f.startActive(s) {
		return f.k + 1
	}
	// Mark active in-neighbors of s; if none, no cycle can close.
	f.s.inNbr.nextEpoch()
	anyIn := false
	for _, x := range f.in(s) {
		if x != s && (f.active == nil || f.active[x]) {
			f.s.inNbr.set(x)
			anyIn = true
		}
	}
	if !anyIn {
		return f.k + 1
	}

	f.s.visited.nextEpoch()
	f.s.visited.set(s)
	f.s.queue = f.s.queue[:0]
	f.s.queue = append(f.s.queue, s)
	// A useful hit is an in-neighbor at distance <= k-1 (closed walk <= k),
	// so generate levels 1..k-1: iterations dist = 0..k-2.
	for dist := 0; dist <= f.k-2 && len(f.s.queue) > 0; dist++ {
		f.s.nextQ = f.s.nextQ[:0]
		for _, u := range f.s.queue {
			for _, w := range f.out(u) {
				f.Stats.EdgeScans++
				// On the view path every scanned w is live; only the mask
				// filters.
				if w == s || (f.active != nil && !f.active[w]) || f.s.visited.get(w) {
					continue
				}
				if f.s.inNbr.get(w) {
					// w is an in-neighbor of s at distance dist+1: the
					// shortest closed walk has length dist+2.
					return dist + 2
				}
				f.s.visited.set(w)
				f.Stats.BFSVisited++
				f.s.nextQ = append(f.s.nextQ, w)
			}
		}
		f.s.queue, f.s.nextQ = f.s.nextQ, f.s.queue
	}
	return f.k + 1
}

// CanPrune reports whether s provably lies on no cycle of length <= k in the
// active subgraph. A false result is inconclusive.
func (f *BFSFilter) CanPrune(s VID) bool {
	pruned := f.ShortestClosedWalk(s) > f.k
	if pruned {
		f.Stats.BFSPruned++
	}
	return pruned
}
