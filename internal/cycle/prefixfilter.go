package cycle

import "tdb/internal/digraph"

// PrefixFilter is the BFS-filter (Alg. 11) specialized to PREFIX subgraphs
// of a fixed candidate order: a query for vertex s at limit L runs on the
// subgraph induced by {v : pos[v] <= L}. It exists for the parallel
// prepass of the top-down cover, where many workers query different
// prefixes of one shared order concurrently: a bool mask per worker would
// cost an O(n) build-and-advance sweep each, while the shared read-only
// position array makes a worker's marginal state just its Scratch.
//
// Semantics match BFSFilter on the equivalent mask: CanPrune(s, L) true
// proves no constrained cycle through s exists in the prefix subgraph —
// and therefore, by subgraph inheritance, in any subgraph of it.
//
// The BFS body deliberately duplicates BFSFilter.ShortestClosedWalk
// rather than sharing a predicate-parameterized helper: the membership
// test sits in the hottest loop of the whole cover computation, and an
// indirect call there is measurable. The two copies are pinned together
// by TestPrefixFilterMatchesBFSFilter; change them in lockstep.
type PrefixFilter struct {
	g   digraph.Adjacency
	k   int
	pos []int32 // pos[v] = rank of v in the candidate order

	s *Scratch // BFS group: visited, inNbr, queue, nextQ

	Stats Stats
}

// NewPrefixFilterWith creates a prefix filter for hop constraint k over the
// order described by pos (pos[v] = rank of vertex v), borrowing the BFS
// buffers from s (nil allocates fresh scratch). The pos slice is retained
// and must stay immutable while the filter is in use; it may be shared by
// any number of filters across goroutines.
func NewPrefixFilterWith(g digraph.Adjacency, k int, pos []int32, s *Scratch) *PrefixFilter {
	if len(pos) != g.NumVertices() {
		panic("cycle: PrefixFilter pos length mismatch")
	}
	if k < 2 {
		panic("cycle: PrefixFilter needs k >= 2")
	}
	return &PrefixFilter{
		g: g, k: k, pos: pos,
		s: checkScratch(s, g.NumVertices()),
	}
}

// CanPrune reports whether s provably lies on no cycle of length <= k in
// the prefix subgraph {v : pos[v] <= limit}. A false result is
// inconclusive. The BFS mirrors BFSFilter.ShortestClosedWalk.
func (f *PrefixFilter) CanPrune(s VID, limit int32) bool {
	f.Stats.Queries++
	if f.pos[s] > limit {
		return true // s itself outside the prefix: vacuously no cycle
	}
	// Mark in-prefix in-neighbors of s; if none, no cycle can close.
	f.s.inNbr.nextEpoch()
	anyIn := false
	for _, x := range f.g.In(s) {
		if x != s && f.pos[x] <= limit {
			f.s.inNbr.set(x)
			anyIn = true
		}
	}
	if !anyIn {
		f.Stats.BFSPruned++
		return true
	}

	f.s.visited.nextEpoch()
	f.s.visited.set(s)
	f.s.queue = f.s.queue[:0]
	f.s.queue = append(f.s.queue, s)
	// A useful hit is an in-neighbor at distance <= k-1 (closed walk <= k),
	// so generate levels 1..k-1: iterations dist = 0..k-2.
	for dist := 0; dist <= f.k-2 && len(f.s.queue) > 0; dist++ {
		f.s.nextQ = f.s.nextQ[:0]
		for _, u := range f.s.queue {
			for _, w := range f.g.Out(u) {
				f.Stats.EdgeScans++
				if w == s || f.pos[w] > limit || f.s.visited.get(w) {
					continue
				}
				if f.s.inNbr.get(w) {
					// Closed walk of length dist+2 <= k found through s:
					// inconclusive, the caller must fall through.
					return false
				}
				f.s.visited.set(w)
				f.Stats.BFSVisited++
				f.s.nextQ = append(f.s.nextQ, w)
			}
		}
		f.s.queue, f.s.nextQ = f.s.nextQ, f.s.queue
	}
	f.Stats.BFSPruned++
	return true
}
