package cycle

import (
	"testing"
	"time"
)

// driveLadder runs the ladder against a synthetic workload for total
// candidates: perCand returns the simulated per-candidate cost of a group
// at the given width after `done` candidates have been processed. Every
// group is full. It returns how many candidates ran at each width.
func driveLadder(l *WidthLadder, total int, perCand func(width, done int) time.Duration) map[int]int {
	ran := make(map[int]int)
	done := 0
	for done < total {
		w := l.Next()
		if l.Adapting() {
			l.Observe(w, time.Duration(w)*perCand(w, done), w)
		}
		ran[w] += w
		done += w
	}
	return ran
}

func TestWidthLadderInertBelowCap(t *testing.T) {
	l := NewWidthLadder(BatchWidth) // chunk fills one word: nothing to race
	for i := 0; i < 100; i++ {
		if w := l.Next(); w != BatchWidth {
			t.Fatalf("Next() = %d, want %d", w, BatchWidth)
		}
		if l.Adapting() {
			t.Fatal("one-word ladder should never demand timing")
		}
	}
}

func TestWidthLadderClimbsWhenWideWins(t *testing.T) {
	l := NewWidthLadder(MaxBatchWidth)
	// Per-candidate cost halves with each widening: the ladder should
	// adopt 256 and then 512 within a few rounds.
	driveLadder(l, 64_000, func(width, _ int) time.Duration {
		return time.Microsecond * 64 / time.Duration(width)
	})
	if l.Width() != MaxBatchWidth {
		t.Fatalf("Width() = %d after wide-friendly stream, want %d", l.Width(), MaxBatchWidth)
	}
}

func TestWidthLadderRejectsDecisiveLoser(t *testing.T) {
	l := NewWidthLadder(MaxBatchWidth)
	// Wide is 3x slower per candidate: the first round must reject it and
	// push the next audit out to the escalated span, so the total exposure
	// at wide widths over half a million candidates stays a single round.
	ran := driveLadder(l, 500_000, func(width, _ int) time.Duration {
		if width > BatchWidth {
			return 300 * time.Nanosecond
		}
		return 100 * time.Nanosecond
	})
	if l.Width() != BatchWidth {
		t.Fatalf("Width() = %d after narrow-friendly stream, want %d", l.Width(), BatchWidth)
	}
	wide := ran[4*BatchWidth] + ran[MaxBatchWidth]
	if wide > 2*MaxBatchWidth {
		t.Fatalf("ran %d candidates at wide widths, want <= one audit round (%d)", wide, 2*MaxBatchWidth)
	}
}

func TestWidthLadderRevertsWhenTradeoffDrifts(t *testing.T) {
	l := NewWidthLadder(MaxBatchWidth)
	// Wide wins while the stream is cheap (small prefixes) and loses badly
	// once it saturates — the drift the escalating re-audits exist to
	// catch. The ladder may adopt wide early but must be back on one word
	// well before the stream ends.
	driveLadder(l, 200_000, func(width, done int) time.Duration {
		if done < 3_000 {
			if width > BatchWidth {
				return 50 * time.Nanosecond
			}
			return 100 * time.Nanosecond
		}
		if width > BatchWidth {
			return 2 * time.Microsecond
		}
		return 500 * time.Nanosecond
	})
	if l.Width() != BatchWidth {
		t.Fatalf("Width() = %d after drifting stream, want %d", l.Width(), BatchWidth)
	}
}

func TestWidthLadderDiscardsColdFirstGroup(t *testing.T) {
	l := NewWidthLadder(MaxBatchWidth)
	// The very first group pays cold caches and measures 50x slow. If it
	// were charged to its arm, the incumbent would lose the opening round
	// to the challenger on that artifact alone.
	first := true
	driveLadder(l, 100_000, func(width, _ int) time.Duration {
		if first {
			first = false
			return 5 * time.Microsecond
		}
		if width > BatchWidth {
			return 150 * time.Nanosecond
		}
		return 100 * time.Nanosecond
	})
	if l.Width() != BatchWidth {
		t.Fatalf("Width() = %d, want %d: cold first group should be discarded", l.Width(), BatchWidth)
	}
}

func TestWidthLadderNewStreamAbortsRound(t *testing.T) {
	l := NewWidthLadder(MaxBatchWidth)
	w := l.Next()
	if !l.Adapting() {
		t.Fatal("fresh ladder should open a round on the first Next")
	}
	l.Observe(w, time.Millisecond, w) // warm-up discard
	l.Observe(l.Next(), time.Millisecond, l.Next())
	l.NewStream()
	if l.Adapting() {
		t.Fatal("NewStream should abandon the in-flight round")
	}
	if l.Width() != BatchWidth {
		t.Fatalf("Width() = %d, want unchanged %d", l.Width(), BatchWidth)
	}
}

func TestWidthLadderAbandonsUnfillableRound(t *testing.T) {
	l := NewWidthLadder(MaxBatchWidth)
	// The workload never packs more than 100 candidates, so the wide arm
	// can never time a full group; the round must end in the incumbent's
	// favor via the progress bound instead of demanding timing forever.
	for i := 0; i < 1_000 && !func() bool {
		w := l.Next()
		if !l.Adapting() {
			return true
		}
		packed := min(w, 100)
		l.Observe(w, time.Duration(packed)*100*time.Nanosecond, packed)
		return false
	}(); i++ {
	}
	if l.Adapting() {
		t.Fatal("round with chronically partial groups never settled")
	}
	if l.Width() != BatchWidth {
		t.Fatalf("Width() = %d, want incumbent %d", l.Width(), BatchWidth)
	}
}
