package cycle

import "time"

// Audit pacing of the WidthLadder: after every verdict the ladder commits
// to the winning width for a span of candidates before re-racing it. A
// confirmed verdict doubles the span (the workload looks stable, stop
// paying challengers) and a decisive one jumps straight to the maximum; a
// flipped verdict resets it (the trade-off just moved, look again soon).
// The max is sized so that even a pathologically slow challenger group —
// a saturated wide sweep can run an order of magnitude behind narrow on a
// cache-bound graph — stays a sub-percent duty cycle: one such group per
// ladderSpanMax candidates is one ~10ms ask per ~16 full 60k-vertex runs.
const (
	ladderSpan0   = 4 * MaxBatchWidth
	ladderSpanMax = 512 * ladderSpan0
)

// WidthLadder picks a lane-group width for a stream of batched filter
// groups by measurement. It repeatedly races the committed width against a
// neighboring one in paired rounds: each round runs both arms over
// ADJACENT stretches of the stream — equal candidate volume per arm, the
// leading arm alternating between rounds — and the challenger takes over
// only when it proves at least 10% faster per decided candidate. Between
// rounds the ladder commits to the winner for an escalating span, so a
// stable verdict costs a vanishing duty cycle while a workload whose
// trade-off shifts mid-stream (see below) is re-audited soon after.
//
// Time per candidate — not edge scans — is the signal, unlike tierProbe's
// scalar-versus-batch decision: a wider sweep SHARES physical edge reads
// across more lanes, so its scan count per candidate always improves with
// width even when the added words per scan make it slower in wall time.
// Scans cannot rank widths; the clock can, and a group's span (tens to
// hundreds of microseconds) is far above timer resolution. Whether wide
// groups pay is a property of the machine as much as of the workload —
// lane slabs grow 4-8x and compete with the CSR rows for cache — which is
// exactly why the ladder measures instead of assuming (on a 2 MiB-L2 box,
// 512 lanes lose the race on graphs where a large-cache machine wins).
//
// The paired-round structure exists because the width trade-off is NOT
// constant across a run: prefix-confined sweeps cost almost nothing at
// early order positions (per-sweep fixed work dominates, which wide
// groups amortize) and grow toward the end (per-candidate word traffic
// dominates, which wide groups inflate). Racing arms over far-apart
// stretches conflates that drift with the width effect — a one-shot early
// verdict then locks the expensive majority of the run to the width that
// only looked good while prefixes were tiny. Adjacent stretches cancel
// the drift within a round, and the escalating re-audits follow it across
// the run. The ladder also discards the first group it ever sees: that
// group pays the cold-cache cost of faulting the CSR and lane slabs in,
// and would bias whichever arm was unlucky enough to go first.
//
// Per-lane answers are bit-identical at every width, so the ladder's
// timing-dependent choices never change any caller-visible decision —
// only counters like Stats.EdgeScans, which depend on how much sharing
// each sweep achieved.
//
// Caller contract: whenever Adapting() reports true (check it after the
// Next() call, which is what opens rounds), time the group and report it
// with Observe(width, elapsed, packed), where width is what Next()
// returned and packed is how many candidates were actually packed. The
// ladder takes timing only from full groups; partial ones merely advance
// a progress bound, so a round whose workload cannot fill the racing
// width is abandoned in the incumbent's favor instead of stalling.
// Long-lived callers (engines, maintainers) should keep a ladder across
// runs over the same graph and hop constraint: the committed spans
// persist, so steady-state traffic pays challenger rounds at the
// escalated — not the initial — rate.
type WidthLadder struct {
	cap    int  // widest width the caller's chunk size can fill
	cur    int  // committed width
	warmed bool // first group ever observed is discarded (cold caches)

	// Committed-span state: candidates left to run at cur before the next
	// audit round, and the span the next verdict starts from.
	left int
	span int

	// Audit-round state. An arm's timed count advances only on full
	// groups; prog counts every packed candidate and bounds how long a
	// round that cannot fill groups may drag on.
	auditing   bool
	trial      int  // challenger width of the current round
	leadCur    bool // arm that runs first this round (alternates)
	upNext     bool // middle incumbents alternate challenger direction
	roundCands int64

	curNS, trialNS       int64
	curTimed, trialTimed int64
	curProg, trialProg   int64
}

// NewWidthLadder returns a ladder capped at the width the caller's chunk
// size can fill (see PickLanes). A one-word cap leaves the ladder
// permanently settled at BatchWidth with no timing demands.
func NewWidthLadder(chunk int) *WidthLadder {
	return &WidthLadder{cap: PickLanes(chunk), cur: BatchWidth, span: ladderSpan0}
}

// Adapting reports whether the ladder is mid-round and needs the current
// group timed; callers can skip the clock calls while it is false.
func (l *WidthLadder) Adapting() bool { return l.auditing }

// Width returns the committed width.
func (l *WidthLadder) Width() int { return l.cur }

// challenger picks the neighbor width the next round races cur against.
// The edge widths have one neighbor each; the middle width alternates
// between its two, biased upward right after an upward adoption so a
// machine where wide wins climbs in two rounds.
func (l *WidthLadder) challenger() int {
	switch l.cur {
	case BatchWidth, MaxBatchWidth:
		return 4 * BatchWidth
	default:
		if l.upNext && l.cap >= MaxBatchWidth {
			return MaxBatchWidth
		}
		return BatchWidth
	}
}

// Next returns the width the next group should run at: the committed
// width inside a span, otherwise whichever arm of the audit round still
// owes timed candidates (the lead arm runs to quota first, then the
// other, so the arms cover adjacent stretches). Next is what advances
// spans and opens rounds, so consult Adapting after it, not before.
func (l *WidthLadder) Next() int {
	if l.cap <= BatchWidth {
		return l.cur
	}
	if !l.auditing {
		if l.left > 0 {
			l.left -= l.cur
			return l.cur
		}
		l.auditing = true
		l.trial = l.challenger()
		if l.cur != BatchWidth && l.cur != MaxBatchWidth {
			l.upNext = !l.upNext
		}
		l.roundCands = int64(max(l.cur, l.trial))
		l.curNS, l.trialNS = 0, 0
		l.curTimed, l.trialTimed = 0, 0
		l.curProg, l.trialProg = 0, 0
		l.leadCur = !l.leadCur
	}
	lead, follow := l.trial, l.cur
	leadTimed, followTimed := l.trialTimed, l.curTimed
	if l.leadCur {
		lead, follow = l.cur, l.trial
		leadTimed, followTimed = l.curTimed, l.trialTimed
	}
	if leadTimed < l.roundCands {
		return lead
	}
	if followTimed < l.roundCands {
		return follow
	}
	return l.cur
}

// Observe reports one group run at the width Next returned, with its
// sweep time and the number of candidates actually packed. Full groups
// feed the arm's clock; partial ones only advance the progress bound.
func (l *WidthLadder) Observe(width int, d time.Duration, cands int) {
	if !l.auditing || cands == 0 {
		return
	}
	if !l.warmed {
		l.warmed = true
		return
	}
	switch width {
	case l.cur:
		l.curProg += int64(cands)
		if cands == width {
			l.curNS += int64(d)
			l.curTimed += int64(cands)
		}
	case l.trial:
		l.trialProg += int64(cands)
		if cands == width {
			l.trialNS += int64(d)
			l.trialTimed += int64(cands)
		}
	default:
		return
	}
	if l.curTimed >= l.roundCands && l.trialTimed >= l.roundCands {
		// Both arms fully timed. The 10% hysteresis margin always burdens
		// the WIDER arm, whichever seat it holds: equal clocks mean the
		// narrow arm wins, because its lane slabs are 4-8x smaller and the
		// cache pressure they put on everything around the filter is the
		// one cost the group's own timing cannot see. (Without that tilt a
		// wide incumbent adopted on a drifting workload could hold its
		// seat forever on ties against the middle width, with the one-word
		// rung never even reachable.) A challenger losing by 50% or more
		// also pushes the next audit all the way out — asking again soon
		// cannot change the answer, and on workloads where a wide group is
		// MANY times slower the ask itself is the dominant cost of having
		// a ladder at all.
		wideNS, wideT := l.trialNS, l.trialTimed
		narrowNS, narrowT := l.curNS, l.curTimed
		if l.trial < l.cur {
			wideNS, wideT, narrowNS, narrowT = narrowNS, narrowT, wideNS, wideT
		}
		wideWins := wideNS*narrowT*10 <= narrowNS*wideT*9
		adopt := wideWins == (l.trial > l.cur)
		if !adopt && l.trialNS*l.curTimed*2 >= l.curNS*l.trialTimed*3 {
			l.span = ladderSpanMax
		}
		l.settle(adopt)
		return
	}
	if l.curProg >= 4*l.roundCands || l.trialProg >= 4*l.roundCands {
		l.settle(false)
	}
}

// NewStream tells the ladder its input stream restarted (a fresh run over
// the graph): an in-flight round would otherwise pair its arms across the
// boundary — end-of-stream groups against start-of-stream ones, the very
// drift the adjacent-stretch design exists to cancel — so the round is
// abandoned with no verdict and the committed span continues.
func (l *WidthLadder) NewStream() {
	if l.auditing {
		l.auditing = false
		l.left = l.span
	}
}

// settle closes the audit round: an adopted challenger becomes the
// committed width and the span resets (the trade-off just moved — look
// again soon), while a confirmed incumbent doubles it.
func (l *WidthLadder) settle(adopt bool) {
	if adopt {
		l.upNext = l.trial > l.cur
		l.cur = l.trial
		l.span = ladderSpan0
	} else if l.span < ladderSpanMax {
		l.span *= 2
	}
	l.auditing = false
	l.left = l.span
}
