package cycle

import "tdb/internal/digraph"

// Enumerator lists all constrained cycles of a graph, each exactly once.
// It is the repository's test oracle (covers are validated against the full
// cycle set on small graphs) and the cycle source for the DARC baseline.
//
// Deduplication uses the standard canonical-start rule: a cycle is emitted
// only from its minimum-ID vertex, and the DFS from start s never descends
// into vertices smaller than s.
type Enumerator struct {
	g      *digraph.Graph
	k      int
	minLen int
	active []bool

	onPath epochMark
	path   []VID
}

// NewEnumerator creates an enumerator for cycles of length in [minLen, k]
// over the subgraph induced by active (nil = whole graph).
func NewEnumerator(g *digraph.Graph, k, minLen int, active []bool) *Enumerator {
	validate(g, k, minLen, active)
	return &Enumerator{
		g: g, k: k, minLen: minLen, active: active,
		onPath: newEpochMark(g.NumVertices()),
		path:   make([]VID, 0, k+1),
	}
}

func (e *Enumerator) isActive(v VID) bool {
	return e.active == nil || e.active[v]
}

// All returns every constrained cycle as a vertex sequence starting at its
// minimum vertex. Intended for small graphs: the output can be exponential.
func (e *Enumerator) All() [][]VID {
	var out [][]VID
	e.Visit(func(c []VID) bool {
		cp := make([]VID, len(c))
		copy(cp, c)
		out = append(out, cp)
		return true
	})
	return out
}

// Count returns the number of constrained cycles without materializing them.
func (e *Enumerator) Count() int64 {
	var n int64
	e.Visit(func([]VID) bool {
		n++
		return true
	})
	return n
}

// Visit calls fn for every constrained cycle; fn must not retain the slice.
// Enumeration stops early when fn returns false.
func (e *Enumerator) Visit(fn func(c []VID) bool) {
	n := e.g.NumVertices()
	for s := 0; s < n; s++ {
		if !e.isActive(VID(s)) {
			continue
		}
		e.onPath.nextEpoch()
		e.path = e.path[:0]
		e.path = append(e.path, VID(s))
		e.onPath.set(VID(s))
		if !e.visitFrom(VID(s), VID(s), 0, fn) {
			return
		}
	}
}

// visitFrom extends the path rooted at s (using only vertices > s) and
// reports whether enumeration should continue.
func (e *Enumerator) visitFrom(s, u VID, depth int, fn func([]VID) bool) bool {
	for _, w := range e.g.Out(u) {
		if w == s {
			if depth+1 >= e.minLen {
				if !fn(e.path) {
					return false
				}
			}
			continue
		}
		if w < s || !e.isActive(w) || e.onPath.get(w) {
			continue
		}
		if depth+1 > e.k-1 {
			continue
		}
		e.path = append(e.path, w)
		e.onPath.set(w)
		ok := e.visitFrom(s, w, depth+1, fn)
		e.path = e.path[:len(e.path)-1]
		e.onPath.unset(w)
		if !ok {
			return false
		}
	}
	return true
}

// HasAny reports whether the active subgraph contains any constrained cycle.
func (e *Enumerator) HasAny() bool {
	found := false
	e.Visit(func([]VID) bool {
		found = true
		return false
	})
	return found
}
