package cycle

import "tdb/internal/digraph"

// Enumerator lists all constrained cycles of a graph, each exactly once.
// It is the repository's test oracle (covers are validated against the full
// cycle set on small graphs) and the cycle source for the DARC baseline.
//
// Deduplication uses the standard canonical-start rule: a cycle is emitted
// only from its minimum-ID vertex, and the DFS from start s never descends
// into vertices smaller than s.
type Enumerator struct {
	g      digraph.Adjacency
	k      int
	minLen int
	active []bool

	s *Scratch // DFS group: onPath, path
}

// NewEnumerator creates an enumerator for cycles of length in [minLen, k]
// over the subgraph induced by active (nil = whole graph).
func NewEnumerator(g digraph.Adjacency, k, minLen int, active []bool) *Enumerator {
	return NewEnumeratorWith(g, k, minLen, active, nil)
}

// NewEnumeratorWith is NewEnumerator borrowing the DFS buffers from s (nil
// allocates fresh scratch). See Scratch for the sharing rules.
func NewEnumeratorWith(g digraph.Adjacency, k, minLen int, active []bool, s *Scratch) *Enumerator {
	validate(g, k, minLen, active)
	return &Enumerator{
		g: g, k: k, minLen: minLen, active: active,
		s: checkScratch(s, g.NumVertices()),
	}
}

func (e *Enumerator) isActive(v VID) bool {
	return e.active == nil || e.active[v]
}

// All returns every constrained cycle as a vertex sequence starting at its
// minimum vertex. Intended for small graphs: the output can be exponential.
func (e *Enumerator) All() [][]VID {
	var out [][]VID
	e.Visit(func(c []VID) bool {
		cp := make([]VID, len(c))
		copy(cp, c)
		out = append(out, cp)
		return true
	})
	return out
}

// Count returns the number of constrained cycles without materializing them.
func (e *Enumerator) Count() int64 {
	var n int64
	e.Visit(func([]VID) bool {
		n++
		return true
	})
	return n
}

// Visit calls fn for every constrained cycle; fn must not retain the slice.
// Enumeration stops early when fn returns false.
func (e *Enumerator) Visit(fn func(c []VID) bool) {
	n := e.g.NumVertices()
	for s := 0; s < n; s++ {
		if !e.isActive(VID(s)) {
			continue
		}
		e.s.onPath.nextEpoch()
		e.s.path = e.s.path[:0]
		e.s.path = append(e.s.path, VID(s))
		e.s.onPath.set(VID(s))
		if !e.visitFrom(VID(s), VID(s), 0, fn) {
			return
		}
	}
}

// visitFrom extends the path rooted at s (using only vertices > s) and
// reports whether enumeration should continue.
func (e *Enumerator) visitFrom(s, u VID, depth int, fn func([]VID) bool) bool {
	for _, w := range e.g.Out(u) {
		if w == s {
			if depth+1 >= e.minLen {
				if !fn(e.s.path) {
					return false
				}
			}
			continue
		}
		if w < s || !e.isActive(w) || e.s.onPath.get(w) {
			continue
		}
		if depth+1 > e.k-1 {
			continue
		}
		e.s.path = append(e.s.path, w)
		e.s.onPath.set(w)
		ok := e.visitFrom(s, w, depth+1, fn)
		e.s.path = e.s.path[:len(e.s.path)-1]
		e.s.onPath.unset(w)
		if !ok {
			return false
		}
	}
	return true
}

// HasAny reports whether the active subgraph contains any constrained cycle.
func (e *Enumerator) HasAny() bool {
	found := false
	e.Visit(func([]VID) bool {
		found = true
		return false
	})
	return found
}
