package cycle

import (
	"math/rand/v2"
	"testing"

	"tdb/internal/digraph"
)

// TestPrefixFilterMatchesBFSFilter pins the deliberately duplicated BFS
// bodies of PrefixFilter and BFSFilter together: for random graphs, orders
// and limits, CanPrune(s, limit) must agree with a BFSFilter over the
// equivalent bool mask for every in-prefix start vertex.
func TestPrefixFilterMatchesBFSFilter(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.IntN(40)
		b := digraph.NewBuilder(n)
		m := n * (1 + rng.IntN(4))
		for i := 0; i < m; i++ {
			u, v := VID(rng.IntN(n)), VID(rng.IntN(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		gr := b.Build()
		k := 3 + rng.IntN(6)

		// A random candidate order, as the prepass uses.
		order := rng.Perm(n)
		pos := make([]int32, n)
		for i, v := range order {
			pos[v] = int32(i)
		}
		pf := NewPrefixFilterWith(gr, k, pos, nil)

		for _, limit := range []int{0, n / 3, n - 1} {
			mask := make([]bool, n)
			for p := 0; p <= limit; p++ {
				mask[order[p]] = true
			}
			bf := NewBFSFilterWith(gr, k, mask, nil)
			for p := 0; p <= limit; p++ {
				s := VID(order[p])
				if got, want := pf.CanPrune(s, int32(limit)), bf.CanPrune(s); got != want {
					t.Fatalf("trial %d n=%d k=%d limit=%d s=%d: PrefixFilter=%v BFSFilter=%v",
						trial, n, k, limit, s, got, want)
				}
			}
		}
	}
}
