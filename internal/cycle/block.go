package cycle

import "tdb/internal/digraph"

// BlockDetector answers "is there a constrained cycle through s?" with the
// paper's block (barrier) technique (Alg. 9 NodeNecessary + Alg. 10 Unblock).
//
// For a query starting at s, block[u] is a per-query lower bound on
// sd(u, s | S): the fewest hops from u back to s avoiding the vertices
// currently on the DFS stack S. When the DFS pushes u at path depth d it
// pessimistically sets block[u] = k - d + 1, the bound that becomes valid if
// the whole subtree under u fails (finding a cycle terminates the query, so
// the pessimism is never observed on success paths). A neighbor w at depth
// d+1 is expanded only when (d+1) + block[w] <= k — otherwise no cycle
// within the hop budget can close through w.
//
// The one repair the bound needs mid-query: when the DFS at depth 1 sees the
// edge u -> s it has found a 2-cycle, which the problem definition rejects
// (MinLen = 3), yet u provably reaches s in one hop. Unblock(u, 1) records
// that and relaxes in-neighbors transitively (v -> u -> s gives block[v] <= 2,
// and so on), exactly Alg. 9 line 7. Without this repair the pessimistic
// bound set at push time would wrongly suppress longer cycles through u.
//
// Each vertex can be re-pushed only at strictly smaller depths (the prune
// condition with the updated block forces it), so a query pushes every
// vertex at most k times and runs in O(k*m) — Theorem 6.
type BlockDetector struct {
	adjacency
	k      int
	minLen int

	s *Scratch // DFS group: onPath, blocked, stamp, epoch, path

	Stats Stats
}

// NewBlockDetector creates a block-based detector for cycles of length in
// [minLen, k] over the subgraph induced by active (nil = whole graph). The
// active slice is retained, not copied.
func NewBlockDetector(g digraph.Adjacency, k, minLen int, active []bool) *BlockDetector {
	return NewBlockDetectorWith(g, k, minLen, active, nil)
}

// NewBlockDetectorWith is NewBlockDetector borrowing the DFS buffers from s
// (nil allocates fresh scratch). See Scratch for the sharing rules.
func NewBlockDetectorWith(g digraph.Adjacency, k, minLen int, active []bool, s *Scratch) *BlockDetector {
	validate(g, k, minLen, active)
	return &BlockDetector{
		adjacency: maskAdjacency(g, active), k: k, minLen: minLen,
		s: checkScratch(s, g.NumVertices()),
	}
}

// NewBlockDetectorView is NewBlockDetectorWith over an active-adjacency
// working-graph view instead of a mask: the DFS and the Unblock propagation
// then iterate exactly the live edges (see digraph.ActiveAdjacency). The
// view is retained, so Activate/Deactivate calls between queries are
// visible to later queries.
func NewBlockDetectorView(view *digraph.ActiveAdjacency, k, minLen int, s *Scratch) *BlockDetector {
	validate(view.Base(), k, minLen, nil)
	return &BlockDetector{
		adjacency: viewAdjacency(view), k: k, minLen: minLen,
		s: checkScratch(s, view.Len()),
	}
}

func (d *BlockDetector) block(v VID) int {
	if d.s.stamp[v] == d.s.epoch {
		return int(d.s.blocked[v])
	}
	return 0 // no information: sd >= 0
}

func (d *BlockDetector) setBlock(v VID, b int) {
	d.s.stamp[v] = d.s.epoch
	d.s.blocked[v] = int32(b)
}

// FindFrom returns one constrained cycle through s (start vertex first), or
// nil if none exists in the active subgraph.
func (d *BlockDetector) FindFrom(s VID) []VID {
	if !d.query(s) {
		return nil
	}
	cyc := make([]VID, len(d.s.path))
	copy(cyc, d.s.path)
	return cyc
}

// HasCycleThrough reports whether any constrained cycle passes through s.
// Unlike FindFrom it does not materialize the found cycle, so repeated
// cover runs stay allocation-free.
func (d *BlockDetector) HasCycleThrough(s VID) bool {
	return d.query(s)
}

// query runs the detector, leaving a found cycle in d.s.path.
func (d *BlockDetector) query(s VID) bool {
	d.Stats.Queries++
	if !d.startActive(s) {
		return false
	}
	d.s.onPath.nextEpoch()
	d.s.epoch++
	if d.s.epoch == 0 { // uint32 wraparound: invalidate all stamps
		for i := range d.s.stamp {
			d.s.stamp[i] = 0
		}
		d.s.epoch = 1
	}
	d.s.path = d.s.path[:0]
	d.s.path = append(d.s.path, s)
	d.s.onPath.set(s)
	d.Stats.Pushes++
	if d.search(s, s, 0) {
		d.Stats.CyclesFound++
		return true
	}
	return false
}

func (d *BlockDetector) search(s, u VID, depth int) bool {
	pess := d.k - depth + 1
	if u != s {
		// Pessimistic bound, valid if this subtree fails (Alg. 9 line 3).
		d.setBlock(u, pess)
	}
	for _, w := range d.out(u) {
		d.Stats.EdgeScans++
		if w == s {
			if depth+1 >= d.minLen {
				return true
			}
			// Rejected short cycle (u -> s is a 2-cycle edge, only possible
			// at depth 1 with minLen=3): u still reaches s in 1 hop. Record
			// the fact now; the transitive repair happens at pop time below.
			d.setBlock(u, 1)
			continue
		}
		// On the view path every scanned w is live; only the mask filters.
		if (d.active != nil && !d.active[w]) || d.s.onPath.get(w) {
			continue
		}
		if depth+1 > d.k-1 {
			continue
		}
		if depth+1+d.block(w) > d.k {
			continue // barrier prune (Alg. 9 line 13)
		}
		d.s.path = append(d.s.path, w)
		d.s.onPath.set(w)
		d.Stats.Pushes++
		if d.search(s, w, depth+1) {
			return true
		}
		d.s.path = d.s.path[:len(d.s.path)-1]
		d.s.onPath.unset(w)
	}
	// Pop-time repair (deviation from Alg. 9, documented in DESIGN.md):
	// if a rejected 2-cycle proved a short return path from u, blocks set
	// inside u's subtree — while u was unavailable on the stack — may
	// overestimate now that u is leaving the stack. Propagating the relaxed
	// bound transitively over in-edges restores the invariant. Doing this
	// only at rejection time (as in the paper's line 7) is too early: it
	// cannot repair blocks that are assigned later in the subtree.
	if u != s && d.block(u) < pess {
		d.unblock(u, d.block(u))
	}
	return false
}

// unblock lowers block[u] to l and relaxes in-neighbors transitively
// (Alg. 10). Lowering a block is always safe: blocks are lower bounds.
func (d *BlockDetector) unblock(u VID, l int) {
	d.Stats.Unblocks++
	d.setBlock(u, l)
	for _, v := range d.in(u) {
		if (d.active != nil && !d.active[v]) || d.s.onPath.get(v) {
			continue
		}
		if d.block(v) > l+1 {
			d.unblock(v, l+1)
		}
	}
}
