package cycle

import (
	"math/rand/v2"
	"path/filepath"
	"testing"

	"tdb/internal/digraph"
)

// openMapped round-trips g through the TDBCSR1 format so the detectors and
// filters below run against the mapped backend instead of the in-memory
// CSR — same Adjacency seam the solvers use in production.
func openMapped(t *testing.T, g *digraph.Graph) *digraph.MappedGraph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.tdbcsr")
	if err := digraph.WriteMapped(path, g); err != nil {
		t.Fatal(err)
	}
	mg, err := digraph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mg.Close() })
	return mg
}

// TestDetectorsOnMappedBackend asserts the block detector, the scalar BFS
// filter and the batched bit-parallel filter answer identically over the
// mapped backend and the in-memory CSR, per vertex.
func TestDetectorsOnMappedBackend(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	const n, k = 200, 5
	b := digraph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(digraph.VID(rng.IntN(n)), digraph.VID(rng.IntN(n)))
	}
	g := b.Build()
	mg := openMapped(t, g)

	memDet := NewBlockDetector(g, k, DefaultMinLen, nil)
	mapDet := NewBlockDetector(mg, k, DefaultMinLen, nil)
	memFil := NewBFSFilter(g, k, nil)
	mapFil := NewBFSFilter(mg, k, nil)
	for v := 0; v < n; v++ {
		id := digraph.VID(v)
		if memDet.HasCycleThrough(id) != mapDet.HasCycleThrough(id) {
			t.Fatalf("block detector disagrees across backends at %d", v)
		}
		if memFil.CanPrune(id) != mapFil.CanPrune(id) {
			t.Fatalf("BFS filter disagrees across backends at %d", v)
		}
	}

	memSurvivors := make([]bool, n)
	NewBatchBFSFilter(g, k, nil).VisitUnpruned(n, func(v digraph.VID) bool {
		memSurvivors[v] = true
		return true
	})
	mapSurvivors := make([]bool, n)
	NewBatchBFSFilter(mg, k, nil).VisitUnpruned(n, func(v digraph.VID) bool {
		mapSurvivors[v] = true
		return true
	})
	for v := 0; v < n; v++ {
		if memSurvivors[v] != mapSurvivors[v] {
			t.Fatalf("batched filter disagrees across backends at %d", v)
		}
	}
}
