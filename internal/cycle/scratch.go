package cycle

import (
	"fmt"
	"sync"

	"tdb/internal/digraph"
)

// Scratch owns the O(n) working state the detection primitives need: the
// epoch-marked path/visited maps, the block/barrier tables and the BFS
// queues. Allocating it once per graph and lending it to detectors makes
// repeated queries (and repeated whole covers over the same graph)
// allocation-free; ScratchPool makes that reuse safe across goroutines.
//
// The buffers split into three independent groups:
//
//   - the DFS group (onPath, blocked, stamp, path), used by PlainDetector,
//     BlockDetector and Enumerator;
//   - the BFS group (visited, inNbr, queue, nextQ), used by BFSFilter and
//     PrefixFilter;
//   - the lane group (settlement maps plus cur/next frontiers per
//     direction), used by BatchBFSFilter and BatchPrefixFilter; allocated
//     lazily PER LANE WIDTH on first use, so scalar-only workloads never pay
//     for lane state and 64-lane workloads never pay for the wide groups.
//
// One Scratch may therefore back at most ONE component of each group at a
// time — e.g. a BlockDetector plus a BatchBFSFilter, the exact pair the
// top-down cover interleaves — but never two detectors, or a detector and
// an enumerator, concurrently. Scratch is not safe for concurrent use; give
// each worker its own (see ScratchPool).
type Scratch struct {
	n int

	// DFS group.
	onPath  epochMark
	blocked []int32
	stamp   []uint32
	epoch   uint32
	path    []VID

	// BFS group.
	visited epochMark
	inNbr   epochMark
	queue   []VID
	nextQ   []VID

	// Lane group (lazy, one state per supported lane width).
	lanes1  *laneState // one-word groups (64 lanes)
	lanes4  *laneState // four-word groups (256 lanes)
	lanes8  *laneState // eight-word groups (512 lanes)
	touched []VID      // vertices with non-zero reached groups
}

// laneState is the per-width lane buffer set of the batched filters: the two
// settlement maps of the bidirectional BFS plus a cur/next frontier pair per
// direction. The slabs are handed over zeroed and must come back zeroed
// (the filters clear exactly the entries they touched); the touched list is
// shared across widths through Scratch, which is safe because one Scratch
// backs at most one batched sweep at a time.
type laneState struct {
	reachedF  *digraph.LaneBits        // forward-settled lane groups
	reachedB  *digraph.LaneBits        // backward-settled lane groups
	frontiers [4]*digraph.LaneFrontier // cur/next per direction
}

// laneStateFor returns the lane state for nw-word groups (nw in {1, 4, 8}),
// allocating it on first use.
func (s *Scratch) laneStateFor(nw int) *laneState {
	var p **laneState
	switch nw {
	case 1:
		p = &s.lanes1
	case 4:
		p = &s.lanes4
	default:
		p = &s.lanes8
	}
	if *p == nil {
		st := &laneState{
			reachedF: digraph.NewLaneBits(s.n, nw),
			reachedB: digraph.NewLaneBits(s.n, nw),
		}
		for i := range st.frontiers {
			st.frontiers[i] = digraph.NewLaneFrontier(s.n, nw)
		}
		*p = st
	}
	return *p
}

// NewScratch allocates scratch state for graphs with n vertices.
func NewScratch(n int) *Scratch {
	return &Scratch{
		n:       n,
		onPath:  newEpochMark(n),
		blocked: make([]int32, n),
		stamp:   make([]uint32, n),
		visited: newEpochMark(n),
		inNbr:   newEpochMark(n),
	}
}

// Len returns the number of vertices the scratch is sized for.
func (s *Scratch) Len() int { return s.n }

// checkScratch validates a borrowed scratch against the graph size,
// allocating a fresh one when the caller passed nil.
func checkScratch(s *Scratch, n int) *Scratch {
	if s == nil {
		return NewScratch(n)
	}
	if s.n != n {
		panic(fmt.Sprintf("cycle: scratch sized for n=%d used with graph n=%d", s.n, n))
	}
	return s
}

// ScratchPool is a per-graph-size free list of Scratch values backed by
// sync.Pool: parallel cover workers Get one each, and sequential engines
// reuse one across runs without holding it alive forever.
type ScratchPool struct {
	n    int
	pool sync.Pool
}

// NewScratchPool returns a pool of scratch state for graphs with n vertices.
func NewScratchPool(n int) *ScratchPool {
	p := &ScratchPool{n: n}
	p.pool.New = func() any { return NewScratch(n) }
	return p
}

// Get borrows a scratch; return it with Put when the borrowing detector or
// filter is no longer used.
func (p *ScratchPool) Get() *Scratch { return p.pool.Get().(*Scratch) }

// Put returns a scratch to the pool. Scratch of a mismatched size is
// silently dropped rather than poisoning the pool.
func (p *ScratchPool) Put(s *Scratch) {
	if s != nil && s.n == p.n {
		p.pool.Put(s)
	}
}
