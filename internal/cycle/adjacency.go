package cycle

import "tdb/internal/digraph"

// adjacency is the edge-source layer shared by the detection primitives,
// embedded by PlainDetector, BlockDetector and BFSFilter. It selects one of
// the two working-graph representations (DESIGN.md §7):
//
//   - mask: the immutable CSR rows, which the traversal loops filter
//     per-entry through the optional active mask (nil = whole graph);
//   - view: a digraph.ActiveAdjacency whose slices hold exactly the live
//     neighbors, so no per-entry filtering happens at all.
//
// Keeping the selection here, in one place, pins the three detectors'
// activation semantics together.
type adjacency struct {
	g      digraph.Adjacency
	active []bool
	view   *digraph.ActiveAdjacency
}

// maskAdjacency sources edges from g filtered by active (nil = all).
func maskAdjacency(g digraph.Adjacency, active []bool) adjacency {
	return adjacency{g: g, active: active}
}

// viewAdjacency sources edges from the live slices of view.
func viewAdjacency(view *digraph.ActiveAdjacency) adjacency {
	return adjacency{g: view.Base(), view: view}
}

// startActive reports whether a query may start from v.
func (a *adjacency) startActive(v VID) bool {
	if a.view != nil {
		return a.view.Active(v)
	}
	return a.active == nil || a.active[v]
}

// out returns the neighbors a traversal scans from u: the live slice of the
// view when present (already active-filtered), the full CSR row otherwise —
// the scan loop then filters each entry through a.active itself.
func (a *adjacency) out(u VID) []VID {
	if a.view != nil {
		return a.view.ActiveOut(u)
	}
	return a.g.Out(u)
}

// in is the backward counterpart of out, used by Unblock propagation and
// in-neighbor marking.
func (a *adjacency) in(u VID) []VID {
	if a.view != nil {
		return a.view.ActiveIn(u)
	}
	return a.g.In(u)
}
