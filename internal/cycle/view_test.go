package cycle

import (
	"math/rand/v2"
	"testing"

	"tdb/internal/digraph"
)

// The view-backed detector paths must agree with the mask paths on every
// boolean / distance answer: both run on the same active subgraph, only the
// edge-iteration strategy differs.
func TestViewDetectorsMatchMask(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 29))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.IntN(30)
		b := digraph.NewBuilder(n)
		m := rng.IntN(5 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		g := b.Build()

		active := make([]bool, n)
		view := digraph.NewActiveAdjacency(g, false)
		for v := 0; v < n; v++ {
			if rng.IntN(4) > 0 { // ~75% live
				active[v] = true
				view.Activate(VID(v))
			}
		}

		for _, k := range []int{3, 5, 8} {
			maskPlain := NewPlainDetector(g, k, DefaultMinLen, active)
			viewPlain := NewPlainDetectorView(view, k, DefaultMinLen, nil)
			maskBlock := NewBlockDetector(g, k, DefaultMinLen, active)
			viewBlock := NewBlockDetectorView(view, k, DefaultMinLen, nil)
			maskBFS := NewBFSFilter(g, k, active)
			viewBFS := NewBFSFilterView(view, k, nil)
			for v := 0; v < n; v++ {
				mp := maskPlain.HasCycleThrough(VID(v))
				if vp := viewPlain.HasCycleThrough(VID(v)); vp != mp {
					t.Fatalf("k=%d v=%d: plain view=%v mask=%v\ngraph=%v active=%v",
						k, v, vp, mp, g.Edges(), active)
				}
				if vb := viewBlock.HasCycleThrough(VID(v)); vb != mp {
					t.Fatalf("k=%d v=%d: block view=%v plain mask=%v\ngraph=%v active=%v",
						k, v, vb, mp, g.Edges(), active)
				}
				if mb := maskBlock.HasCycleThrough(VID(v)); mb != mp {
					t.Fatalf("k=%d v=%d: block mask=%v plain mask=%v", k, v, mb, mp)
				}
				mw := maskBFS.ShortestClosedWalk(VID(v))
				if vw := viewBFS.ShortestClosedWalk(VID(v)); vw != mw {
					t.Fatalf("k=%d v=%d: walk view=%d mask=%d\ngraph=%v active=%v",
						k, v, vw, mw, g.Edges(), active)
				}
			}
			// On the view path a detector never scans a dead edge, so its
			// scan count cannot exceed the mask path's.
			if viewBlock.Stats.EdgeScans > maskBlock.Stats.EdgeScans {
				t.Fatalf("k=%d: view scanned %d edges, mask %d",
					k, viewBlock.Stats.EdgeScans, maskBlock.Stats.EdgeScans)
			}
		}
	}
}

// A view-backed FindFrom must return a real constrained cycle of the live
// subgraph whenever the mask path finds one.
func TestViewFindFromYieldsValidCycle(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 17))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.IntN(20)
		b := digraph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
		}
		g := b.Build()
		view := digraph.NewActiveAdjacency(g, true)
		active := make([]bool, n)
		for i := range active {
			active[i] = true
		}
		det := NewPlainDetectorView(view, 5, DefaultMinLen, nil)
		ref := NewPlainDetector(g, 5, DefaultMinLen, active)
		for v := 0; v < n; v++ {
			c := det.FindFrom(VID(v))
			if (c != nil) != (ref.FindFrom(VID(v)) != nil) {
				t.Fatalf("v=%d: view found=%v, mask disagrees", v, c)
			}
			if c == nil {
				continue
			}
			if len(c) < DefaultMinLen || len(c) > 5 || c[0] != VID(v) {
				t.Fatalf("v=%d: malformed cycle %v", v, c)
			}
			for i, u := range c {
				if !g.HasEdge(u, c[(i+1)%len(c)]) {
					t.Fatalf("v=%d: %v is not a cycle of the graph", v, c)
				}
			}
		}
	}
}
