package cycle

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"tdb/internal/digraph"
)

// bfRandomGraph builds a random digraph with n vertices and ~m edges.
func bfRandomGraph(n, m int, seed uint64) *digraph.Graph {
	rng := rand.New(rand.NewPCG(seed, seed^0x5bd1e995))
	b := digraph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := VID(rng.IntN(n))
		v := VID(rng.IntN(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// bfSelfLoopGraph is bfRandomGraph with KeepSelfLoops set and ~n/4 planted
// self-loops: the scalar filter never counts a self-loop as a closed walk,
// and the batched filters must agree.
func bfSelfLoopGraph(n, m int, seed uint64) *digraph.Graph {
	rng := rand.New(rand.NewPCG(seed, seed^0xc2b2ae35))
	b := digraph.NewBuilder(n)
	b.KeepSelfLoops = true
	for i := 0; i < m; i++ {
		b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
	}
	for i := 0; i < n/4; i++ {
		v := VID(rng.IntN(n))
		b.AddEdge(v, v)
	}
	return b.Build()
}

// batchSources picks size sources (with repetition allowed across batches
// but not needed within) from [0, n).
func batchSources(rng *rand.Rand, n, size int) []VID {
	src := make([]VID, size)
	for i := range src {
		src[i] = VID(rng.IntN(n))
	}
	return src
}

// TestBatchBFSFilterMatchesScalar is the equivalence property of the
// tentpole: across random graphs, hop constraints, batch sizes (including
// multi-word batches) and both working-graph backends, CanPruneBatch must
// report EXACTLY the scalar filter's CanPrune answer for every source.
func TestBatchBFSFilterMatchesScalar(t *testing.T) {
	graphs := []struct {
		name string
		g    *digraph.Graph
	}{
		{"sparse-150", bfRandomGraph(150, 300, 1)},
		{"dense-60", bfRandomGraph(60, 700, 2)},
		{"mid-300", bfRandomGraph(300, 1200, 3)},
		{"selfloops-120", bfSelfLoopGraph(120, 400, 6)},
	}
	for _, tc := range graphs {
		n := tc.g.NumVertices()
		for _, k := range []int{3, 5, 8} {
			for _, backend := range []string{"mask", "view"} {
				for _, size := range []int{1, 7, 64, 200} {
					t.Run(fmt.Sprintf("%s/k=%d/%s/batch=%d", tc.name, k, backend, size), func(t *testing.T) {
						rng := rand.New(rand.NewPCG(uint64(k*size), 77))
						// A random active submask exercises the membership
						// filtering; ~1/5 of vertices inactive.
						active := make([]bool, n)
						for v := range active {
							active[v] = rng.IntN(5) > 0
						}
						var scalar *BFSFilter
						var batch *BatchBFSFilter
						switch backend {
						case "mask":
							scalar = NewBFSFilter(tc.g, k, active)
							batch = NewBatchBFSFilter(tc.g, k, active)
						case "view":
							view := digraph.NewActiveAdjacency(tc.g, false)
							for v := 0; v < n; v++ {
								if active[v] {
									view.Activate(VID(v))
								}
							}
							sc := NewScratch(n)
							scalar = NewBFSFilterView(view, k, sc)
							batch = NewBatchBFSFilterView(view, k, sc)
						}
						for round := 0; round < 3; round++ {
							src := batchSources(rng, n, size)
							got := make([]bool, size)
							batch.CanPruneBatch(src, got)
							for i, s := range src {
								want := scalar.CanPrune(s)
								if got[i] != want {
									t.Fatalf("round %d source %d (lane %d): batch pruned=%v, scalar pruned=%v",
										round, s, i, got[i], want)
								}
							}
						}
						if batch.Stats.Queries != int64(3*size) {
							t.Fatalf("batch counted %d queries, want %d", batch.Stats.Queries, 3*size)
						}
					})
				}
			}
		}
	}
}

// TestBatchPrefixFilterMatchesScalar pins the batched prefix filter to the
// scalar PrefixFilter: for sources in ascending position order, each lane's
// answer must equal CanPrune(source, pos[source]) — the exact per-lane
// prefix, not a shared widened one.
func TestBatchPrefixFilterMatchesScalar(t *testing.T) {
	for _, seed := range []uint64{4, 5} {
		g := bfRandomGraph(200, 800, seed)
		if seed == 5 { // one corpus entry with self-loops kept
			g = bfSelfLoopGraph(200, 800, seed)
		}
		n := g.NumVertices()
		for _, k := range []int{3, 5, 8} {
			t.Run(fmt.Sprintf("seed=%d/k=%d", seed, k), func(t *testing.T) {
				rng := rand.New(rand.NewPCG(seed, uint64(k)))
				// Random candidate order.
				order := rng.Perm(n)
				pos := make([]int32, n)
				for p, v := range order {
					pos[v] = int32(p)
				}
				sc := NewScratch(n)
				scalar := NewPrefixFilterWith(g, k, pos, sc)
				batch := NewBatchPrefixFilterWith(g, k, pos, sc)
				for _, size := range []int{1, 7, 64, 200} {
					// Sources = a random ascending slice of the order.
					start := rng.IntN(n)
					src := make([]VID, 0, size)
					for p := start; p < n && len(src) < size; p += 1 + rng.IntN(3) {
						src = append(src, VID(order[p]))
					}
					got := make([]bool, len(src))
					batch.CanPruneBatch(src, got)
					for i, s := range src {
						want := scalar.CanPrune(s, pos[s])
						if got[i] != want {
							t.Fatalf("size %d lane %d source %d: batch pruned=%v, scalar pruned=%v",
								size, i, s, got[i], want)
						}
					}
				}
			})
		}
	}
}

// TestBatchFilterScratchReuse runs mask and prefix batches back to back on
// one shared scratch to catch cross-batch contamination of the lane group.
func TestBatchFilterScratchReuse(t *testing.T) {
	g := bfRandomGraph(120, 500, 9)
	n := g.NumVertices()
	sc := NewScratch(n)
	scalar := NewBFSFilter(g, 5, nil)
	batch := NewBatchBFSFilterWith(g, 5, nil, sc)
	pos := make([]int32, n)
	for v := range pos {
		pos[v] = int32(v) // natural order
	}
	scalarPrefix := NewPrefixFilterWith(g, 5, pos, nil)
	batchPrefix := NewBatchPrefixFilterWith(g, 5, pos, sc)

	src := make([]VID, n)
	for v := range src {
		src[v] = VID(v)
	}
	got := make([]bool, n)
	for round := 0; round < 3; round++ {
		batch.CanPruneBatch(src, got)
		for v, p := range got {
			if want := scalar.CanPrune(VID(v)); p != want {
				t.Fatalf("round %d full-graph source %d: batch=%v scalar=%v", round, v, p, want)
			}
		}
		batchPrefix.CanPruneBatch(src, got)
		for v, p := range got {
			if want := scalarPrefix.CanPrune(VID(v), pos[v]); p != want {
				t.Fatalf("round %d prefix source %d: batch=%v scalar=%v", round, v, p, want)
			}
		}
	}
}

// TestBatchFilterViewTracksActivation: the view-backed batch filter must see
// Activate/Deactivate changes between batches, like the scalar filter.
func TestBatchFilterViewTracksActivation(t *testing.T) {
	// Triangle 0->1->2->0 plus a chord vertex 3 on a 4-cycle.
	b := digraph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	view := digraph.NewActiveAdjacency(g, true)
	f := NewBatchBFSFilterView(view, 5, nil)
	src := []VID{0, 1, 2, 3}
	pruned := make([]bool, 4)
	f.CanPruneBatch(src, pruned)
	for i, p := range pruned {
		if p {
			t.Fatalf("all-active: source %d pruned, want unpruned (on a cycle)", i)
		}
	}
	view.Deactivate(1) // breaks the triangle; 2->3->0 path still cycles via 0->...? 0->1 gone
	f.CanPruneBatch(src, pruned)
	// With 1 inactive, the only cycle is 0->? 0's out is {1}; no cycle
	// remains that includes 0,2,3? 2->0,2->3,3->0 and 0->1(dead): no edge
	// leaves 0 into an active vertex, so no cycle survives at all.
	want := []bool{true, true, true, true}
	for i := range src {
		if pruned[i] != want[i] {
			t.Fatalf("after deactivate: source %d pruned=%v want %v", src[i], pruned[i], want[i])
		}
	}
	view.Activate(1)
	f.CanPruneBatch(src, pruned)
	for i, p := range pruned {
		if p {
			t.Fatalf("re-activated: source %d pruned, want unpruned", i)
		}
	}
}

// TestBatchBFSFilterWidthSweep is the wide-lane half of the tentpole's
// equivalence property: for every supported lane-group width W (64, 256,
// 512 lanes — the one-word body plus both wide strides), CanPruneBatch over
// batches large enough to fill several groups must match the scalar filter
// per lane, on both backends, including partial trailing groups.
func TestBatchBFSFilterWidthSweep(t *testing.T) {
	graphs := []struct {
		name string
		g    *digraph.Graph
	}{
		{"mid-700", bfRandomGraph(700, 2800, 11)},
		{"selfloops-600", bfSelfLoopGraph(600, 2400, 12)},
	}
	for _, tc := range graphs {
		n := tc.g.NumVertices()
		for _, k := range []int{3, 5, 8} {
			for _, lanes := range []int{64, 256, 512} {
				t.Run(fmt.Sprintf("%s/k=%d/W=%d", tc.name, k, lanes), func(t *testing.T) {
					rng := rand.New(rand.NewPCG(uint64(k*lanes), 99))
					active := make([]bool, n)
					for v := range active {
						active[v] = rng.IntN(5) > 0
					}
					scalar := NewBFSFilter(tc.g, k, active)
					batch := NewBatchBFSFilter(tc.g, k, active)
					batch.SetLanes(lanes)
					if batch.Lanes() != lanes {
						t.Fatalf("Lanes = %d after SetLanes(%d)", batch.Lanes(), lanes)
					}
					// 600 sources: full wide groups plus a ragged tail at
					// every width (600 = 512+88 = 2*256+88 = 9*64+24).
					src := batchSources(rng, n, 600)
					got := make([]bool, len(src))
					batch.CanPruneBatch(src, got)
					for i, s := range src {
						if want := scalar.CanPrune(s); got[i] != want {
							t.Fatalf("lane %d source %d: batch pruned=%v, scalar pruned=%v", i, s, got[i], want)
						}
					}
				})
			}
		}
	}
}

// TestBatchPrefixFilterWidthSweep is TestBatchBFSFilterWidthSweep for the
// prefix filter: every width must reproduce the scalar per-lane prefix
// answers, exercising the wide bodies' word-by-word suffix eligibility
// masks across group-word boundaries.
func TestBatchPrefixFilterWidthSweep(t *testing.T) {
	g := bfRandomGraph(700, 2800, 13)
	n := g.NumVertices()
	for _, k := range []int{3, 5, 8} {
		for _, lanes := range []int{64, 256, 512} {
			t.Run(fmt.Sprintf("k=%d/W=%d", k, lanes), func(t *testing.T) {
				rng := rand.New(rand.NewPCG(uint64(k), uint64(lanes)))
				order := rng.Perm(n)
				pos := make([]int32, n)
				for p, v := range order {
					pos[v] = int32(p)
				}
				sc := NewScratch(n)
				scalar := NewPrefixFilterWith(g, k, pos, sc)
				batch := NewBatchPrefixFilterWith(g, k, pos, sc)
				batch.SetLanes(lanes)
				// An ascending-position slice long enough for full wide
				// groups plus a ragged tail.
				src := make([]VID, 0, 600)
				for p := 0; p < n && len(src) < 600; p += 1 + rng.IntN(2) {
					src = append(src, VID(order[p]))
				}
				got := make([]bool, len(src))
				batch.CanPruneBatch(src, got)
				for i, s := range src {
					if want := scalar.CanPrune(s, pos[s]); got[i] != want {
						t.Fatalf("lane %d source %d: batch pruned=%v, scalar pruned=%v", i, s, got[i], want)
					}
				}
			})
		}
	}
}

// TestBatchFilterMixedWidthScratchReuse alternates widths on one shared
// scratch: the per-width lane states must not contaminate each other, and a
// filter re-capped mid-stream must keep answering exactly.
func TestBatchFilterMixedWidthScratchReuse(t *testing.T) {
	g := bfRandomGraph(640, 2600, 14)
	n := g.NumVertices()
	sc := NewScratch(n)
	scalar := NewBFSFilter(g, 5, nil)
	batch := NewBatchBFSFilterWith(g, 5, nil, sc)
	src := make([]VID, n)
	for v := range src {
		src[v] = VID(v)
	}
	got := make([]bool, n)
	for round, lanes := range []int{512, 64, 256, 512, 64} {
		batch.SetLanes(lanes)
		batch.CanPruneBatch(src, got)
		for v, p := range got {
			if want := scalar.CanPrune(VID(v)); p != want {
				t.Fatalf("round %d (W=%d) source %d: batch=%v scalar=%v", round, lanes, v, p, want)
			}
		}
	}
}
