package cycle

import (
	"math/rand/v2"
	"testing"

	"tdb/internal/digraph"
)

func g(n int, pairs ...VID) *digraph.Graph {
	b := digraph.NewBuilder(n)
	for i := 0; i+1 < len(pairs); i += 2 {
		b.AddEdge(pairs[i], pairs[i+1])
	}
	return b.Build()
}

// hasCycleThroughOracle answers membership by full enumeration.
func hasCycleThroughOracle(gr *digraph.Graph, k, minLen int, active []bool, s VID) bool {
	found := false
	NewEnumerator(gr, k, minLen, active).Visit(func(c []VID) bool {
		for _, v := range c {
			if v == s {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkCycle validates a returned cycle: starts at s, simple, edges exist,
// length within [minLen, k], all vertices active.
func checkCycle(t *testing.T, gr *digraph.Graph, k, minLen int, active []bool, s VID, c []VID) {
	t.Helper()
	if c[0] != s {
		t.Fatalf("cycle %v does not start at %d", c, s)
	}
	if len(c) < minLen || len(c) > k {
		t.Fatalf("cycle %v length %d outside [%d,%d]", c, len(c), minLen, k)
	}
	seen := map[VID]bool{}
	for i, v := range c {
		if seen[v] {
			t.Fatalf("cycle %v repeats vertex %d", c, v)
		}
		seen[v] = true
		if active != nil && !active[v] {
			t.Fatalf("cycle %v uses inactive vertex %d", c, v)
		}
		next := c[(i+1)%len(c)]
		if !gr.HasEdge(v, next) {
			t.Fatalf("cycle %v uses missing edge %d->%d", c, v, next)
		}
	}
}

func TestTriangle(t *testing.T) {
	gr := g(3, 0, 1, 1, 2, 2, 0)
	for _, k := range []int{3, 4, 7} {
		pd := NewPlainDetector(gr, k, 3, nil)
		bd := NewBlockDetector(gr, k, 3, nil)
		for s := VID(0); s < 3; s++ {
			if c := pd.FindFrom(s); c == nil {
				t.Fatalf("plain k=%d: no cycle through %d", k, s)
			} else {
				checkCycle(t, gr, k, 3, nil, s, c)
			}
			if c := bd.FindFrom(s); c == nil {
				t.Fatalf("block k=%d: no cycle through %d", k, s)
			} else {
				checkCycle(t, gr, k, 3, nil, s, c)
			}
		}
	}
}

func TestTwoCycleExcludedByDefault(t *testing.T) {
	gr := g(2, 0, 1, 1, 0)
	pd := NewPlainDetector(gr, 5, 3, nil)
	bd := NewBlockDetector(gr, 5, 3, nil)
	for s := VID(0); s < 2; s++ {
		if pd.FindFrom(s) != nil || bd.FindFrom(s) != nil {
			t.Fatalf("2-cycle must be rejected with minLen=3")
		}
	}
	// With minLen=2 it is a cycle.
	pd2 := NewPlainDetector(gr, 5, 2, nil)
	bd2 := NewBlockDetector(gr, 5, 2, nil)
	for s := VID(0); s < 2; s++ {
		if c := pd2.FindFrom(s); c == nil {
			t.Fatal("plain minLen=2 missed the 2-cycle")
		} else {
			checkCycle(t, gr, 5, 2, nil, s, c)
		}
		if c := bd2.FindFrom(s); c == nil {
			t.Fatal("block minLen=2 missed the 2-cycle")
		} else {
			checkCycle(t, gr, 5, 2, nil, s, c)
		}
	}
}

// TestUnblockRepair builds the exact situation the Unblock call exists for:
// the DFS first walks s->u, rejects the 2-cycle u->s, and must not let the
// pessimistic block on u suppress the real 3-cycle s->a->u->s.
func TestUnblockRepair(t *testing.T) {
	// s=0, u=1, a=2. Out(0) = [1, 2], so u is explored first.
	gr := g(3, 0, 1, 1, 0, 0, 2, 2, 1)
	bd := NewBlockDetector(gr, 3, 3, nil)
	c := bd.FindFrom(0)
	if c == nil {
		t.Fatal("block detector missed 3-cycle after 2-cycle rejection (Unblock broken)")
	}
	checkCycle(t, gr, 3, 3, nil, 0, c)
	if bd.Stats.Unblocks == 0 {
		t.Fatal("expected at least one Unblock call in this scenario")
	}
}

func TestHopConstraintBoundary(t *testing.T) {
	// Single directed 5-cycle: detectable iff k >= 5.
	gr := g(5, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0)
	for k := 3; k <= 7; k++ {
		want := k >= 5
		pd := NewPlainDetector(gr, k, 3, nil)
		bd := NewBlockDetector(gr, k, 3, nil)
		for s := VID(0); s < 5; s++ {
			if got := pd.HasCycleThrough(s); got != want {
				t.Fatalf("plain k=%d s=%d: got %v, want %v", k, s, got, want)
			}
			if got := bd.HasCycleThrough(s); got != want {
				t.Fatalf("block k=%d s=%d: got %v, want %v", k, s, got, want)
			}
		}
	}
}

// Figure 4 of the paper: graphs that a naive colored BFS cannot tell apart.
// Both detectors must answer exactly.
func TestPaperFigure4(t *testing.T) {
	// (a): a->b->d->c->a plus a->c? The paper draws a,b,c,d with a 4-cycle
	// present; (b) shares the BFS signature but has no cycle through a.
	ga := g(4, 0, 1, 1, 3, 3, 2, 2, 0) // a->b->d->c->a: 4-cycle through a
	gb := g(4, 0, 1, 0, 2, 1, 3, 3, 2) // a->b->d->c and a->c: no cycle
	for _, k := range []int{4, 5} {
		if !NewBlockDetector(ga, k, 3, nil).HasCycleThrough(0) {
			t.Fatal("graph (a): cycle through a missed")
		}
		if NewBlockDetector(gb, k, 3, nil).HasCycleThrough(0) {
			t.Fatal("graph (b): spurious cycle through a")
		}
	}
}

func TestActiveMask(t *testing.T) {
	gr := g(3, 0, 1, 1, 2, 2, 0)
	active := []bool{true, true, true}
	bd := NewBlockDetector(gr, 5, 3, active)
	pd := NewPlainDetector(gr, 5, 3, active)
	if !bd.HasCycleThrough(0) || !pd.HasCycleThrough(0) {
		t.Fatal("cycle missed with all-active mask")
	}
	active[1] = false // break the triangle
	if bd.HasCycleThrough(0) || pd.HasCycleThrough(0) {
		t.Fatal("detectors ignored deactivated vertex")
	}
	if bd.HasCycleThrough(1) || pd.HasCycleThrough(1) {
		t.Fatal("query on inactive start vertex must fail")
	}
	active[1] = true
	if !bd.HasCycleThrough(0) || !pd.HasCycleThrough(0) {
		t.Fatal("detectors must see reactivated vertex")
	}
}

func randomTestGraph(rng *rand.Rand, n, m int) *digraph.Graph {
	b := digraph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(VID(rng.IntN(n)), VID(rng.IntN(n)))
	}
	return b.Build()
}

// The central equivalence property: plain DFS, block DFS, and the
// enumeration oracle agree on "is s on some constrained cycle", for random
// graphs, all k in [3,7], both minLen settings, with and without masks.
func TestDetectorEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 202))
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.IntN(14)
		gr := randomTestGraph(rng, n, rng.IntN(3*n))
		var active []bool
		if iter%3 == 0 {
			active = make([]bool, n)
			for i := range active {
				active[i] = rng.IntN(4) > 0
			}
		}
		for _, minLen := range []int{2, 3} {
			for k := minLen; k <= 7; k++ {
				pd := NewPlainDetector(gr, k, minLen, active)
				bd := NewBlockDetector(gr, k, minLen, active)
				for s := VID(0); int(s) < n; s++ {
					want := false
					if active == nil || active[s] {
						want = hasCycleThroughOracle(gr, k, minLen, active, s)
					}
					pc := pd.FindFrom(s)
					bc := bd.FindFrom(s)
					if (pc != nil) != want {
						t.Fatalf("iter=%d k=%d minLen=%d s=%d: plain=%v want=%v\ngraph=%v active=%v",
							iter, k, minLen, s, pc != nil, want, gr.Edges(), active)
					}
					if (bc != nil) != want {
						t.Fatalf("iter=%d k=%d minLen=%d s=%d: block=%v want=%v\ngraph=%v active=%v",
							iter, k, minLen, s, bc != nil, want, gr.Edges(), active)
					}
					if pc != nil {
						checkCycle(t, gr, k, minLen, active, s, pc)
					}
					if bc != nil {
						checkCycle(t, gr, k, minLen, active, s, bc)
					}
				}
			}
		}
	}
}

// The block detector must stay correct across interleaved mask mutations,
// exactly the access pattern of the top-down cover.
func TestBlockDetectorIncrementalMask(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for iter := 0; iter < 40; iter++ {
		n := 3 + rng.IntN(12)
		gr := randomTestGraph(rng, n, rng.IntN(4*n))
		k := 3 + rng.IntN(4)
		active := make([]bool, n)
		bd := NewBlockDetector(gr, k, 3, active)
		for step := 0; step < n; step++ {
			v := VID(rng.IntN(n))
			active[v] = !active[v]
			s := VID(rng.IntN(n))
			want := active[s] && hasCycleThroughOracle(gr, k, 3, active, s)
			if got := bd.HasCycleThrough(s); got != want {
				t.Fatalf("iter=%d step=%d s=%d: got %v want %v", iter, step, s, got, want)
			}
		}
	}
}

// TestBlockDetectorStress is a wide randomized sweep (the class of bug it
// guards against — stale barrier bounds after stack pops — only shows up on
// specific adjacency orders, so volume matters).
func TestBlockDetectorStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	rng := rand.New(rand.NewPCG(404, 505))
	for iter := 0; iter < 900; iter++ {
		n := 3 + rng.IntN(16)
		// Mix sparse and dense regimes.
		m := rng.IntN(2 + n*n/2)
		gr := randomTestGraph(rng, n, m)
		k := 3 + rng.IntN(6)
		bd := NewBlockDetector(gr, k, 3, nil)
		for s := VID(0); int(s) < n; s++ {
			want := hasCycleThroughOracle(gr, k, 3, nil, s)
			if got := bd.HasCycleThrough(s); got != want {
				t.Fatalf("iter=%d k=%d s=%d: block=%v want=%v\ngraph=%v",
					iter, k, s, got, want, gr.Edges())
			}
		}
	}
}

func TestBFSFilterSoundness(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 66))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.IntN(14)
		gr := randomTestGraph(rng, n, rng.IntN(3*n))
		var active []bool
		if iter%2 == 0 {
			active = make([]bool, n)
			for i := range active {
				active[i] = rng.IntN(5) > 0
			}
		}
		for k := 3; k <= 6; k++ {
			f := NewBFSFilter(gr, k, active)
			for s := VID(0); int(s) < n; s++ {
				if f.CanPrune(s) {
					// Pruning must be sound for BOTH minLen settings.
					if hasCycleThroughOracle(gr, k, 2, active, s) {
						t.Fatalf("iter=%d k=%d s=%d: filter pruned a vertex on a cycle\ngraph=%v active=%v",
							iter, k, s, gr.Edges(), active)
					}
				}
			}
		}
	}
}

func TestBFSFilterExactWalkLengths(t *testing.T) {
	// 4-cycle: shortest closed walk through every vertex is 4.
	gr := g(4, 0, 1, 1, 2, 2, 3, 3, 0)
	f := NewBFSFilter(gr, 5, nil)
	for s := VID(0); s < 4; s++ {
		if got := f.ShortestClosedWalk(s); got != 4 {
			t.Fatalf("walk through %d = %d, want 4", s, got)
		}
	}
	// k=3 < 4: must prune.
	f3 := NewBFSFilter(gr, 3, nil)
	for s := VID(0); s < 4; s++ {
		if !f3.CanPrune(s) {
			t.Fatalf("k=3 should prune vertex %d of a 4-cycle", s)
		}
	}
	// 2-cycle gives walk length 2 and therefore never prunes.
	g2 := g(2, 0, 1, 1, 0)
	f2 := NewBFSFilter(g2, 4, nil)
	if got := f2.ShortestClosedWalk(0); got != 2 {
		t.Fatalf("walk through 2-cycle = %d, want 2", got)
	}
	if f2.CanPrune(0) {
		t.Fatal("2-cycle walk must not prune (inconclusive)")
	}
}

func TestBFSFilterNoInNeighbors(t *testing.T) {
	gr := g(3, 0, 1, 0, 2) // vertex 0 has no in-edges
	f := NewBFSFilter(gr, 5, nil)
	if !f.CanPrune(0) {
		t.Fatal("source vertex must be prunable")
	}
}

func TestEnumeratorKnownCounts(t *testing.T) {
	// Triangle with all 6 edges (complete digraph K3): cycles of length 3
	// are the two directed triangles; of length 2, three 2-cycles.
	gr := g(3, 0, 1, 1, 0, 1, 2, 2, 1, 0, 2, 2, 0)
	if got := NewEnumerator(gr, 3, 3, nil).Count(); got != 2 {
		t.Fatalf("triangles = %d, want 2", got)
	}
	if got := NewEnumerator(gr, 3, 2, nil).Count(); got != 5 {
		t.Fatalf("cycles len>=2 = %d, want 5", got)
	}
	// Directed n-cycle has exactly one cycle.
	gr2 := g(6, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0)
	if got := NewEnumerator(gr2, 6, 3, nil).Count(); got != 1 {
		t.Fatalf("6-ring cycles = %d, want 1", got)
	}
	if got := NewEnumerator(gr2, 5, 3, nil).Count(); got != 0 {
		t.Fatalf("6-ring with k=5 cycles = %d, want 0", got)
	}
}

func TestEnumeratorNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 88))
	for iter := 0; iter < 40; iter++ {
		n := 2 + rng.IntN(10)
		gr := randomTestGraph(rng, n, rng.IntN(3*n))
		seen := map[string]bool{}
		NewEnumerator(gr, 6, 3, nil).Visit(func(c []VID) bool {
			// Canonical form: rotation starting at min vertex (the
			// enumerator already does this), so byte-encode directly.
			key := ""
			for _, v := range c {
				key += string(rune(v)) + ","
			}
			if seen[key] {
				t.Fatalf("iter %d: duplicate cycle %v", iter, c)
			}
			seen[key] = true
			// Cycle must start at its minimum vertex.
			for _, v := range c[1:] {
				if v < c[0] {
					t.Fatalf("iter %d: cycle %v not rooted at min vertex", iter, c)
				}
			}
			return true
		})
	}
}

func TestEnumeratorEarlyStop(t *testing.T) {
	gr := g(3, 0, 1, 1, 2, 2, 0)
	e := NewEnumerator(gr, 3, 3, nil)
	calls := 0
	e.Visit(func([]VID) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("Visit made %d calls after stop, want 1", calls)
	}
	if !e.HasAny() {
		t.Fatal("HasAny should be true")
	}
}

func TestUnconstrainedHelper(t *testing.T) {
	gr := g(10, 0, 1, 1, 0)
	if got := Unconstrained(gr); got != 10 {
		t.Fatalf("Unconstrained = %d, want 10", got)
	}
	tiny := g(2, 0, 1)
	if got := Unconstrained(tiny); got != 3 {
		t.Fatalf("Unconstrained(tiny) = %d, want 3 (minimum legal k)", got)
	}
}

// The unconstrained setting (k = n) must find long cycles the constrained
// detectors reject.
func TestUnconstrainedFindsLongCycles(t *testing.T) {
	n := 50
	b := digraph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(VID(v), VID((v+1)%n))
	}
	gr := b.Build()
	if NewBlockDetector(gr, 7, 3, nil).HasCycleThrough(0) {
		t.Fatal("k=7 should miss the 50-cycle")
	}
	if !NewBlockDetector(gr, Unconstrained(gr), 3, nil).HasCycleThrough(0) {
		t.Fatal("unconstrained detector missed the 50-cycle")
	}
}

func TestValidatePanics(t *testing.T) {
	gr := g(3, 0, 1)
	cases := []func(){
		func() { NewPlainDetector(gr, 2, 3, nil) },          // k < minLen
		func() { NewPlainDetector(gr, 5, 1, nil) },          // minLen < 2
		func() { NewPlainDetector(gr, 5, 3, []bool{true}) }, // mask length
		func() { NewBFSFilter(gr, 1, nil) },                 // k < 2
		func() { NewBFSFilter(gr, 5, []bool{true}) },        // mask length
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// A hostile instance for the plain detector: a dense DAG reachable from
// the start vertex with no way back, forcing exhaustive exploration. The
// in-search cancellation hook must abort it.
func TestPlainDetectorAbortsMidSearch(t *testing.T) {
	n := 60
	b := digraph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(VID(u), VID(v)) // complete DAG: no cycles at all
		}
	}
	gr := b.Build()
	d := NewPlainDetector(gr, 12, 3, nil)
	calls := 0
	d.Cancelled = func() bool {
		calls++
		return true // abort at the first poll
	}
	if c := d.FindFrom(0); c != nil {
		t.Fatalf("found cycle %v in a DAG", c)
	}
	if !d.WasAborted() {
		t.Fatal("expected the query to abort")
	}
	if calls == 0 {
		t.Fatal("Cancelled never polled")
	}
	// The abort must cap the work: well under one full exploration.
	if d.Stats.EdgeScans > 3*4096 {
		t.Fatalf("aborted query scanned %d edges", d.Stats.EdgeScans)
	}
	// A repeated query aborts again (the hook still fires)...
	if d.FindFrom(0) != nil || !d.WasAborted() {
		t.Fatal("second aborted query misbehaved")
	}
	// ...and the abort flag is per-query state: a detector whose hook
	// never fires reports no abort. (Re-querying THIS graph without the
	// hook would be the exponential blow-up the hook exists to stop.)
	tri := g(3, 0, 1, 1, 2, 2, 0)
	d2 := NewPlainDetector(tri, 5, 3, nil)
	d2.Cancelled = func() bool { return false }
	if d2.FindFrom(0) == nil || d2.WasAborted() {
		t.Fatal("non-firing hook must not abort")
	}
}

func TestStatsAccumulate(t *testing.T) {
	gr := g(3, 0, 1, 1, 2, 2, 0)
	bd := NewBlockDetector(gr, 5, 3, nil)
	bd.FindFrom(0)
	bd.FindFrom(1)
	if bd.Stats.Queries != 2 || bd.Stats.CyclesFound != 2 || bd.Stats.Pushes == 0 {
		t.Fatalf("unexpected stats: %+v", bd.Stats)
	}
	var total Stats
	total.Add(bd.Stats)
	total.Add(bd.Stats)
	if total.Queries != 4 {
		t.Fatalf("Add broken: %+v", total)
	}
}
