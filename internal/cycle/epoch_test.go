package cycle

import (
	"math/rand/v2"
	"testing"

	"tdb/internal/digraph"
)

// White-box tests for the epoch-stamped scratch state: the O(1) reset must
// survive uint32 wraparound, which a long-lived detector will eventually
// hit (one epoch per query).

func TestEpochMarkBasics(t *testing.T) {
	e := newEpochMark(3)
	e.nextEpoch()
	if e.get(0) || e.get(1) {
		t.Fatal("fresh epoch must have no marks")
	}
	e.set(1)
	if !e.get(1) || e.get(0) {
		t.Fatal("set/get broken")
	}
	e.unset(1)
	if e.get(1) {
		t.Fatal("unset broken")
	}
	e.set(2)
	e.nextEpoch()
	if e.get(2) {
		t.Fatal("nextEpoch must clear marks")
	}
}

func TestEpochMarkWraparound(t *testing.T) {
	e := newEpochMark(2)
	e.cur = ^uint32(0) - 1 // two steps before wrap
	e.nextEpoch()          // cur = max
	e.set(0)
	if !e.get(0) {
		t.Fatal("mark at max epoch lost")
	}
	e.nextEpoch() // wraps: must clear and restart at 1
	if e.cur != 1 {
		t.Fatalf("cur = %d after wrap, want 1", e.cur)
	}
	if e.get(0) {
		t.Fatal("stale mark visible after wraparound")
	}
	e.set(1)
	if !e.get(1) {
		t.Fatal("marking after wraparound broken")
	}
}

func TestBlockDetectorEpochWraparound(t *testing.T) {
	gr := g(3, 0, 1, 1, 2, 2, 0)
	bd := NewBlockDetector(gr, 5, 3, nil)
	bd.FindFrom(0) // populate stamps at a low epoch
	bd.s.epoch = ^uint32(0) - 1
	for i := 0; i < 4; i++ { // crosses the wrap boundary
		if bd.FindFrom(0) == nil {
			t.Fatalf("query %d after epoch fast-forward missed the triangle", i)
		}
	}
	if bd.s.epoch == 0 {
		t.Fatal("epoch must never rest at 0")
	}
	// Correctness after wrap on a graph with real pruning state.
	rng := rand.New(rand.NewPCG(1, 1))
	b := digraph.NewBuilder(12)
	for i := 0; i < 40; i++ {
		b.AddEdge(VID(rng.IntN(12)), VID(rng.IntN(12)))
	}
	g2 := b.Build()
	bd2 := NewBlockDetector(g2, 4, 3, nil)
	want := make([]bool, 12)
	for v := range want {
		want[v] = hasCycleThroughOracle(g2, 4, 3, nil, VID(v))
	}
	bd2.s.epoch = ^uint32(0) - 3
	for round := 0; round < 3; round++ {
		for v := 0; v < 12; v++ {
			if got := bd2.HasCycleThrough(VID(v)); got != want[v] {
				t.Fatalf("round %d vertex %d: got %v want %v", round, v, got, want[v])
			}
		}
	}
}
