package cycle

import (
	"math/bits"
	"time"

	"tdb/internal/digraph"
)

// BatchWidth is the base lane capacity of the bit-parallel batched BFS
// filters: one uint64 word packs this many concurrent single-source BFS
// traversals, and every supported lane-group width is a multiple of it.
const BatchWidth = 64

// MaxBatchWidth is the widest supported lane group: eight words, 512
// concurrent traversals per bidirectional sweep.
const MaxBatchWidth = 512

// maxLaneWords is the word count of the widest lane group.
const maxLaneWords = MaxBatchWidth / BatchWidth

// PickLanes returns the lane-group width suited to batches of the given
// size: the widest supported group (64, 256 or 512 lanes) the batch can
// fill. Pass it to SetLanes when the caller knows its chunk size — the
// prepass chunk, a deferred-insertion queue, a whole-graph sweep.
func PickLanes(batch int) int {
	switch {
	case batch >= MaxBatchWidth:
		return MaxBatchWidth
	case batch >= 4*BatchWidth:
		return 4 * BatchWidth
	default:
		return BatchWidth
	}
}

// BatchBFSFilter is the bit-parallel batched form of BFSFilter: it answers
// up to MaxBatchWidth CanPrune queries with ONE bidirectional
// level-synchronous BFS. Each source occupies one bit lane of a lane GROUP
// of 1, 4 or 8 consecutive uint64 words — 64, 256 or 512 lanes; a vertex's
// group records which sources' traversals have settled it, and every edge
// scan ORs the scanning vertex's group into its successor — hundreds of
// queue-driven traversals collapse into group-wide sweeps whose edge
// expansions are shared by all lanes on the same frontier. SetLanes caps
// the group width per filter (default BatchWidth); within the cap each
// group runs at the narrowest width that covers it, so partial batches
// never pay for words they don't use, and every width produces
// bit-identical per-lane answers.
//
// The traversal meets in the middle. The scalar filter asks "is any
// IN-NEIGHBOR of s reachable from s within k-1 hops" — a forward search of
// depth k-1 against a backward radius of one. The batched filter balances
// the radii: a closed walk of length <= k through s exists if and only if
// some vertex is settled by a forward search within ceil(k/2) hops AND a
// backward search (following in-edges) within floor(k/2) hops — split the
// walk in the middle. Both searches advance one level at a time, smaller
// frontier first; a lane whose forward and backward settlements MEET has
// its closed walk and retires unpruned on the spot (the scalar filter's
// early return, per lane), a lane whose level-1 backward frontier is empty
// has no in-neighbor and retires pruned, and the sweep stops the moment
// every lane is decided. Keeping both frontiers shallow is where the win
// over depth-(k-1) forward search comes from; the answer is EXACTLY the
// scalar filter's, per lane, because both predicates are "shortest closed
// walk <= k". (Early frontier death only strengthens this: a side that
// exhausts before its depth cap has settled its complete reachable set, so
// the other side's cap alone bounds the meet.)
//
// Each level runs in two phases. EXPAND is a branch-free OR-scatter: for
// every frontier vertex u, the group of lanes that newly reached u is OR-ed
// into the pending group of each neighbor — no membership, settled or meet
// checks in the inner loop. CONSOLIDATE then walks the (deduplicated)
// pending vertices once: drops non-members, masks off lanes that already
// settled the vertex in this direction, retires lanes that meet the other
// direction's settlements, and compacts the survivors into the next
// frontier.
//
// The sweep body exists twice per filter: a one-word specialization
// (pruneWord, the historical code, whose lane ops are direct uint64
// arithmetic) and a stride-parameterized wide body (pruneWide) whose short
// counted loops amortize over 4-8 words per group. Generics cannot unify
// them without putting a dictionary call behind every lane op (measured
// ~2x); the pairs are pinned together by the width-sweep property tests —
// change them in lockstep.
//
// Like BFSFilter it carries both working-graph backends — an active mask
// over the CSR rows or a digraph.ActiveAdjacency view — via the shared
// adjacency layer, and both are retained, so activation changes between
// batches are visible to later batches.
type BatchBFSFilter struct {
	adjacency
	k     int
	lanes int // group-width cap; 0 means BatchWidth

	s *Scratch // lane group: per-width settlement maps, frontiers, touched

	Stats Stats
}

// NewBatchBFSFilter creates a batched filter for hop constraint k over the
// subgraph induced by active (nil = whole graph). The active slice is
// retained.
func NewBatchBFSFilter(g digraph.Adjacency, k int, active []bool) *BatchBFSFilter {
	return NewBatchBFSFilterWith(g, k, active, nil)
}

// NewBatchBFSFilterWith is NewBatchBFSFilter borrowing the lane buffers from
// s (nil allocates fresh scratch). See Scratch for the sharing rules.
func NewBatchBFSFilterWith(g digraph.Adjacency, k int, active []bool, s *Scratch) *BatchBFSFilter {
	if active != nil && len(active) != g.NumVertices() {
		panic("cycle: BatchBFSFilter active mask length mismatch")
	}
	if k < 2 {
		panic("cycle: BatchBFSFilter needs k >= 2")
	}
	return &BatchBFSFilter{
		adjacency: maskAdjacency(g, active), k: k,
		s: checkScratch(s, g.NumVertices()),
	}
}

// NewBatchBFSFilterView is NewBatchBFSFilterWith over an active-adjacency
// working-graph view instead of a mask: each sweep then expands exactly the
// live edges. The view is retained.
func NewBatchBFSFilterView(view *digraph.ActiveAdjacency, k int, s *Scratch) *BatchBFSFilter {
	if k < 2 {
		panic("cycle: BatchBFSFilter needs k >= 2")
	}
	return &BatchBFSFilter{
		adjacency: viewAdjacency(view), k: k,
		s: checkScratch(s, view.Len()),
	}
}

// SetLanes caps the filter's lane-group width, rounded down to the nearest
// supported width (64, 256, 512); use PickLanes to derive the cap from an
// expected batch size. Wider groups share more frontier work per sweep but
// spend more words per edge scan, so the cap should track how many queries
// arrive per CanPruneBatch call.
func (f *BatchBFSFilter) SetLanes(w int) { f.lanes = PickLanes(w) }

// Lanes returns the effective lane-group width cap.
func (f *BatchBFSFilter) Lanes() int {
	if f.lanes == 0 {
		return BatchWidth
	}
	return f.lanes
}

// CanPruneBatch sets pruned[i] to BFSFilter.CanPrune(sources[i]) for every
// source; len(pruned) must equal len(sources). Batches wider than the Lanes
// cap are processed in consecutive lane groups.
//
// Stats accounting: Queries and BFSPruned count per lane, exactly as a
// scalar query loop would; BFSVisited counts per-lane FORWARD settlements
// (one vertex settled by three lanes counts three); EdgeScans counts
// physical adjacency reads in both directions, each serving every lane on
// the frontier group.
func (f *BatchBFSFilter) CanPruneBatch(sources []VID, pruned []bool) {
	if len(sources) != len(pruned) {
		panic("cycle: BatchBFSFilter sources/pruned length mismatch")
	}
	w := f.Lanes()
	for len(sources) > w {
		f.pruneGroup(sources[:w], pruned[:w])
		sources, pruned = sources[w:], pruned[w:]
	}
	if len(sources) > 0 {
		f.pruneGroup(sources, pruned)
	}
}

// pruneGroup answers one lane group of at most Lanes sources, at the
// narrowest supported width that covers the group.
func (f *BatchBFSFilter) pruneGroup(sources []VID, pruned []bool) {
	switch {
	case len(sources) <= BatchWidth:
		f.pruneWord(sources, pruned)
	case len(sources) <= 4*BatchWidth:
		f.pruneWide(f.s.laneStateFor(4), 4, sources, pruned)
	default:
		f.pruneWide(f.s.laneStateFor(8), 8, sources, pruned)
	}
}

// VisitUnpruned sweeps every vertex of [0, n) through the filter and calls
// visit for each vertex it cannot prune. A false return from visit stops
// the sweep; VisitUnpruned reports whether the sweep ran to completion.
// This is the shared shape of the filter-then-detector loops
// (HasHopConstrainedCycle and friends). Group widths are chosen by a
// WidthLadder capped at Lanes: a sweep long enough to amortize the trials
// settles on the width the machine actually runs fastest, narrower sweeps
// stay at BatchWidth.
func (f *BatchBFSFilter) VisitUnpruned(n int, visit func(VID) bool) bool {
	var batch [MaxBatchWidth]VID
	var pruned [MaxBatchWidth]bool
	ladder := NewWidthLadder(f.Lanes())
	for lo := 0; lo < n; {
		width := ladder.Next()
		w := min(width, n-lo)
		for i := 0; i < w; i++ {
			batch[i] = VID(lo + i)
		}
		if ladder.Adapting() {
			t0 := time.Now()
			f.CanPruneBatch(batch[:w], pruned[:w])
			ladder.Observe(width, time.Since(t0), w)
		} else {
			f.CanPruneBatch(batch[:w], pruned[:w])
		}
		for i := 0; i < w; i++ {
			if !pruned[i] && !visit(VID(lo+i)) {
				return false
			}
		}
		lo += w
	}
	return true
}

// pruneWord answers one group of at most BatchWidth sources — the one-word
// specialization whose lane ops are direct uint64 arithmetic.
func (f *BatchBFSFilter) pruneWord(sources []VID, pruned []bool) {
	f.Stats.Batches++
	f.Stats.Queries += int64(len(sources))
	ls := f.s.laneStateFor(1)
	reachedF, reachedB := ls.reachedF, ls.reachedB
	curF, nextF, curB, nextB := ls.frontiers[0], ls.frontiers[1], ls.frontiers[2], ls.frontiers[3]
	touched := f.s.touched[:0]
	var edgeScans int64

	// Seed both directions at the sources. A lane's own bits guard both
	// sweeps against re-settling their source, which also keeps the source
	// from ever counting as its own meeting point (the scalar filter's
	// w != s rule).
	var alive uint64
	for i, src := range sources {
		pruned[i] = false
		if !f.startActive(src) {
			pruned[i] = true
			f.Stats.BFSPruned++
			continue
		}
		bit := uint64(1) << uint(i)
		alive |= bit
		if reachedF.Words[src] == 0 && reachedB.Words[src] == 0 {
			touched = append(touched, src)
		}
		reachedF.Words[src] |= bit
		reachedB.Words[src] |= bit
		curF.Push(src, bit)
		curB.Push(src, bit)
	}

	bmax := f.k / 2
	fmax := f.k - bmax
	fdist, bdist := 0, 0
	for alive != 0 {
		// Advance the smaller live frontier, within its depth cap; the
		// backward side breaks ties so level-1 in-neighbor marks come
		// first.
		back := bdist < bmax && curB.Len() > 0 &&
			(fdist >= fmax || curF.Len() == 0 || curB.Len() <= curF.Len())
		if !back && (fdist >= fmax || curF.Len() == 0) {
			break
		}
		var cur, next *digraph.LaneFrontier
		var settled, marks *digraph.LaneBits
		if back {
			bdist++
			cur, next, settled, marks = curB, nextB, reachedB, reachedF
		} else {
			fdist++
			cur, next, settled, marks = curF, nextF, reachedF, reachedB
		}

		// Expand: an OR-scatter whose only per-edge checks are the frontier
		// dedup and the meet test. The meet test is what preserves the
		// scalar filter's fail-fast behavior: a lane that touches a vertex
		// the opposite sweep has settled is retired mid-row, so groups
		// whose lanes all hit quickly (the dense late-loop regime) stop
		// after a handful of scans instead of completing the level. The
		// opposite side's settlements are already membership-filtered, so
		// the test needs no mask of its own.
		for _, u := range cur.Verts {
			lanes := cur.Bits.Words[u] & alive
			if lanes == 0 {
				continue
			}
			var row []VID
			if back {
				row = f.in(u)
			} else {
				row = f.out(u)
			}
			edgeScans += int64(len(row))
			for _, w := range row {
				// Self-loops never extend a walk the scalar filter would
				// count (a settled vertex re-settling itself), and at a
				// SOURCE a self-loop would meet the lane's own seed mark;
				// skip them, as the scalar filter's w != s / visited
				// checks do.
				if w == u {
					continue
				}
				// On the view path every scanned w is live; only the mask
				// filters, keeping non-members out of the scatter.
				if f.active != nil && !f.active[w] {
					continue
				}
				if h := lanes & marks.Words[w]; h != 0 {
					// Meet: a closed walk of length <= fdist+bdist <= k.
					alive &^= h
					lanes &^= h
					if lanes == 0 {
						break
					}
				}
				if next.Bits.Words[w] == 0 {
					next.Verts = append(next.Verts, w)
				}
				next.Bits.Words[w] |= lanes
			}
			if alive == 0 {
				break
			}
		}

		// Consolidate the pending vertices into the next frontier.
		kept := next.Verts[:0]
		var got uint64
		for _, w := range next.Verts {
			pend := next.Bits.Words[w]
			next.Bits.Words[w] = 0
			// On the view path every scanned w is live; only the mask
			// filters.
			if f.active != nil && !f.active[w] {
				continue
			}
			add := pend & alive &^ settled.Words[w]
			if add == 0 {
				continue
			}
			if h := add & marks.Words[w]; h != 0 {
				// Lanes h meet the opposite sweep at w: a closed walk of
				// length fdist+bdist <= k exists. Retire them unpruned.
				alive &^= h
				add &^= h
				if add == 0 {
					continue
				}
			}
			if settled.Words[w] == 0 && marks.Words[w] == 0 {
				touched = append(touched, w)
			}
			settled.Words[w] |= add
			got |= add
			if !back {
				f.Stats.BFSVisited += int64(bits.OnesCount64(add))
			}
			next.Bits.Words[w] = add
			kept = append(kept, w)
		}
		next.Verts = kept
		cur.Clear()
		if back {
			curB, nextB = next, cur
		} else {
			curF, nextF = next, cur
		}

		if back && bdist == 1 {
			// A lane that settled nothing at backward level 1 has no
			// active in-neighbor: no walk can close, prune immediately.
			for i := range sources {
				bit := uint64(1) << uint(i)
				if alive&bit != 0 && got&bit == 0 {
					alive &^= bit
					pruned[i] = true
					f.Stats.BFSPruned++
				}
			}
		}
	}
	f.Stats.EdgeScans += edgeScans

	// Lanes still alive never met: every closed walk through their source
	// is longer than k, so the source is pruned.
	for i := range sources {
		if alive&(uint64(1)<<uint(i)) != 0 {
			pruned[i] = true
			f.Stats.BFSPruned++
		}
	}

	// Return the lane buffers zeroed, clearing only what was touched.
	curF.Clear()
	nextF.Clear()
	curB.Clear()
	nextB.Clear()
	reachedF.ClearList(touched)
	reachedB.ClearList(touched)
	f.s.touched = touched[:0]
}

// seedPush merges one seed bit into v's nw-word frontier group (the cold
// seeding path of the wide bodies).
func seedPush(fr *digraph.LaneFrontier, v VID, nw, wi int, m uint64) {
	base := int(v) * nw
	g := fr.Bits.Words[base : base+nw]
	var had uint64
	for _, w := range g {
		had |= w
	}
	if had == 0 {
		fr.Verts = append(fr.Verts, v)
	}
	g[wi] |= m
}

// groupZero reports whether an nw-word group is all zero.
func groupZero(g []uint64) bool {
	var acc uint64
	for _, w := range g {
		acc |= w
	}
	return acc == 0
}

// pruneWide answers one group of 65..MaxBatchWidth sources at stride nw (4
// or 8 words). The body mirrors pruneWord with every lane op widened to a
// short counted loop over the group's words; the loops carry word-OR
// accumulators so the "is anything left" checks stay single-compare.
func (f *BatchBFSFilter) pruneWide(ls *laneState, nw int, sources []VID, pruned []bool) {
	f.Stats.Batches++
	f.Stats.Queries += int64(len(sources))
	reachedF, reachedB := ls.reachedF, ls.reachedB
	curF, nextF, curB, nextB := ls.frontiers[0], ls.frontiers[1], ls.frontiers[2], ls.frontiers[3]
	touched := f.s.touched[:0]
	var edgeScans int64

	var aliveBuf, laneBuf [maxLaneWords]uint64
	alive := aliveBuf[:nw]
	lanes := laneBuf[:nw] // scratch group: expand's live lanes, consolidate's add set
	var aliveAny uint64
	for i, src := range sources {
		pruned[i] = false
		if !f.startActive(src) {
			pruned[i] = true
			f.Stats.BFSPruned++
			continue
		}
		wi, m := i>>6, uint64(1)<<uint(i&63)
		alive[wi] |= m
		aliveAny |= m
		base := int(src) * nw
		if groupZero(reachedF.Words[base:base+nw]) && groupZero(reachedB.Words[base:base+nw]) {
			touched = append(touched, src)
		}
		reachedF.Words[base+wi] |= m
		reachedB.Words[base+wi] |= m
		seedPush(curF, src, nw, wi, m)
		seedPush(curB, src, nw, wi, m)
	}

	bmax := f.k / 2
	fmax := f.k - bmax
	fdist, bdist := 0, 0
	for aliveAny != 0 {
		back := bdist < bmax && curB.Len() > 0 &&
			(fdist >= fmax || curF.Len() == 0 || curB.Len() <= curF.Len())
		if !back && (fdist >= fmax || curF.Len() == 0) {
			break
		}
		var cur, next *digraph.LaneFrontier
		var settled, marks *digraph.LaneBits
		if back {
			bdist++
			cur, next, settled, marks = curB, nextB, reachedB, reachedF
		} else {
			fdist++
			cur, next, settled, marks = curF, nextF, reachedF, reachedB
		}

		// Expand (see pruneWord): per frontier vertex, lanes = live lanes
		// at u; per edge, mid-row meet test then OR-scatter.
		for _, u := range cur.Verts {
			ubase := int(u) * nw
			var laneAny uint64
			for j := 0; j < nw; j++ {
				lanes[j] = cur.Bits.Words[ubase+j] & alive[j]
				laneAny |= lanes[j]
			}
			if laneAny == 0 {
				continue
			}
			var row []VID
			if back {
				row = f.in(u)
			} else {
				row = f.out(u)
			}
			edgeScans += int64(len(row))
			for _, w := range row {
				if w == u {
					continue
				}
				if f.active != nil && !f.active[w] {
					continue
				}
				wbase := int(w) * nw
				mg := marks.Words[wbase : wbase+nw]
				var met uint64
				for j := 0; j < nw; j++ {
					met |= lanes[j] & mg[j]
				}
				if met != 0 {
					laneAny = 0
					for j := 0; j < nw; j++ {
						h := lanes[j] & mg[j]
						alive[j] &^= h
						lanes[j] &^= h
						laneAny |= lanes[j]
					}
					if laneAny == 0 {
						break
					}
				}
				ng := next.Bits.Words[wbase : wbase+nw]
				var had uint64
				for j := 0; j < nw; j++ {
					had |= ng[j]
				}
				if had == 0 {
					next.Verts = append(next.Verts, w)
				}
				for j := 0; j < nw; j++ {
					ng[j] |= lanes[j]
				}
			}
			aliveAny = 0
			for j := 0; j < nw; j++ {
				aliveAny |= alive[j]
			}
			if aliveAny == 0 {
				break
			}
		}

		// Consolidate (see pruneWord). The lanes buffer doubles as the add
		// set; pending groups are zeroed as they are read and rewritten to
		// the surviving add set when the vertex is kept.
		kept := next.Verts[:0]
		var gotBuf [maxLaneWords]uint64
		got := gotBuf[:nw]
		for _, w := range next.Verts {
			wbase := int(w) * nw
			pg := next.Bits.Words[wbase : wbase+nw]
			if f.active != nil && !f.active[w] {
				clear(pg)
				continue
			}
			sg := settled.Words[wbase : wbase+nw]
			mg := marks.Words[wbase : wbase+nw]
			add := lanes
			var addAny uint64
			for j := 0; j < nw; j++ {
				add[j] = pg[j] & alive[j] &^ sg[j]
				pg[j] = 0
				addAny |= add[j]
			}
			if addAny == 0 {
				continue
			}
			var met uint64
			for j := 0; j < nw; j++ {
				met |= add[j] & mg[j]
			}
			if met != 0 {
				addAny = 0
				for j := 0; j < nw; j++ {
					h := add[j] & mg[j]
					alive[j] &^= h
					add[j] &^= h
					addAny |= add[j]
				}
				if addAny == 0 {
					continue
				}
			}
			var seen uint64
			for j := 0; j < nw; j++ {
				seen |= sg[j] | mg[j]
			}
			if seen == 0 {
				touched = append(touched, w)
			}
			cnt := 0
			for j := 0; j < nw; j++ {
				sg[j] |= add[j]
				got[j] |= add[j]
				cnt += bits.OnesCount64(add[j])
				pg[j] = add[j]
			}
			if !back {
				f.Stats.BFSVisited += int64(cnt)
			}
			kept = append(kept, w)
		}
		next.Verts = kept
		cur.Clear()
		if back {
			curB, nextB = next, cur
		} else {
			curF, nextF = next, cur
		}

		if back && bdist == 1 {
			for i := range sources {
				wi, m := i>>6, uint64(1)<<uint(i&63)
				if alive[wi]&m != 0 && got[wi]&m == 0 {
					alive[wi] &^= m
					pruned[i] = true
					f.Stats.BFSPruned++
				}
			}
		}
		aliveAny = 0
		for j := 0; j < nw; j++ {
			aliveAny |= alive[j]
		}
	}
	f.Stats.EdgeScans += edgeScans

	for i := range sources {
		if alive[i>>6]&(uint64(1)<<uint(i&63)) != 0 {
			pruned[i] = true
			f.Stats.BFSPruned++
		}
	}

	curF.Clear()
	nextF.Clear()
	curB.Clear()
	nextB.Clear()
	reachedF.ClearList(touched)
	reachedB.ClearList(touched)
	f.s.touched = touched[:0]
}

// BatchPrefixFilter is BatchBFSFilter specialized to PREFIX subgraphs of a
// fixed candidate order, the batched counterpart of PrefixFilter: lane i
// runs on the subgraph induced by {v : pos[v] <= pos[sources[i]]} — each
// source's OWN prefix, exactly the graph the scalar prepass queried it on,
// so batching changes neither the resolution set nor any downstream cover.
// Like BatchBFSFilter it is width-capable: SetLanes caps the group width,
// and each group runs at the narrowest supported width that covers it.
//
// Per-lane prefixes cost one extra trick: sources must arrive in ascending
// position order (the candidate-order scan produces exactly that), which
// makes the lanes eligible to settle a vertex w — those with
// pos[source] >= pos[w] — a SUFFIX of the group, found by a short binary
// search over the group's source positions once per consolidated vertex and
// applied as one AND (per word on the wide paths).
//
// As with PrefixFilter vs BFSFilter, the sweep bodies duplicate
// BatchBFSFilter's rather than sharing a predicate-parameterized helper:
// the membership test sits in the hottest loop of the whole cover
// computation, and an indirect call there is measurable. The copies are
// pinned together by the bitfilter property tests; change them in lockstep.
type BatchPrefixFilter struct {
	g     digraph.Adjacency
	k     int
	pos   []int32 // pos[v] = rank of v in the candidate order
	lanes int     // group-width cap; 0 means BatchWidth

	srcPos [MaxBatchWidth]int32 // positions of the current group's sources

	s *Scratch // lane group: per-width settlement maps, frontiers, touched

	Stats Stats
}

// NewBatchPrefixFilterWith creates a batched prefix filter for hop
// constraint k over the order described by pos, borrowing the lane buffers
// from s (nil allocates fresh scratch). The pos slice is retained; it must
// not change during a CanPruneBatch call, but a single-goroutine owner may
// rewrite entries between calls (the top-down loop tracks its working graph
// that way). Concurrent filters may share one pos array as long as nobody
// writes it (the prepass does).
func NewBatchPrefixFilterWith(g digraph.Adjacency, k int, pos []int32, s *Scratch) *BatchPrefixFilter {
	f := &BatchPrefixFilter{}
	f.Reinit(g, k, pos, s)
	return f
}

// Reinit re-targets a (possibly pooled) filter in place — the effect of
// NewBatchPrefixFilterWith without the allocation. Stats restart at zero and
// the lane cap resets to the default; SetLanes again if the owner widened
// it.
func (f *BatchPrefixFilter) Reinit(g digraph.Adjacency, k int, pos []int32, s *Scratch) {
	if len(pos) != g.NumVertices() {
		panic("cycle: BatchPrefixFilter pos length mismatch")
	}
	if k < 2 {
		panic("cycle: BatchPrefixFilter needs k >= 2")
	}
	*f = BatchPrefixFilter{
		g: g, k: k, pos: pos,
		s: checkScratch(s, g.NumVertices()),
	}
}

// SetLanes caps the filter's lane-group width, rounded down to the nearest
// supported width (64, 256, 512); see BatchBFSFilter.SetLanes.
func (f *BatchPrefixFilter) SetLanes(w int) { f.lanes = PickLanes(w) }

// Lanes returns the effective lane-group width cap.
func (f *BatchPrefixFilter) Lanes() int {
	if f.lanes == 0 {
		return BatchWidth
	}
	return f.lanes
}

// CanPruneBatch sets pruned[i] to PrefixFilter.CanPrune(sources[i],
// pos[sources[i]]) for every source: each lane runs on its own source's
// prefix subgraph. Sources must be ordered by ascending position (the
// candidate-order scan produces exactly that); batches wider than the Lanes
// cap are processed in consecutive lane groups.
func (f *BatchPrefixFilter) CanPruneBatch(sources []VID, pruned []bool) {
	if len(sources) != len(pruned) {
		panic("cycle: BatchPrefixFilter sources/pruned length mismatch")
	}
	w := f.Lanes()
	for len(sources) > w {
		f.pruneGroup(sources[:w], pruned[:w])
		sources, pruned = sources[w:], pruned[w:]
	}
	if len(sources) > 0 {
		f.pruneGroup(sources, pruned)
	}
}

// pruneGroup answers one lane group of at most Lanes sources, at the
// narrowest supported width that covers the group.
func (f *BatchPrefixFilter) pruneGroup(sources []VID, pruned []bool) {
	switch {
	case len(sources) <= BatchWidth:
		f.pruneWord(sources, pruned)
	case len(sources) <= 4*BatchWidth:
		f.pruneWide(f.s.laneStateFor(4), 4, sources, pruned)
	default:
		f.pruneWide(f.s.laneStateFor(8), 8, sources, pruned)
	}
}

// searchPos returns the first index of srcPos (ascending) holding a
// position >= p — the start of the lane suffix eligible to settle a vertex
// at position p.
func searchPos(srcPos []int32, p int32) int {
	lo, hi := 0, len(srcPos)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if srcPos[mid] >= p {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// eligibleFrom returns the one-word lane set allowed to settle a vertex at
// position p — those with srcPos >= p, a suffix of the word since srcPos is
// ascending.
func eligibleFrom(srcPos []int32, p int32) uint64 {
	lo := searchPos(srcPos, p)
	if lo >= BatchWidth {
		return 0
	}
	return ^uint64(0) << uint(lo)
}

// pruneWord answers one group of at most BatchWidth sources — the one-word
// specialization. The body mirrors BatchBFSFilter.pruneWord with per-lane
// prefix membership pos[w] <= pos[source] enforced at consolidation.
func (f *BatchPrefixFilter) pruneWord(sources []VID, pruned []bool) {
	f.Stats.Batches++
	f.Stats.Queries += int64(len(sources))
	ls := f.s.laneStateFor(1)
	reachedF, reachedB := ls.reachedF, ls.reachedB
	curF, nextF, curB, nextB := ls.frontiers[0], ls.frontiers[1], ls.frontiers[2], ls.frontiers[3]
	touched := f.s.touched[:0]
	var edgeScans int64

	srcPos := f.srcPos[:len(sources)]
	var alive uint64
	for i, src := range sources {
		pruned[i] = false
		p := f.pos[src]
		if i > 0 && p < srcPos[i-1] {
			panic("cycle: BatchPrefixFilter sources not in ascending position order")
		}
		srcPos[i] = p
		bit := uint64(1) << uint(i)
		alive |= bit
		if reachedF.Words[src] == 0 && reachedB.Words[src] == 0 {
			touched = append(touched, src)
		}
		reachedF.Words[src] |= bit
		reachedB.Words[src] |= bit
		curF.Push(src, bit)
		curB.Push(src, bit)
	}
	// Vertices beyond the widest lane's prefix are ineligible for EVERY
	// lane; one compare against this bound keeps them out of the scatter
	// entirely (the per-lane suffix masks then refine at consolidation).
	maxLimit := srcPos[len(srcPos)-1]

	bmax := f.k / 2
	fmax := f.k - bmax
	fdist, bdist := 0, 0
	for alive != 0 {
		back := bdist < bmax && curB.Len() > 0 &&
			(fdist >= fmax || curF.Len() == 0 || curB.Len() <= curF.Len())
		if !back && (fdist >= fmax || curF.Len() == 0) {
			break
		}
		var cur, next *digraph.LaneFrontier
		var settled, marks *digraph.LaneBits
		if back {
			bdist++
			cur, next, settled, marks = curB, nextB, reachedB, reachedF
		} else {
			fdist++
			cur, next, settled, marks = curF, nextF, reachedF, reachedB
		}

		for _, u := range cur.Verts {
			lanes := cur.Bits.Words[u] & alive
			if lanes == 0 {
				continue
			}
			var row []VID
			if back {
				row = f.g.In(u)
			} else {
				row = f.g.Out(u)
			}
			edgeScans += int64(len(row))
			for _, w := range row {
				// Self-loops never extend a walk (see BatchBFSFilter).
				if w == u || f.pos[w] > maxLimit {
					continue
				}
				// Mid-row meet test; the opposite side's settlements are
				// already eligibility-filtered, so no mask is needed here.
				if h := lanes & marks.Words[w]; h != 0 {
					alive &^= h
					lanes &^= h
					if lanes == 0 {
						break
					}
				}
				if next.Bits.Words[w] == 0 {
					next.Verts = append(next.Verts, w)
				}
				next.Bits.Words[w] |= lanes
			}
			if alive == 0 {
				break
			}
		}

		kept := next.Verts[:0]
		var got uint64
		minLimit := srcPos[0]
		for _, w := range next.Verts {
			pend := next.Bits.Words[w]
			next.Bits.Words[w] = 0
			add := pend & alive &^ settled.Words[w]
			// Vertices below the narrowest lane's prefix (the bulk of the
			// prefix graph) are eligible for every lane; only the window
			// between the group's limits needs the suffix search.
			if p := f.pos[w]; p > minLimit {
				add &= eligibleFrom(srcPos, p)
			}
			if add == 0 {
				continue
			}
			if h := add & marks.Words[w]; h != 0 {
				alive &^= h
				add &^= h
				if add == 0 {
					continue
				}
			}
			if settled.Words[w] == 0 && marks.Words[w] == 0 {
				touched = append(touched, w)
			}
			settled.Words[w] |= add
			got |= add
			if !back {
				f.Stats.BFSVisited += int64(bits.OnesCount64(add))
			}
			next.Bits.Words[w] = add
			kept = append(kept, w)
		}
		next.Verts = kept
		cur.Clear()
		if back {
			curB, nextB = next, cur
		} else {
			curF, nextF = next, cur
		}

		if back && bdist == 1 {
			for i := range sources {
				bit := uint64(1) << uint(i)
				if alive&bit != 0 && got&bit == 0 {
					alive &^= bit
					pruned[i] = true
					f.Stats.BFSPruned++
				}
			}
		}
	}
	f.Stats.EdgeScans += edgeScans

	for i := range sources {
		if alive&(uint64(1)<<uint(i)) != 0 {
			pruned[i] = true
			f.Stats.BFSPruned++
		}
	}

	curF.Clear()
	nextF.Clear()
	curB.Clear()
	nextB.Clear()
	reachedF.ClearList(touched)
	reachedB.ClearList(touched)
	f.s.touched = touched[:0]
}

// pruneWide answers one group of 65..MaxBatchWidth sources at stride nw (4
// or 8 words) — BatchBFSFilter.pruneWide with the prefix filter's
// membership rules: the maxLimit bound in the scatter and the per-lane
// suffix eligibility mask, applied word-by-word, at consolidation.
func (f *BatchPrefixFilter) pruneWide(ls *laneState, nw int, sources []VID, pruned []bool) {
	f.Stats.Batches++
	f.Stats.Queries += int64(len(sources))
	reachedF, reachedB := ls.reachedF, ls.reachedB
	curF, nextF, curB, nextB := ls.frontiers[0], ls.frontiers[1], ls.frontiers[2], ls.frontiers[3]
	touched := f.s.touched[:0]
	var edgeScans int64

	srcPos := f.srcPos[:len(sources)]
	var aliveBuf, laneBuf [maxLaneWords]uint64
	alive := aliveBuf[:nw]
	lanes := laneBuf[:nw] // scratch group: expand's live lanes, consolidate's add set
	var aliveAny uint64
	for i, src := range sources {
		pruned[i] = false
		p := f.pos[src]
		if i > 0 && p < srcPos[i-1] {
			panic("cycle: BatchPrefixFilter sources not in ascending position order")
		}
		srcPos[i] = p
		wi, m := i>>6, uint64(1)<<uint(i&63)
		alive[wi] |= m
		aliveAny |= m
		base := int(src) * nw
		if groupZero(reachedF.Words[base:base+nw]) && groupZero(reachedB.Words[base:base+nw]) {
			touched = append(touched, src)
		}
		reachedF.Words[base+wi] |= m
		reachedB.Words[base+wi] |= m
		seedPush(curF, src, nw, wi, m)
		seedPush(curB, src, nw, wi, m)
	}
	maxLimit := srcPos[len(srcPos)-1]

	bmax := f.k / 2
	fmax := f.k - bmax
	fdist, bdist := 0, 0
	for aliveAny != 0 {
		back := bdist < bmax && curB.Len() > 0 &&
			(fdist >= fmax || curF.Len() == 0 || curB.Len() <= curF.Len())
		if !back && (fdist >= fmax || curF.Len() == 0) {
			break
		}
		var cur, next *digraph.LaneFrontier
		var settled, marks *digraph.LaneBits
		if back {
			bdist++
			cur, next, settled, marks = curB, nextB, reachedB, reachedF
		} else {
			fdist++
			cur, next, settled, marks = curF, nextF, reachedF, reachedB
		}

		for _, u := range cur.Verts {
			ubase := int(u) * nw
			var laneAny uint64
			for j := 0; j < nw; j++ {
				lanes[j] = cur.Bits.Words[ubase+j] & alive[j]
				laneAny |= lanes[j]
			}
			if laneAny == 0 {
				continue
			}
			var row []VID
			if back {
				row = f.g.In(u)
			} else {
				row = f.g.Out(u)
			}
			edgeScans += int64(len(row))
			for _, w := range row {
				if w == u || f.pos[w] > maxLimit {
					continue
				}
				wbase := int(w) * nw
				mg := marks.Words[wbase : wbase+nw]
				var met uint64
				for j := 0; j < nw; j++ {
					met |= lanes[j] & mg[j]
				}
				if met != 0 {
					laneAny = 0
					for j := 0; j < nw; j++ {
						h := lanes[j] & mg[j]
						alive[j] &^= h
						lanes[j] &^= h
						laneAny |= lanes[j]
					}
					if laneAny == 0 {
						break
					}
				}
				ng := next.Bits.Words[wbase : wbase+nw]
				var had uint64
				for j := 0; j < nw; j++ {
					had |= ng[j]
				}
				if had == 0 {
					next.Verts = append(next.Verts, w)
				}
				for j := 0; j < nw; j++ {
					ng[j] |= lanes[j]
				}
			}
			aliveAny = 0
			for j := 0; j < nw; j++ {
				aliveAny |= alive[j]
			}
			if aliveAny == 0 {
				break
			}
		}

		kept := next.Verts[:0]
		var gotBuf [maxLaneWords]uint64
		got := gotBuf[:nw]
		minLimit := srcPos[0]
		for _, w := range next.Verts {
			wbase := int(w) * nw
			pg := next.Bits.Words[wbase : wbase+nw]
			sg := settled.Words[wbase : wbase+nw]
			mg := marks.Words[wbase : wbase+nw]
			add := lanes
			var addAny uint64
			for j := 0; j < nw; j++ {
				add[j] = pg[j] & alive[j] &^ sg[j]
				pg[j] = 0
				addAny |= add[j]
			}
			if addAny == 0 {
				continue
			}
			// Per-lane prefix eligibility: mask the add set to the lane
			// suffix whose prefixes contain w (word-by-word application of
			// the one-word suffix mask).
			if p := f.pos[w]; p > minLimit {
				lo := searchPos(srcPos, p)
				addAny = 0
				for j := 0; j < nw; j++ {
					switch base := j * BatchWidth; {
					case lo <= base:
						// Whole word eligible.
					case lo >= base+BatchWidth:
						add[j] = 0
					default:
						add[j] &= ^uint64(0) << uint(lo-base)
					}
					addAny |= add[j]
				}
				if addAny == 0 {
					continue
				}
			}
			var met uint64
			for j := 0; j < nw; j++ {
				met |= add[j] & mg[j]
			}
			if met != 0 {
				addAny = 0
				for j := 0; j < nw; j++ {
					h := add[j] & mg[j]
					alive[j] &^= h
					add[j] &^= h
					addAny |= add[j]
				}
				if addAny == 0 {
					continue
				}
			}
			var seen uint64
			for j := 0; j < nw; j++ {
				seen |= sg[j] | mg[j]
			}
			if seen == 0 {
				touched = append(touched, w)
			}
			cnt := 0
			for j := 0; j < nw; j++ {
				sg[j] |= add[j]
				got[j] |= add[j]
				cnt += bits.OnesCount64(add[j])
				pg[j] = add[j]
			}
			if !back {
				f.Stats.BFSVisited += int64(cnt)
			}
			kept = append(kept, w)
		}
		next.Verts = kept
		cur.Clear()
		if back {
			curB, nextB = next, cur
		} else {
			curF, nextF = next, cur
		}

		if back && bdist == 1 {
			for i := range sources {
				wi, m := i>>6, uint64(1)<<uint(i&63)
				if alive[wi]&m != 0 && got[wi]&m == 0 {
					alive[wi] &^= m
					pruned[i] = true
					f.Stats.BFSPruned++
				}
			}
		}
		aliveAny = 0
		for j := 0; j < nw; j++ {
			aliveAny |= alive[j]
		}
	}
	f.Stats.EdgeScans += edgeScans

	for i := range sources {
		if alive[i>>6]&(uint64(1)<<uint(i&63)) != 0 {
			pruned[i] = true
			f.Stats.BFSPruned++
		}
	}

	curF.Clear()
	nextF.Clear()
	curB.Clear()
	nextB.Clear()
	reachedF.ClearList(touched)
	reachedB.ClearList(touched)
	f.s.touched = touched[:0]
}
