package cycle

import (
	"math/bits"

	"tdb/internal/digraph"
)

// BatchWidth is the lane capacity of the bit-parallel batched BFS filters:
// one uint64 word packs this many concurrent single-source BFS traversals.
const BatchWidth = 64

// BatchBFSFilter is the bit-parallel batched form of BFSFilter: it answers
// up to BatchWidth CanPrune queries with ONE bidirectional level-synchronous
// BFS. Each source occupies one bit lane of a uint64 word; a vertex's lane
// word records which sources' traversals have settled it, and every edge
// scan ORs the scanning vertex's lane word into its successor — 64
// queue-driven traversals collapse into word-wide sweeps whose edge
// expansions are shared by all lanes on the same frontier.
//
// The traversal meets in the middle. The scalar filter asks "is any
// IN-NEIGHBOR of s reachable from s within k-1 hops" — a forward search of
// depth k-1 against a backward radius of one. The batched filter balances
// the radii: a closed walk of length <= k through s exists if and only if
// some vertex is settled by a forward search within ceil(k/2) hops AND a
// backward search (following in-edges) within floor(k/2) hops — split the
// walk in the middle. Both searches advance one level at a time, smaller
// frontier first; a lane whose forward and backward settlements MEET has
// its closed walk and retires unpruned on the spot (the scalar filter's
// early return, per lane), a lane whose level-1 backward frontier is empty
// has no in-neighbor and retires pruned, and the sweep stops the moment
// every lane is decided. Keeping both frontiers shallow is where the win
// over depth-(k-1) forward search comes from; the answer is EXACTLY the
// scalar filter's, per lane, because both predicates are "shortest closed
// walk <= k". (Early frontier death only strengthens this: a side that
// exhausts before its depth cap has settled its complete reachable set, so
// the other side's cap alone bounds the meet.)
//
// Each level runs in two phases. EXPAND is a branch-free OR-scatter: for
// every frontier vertex u, the word of lanes that newly reached u is OR-ed
// into the pending word of each neighbor — no membership, settled or meet
// checks in the inner loop. CONSOLIDATE then walks the (deduplicated)
// pending vertices once: drops non-members, masks off lanes that already
// settled the vertex in this direction, retires lanes that meet the other
// direction's settlements, and compacts the survivors into the next
// frontier.
//
// Like BFSFilter it carries both working-graph backends — an active mask
// over the CSR rows or a digraph.ActiveAdjacency view — via the shared
// adjacency layer, and both are retained, so activation changes between
// batches are visible to later batches.
type BatchBFSFilter struct {
	adjacency
	k int

	s *Scratch // lane group: reachedF/reachedB, frontiers, touched

	Stats Stats
}

// NewBatchBFSFilter creates a batched filter for hop constraint k over the
// subgraph induced by active (nil = whole graph). The active slice is
// retained.
func NewBatchBFSFilter(g *digraph.Graph, k int, active []bool) *BatchBFSFilter {
	return NewBatchBFSFilterWith(g, k, active, nil)
}

// NewBatchBFSFilterWith is NewBatchBFSFilter borrowing the lane buffers from
// s (nil allocates fresh scratch). See Scratch for the sharing rules.
func NewBatchBFSFilterWith(g *digraph.Graph, k int, active []bool, s *Scratch) *BatchBFSFilter {
	if active != nil && len(active) != g.NumVertices() {
		panic("cycle: BatchBFSFilter active mask length mismatch")
	}
	if k < 2 {
		panic("cycle: BatchBFSFilter needs k >= 2")
	}
	return &BatchBFSFilter{
		adjacency: maskAdjacency(g, active), k: k,
		s: checkScratch(s, g.NumVertices()),
	}
}

// NewBatchBFSFilterView is NewBatchBFSFilterWith over an active-adjacency
// working-graph view instead of a mask: each sweep then expands exactly the
// live edges. The view is retained.
func NewBatchBFSFilterView(view *digraph.ActiveAdjacency, k int, s *Scratch) *BatchBFSFilter {
	if k < 2 {
		panic("cycle: BatchBFSFilter needs k >= 2")
	}
	return &BatchBFSFilter{
		adjacency: viewAdjacency(view), k: k,
		s: checkScratch(s, view.Len()),
	}
}

// CanPruneBatch sets pruned[i] to BFSFilter.CanPrune(sources[i]) for every
// source; len(pruned) must equal len(sources). Batches wider than
// BatchWidth are processed in consecutive 64-lane words.
//
// Stats accounting: Queries and BFSPruned count per lane, exactly as a
// scalar query loop would; BFSVisited counts per-lane FORWARD settlements
// (one vertex settled by three lanes counts three); EdgeScans counts
// physical adjacency reads in both directions, each serving every lane on
// the frontier word.
func (f *BatchBFSFilter) CanPruneBatch(sources []VID, pruned []bool) {
	if len(sources) != len(pruned) {
		panic("cycle: BatchBFSFilter sources/pruned length mismatch")
	}
	for len(sources) > BatchWidth {
		f.pruneWord(sources[:BatchWidth], pruned[:BatchWidth])
		sources, pruned = sources[BatchWidth:], pruned[BatchWidth:]
	}
	if len(sources) > 0 {
		f.pruneWord(sources, pruned)
	}
}

// VisitUnpruned sweeps every vertex of [0, n) through the filter in words
// of BatchWidth and calls visit for each vertex it cannot prune. A false
// return from visit stops the sweep; VisitUnpruned reports whether the
// sweep ran to completion. This is the shared shape of the
// filter-then-detector loops (HasHopConstrainedCycle and friends).
func (f *BatchBFSFilter) VisitUnpruned(n int, visit func(VID) bool) bool {
	var batch [BatchWidth]VID
	var pruned [BatchWidth]bool
	for lo := 0; lo < n; lo += BatchWidth {
		w := min(BatchWidth, n-lo)
		for i := 0; i < w; i++ {
			batch[i] = VID(lo + i)
		}
		f.CanPruneBatch(batch[:w], pruned[:w])
		for i := 0; i < w; i++ {
			if !pruned[i] && !visit(VID(lo+i)) {
				return false
			}
		}
	}
	return true
}

// pruneWord answers one word of at most BatchWidth sources.
func (f *BatchBFSFilter) pruneWord(sources []VID, pruned []bool) {
	f.Stats.Batches++
	f.Stats.Queries += int64(len(sources))
	reachedF, reachedB, fr := f.s.laneBuffers()
	curF, nextF, curB, nextB := fr[0], fr[1], fr[2], fr[3]
	touched := f.s.touched[:0]
	var edgeScans int64

	// Seed both directions at the sources. A lane's own bits guard both
	// sweeps against re-settling their source, which also keeps the source
	// from ever counting as its own meeting point (the scalar filter's
	// w != s rule).
	var alive uint64
	for i, src := range sources {
		pruned[i] = false
		if !f.startActive(src) {
			pruned[i] = true
			f.Stats.BFSPruned++
			continue
		}
		bit := uint64(1) << uint(i)
		alive |= bit
		if reachedF.Words[src] == 0 && reachedB.Words[src] == 0 {
			touched = append(touched, src)
		}
		reachedF.Words[src] |= bit
		reachedB.Words[src] |= bit
		curF.Push(src, bit)
		curB.Push(src, bit)
	}

	bmax := f.k / 2
	fmax := f.k - bmax
	fdist, bdist := 0, 0
	for alive != 0 {
		// Advance the smaller live frontier, within its depth cap; the
		// backward side breaks ties so level-1 in-neighbor marks come
		// first.
		back := bdist < bmax && curB.Len() > 0 &&
			(fdist >= fmax || curF.Len() == 0 || curB.Len() <= curF.Len())
		if !back && (fdist >= fmax || curF.Len() == 0) {
			break
		}
		var cur, next *digraph.LaneFrontier
		var settled, marks *digraph.Bitset64
		if back {
			bdist++
			cur, next, settled, marks = curB, nextB, reachedB, reachedF
		} else {
			fdist++
			cur, next, settled, marks = curF, nextF, reachedF, reachedB
		}

		// Expand: an OR-scatter whose only per-edge checks are the frontier
		// dedup and the meet test. The meet test is what preserves the
		// scalar filter's fail-fast behavior: a lane that touches a vertex
		// the opposite sweep has settled is retired mid-row, so words
		// whose lanes all hit quickly (the dense late-loop regime) stop
		// after a handful of scans instead of completing the level. The
		// opposite side's settlements are already membership-filtered, so
		// the test needs no mask of its own.
		for _, u := range cur.Verts {
			lanes := cur.Bits.Words[u] & alive
			if lanes == 0 {
				continue
			}
			var row []VID
			if back {
				row = f.in(u)
			} else {
				row = f.out(u)
			}
			edgeScans += int64(len(row))
			for _, w := range row {
				// Self-loops never extend a walk the scalar filter would
				// count (a settled vertex re-settling itself), and at a
				// SOURCE a self-loop would meet the lane's own seed mark;
				// skip them, as the scalar filter's w != s / visited
				// checks do.
				if w == u {
					continue
				}
				// On the view path every scanned w is live; only the mask
				// filters, keeping non-members out of the scatter.
				if f.active != nil && !f.active[w] {
					continue
				}
				if h := lanes & marks.Words[w]; h != 0 {
					// Meet: a closed walk of length <= fdist+bdist <= k.
					alive &^= h
					lanes &^= h
					if lanes == 0 {
						break
					}
				}
				if next.Bits.Words[w] == 0 {
					next.Verts = append(next.Verts, w)
				}
				next.Bits.Words[w] |= lanes
			}
			if alive == 0 {
				break
			}
		}

		// Consolidate the pending vertices into the next frontier.
		kept := next.Verts[:0]
		var got uint64
		for _, w := range next.Verts {
			pend := next.Bits.Words[w]
			next.Bits.Words[w] = 0
			// On the view path every scanned w is live; only the mask
			// filters.
			if f.active != nil && !f.active[w] {
				continue
			}
			add := pend & alive &^ settled.Words[w]
			if add == 0 {
				continue
			}
			if h := add & marks.Words[w]; h != 0 {
				// Lanes h meet the opposite sweep at w: a closed walk of
				// length fdist+bdist <= k exists. Retire them unpruned.
				alive &^= h
				add &^= h
				if add == 0 {
					continue
				}
			}
			if settled.Words[w] == 0 && marks.Words[w] == 0 {
				touched = append(touched, w)
			}
			settled.Words[w] |= add
			got |= add
			if !back {
				f.Stats.BFSVisited += int64(bits.OnesCount64(add))
			}
			next.Bits.Words[w] = add
			kept = append(kept, w)
		}
		next.Verts = kept
		cur.Clear()
		if back {
			curB, nextB = next, cur
		} else {
			curF, nextF = next, cur
		}

		if back && bdist == 1 {
			// A lane that settled nothing at backward level 1 has no
			// active in-neighbor: no walk can close, prune immediately.
			for i := range sources {
				bit := uint64(1) << uint(i)
				if alive&bit != 0 && got&bit == 0 {
					alive &^= bit
					pruned[i] = true
					f.Stats.BFSPruned++
				}
			}
		}
	}
	f.Stats.EdgeScans += edgeScans

	// Lanes still alive never met: every closed walk through their source
	// is longer than k, so the source is pruned.
	for i := range sources {
		if alive&(uint64(1)<<uint(i)) != 0 {
			pruned[i] = true
			f.Stats.BFSPruned++
		}
	}

	// Return the lane buffers zeroed, clearing only what was touched.
	curF.Clear()
	nextF.Clear()
	curB.Clear()
	nextB.Clear()
	reachedF.ClearList(touched)
	reachedB.ClearList(touched)
	f.s.touched = touched[:0]
}

// BatchPrefixFilter is BatchBFSFilter specialized to PREFIX subgraphs of a
// fixed candidate order, the batched counterpart of PrefixFilter: lane i
// runs on the subgraph induced by {v : pos[v] <= pos[sources[i]]} — each
// source's OWN prefix, exactly the graph the scalar prepass queried it on,
// so batching changes neither the resolution set nor any downstream cover.
//
// Per-lane prefixes cost one extra trick: sources must arrive in ascending
// position order (the candidate-order scan produces exactly that), which
// makes the lanes eligible to settle a vertex w — those with
// pos[source] >= pos[w] — a SUFFIX of the word, found by a short binary
// search over the word's source positions once per consolidated vertex and
// applied as one AND.
//
// As with PrefixFilter vs BFSFilter, the sweep body duplicates
// BatchBFSFilter.pruneWord rather than sharing a predicate-parameterized
// helper: the membership test sits in the hottest loop of the whole cover
// computation, and an indirect call there is measurable. The copies are
// pinned together by the bitfilter property tests; change them in lockstep.
type BatchPrefixFilter struct {
	g   *digraph.Graph
	k   int
	pos []int32 // pos[v] = rank of v in the candidate order

	srcPos [BatchWidth]int32 // positions of the current word's sources

	s *Scratch // lane group: reachedF/reachedB, frontiers, touched

	Stats Stats
}

// NewBatchPrefixFilterWith creates a batched prefix filter for hop
// constraint k over the order described by pos, borrowing the lane buffers
// from s (nil allocates fresh scratch). The pos slice is retained; it must
// not change during a CanPruneBatch call, but a single-goroutine owner may
// rewrite entries between calls (the top-down loop tracks its working graph
// that way). Concurrent filters may share one pos array as long as nobody
// writes it (the prepass does).
func NewBatchPrefixFilterWith(g *digraph.Graph, k int, pos []int32, s *Scratch) *BatchPrefixFilter {
	f := &BatchPrefixFilter{}
	f.Reinit(g, k, pos, s)
	return f
}

// Reinit re-targets a (possibly pooled) filter in place — the effect of
// NewBatchPrefixFilterWith without the allocation. Stats restart at zero.
func (f *BatchPrefixFilter) Reinit(g *digraph.Graph, k int, pos []int32, s *Scratch) {
	if len(pos) != g.NumVertices() {
		panic("cycle: BatchPrefixFilter pos length mismatch")
	}
	if k < 2 {
		panic("cycle: BatchPrefixFilter needs k >= 2")
	}
	*f = BatchPrefixFilter{
		g: g, k: k, pos: pos,
		s: checkScratch(s, g.NumVertices()),
	}
}

// CanPruneBatch sets pruned[i] to PrefixFilter.CanPrune(sources[i],
// pos[sources[i]]) for every source: each lane runs on its own source's
// prefix subgraph. Sources must be ordered by ascending position (the
// candidate-order scan produces exactly that); batches wider than
// BatchWidth are processed in consecutive 64-lane words.
func (f *BatchPrefixFilter) CanPruneBatch(sources []VID, pruned []bool) {
	if len(sources) != len(pruned) {
		panic("cycle: BatchPrefixFilter sources/pruned length mismatch")
	}
	for len(sources) > BatchWidth {
		f.pruneWord(sources[:BatchWidth], pruned[:BatchWidth])
		sources, pruned = sources[BatchWidth:], pruned[BatchWidth:]
	}
	if len(sources) > 0 {
		f.pruneWord(sources, pruned)
	}
}

// eligibleFrom returns the word of lanes allowed to settle a vertex at
// position p — those with srcPos >= p, a suffix of the word since srcPos is
// ascending. Binary search over at most BatchWidth positions.
func eligibleFrom(srcPos []int32, p int32) uint64 {
	lo, hi := 0, len(srcPos)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if srcPos[mid] >= p {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= BatchWidth {
		return 0
	}
	return ^uint64(0) << uint(lo)
}

// pruneWord answers one word of at most BatchWidth sources. The body
// mirrors BatchBFSFilter.pruneWord with per-lane prefix membership
// pos[w] <= pos[source] enforced at consolidation.
func (f *BatchPrefixFilter) pruneWord(sources []VID, pruned []bool) {
	f.Stats.Batches++
	f.Stats.Queries += int64(len(sources))
	reachedF, reachedB, fr := f.s.laneBuffers()
	curF, nextF, curB, nextB := fr[0], fr[1], fr[2], fr[3]
	touched := f.s.touched[:0]
	var edgeScans int64

	srcPos := f.srcPos[:len(sources)]
	var alive uint64
	for i, src := range sources {
		pruned[i] = false
		p := f.pos[src]
		if i > 0 && p < srcPos[i-1] {
			panic("cycle: BatchPrefixFilter sources not in ascending position order")
		}
		srcPos[i] = p
		bit := uint64(1) << uint(i)
		alive |= bit
		if reachedF.Words[src] == 0 && reachedB.Words[src] == 0 {
			touched = append(touched, src)
		}
		reachedF.Words[src] |= bit
		reachedB.Words[src] |= bit
		curF.Push(src, bit)
		curB.Push(src, bit)
	}
	// Vertices beyond the widest lane's prefix are ineligible for EVERY
	// lane; one compare against this bound keeps them out of the scatter
	// entirely (the per-lane suffix masks then refine at consolidation).
	maxLimit := srcPos[len(srcPos)-1]

	bmax := f.k / 2
	fmax := f.k - bmax
	fdist, bdist := 0, 0
	for alive != 0 {
		back := bdist < bmax && curB.Len() > 0 &&
			(fdist >= fmax || curF.Len() == 0 || curB.Len() <= curF.Len())
		if !back && (fdist >= fmax || curF.Len() == 0) {
			break
		}
		var cur, next *digraph.LaneFrontier
		var settled, marks *digraph.Bitset64
		if back {
			bdist++
			cur, next, settled, marks = curB, nextB, reachedB, reachedF
		} else {
			fdist++
			cur, next, settled, marks = curF, nextF, reachedF, reachedB
		}

		for _, u := range cur.Verts {
			lanes := cur.Bits.Words[u] & alive
			if lanes == 0 {
				continue
			}
			var row []VID
			if back {
				row = f.g.In(u)
			} else {
				row = f.g.Out(u)
			}
			edgeScans += int64(len(row))
			for _, w := range row {
				// Self-loops never extend a walk (see BatchBFSFilter).
				if w == u || f.pos[w] > maxLimit {
					continue
				}
				// Mid-row meet test; the opposite side's settlements are
				// already eligibility-filtered, so no mask is needed here.
				if h := lanes & marks.Words[w]; h != 0 {
					alive &^= h
					lanes &^= h
					if lanes == 0 {
						break
					}
				}
				if next.Bits.Words[w] == 0 {
					next.Verts = append(next.Verts, w)
				}
				next.Bits.Words[w] |= lanes
			}
			if alive == 0 {
				break
			}
		}

		kept := next.Verts[:0]
		var got uint64
		minLimit := srcPos[0]
		for _, w := range next.Verts {
			pend := next.Bits.Words[w]
			next.Bits.Words[w] = 0
			add := pend & alive &^ settled.Words[w]
			// Vertices below the narrowest lane's prefix (the bulk of the
			// prefix graph) are eligible for every lane; only the window
			// between the word's limits needs the suffix search.
			if p := f.pos[w]; p > minLimit {
				add &= eligibleFrom(srcPos, p)
			}
			if add == 0 {
				continue
			}
			if h := add & marks.Words[w]; h != 0 {
				alive &^= h
				add &^= h
				if add == 0 {
					continue
				}
			}
			if settled.Words[w] == 0 && marks.Words[w] == 0 {
				touched = append(touched, w)
			}
			settled.Words[w] |= add
			got |= add
			if !back {
				f.Stats.BFSVisited += int64(bits.OnesCount64(add))
			}
			next.Bits.Words[w] = add
			kept = append(kept, w)
		}
		next.Verts = kept
		cur.Clear()
		if back {
			curB, nextB = next, cur
		} else {
			curF, nextF = next, cur
		}

		if back && bdist == 1 {
			for i := range sources {
				bit := uint64(1) << uint(i)
				if alive&bit != 0 && got&bit == 0 {
					alive &^= bit
					pruned[i] = true
					f.Stats.BFSPruned++
				}
			}
		}
	}
	f.Stats.EdgeScans += edgeScans

	for i := range sources {
		if alive&(uint64(1)<<uint(i)) != 0 {
			pruned[i] = true
			f.Stats.BFSPruned++
		}
	}

	curF.Clear()
	nextF.Clear()
	curB.Clear()
	nextB.Clear()
	reachedF.ClearList(touched)
	reachedB.ClearList(touched)
	f.s.touched = touched[:0]
}
