// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Sec. VII) on the synthetic dataset
// stand-ins, plus the repository's own ablations. Each experiment prints an
// aligned text table and returns it structured, so cmd/tdbbench, the
// benchmarks in bench_test.go, and the tests all share one code path.
//
// Absolute numbers differ from the paper (scaled synthetic data, Go vs
// C++, different hardware); the quantities to compare are the *shapes*:
// which algorithm wins, by how many orders, and where the INF cutoffs fall.
// EXPERIMENTS.md records a full paper-vs-measured comparison.
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"tdb/internal/core"
	"tdb/internal/digraph"
	"tdb/internal/gen"
	"tdb/internal/verify"
)

// Config tunes the harness.
type Config struct {
	// Scale is the fraction of each paper dataset's size to generate for
	// the single-k experiments (Tables III and IV).
	Scale float64
	// SweepScale is the fraction used for the k-sweep figures, which run
	// 5x more configurations.
	SweepScale float64
	// LargeEdges is the target edge count for the four "Large" datasets
	// (FLK, LJ, WKP, TW), which are scaled to a fixed size instead of a
	// fraction (their full sizes are out of reach offline).
	LargeEdges int
	// K is the hop constraint for the single-k experiments (paper: 5).
	KMin, KMax, K int
	// Timeout bounds each individual algorithm run; timed-out runs print
	// INF, like the paper's plots.
	Timeout time.Duration
	// Order is the candidate order for the top-down family. The default is
	// degree-ascending: on the synthetic stand-ins natural order correlates
	// with nothing, and degree-ascending reproduces the paper's observed
	// TDB++~BUR+ cover-size parity (see DESIGN.md and the "order"
	// ablation). BUR and DARC-DV always use natural order.
	Order core.Order
	// Verify re-checks every completed cover (validity; minimality for the
	// algorithms that promise it) — slow, used by the harness tests.
	Verify bool
	// Out receives the printed tables (nil discards).
	Out io.Writer
}

// DefaultConfig returns the settings used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Scale:      0.05,
		SweepScale: 0.02,
		LargeEdges: 400_000,
		KMin:       3,
		KMax:       7,
		K:          5,
		Timeout:    60 * time.Second,
		Order:      core.OrderDegreeAsc,
	}
}

// QuickConfig returns a configuration small enough for CI and benchmarks.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Scale = 0.01
	c.SweepScale = 0.01
	c.LargeEdges = 40_000
	c.Timeout = 5 * time.Second
	c.KMax = 5
	return c
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// Cell is one (dataset, k, algorithm) measurement.
type Cell struct {
	Size     int
	Time     time.Duration
	TimedOut bool
	Skipped  bool // not attempted (e.g. baseline on a Large dataset)
}

// SizeString renders the cover size, or the paper's INF marker.
func (c Cell) SizeString() string {
	if c.Skipped {
		return "-"
	}
	if c.TimedOut {
		return "INF"
	}
	return fmt.Sprintf("%d", c.Size)
}

// TimeString renders the runtime in seconds, or INF/-.
func (c Cell) TimeString() string {
	if c.Skipped {
		return "-"
	}
	if c.TimedOut {
		return "INF"
	}
	return fmt.Sprintf("%.3f", c.Time.Seconds())
}

// Row is one line of a result table.
type Row struct {
	Dataset string
	K       int
	Cells   []Cell
}

// Table is a fully materialized experiment result.
type Table struct {
	ID      string // "table3", "fig6", ...
	Title   string
	Columns []string // one per Cell, e.g. "TDB++(size)"
	Rows    []Row
	Notes   []string
	// Plain renders cells as bare numbers (no runtime suffix) — used for
	// count-only tables like table2.
	Plain bool
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	header := append([]string{"dataset", "k"}, t.Columns...)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	lines := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		line := []string{r.Dataset, fmt.Sprintf("%d", r.K)}
		for _, c := range r.Cells {
			if t.Plain {
				line = append(line, c.SizeString())
			} else {
				line = append(line, c.SizeString()+"/"+c.TimeString()+"s")
			}
		}
		lines[ri] = line
		for i, cell := range line {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printLine := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	printLine(header)
	for _, line := range lines {
		printLine(line)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// run executes one algorithm under the config's timeout and (optionally)
// verifies the cover.
func (c Config) run(g *digraph.Graph, algo core.Algorithm, k, minLen int) Cell {
	opts := core.Options{K: k, MinLen: minLen}
	switch algo {
	case core.TDB, core.TDBPlus, core.TDBPlusPlus:
		opts.Order = c.Order
	}
	if c.Timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), c.Timeout)
		defer cancel()
		opts.Context = ctx
	}
	res, err := core.Compute(g, algo, opts)
	if err != nil {
		// Options are validated by the harness, so this is unreachable in
		// practice; treat it as a timeout-grade failure rather than abort
		// a long experiment.
		return Cell{TimedOut: true}
	}
	cell := Cell{Size: len(res.Cover), Time: res.Stats.Duration, TimedOut: res.Stats.TimedOut}
	if c.Verify && !cell.TimedOut {
		ml := minLen
		if ml == 0 {
			ml = 3
		}
		wantMinimal := algo != core.BUR && algo != core.DARCDV
		rep := verify.Check(g, k, ml, res.Cover, wantMinimal)
		if !rep.Valid {
			panic(fmt.Sprintf("exp: %v produced an invalid cover on n=%d m=%d k=%d", algo, g.NumVertices(), g.NumEdges(), k))
		}
		if wantMinimal && !rep.Minimal {
			panic(fmt.Sprintf("exp: %v produced a non-minimal cover on n=%d m=%d k=%d", algo, g.NumVertices(), g.NumEdges(), k))
		}
	}
	return cell
}

// genDataset builds the stand-in graph for d at the config's scale rules.
func (c Config) genDataset(d gen.Dataset, sweep bool) *digraph.Graph {
	scale := c.Scale
	if sweep {
		scale = c.SweepScale
	}
	if d.Large {
		scale = float64(c.LargeEdges) / float64(d.PaperE)
	}
	if scale > 1 {
		scale = 1
	}
	return d.Generate(scale)
}

// Experiments lists the runnable experiment IDs in presentation order.
func Experiments() []string {
	return []string{"table2", "table3", "table4", "fig6", "fig7", "fig8", "fig9", "fig10", "order", "scc", "nohop", "edge", "parallel"}
}

// Run executes one experiment by ID ("all" runs every one) and prints each
// resulting table to cfg.Out.
func Run(id string, cfg Config) ([]*Table, error) {
	var tables []*Table
	switch strings.ToLower(id) {
	case "table2":
		tables = []*Table{Table2(cfg)}
	case "table3":
		tables = []*Table{Table3(cfg)}
	case "table4":
		tables = []*Table{Table4(cfg)}
	case "fig6", "fig7", "fig67":
		t6, t7 := Fig67(cfg)
		tables = []*Table{t6, t7}
	case "fig8", "fig9", "fig89":
		t8, t9 := Fig89(cfg)
		tables = []*Table{t8, t9}
	case "fig10":
		tables = []*Table{Fig10(cfg)}
	case "order":
		tables = []*Table{AblationOrder(cfg)}
	case "scc":
		tables = []*Table{AblationSCC(cfg)}
	case "nohop":
		tables = []*Table{NoHop(cfg)}
	case "edge":
		tables = []*Table{EdgeAblation(cfg)}
	case "parallel":
		tables = []*Table{ParallelAblation(cfg)}
	case "all":
		for _, e := range Experiments() {
			ts, err := Run(e, cfg)
			if err != nil {
				return tables, err
			}
			tables = append(tables, ts...)
		}
		return tables, nil
	default:
		return nil, fmt.Errorf("exp: unknown experiment %q (want one of %s, or all)",
			id, strings.Join(Experiments(), ", "))
	}
	for _, t := range tables {
		t.Fprint(cfg.out())
	}
	return tables, nil
}

// sortRows orders rows by the paper's dataset order (unknown synthetic
// workloads last), then k.
func sortRows(rows []Row) {
	pos := map[string]int{}
	for i, d := range gen.Datasets() {
		pos[d.Name] = i
	}
	at := func(name string) int {
		if p, ok := pos[name]; ok {
			return p
		}
		return len(pos)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if at(rows[i].Dataset) != at(rows[j].Dataset) {
			return at(rows[i].Dataset) < at(rows[j].Dataset)
		}
		return rows[i].K < rows[j].K
	})
}
