package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tdb/internal/core"
	"tdb/internal/gen"
)

// tinyConfig keeps harness tests fast while still exercising every code
// path, with verification on.
func tinyConfig() Config {
	c := QuickConfig()
	c.Scale = 0.002
	c.SweepScale = 0.002
	c.LargeEdges = 3000
	c.KMax = 4
	c.Timeout = 3 * time.Second
	c.Verify = true
	return c
}

func TestTable2(t *testing.T) {
	tab := Table2(tinyConfig())
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Cells[2].Size <= 0 || r.Cells[3].Size <= 0 {
			t.Fatalf("%s: empty generated graph", r.Dataset)
		}
	}
}

func TestTable3ShapeTiny(t *testing.T) {
	tab := Table3(tinyConfig())
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Cells) != 3 {
			t.Fatalf("%s: %d cells", r.Dataset, len(r.Cells))
		}
		tdbpp := r.Cells[2]
		if tdbpp.Skipped {
			t.Fatalf("%s: TDB++ must never be skipped", r.Dataset)
		}
		last4 := map[string]bool{"FLK": true, "LJ": true, "WKP": true, "TW": true}
		if last4[r.Dataset] {
			if !r.Cells[0].Skipped || !r.Cells[1].Skipped {
				t.Fatalf("%s: baselines must be skipped on large datasets", r.Dataset)
			}
		} else if r.Cells[0].Skipped || r.Cells[1].Skipped {
			t.Fatalf("%s: baselines must run on standard datasets", r.Dataset)
		}
	}
}

func TestTable4RatiosAtLeastOne(t *testing.T) {
	tab := Table4(tinyConfig())
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		no2, with2 := r.Cells[0], r.Cells[1]
		if no2.TimedOut || with2.TimedOut {
			continue
		}
		if with2.Size < no2.Size {
			t.Fatalf("%s: with-2-cycles cover %d smaller than without %d",
				r.Dataset, with2.Size, no2.Size)
		}
	}
}

func TestFig67SweepMonotoneInK(t *testing.T) {
	cfg := tinyConfig()
	cfg.KMin, cfg.KMax = 3, 5
	t6, t7 := Fig67(cfg)
	if len(t6.Rows) != 12*3 || len(t7.Rows) != 12*3 {
		t.Fatalf("sweep rows = %d/%d, want 36 each", len(t6.Rows), len(t7.Rows))
	}
	// Cover sizes must not shrink as k grows (more cycles to cover) for
	// the minimal algorithms; allow equality.
	byDataset := map[string][]Row{}
	for _, r := range t7.Rows {
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	for ds, rows := range byDataset {
		for i := 1; i < len(rows); i++ {
			prev, cur := rows[i-1].Cells[2], rows[i].Cells[2] // TDB++
			if prev.TimedOut || cur.TimedOut {
				continue
			}
			if cur.Size < prev.Size {
				// Minimal covers are heuristic; tiny fluctuations are
				// possible in principle, but a big drop indicates a bug.
				if prev.Size-cur.Size > prev.Size/4+2 {
					t.Fatalf("%s: TDB++ cover shrank sharply with k: %d -> %d",
						ds, prev.Size, cur.Size)
				}
			}
		}
	}
}

func TestFig89AndFig10(t *testing.T) {
	cfg := tinyConfig()
	cfg.KMin, cfg.KMax = 3, 4
	t8, t9 := Fig89(cfg)
	if len(t8.Rows) != 4 || len(t9.Rows) != 4 {
		t.Fatalf("fig8/9 rows = %d/%d, want 4", len(t8.Rows), len(t9.Rows))
	}
	for i, r := range t9.Rows {
		bur, burP := r.Cells[0], r.Cells[1]
		if bur.TimedOut || burP.TimedOut {
			continue
		}
		if burP.Size > bur.Size {
			t.Fatalf("row %d: BUR+ cover %d larger than BUR %d", i, burP.Size, bur.Size)
		}
	}
	t10 := Fig10(cfg)
	for i, r := range t10.Rows {
		a, b, c := r.Cells[0], r.Cells[1], r.Cells[2]
		if a.TimedOut || b.TimedOut || c.TimedOut {
			continue
		}
		if a.Size != b.Size || b.Size != c.Size {
			t.Fatalf("row %d: TDB variants disagree on size: %d/%d/%d", i, a.Size, b.Size, c.Size)
		}
	}
}

func TestAblations(t *testing.T) {
	cfg := tinyConfig()
	ord := AblationOrder(cfg)
	if len(ord.Rows) != 4 || len(ord.Columns) != 4 {
		t.Fatalf("order ablation shape wrong: %dx%d", len(ord.Rows), len(ord.Columns))
	}
	sccT := AblationSCC(cfg)
	for _, r := range sccT.Rows {
		off, on := r.Cells[0], r.Cells[1]
		if off.TimedOut || on.TimedOut {
			continue
		}
		if off.Size != on.Size {
			t.Fatalf("%s: SCC prefilter changed the cover: %d vs %d", r.Dataset, off.Size, on.Size)
		}
	}
	nh := NoHop(cfg)
	for _, r := range nh.Rows {
		k5, kn := r.Cells[0], r.Cells[1]
		if k5.TimedOut || kn.TimedOut {
			continue
		}
		if kn.Size < k5.Size {
			t.Fatalf("%s: unconstrained cover %d smaller than k=5 cover %d",
				r.Dataset, kn.Size, k5.Size)
		}
	}
}

func TestExtensionExperiments(t *testing.T) {
	cfg := tinyConfig()
	edge := EdgeAblation(cfg)
	if len(edge.Rows) != 4 {
		t.Fatalf("edge rows = %d", len(edge.Rows))
	}
	for _, r := range edge.Rows {
		darc, tdbe := r.Cells[0], r.Cells[1]
		if darc.TimedOut || tdbe.TimedOut {
			continue
		}
		if tdbe.Size == 0 && darc.Size > 0 {
			t.Fatalf("%s: TDB-E found nothing while DARC selected %d", r.Dataset, darc.Size)
		}
	}
	par := ParallelAblation(cfg)
	for _, r := range par.Rows {
		seq, p := r.Cells[0], r.Cells[1]
		if seq.TimedOut || p.TimedOut {
			continue
		}
		// Disjoint planted cycles: identical cover sizes.
		if seq.Size != p.Size {
			t.Fatalf("%s: parallel size %d != sequential %d", r.Dataset, p.Size, seq.Size)
		}
	}
}

func TestRunDispatcherAndPrinting(t *testing.T) {
	cfg := tinyConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	tables, err := Run("table4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	out := buf.String()
	if !strings.Contains(out, "table4") || !strings.Contains(out, "WKV") {
		t.Fatalf("printed output missing pieces:\n%s", out)
	}
	if _, err := Run("bogus", cfg); err == nil {
		t.Fatal("unknown experiment must error")
	}
	for _, id := range Experiments() {
		if id == "" {
			t.Fatal("empty experiment id")
		}
	}
}

func TestCellStrings(t *testing.T) {
	if s := (Cell{Size: 42, Time: 1500 * time.Millisecond}).SizeString(); s != "42" {
		t.Fatalf("SizeString = %q", s)
	}
	if s := (Cell{TimedOut: true}).SizeString(); s != "INF" {
		t.Fatalf("INF size = %q", s)
	}
	if s := (Cell{Skipped: true}).TimeString(); s != "-" {
		t.Fatalf("skipped time = %q", s)
	}
	if s := (Cell{Size: 1, Time: 2 * time.Second}).TimeString(); s != "2.000" {
		t.Fatalf("TimeString = %q", s)
	}
}

func TestTimeoutProducesINF(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.05
	cfg.Timeout = 1 * time.Millisecond
	cfg.Verify = false
	d, ok := gen.DatasetByName("WGO")
	if !ok {
		t.Fatal("WGO missing")
	}
	g := cfg.genDataset(d, false)
	cell := cfg.run(g, core.BURPlus, 5, 0)
	if !cell.TimedOut {
		t.Fatal("1ms timeout must trip on a 250k-edge graph")
	}
	if cell.SizeString() != "INF" {
		t.Fatalf("SizeString = %q", cell.SizeString())
	}
}
