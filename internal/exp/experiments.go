package exp

import (
	"fmt"
	"time"

	"tdb/internal/core"
	"tdb/internal/cycle"
	"tdb/internal/digraph"
	"tdb/internal/gen"
)

// paperTable3 is the paper's Table III (k=5, full-size datasets, C++ on a
// 36-core Xeon): cover size and seconds for DARC-DV, BUR+, TDB++. Used only
// for the printed comparison notes; -1 marks "could not complete".
var paperTable3 = map[string][6]float64{
	//               DARC size, DARC s, BUR+ size, BUR+ s, TDB++ size, TDB++ s
	"WKV":  {490, 53.8, 469, 402.8, 491, 0.41},
	"ASC":  {620, 2.42, 607, 44.01, 612, 0.11},
	"GNU":  {184, 1.3, 180, 1.49, 193, 0.69},
	"EU":   {622, 114.7, 609, 702.1, 627, 1.25},
	"SAD":  {6377, 440.1, 6005, 4717, 6380, 3.13},
	"WND":  {27067, 29916.8, 23853, 28953.3, 24290, 2.67},
	"CT":   {1621, 37.03, 1610, 43, 1611, 16.2},
	"WST":  {31253, 140.7, 30811, 275.6, 31148, 2.99},
	"LOAN": {332, 184.5, 320, 450.7, 347, 127.9},
	"WIT":  {7040, 2296.8, 6923, 4708.3, 6894, 56.3},
	"WGO":  {130382, 42.2, 129009, 110.8, 129421, 5.99},
	"WBS":  {98570, 3571.4, 94817, 12739, 100668, 6.96},
	"FLK":  {-1, -1, -1, -1, 206912, 92.3},
	"LJ":   {-1, -1, -1, -1, 39183, 20466.8},
	"WKP":  {-1, -1, -1, -1, 685759, 4132},
	"TW":   {-1, -1, -1, -1, 3731522, 89634},
}

// paperTable4 is the paper's Table IV: TDB++ cover sizes at k=5 without and
// with 2-cycles, and the growth ratio.
var paperTable4 = map[string][3]float64{
	"WKV": {491, 714, 1.45}, "ASC": {612, 5285, 8.64}, "GNU": {193, 222, 1.15},
	"EU": {627, 1270, 2.03}, "SAD": {6380, 27461, 4.30}, "WND": {24290, 51466, 2.12},
	"CT": {1611, 7615, 4.73}, "WST": {31148, 116065, 3.73}, "LOAN": {347, 568, 1.64},
	"WIT": {6894, 21781, 3.16}, "WGO": {129421, 217799, 1.68}, "WBS": {100668, 256281, 2.55},
}

// Table2 reports the generated stand-in sizes next to the paper's Table II.
func Table2(cfg Config) *Table {
	t := &Table{
		ID:    "table2",
		Title: "dataset stand-ins vs paper Table II (generated at harness scale)",
		Columns: []string{
			"paper|V|", "paper|E|", "gen|V|", "gen|E|", "gen davg",
		},
		Plain: true,
	}
	for _, d := range gen.Datasets() {
		g := cfg.genDataset(d, false)
		enc := func(x int) Cell { return Cell{Size: x} }
		t.Rows = append(t.Rows, Row{Dataset: d.Name, K: cfg.K, Cells: []Cell{
			enc(int(d.PaperV)), enc(int(d.PaperE)),
			enc(g.NumVertices()), enc(g.NumEdges()),
			{Size: int(2 * g.AvgDegree())}, // Table II davg counts in+out
		}})
	}
	t.Notes = append(t.Notes,
		"large datasets (FLK, LJ, WKP, TW) are generated at a fixed edge budget; see DESIGN.md")
	return t
}

// Table3 is the paper's headline comparison: cover size and runtime for
// DARC-DV, BUR+ and TDB++ at k=5 on all 16 datasets; the baselines are
// skipped on the four large datasets, which only TDB++ completes in the
// paper.
func Table3(cfg Config) *Table {
	t := &Table{
		ID:      "table3",
		Title:   fmt.Sprintf("cover size / runtime at k=%d (paper Table III)", cfg.K),
		Columns: []string{"DARC-DV", "BUR+", "TDB++"},
	}
	for _, d := range gen.Datasets() {
		g := cfg.genDataset(d, false)
		row := Row{Dataset: d.Name, K: cfg.K}
		if d.Large {
			row.Cells = append(row.Cells, Cell{Skipped: true}, Cell{Skipped: true})
		} else {
			row.Cells = append(row.Cells,
				cfg.run(g, core.DARCDV, cfg.K, 0),
				cfg.run(g, core.BURPlus, cfg.K, 0))
		}
		row.Cells = append(row.Cells, cfg.run(g, core.TDBPlusPlus, cfg.K, 0))
		t.Rows = append(t.Rows, row)
		if p, ok := paperTable3[d.Name]; ok {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s paper (full scale): DARC-DV %s, BUR+ %s, TDB++ %.0f/%.2fs",
				d.Name, paperPair(p[0], p[1]), paperPair(p[2], p[3]), p[4], p[5]))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: TDB++ fastest by 2-3 orders; BUR+ smallest covers with TDB++ within a few percent; DARC-DV worst size")
	return t
}

func paperPair(size, secs float64) string {
	if size < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f/%.2fs", size, secs)
}

// Table4 compares TDB++ cover sizes without vs with 2-cycles (MinLen 3 vs
// 2) at k=5 on the 12 standard datasets, reporting the growth ratio.
func Table4(cfg Config) *Table {
	t := &Table{
		ID:      "table4",
		Title:   fmt.Sprintf("TDB++ cover size without/with 2-cycles at k=%d (paper Table IV)", cfg.K),
		Columns: []string{"no-2cyc", "with-2cyc", "ratio(x1000)"},
	}
	for _, d := range gen.StandardDatasets() {
		g := cfg.genDataset(d, false)
		no2 := cfg.run(g, core.TDBPlusPlus, cfg.K, 3)
		with2 := cfg.run(g, core.TDBPlusPlus, cfg.K, 2)
		ratio := Cell{TimedOut: no2.TimedOut || with2.TimedOut}
		if !ratio.TimedOut && no2.Size > 0 {
			ratio.Size = with2.Size * 1000 / no2.Size
		}
		t.Rows = append(t.Rows, Row{Dataset: d.Name, K: cfg.K,
			Cells: []Cell{no2, with2, ratio}})
		if p, ok := paperTable4[d.Name]; ok {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s paper: %.0f -> %.0f (ratio %.2f)", d.Name, p[0], p[1], p[2]))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: including 2-cycles grows covers ~3x on average; high-reciprocity graphs (ASC, SAD) grow most, near-acyclic-reciprocity ones (GNU) least")
	return t
}

// namedGraph pairs a generated workload with its display name.
type namedGraph struct {
	name  string
	graph *digraph.Graph
}

func (c Config) registryGraphs(names ...string) []namedGraph {
	var out []namedGraph
	for _, name := range names {
		d, ok := gen.DatasetByName(name)
		if !ok {
			panic("exp: registry misses " + name)
		}
		out = append(out, namedGraph{name: d.Name, graph: c.genDataset(d, true)})
	}
	return out
}

// sweep runs the given algorithms for k in [KMin, KMax] over workloads,
// producing one runtime table and one size table. Once an algorithm times
// out at some k it is marked INF for all larger k (its cost grows with k),
// matching the paper's INF markers.
func (c Config) sweep(id6, id7, title string, graphs []namedGraph, algos []core.Algorithm, names []string) (*Table, *Table) {
	tTime := &Table{ID: id6, Title: title + " — runtime", Columns: names}
	tSize := &Table{ID: id7, Title: title + " — cover size", Columns: names}
	for _, ng := range graphs {
		dead := make([]bool, len(algos))
		for k := c.KMin; k <= c.KMax; k++ {
			row := Row{Dataset: ng.name, K: k}
			for ai, a := range algos {
				var cell Cell
				if dead[ai] {
					cell = Cell{TimedOut: true}
				} else {
					cell = c.run(ng.graph, a, k, 0)
					if cell.TimedOut {
						dead[ai] = true
					}
				}
				row.Cells = append(row.Cells, cell)
			}
			tTime.Rows = append(tTime.Rows, row)
			tSize.Rows = append(tSize.Rows, row)
		}
	}
	sortRows(tTime.Rows)
	sortRows(tSize.Rows)
	return tTime, tSize
}

// Fig67 regenerates the paper's Figures 6 (runtime vs k) and 7 (cover size
// vs k) for BUR+, DARC-DV and TDB++ over the 12 standard datasets.
func Fig67(cfg Config) (*Table, *Table) {
	var names []string
	for _, d := range gen.StandardDatasets() {
		names = append(names, d.Name)
	}
	t6, t7 := cfg.sweep("fig6", "fig7",
		fmt.Sprintf("BUR+/DARC-DV/TDB++ for k in [%d,%d] (paper Fig. 6/7)", cfg.KMin, cfg.KMax),
		cfg.registryGraphs(names...),
		[]core.Algorithm{core.BURPlus, core.DARCDV, core.TDBPlusPlus},
		[]string{"BUR+", "DARC-DV", "TDB++"})
	t6.Notes = append(t6.Notes,
		"expected shape: TDB++ fastest at every k; DARC-DV and BUR+ degrade steeply with k and hit INF first")
	t7.Notes = append(t7.Notes,
		"expected shape: cover size grows with k for all algorithms; BUR+ smallest, TDB++ close, DARC-DV worst")
	return t6, t7
}

// Fig89 regenerates Figures 8 (runtime) and 9 (cover size): BUR vs BUR+ on
// WKV and WGO, isolating the cost/benefit of the minimal pruning pass.
func Fig89(cfg Config) (*Table, *Table) {
	t8, t9 := cfg.sweep("fig8", "fig9",
		fmt.Sprintf("BUR vs BUR+ for k in [%d,%d] (paper Fig. 8/9)", cfg.KMin, cfg.KMax),
		cfg.registryGraphs("WKV", "WGO"),
		[]core.Algorithm{core.BUR, core.BURPlus},
		[]string{"BUR", "BUR+"})
	t8.Notes = append(t8.Notes, "expected shape: BUR and BUR+ run in similar time")
	t9.Notes = append(t9.Notes, "expected shape: BUR+ covers are smaller thanks to the minimal pass")
	return t8, t9
}

// Fig10 regenerates Figure 10: the speedup ablation TDB vs TDB+ vs TDB++ on
// WKV, WGO and a small-world hard instance. It always uses natural
// candidate order (the paper's setting): degree-ascending order sidesteps
// the hard refutation searches that the blocks and the BFS filter exist to
// prune, so it would mask exactly the effect this figure measures. The
// small-world workload — long forward chains with sparse chords —
// maximizes failed k-hop searches and shows the optimizations' full effect.
func Fig10(cfg Config) *Table {
	cfg.Order = core.OrderNatural
	graphs := cfg.registryGraphs("WKV", "WGO")
	swN := int(20000 * cfg.SweepScale / 0.02)
	if swN < 100 {
		swN = 100
	}
	graphs = append(graphs, namedGraph{name: "SW", graph: gen.SmallWorld(swN, 3, 0.15, 5)})
	t, _ := cfg.sweep("fig10", "fig10-size",
		fmt.Sprintf("TDB vs TDB+ vs TDB++ for k in [%d,%d] (paper Fig. 10)", cfg.KMin, cfg.KMax),
		graphs,
		[]core.Algorithm{core.TDB, core.TDBPlus, core.TDBPlusPlus},
		[]string{"TDB", "TDB+", "TDB++"})
	t.Notes = append(t.Notes,
		"expected shape: blocks (TDB+) and the BFS filter (TDB++) each speed up the top-down process; the filter matters more at large k; all three return identical covers",
		"SW is a synthetic small-world hard instance (long chains, sparse chords); natural candidate order is used here, see DESIGN.md")
	return t
}

// AblationOrder measures the candidate-order knob on TDB++ (this
// repository's ablation A1).
func AblationOrder(cfg Config) *Table {
	t := &Table{
		ID:      "order",
		Title:   fmt.Sprintf("TDB++ candidate order ablation at k=%d", cfg.K),
		Columns: []string{"natural", "degree-asc", "degree-desc", "random"},
	}
	orders := []core.Order{core.OrderNatural, core.OrderDegreeAsc, core.OrderDegreeDesc, core.OrderRandom}
	for _, name := range []string{"WKV", "ASC", "SAD", "WGO"} {
		d, _ := gen.DatasetByName(name)
		g := cfg.genDataset(d, true)
		row := Row{Dataset: d.Name, K: cfg.K}
		for _, ord := range orders {
			c := cfg
			c.Order = ord
			row.Cells = append(row.Cells, c.run(g, core.TDBPlusPlus, cfg.K, 0))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"degree-ascending keeps hubs in the cover (processed last), giving the smallest covers; degree-descending the largest")
	return t
}

// AblationSCC measures the SCC prefilter (ablation A2) on TDB++.
func AblationSCC(cfg Config) *Table {
	t := &Table{
		ID:      "scc",
		Title:   fmt.Sprintf("TDB++ with/without SCC prefilter at k=%d", cfg.K),
		Columns: []string{"no-prefilter", "scc-prefilter"},
	}
	for _, name := range []string{"GNU", "EU", "WIT", "WGO"} {
		d, _ := gen.DatasetByName(name)
		g := cfg.genDataset(d, true)
		off := cfg.run(g, core.TDBPlusPlus, cfg.K, 0)
		onCfg := cfg
		on := func() Cell {
			opts := core.Options{K: cfg.K, Order: onCfg.Order, SCCPrefilter: true}
			start := time.Now()
			res, err := core.Compute(g, core.TDBPlusPlus, opts)
			if err != nil {
				return Cell{TimedOut: true}
			}
			return Cell{Size: len(res.Cover), Time: time.Since(start)}
		}()
		t.Rows = append(t.Rows, Row{Dataset: d.Name, K: cfg.K, Cells: []Cell{off, on}})
	}
	t.Notes = append(t.Notes,
		"the prefilter exempts vertices outside non-trivial SCCs; covers are identical, time shifts with the share of acyclic vertices")
	return t
}

// NoHop runs the unconstrained variant (paper Sec. VI-C): cover every cycle
// regardless of length, implemented as k = n.
func NoHop(cfg Config) *Table {
	t := &Table{
		ID:      "nohop",
		Title:   "unconstrained cycle cover (k = n) with TDB++",
		Columns: []string{"k=5", "k=n"},
	}
	for _, name := range []string{"WKV", "ASC", "GNU"} {
		d, _ := gen.DatasetByName(name)
		g := cfg.genDataset(d, true)
		t.Rows = append(t.Rows, Row{Dataset: d.Name, K: cfg.K, Cells: []Cell{
			cfg.run(g, core.TDBPlusPlus, cfg.K, 0),
			cfg.run(g, core.TDBPlusPlus, cycle.Unconstrained(g), 0),
		}})
	}
	t.Notes = append(t.Notes,
		"the unconstrained cover is a superset problem: it must also break long cycles, so it is at least as large and slower to compute")
	return t
}
