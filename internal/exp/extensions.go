package exp

import (
	"context"
	"fmt"
	"time"

	"tdb/internal/core"
	"tdb/internal/gen"
)

// Extension experiments (beyond the paper; see DESIGN.md).

// EdgeAblation compares the top-down edge transversal (TDB-E) against DARC
// on DARC's native problem: minimal edge sets breaking all constrained
// cycles. One row per dataset; cells are (selected edges, seconds).
func EdgeAblation(cfg Config) *Table {
	t := &Table{
		ID:      "edge",
		Title:   fmt.Sprintf("edge transversal: DARC vs top-down TDB-E at k=%d", cfg.K),
		Columns: []string{"DARC", "TDB-E"},
	}
	for _, name := range []string{"WKV", "ASC", "GNU", "EU"} {
		d, _ := gen.DatasetByName(name)
		g := cfg.genDataset(d, true)

		darcCell := func() Cell {
			start := time.Now()
			cancelled := deadlineFn(cfg.Timeout)
			edges, complete := core.DARCEdges(g, cfg.K, 3, cancelled)
			return Cell{Size: len(edges), Time: time.Since(start), TimedOut: !complete}
		}()

		tdbeCell := func() Cell {
			ctx, cancel := timeoutCtx(cfg.Timeout)
			defer cancel()
			opts := core.Options{K: cfg.K, Order: cfg.Order, Context: ctx}
			r, err := core.TopDownEdges(g, opts)
			if err != nil {
				return Cell{TimedOut: true}
			}
			return Cell{Size: len(r.Edges), Time: r.Stats.Duration, TimedOut: r.Stats.TimedOut}
		}()

		t.Rows = append(t.Rows, Row{Dataset: d.Name, K: cfg.K, Cells: []Cell{darcCell, tdbeCell}})
	}
	t.Notes = append(t.Notes,
		"extension: the paper's top-down inversion applied to the EDGE version (Def. 5); expected shape: TDB-E faster with comparable or smaller transversals")
	return t
}

// ParallelAblation compares the sequential TDB++ against the
// SCC-partitioned parallel solver on a many-component workload.
func ParallelAblation(cfg Config) *Table {
	t := &Table{
		ID:      "parallel",
		Title:   fmt.Sprintf("SCC-partitioned parallel TDB++ at k=%d (planted-cycle workload)", cfg.K),
		Columns: []string{"sequential", "parallel"},
	}
	sizes := []struct {
		name       string
		n, cyc, bg int
	}{
		{"plant-10k", 10_000, 150, 15_000},
		{"plant-40k", 40_000, 600, 60_000},
	}
	for _, s := range sizes {
		g := gen.PlantedCycles(s.n, s.cyc, 3, cfg.K, s.bg, 77).Graph
		seq := cfg.run(g, core.TDBPlusPlus, cfg.K, 0)
		par := func() Cell {
			ctx, cancel := timeoutCtx(cfg.Timeout)
			defer cancel()
			opts := core.Options{K: cfg.K, Order: cfg.Order, Context: ctx}
			r, err := core.ComputeParallel(g, core.TDBPlusPlus, opts, 0)
			if err != nil {
				return Cell{TimedOut: true}
			}
			return Cell{Size: len(r.Cover), Time: r.Stats.Duration, TimedOut: r.Stats.TimedOut}
		}()
		t.Rows = append(t.Rows, Row{Dataset: s.name, K: cfg.K, Cells: []Cell{seq, par}})
	}
	t.Notes = append(t.Notes,
		"extension: covers are computed per SCC; sizes match the sequential result on disjoint-component workloads, wall time scales with available cores")
	return t
}

// timeoutCtx returns a context bounded by timeout (background when <= 0).
func timeoutCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), timeout)
}

// deadlineFn adapts the config timeout for the one remaining entry point
// that takes a raw poll hook (core.DARCEdges).
func deadlineFn(timeout time.Duration) func() bool {
	if timeout <= 0 {
		return nil
	}
	deadline := time.Now().Add(timeout)
	var tick int
	return func() bool {
		tick++
		if tick%64 != 0 {
			return false
		}
		return time.Now().After(deadline)
	}
}
