// Package tdb breaks all hop-constrained cycles in large directed graphs.
//
// It implements the algorithms of "TDB: Breaking All Hop-Constrained Cycles
// in Billion-Scale Directed Graphs" (ICDE 2023): given a directed graph G
// and a hop constraint k, compute a small vertex set that intersects every
// simple directed cycle of length between 3 and k (a hop-constrained cycle
// cover). Finding a minimum cover is NP-hard and UGC-hard to approximate
// within k-1-eps, so the algorithms return minimal (locally irreducible)
// covers:
//
//   - TDBPlusPlus (default): the paper's top-down algorithm with the
//     block/barrier detector and BFS-filter — fastest, scales furthest.
//   - TDBPlus, TDB: the same top-down process with fewer optimizations.
//   - BURPlus, BUR: the bottom-up hit-count heuristic; slower, usually the
//     smallest covers.
//   - DARCDV: the DARC k-cycle-transversal baseline (edge selection
//     projected to vertices).
//
// # Quick start
//
//	b := tdb.NewBuilder(0)
//	b.AddEdge(0, 1)
//	b.AddEdge(1, 2)
//	b.AddEdge(2, 0)
//	g := b.Build()
//	res, err := tdb.Cover(g, 5, nil) // break all cycles of length 3..5
//	// res.Cover == [some vertex of the triangle]
//
// Use Verify to check any cover, and the cmd/ tools for file-based and
// experiment workflows. Typical applications: picking accounts that break
// all short money-transfer rings (fraud), locks that break all short
// lock-order cycles (deadlock avoidance), and register placement breaking
// short combinational feedback loops (circuit design); see examples/.
package tdb

import (
	"context"

	"tdb/internal/core"
	"tdb/internal/cycle"
	"tdb/internal/digraph"
	"tdb/internal/verify"
)

// VID identifies a vertex: dense integers in [0, NumVertices).
type VID = digraph.VID

// Edge is a directed edge.
type Edge = digraph.Edge

// Graph is an immutable directed graph in compressed-sparse-row form.
type Graph = digraph.Graph

// Builder accumulates edges for a Graph. Self-loops are dropped and
// duplicate edges merged by default.
type Builder = digraph.Builder

// NewBuilder returns a Builder for a graph with at least n vertices.
func NewBuilder(n int) *Builder { return digraph.NewBuilder(n) }

// FromEdges builds a graph from an edge list under default policies.
func FromEdges(n int, edges []Edge) *Graph { return digraph.FromEdges(n, edges) }

// LoadGraph reads a graph from a file: SNAP-style text edge lists, or the
// binary format for paths ending in ".bin".
func LoadGraph(path string) (*Graph, error) { return digraph.LoadFile(path) }

// SaveGraph writes a graph to a file, choosing the format by extension as
// in LoadGraph.
func SaveGraph(path string, g *Graph) error { return digraph.SaveFile(path, g) }

// Algorithm selects a cover algorithm; see the package documentation.
type Algorithm = core.Algorithm

// Cover algorithms, in the paper's naming.
const (
	BUR         = core.BUR
	BURPlus     = core.BURPlus
	TDB         = core.TDB
	TDBPlus     = core.TDBPlus
	TDBPlusPlus = core.TDBPlusPlus
	DARCDV      = core.DARCDV
)

// Order selects the candidate processing order.
type Order = core.Order

// Candidate processing orders.
const (
	OrderNatural    = core.OrderNatural
	OrderDegreeAsc  = core.OrderDegreeAsc
	OrderDegreeDesc = core.OrderDegreeDesc
	OrderRandom     = core.OrderRandom
	// OrderWeighted processes expensive vertices first so they are
	// preferentially excluded from the cover; requires Options.Weights.
	OrderWeighted = core.OrderWeighted
)

// Options tunes a cover computation; the zero value means: exclude 2-cycles
// (MinLen 3), natural order, no prefilter, run to completion.
type Options struct {
	// MinLen: 3 (default) excludes 2-cycles; 2 includes them.
	MinLen int
	// Order of candidate processing.
	Order Order
	// Seed for OrderRandom.
	Seed uint64
	// Weights (length n) makes covers cost-aware: with OrderWeighted the
	// algorithms steer expensive vertices out of the cover, and the
	// minimal passes shed the most expensive cover vertices first.
	Weights []float64
	// SCCPrefilter exempts vertices outside non-trivial SCCs up front.
	SCCPrefilter bool
	// PrepassWorkers enables the parallel BFS-filter prepass for the
	// TDB++ algorithm: that many workers (negative selects GOMAXPROCS)
	// pre-resolve candidates before the sequential top-down loop, the
	// cover produced being identical. This is the speedup for graphs that
	// are one giant SCC, where CoverParallel's SCC decomposition gains
	// nothing. 0 (the default) keeps the paper's sequential behavior.
	PrepassWorkers int
	// Context, when non-nil, carries cancellation and deadline for the
	// run; a done context stops the computation and marks the result
	// TimedOut.
	Context context.Context
	// Cancelled, polled between steps, stops the run early when true. With
	// PrepassWorkers != 0 (or under CoverParallel) it is polled
	// concurrently from worker goroutines and must be safe for concurrent
	// use.
	//
	// Deprecated: set Context instead (e.g. via context.WithTimeout).
	// Cancelled is still honored.
	Cancelled func() bool
}

// toCore translates the public options for the core layer.
func (o *Options) toCore(k int) core.Options {
	c := core.Options{K: k}
	if o != nil {
		c.MinLen = o.MinLen
		c.Order = o.Order
		c.Seed = o.Seed
		c.Weights = o.Weights
		c.SCCPrefilter = o.SCCPrefilter
		c.PrepassWorkers = o.PrepassWorkers
		c.Context = o.Context
		c.Cancelled = o.Cancelled
	}
	return c
}

// Result is a computed cover plus run statistics.
type Result = core.Result

// Stats describes the work performed during a cover computation.
type Stats = core.Stats

// Cover computes a hop-constrained cycle cover of g for cycles of length in
// [3, k] (or [MinLen, k] if opts overrides MinLen) using TDB++, the paper's
// fastest algorithm. A nil opts selects the defaults.
func Cover(g *Graph, k int, opts *Options) (*Result, error) {
	return CoverWith(g, TDBPlusPlus, k, opts)
}

// CoverWith is Cover with an explicit algorithm choice.
func CoverWith(g *Graph, algo Algorithm, k int, opts *Options) (*Result, error) {
	return core.Compute(g, algo, opts.toCore(k))
}

// Engine computes repeated covers over one fixed graph while pooling all
// working state (detector tables, filter queues, the active-adjacency
// working graph) across runs — the entry point for serving heavy repeated
// traffic. One-shot Cover calls allocate that state afresh on every run; an
// Engine brings steady-state allocations down to the returned result.
// Engines are safe for concurrent use.
type Engine struct {
	e *core.Engine
}

// NewEngine creates a reusable compute engine over g.
func NewEngine(g *Graph) *Engine {
	return &Engine{e: core.NewEngine(g)}
}

// Graph returns the graph the engine computes over.
func (e *Engine) Graph() *Graph { return e.e.Graph() }

// Cover is the engine counterpart of the package-level Cover (TDB++ with
// defaults). ctx bounds the run and supersedes opts.Context when non-nil.
func (e *Engine) Cover(ctx context.Context, k int, opts *Options) (*Result, error) {
	return e.CoverWith(ctx, TDBPlusPlus, k, opts)
}

// CoverWith is Engine.Cover with an explicit algorithm choice.
func (e *Engine) CoverWith(ctx context.Context, algo Algorithm, k int, opts *Options) (*Result, error) {
	return e.e.Compute(ctx, algo, opts.toCore(k))
}

// CoverParallel is the engine counterpart of the package-level
// CoverParallel (SCC-partitioned decomposition). It shares the engine's
// context plumbing but not its scratch pools: per-component subgraphs
// differ in size from the engine's graph, so their state is allocated per
// run.
func (e *Engine) CoverParallel(ctx context.Context, algo Algorithm, k int, opts *Options, workers int) (*Result, error) {
	return e.e.ComputeParallel(ctx, algo, opts.toCore(k), workers)
}

// CoverAllCycles computes a minimal cover of cycles of EVERY length (the
// unconstrained feedback-vertex-style variant, paper Sec. VI-C).
func CoverAllCycles(g *Graph, opts *Options) (*Result, error) {
	return Cover(g, cycle.Unconstrained(g), opts)
}

// Report is the outcome of Verify.
type Report = verify.Report

// Verify checks that cover intersects every cycle of length in [minLen, k]
// and, when wantMinimal is set, that no cover vertex is redundant.
func Verify(g *Graph, k, minLen int, cover []VID, wantMinimal bool) Report {
	return verify.Check(g, k, minLen, cover, wantMinimal)
}

// FindCycle returns one cycle of length in [3, k] through vertex s, or nil.
// It uses the paper's block-based detector.
func FindCycle(g *Graph, k int, s VID) []VID {
	return cycle.NewBlockDetector(g, k, cycle.DefaultMinLen, nil).FindFrom(s)
}

// HasHopConstrainedCycle reports whether g contains any cycle of length in
// [3, k].
func HasHopConstrainedCycle(g *Graph, k int) bool {
	sc := cycle.NewScratch(g.NumVertices()) // detector + filter share one scratch
	det := cycle.NewBlockDetectorWith(g, k, cycle.DefaultMinLen, nil, sc)
	filter := cycle.NewBFSFilterWith(g, k, nil, sc)
	for v := 0; v < g.NumVertices(); v++ {
		if filter.CanPrune(VID(v)) {
			continue
		}
		if det.HasCycleThrough(VID(v)) {
			return true
		}
	}
	return false
}

// EnumerateCycles lists every cycle of length in [3, k], each once, calling
// fn until it returns false. Intended for small graphs or tight k: the
// number of cycles can be exponential.
func EnumerateCycles(g *Graph, k int, fn func(c []VID) bool) {
	cycle.NewEnumerator(g, k, cycle.DefaultMinLen, nil).Visit(fn)
}
