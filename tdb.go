// Package tdb breaks all hop-constrained cycles in large directed graphs.
//
// It implements the algorithms of "TDB: Breaking All Hop-Constrained Cycles
// in Billion-Scale Directed Graphs" (ICDE 2023): given a directed graph G
// and a hop constraint k, compute a small vertex set that intersects every
// simple directed cycle of length between 3 and k (a hop-constrained cycle
// cover). Finding a minimum cover is NP-hard and UGC-hard to approximate
// within k-1-eps, so the algorithms return minimal (locally irreducible)
// covers:
//
//   - TDBPlusPlus (default): the paper's top-down algorithm with the
//     block/barrier detector and BFS-filter — fastest, scales furthest.
//   - TDBPlus, TDB: the same top-down process with fewer optimizations.
//   - BURPlus, BUR: the bottom-up hit-count heuristic; slower, usually the
//     smallest covers.
//   - DARCDV: the DARC k-cycle-transversal baseline (edge selection
//     projected to vertices).
//
// # Quick start
//
// Solve is the single entry point: it takes a context, a graph, the hop
// constraint, and functional options, and automatically selects the
// execution strategy (sequential, SCC-partitioned parallel, or the TDB++
// prepass) from the graph's structure and the worker budget:
//
//	b := tdb.NewBuilder(0)
//	b.AddEdge(0, 1)
//	b.AddEdge(1, 2)
//	b.AddEdge(2, 0)
//	g := b.Build()
//	res, err := tdb.Solve(ctx, g, 5) // break all cycles of length 3..5
//	// res.Cover == [some vertex of the triangle]
//	// res.Stats.Strategy records the plan that served the request
//
// Options select algorithms and variants — WithAlgorithm(BURPlus) when
// cover size matters most, WithEdgeCover for the edge-transversal problem,
// WithUnconstrained to drop the hop bound, WithWeights for cost-aware
// covers — and pin execution when needed (WithStrategy, WithWorkers,
// WithPrepassWorkers).
//
// # Serving repeated traffic
//
// Repeated solves over one fixed graph should go through an Engine, which
// pools all O(n) working state and caches the strategy planner's graph
// inspection:
//
//	eng := tdb.NewEngine(g)
//	res, err := eng.Solve(ctx, 5)
//
// # Real-world vertex identities
//
// Production graphs rarely arrive with dense integer vertex IDs. The
// labeled layer maps any comparable external ID type (account numbers,
// lock names, gate identifiers) to dense VIDs and translates results back:
//
//	lb := tdb.NewLabeledBuilder[string]()
//	lb.AddEdge("acct-7", "acct-19")
//	lb.AddEdge("acct-19", "acct-3")
//	lb.AddEdge("acct-3", "acct-7")
//	lg := lb.Build()
//	res, err := lg.Solve(ctx, 5)
//	// res.Cover == ["acct-19"] (or another account of the ring)
//
// Use Verify to check any cover, and the cmd/ tools for file-based and
// experiment workflows. Typical applications: picking accounts that break
// all short money-transfer rings (fraud), locks that break all short
// lock-order cycles (deadlock avoidance), and register placement breaking
// short combinational feedback loops (circuit design); see examples/.
package tdb

import (
	"context"
	"sync"

	"tdb/internal/core"
	"tdb/internal/cycle"
	"tdb/internal/digraph"
	"tdb/internal/verify"
)

// VID identifies a vertex: dense integers in [0, NumVertices). The labeled
// layer (LabeledGraph) maps arbitrary external IDs onto VIDs.
type VID = digraph.VID

// Edge is a directed edge.
type Edge = digraph.Edge

// Graph is an immutable directed graph in compressed-sparse-row form.
type Graph = digraph.Graph

// Storage is the read-side adjacency contract every algorithm in this
// package consumes: any backend exposing per-vertex neighbor slices.
// *Graph (the in-memory CSR) and *MappedGraph (the mmap-backed segmented
// CSR for graphs larger than RAM) both satisfy it; Solve, Verify and the
// query helpers accept any Storage, and WithStorage / NewStorageEngine
// plug a non-default backend into the solve path.
type Storage = digraph.Adjacency

// MappedGraph is the mmap-backed storage backend: an immutable CSR served
// zero-copy out of a memory mapping of a TDBCSR1 file, so read-mostly
// graphs bigger than RAM can be solved with the OS paging adjacency in on
// demand. Build one with Builder.BuildMapped or SaveMapped, open it with
// OpenMapped, and Close it when every consumer is done.
type MappedGraph = digraph.MappedGraph

// OpenMapped opens a TDBCSR1 file as a MappedGraph, fully validating the
// header and arrays first (corrupted files yield an error, never a later
// panic).
func OpenMapped(path string) (*MappedGraph, error) { return digraph.OpenMapped(path) }

// SaveMapped writes any storage backend as a TDBCSR1 file ready for
// OpenMapped.
func SaveMapped(path string, g Storage) error { return digraph.WriteMapped(path, g) }

// OpenStorage opens path with the backend chosen by content: TDBCSR1
// files map zero-copy, anything else loads in memory (text edge lists,
// optionally gzipped, or the binary format). The returned closer releases
// mapped resources; it is a no-op for in-memory graphs.
func OpenStorage(path string) (Storage, func() error, error) { return digraph.OpenStorage(path) }

// IsMappedFile sniffs whether path begins with the TDBCSR1 magic, i.e.
// whether OpenMapped can serve it.
func IsMappedFile(path string) bool { return digraph.IsMappedFile(path) }

// Materialize copies any storage backend into the in-memory CSR. If s is
// already an in-memory Graph it is returned as-is.
func Materialize(s Storage) *Graph { return digraph.Materialize(s) }

// Builder accumulates edges for a Graph. Self-loops are dropped and
// duplicate edges merged by default.
type Builder = digraph.Builder

// NewBuilder returns a Builder for a graph with at least n vertices.
func NewBuilder(n int) *Builder { return digraph.NewBuilder(n) }

// FromEdges builds a graph from an edge list under default policies.
func FromEdges(n int, edges []Edge) *Graph { return digraph.FromEdges(n, edges) }

// LoadGraph reads a graph from a file: SNAP-style text edge lists, or the
// binary format for paths ending in ".bin".
func LoadGraph(path string) (*Graph, error) { return digraph.LoadFile(path) }

// SaveGraph writes a graph to a file, choosing the format by extension as
// in LoadGraph.
func SaveGraph(path string, g *Graph) error { return digraph.SaveFile(path, g) }

// Algorithm selects a cover algorithm; see the package documentation.
type Algorithm = core.Algorithm

// Cover algorithms, in the paper's naming.
const (
	BUR         = core.BUR
	BURPlus     = core.BURPlus
	TDB         = core.TDB
	TDBPlus     = core.TDBPlus
	TDBPlusPlus = core.TDBPlusPlus
	DARCDV      = core.DARCDV
)

// Order selects the candidate processing order.
type Order = core.Order

// Candidate processing orders.
const (
	OrderNatural    = core.OrderNatural
	OrderDegreeAsc  = core.OrderDegreeAsc
	OrderDegreeDesc = core.OrderDegreeDesc
	OrderRandom     = core.OrderRandom
	// OrderWeighted processes expensive vertices first so they are
	// preferentially excluded from the cover; requires WithWeights.
	OrderWeighted = core.OrderWeighted
)

// Options tunes a cover computation; the zero value means: exclude 2-cycles
// (MinLen 3), natural order, no prefilter, run to completion.
//
// Deprecated: pass functional options to Solve instead; ToOptions converts
// an existing Options value. The struct remains fully honored by the legacy
// entry points.
type Options struct {
	// MinLen: 3 (default) excludes 2-cycles; 2 includes them.
	MinLen int
	// Order of candidate processing.
	Order Order
	// Seed for OrderRandom.
	Seed uint64
	// Weights (length n) makes covers cost-aware: with OrderWeighted the
	// algorithms steer expensive vertices out of the cover, and the
	// minimal passes shed the most expensive cover vertices first.
	Weights []float64
	// SCCPrefilter exempts vertices outside non-trivial SCCs up front.
	SCCPrefilter bool
	// PrepassWorkers enables the parallel BFS-filter prepass for the
	// TDB++ algorithm: that many workers (negative selects GOMAXPROCS)
	// pre-resolve candidates before the sequential top-down loop, the
	// cover produced being identical. This is the speedup for graphs that
	// are one giant SCC, where CoverParallel's SCC decomposition gains
	// nothing. 0 (the default) keeps the paper's sequential behavior.
	// Requests resolving to one effective worker fall back to the plain
	// sequential loop, which is faster (DESIGN.md §6).
	PrepassWorkers int
	// Context, when non-nil, carries cancellation and deadline for the
	// run; a done context stops the computation and marks the result
	// TimedOut.
	Context context.Context
	// Cancelled, polled between steps, stops the run early when true. With
	// PrepassWorkers != 0 (or under CoverParallel) it is polled
	// concurrently from worker goroutines and must be safe for concurrent
	// use.
	//
	// Deprecated: set Context instead (e.g. via context.WithTimeout).
	// Cancelled is still honored.
	Cancelled func() bool
}

// legacySolveOptions converts a deprecated Options value plus an explicit
// algorithm into the pinned option set reproducing the legacy entry-point
// behavior exactly: the sequential loop, or — for TDB++ with prepass
// workers requested — the prepass (ToOptions already pins that; every
// other algorithm ignored the field, which a sequential pin preserves).
func legacySolveOptions(opts *Options, algo Algorithm, extra ...Option) []Option {
	o := append(opts.ToOptions(), WithAlgorithm(algo))
	if opts == nil || opts.PrepassWorkers == 0 || algo != TDBPlusPlus {
		o = append(o, WithStrategy(StrategySequential))
	}
	return append(o, extra...)
}

// Result is a computed cover plus run statistics; Stats records the
// execution plan Solve selected.
type Result = core.Result

// Stats describes the work performed during a cover computation.
type Stats = core.Stats

// Cover computes a hop-constrained cycle cover of g for cycles of length in
// [3, k] (or [MinLen, k] if opts overrides MinLen) using TDB++, the paper's
// fastest algorithm. A nil opts selects the defaults.
//
// Deprecated: use Solve, which adds automatic strategy selection; Cover
// always runs the sequential path.
func Cover(g *Graph, k int, opts *Options) (*Result, error) {
	return CoverWith(g, TDBPlusPlus, k, opts)
}

// CoverWith is Cover with an explicit algorithm choice.
//
// Deprecated: use Solve with WithAlgorithm.
func CoverWith(g *Graph, algo Algorithm, k int, opts *Options) (*Result, error) {
	return Solve(nil, g, k, legacySolveOptions(opts, algo)...)
}

// Engine computes repeated solves over one fixed graph while pooling all
// working state (detector tables, filter queues, the active-adjacency
// working graph) across runs — the entry point for serving heavy repeated
// traffic. One-shot Solve calls allocate that state afresh on every run; an
// Engine brings steady-state allocations down to the returned result, and
// caches the strategy planner's SCC inspection of the fixed graph.
// Engines are safe for concurrent use.
type Engine struct {
	e *core.Engine

	// Per-mode renumbered twins of the graph (WithRenumbering), built
	// lazily: computing the permutation and rebuilding the CSR is O(n + m
	// log d), so repeated engine solves amortize it to once per mode.
	renMu sync.Mutex
	ren   map[Renumbering]*renumberedEngine
}

// renumberedEngine is a core engine over the renumbered graph plus the
// translations in and out of it.
type renumberedEngine struct {
	e         *core.Engine
	perm, inv []VID // perm[old] = new, inv[new] = old
}

// RenumberPerm computes the cache-aware locality permutation of g under
// mode (perm[old] = new, deterministic; the identity for RenumberNone).
// Solve applies it internally via WithRenumbering; the standalone form
// serves callers that want to inspect or pre-apply the layout — a
// renumbered graph is built with g.Renumber(perm), and InversePerm
// translates renumbered IDs back.
func RenumberPerm(g *Graph, mode Renumbering) []VID {
	return digraph.RenumberPerm(g, mode)
}

// InversePerm inverts a permutation: inv[perm[v]] = v.
func InversePerm(perm []VID) []VID { return digraph.InversePerm(perm) }

// renumbered returns the cached renumbered twin for mode, building it on
// first use. It returns nil when the engine's storage backend is not the
// in-memory CSR: renumbering rebuilds the CSR in permuted order, which
// only that backend supports (a mapped file is immutable on disk).
func (e *Engine) renumbered(mode Renumbering) *renumberedEngine {
	e.renMu.Lock()
	defer e.renMu.Unlock()
	if re, ok := e.ren[mode]; ok {
		return re
	}
	g, ok := e.e.Graph().(*digraph.Graph)
	if !ok {
		return nil
	}
	perm := digraph.RenumberPerm(g, mode)
	re := &renumberedEngine{
		e:    core.NewEngine(g.Renumber(perm)),
		perm: perm,
		inv:  digraph.InversePerm(perm),
	}
	if e.ren == nil {
		e.ren = make(map[Renumbering]*renumberedEngine)
	}
	e.ren[mode] = re
	return re
}

// NewEngine creates a reusable compute engine over g.
func NewEngine(g *Graph) *Engine {
	return &Engine{e: core.NewEngine(g)}
}

// NewStorageEngine creates a reusable compute engine over any storage
// backend — e.g. a MappedGraph serving a graph bigger than RAM. Every
// Engine method except WithRenumbering-based solves (which need the
// in-memory CSR) behaves identically across backends.
func NewStorageEngine(s Storage) *Engine {
	return &Engine{e: core.NewEngine(s)}
}

// Graph returns the storage backend the engine computes over.
func (e *Engine) Graph() Storage { return e.e.Graph() }

// Cover is the engine counterpart of the package-level Cover (TDB++ with
// defaults). ctx bounds the run and supersedes opts.Context when non-nil.
//
// Deprecated: use Engine.Solve.
func (e *Engine) Cover(ctx context.Context, k int, opts *Options) (*Result, error) {
	return e.CoverWith(ctx, TDBPlusPlus, k, opts)
}

// CoverWith is Engine.Cover with an explicit algorithm choice.
//
// Deprecated: use Engine.Solve with WithAlgorithm.
func (e *Engine) CoverWith(ctx context.Context, algo Algorithm, k int, opts *Options) (*Result, error) {
	return e.Solve(ctx, k, legacySolveOptions(opts, algo)...)
}

// CoverParallel is the engine counterpart of the package-level
// CoverParallel (SCC-partitioned decomposition).
//
// Deprecated: use Engine.Solve, which selects the SCC-partitioned strategy
// automatically when the condensation splits (or pin it with
// WithStrategy(StrategyParallelSCC) and WithWorkers).
func (e *Engine) CoverParallel(ctx context.Context, algo Algorithm, k int, opts *Options, workers int) (*Result, error) {
	return e.Solve(ctx, k, legacySolveOptions(opts, algo,
		WithStrategy(StrategyParallelSCC), WithWorkers(workers))...)
}

// FindCycle returns one cycle of length in [3, k] through vertex s, or
// nil, on scratch borrowed from the engine's pool — the allocation-free
// counterpart of the package-level FindCycle.
func (e *Engine) FindCycle(k int, s VID) []VID {
	return e.e.FindCycle(k, cycle.DefaultMinLen, s)
}

// HasHopConstrainedCycle reports whether the engine's graph contains any
// cycle of length in [3, k], with pooled scratch.
func (e *Engine) HasHopConstrainedCycle(k int) bool {
	return e.e.HasHopConstrainedCycle(k, cycle.DefaultMinLen)
}

// CoverAllCycles computes a minimal cover of cycles of EVERY length (the
// unconstrained feedback-vertex-style variant, paper Sec. VI-C).
//
// Deprecated: use Solve with WithUnconstrained.
func CoverAllCycles(g *Graph, opts *Options) (*Result, error) {
	return Solve(nil, g, 0, legacySolveOptions(opts, TDBPlusPlus, WithUnconstrained())...)
}

// Report is the outcome of Verify.
type Report = verify.Report

// Verify checks that cover intersects every cycle of length in [minLen, k]
// and, when wantMinimal is set, that no cover vertex is redundant. It
// accepts any storage backend.
func Verify(g Storage, k, minLen int, cover []VID, wantMinimal bool) Report {
	return verify.Check(g, k, minLen, cover, wantMinimal)
}

// FindCycle returns one cycle of length in [3, k] through vertex s, or nil.
// It uses the paper's block-based detector. For repeated queries use
// Engine.FindCycle, which pools the detector state.
func FindCycle(g Storage, k int, s VID) []VID {
	return cycle.NewBlockDetector(g, k, cycle.DefaultMinLen, nil).FindFrom(s)
}

// HasHopConstrainedCycle reports whether g contains any cycle of length in
// [3, k]. It prunes vertices with the bit-parallel batched BFS-filter (up
// to 512 sources per sweep, the lane width picked from the graph size) and
// falls through to the paper's block-based detector only for the
// survivors. For repeated queries use Engine.HasHopConstrainedCycle.
func HasHopConstrainedCycle(g Storage, k int) bool {
	sc := cycle.NewScratch(g.NumVertices()) // detector + filter share one scratch
	det := cycle.NewBlockDetectorWith(g, k, cycle.DefaultMinLen, nil, sc)
	filter := cycle.NewBatchBFSFilterWith(g, k, nil, sc)
	filter.SetLanes(g.NumVertices())
	return !filter.VisitUnpruned(g.NumVertices(), func(v VID) bool {
		return !det.HasCycleThrough(v) // a found cycle stops the sweep
	})
}

// EnumerateCycles lists every cycle of length in [3, k], each once, calling
// fn until it returns false. Intended for small graphs or tight k: the
// number of cycles can be exponential.
func EnumerateCycles(g Storage, k int, fn func(c []VID) bool) {
	cycle.NewEnumerator(g, k, cycle.DefaultMinLen, nil).Visit(fn)
}
