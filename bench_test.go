package tdb

// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact, backed by internal/exp at a reduced "bench"
// scale so `go test -bench=.` completes in minutes), plus micro-benchmarks
// for the primitives the paper's speedups come from. cmd/tdbbench runs the
// same experiments at the full harness scale.

import (
	"context"
	"math/rand/v2"
	"path/filepath"
	"testing"
	"time"

	"tdb/internal/core"
	"tdb/internal/cycle"
	"tdb/internal/digraph"
	"tdb/internal/exp"
	"tdb/internal/gen"
)

// benchConfig is small enough for repeated timing runs but large enough
// that algorithmic differences dominate constant overheads.
func benchConfig() exp.Config {
	c := exp.QuickConfig()
	c.Scale = 0.005
	c.SweepScale = 0.005
	c.LargeEdges = 20_000
	c.KMax = 5
	c.Timeout = 2 * time.Second
	return c
}

func runExp(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Datasets regenerates the dataset statistics table.
func BenchmarkTable2Datasets(b *testing.B) { runExp(b, "table2") }

// BenchmarkTable3 regenerates the paper's Table III: DARC-DV vs BUR+ vs
// TDB++ at k=5 over all 16 dataset stand-ins.
func BenchmarkTable3(b *testing.B) { runExp(b, "table3") }

// BenchmarkTable4 regenerates the paper's Table IV: TDB++ with and without
// 2-cycles.
func BenchmarkTable4(b *testing.B) { runExp(b, "table4") }

// BenchmarkFig6 and BenchmarkFig7 regenerate the k-sweep figures (they
// share one sweep; both tables are produced by either ID).
func BenchmarkFig6(b *testing.B) { runExp(b, "fig6") }

// BenchmarkFig7 regenerates the cover-size k-sweep (paper Fig. 7).
func BenchmarkFig7(b *testing.B) { runExp(b, "fig7") }

// BenchmarkFig8 regenerates BUR vs BUR+ runtime/size (paper Fig. 8/9).
func BenchmarkFig8(b *testing.B) { runExp(b, "fig8") }

// BenchmarkFig9 regenerates the same sweep keyed by its size table.
func BenchmarkFig9(b *testing.B) { runExp(b, "fig9") }

// BenchmarkFig10 regenerates the top-down ablation TDB/TDB+/TDB++.
func BenchmarkFig10(b *testing.B) { runExp(b, "fig10") }

// BenchmarkAblationOrder regenerates the candidate-order ablation (A1).
func BenchmarkAblationOrder(b *testing.B) { runExp(b, "order") }

// BenchmarkAblationSCC regenerates the SCC-prefilter ablation (A2).
func BenchmarkAblationSCC(b *testing.B) { runExp(b, "scc") }

// BenchmarkNoHop regenerates the unconstrained-variant experiment.
func BenchmarkNoHop(b *testing.B) { runExp(b, "nohop") }

// ---- algorithm-level benchmarks (fixed mid-size workload) ----

func benchGraph() *Graph {
	d, _ := gen.DatasetByName("WKV")
	return d.Generate(0.2) // n=1400, m~20k
}

func benchCover(b *testing.B, algo Algorithm, k int) {
	b.Helper()
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := CoverWith(g, algo, k, &Options{Order: OrderDegreeAsc})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.TimedOut {
			b.Fatal("unexpected timeout")
		}
	}
}

func BenchmarkCoverTDB(b *testing.B)         { benchCover(b, TDB, 5) }
func BenchmarkCoverTDBPlus(b *testing.B)     { benchCover(b, TDBPlus, 5) }
func BenchmarkCoverTDBPlusPlus(b *testing.B) { benchCover(b, TDBPlusPlus, 5) }
func BenchmarkCoverBUR(b *testing.B)         { benchCover(b, BUR, 5) }
func BenchmarkCoverBURPlus(b *testing.B)     { benchCover(b, BURPlus, 5) }
func BenchmarkCoverDARCDV(b *testing.B)      { benchCover(b, DARCDV, 4) }

// ---- primitive-level benchmarks ----

// BenchmarkActiveTraversal contrasts the two working-graph representations
// at 5% live vertices — the regime the top-down cover spends most of its
// life in. Iterate/* measures the raw inner loop (full-CSR scan filtered
// through a []bool mask vs. the view's branch-free live slice);
// Detector/* measures a full block-detector query on the same subgraph.
func BenchmarkActiveTraversal(b *testing.B) {
	g := benchGraph()
	n := g.NumVertices()
	rng := rand.New(rand.NewPCG(1, 2))
	active := make([]bool, n)
	view := digraph.NewActiveAdjacency(g, false)
	var live []VID
	for v := 0; v < n; v++ {
		if rng.IntN(20) == 0 {
			active[v] = true
			view.Activate(VID(v))
			live = append(live, VID(v))
		}
	}
	var sink int
	b.Run("Iterate/Masked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range live {
				for _, w := range g.Out(v) {
					if active[w] {
						sink += int(w)
					}
				}
			}
		}
	})
	b.Run("Iterate/View", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range live {
				for _, w := range view.ActiveOut(v) {
					sink += int(w)
				}
			}
		}
	})
	_ = sink
	b.Run("Detector/Masked", func(b *testing.B) {
		det := cycle.NewBlockDetector(g, 5, 3, active)
		for i := 0; i < b.N; i++ {
			det.HasCycleThrough(live[i%len(live)])
		}
	})
	b.Run("Detector/View", func(b *testing.B) {
		det := cycle.NewBlockDetectorView(view, 5, 3, nil)
		for i := 0; i < b.N; i++ {
			det.HasCycleThrough(live[i%len(live)])
		}
	})
}

// BenchmarkBlockDetector measures the paper's O(km) NodeNecessary query.
func BenchmarkBlockDetector(b *testing.B) {
	g := benchGraph()
	det := cycle.NewBlockDetector(g, 5, 3, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.HasCycleThrough(VID(i % g.NumVertices()))
	}
}

// BenchmarkPlainDetector measures the unbounded-worst-case DFS detector.
func BenchmarkPlainDetector(b *testing.B) {
	g := benchGraph()
	det := cycle.NewPlainDetector(g, 5, 3, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.HasCycleThrough(VID(i % g.NumVertices()))
	}
}

// filterBenchGraphs are the two shapes the scalar-vs-batch filter contrast
// is about: the mid-size benchmark workload (reciprocal-edge heavy, queries
// hit fast — the scalar filter's best case) and a low-reciprocity power-law
// graph (queries search deep through shared hubs — the batch's best case;
// ~3x on the reference box).
func filterBenchGraphs() map[string]*Graph {
	return map[string]*Graph{
		"WKV":      benchGraph(),
		"powerlaw": gen.PowerLaw(5000, 30000, 2.0, 0.05, 9),
	}
}

// BenchmarkBFSFilterScalar sweeps the scalar pruning filter over every
// vertex; one op = one full n-query sweep.
func BenchmarkBFSFilterScalar(b *testing.B) {
	for name, g := range filterBenchGraphs() {
		b.Run(name, func(b *testing.B) {
			f := cycle.NewBFSFilter(g, 5, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for v := 0; v < g.NumVertices(); v++ {
					f.CanPrune(VID(v))
				}
			}
		})
	}
}

// BenchmarkBFSFilterBatch is the same full sweep answered by the
// bit-parallel batched filter, 64 sources per word — directly comparable
// ns/op with BenchmarkBFSFilterScalar.
func BenchmarkBFSFilterBatch(b *testing.B) {
	for name, g := range filterBenchGraphs() {
		b.Run(name, func(b *testing.B) {
			f := cycle.NewBatchBFSFilter(g, 5, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.VisitUnpruned(g.NumVertices(), func(VID) bool { return true })
			}
		})
	}
}

// BenchmarkCSRBuild measures graph construction from an edge stream.
func BenchmarkCSRBuild(b *testing.B) {
	edges := benchGraph().Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(0, edges)
	}
}

// BenchmarkVerifyParallel measures the parallel validity checker used by
// tdbverify on large covers.
func BenchmarkVerifyParallel(b *testing.B) {
	g := benchGraph()
	res, err := Cover(g, 5, &Options{Order: OrderDegreeAsc})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := Verify(g, 5, 3, res.Cover, false)
		if !rep.Valid {
			b.Fatal("invalid cover")
		}
	}
}

// BenchmarkUnconstrained measures the k=n variant (paper Sec. VI-C).
func BenchmarkUnconstrained(b *testing.B) {
	d, _ := gen.DatasetByName("GNU")
	g := d.Generate(0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CoverAllCycles(g, &Options{Order: OrderDegreeAsc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDARCEdges measures the raw edge-transversal baseline.
func BenchmarkDARCEdges(b *testing.B) {
	d, _ := gen.DatasetByName("GNU")
	g := d.Generate(0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, complete := core.DARCEdges(g, 4, 3, nil); !complete {
			b.Fatal("unexpected timeout")
		}
	}
}

// BenchmarkTDBEdges measures the top-down edge transversal on the same
// workload as BenchmarkDARCEdges — the ablation showing the paper's
// inversion also wins on DARC's native (edge) problem.
func BenchmarkTDBEdges(b *testing.B) {
	d, _ := gen.DatasetByName("GNU")
	g := d.Generate(0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CoverEdges(g, 4, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoverParallel measures the SCC-partitioned parallel solver on a
// many-component workload (its best case).
func BenchmarkCoverParallel(b *testing.B) {
	g := GenPlantedCycles(30_000, 400, 3, 6, 40_000, 5).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CoverParallel(g, TDBPlusPlus, 6, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoverSequentialManyComponents is the sequential baseline for
// BenchmarkCoverParallel.
func BenchmarkCoverSequentialManyComponents(b *testing.B) {
	g := GenPlantedCycles(30_000, 400, 3, 6, 40_000, 5).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cover(g, 6, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoverRepeated contrasts repeated covers over one fixed graph on
// the one-shot path (fresh O(n) scratch every run, the paper's one-shot
// setting) against the pooled Engine (the service setting). Compare the
// allocs/op columns: the engine's steady state allocates only the result.
func BenchmarkCoverRepeated(b *testing.B) {
	g := benchGraph()
	b.Run("OneShot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Cover(g, 5, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Engine", func(b *testing.B) {
		e := NewEngine(g)
		if _, err := e.Cover(context.Background(), 5, nil); err != nil {
			b.Fatal(err) // warm the scratch pool
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Cover(context.Background(), 5, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSingleSCCGraph builds a graph that is ONE giant strongly connected
// component — the shape where the SCC-partitioned parallel solver gains
// nothing and only the intra-SCC prepass helps: a width-2 directed ring
// (ensures strong connectivity) plus random long chords and a sprinkling
// of short back-chords that close hop-constrained cycles. Vertex IDs are
// randomly relabeled so that ID order does not correlate with ring
// position (real datasets exhibit no such correlation, and with it the
// natural candidate order would degenerate every prefix query).
func benchSingleSCCGraph(n int) *Graph {
	rng := rand.New(rand.NewPCG(99, 7))
	perm := rng.Perm(n)
	id := func(v int) VID { return VID(perm[(v%n+n)%n]) }
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(id(v), id(v+1))
		b.AddEdge(id(v), id(v+2))
	}
	// Long chords add degree noise without short cycles: the jump length
	// stays in [5, n-21], so closing via the chord plus +2 ring hops needs
	// at least 1+ceil(21/2) = 12 > k edges.
	for i := 0; i < n/3; i++ {
		u := rng.IntN(n)
		b.AddEdge(id(u), id(u+5+rng.IntN(n-25)))
	}
	for i := 0; i < n/200; i++ { // short back-chords: planted k-cycles
		u := rng.IntN(n)
		b.AddEdge(id(u), id(u-2-rng.IntN(4))) // cycle length in [3, 6]
	}
	return b.Build()
}

// BenchmarkPrepassSingleSCC measures TDB++ with the parallel BFS-filter
// prepass on a single-SCC graph: Workers0 is the sequential baseline and
// Workers4 shows the intra-SCC speedup. The Workers4 wall-clock gain
// tracks available cores (GOMAXPROCS): on a single-CPU machine it degrades
// to Workers1 behavior, which is slightly SLOWER than sequential since the
// active-adjacency view made the in-loop filter queries it front-runs
// cheaper (prefix queries scan the full CSR; see DESIGN.md §6-7).
func BenchmarkPrepassSingleSCC(b *testing.B) {
	g := benchSingleSCCGraph(60_000)
	for _, w := range []int{0, 1, 4} {
		name := map[int]string{0: "Workers0-sequential", 1: "Workers1", 4: "Workers4"}[w]
		b.Run(name, func(b *testing.B) {
			e := NewEngine(g)
			opts := &Options{PrepassWorkers: w}
			if _, err := e.Cover(context.Background(), 8, opts); err != nil {
				b.Fatal(err) // warm the scratch pool
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := e.Cover(context.Background(), 8, opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.TimedOut {
					b.Fatal("unexpected timeout")
				}
			}
		})
	}
}

// maintainerStream is the shared power-law churn workload of the dynamic
// benchmarks: a right-skewed edge stream over 10k vertices, the shape of
// the paper's fraud-transfer traffic.
func maintainerStream() []Edge {
	return GenPowerLaw(10_000, 60_000, 2.2, 0.3, 13).Edges()
}

// BenchmarkMaintainerInsert measures amortized dynamic insertion cost with
// cover maintenance (the incremental alternative to recomputation) on the
// power-law churn workload.
func BenchmarkMaintainerInsert(b *testing.B) {
	stream := maintainerStream()
	m := NewMaintainer(10_000, 5, 3)
	j := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if j == len(stream) {
			b.StopTimer()
			m = NewMaintainer(10_000, 5, 3)
			j = 0
			b.StartTimer()
		}
		e := stream[j]
		j++
		m.InsertEdge(e.U, e.V)
	}
}

// BenchmarkMaintainerInsertBatch is the same stream applied through
// ApplyBatch in 256-update batches: deferred queries answered by 64-lane
// bit-parallel BFS sweeps. One op is one batch.
func BenchmarkMaintainerInsertBatch(b *testing.B) {
	const batch = 256
	stream := maintainerStream()
	ups := make([]Update, len(stream))
	for i, e := range stream {
		ups[i] = InsertOp(e.U, e.V)
	}
	m := NewMaintainer(10_000, 5, 3)
	j := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if j+batch > len(ups) {
			b.StopTimer()
			m = NewMaintainer(10_000, 5, 3)
			j = 0
			b.StartTimer()
		}
		m.ApplyBatch(ups[j : j+batch])
		j += batch
	}
}

// BenchmarkMaintainerChurn measures steady-state mixed traffic: ~70%
// inserts, ~30% deletes of earlier edges, with a dirty-region Reminimize
// every 4096 updates. One op is one update (Reminimize cost amortized in).
func BenchmarkMaintainerChurn(b *testing.B) {
	stream := maintainerStream()
	// A deterministic churn script: inserts walk the stream; every third
	// step deletes the edge inserted 64 steps earlier.
	m := NewMaintainer(10_000, 5, 3)
	j := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if j == len(stream) {
			b.StopTimer()
			m = NewMaintainer(10_000, 5, 3)
			j = 0
			b.StartTimer()
		}
		if i%3 == 2 && j >= 64 {
			e := stream[j-64]
			m.DeleteEdge(e.U, e.V)
		} else {
			e := stream[j]
			j++
			m.InsertEdge(e.U, e.V)
		}
		if i%4096 == 4095 {
			m.Reminimize()
		}
	}
}

// BenchmarkRenumberedSolve measures the cache-aware renumbering modes on
// a single-SCC graph whose vertex IDs were scrambled by a random
// permutation — the arbitrary-numbering regime real edge lists arrive in,
// where a locality permutation has something to recover. On inputs whose
// numbering is already local (the synthetic generators) the modes measure
// as a wash; degree renumbering buys ~5-8% here.
func BenchmarkRenumberedSolve(b *testing.B) {
	base := benchSingleSCCGraph(60_000)
	rng := rand.New(rand.NewPCG(99, 99^0xabcdef12345))
	perm := make([]VID, base.NumVertices())
	for i := range perm {
		perm[i] = VID(i)
	}
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	g := base.Renumber(perm)
	for _, tc := range []struct {
		name string
		mode Renumbering
	}{{"none", RenumberNone}, {"degree", RenumberDegree}, {"bfs", RenumberBFS}} {
		b.Run(tc.name, func(b *testing.B) {
			e := NewEngine(g)
			opts := []Option{WithWorkers(1)}
			if tc.mode != RenumberNone {
				opts = append(opts, WithRenumbering(tc.mode))
			}
			ctx := context.Background()
			if _, err := e.Solve(ctx, 8, opts...); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Solve(ctx, 8, opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoverStorage is the storage-placement comparison on the WKV
// reference workload: the same pooled-engine solve against the in-memory
// CSR and against the memory-mapped TDBCSR1 backend. With the file in
// page cache (as here) the gap is the cost of the seam itself; the mapped
// column is what a larger-than-RAM graph pays per solve even before any
// page faults.
func BenchmarkCoverStorage(b *testing.B) {
	g := benchGraph()
	path := filepath.Join(b.TempDir(), "wkv.tdbcsr")
	if err := SaveMapped(path, g); err != nil {
		b.Fatal(err)
	}
	mg, err := OpenMapped(path)
	if err != nil {
		b.Fatal(err)
	}
	defer mg.Close()

	run := func(b *testing.B, e *Engine) {
		if _, err := e.Cover(context.Background(), 5, nil); err != nil {
			b.Fatal(err) // warm the scratch pool
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Cover(context.Background(), 5, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("memory", func(b *testing.B) { run(b, NewEngine(g)) })
	b.Run("mapped", func(b *testing.B) { run(b, NewStorageEngine(mg)) })
}
