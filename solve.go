package tdb

import (
	"context"
	"fmt"
	"slices"

	"tdb/internal/core"
	"tdb/internal/cycle"
	"tdb/internal/digraph"
)

// Solve computes a hop-constrained cycle cover of g for cycles of length in
// [3, k] (or [WithMinLen, k]) — the unified entry point of the package. The
// defaults match Cover: TDB++ over the whole graph. Options select the
// algorithm, the variant (edge transversal, unconstrained), and the
// execution strategy; without a pinned strategy a planning step inspects
// the SCC condensation and the worker budget and picks the fastest path
// (sequential, SCC-partitioned parallel, or the TDB++ prepass), recording
// the choice in Stats.Strategy. ctx bounds the run; a done context stops
// the computation and marks the result TimedOut. A nil ctx is treated as
// context.Background().
//
// For repeated solves over one graph use Engine.Solve, which pools all
// working state and caches the planning inspection.
func Solve(ctx context.Context, g *Graph, k int, opts ...Option) (*Result, error) {
	cfg := newSolveConfig(opts)
	a, err := resolveStorage(&cfg, g)
	if err != nil {
		return nil, err
	}
	if err := prepareSolve(&cfg, a, k, ctx); err != nil {
		return nil, err
	}
	if cfg.edgeCover {
		return solveEdges(a, cfg)
	}
	if cfg.renumber != RenumberNone {
		cg, ok := a.(*digraph.Graph)
		if !ok {
			return nil, errRenumberStorage(a)
		}
		perm := digraph.RenumberPerm(cg, cfg.renumber)
		applyRenumbering(cg, perm, &cfg)
		r, err := core.Solve(cg.Renumber(perm), cfg.spec())
		if err != nil {
			return nil, err
		}
		mapCoverBack(r, digraph.InversePerm(perm), cfg.renumber)
		return r, nil
	}
	return core.Solve(a, cfg.spec())
}

// resolveStorage picks the backend a solve runs over: WithStorage when
// given, the Graph argument otherwise. A typed-nil *Graph without
// WithStorage is rejected here rather than panicking deep in a traversal.
func resolveStorage(cfg *solveConfig, g *Graph) (Storage, error) {
	if cfg.storage != nil {
		return cfg.storage, nil
	}
	if g == nil {
		return nil, fmt.Errorf("tdb: nil graph (pass a graph or WithStorage)")
	}
	return g, nil
}

// errRenumberStorage explains the one backend restriction in the solve
// path: renumbering rebuilds the CSR in permuted order, which only the
// in-memory backend supports.
func errRenumberStorage(a Storage) error {
	return fmt.Errorf("tdb: WithRenumbering requires the in-memory graph backend, not %q storage",
		digraph.StorageName(a))
}

// applyRenumbering rewrites cfg for a solve over g renumbered by perm:
// the candidate order is materialized on the ORIGINAL graph and replayed
// through the permutation (so order-driven algorithms visit the same
// logical vertex sequence and return the same cover), and the cost vector
// is permuted alongside.
func applyRenumbering(g *Graph, perm []VID, cfg *solveConfig) {
	order := core.VertexOrder(g, cfg.core)
	mapped := make([]VID, len(order))
	for i, v := range order {
		mapped[i] = perm[v]
	}
	cfg.core.CandidateOrder = mapped
	if cfg.core.Weights != nil {
		w := make([]float64, len(cfg.core.Weights))
		for v, c := range cfg.core.Weights {
			w[perm[v]] = c
		}
		cfg.core.Weights = w
	}
}

// mapCoverBack translates a renumbered-ID result to the input numbering
// and stamps the mode into the stats. Covers leave the core sorted by
// renumbered ID; re-sorting keeps the public "ascending VID" shape.
func mapCoverBack(r *Result, inv []VID, mode Renumbering) {
	for i, v := range r.Cover {
		r.Cover[i] = inv[v]
	}
	slices.Sort(r.Cover)
	r.Stats.Renumbering = mode.String()
}

// prepareSolve resolves the request-level knobs (hop bound, context) and
// rejects contradictory option combinations.
func prepareSolve(cfg *solveConfig, g Storage, k int, ctx context.Context) error {
	cfg.core.K = k
	if cfg.unconstrained {
		cfg.core.K = cycle.Unconstrained(g)
	}
	if ctx != nil {
		cfg.core.Context = ctx
	}
	if cfg.edgeCover {
		switch cfg.strategy {
		case StrategyAuto, StrategySequential:
		default:
			return fmt.Errorf("tdb: WithEdgeCover supports only the sequential strategy, not %v", cfg.strategy)
		}
		if cfg.prepassSet && cfg.core.PrepassWorkers != 0 {
			return fmt.Errorf("tdb: WithEdgeCover does not support the BFS-filter prepass")
		}
		if cfg.renumber != RenumberNone {
			// Edge covers are reported as edge lists whose processing order
			// is CSR-order-dependent; renumbering would silently change the
			// answer, so the combination is rejected.
			return fmt.Errorf("tdb: WithEdgeCover does not support WithRenumbering")
		}
	}
	return nil
}

// solveEdges runs the edge-transversal variant and folds its outcome into
// the unified Result shape.
func solveEdges(g Storage, cfg solveConfig) (*Result, error) {
	er, err := core.TopDownEdges(g, cfg.core)
	if err != nil {
		return nil, err
	}
	r := &Result{Edges: er.Edges, Stats: er.Stats}
	r.Stats.Strategy = StrategySequential.String()
	r.Stats.StrategyPinned = cfg.strategy == StrategySequential
	r.Stats.Workers = 1
	return r, nil
}

// Solve is the engine counterpart of the package-level Solve: identical
// semantics, but sequential and prepass plans borrow the engine's pooled
// scratch and the planning inspection is cached across calls. ctx
// supersedes a context carried in converted legacy options.
func (e *Engine) Solve(ctx context.Context, k int, opts ...Option) (*Result, error) {
	cfg := newSolveConfig(opts)
	if cfg.storage != nil && cfg.storage != e.Graph() {
		// The engine's pooled state is sized to ITS backend; silently solving
		// another graph with it would be wrong in both directions.
		return nil, fmt.Errorf("tdb: WithStorage on an engine must name the engine's own backend (use NewStorageEngine)")
	}
	if err := prepareSolve(&cfg, e.Graph(), k, ctx); err != nil {
		return nil, err
	}
	if cfg.edgeCover {
		// The edge detector sizes its state to the edge count and is not
		// pooled; engine edge solves share only the graph.
		return solveEdges(e.Graph(), cfg)
	}
	if cfg.renumber != RenumberNone {
		re := e.renumbered(cfg.renumber)
		if re == nil {
			return nil, errRenumberStorage(e.Graph())
		}
		applyRenumbering(e.Graph().(*digraph.Graph), re.perm, &cfg)
		r, err := re.e.Solve(nil, cfg.spec())
		if err != nil {
			return nil, err
		}
		mapCoverBack(r, re.inv, cfg.renumber)
		return r, nil
	}
	return e.e.Solve(nil, cfg.spec())
}
