package tdb

import (
	"context"
	"fmt"

	"tdb/internal/core"
	"tdb/internal/cycle"
)

// Solve computes a hop-constrained cycle cover of g for cycles of length in
// [3, k] (or [WithMinLen, k]) — the unified entry point of the package. The
// defaults match Cover: TDB++ over the whole graph. Options select the
// algorithm, the variant (edge transversal, unconstrained), and the
// execution strategy; without a pinned strategy a planning step inspects
// the SCC condensation and the worker budget and picks the fastest path
// (sequential, SCC-partitioned parallel, or the TDB++ prepass), recording
// the choice in Stats.Strategy. ctx bounds the run; a done context stops
// the computation and marks the result TimedOut. A nil ctx is treated as
// context.Background().
//
// For repeated solves over one graph use Engine.Solve, which pools all
// working state and caches the planning inspection.
func Solve(ctx context.Context, g *Graph, k int, opts ...Option) (*Result, error) {
	cfg := newSolveConfig(opts)
	if err := prepareSolve(&cfg, g, k, ctx); err != nil {
		return nil, err
	}
	if cfg.edgeCover {
		return solveEdges(g, cfg)
	}
	return core.Solve(g, cfg.spec())
}

// prepareSolve resolves the request-level knobs (hop bound, context) and
// rejects contradictory option combinations.
func prepareSolve(cfg *solveConfig, g *Graph, k int, ctx context.Context) error {
	cfg.core.K = k
	if cfg.unconstrained {
		cfg.core.K = cycle.Unconstrained(g)
	}
	if ctx != nil {
		cfg.core.Context = ctx
	}
	if cfg.edgeCover {
		switch cfg.strategy {
		case StrategyAuto, StrategySequential:
		default:
			return fmt.Errorf("tdb: WithEdgeCover supports only the sequential strategy, not %v", cfg.strategy)
		}
		if cfg.prepassSet && cfg.core.PrepassWorkers != 0 {
			return fmt.Errorf("tdb: WithEdgeCover does not support the BFS-filter prepass")
		}
	}
	return nil
}

// solveEdges runs the edge-transversal variant and folds its outcome into
// the unified Result shape.
func solveEdges(g *Graph, cfg solveConfig) (*Result, error) {
	er, err := core.TopDownEdges(g, cfg.core)
	if err != nil {
		return nil, err
	}
	r := &Result{Edges: er.Edges, Stats: er.Stats}
	r.Stats.Strategy = StrategySequential.String()
	r.Stats.StrategyPinned = cfg.strategy == StrategySequential
	r.Stats.Workers = 1
	return r, nil
}

// Solve is the engine counterpart of the package-level Solve: identical
// semantics, but sequential and prepass plans borrow the engine's pooled
// scratch and the planning inspection is cached across calls. ctx
// supersedes a context carried in converted legacy options.
func (e *Engine) Solve(ctx context.Context, k int, opts ...Option) (*Result, error) {
	cfg := newSolveConfig(opts)
	if err := prepareSolve(&cfg, e.Graph(), k, ctx); err != nil {
		return nil, err
	}
	if cfg.edgeCover {
		// The edge detector sizes its state to the edge count and is not
		// pooled; engine edge solves share only the graph.
		return solveEdges(e.Graph(), cfg)
	}
	return e.e.Solve(nil, cfg.spec())
}
