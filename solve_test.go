package tdb

import (
	"context"
	"slices"
	"testing"
)

// multiSCCGraph has many small non-trivial SCCs (the condensation splits).
func multiSCCGraph() *Graph {
	return GenPlantedCycles(400, 20, 3, 5, 500, 17).Graph
}

// singleSCCGraph is one giant strongly connected component: a directed
// ring with short back-chords. Large enough (beyond two prepass chunks)
// that the auto-planner considers the prepass worthwhile.
func singleSCCGraph() *Graph {
	const n = 1200
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(VID(v), VID((v+1)%n))
		if v%17 == 0 {
			b.AddEdge(VID((v+3)%n), VID(v)) // closes 4-cycles
		}
	}
	return b.Build()
}

// TestPlanAutoSelection: the planner must choose the documented strategy
// for each graph shape × worker budget × algorithm combination.
func TestPlanAutoSelection(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		g    *Graph
		opts []Option
		want string
	}{
		{"split condensation, many workers", multiSCCGraph(),
			[]Option{WithWorkers(4)}, "scc-parallel"},
		{"split condensation, one worker", multiSCCGraph(),
			[]Option{WithWorkers(1)}, "sequential"},
		{"giant SCC, many workers, TDB++", singleSCCGraph(),
			[]Option{WithWorkers(4)}, "prepass"},
		{"giant SCC, one worker", singleSCCGraph(),
			[]Option{WithWorkers(1)}, "sequential"},
		{"giant SCC, many workers, BUR+", singleSCCGraph(),
			[]Option{WithWorkers(4), WithAlgorithm(BURPlus)}, "sequential"},
		{"giant SCC, prepass disabled", singleSCCGraph(),
			[]Option{WithWorkers(4), WithPrepassWorkers(0)}, "sequential"},
		{"acyclic graph", FromEdges(50, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}),
			[]Option{WithWorkers(4)}, "sequential"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := Solve(ctx, tc.g, 5, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if r.Stats.Strategy != tc.want {
				t.Fatalf("auto plan chose %q, want %q", r.Stats.Strategy, tc.want)
			}
			if r.Stats.StrategyPinned {
				t.Fatal("auto plan reported as pinned")
			}
			// The engine's cached planner must agree.
			er, err := NewEngine(tc.g).Solve(ctx, 5, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if er.Stats.Strategy != tc.want {
				t.Fatalf("engine auto plan chose %q, want %q", er.Stats.Strategy, tc.want)
			}
		})
	}
}

// TestPlanPinnedStrategies: WithStrategy and WithPrepassWorkers pin the
// plan regardless of graph shape, and Stats reports the pin.
func TestPlanPinnedStrategies(t *testing.T) {
	g := multiSCCGraph() // auto would pick scc-parallel at 4 workers
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"pin sequential", []Option{WithWorkers(4), WithStrategy(StrategySequential)}, "sequential"},
		{"pin parallel", []Option{WithStrategy(StrategyParallelSCC), WithWorkers(2)}, "scc-parallel"},
		{"pin prepass", []Option{WithStrategy(StrategyPrepass), WithWorkers(2)}, "prepass"},
		{"prepass workers pin", []Option{WithWorkers(4), WithPrepassWorkers(2)}, "prepass"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := Solve(nil, g, 5, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if r.Stats.Strategy != tc.want || !r.Stats.StrategyPinned {
				t.Fatalf("plan = %q (pinned=%v), want pinned %q",
					r.Stats.Strategy, r.Stats.StrategyPinned, tc.want)
			}
		})
	}
}

// TestPlanRecordsWhatRuns: Stats must describe the executed path, so
// degenerate combinations are resolved at plan time — a pinned sequential
// plan suppresses a leftover prepass request, and a prepass pin demotes to
// sequential when the algorithm has no prepass or only one worker is
// available.
func TestPlanRecordsWhatRuns(t *testing.T) {
	g := singleSCCGraph()

	// Pinned sequential + prepass request: no prepass may run.
	r, err := Solve(nil, g, 5, WithStrategy(StrategySequential), WithPrepassWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Strategy != "sequential" || r.Stats.PrepassResolved != 0 {
		t.Fatalf("pinned sequential ran the prepass: strategy=%q resolved=%d",
			r.Stats.Strategy, r.Stats.PrepassResolved)
	}

	// Prepass pin with an algorithm that has no prepass: demoted, recorded.
	r, err = Solve(nil, g, 5, WithAlgorithm(BURPlus), WithPrepassWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Strategy != "sequential" {
		t.Fatalf("BUR+ with prepass workers recorded %q, want sequential", r.Stats.Strategy)
	}
	r, err = Solve(nil, g, 5, WithAlgorithm(BURPlus), WithStrategy(StrategyPrepass), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Strategy != "sequential" {
		t.Fatalf("pinned prepass for BUR+ recorded %q, want sequential", r.Stats.Strategy)
	}

	// Prepass pin resolving to one worker: demoted (DESIGN §6).
	r, err = Solve(nil, g, 5, WithStrategy(StrategyPrepass), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Strategy != "sequential" || r.Stats.PrepassResolved != 0 {
		t.Fatalf("one-worker prepass pin: strategy=%q resolved=%d",
			r.Stats.Strategy, r.Stats.PrepassResolved)
	}

	// Pinned prepass with an explicit (more specific) prepass worker count:
	// the count wins over the general budget, and one worker demotes.
	r, err = Solve(nil, g, 5, WithStrategy(StrategyPrepass), WithPrepassWorkers(1), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Strategy != "sequential" || r.Stats.PrepassResolved != 0 {
		t.Fatalf("prepass pin at 1 explicit worker: strategy=%q resolved=%d",
			r.Stats.Strategy, r.Stats.PrepassResolved)
	}
	r, err = Solve(nil, g, 5, WithStrategy(StrategyPrepass), WithPrepassWorkers(2), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Strategy != "prepass" || r.Stats.Workers != 2 {
		t.Fatalf("prepass pin at 2 explicit workers: strategy=%q workers=%d",
			r.Stats.Strategy, r.Stats.Workers)
	}
	if r.Stats.PrepassResolved == 0 {
		t.Fatal("promised prepass did not run")
	}
}

// TestAutoMatchesPinned: on the reference workloads the auto-selected plan
// must produce the identical cover to the same strategy pinned explicitly —
// planning changes the path, never the answer of that path.
func TestAutoMatchesPinned(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name    string
		g       *Graph
		workers int
	}{
		{"multi-scc", multiSCCGraph(), 4},
		{"single-scc", singleSCCGraph(), 4},
		{"multi-scc single worker", multiSCCGraph(), 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			auto, err := Solve(ctx, tc.g, 5, WithWorkers(tc.workers), WithOrder(OrderDegreeAsc))
			if err != nil {
				t.Fatal(err)
			}
			strat, err := ParseStrategy(auto.Stats.Strategy)
			if err != nil {
				t.Fatal(err)
			}
			pinned, err := Solve(ctx, tc.g, 5, WithWorkers(tc.workers),
				WithOrder(OrderDegreeAsc), WithStrategy(strat))
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(auto.Cover, pinned.Cover) {
				t.Fatalf("auto cover %v != pinned-%v cover %v", auto.Cover, strat, pinned.Cover)
			}
			if rep := Verify(tc.g, 5, 3, auto.Cover, false); !rep.Valid {
				t.Fatal("auto cover invalid")
			}
		})
	}
}

// TestEngineSolveMatchesPackageSolve across repeated runs (recycled
// scratch) and strategies.
func TestEngineSolveMatchesPackageSolve(t *testing.T) {
	ctx := context.Background()
	for _, g := range []*Graph{multiSCCGraph(), singleSCCGraph()} {
		for _, opts := range [][]Option{
			nil,
			{WithWorkers(4)},
			{WithAlgorithm(BURPlus)},
			{WithWorkers(3), WithStrategy(StrategyParallelSCC)},
		} {
			want, err := Solve(ctx, g, 5, opts...)
			if err != nil {
				t.Fatal(err)
			}
			e := NewEngine(g)
			for round := 0; round < 3; round++ {
				got, err := e.Solve(ctx, 5, opts...)
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(got.Cover, want.Cover) {
					t.Fatalf("round %d: engine cover %v != package cover %v",
						round, got.Cover, want.Cover)
				}
			}
		}
	}
}

// TestPrepassAutoDisabledAtOneWorker: a prepass request resolving to one
// effective worker must skip the prepass (it is strictly slower than the
// sequential loop it fronts) while producing the identical cover.
func TestPrepassAutoDisabledAtOneWorker(t *testing.T) {
	g := singleSCCGraph()
	seq, err := Solve(nil, g, 5)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Solve(nil, g, 5, WithPrepassWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if one.Stats.PrepassResolved != 0 {
		t.Fatalf("single-worker prepass ran anyway (resolved %d)", one.Stats.PrepassResolved)
	}
	if !slices.Equal(seq.Cover, one.Cover) {
		t.Fatalf("covers differ: %v vs %v", seq.Cover, one.Cover)
	}
	// With real parallelism the prepass engages and still matches.
	two, err := Solve(nil, g, 5, WithPrepassWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if two.Stats.PrepassResolved == 0 {
		t.Fatal("two-worker prepass resolved nothing on the ring workload")
	}
	if !slices.Equal(seq.Cover, two.Cover) {
		t.Fatalf("prepass cover %v != sequential %v", two.Cover, seq.Cover)
	}
}

// TestSolveEdgeCover: WithEdgeCover returns the transversal in
// Result.Edges, and removing those edges destroys every constrained cycle.
func TestSolveEdgeCover(t *testing.T) {
	g := GenSmallWorld(200, 2, 0.3, 23)
	r, err := Solve(nil, g, 5, WithEdgeCover())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) == 0 {
		t.Fatal("no edges selected on a cyclic graph")
	}
	drop := make(map[Edge]bool, len(r.Edges))
	for _, e := range r.Edges {
		drop[e] = true
	}
	b := NewBuilder(g.NumVertices())
	for _, e := range g.Edges() {
		if !drop[e] {
			b.AddEdge(e.U, e.V)
		}
	}
	if HasHopConstrainedCycle(b.Build(), 5) {
		t.Fatal("constrained cycle survives the edge transversal")
	}
}

// TestSolveUnconstrained: WithUnconstrained covers cycles of every length.
func TestSolveUnconstrained(t *testing.T) {
	// A 9-ring has exactly one (long) cycle.
	b := NewBuilder(9)
	for v := VID(0); v < 9; v++ {
		b.AddEdge(v, (v+1)%9)
	}
	g := b.Build()
	r, err := Solve(nil, g, 0, WithUnconstrained())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cover) != 1 {
		t.Fatalf("cover %v, want one vertex", r.Cover)
	}
}

// TestSolveContextCancellation: a done context passed to Solve stops the
// run under every strategy.
func TestSolveContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range [][]Option{
		{WithStrategy(StrategySequential)},
		{WithStrategy(StrategyParallelSCC), WithWorkers(2)},
		{WithStrategy(StrategyPrepass), WithWorkers(2)},
		{WithEdgeCover()},
	} {
		r, err := Solve(ctx, multiSCCGraph(), 5, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Stats.TimedOut {
			t.Fatalf("%v: cancelled context did not mark TimedOut", r.Stats.Strategy)
		}
	}
}

// TestEngineCycleQueries: the pooled engine queries agree with the
// package-level one-shot functions.
func TestEngineCycleQueries(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}})
	e := NewEngine(g)
	for round := 0; round < 3; round++ { // repeated runs exercise the pool
		if c := e.FindCycle(5, 0); len(c) != 3 {
			t.Fatalf("round %d: FindCycle = %v", round, c)
		}
		if c := e.FindCycle(5, 3); c != nil {
			t.Fatalf("round %d: vertex 3 is on no cycle, got %v", round, c)
		}
		if !e.HasHopConstrainedCycle(5) {
			t.Fatalf("round %d: graph has a triangle", round)
		}
	}
	dag := NewEngine(FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}))
	if dag.HasHopConstrainedCycle(5) {
		t.Fatal("DAG has no cycle")
	}
}
