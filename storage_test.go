package tdb

import (
	"context"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// openMappedCopy round-trips g through the TDBCSR1 format and opens it.
func openMappedCopy(t *testing.T, g *Graph) *MappedGraph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.tdbcsr")
	if err := SaveMapped(path, g); err != nil {
		t.Fatalf("SaveMapped: %v", err)
	}
	mg, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	t.Cleanup(func() { mg.Close() })
	return mg
}

// TestMappedCoversBitIdentical is the storage-equivalence property: for
// every graph shape × hop bound × execution strategy, solving against the
// memory-mapped backend must produce the exact cover the in-memory backend
// produces — same vertices, same order. Anything weaker would make storage
// a semantic knob instead of a placement knob.
func TestMappedCoversBitIdentical(t *testing.T) {
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"erdos-renyi", GenErdosRenyi(200, 800, 11)},
		{"powerlaw", GenPowerLaw(300, 1500, 2.2, 0.25, 12)},
		{"smallworld", GenSmallWorld(150, 3, 0.4, 13)},
		{"planted", GenPlantedCycles(200, 12, 3, 6, 600, 14).Graph},
	}
	strategies := []struct {
		name string
		s    Strategy
	}{
		{"auto", StrategyAuto},
		{"sequential", StrategySequential},
		{"parallel-scc", StrategyParallelSCC},
		{"prepass", StrategyPrepass},
	}
	ctx := context.Background()
	for _, tg := range graphs {
		mg := openMappedCopy(t, tg.g)
		for _, k := range []int{3, 5} {
			for _, st := range strategies {
				name := tg.name + "/k=" + string(rune('0'+k)) + "/" + st.name
				t.Run(name, func(t *testing.T) {
					mem, err := Solve(ctx, tg.g, k, WithStrategy(st.s))
					if err != nil {
						t.Fatalf("memory solve: %v", err)
					}
					mapped, err := Solve(ctx, nil, k, WithStorage(mg), WithStrategy(st.s))
					if err != nil {
						t.Fatalf("mapped solve: %v", err)
					}
					if !slices.Equal(mem.Cover, mapped.Cover) {
						t.Fatalf("covers diverge:\nmemory: %v\nmapped: %v", mem.Cover, mapped.Cover)
					}
					if mem.Stats.Storage != "memory" {
						t.Errorf("memory solve stamped Storage=%q", mem.Stats.Storage)
					}
					if mapped.Stats.Storage != "mapped" {
						t.Errorf("mapped solve stamped Storage=%q", mapped.Stats.Storage)
					}
					if rep := Verify(mg, k, 3, mapped.Cover, false); !rep.Valid {
						t.Fatalf("mapped cover invalid: surviving cycle %v", rep.Witness)
					}
				})
			}
		}
	}
}

func TestWithStorageSemantics(t *testing.T) {
	g := GenErdosRenyi(100, 400, 21)
	mg := openMappedCopy(t, g)
	ctx := context.Background()

	t.Run("nil-graph-without-storage", func(t *testing.T) {
		if _, err := Solve(ctx, nil, 4); err == nil {
			t.Fatal("Solve(nil) without WithStorage succeeded")
		}
	})
	t.Run("storage-wins-over-graph-arg", func(t *testing.T) {
		empty := GenErdosRenyi(10, 0, 1)
		res, err := Solve(ctx, empty, 4, WithStorage(mg))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Storage != "mapped" {
			t.Fatalf("Storage = %q, want mapped (WithStorage must win)", res.Stats.Storage)
		}
	})
	t.Run("renumbering-requires-memory", func(t *testing.T) {
		_, err := Solve(ctx, nil, 4, WithStorage(mg), WithRenumbering(RenumberDegree))
		if err == nil || !strings.Contains(err.Error(), "mapped") {
			t.Fatalf("renumbering a mapped backend: err = %v, want backend error", err)
		}
	})
}

func TestNewStorageEngine(t *testing.T) {
	g := GenErdosRenyi(120, 500, 31)
	mg := openMappedCopy(t, g)
	ctx := context.Background()

	eng := NewStorageEngine(mg)
	if eng.Graph() != Storage(mg) {
		t.Fatal("Engine.Graph() does not expose the configured storage")
	}
	want, err := Cover(g, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeated solves reuse pooled state
		res, err := eng.Cover(ctx, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(res.Cover, want.Cover) {
			t.Fatalf("engine cover diverges from memory cover on iteration %d", i)
		}
	}

	t.Run("foreign-storage-rejected", func(t *testing.T) {
		other := openMappedCopy(t, GenErdosRenyi(50, 200, 32))
		if _, err := eng.Solve(ctx, 5, WithStorage(other)); err == nil {
			t.Fatal("engine accepted WithStorage naming a different backend")
		}
	})
}
