module tdb

go 1.24
