package tdb

import (
	"path/filepath"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.Build()

	res, err := Cover(g, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 1 {
		t.Fatalf("cover = %v, want one vertex", res.Cover)
	}
	rep := Verify(g, 5, 3, res.Cover, true)
	if !rep.Valid || !rep.Minimal {
		t.Fatalf("verify failed: %+v", rep)
	}
}

func TestCoverWithAllAlgorithms(t *testing.T) {
	g := GenPowerLaw(300, 1800, 2.2, 0.3, 7)
	for _, algo := range []Algorithm{BUR, BURPlus, TDB, TDBPlus, TDBPlusPlus, DARCDV} {
		res, err := CoverWith(g, algo, 4, &Options{Order: OrderDegreeAsc})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		rep := Verify(g, 4, 3, res.Cover, false)
		if !rep.Valid {
			t.Fatalf("%v: invalid cover", algo)
		}
	}
}

func TestCoverAllCycles(t *testing.T) {
	// A 9-ring has only one (long) cycle.
	b := NewBuilder(9)
	for v := VID(0); v < 9; v++ {
		b.AddEdge(v, (v+1)%9)
	}
	g := b.Build()
	res, err := CoverAllCycles(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 1 {
		t.Fatalf("cover = %v, want one vertex", res.Cover)
	}
}

func TestFindCycleAndHas(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}})
	if c := FindCycle(g, 5, 0); len(c) != 3 {
		t.Fatalf("FindCycle = %v", c)
	}
	if c := FindCycle(g, 5, 3); c != nil {
		t.Fatalf("vertex 3 is on no cycle, got %v", c)
	}
	if !HasHopConstrainedCycle(g, 5) {
		t.Fatal("graph has a triangle")
	}
	dag := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if HasHopConstrainedCycle(dag, 5) {
		t.Fatal("DAG has no cycle")
	}
}

func TestEnumerateCycles(t *testing.T) {
	g := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	n := 0
	EnumerateCycles(g, 5, func(c []VID) bool {
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("enumerated %d cycles, want 1", n)
	}
}

func TestGraphIORoundTrip(t *testing.T) {
	g := GenErdosRenyi(50, 200, 3)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip lost edges")
	}
}

func TestDatasetsFacade(t *testing.T) {
	if len(Datasets()) != 16 {
		t.Fatal("want 16 datasets")
	}
	d, ok := DatasetByName("GNU")
	if !ok {
		t.Fatal("GNU missing")
	}
	g := d.Generate(0.01)
	if g.NumVertices() == 0 {
		t.Fatal("empty dataset graph")
	}
}

func TestGenFacades(t *testing.T) {
	if g := GenSmallWorld(50, 2, 0.3, 1); g.NumVertices() != 50 {
		t.Fatal("small world facade broken")
	}
	p := GenPlantedCycles(60, 3, 3, 4, 50, 2)
	if len(p.Cycles) != 3 {
		t.Fatal("planted facade broken")
	}
}
