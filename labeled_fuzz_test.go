package tdb

import (
	"context"
	"testing"
)

// FuzzLabeledStream drives the whole labeled surface from raw bytes: an
// arbitrary op stream builds a LabeledBuilder graph, solves it with a
// fuzzer-chosen (possibly absurd) k, seeds a LabeledMaintainer from the
// result and replays the rest of the stream as a mixed insert/delete batch.
// Contract under ANY input: absurd parameters error cleanly, nothing ever
// panics, and every cover handed back — solved or maintained — verifies
// valid against its graph.
func FuzzLabeledStream(f *testing.F) {
	f.Add([]byte{5, 0, 0, 1, 0, 1, 2, 0, 2, 0})          // k=5 triangle
	f.Add([]byte{3, 0, 7, 7})                            // self-loop
	f.Add([]byte{0})                                     // k=0: must error
	f.Add([]byte{255, 0, 1, 2, 1, 1, 2})                 // absurd k, delete
	f.Add([]byte{6, 0, 0, 1, 0, 1, 0, 2, 3, 3, 1, 0, 1}) // dup edges, isolated, delete
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		k := int(data[0]) // 0..255: below MinLen, sane, and absurdly large
		ops := data[1:]
		if len(ops) > 240 { // bound per-iteration work
			ops = ops[:240]
		}

		// Phase 1: build. Labels are single-byte strings, so the interned
		// universe is small and dense regardless of input.
		lb := NewLabeledBuilder[string]()
		var rest [][3]byte // replayed against the maintainer in phase 3
		for len(ops) >= 3 {
			op, ub, vb := ops[0]%3, ops[1], ops[2]
			ops = ops[3:]
			switch op {
			case 0:
				lb.AddEdge(string(ub), string(vb))
			case 1:
				lb.Intern(string(ub)) // possibly isolated vertex
			default:
				rest = append(rest, [3]byte{op, ub, vb})
			}
		}
		lg := lb.Build()

		res, err := lg.Solve(context.Background(), k)
		if k < 3 {
			if err == nil {
				t.Fatalf("k=%d below minimum cycle length: Solve accepted it", k)
			}
			return
		}
		if err != nil {
			t.Fatalf("k=%d n=%d: %v", k, lg.NumVertices(), err)
		}
		if rep := Verify(lg.Graph(), k, 3, res.Raw.Cover, false); !rep.Valid {
			t.Fatalf("solved cover invalid: surviving cycle %v", rep.Witness)
		}

		// Phase 2+3: maintain under the remaining stream. Deletes of unknown
		// labels and re-inserts of duplicates must be absorbed silently.
		lm, err := lg.Maintainer(k, 3, res.Cover)
		if err != nil {
			t.Fatalf("seeding maintainer from its own solve: %v", err)
		}
		for i, r := range rest {
			u, v := string(r[1]), string(r[2])
			if i%2 == 0 {
				lm.ApplyBatch([]LabeledUpdate[string]{
					{Op: UpdateInsert, U: u, V: v},
					{Op: UpdateDelete, U: v, V: u},
				})
			} else {
				lm.InsertEdge(u, v)
				lm.DeleteEdge(u, v)
			}
		}
		if rep := lm.Verify(false); !rep.Valid {
			t.Fatalf("maintained cover invalid after %d replayed ops: surviving cycle %v",
				len(rest), rep.Witness)
		}
	})
}
