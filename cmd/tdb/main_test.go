package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdb/internal/digraph"
)

func writeTriangle(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tri.txt")
	g := digraph.FromEdges(3, []digraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	if err := digraph.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunComputesCover(t *testing.T) {
	path := writeTriangle(t)
	var out bytes.Buffer
	err := run([]string{"-graph", path, "-k", "5", "-verify"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Fields(out.String())
	if len(got) != 1 {
		t.Fatalf("cover output %q, want one vertex", out.String())
	}
}

func TestRunWritesOutFile(t *testing.T) {
	path := writeTriangle(t)
	outPath := filepath.Join(t.TempDir(), "cover.txt")
	if err := run([]string{"-graph", path, "-out", outPath, "-algo", "BUR+"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Fields(string(data))) != 1 {
		t.Fatalf("cover file %q, want one vertex", data)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTriangle(t)
	cases := [][]string{
		{},                                     // missing -graph
		{"-graph", "/does/not/exist"},          // bad file
		{"-graph", path, "-algo", "NOPE"},      // bad algorithm
		{"-graph", path, "-order", "sideways"}, // bad order
		{"-graph", path, "-k", "1"},            // k < minlen
	}
	for i, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("case %d (%v): expected error", i, args)
		}
	}
}

func TestRunAllOrders(t *testing.T) {
	path := writeTriangle(t)
	for _, ord := range []string{"natural", "degree-asc", "degree-desc", "random"} {
		if err := run([]string{"-graph", path, "-order", ord}, &bytes.Buffer{}); err != nil {
			t.Fatalf("order %s: %v", ord, err)
		}
	}
}

func TestRunTimeout(t *testing.T) {
	// Build a graph big enough that a 1ns timeout triggers.
	dir := t.TempDir()
	path := filepath.Join(dir, "big.txt")
	b := digraph.NewBuilder(2000)
	for v := 0; v < 2000; v++ {
		b.AddEdge(digraph.VID(v), digraph.VID((v+1)%2000))
		b.AddEdge(digraph.VID(v), digraph.VID((v+7)%2000))
		b.AddEdge(digraph.VID((v+3)%2000), digraph.VID(v))
	}
	if err := digraph.SaveFile(path, b.Build()); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-graph", path, "-timeout", "1ns"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout error, got %v", err)
	}
	// The sentinel is what main maps to exit code 124; it must survive the
	// wrapping, and must NOT look like an interrupt (130).
	if !errors.Is(err, errTimedOut) {
		t.Fatalf("timeout error %v does not wrap errTimedOut", err)
	}
	if errors.Is(err, errCanceled) {
		t.Fatalf("timeout error %v wrongly wraps errCanceled", err)
	}
}

func TestRunTimeoutDegrade(t *testing.T) {
	// Same expired deadline, but with -degrade the run must succeed with a
	// valid (conservative) cover instead of failing.
	path := writeTriangle(t)
	var out bytes.Buffer
	err := run([]string{"-graph", path, "-timeout", "1ns", "-degrade", "-verify"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Fields(out.String())) == 0 {
		t.Fatal("degraded run wrote no cover")
	}
}
