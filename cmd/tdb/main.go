// Command tdb computes a hop-constrained cycle cover of a directed graph.
//
// Usage:
//
//	tdb -graph g.txt -k 5 [-algo TDB++] [-minlen 3] [-order natural]
//	    [-scc] [-prepass N] [-timeout 60s] [-out cover.txt] [-verify]
//
// The graph file is a SNAP-style text edge list ("u v" per line, '#'
// comments) or the binary format for ".bin" paths. The cover is written one
// vertex ID per line.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"tdb/internal/core"
	"tdb/internal/digraph"
	"tdb/internal/verify"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tdb:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tdb", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "input graph file (required)")
		k         = fs.Int("k", 5, "hop constraint: cover cycles of length minlen..k")
		algoName  = fs.String("algo", "TDB++", "algorithm: BUR, BUR+, TDB, TDB+, TDB++ or DARC-DV")
		minLen    = fs.Int("minlen", 3, "minimum cycle length (2 includes 2-cycles)")
		orderName = fs.String("order", "natural", "candidate order: natural, degree-asc, degree-desc, random")
		seed      = fs.Uint64("seed", 0, "seed for -order random")
		sccPre    = fs.Bool("scc", false, "enable the SCC prefilter")
		prepass   = fs.Int("prepass", 0, "parallel BFS-filter prepass workers for TDB++ (0 = off, -1 = all cores)")
		timeout   = fs.Duration("timeout", 0, "abort after this duration (0 = unlimited)")
		outPath   = fs.String("out", "", "write the cover here (default stdout)")
		doVerify  = fs.Bool("verify", false, "verify validity and minimality of the result")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}
	algo, err := core.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	order, err := parseOrder(*orderName)
	if err != nil {
		return err
	}

	g, err := digraph.LoadFile(*graphPath)
	if err != nil {
		return fmt.Errorf("loading graph: %w", err)
	}
	fmt.Fprintf(os.Stderr, "loaded %v\n", g)

	opts := core.Options{K: *k, MinLen: *minLen, Order: order, Seed: *seed, SCCPrefilter: *sccPre, PrepassWorkers: *prepass}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts.Context = ctx
	res, err := core.Compute(g, algo, opts)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Fprintf(os.Stderr, "%s k=%d minlen=%d: cover=%d vertices in %v (checked=%d, filter-pruned=%d, scc-skipped=%d)\n",
		st.Algorithm, st.K, st.MinLen, st.CoverSize, st.Duration.Round(time.Millisecond),
		st.Checked, st.FilterPruned, st.SCCSkipped)
	if st.TimedOut {
		return fmt.Errorf("timed out after %v; partial cover not written", *timeout)
	}

	if *doVerify {
		wantMinimal := algo != core.BUR && algo != core.DARCDV
		rep := verify.Check(g, *k, *minLen, res.Cover, wantMinimal)
		switch {
		case !rep.Valid:
			return fmt.Errorf("verification FAILED: surviving cycle %v", rep.Witness)
		case wantMinimal && !rep.Minimal:
			return fmt.Errorf("verification FAILED: redundant vertices %v", rep.Redundant)
		default:
			fmt.Fprintln(os.Stderr, "verification passed")
		}
	}

	w := bufio.NewWriter(out)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	for _, v := range res.Cover {
		fmt.Fprintln(w, v)
	}
	return w.Flush()
}

func parseOrder(s string) (core.Order, error) {
	switch s {
	case "natural":
		return core.OrderNatural, nil
	case "degree-asc":
		return core.OrderDegreeAsc, nil
	case "degree-desc":
		return core.OrderDegreeDesc, nil
	case "random":
		return core.OrderRandom, nil
	}
	return 0, fmt.Errorf("unknown order %q", s)
}
