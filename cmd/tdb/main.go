// Command tdb computes a hop-constrained cycle cover of a directed graph.
//
// Usage:
//
//	tdb -graph g.txt -k 5 [-algo TDB++] [-minlen 3] [-order natural]
//	    [-scc] [-strategy auto] [-workers 0] [-prepass N] [-timeout 60s]
//	    [-edges] [-out cover.txt] [-verify]
//
// The graph file is a SNAP-style text edge list ("u v" per line, '#'
// comments) or the binary format for ".bin" paths. The cover is written one
// vertex ID per line ("u v" edges per line with -edges). By default the
// solver plans its own execution strategy from the graph's SCC structure
// and the worker budget; -strategy pins it.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tdb"
)

// Sentinel errors so scripts can tell WHY a run produced no cover: a solve
// that outgrew its -timeout exits 124 (the timeout(1) convention), an
// interrupt exits 130 (128+SIGINT), and bad input stays at 1.
var (
	errTimedOut = errors.New("timed out")
	errCanceled = errors.New("canceled")
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tdb:", err)
		switch {
		case errors.Is(err, errTimedOut):
			os.Exit(124)
		case errors.Is(err, errCanceled):
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tdb", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "input graph file (required)")
		k         = fs.Int("k", 5, "hop constraint: cover cycles of length minlen..k")
		algoName  = fs.String("algo", "TDB++", "algorithm: BUR, BUR+, TDB, TDB+, TDB++ or DARC-DV")
		minLen    = fs.Int("minlen", 3, "minimum cycle length (2 includes 2-cycles)")
		orderName = fs.String("order", "natural", "candidate order: natural, degree-asc, degree-desc, random")
		seed      = fs.Uint64("seed", 0, "seed for -order random")
		sccPre    = fs.Bool("scc", false, "enable the SCC prefilter")
		stratName = fs.String("strategy", "auto", "execution strategy: auto, sequential, scc-parallel, prepass")
		workers   = fs.Int("workers", 0, "worker budget for strategy selection (0 = all cores)")
		prepass   = fs.Int("prepass", 0, "pin the TDB++ BFS-filter prepass to this many workers (0 = let -strategy decide, -1 = all cores)")
		timeout   = fs.Duration("timeout", 0, "abort after this duration (0 = unlimited)")
		degrade   = fs.Bool("degrade", false, "on timeout, write the valid-but-possibly-non-minimal cover instead of failing")
		edgeMode  = fs.Bool("edges", false, "compute the EDGE transversal instead of the vertex cover")
		outPath   = fs.String("out", "", "write the cover here (default stdout)")
		doVerify  = fs.Bool("verify", false, "verify validity and minimality of the result")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}
	algo, err := tdb.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	order, err := tdb.ParseOrder(*orderName)
	if err != nil {
		return err
	}
	if order == tdb.OrderWeighted {
		// The library order exists, but the CLI has no weights input.
		return fmt.Errorf("-order weighted needs a per-vertex weights input, which this tool does not take (want natural, degree-asc, degree-desc or random)")
	}
	strategy, err := tdb.ParseStrategy(*stratName)
	if err != nil {
		return err
	}

	g, err := tdb.LoadGraph(*graphPath)
	if err != nil {
		return fmt.Errorf("loading graph: %w", err)
	}
	fmt.Fprintf(os.Stderr, "loaded %v\n", g)

	// Ctrl-C cancels the solve rather than killing the process mid-write;
	// the exit code then distinguishes interrupt (130) from timeout (124).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := []tdb.Option{
		tdb.WithAlgorithm(algo),
		tdb.WithMinLen(*minLen),
		tdb.WithOrder(order),
		tdb.WithSeed(*seed),
		tdb.WithStrategy(strategy),
		tdb.WithWorkers(*workers),
	}
	if *sccPre {
		opts = append(opts, tdb.WithSCCPrefilter())
	}
	if *prepass != 0 {
		opts = append(opts, tdb.WithPrepassWorkers(*prepass))
	}
	if *edgeMode {
		opts = append(opts, tdb.WithEdgeCover())
	}
	if *degrade {
		opts = append(opts, tdb.WithPartialOnDeadline())
	}
	res, err := tdb.Solve(ctx, g, *k, opts...)
	if err != nil {
		return err
	}
	st := res.Stats
	batched := ""
	if st.FilterBatchWidth > 0 {
		batched = fmt.Sprintf(", filter-batches=%dx%d lanes", st.Detector.Batches, st.FilterBatchWidth)
	}
	fmt.Fprintf(os.Stderr, "%s k=%d minlen=%d [%s, %d workers]: cover=%d in %v (checked=%d, filter-pruned=%d, scc-skipped=%d%s)\n",
		st.Algorithm, st.K, st.MinLen, st.Strategy, st.Workers,
		st.CoverSize, st.Duration.Round(time.Millisecond),
		st.Checked, st.FilterPruned, st.SCCSkipped, batched)
	if st.TimedOut {
		if st.StopReason == "canceled" {
			return fmt.Errorf("%w (interrupt); partial cover not written", errCanceled)
		}
		return fmt.Errorf("%w after %v; partial cover not written", errTimedOut, *timeout)
	}
	if st.Degraded {
		fmt.Fprintf(os.Stderr, "deadline hit (%s): cover is valid but possibly non-minimal\n", st.StopReason)
	}

	if *doVerify {
		if *edgeMode {
			fmt.Fprintln(os.Stderr, "note: -verify checks vertex covers; skipping for -edges")
		} else {
			// Degraded covers trade minimality for the deadline; only
			// validity can be demanded of them.
			wantMinimal := algo != tdb.BUR && algo != tdb.DARCDV && !st.Degraded
			rep := tdb.Verify(g, *k, *minLen, res.Cover, wantMinimal)
			switch {
			case !rep.Valid:
				return fmt.Errorf("verification FAILED: surviving cycle %v", rep.Witness)
			case wantMinimal && !rep.Minimal:
				return fmt.Errorf("verification FAILED: redundant vertices %v", rep.Redundant)
			default:
				fmt.Fprintln(os.Stderr, "verification passed")
			}
		}
	}

	w := bufio.NewWriter(out)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if *edgeMode {
		for _, e := range res.Edges {
			fmt.Fprintln(w, e.U, e.V)
		}
	} else {
		for _, v := range res.Cover {
			fmt.Fprintln(w, v)
		}
	}
	return w.Flush()
}
