package main

// The -bench mode: a fixed micro-benchmark suite over the reference
// workloads, written as a machine-readable BENCH_<timestamp>.json so the
// perf trajectory of the hot paths is recorded per commit (the CI
// bench-smoke job uploads the file as an artifact). The suite is
// self-timed — warm-up, then iterations until a per-benchmark time budget
// — so it runs in a plain binary without the testing harness.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"tdb"
	"tdb/internal/cycle"
	"tdb/internal/gen"
)

// benchEntry is one benchmark's measurement.
type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// benchReport is the BENCH_*.json document.
type benchReport struct {
	Generated        string                `json:"generated"`
	GoVersion        string                `json:"go_version"`
	GOMAXPROCS       int                   `json:"gomaxprocs"`
	FilterBatchWidth int                   `json:"filter_batch_width"`
	Benchmarks       map[string]benchEntry `json:"benchmarks"`
}

// measure runs fn repeatedly for at least budget (after one warm-up call)
// and reports per-op time and allocation averages.
func measure(budget time.Duration, fn func()) benchEntry {
	fn() // warm up: pools, lazy buffers, code paths
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	n := 0
	for time.Since(start) < budget {
		fn()
		n++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return benchEntry{
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(n),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
		Iterations:  n,
	}
}

// runBenchSuite executes the suite and writes BENCH_<timestamp>.json into
// dir, returning the file path.
func runBenchSuite(dir string, budget time.Duration) (string, error) {
	ctx := context.Background()
	wkv, ok := gen.DatasetByName("WKV")
	if !ok {
		return "", fmt.Errorf("reference dataset WKV missing from the registry")
	}
	g := wkv.Generate(0.2) // the mid-size reference workload (n=1400, m~20k)
	plaw := gen.PowerLaw(5000, 30000, 2.0, 0.05, 9)

	// The same WKV workload out of a memory-mapped TDBCSR1 file, so every
	// report carries a memory-vs-mapped row pair for the solver hot path.
	tmp, err := os.MkdirTemp("", "tdbbench-")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp)
	mappedPath := filepath.Join(tmp, "wkv.tdbcsr")
	if err := tdb.SaveMapped(mappedPath, g); err != nil {
		return "", err
	}
	mg, err := tdb.OpenMapped(mappedPath)
	if err != nil {
		return "", err
	}
	defer mg.Close()

	eng := tdb.NewEngine(g)
	mappedEng := tdb.NewStorageEngine(mg)
	scalar := cycle.NewBFSFilter(plaw, 5, nil)
	batch := cycle.NewBatchBFSFilter(plaw, 5, nil)
	plawEdges := plaw.Edges()
	plawUpdates := make([]tdb.Update, len(plawEdges))
	for i, e := range plawEdges {
		plawUpdates[i] = tdb.InsertOp(e.U, e.V)
	}

	suite := []struct {
		name string
		fn   func()
	}{
		{"CoverOneShot/TDB++", func() {
			if _, err := tdb.Cover(g, 5, nil); err != nil {
				panic(err)
			}
		}},
		{"CoverRepeated/Engine", func() {
			if _, err := eng.Cover(ctx, 5, nil); err != nil {
				panic(err)
			}
		}},
		{"CoverRepeated/Engine/mapped", func() {
			if _, err := mappedEng.Cover(ctx, 5, nil); err != nil {
				panic(err)
			}
		}},
		{"BFSFilterScalar/powerlaw", func() {
			for v := 0; v < plaw.NumVertices(); v++ {
				scalar.CanPrune(tdb.VID(v))
			}
		}},
		{"BFSFilterBatch/powerlaw", func() {
			batch.VisitUnpruned(plaw.NumVertices(), func(tdb.VID) bool { return true })
		}},
		{"HasHopConstrainedCycle/WKV", func() {
			tdb.HasHopConstrainedCycle(g, 5)
		}},
		{"HasHopConstrainedCycle/WKV/mapped", func() {
			tdb.HasHopConstrainedCycle(mg, 5)
		}},
		{"MaintainerInsert/powerlaw", func() {
			m := tdb.NewMaintainer(plaw.NumVertices(), 5, 3)
			for _, e := range plawEdges {
				m.InsertEdge(e.U, e.V)
			}
		}},
		{"MaintainerInsertBatch/powerlaw", func() {
			m := tdb.NewMaintainer(plaw.NumVertices(), 5, 3)
			for lo := 0; lo < len(plawUpdates); lo += 256 {
				m.ApplyBatch(plawUpdates[lo:min(lo+256, len(plawUpdates))])
			}
		}},
		{"MaintainerChurn/powerlaw", func() {
			m := tdb.NewMaintainer(plaw.NumVertices(), 5, 3)
			for i, e := range plawEdges {
				m.InsertEdge(e.U, e.V)
				if i%3 == 2 && i >= 64 {
					d := plawEdges[i-64]
					m.DeleteEdge(d.U, d.V)
				}
				if i%4096 == 4095 {
					m.Reminimize()
				}
			}
			m.Reminimize()
		}},
	}

	rep := benchReport{
		Generated:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		FilterBatchWidth: cycle.MaxBatchWidth,
		Benchmarks:       make(map[string]benchEntry, len(suite)),
	}
	for _, b := range suite {
		rep.Benchmarks[b.name] = measure(budget, b.fn)
		e := rep.Benchmarks[b.name]
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %10.1f allocs/op (%d iters)\n",
			b.name, e.NsPerOp, e.AllocsPerOp, e.Iterations)
	}

	path := filepath.Join(dir, "BENCH_"+time.Now().UTC().Format("20060102T150405Z")+".json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
