package main

import (
	"testing"
)

func TestListMode(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                                // missing -exp
		{"-exp", "bogus", "-quick"},       // unknown experiment
		{"-exp", "table4", "-order", "x"}, // bad order
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("case %d (%v): expected error", i, args)
		}
	}
}

func TestQuickNohop(t *testing.T) {
	// The smallest real experiment end to end through the CLI layer.
	if err := run([]string{"-exp", "nohop", "-quick", "-order", "natural"}); err != nil {
		t.Fatal(err)
	}
}
