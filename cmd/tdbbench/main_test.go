package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchMode runs the micro-benchmark suite with a tiny time budget and
// validates the BENCH_*.json report it writes.
func TestBenchMode(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-bench", "-bench-out", dir, "-bench-time", "1ms"}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected exactly one BENCH_*.json, got %v (err %v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.FilterBatchWidth != 64 {
		t.Fatalf("filter_batch_width = %d, want 64", rep.FilterBatchWidth)
	}
	for _, name := range []string{"CoverRepeated/Engine", "BFSFilterBatch/powerlaw"} {
		e, ok := rep.Benchmarks[name]
		if !ok {
			t.Fatalf("report is missing benchmark %q", name)
		}
		if e.NsPerOp <= 0 || e.Iterations <= 0 {
			t.Fatalf("benchmark %q has empty measurement: %+v", name, e)
		}
	}
}

func TestListMode(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                                // missing -exp
		{"-exp", "bogus", "-quick"},       // unknown experiment
		{"-exp", "table4", "-order", "x"}, // bad order
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("case %d (%v): expected error", i, args)
		}
	}
}

func TestQuickNohop(t *testing.T) {
	// The smallest real experiment end to end through the CLI layer.
	if err := run([]string{"-exp", "nohop", "-quick", "-order", "natural"}); err != nil {
		t.Fatal(err)
	}
}
