package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdb/internal/cycle"
)

// TestBenchMode runs the micro-benchmark suite with a tiny time budget and
// validates the BENCH_*.json report it writes.
func TestBenchMode(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-bench", "-bench-out", dir, "-bench-time", "1ms"}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected exactly one BENCH_*.json, got %v (err %v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.FilterBatchWidth != cycle.MaxBatchWidth {
		t.Fatalf("filter_batch_width = %d, want %d", rep.FilterBatchWidth, cycle.MaxBatchWidth)
	}
	for _, name := range []string{"CoverRepeated/Engine", "BFSFilterBatch/powerlaw"} {
		e, ok := rep.Benchmarks[name]
		if !ok {
			t.Fatalf("report is missing benchmark %q", name)
		}
		if e.NsPerOp <= 0 || e.Iterations <= 0 {
			t.Fatalf("benchmark %q has empty measurement: %+v", name, e)
		}
	}
}

// writeBenchReport writes a synthetic report for the -compare tests.
func writeBenchReport(t *testing.T, dir, name string, ns map[string]float64) string {
	t.Helper()
	rep := benchReport{Benchmarks: make(map[string]benchEntry, len(ns))}
	for bench, v := range ns {
		rep.Benchmarks[bench] = benchEntry{NsPerOp: v, Iterations: 10}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareMode(t *testing.T) {
	dir := t.TempDir()
	base := writeBenchReport(t, dir, "base.json", map[string]float64{
		"a": 1000, "b": 2000, "gone": 10,
	})
	// Within threshold: +5% on a, improvement on b, one added, one removed.
	ok := writeBenchReport(t, dir, "ok.json", map[string]float64{
		"a": 1050, "b": 1500, "new": 7,
	})
	if err := run([]string{"-compare", base, ok}); err != nil {
		t.Fatalf("within-threshold compare failed: %v", err)
	}
	// a regresses 50%: default threshold must fail, a loose one must pass.
	bad := writeBenchReport(t, dir, "bad.json", map[string]float64{
		"a": 1500, "b": 2000,
	})
	err := run([]string{"-compare", base, bad})
	if err == nil || !strings.Contains(err.Error(), "a (+50.0%)") {
		t.Fatalf("regression not gated: %v", err)
	}
	if err := run([]string{"-compare", "-threshold", "0.6", base, bad}); err != nil {
		t.Fatalf("loose threshold still failed: %v", err)
	}
}

func TestCompareErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeBenchReport(t, dir, "good.json", map[string]float64{"a": 1})
	for i, args := range [][]string{
		{"-compare", good},                // missing second path
		{"-compare", good, "/nope"},       // unreadable
		{"-compare", empty, good},         // no benchmarks
		{"-compare", good, good, "extra"}, // too many paths
	} {
		if err := run(args); err == nil {
			t.Fatalf("case %d (%v): expected error", i, args)
		}
	}
}

func TestListMode(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                                // missing -exp
		{"-exp", "bogus", "-quick"},       // unknown experiment
		{"-exp", "table4", "-order", "x"}, // bad order
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("case %d (%v): expected error", i, args)
		}
	}
}

func TestQuickNohop(t *testing.T) {
	// The smallest real experiment end to end through the CLI layer.
	if err := run([]string{"-exp", "nohop", "-quick", "-order", "natural"}); err != nil {
		t.Fatal(err)
	}
}
