package main

// The -compare mode: diff two BENCH_*.json reports (see bench.go) and
// gate on regressions. This is how the perf trajectory is enforced rather
// than merely recorded — CI keeps a committed baseline (bench/BASELINE.json)
// and fails the build when a hot path slows past the threshold.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// loadBenchReport reads and decodes one BENCH_*.json file.
func loadBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &rep, nil
}

// compareReports prints a per-benchmark ns/op delta table between a
// baseline and a new report, and returns an error naming every benchmark
// that regressed by more than threshold (fractional: 0.10 fails a >10%
// slowdown). Benchmarks present on only one side are listed but never
// fail the gate — suites are allowed to grow and shrink.
func compareReports(basePath, newPath string, threshold float64, w io.Writer) error {
	base, err := loadBenchReport(basePath)
	if err != nil {
		return err
	}
	cur, err := loadBenchReport(newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-32s %14s %14s %9s\n", "benchmark", "base ns/op", "new ns/op", "delta")
	var regressed []string
	for _, name := range names {
		b, inBase := base.Benchmarks[name]
		c, inCur := cur.Benchmarks[name]
		switch {
		case !inCur:
			fmt.Fprintf(w, "%-32s %14.0f %14s %9s\n", name, b.NsPerOp, "-", "removed")
		case !inBase:
			fmt.Fprintf(w, "%-32s %14s %14.0f %9s\n", name, "-", c.NsPerOp, "added")
		default:
			delta := c.NsPerOp/b.NsPerOp - 1
			mark := ""
			if delta > threshold {
				mark = "  REGRESSION"
				regressed = append(regressed, fmt.Sprintf("%s (+%.1f%%)", name, delta*100))
			}
			fmt.Fprintf(w, "%-32s %14.0f %14.0f %+8.1f%%%s\n", name, b.NsPerOp, c.NsPerOp, delta*100, mark)
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past %.0f%%: %s",
			len(regressed), threshold*100, strings.Join(regressed, ", "))
	}
	return nil
}
