// Command tdbbench regenerates the paper's evaluation tables and figures
// (see DESIGN.md for the experiment index).
//
// Usage:
//
//	tdbbench -exp table3                 # one experiment
//	tdbbench -exp all -scale 0.05       # the full evaluation
//	tdbbench -list                       # show available experiments
//	tdbbench -bench [-bench-out d]       # micro-bench suite -> BENCH_*.json
//	tdbbench -compare base.json new.json # diff two reports, gate on regressions
//
// Timed-out runs print INF, like the paper's plots. Absolute numbers are
// not comparable with the paper (synthetic stand-in data at reduced scale,
// Go vs C++); the shapes are.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tdb/internal/core"
	"tdb/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tdbbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	def := exp.DefaultConfig()
	fs := flag.NewFlagSet("tdbbench", flag.ContinueOnError)
	var (
		expID      = fs.String("exp", "", "experiment ID, or all (required; see -list)")
		scale      = fs.Float64("scale", def.Scale, "dataset scale for single-k experiments")
		sweepScale = fs.Float64("sweep-scale", def.SweepScale, "dataset scale for k-sweep figures")
		largeEdges = fs.Int("large-edges", def.LargeEdges, "edge budget for the four large datasets")
		k          = fs.Int("k", def.K, "hop constraint for single-k experiments")
		kmin       = fs.Int("kmin", def.KMin, "sweep lower bound")
		kmax       = fs.Int("kmax", def.KMax, "sweep upper bound")
		timeout    = fs.Duration("timeout", def.Timeout, "per-run timeout (INF when exceeded)")
		orderName  = fs.String("order", "degree-asc", "top-down candidate order: natural, degree-asc, degree-desc, random")
		doVerify   = fs.Bool("verify", false, "verify every completed cover (slow)")
		quick      = fs.Bool("quick", false, "use the small CI configuration")
		list       = fs.Bool("list", false, "list experiments and exit")
		bench      = fs.Bool("bench", false, "run the micro-benchmark suite and write a BENCH_<timestamp>.json report")
		benchOut   = fs.String("bench-out", ".", "directory for the -bench report")
		benchTime  = fs.Duration("bench-time", 300*time.Millisecond, "per-benchmark time budget for -bench")
		compare    = fs.Bool("compare", false, "compare two BENCH_*.json reports (baseline new) and fail on regressions")
		threshold  = fs.Float64("threshold", 0.10, "fractional ns/op regression -compare tolerates per benchmark")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println("experiments:", strings.Join(exp.Experiments(), " "), "all")
		return nil
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare wants exactly two report paths (baseline new), got %d", fs.NArg())
		}
		return compareReports(fs.Arg(0), fs.Arg(1), *threshold, os.Stdout)
	}
	if *bench {
		path, err := runBenchSuite(*benchOut, *benchTime)
		if err != nil {
			return err
		}
		fmt.Println(path)
		return nil
	}
	if *expID == "" {
		fs.Usage()
		return fmt.Errorf("-exp is required")
	}

	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	cfg.Scale = *scale
	cfg.SweepScale = *sweepScale
	cfg.LargeEdges = *largeEdges
	cfg.K = *k
	cfg.KMin, cfg.KMax = *kmin, *kmax
	cfg.Timeout = *timeout
	cfg.Verify = *doVerify
	cfg.Out = os.Stdout
	order, err := core.ParseOrder(*orderName)
	if err != nil {
		return err
	}
	if order == core.OrderWeighted {
		// The experiments have no cost input; fail before any generation.
		return fmt.Errorf("-order weighted is not supported by the experiment harness (want natural, degree-asc, degree-desc or random)")
	}
	cfg.Order = order

	start := time.Now()
	if _, err := exp.Run(*expID, cfg); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "total experiment time: %v\n", time.Since(start).Round(time.Second))
	return nil
}
