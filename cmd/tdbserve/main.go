// Command tdbserve serves hop-constrained cycle cover queries over HTTP.
//
// Usage:
//
//	tdbserve -addr :8080 -k 5 [-minlen 3] [-n 1000] [-graph g.txt]
//	    [-deadline 5s] [-max-deadline 30s] [-max-concurrent 0]
//	    [-write-queue 256] [-publish-every 512] [-degrade]
//	    [-data-dir dir] [-fsync always|interval|never]
//	    [-fsync-interval 100ms] [-checkpoint-every 1024]
//
// One writer goroutine applies POSTed edge updates to a dynamic cover
// maintainer and publishes immutable epoch snapshots; reader requests
// (solve, cycle, hascycle, cover) run against the epoch current at their
// arrival. SIGINT/SIGTERM drain gracefully: admissions stop, in-flight
// requests finish, the write queue is flushed into a final epoch and the
// WAL tail is fsynced, and the process exits 0.
//
// With -data-dir, writes are durable (DESIGN.md §14): acknowledged batches
// go to a write-ahead log before the response, periodic snapshot
// checkpoints keep the log short, and a restart with the same directory
// recovers the state — including after kill -9, where a torn final record
// is discarded at a record boundary. Under -fsync always no acknowledged
// write is ever lost; interval bounds loss to the sync window; never leaves
// flushing to the OS (a graceful shutdown still loses nothing).
//
// Quickstart:
//
//	tdbserve -addr :8080 -k 5 -n 100 &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/update -d \
//	    '{"updates":[{"op":"insert","u":0,"v":1},{"op":"insert","u":1,"v":2},{"op":"insert","u":2,"v":0}],"publish":true,"wait":true}'
//	curl -s -X POST localhost:8080/v1/solve -d '{}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tdb"
	"tdb/internal/core"
	"tdb/internal/server"
	"tdb/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tdbserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tdbserve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		k           = fs.Int("k", 5, "hop constraint: maintain a cover of cycles of length minlen..k")
		minLen      = fs.Int("minlen", 3, "minimum cycle length (2 includes 2-cycles)")
		n           = fs.Int("n", 0, "initial vertex count for an empty server")
		graphPath   = fs.String("graph", "", "seed graph file (optional; solves the initial cover at startup)")
		deadline    = fs.Duration("deadline", 5*time.Second, "default per-request deadline")
		maxDeadline = fs.Duration("max-deadline", 30*time.Second, "cap on per-request deadline overrides")
		maxConc     = fs.Int("max-concurrent", 0, "reader admission limit (0 = 2x cores)")
		writeQueue  = fs.Int("write-queue", 256, "writer queue depth (full queue sheds with 429)")
		publishEach = fs.Int("publish-every", 512, "publish a fresh epoch after this many applied updates")
		degrade     = fs.Bool("degrade", false, "default solves to partial_on_deadline (valid degraded cover instead of 504)")
		store       = fs.String("store", "memory", "seed graph storage backend: memory (load into RAM) or mmap (serve the CSR out of a memory-mapped TDBCSR1 file, for graphs bigger than RAM)")
		dataDir     = fs.String("data-dir", "", "durable state directory (WAL + checkpoints); empty = in-memory only")
		fsyncMode   = fs.String("fsync", "always", "WAL sync policy: always, interval or never")
		fsyncEvery  = fs.Duration("fsync-interval", 100*time.Millisecond, "background sync cadence under -fsync interval")
		ckptEvery   = fs.Int("checkpoint-every", 1024, "write a snapshot checkpoint after this many logged updates")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := wal.ParsePolicy(*fsyncMode)
	if err != nil {
		return err
	}

	cfg := server.Config{
		NumVertices:       *n,
		K:                 *k,
		MinLen:            *minLen,
		DefaultDeadline:   *deadline,
		MaxDeadline:       *maxDeadline,
		MaxConcurrent:     *maxConc,
		WriteQueue:        *writeQueue,
		PublishEvery:      *publishEach,
		DegradeOnDeadline: *degrade,
		DataDir:           *dataDir,
		Fsync:             policy,
		FsyncInterval:     *fsyncEvery,
		CheckpointEvery:   *ckptEvery,
	}
	if *graphPath != "" {
		g, err := loadSeed(*graphPath, *store)
		if err != nil {
			return fmt.Errorf("loading graph: %w", err)
		}
		fmt.Fprintf(os.Stderr, "loaded %v\n", g)
		res, err := core.Compute(g, core.TDBPlusPlus, core.Options{K: *k, MinLen: *minLen})
		if err != nil {
			return fmt.Errorf("solving seed cover: %w", err)
		}
		fmt.Fprintf(os.Stderr, "seed cover: %d vertices in %v (storage=%s)\n",
			len(res.Cover), res.Stats.Duration.Round(time.Millisecond), res.Stats.Storage)
		cfg.Seed = g
		cfg.SeedCover = res.Cover
	} else if *store != "memory" {
		return fmt.Errorf("-store %s requires -graph", *store)
	}

	// A mapped seed stays open for the process lifetime: every published
	// epoch's base CSR aliases the mapping.
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving on %s (k=%d minlen=%d)\n", *addr, *k, *minLen)

	select {
	case err := <-errc:
		return err // bind failure or unexpected listener death
	case <-ctx.Done():
	}

	// Drain: stop accepting connections, let in-flight requests finish,
	// flush the writer, exit cleanly.
	fmt.Fprintln(os.Stderr, "signal received; draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := s.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("server drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "drained; bye")
	return nil
}

// loadSeed opens the seed graph under the requested storage backend.
// "memory" loads any supported file format into the in-memory CSR. "mmap"
// serves a TDBCSR1 file (made by tdbgen -format mapped or tdb.SaveMapped)
// zero-copy out of a memory mapping — other formats are first converted to
// a sibling .tdbcsr file, so a text edge list works with -store mmap at
// the cost of a one-time conversion.
func loadSeed(path, store string) (tdb.Storage, error) {
	switch store {
	case "memory":
		return tdb.LoadGraph(path)
	case "mmap":
		if !tdb.IsMappedFile(path) {
			g, err := tdb.LoadGraph(path)
			if err != nil {
				return nil, err
			}
			mappedPath := path + ".tdbcsr"
			if err := tdb.SaveMapped(mappedPath, g); err != nil {
				return nil, fmt.Errorf("converting to mapped format: %w", err)
			}
			fmt.Fprintf(os.Stderr, "converted %s to %s\n", path, mappedPath)
			path = mappedPath
		}
		return tdb.OpenMapped(path)
	default:
		return nil, fmt.Errorf("unknown -store %q (want memory or mmap)", store)
	}
}
