// Command tdbstat profiles a directed graph: the degree, reciprocity, SCC
// and short-cycle statistics that determine how hard a cycle-cover instance
// is (and how faithful a synthetic stand-in is to its target).
//
// Usage:
//
//	tdbstat -graph g.txt [-k 5] [-max-cycles 1000000] [-renumber degree|bfs|all]
//
// The locality lines report how the vertex numbering interacts with the
// CSR layout (mean and p90 neighbor-ID distance, adjacency bandwidth);
// -renumber additionally shows the same quantities after the chosen
// cache-aware renumbering(s), previewing what Solve's WithRenumbering
// option would run on.
package main

import (
	"flag"
	"fmt"
	"os"

	"tdb"
	"tdb/internal/graphstat"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tdbstat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tdbstat", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "graph file (required)")
		k         = fs.Int("k", 5, "count simple cycles up to this length (0 disables)")
		maxCycles = fs.Int64("max-cycles", 1_000_000, "stop the cycle census after this many")
		renumber  = fs.String("renumber", "", "also show locality after renumbering: degree, bfs or all")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}
	// OpenStorage dispatches on the file: a TDBCSR1 file is served
	// zero-copy out of a memory mapping (so profiling a larger-than-RAM
	// graph does not load it), anything else loads as usual.
	g, closeStorage, err := tdb.OpenStorage(*graphPath)
	if err != nil {
		return err
	}
	defer closeStorage()
	p := graphstat.Compute(g, graphstat.Options{K: *k, MaxCycles: *maxCycles})
	p.Fprint(os.Stdout)
	graphstat.ComputeLocality(g).Fprint(os.Stdout, "input")
	var modes []tdb.Renumbering
	switch *renumber {
	case "":
	case "all":
		modes = []tdb.Renumbering{tdb.RenumberDegree, tdb.RenumberBFS}
	default:
		mode, err := tdb.ParseRenumbering(*renumber)
		if err != nil {
			return err
		}
		if mode != tdb.RenumberNone {
			modes = []tdb.Renumbering{mode}
		}
	}
	if len(modes) > 0 {
		mg, ok := g.(*tdb.Graph)
		if !ok {
			return fmt.Errorf("-renumber needs the in-memory backend; %s is a mapped file", *graphPath)
		}
		for _, mode := range modes {
			ng := mg.Renumber(tdb.RenumberPerm(mg, mode))
			graphstat.ComputeLocality(ng).Fprint(os.Stdout, mode.String())
		}
	}
	return nil
}
