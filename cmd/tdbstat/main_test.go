package main

import (
	"path/filepath"
	"testing"

	"tdb/internal/digraph"
)

func TestStatRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	g := digraph.FromEdges(3, []digraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	if err := digraph.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", path, "-k", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", path, "-k", "0", "-renumber", "all"}); err != nil {
		t.Fatal(err)
	}
}

func TestStatErrors(t *testing.T) {
	for i, args := range [][]string{{}, {"-graph", "/nope"}, {"-graph", "/nope", "-renumber", "zorder"}} {
		if err := run(args); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}
