// Command tdbverify checks a cover file against a graph: validity (no
// surviving constrained cycle) and optionally minimality.
//
// Usage:
//
//	tdbverify -graph g.txt -cover cover.txt -k 5 [-minlen 3] [-minimal]
//	          [-workers 0]
//
// The cover file holds one vertex ID per line. Exit status 0 means the
// cover passed all requested checks.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tdb"
	"tdb/internal/verify"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tdbverify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tdbverify", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "graph file (required)")
		coverPath = fs.String("cover", "", "cover file, one vertex ID per line (required)")
		k         = fs.Int("k", 5, "hop constraint")
		minLen    = fs.Int("minlen", 3, "minimum cycle length")
		minimal   = fs.Bool("minimal", false, "also check minimality")
		workers   = fs.Int("workers", 0, "parallel validity workers (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *coverPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph and -cover are required")
	}
	g, err := tdb.LoadGraph(*graphPath)
	if err != nil {
		return fmt.Errorf("loading graph: %w", err)
	}
	cover, err := readCover(*coverPath, g.NumVertices())
	if err != nil {
		return fmt.Errorf("loading cover: %w", err)
	}
	fmt.Fprintf(os.Stderr, "verifying cover of %d vertices on %v (k=%d, minlen=%d)\n",
		len(cover), g, *k, *minLen)

	valid, witness := verify.IsValidParallel(g, *k, *minLen, cover, *workers)
	if !valid {
		return fmt.Errorf("INVALID: constrained cycle %v survives", witness)
	}
	fmt.Println("valid: every constrained cycle is covered")
	if *minimal {
		ok, redundant := verify.IsMinimal(g, *k, *minLen, cover)
		if !ok {
			return fmt.Errorf("NOT MINIMAL: redundant vertices %v", redundant)
		}
		fmt.Println("minimal: no cover vertex can be removed")
	}
	return nil
}

func readCover(path string, n int) ([]tdb.VID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var cover []tdb.VID
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || s[0] == '#' {
			continue
		}
		x, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if int(x) >= n {
			return nil, fmt.Errorf("line %d: vertex %d out of range (n=%d)", line, x, n)
		}
		cover = append(cover, tdb.VID(x))
	}
	return cover, sc.Err()
}
