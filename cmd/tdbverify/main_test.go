package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdb/internal/digraph"
)

func setup(t *testing.T) (graphPath, goodCover, badCover string) {
	t.Helper()
	dir := t.TempDir()
	graphPath = filepath.Join(dir, "g.txt")
	g := digraph.FromEdges(3, []digraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	if err := digraph.SaveFile(graphPath, g); err != nil {
		t.Fatal(err)
	}
	goodCover = filepath.Join(dir, "good.txt")
	if err := os.WriteFile(goodCover, []byte("# cover\n0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	badCover = filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badCover, []byte("\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return
}

func TestVerifyValidCover(t *testing.T) {
	g, good, _ := setup(t)
	if err := run([]string{"-graph", g, "-cover", good, "-k", "5", "-minimal"}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyInvalidCover(t *testing.T) {
	g, _, bad := setup(t)
	err := run([]string{"-graph", g, "-cover", bad, "-k", "5"})
	if err == nil || !strings.Contains(err.Error(), "INVALID") {
		t.Fatalf("want INVALID error, got %v", err)
	}
}

func TestVerifyNonMinimalCover(t *testing.T) {
	g, _, _ := setup(t)
	dir := t.TempDir()
	fat := filepath.Join(dir, "fat.txt")
	if err := os.WriteFile(fat, []byte("0\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Valid without -minimal...
	if err := run([]string{"-graph", g, "-cover", fat, "-k", "5"}); err != nil {
		t.Fatal(err)
	}
	// ...rejected with it.
	err := run([]string{"-graph", g, "-cover", fat, "-k", "5", "-minimal"})
	if err == nil || !strings.Contains(err.Error(), "NOT MINIMAL") {
		t.Fatalf("want NOT MINIMAL error, got %v", err)
	}
}

func TestVerifyErrors(t *testing.T) {
	g, good, _ := setup(t)
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.txt")
	os.WriteFile(junk, []byte("abc\n"), 0o644)
	outOfRange := filepath.Join(dir, "oor.txt")
	os.WriteFile(outOfRange, []byte("99\n"), 0o644)

	cases := [][]string{
		{},                                  // missing flags
		{"-graph", g},                       // missing cover
		{"-graph", "/nope", "-cover", good}, // bad graph path
		{"-graph", g, "-cover", "/nope"},    // bad cover path
		{"-graph", g, "-cover", junk},       // unparsable cover
		{"-graph", g, "-cover", outOfRange}, // vertex out of range
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("case %d (%v): expected error", i, args)
		}
	}
}
