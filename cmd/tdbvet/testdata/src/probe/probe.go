// Package probe is a deliberate faultsite violation: a probe outside
// internal/. go list wildcards skip testdata directories, so this package
// is invisible to ./... sweeps and only loaded explicitly by main_test.go.
package probe

import "tdb/internal/fault"

func Probe() {
	fault.Inject(fault.SiteCoreCompute)
}
