package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("tdbvet -list: exit %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"epochref", "scratchpool", "ctxflow", "atomicfield", "faultsite"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("tdbvet -list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("tdbvet -run nosuch: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr %q does not mention the unknown analyzer", errb.String())
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"../../internal/fault"}, &out, &errb); code != 0 {
		t.Fatalf("tdbvet on a clean package: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced findings:\n%s", out.String())
	}
}

func TestViolationExitsOneWithPosition(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./testdata/src/probe"}, &out, &errb); code != 1 {
		t.Fatalf("tdbvet on the violation corpus: exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	// Position pins file, line AND column of the Inject call in probe.go.
	if !strings.Contains(out.String(), "probe.go:9:2: fault probe site outside internal/") {
		t.Errorf("finding missing or mispositioned:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "[faultsite]") {
		t.Errorf("finding not attributed to faultsite:\n%s", out.String())
	}
}

func TestRunFilterSkipsOtherAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "epochref", "./testdata/src/probe"}, &out, &errb); code != 0 {
		t.Fatalf("tdbvet -run epochref on a faultsite-only violation: exit %d\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./does/not/exist"}, &out, &errb); code != 2 {
		t.Fatalf("tdbvet on a bad pattern: exit %d, want 2\nstdout: %s", code, out.String())
	}
}
