// Command tdbvet runs the repo's invariant analyzers (internal/analyzers)
// over package patterns, multichecker-style:
//
//	tdbvet [-run epochref,scratchpool] [-list] [packages]
//
// With no patterns it checks ./.... Findings print as
// file:line:col: message [analyzer]. Exit status: 0 clean, 1 findings,
// 2 usage or load failure. Suppress a single finding, with a recorded
// reason, via a comment on the flagged line or the line above:
//
//	//tdbvet:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tdb/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tdbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analyzers.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "tdbvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "tdbvet: %v\n", err)
		return 2
	}
	diags, err := analyzers.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "tdbvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
