// Command tdbgen generates the synthetic graphs used throughout this
// repository and writes them in the text or binary edge-list format.
//
// Usage:
//
//	tdbgen -model er        -n 10000 -m 50000 -seed 1 -o g.txt
//	tdbgen -model powerlaw  -n 10000 -m 50000 -skew 2.5 -recip 0.3 -o g.bin
//	tdbgen -model smallworld -n 10000 -fwd 3 -chord 0.4 -o g.txt
//	tdbgen -model planted   -n 10000 -cycles 20 -maxlen 6 -m 20000 -o g.txt
//	tdbgen -model dataset   -dataset WKV -scale 0.05 -o wkv.bin
//	tdbgen -i web-Google.txt.gz -o web-Google.tdbcsr
//	tdbgen -list
//
// With -i, tdbgen converts an existing graph instead of generating one:
// the input may be a SNAP-style text edge list (optionally gzipped), the
// binary format or a TDBCSR1 mapped file, and the output format follows
// -o/-format as usual. This is the ingestion path for real SNAP
// downloads: one command turns web-Google.txt.gz into a servable mapped
// file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tdb"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tdbgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tdbgen", flag.ContinueOnError)
	var (
		model   = fs.String("model", "powerlaw", "er, powerlaw, smallworld, planted or dataset")
		n       = fs.Int("n", 10_000, "vertex count")
		m       = fs.Int("m", 50_000, "edge count (background edges for planted)")
		seed    = fs.Uint64("seed", 1, "random seed")
		skew    = fs.Float64("skew", 2.5, "powerlaw: degree skew (>= 1)")
		recip   = fs.Float64("recip", 0.2, "powerlaw: edge reciprocity probability")
		fwd     = fs.Int("fwd", 3, "smallworld: forward ring edges per vertex")
		chord   = fs.Float64("chord", 0.4, "smallworld: backward chord probability")
		cycles  = fs.Int("cycles", 20, "planted: number of implanted cycles")
		minLenF = fs.Int("minlen", 3, "planted: minimum implanted cycle length")
		maxLen  = fs.Int("maxlen", 6, "planted: maximum implanted cycle length")
		dataset = fs.String("dataset", "", "dataset: registry name (see -list)")
		scale   = fs.Float64("scale", 0.05, "dataset: fraction of the paper-reported size")
		inPath  = fs.String("i", "", "convert this graph file instead of generating (SNAP text, .gz, .bin or .tdbcsr)")
		outPath = fs.String("o", "", "output file (required; .bin selects the binary format)")
		format  = fs.String("format", "auto", "output format: auto (by extension), text, bin or mapped (TDBCSR1, servable via -store mmap / OpenMapped)")
		list    = fs.Bool("list", false, "list the dataset registry and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Printf("%-6s %-14s %12s %14s %7s\n", "name", "original", "|V|", "|E|", "davg")
		for _, d := range tdb.Datasets() {
			large := ""
			if d.Large {
				large = " (large)"
			}
			fmt.Printf("%-6s %-14s %12d %14d %7.1f%s\n",
				d.Name, d.Description, d.PaperV, d.PaperE, d.PaperAvgDeg, large)
		}
		return nil
	}
	if *outPath == "" {
		fs.Usage()
		return fmt.Errorf("-o is required")
	}

	var g *tdb.Graph
	if *inPath != "" {
		a, closeStorage, err := tdb.OpenStorage(*inPath)
		if err != nil {
			return err
		}
		g = tdb.Materialize(a)
		if err := closeStorage(); err != nil {
			return err
		}
		if err := save(*outPath, *format, g); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "converted %s: wrote %v to %s\n", *inPath, g, *outPath)
		return nil
	}
	switch *model {
	case "er":
		g = tdb.GenErdosRenyi(*n, *m, *seed)
	case "powerlaw":
		g = tdb.GenPowerLaw(*n, *m, *skew, *recip, *seed)
	case "smallworld":
		g = tdb.GenSmallWorld(*n, *fwd, *chord, *seed)
	case "planted":
		p := tdb.GenPlantedCycles(*n, *cycles, *minLenF, *maxLen, *m, *seed)
		g = p.Graph
		fmt.Fprintf(os.Stderr, "planted %d vertex-disjoint cycles\n", len(p.Cycles))
	case "dataset":
		d, ok := tdb.DatasetByName(*dataset)
		if !ok {
			return fmt.Errorf("unknown dataset %q (use -list)", *dataset)
		}
		g = d.Generate(*scale)
	default:
		return fmt.Errorf("unknown model %q", *model)
	}

	if err := save(*outPath, *format, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %v to %s\n", g, *outPath)
	return nil
}

// save writes g in the requested format; "auto" keeps SaveGraph's
// extension-based selection, with ".tdbcsr" extending it to the mapped
// format.
func save(path, format string, g *tdb.Graph) error {
	if format == "auto" && strings.HasSuffix(path, ".tdbcsr") {
		format = "mapped"
	}
	switch format {
	case "auto", "text", "bin":
		if format != "auto" {
			// SaveGraph selects by extension; pin the format by rewriting the
			// selector only when the caller forced one.
			if (format == "bin") != strings.HasSuffix(path, ".bin") {
				return fmt.Errorf("-format %s conflicts with extension of %s (use a matching extension or -format auto)", format, path)
			}
		}
		return tdb.SaveGraph(path, g)
	case "mapped":
		return tdb.SaveMapped(path, g)
	default:
		return fmt.Errorf("unknown -format %q (want auto, text, bin or mapped)", format)
	}
}
