package main

import (
	"path/filepath"
	"testing"

	"tdb/internal/digraph"
)

func TestGenerateModels(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-model", "er", "-n", "100", "-m", "400"},
		{"-model", "powerlaw", "-n", "100", "-m", "400", "-skew", "2.0", "-recip", "0.3"},
		{"-model", "smallworld", "-n", "100", "-fwd", "2", "-chord", "0.5"},
		{"-model", "planted", "-n", "100", "-cycles", "3", "-maxlen", "5", "-m", "100"},
		{"-model", "dataset", "-dataset", "GNU", "-scale", "0.01"},
	}
	for i, args := range cases {
		out := filepath.Join(dir, args[1]+".txt")
		if err := run(append(args, "-o", out)); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		g, err := digraph.LoadFile(out)
		if err != nil {
			t.Fatalf("case %d: load: %v", i, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("case %d: empty graph", i)
		}
	}
}

func TestGenerateBinaryOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.bin")
	if err := run([]string{"-model", "er", "-n", "50", "-m", "100", "-o", out}); err != nil {
		t.Fatal(err)
	}
	g, err := digraph.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 100 {
		t.Fatalf("m = %d", g.NumEdges())
	}
}

func TestListMode(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := [][]string{
		{"-model", "er", "-n", "10", "-m", "10"}, // missing -o
		{"-model", "nope", "-o", "/tmp/x.txt"},
		{"-model", "dataset", "-dataset", "NOPE", "-o", "/tmp/x.txt"},
		{"-model", "er", "-n", "10", "-m", "10", "-o", "/no/such/dir/g.txt"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("case %d (%v): expected error", i, args)
		}
	}
}
