package tdb

import (
	"context"
	"fmt"
	"slices"
	"testing"
)

// TestOptionValidation: invalid or contradictory option sets must be
// rejected with an error, not computed around.
func TestOptionValidation(t *testing.T) {
	g := GenPowerLaw(60, 240, 2.0, 0.3, 1)
	ctx := context.Background()
	cases := []struct {
		name string
		k    int
		opts []Option
	}{
		{"k below minlen", 1, nil},
		{"minlen below 2", 5, []Option{WithMinLen(1)}},
		{"weights length mismatch", 5, []Option{WithWeights([]float64{1, 2, 3})}},
		{"weighted order without weights", 5, []Option{WithOrder(OrderWeighted)}},
		{"edge cover with parallel strategy", 5, []Option{WithEdgeCover(), WithStrategy(StrategyParallelSCC)}},
		{"edge cover with prepass strategy", 5, []Option{WithEdgeCover(), WithStrategy(StrategyPrepass)}},
		{"edge cover with prepass workers", 5, []Option{WithEdgeCover(), WithPrepassWorkers(4)}},
		{"unknown algorithm", 5, []Option{WithAlgorithm(Algorithm(99))}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Solve(ctx, g, tc.k, tc.opts...); err == nil {
				t.Fatal("expected an error")
			}
			e := NewEngine(g)
			if _, err := e.Solve(ctx, tc.k, tc.opts...); err == nil {
				t.Fatal("engine: expected an error")
			}
		})
	}
}

// TestOptionValidationLegacyParity: the deprecated struct surface and the
// functional options must accept and reject the same inputs.
func TestOptionValidationLegacyParity(t *testing.T) {
	g := GenPowerLaw(60, 240, 2.0, 0.3, 1)
	bad := []*Options{
		{MinLen: 1},
		{Weights: []float64{1, 2}},
		{Order: OrderWeighted},
	}
	for i, opts := range bad {
		if _, err := Cover(g, 5, opts); err == nil {
			t.Fatalf("case %d: legacy surface accepted invalid options", i)
		}
		if _, err := Solve(nil, g, 5, opts.ToOptions()...); err == nil {
			t.Fatalf("case %d: functional surface accepted invalid options", i)
		}
	}
}

// TestShimEquivalenceProperty is the round-trip property test of the
// deprecated shims: for every legacy Options field combination, across
// algorithms and orders, the legacy entry point and the functional-options
// path must produce the identical cover (the shims ARE the new path, so
// this pins the conversion, not just the algorithms).
func TestShimEquivalenceProperty(t *testing.T) {
	graphs := []*Graph{
		GenPowerLaw(200, 900, 2.2, 0.3, 7),
		GenSmallWorld(150, 2, 0.35, 8),
		GenPlantedCycles(250, 12, 3, 5, 400, 9).Graph,
	}
	weights := func(g *Graph) []float64 {
		w := make([]float64, g.NumVertices())
		for i := range w {
			w[i] = float64((i*2654435761)%97) + 1
		}
		return w
	}
	for gi, g := range graphs {
		for _, algo := range []Algorithm{BUR, BURPlus, TDB, TDBPlus, TDBPlusPlus, DARCDV} {
			k := 4
			variants := []*Options{
				nil,
				{},
				{MinLen: 2},
				{Order: OrderDegreeAsc, SCCPrefilter: true},
				{Order: OrderDegreeDesc},
				{Order: OrderRandom, Seed: 42},
				{Order: OrderWeighted, Weights: weights(g)},
			}
			if algo == TDBPlusPlus {
				variants = append(variants, &Options{PrepassWorkers: 2}, &Options{PrepassWorkers: -1})
			}
			for vi, opts := range variants {
				name := fmt.Sprintf("g%d/%v/v%d", gi, algo, vi)
				legacy, err := CoverWith(g, algo, k, opts)
				if err != nil {
					t.Fatalf("%s: legacy: %v", name, err)
				}
				functional, err := Solve(nil, g, k,
					append(opts.ToOptions(), WithAlgorithm(algo), WithStrategy(StrategySequential))...)
				if err != nil {
					t.Fatalf("%s: functional: %v", name, err)
				}
				if !slices.Equal(legacy.Cover, functional.Cover) {
					t.Fatalf("%s: legacy cover %v != functional cover %v",
						name, legacy.Cover, functional.Cover)
				}
				minLen := 3
				if opts != nil && opts.MinLen != 0 {
					minLen = opts.MinLen
				}
				if rep := Verify(g, k, minLen, legacy.Cover, false); !rep.Valid {
					t.Fatalf("%s: invalid cover", name)
				}
			}
		}
	}
}

// TestShimEquivalenceParallelAndVariants: the remaining legacy entry points
// (CoverParallel, CoverEdges, CoverAllCycles) match their functional
// spellings.
func TestShimEquivalenceParallelAndVariants(t *testing.T) {
	g := GenPlantedCycles(500, 15, 3, 5, 700, 11).Graph

	legacyPar, err := CoverParallel(g, TDBPlusPlus, 5, &Options{Order: OrderDegreeAsc}, 3)
	if err != nil {
		t.Fatal(err)
	}
	funcPar, err := Solve(nil, g, 5, WithOrder(OrderDegreeAsc),
		WithStrategy(StrategyParallelSCC), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(legacyPar.Cover, funcPar.Cover) {
		t.Fatalf("parallel: legacy %v != functional %v", legacyPar.Cover, funcPar.Cover)
	}

	legacyEdges, err := CoverEdges(g, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	funcEdges, err := Solve(nil, g, 4, WithEdgeCover())
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(legacyEdges.Edges, funcEdges.Edges) {
		t.Fatalf("edges: legacy %v != functional %v", legacyEdges.Edges, funcEdges.Edges)
	}
	if funcEdges.Cover != nil {
		t.Fatalf("edge solve must not fill Cover, got %v", funcEdges.Cover)
	}

	legacyAll, err := CoverAllCycles(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	funcAll, err := Solve(nil, g, 0, WithUnconstrained(), WithStrategy(StrategySequential))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(legacyAll.Cover, funcAll.Cover) {
		t.Fatalf("unconstrained: legacy %v != functional %v", legacyAll.Cover, funcAll.Cover)
	}
}

// TestLegacyCancelledThroughSolve: the deprecated Cancelled hook survives
// the ToOptions conversion and stops a Solve.
func TestLegacyCancelledThroughSolve(t *testing.T) {
	g := GenSmallWorld(300, 2, 0.3, 13)
	opts := &Options{Cancelled: func() bool { return true }}
	r, err := Solve(nil, g, 5, opts.ToOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.TimedOut {
		t.Fatal("converted Cancelled hook did not stop the solve")
	}
}

// TestNilOptionIgnored: a nil Option in the list must not panic.
func TestNilOptionIgnored(t *testing.T) {
	g := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	r, err := Solve(nil, g, 5, nil, WithOrder(OrderNatural), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cover) != 1 {
		t.Fatalf("cover %v", r.Cover)
	}
}
