package tdb

import (
	"tdb/internal/core"
	"tdb/internal/dynamic"
	"tdb/internal/graphstat"
)

// Extensions beyond the paper's static vertex-cover problem, built from the
// same primitives (see DESIGN.md): the edge-transversal variant, the
// SCC-partitioned parallel solver, and dynamic cover maintenance.

// EdgeCoverResult is a minimal constrained-cycle edge transversal.
type EdgeCoverResult = core.EdgeCoverResult

// CoverEdges computes a minimal EDGE set intersecting every cycle of length
// in [3, k] (the k-cycle transversal of Definition 5 — the problem the
// DARC baseline natively solves), using the paper's top-down process
// ("TDB-E"). Removing the returned edges from the graph destroys every
// constrained cycle.
func CoverEdges(g *Graph, k int, opts *Options) (*EdgeCoverResult, error) {
	return core.TopDownEdges(g, opts.toCore(k))
}

// CoverParallel computes the same cover as CoverWith by decomposing the
// graph into strongly connected components and covering them concurrently.
// It shines when the cyclic part splits into many components; a single
// giant SCC gains nothing. workers <= 0 selects GOMAXPROCS.
func CoverParallel(g *Graph, algo Algorithm, k int, opts *Options, workers int) (*Result, error) {
	return core.ComputeParallel(g, algo, opts.toCore(k), workers)
}

// Maintainer keeps a hop-constrained cycle cover valid across a stream of
// edge insertions and deletions (the dynamic-graph setting of the paper's
// fraud-detection motivation).
type Maintainer = dynamic.Maintainer

// NewMaintainer creates a dynamic cover maintainer over an initially empty
// graph with n vertices, for cycles of length in [minLen, k].
func NewMaintainer(n, k, minLen int) *Maintainer {
	return dynamic.New(n, k, minLen)
}

// MaintainerFromGraph seeds a maintainer with an existing graph and a valid
// cover of it (typically from Cover/CoverWith).
func MaintainerFromGraph(g *Graph, k, minLen int, cover []VID) *Maintainer {
	return dynamic.FromGraph(g, k, minLen, cover)
}

// GraphProfile summarizes the statistics that make a cycle-cover instance
// hard: degree skew, reciprocity, SCC structure and (when requested) the
// short-cycle length spectrum.
type GraphProfile = graphstat.Profile

// ProfileGraph profiles g; cycleK > 0 additionally counts simple cycles of
// length 2..cycleK (capped at a million — counting is #P-hard in general).
func ProfileGraph(g *Graph, cycleK int) *GraphProfile {
	return graphstat.Compute(g, graphstat.Options{K: cycleK})
}
