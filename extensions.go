package tdb

import (
	"tdb/internal/core"
	"tdb/internal/dynamic"
	"tdb/internal/graphstat"
)

// Extensions beyond the paper's static vertex-cover problem, built from the
// same primitives (see DESIGN.md): the edge-transversal variant, the
// SCC-partitioned parallel solver, and dynamic cover maintenance. The
// variants are reachable from Solve (WithEdgeCover, strategy selection);
// the legacy entry points remain as deprecated shims.

// EdgeCoverResult is a minimal constrained-cycle edge transversal.
type EdgeCoverResult = core.EdgeCoverResult

// CoverEdges computes a minimal EDGE set intersecting every cycle of length
// in [3, k] (the k-cycle transversal of Definition 5 — the problem the
// DARC baseline natively solves), using the paper's top-down process
// ("TDB-E"). Removing the returned edges from the graph destroys every
// constrained cycle.
//
// Deprecated: use Solve with WithEdgeCover; the transversal is returned in
// Result.Edges.
func CoverEdges(g *Graph, k int, opts *Options) (*EdgeCoverResult, error) {
	if opts != nil && opts.PrepassWorkers != 0 {
		// The edge solver has no prepass; the legacy surface ignored the
		// field, so the shim drops it rather than tripping Solve's
		// incompatible-options check.
		o := *opts
		o.PrepassWorkers = 0
		opts = &o
	}
	r, err := Solve(nil, g, k, append(opts.ToOptions(), WithEdgeCover())...)
	if err != nil {
		return nil, err
	}
	return &EdgeCoverResult{Edges: r.Edges, Stats: r.Stats}, nil
}

// CoverParallel computes the same cover as CoverWith by decomposing the
// graph into strongly connected components and covering them concurrently.
// It shines when the cyclic part splits into many components; a single
// giant SCC gains nothing. workers <= 0 selects GOMAXPROCS.
//
// Deprecated: use Solve, which selects the SCC-partitioned strategy
// automatically when the condensation splits (or pin it with
// WithStrategy(StrategyParallelSCC) and WithWorkers).
func CoverParallel(g *Graph, algo Algorithm, k int, opts *Options, workers int) (*Result, error) {
	return Solve(nil, g, k, legacySolveOptions(opts, algo,
		WithStrategy(StrategyParallelSCC), WithWorkers(workers))...)
}

// Maintainer keeps a hop-constrained cycle cover valid across a stream of
// edge insertions and deletions (the dynamic-graph setting of the paper's
// fraud-detection motivation). LabeledMaintainer is the counterpart
// addressing vertices by external IDs.
type Maintainer = dynamic.Maintainer

// Update is one edge operation of a Maintainer.ApplyBatch batch; build
// them with InsertOp and DeleteOp.
type Update = dynamic.Update

// UpdateOp selects the kind of an Update.
type UpdateOp = dynamic.Op

// The Update kinds.
const (
	UpdateInsert = dynamic.OpInsert
	UpdateDelete = dynamic.OpDelete
)

// InsertOp returns an edge-insertion Update for ApplyBatch.
func InsertOp(u, v VID) Update { return dynamic.InsertOp(u, v) }

// DeleteOp returns an edge-deletion Update for ApplyBatch.
func DeleteOp(u, v VID) Update { return dynamic.DeleteOp(u, v) }

// NewMaintainer creates a dynamic cover maintainer over an initially empty
// graph with n vertices, for cycles of length in [minLen, k].
func NewMaintainer(n, k, minLen int) *Maintainer {
	return dynamic.New(n, k, minLen)
}

// MaintainerFromGraph seeds a maintainer with an existing graph and a valid
// cover of it (typically from Solve). A cover naming vertices outside the
// graph is rejected with an error.
func MaintainerFromGraph(g *Graph, k, minLen int, cover []VID) (*Maintainer, error) {
	return dynamic.FromGraph(g, k, minLen, cover)
}

// GraphProfile summarizes the statistics that make a cycle-cover instance
// hard: degree skew, reciprocity, SCC structure and (when requested) the
// short-cycle length spectrum.
type GraphProfile = graphstat.Profile

// ProfileGraph profiles g; cycleK > 0 additionally counts simple cycles of
// length 2..cycleK (capped at a million — counting is #P-hard in general).
func ProfileGraph(g *Graph, cycleK int) *GraphProfile {
	return graphstat.Compute(g, graphstat.Options{K: cycleK})
}
