package tdb_test

import (
	"context"
	"fmt"

	"tdb"
)

// The smallest possible workflow on the unified surface: break every short
// cycle of a triangle.
func ExampleSolve() {
	g := tdb.FromEdges(3, []tdb.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	res, err := tdb.Solve(context.Background(), g, 5)
	if err != nil {
		panic(err)
	}
	fmt.Println("cover size:", len(res.Cover))
	rep := tdb.Verify(g, 5, 3, res.Cover, true)
	fmt.Println("valid:", rep.Valid, "minimal:", rep.Minimal)
	// Output:
	// cover size: 1
	// valid: true minimal: true
}

// Options select the algorithm and variant; here the bottom-up algorithm
// (smallest covers) on two triangles sharing vertex 0.
func ExampleSolve_options() {
	g := tdb.FromEdges(5, []tdb.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 0, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
	})
	res, err := tdb.Solve(context.Background(), g, 5, tdb.WithAlgorithm(tdb.BURPlus))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Cover)
	// Output:
	// [0]
}

// Real-world IDs: the labeled layer interns external identities and
// translates the cover back.
func ExampleLabeledGraph() {
	b := tdb.NewLabeledBuilder[string]()
	b.AddEdge("alice", "bob")
	b.AddEdge("bob", "carol")
	b.AddEdge("carol", "alice")
	lg := b.Build()
	res, err := lg.Solve(context.Background(), 5, tdb.WithAlgorithm(tdb.BURPlus))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Cover)
	// Output:
	// [alice]
}

// The smallest possible workflow: break every short cycle of a triangle.
func ExampleCover() {
	g := tdb.FromEdges(3, []tdb.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	res, err := tdb.Cover(g, 5, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("cover size:", len(res.Cover))
	rep := tdb.Verify(g, 5, 3, res.Cover, true)
	fmt.Println("valid:", rep.Valid, "minimal:", rep.Minimal)
	// Output:
	// cover size: 1
	// valid: true minimal: true
}

// Choosing the bottom-up algorithm when cover size matters more than speed.
func ExampleCoverWith() {
	// Two triangles sharing vertex 0: the minimum cover is {0}.
	g := tdb.FromEdges(5, []tdb.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 0, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
	})
	res, err := tdb.CoverWith(g, tdb.BURPlus, 5, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Cover)
	// Output:
	// [0]
}

// Detecting whether any hop-constrained cycle exists at all.
func ExampleHasHopConstrainedCycle() {
	ring := tdb.FromEdges(6, []tdb.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 0},
	})
	fmt.Println(tdb.HasHopConstrainedCycle(ring, 5)) // the 6-ring is too long
	fmt.Println(tdb.HasHopConstrainedCycle(ring, 6))
	// Output:
	// false
	// true
}

// Enumerating all constrained cycles of a small graph.
func ExampleEnumerateCycles() {
	g := tdb.FromEdges(4, []tdb.Edge{
		{U: 0, V: 1}, {U: 1, V: 0}, // 2-cycle: not enumerated (minLen 3)
		{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 1},
	})
	tdb.EnumerateCycles(g, 5, func(c []tdb.VID) bool {
		fmt.Println(c)
		return true
	})
	// Output:
	// [1 2 3]
}

// Keeping a cover valid while edges stream in.
func ExampleMaintainer() {
	m := tdb.NewMaintainer(3, 5, 3)
	fmt.Println(m.InsertEdge(0, 1)) // no cycle yet
	fmt.Println(m.InsertEdge(1, 2)) // still none
	added := m.InsertEdge(2, 0)     // closes the triangle
	fmt.Println(added != -1, m.CoverSize())
	// Output:
	// -1
	// -1
	// true 1
}

// Computing the edge-transversal variant (Definition 5).
func ExampleCoverEdges() {
	g := tdb.FromEdges(3, []tdb.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	res, err := tdb.CoverEdges(g, 5, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("edges removed:", len(res.Edges))
	// Output:
	// edges removed: 1
}
