package tdb

import (
	"context"
	"fmt"

	"tdb/internal/digraph"
)

// This file is the labeled layer: real-world graphs address vertices by
// external identities (account numbers, lock names, register identifiers),
// not by the dense VID integers the solver engine runs on. LabeledBuilder
// interns any comparable ID type into dense VIDs at build time, and
// LabeledGraph / LabeledMaintainer translate every result — covers,
// cycles, weights, dynamic updates — back to the external IDs, so callers
// never handle a VID.

// LabeledBuilder accumulates edges between external vertex IDs of any
// comparable type K, interning each distinct ID into a dense VID. Self-loop
// and duplicate-edge policies follow Builder.
type LabeledBuilder[K comparable] struct {
	b      *Builder
	index  map[K]VID
	labels []K
}

// NewLabeledBuilder returns an empty builder over external IDs of type K.
func NewLabeledBuilder[K comparable]() *LabeledBuilder[K] {
	return &LabeledBuilder[K]{b: NewBuilder(0), index: make(map[K]VID)}
}

// Intern registers label as a vertex (if new) and returns its dense VID.
// Edges imply interning, so calling Intern directly is only needed for
// vertices that might stay isolated.
func (lb *LabeledBuilder[K]) Intern(label K) VID {
	if v, ok := lb.index[label]; ok {
		return v
	}
	v := VID(len(lb.labels))
	lb.index[label] = v
	lb.labels = append(lb.labels, label)
	lb.b.EnsureVertices(len(lb.labels))
	return v
}

// AddEdge adds the directed edge from u to v, interning both labels.
func (lb *LabeledBuilder[K]) AddEdge(u, v K) {
	lb.b.AddEdge(lb.Intern(u), lb.Intern(v))
}

// NumVertices returns the number of distinct labels interned so far.
func (lb *LabeledBuilder[K]) NumVertices() int { return len(lb.labels) }

// Build freezes the accumulated edges into a LabeledGraph. The builder
// must not be reused afterwards.
func (lb *LabeledBuilder[K]) Build() *LabeledGraph[K] {
	return &LabeledGraph[K]{g: lb.b.Build(), index: lb.index, labels: lb.labels}
}

// LabeledGraph is an immutable directed graph whose vertices carry external
// IDs of type K. It exposes the same solving surface as the VID layer with
// every input and output translated, plus accessors for mixing with
// VID-level APIs (Graph, Labels): an Engine over Graph() serves repeated
// traffic, and Labels translates its covers back.
type LabeledGraph[K comparable] struct {
	g      *Graph
	index  map[K]VID
	labels []K
}

// Graph returns the underlying dense-VID graph.
func (lg *LabeledGraph[K]) Graph() *Graph { return lg.g }

// NumVertices returns the vertex count.
func (lg *LabeledGraph[K]) NumVertices() int { return lg.g.NumVertices() }

// NumEdges returns the edge count.
func (lg *LabeledGraph[K]) NumEdges() int { return lg.g.NumEdges() }

// Label returns the external ID of a dense vertex.
func (lg *LabeledGraph[K]) Label(v VID) K { return lg.labels[v] }

// Labels translates a slice of dense vertices (e.g. a cover from a
// VID-level Engine) to their external IDs.
func (lg *LabeledGraph[K]) Labels(vs []VID) []K {
	if vs == nil {
		return nil
	}
	out := make([]K, len(vs))
	for i, v := range vs {
		out[i] = lg.labels[v]
	}
	return out
}

// Lookup resolves an external ID to its dense VID.
func (lg *LabeledGraph[K]) Lookup(label K) (VID, bool) {
	v, ok := lg.index[label]
	return v, ok
}

// Weights builds the dense cost vector WithWeights consumes from per-label
// costs: vertices listed in costs get their value, all others get def.
func (lg *LabeledGraph[K]) Weights(costs map[K]float64, def float64) []float64 {
	w := make([]float64, lg.g.NumVertices())
	for i := range w {
		w[i] = def
	}
	for label, c := range costs {
		if v, ok := lg.index[label]; ok {
			w[v] = c
		}
	}
	return w
}

// LabeledResult is a solve outcome translated to external IDs.
type LabeledResult[K comparable] struct {
	// Cover lists the cover vertices by external ID (cover order follows
	// the ascending-VID order of the underlying result).
	Cover []K
	// Edges is the edge transversal of a WithEdgeCover solve, nil
	// otherwise.
	Edges []LabeledEdge[K]
	// Stats records the run, including the chosen execution plan.
	Stats Stats
	// Raw is the untranslated dense-VID result.
	Raw *Result
}

// LabeledEdge is a directed edge between external IDs.
type LabeledEdge[K comparable] struct {
	U, V K
}

// Solve computes a hop-constrained cycle cover of the labeled graph — the
// labeled counterpart of the package-level Solve, accepting the same
// options and translating the resulting cover (or edge transversal) back
// to external IDs.
func (lg *LabeledGraph[K]) Solve(ctx context.Context, k int, opts ...Option) (*LabeledResult[K], error) {
	r, err := Solve(ctx, lg.g, k, opts...)
	if err != nil {
		return nil, err
	}
	return lg.translate(r), nil
}

// translate maps a dense result onto external IDs.
func (lg *LabeledGraph[K]) translate(r *Result) *LabeledResult[K] {
	lr := &LabeledResult[K]{Cover: lg.Labels(r.Cover), Stats: r.Stats, Raw: r}
	if r.Edges != nil {
		lr.Edges = make([]LabeledEdge[K], len(r.Edges))
		for i, e := range r.Edges {
			lr.Edges[i] = LabeledEdge[K]{U: lg.labels[e.U], V: lg.labels[e.V]}
		}
	}
	return lr
}

// FindCycle returns one cycle of length in [3, k] through the vertex
// labeled s, as external IDs, or nil when none exists (or the label is
// unknown).
func (lg *LabeledGraph[K]) FindCycle(k int, s K) []K {
	v, ok := lg.index[s]
	if !ok {
		return nil
	}
	return lg.Labels(FindCycle(lg.g, k, v))
}

// EnumerateCycles lists every cycle of length in [3, k] as external IDs,
// calling fn until it returns false.
func (lg *LabeledGraph[K]) EnumerateCycles(k int, fn func(c []K) bool) {
	EnumerateCycles(lg.g, k, func(c []VID) bool {
		return fn(lg.Labels(c))
	})
}

// Maintainer seeds a LabeledMaintainer with this graph and a valid cover of
// it (typically from Solve), for cycles of length in [minLen, k]. Unknown
// cover labels are an error — a cover that names vertices outside the graph
// cannot have come from it.
func (lg *LabeledGraph[K]) Maintainer(k, minLen int, cover []K) (*LabeledMaintainer[K], error) {
	dense := make([]VID, len(cover))
	for i, label := range cover {
		v, ok := lg.index[label]
		if !ok {
			return nil, fmt.Errorf("tdb: cover label %v is not a vertex of the graph", label)
		}
		dense[i] = v
	}
	m, err := MaintainerFromGraph(lg.g, k, minLen, dense)
	if err != nil {
		return nil, err
	}
	index := make(map[K]VID, len(lg.index))
	for label, v := range lg.index {
		index[label] = v
	}
	return &LabeledMaintainer[K]{
		m:      m,
		index:  index,
		labels: append([]K(nil), lg.labels...),
	}, nil
}

// LabeledMaintainer keeps a hop-constrained cycle cover valid across a
// stream of edge insertions and deletions addressed by external IDs — the
// labeled counterpart of Maintainer. Labels first seen mid-stream are
// interned on the fly (the underlying maintainer grows), so an open-ended
// entity universe (new accounts, new locks) needs no pre-registration.
type LabeledMaintainer[K comparable] struct {
	m      *Maintainer
	index  map[K]VID
	labels []K
}

// NewLabeledMaintainer creates a labeled maintainer over an initially empty
// graph, for cycles of length in [minLen, k].
func NewLabeledMaintainer[K comparable](k, minLen int) *LabeledMaintainer[K] {
	return &LabeledMaintainer[K]{
		m:     NewMaintainer(0, k, minLen),
		index: make(map[K]VID),
	}
}

// intern maps a label to its dense vertex, growing the maintainer for
// labels never seen before.
func (lm *LabeledMaintainer[K]) intern(label K) VID {
	if v, ok := lm.index[label]; ok {
		return v
	}
	v := VID(len(lm.labels))
	lm.index[label] = v
	lm.labels = append(lm.labels, label)
	lm.m.Grow(len(lm.labels))
	return v
}

// InsertEdge adds the directed edge from u to v (interning new labels),
// updating the cover if the insertion created uncovered constrained
// cycles. It returns the label added to the cover and true, or a zero K
// and false when no addition was needed.
func (lm *LabeledMaintainer[K]) InsertEdge(u, v K) (K, bool) {
	added := lm.m.InsertEdge(lm.intern(u), lm.intern(v))
	if added < 0 {
		var zero K
		return zero, false
	}
	return lm.labels[added], true
}

// LabeledUpdate is one edge operation of a LabeledMaintainer.ApplyBatch
// batch, addressed by external IDs.
type LabeledUpdate[K comparable] struct {
	Op   UpdateOp
	U, V K
}

// ApplyBatch applies the updates in order — interning labels first seen in
// an insertion, ignoring deletions of unknown labels — and returns the
// labels added to the cover, in the order they were added. Cycle-existence
// queries for insertions between uncovered endpoints are deferred to the
// end of the batch; large bursts of them are answered by bit-parallel
// 64-lane BFS sweeps, small batches by the same bounded search as
// InsertEdge (see Maintainer.ApplyBatch for the exact policy).
func (lm *LabeledMaintainer[K]) ApplyBatch(updates []LabeledUpdate[K]) []K {
	dense := make([]Update, 0, len(updates))
	for _, up := range updates {
		switch up.Op {
		case UpdateInsert:
			dense = append(dense, InsertOp(lm.intern(up.U), lm.intern(up.V)))
		case UpdateDelete:
			u, ok := lm.index[up.U]
			if !ok {
				continue
			}
			v, ok := lm.index[up.V]
			if !ok {
				continue
			}
			dense = append(dense, DeleteOp(u, v))
		}
	}
	added := lm.m.ApplyBatch(dense)
	if len(added) == 0 {
		return nil
	}
	out := make([]K, len(added))
	for i, v := range added {
		out[i] = lm.labels[v]
	}
	return out
}

// DeleteEdge removes the edge from u to v if present, reporting whether it
// existed. The cover stays valid; Reminimize sheds entries deletions made
// redundant.
func (lm *LabeledMaintainer[K]) DeleteEdge(u, v K) bool {
	uv, ok := lm.index[u]
	if !ok {
		return false
	}
	vv, ok := lm.index[v]
	if !ok {
		return false
	}
	return lm.m.DeleteEdge(uv, vv)
}

// HasEdge reports whether the edge currently exists.
func (lm *LabeledMaintainer[K]) HasEdge(u, v K) bool {
	uv, ok := lm.index[u]
	if !ok {
		return false
	}
	vv, ok := lm.index[v]
	if !ok {
		return false
	}
	return lm.m.HasEdge(uv, vv)
}

// Covered reports whether the label is currently in the cover.
func (lm *LabeledMaintainer[K]) Covered(label K) bool {
	v, ok := lm.index[label]
	return ok && lm.m.Covered(v)
}

// Cover returns the current cover as external IDs.
func (lm *LabeledMaintainer[K]) Cover() []K {
	dense := lm.m.Cover()
	out := make([]K, len(dense))
	for i, v := range dense {
		out[i] = lm.labels[v]
	}
	return out
}

// CoverSize returns the current cover size.
func (lm *LabeledMaintainer[K]) CoverSize() int { return lm.m.CoverSize() }

// NumVertices returns the number of labels interned so far.
func (lm *LabeledMaintainer[K]) NumVertices() int { return len(lm.labels) }

// NumEdges returns the current edge count.
func (lm *LabeledMaintainer[K]) NumEdges() int { return lm.m.NumEdges() }

// Reminimize runs the minimal pruning pass over the current cover,
// returning the number of entries shed.
func (lm *LabeledMaintainer[K]) Reminimize() int { return lm.m.Reminimize() }

// Stats returns operation counters: edge inserts, deletes, bounded cycle
// searches, and cover additions.
func (lm *LabeledMaintainer[K]) Stats() (inserts, deletes, cycleChecks, coverAdds int64) {
	return lm.m.Stats()
}

// Snapshot freezes the current graph into an immutable LabeledGraph
// (labels included), e.g. to Verify the maintained cover or re-Solve from
// scratch.
func (lm *LabeledMaintainer[K]) Snapshot() *LabeledGraph[K] {
	index := make(map[K]VID, len(lm.index))
	for label, v := range lm.index {
		index[label] = v
	}
	return &LabeledGraph[K]{
		g:      digraph.Materialize(lm.m.Snapshot()),
		index:  index,
		labels: append([]K(nil), lm.labels...),
	}
}

// Verify checks the maintained cover against the current graph: validity
// always, minimality when wantMinimal is set.
func (lm *LabeledMaintainer[K]) Verify(wantMinimal bool) Report {
	return Verify(lm.m.Snapshot(), lm.m.K(), lm.m.MinLen(), lm.m.Cover(), wantMinimal)
}
